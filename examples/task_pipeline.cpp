// Task pipeline — the paper's §VI-E producer/consumer pattern at
// application scale, written two ways:
//
//  * tasks    — one member produces work items as OpenMP tasks, the team
//               consumes them; granularity is the tuning knob.
//  * channel  — the same stream through a bounded omp::channel: the
//               producer blocks when the queue is full (backpressure) and
//               consumers block when it is empty — truly suspended on the
//               runtime's wait lists, not spinning or micro-sleeping.
//
//   $ ./task_pipeline              # sweeps granularities on two runtimes
#include <atomic>
#include <cstdio>
#include <vector>

#include "common/time.hpp"
#include "omp/omp.hpp"

namespace o = glto::omp;

namespace {

/// A work item: smooth a block of a signal (stand-in for any per-block
/// kernel — image tiles, rows of a matrix, chunks of a log). The stencil
/// stays strictly inside [lo, hi): each pass updates the block interior
/// only, so tasks over disjoint blocks never touch a neighbour block's
/// boundary element and are independent by construction — no depend
/// clauses needed, and no write/read overlap for TSan to flag.
void smooth_block(std::vector<double>& signal, int lo, int hi) {
  for (int pass = 0; pass < 4; ++pass) {
    for (int i = std::max(1, lo + 1);
         i < std::min<int>(static_cast<int>(signal.size()) - 1, hi - 1);
         ++i) {
      signal[static_cast<std::size_t>(i)] =
          0.25 * signal[static_cast<std::size_t>(i) - 1] +
          0.5 * signal[static_cast<std::size_t>(i)] +
          0.25 * signal[static_cast<std::size_t>(i) + 1];
    }
  }
}

double run_pipeline(int n, int block) {
  std::vector<double> signal(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    signal[static_cast<std::size_t>(i)] = i % 2 == 0 ? 1.0 : -1.0;
  }
  glto::common::Timer t;
  o::parallel([&](int, int) {
    o::single([&] {
      for (int lo = 0; lo < n; lo += block) {
        const int hi = std::min(n, lo + block);
        o::task([&signal, lo, hi] { smooth_block(signal, lo, hi); });
      }
      o::taskwait();
    });
  });
  return t.elapsed_sec();
}

/// Same workload as run_pipeline, but streamed through a bounded channel:
/// member 0 produces block descriptors, every other member drains the
/// channel until close(). recv() returning false doubles as the shutdown
/// signal — no sentinel items, no done-flag polling.
double run_pipeline_channel(int n, int block) {
  std::vector<double> signal(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    signal[static_cast<std::size_t>(i)] = i % 2 == 0 ? 1.0 : -1.0;
  }
  struct Block {
    int lo, hi;
  };
  o::channel<Block> ch(16);
  glto::common::Timer t;
  o::parallel([&](int tid, int) {
    if (tid == 0) {
      for (int lo = 0; lo < n; lo += block) {
        ch.send(Block{lo, std::min(n, lo + block)});  // blocks when full
      }
      ch.close();  // wakes every blocked consumer with "stream over"
      return;
    }
    Block b;
    while (ch.recv(b)) smooth_block(signal, b.lo, b.hi);
  });
  return t.elapsed_sec();
}

}  // namespace

int main() {
  constexpr int kN = 1 << 18;
  std::printf("Producer/consumer task pipeline over a %d-sample signal\n\n",
              kN);
  std::printf("%-12s %10s %12s %12s\n", "runtime", "block", "tasks",
              "time_s");
  for (auto kind : {o::RuntimeKind::intel, o::RuntimeKind::glto_abt}) {
    for (int block : {256, 1024, 4096, 16384}) {
      o::SelectOptions opts;
      opts.num_threads = 4;
      opts.bind_threads = false;
      opts.active_wait = false;
      o::select(kind, opts);
      const double sec = run_pipeline(kN, block);
      std::printf("%-12s %10d %12d %12.4f\n", o::kind_name(kind), block,
                  (kN + block - 1) / block, sec);
      o::shutdown();
    }
  }
  std::printf("\nFine blocks (many tasks) favour GLTO; coarse blocks favour "
              "the Intel-like runtime — the Figs. 10-13 crossover.\n");

  std::printf("\nSame stream through a bounded omp::channel (capacity 16):\n");
  std::printf("%-12s %10s %12s\n", "runtime", "block", "time_s");
  for (int block : {1024, 4096}) {
    o::SelectOptions opts;
    opts.num_threads = 4;
    opts.bind_threads = false;
    o::select(o::RuntimeKind::glto_abt, opts);
    const double sec = run_pipeline_channel(kN, block);
    std::printf("%-12s %10d %12.4f\n", o::kind_name(o::RuntimeKind::glto_abt),
                block, sec);
    o::shutdown();
  }
  std::printf("\nThe channel variant needs no sentinel items or done-flag "
              "polling: a full queue suspends the producer, an empty one "
              "suspends consumers, close() ends the stream.\n");
  return 0;
}
