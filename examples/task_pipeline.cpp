// Task pipeline — the paper's §VI-E producer/consumer pattern at
// application scale: one thread produces work items as OpenMP tasks while
// the team consumes them, with the task granularity as the tuning knob.
//
//   $ ./task_pipeline              # sweeps granularities on two runtimes
#include <atomic>
#include <cstdio>
#include <vector>

#include "common/time.hpp"
#include "omp/omp.hpp"

namespace o = glto::omp;

namespace {

/// A work item: smooth a block of a signal (stand-in for any per-block
/// kernel — image tiles, rows of a matrix, chunks of a log).
void smooth_block(std::vector<double>& signal, int lo, int hi) {
  for (int pass = 0; pass < 4; ++pass) {
    for (int i = std::max(1, lo);
         i < std::min<int>(static_cast<int>(signal.size()) - 1, hi); ++i) {
      signal[static_cast<std::size_t>(i)] =
          0.25 * signal[static_cast<std::size_t>(i) - 1] +
          0.5 * signal[static_cast<std::size_t>(i)] +
          0.25 * signal[static_cast<std::size_t>(i) + 1];
    }
  }
}

double run_pipeline(int n, int block) {
  std::vector<double> signal(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    signal[static_cast<std::size_t>(i)] = i % 2 == 0 ? 1.0 : -1.0;
  }
  glto::common::Timer t;
  o::parallel([&](int, int) {
    o::single([&] {
      for (int lo = 0; lo < n; lo += block) {
        const int hi = std::min(n, lo + block);
        o::task([&signal, lo, hi] { smooth_block(signal, lo, hi); });
      }
      o::taskwait();
    });
  });
  return t.elapsed_sec();
}

}  // namespace

int main() {
  constexpr int kN = 1 << 18;
  std::printf("Producer/consumer task pipeline over a %d-sample signal\n\n",
              kN);
  std::printf("%-12s %10s %12s %12s\n", "runtime", "block", "tasks",
              "time_s");
  for (auto kind : {o::RuntimeKind::intel, o::RuntimeKind::glto_abt}) {
    for (int block : {256, 1024, 4096, 16384}) {
      o::SelectOptions opts;
      opts.num_threads = 4;
      opts.bind_threads = false;
      opts.active_wait = false;
      o::select(kind, opts);
      const double sec = run_pipeline(kN, block);
      std::printf("%-12s %10d %12d %12.4f\n", o::kind_name(kind), block,
                  (kN + block - 1) / block, sec);
      o::shutdown();
    }
  }
  std::printf("\nFine blocks (many tasks) favour GLTO; coarse blocks favour "
              "the Intel-like runtime — the Figs. 10-13 crossover.\n");
  return 0;
}
