// Runtime shootout — runs the same three workload kernels over all five
// runtime configurations and prints a comparison table; a miniature of the
// paper's whole evaluation in one binary.
//
//   $ ./runtime_shootout
#include <cstdio>
#include <vector>

#include "apps/cg.hpp"
#include "apps/clover.hpp"
#include "apps/uts.hpp"
#include "common/time.hpp"
#include "omp/omp.hpp"

namespace o = glto::omp;

namespace {

double time_uts() {
  glto::apps::uts::Params p;
  p.root_seed = 7;
  p.b0 = 3.0;
  p.gen_mx = 6;
  glto::common::Timer t;
  (void)glto::apps::uts::search_omp(p);
  return t.elapsed_sec();
}

double time_clover() {
  glto::apps::clover::Config cfg;
  cfg.nx = 32;
  cfg.ny = 32;
  glto::apps::clover::Clover sim(cfg);
  sim.init_state();
  glto::common::Timer t;
  sim.run(2);
  return t.elapsed_sec();
}

double time_cg_tasks() {
  const auto a = glto::apps::cg::make_spd_pentadiagonal(4000);
  const std::vector<double> b(4000, 1.0);
  std::vector<double> x;
  glto::common::Timer t;
  (void)glto::apps::cg::solve_tasks(a, b, x, 3, 0.0, 20);
  return t.elapsed_sec();
}

}  // namespace

int main() {
  std::printf("Workload comparison across runtimes (4 threads):\n");
  std::printf("%-10s %14s %14s %14s\n", "runtime", "uts_s",
              "cloverleaf_s", "cg_tasks_s");
  for (auto kind : o::all_kinds()) {
    o::SelectOptions opts;
    opts.num_threads = 4;
    opts.bind_threads = false;
    o::select(kind, opts);
    const double uts = time_uts();
    const double clover = time_clover();
    const double cg = time_cg_tasks();
    std::printf("%-10s %14.4f %14.4f %14.4f\n", o::kind_name(kind), uts,
                clover, cg);
    o::shutdown();
  }
  std::printf("\nExpected pattern (the paper's Table-of-lessons, §VII):\n"
              "  work-sharing loops  -> pthread runtimes (gnu/intel) win\n"
              "  fine-grained tasks  -> GLTO wins (ULT-cheap tasks)\n"
              "  environment creator -> roughly tied\n");
  return 0;
}
