// GLT hello — using the Generic Lightweight Threads API directly (below
// OpenMP): one code, three schedulers.
//
//   $ ./glt_hello                  # runs over abt, then qth, then mth
//   $ GLT_IMPL=qth ./glt_hello one # single backend from the environment
#include <atomic>
#include <cstdio>
#include <cstring>
#include <vector>

#include "glt/glt.hpp"

namespace g = glto::glt;

namespace {

std::atomic<long long> g_sum{0};

void work(void* arg) {
  const auto v = reinterpret_cast<std::intptr_t>(arg);
  g_sum.fetch_add(v, std::memory_order_relaxed);
  g::yield();  // cooperative: let siblings on this GLT_thread run
  g_sum.fetch_add(v, std::memory_order_relaxed);
}

void demo() {
  std::printf("backend=%s  GLT_threads=%d  stealing=%s  native tasklets=%s\n",
              g::impl_name(g::current_impl()), g::num_threads(),
              g::supports_stealing() ? "yes" : "no",
              g::supports_native_tasklets() ? "yes" : "no");
  g_sum.store(0);
  std::vector<g::Ult*> ults;
  for (std::intptr_t i = 1; i <= 100; ++i) {
    ults.push_back(g::ult_create(work, reinterpret_cast<void*>(i)));
  }
  std::vector<g::Tasklet*> tasklets;
  for (std::intptr_t i = 1; i <= 100; ++i) {
    tasklets.push_back(g::tasklet_create(work, reinterpret_cast<void*>(i)));
  }
  for (auto* u : ults) g::ult_join(u);
  for (auto* t : tasklets) g::tasklet_join(t);
  std::printf("  sum = %lld (expected %d)\n", g_sum.load(), 2 * 2 * 5050);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "one") == 0) {
    g::init();  // backend from $GLT_IMPL
    demo();
    g::finalize();
    return 0;
  }
  for (auto impl : {g::Impl::abt, g::Impl::qth, g::Impl::mth}) {
    g::Config cfg;
    cfg.impl = impl;
    cfg.num_threads = 3;
    cfg.bind_threads = false;
    g::init(cfg);
    demo();
    g::finalize();
  }
  return 0;
}
