// Nested libraries — the paper's §IV-E motivation: an application
// parallelizes an outer loop, and each iteration calls into a *library*
// that is itself parallelized with OpenMP. The user may not even know the
// nesting exists.
//
// Over pthread runtimes this oversubscribes the machine (GNU spawns a
// fresh inner team per call); over GLTO the inner teams are just ULTs.
//
//   $ ./nested_libraries            # compares gnu vs glto-abt
#include <cstdio>
#include <vector>

#include "common/time.hpp"
#include "omp/omp.hpp"

namespace o = glto::omp;

namespace {

/// "Third-party" library routine, internally OpenMP-parallel.
double library_column_norm(const std::vector<double>& data, int col,
                           int ncols) {
  // The library author wrote an innocent parallel reduction:
  return o::reduce_sum(0, static_cast<std::int64_t>(data.size()) / ncols,
                       [&](std::int64_t row) {
                         const double v =
                             data[static_cast<std::size_t>(row * ncols + col)];
                         return v * v;
                       });
}

double run_app(int ncols, int rows) {
  std::vector<double> data(static_cast<std::size_t>(ncols * rows));
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = double(i % 17) / 17.0;
  }
  std::vector<double> norms(static_cast<std::size_t>(ncols));
  glto::common::Timer t;
  // The application parallelizes over columns...
  o::parallel([&](int, int) {
    o::loop(0, ncols, {o::Schedule::Dynamic, 1},
                [&](std::int64_t b, std::int64_t e) {
                  for (std::int64_t c = b; c < e; ++c) {
                    // ...and each iteration calls the parallel library:
                    norms[static_cast<std::size_t>(c)] =
                        library_column_norm(data, static_cast<int>(c),
                                            ncols);
                  }
                });
  });
  return t.elapsed_sec();
}

}  // namespace

int main() {
  constexpr int kCols = 48, kRows = 4096;
  std::printf("Hidden nested parallelism: app loop over %d columns, each "
              "calling an OpenMP-parallel library routine\n\n",
              kCols);
  std::printf("%-10s %12s %16s %16s\n", "runtime", "time_s",
              "threads_created", "ults_created");
  for (auto kind : {o::RuntimeKind::gnu, o::RuntimeKind::intel,
                    o::RuntimeKind::glto_abt}) {
    o::SelectOptions opts;
    opts.num_threads = 4;
    opts.bind_threads = false;
    o::select(kind, opts);
    o::runtime().reset_counters();
    const double sec = run_app(kCols, kRows);
    const auto c = o::runtime().counters();
    std::printf("%-10s %12.4f %16llu %16llu\n", o::kind_name(kind), sec,
                static_cast<unsigned long long>(c.os_threads_created),
                static_cast<unsigned long long>(c.ults_created));
    o::shutdown();
  }
  std::printf("\nGNU creates an OS-thread team per library call "
              "(oversubscription); GLTO creates only ULTs (SIV-E).\n");
  return 0;
}
