// Quickstart — the 90-second tour of the OpenMP facade and runtime
// selection.
//
//   $ ./quickstart                 # defaults to the GLTO/Argobots runtime
//   $ OMP_RUNTIME=intel ./quickstart
//   $ OMP_RUNTIME=glto-mth OMP_NUM_THREADS=8 ./quickstart
//
// The same code runs over all five runtime configurations — that is the
// point of the paper: OpenMP semantics on top, swappable threading
// underneath.
#include <atomic>
#include <cstdio>
#include <vector>

#include "omp/omp.hpp"

namespace o = glto::omp;

int main() {
  // Pick a runtime from $OMP_RUNTIME (default glto-abt) and $OMP_NESTED.
  o::select_from_env();
  std::printf("runtime: %s, max threads: %d\n",
              o::kind_name(o::current_kind()), o::max_threads());

  // 1. A parallel region: the lambda body runs once per team member.
  o::parallel([](int tid, int nth) {
    std::printf("  hello from thread %d of %d\n", tid, nth);
  });

  // 2. A work-shared loop with a reduction.
  const double pi_ish = o::reduce_sum(0, 1'000'000, [](std::int64_t i) {
    const double x = (double(i) + 0.5) / 1'000'000.0;
    return 4.0 / (1.0 + x * x) / 1'000'000.0;
  });
  std::printf("pi = %.6f (integrated with a parallel reduction)\n", pi_ish);

  // 3. Tasks: one producer, everyone consumes.
  std::atomic<int> done{0};
  o::parallel([&](int, int) {
    o::single([&] {
      for (int i = 0; i < 100; ++i) {
        o::task([&] { done.fetch_add(1); });
      }
      o::taskwait();
    });
  });
  std::printf("tasks executed: %d\n", done.load());

  // 4. Nested parallelism — cheap over GLTO (ULTs only, §IV-E).
  std::atomic<int> inner{0};
  o::parallel(2, [&](int, int) {
    o::parallel(2, [&](int, int) { inner.fetch_add(1); });
  });
  std::printf("nested leaf regions: %d\n", inner.load());

  o::shutdown();
  return 0;
}
