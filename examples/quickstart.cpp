// Quickstart — the 90-second tour of the OpenMP facade and runtime
// selection.
//
//   $ ./quickstart                 # defaults to the GLTO/Argobots runtime
//   $ OMP_RUNTIME=intel ./quickstart
//   $ OMP_RUNTIME=glto-mth OMP_NUM_THREADS=8 ./quickstart
//
// The same code runs over all five runtime configurations — that is the
// point of the paper: OpenMP semantics on top, swappable threading
// underneath.
#include <atomic>
#include <cstdio>
#include <vector>

#include "omp/omp.hpp"

namespace o = glto::omp;

int main() {
  // Pick a runtime from $OMP_RUNTIME (default glto-abt) and $OMP_NESTED.
  o::select_from_env();
  std::printf("runtime: %s, max threads: %d\n",
              o::kind_name(o::current_kind()), o::max_threads());

  // 1. A parallel region: the lambda body runs once per team member.
  o::parallel([](int tid, int nth) {
    std::printf("  hello from thread %d of %d\n", tid, nth);
  });

  // 2. A work-shared loop with a reduction.
  const double pi_ish = o::reduce_sum(0, 1'000'000, [](std::int64_t i) {
    const double x = (double(i) + 0.5) / 1'000'000.0;
    return 4.0 / (1.0 + x * x) / 1'000'000.0;
  });
  std::printf("pi = %.6f (integrated with a parallel reduction)\n", pi_ish);

  // 3. Tasks: one producer, everyone consumes. Small captures live
  //    inline in the task descriptor — spawning allocates nothing.
  std::atomic<int> done{0};
  o::parallel([&](int, int) {
    o::single([&] {
      for (int i = 0; i < 100; ++i) {
        o::task([&done] { done.fetch_add(1); });
      }
      o::taskwait();
    });
  });
  const auto ts = o::task_stats();
  std::printf("tasks executed: %d (descriptors inline=%llu spilled=%llu)\n",
              done.load(), static_cast<unsigned long long>(ts.task_inline),
              static_cast<unsigned long long>(ts.task_alloc));

  // 3b. A value-returning task: omp::future<T> carries the result (and
  //     any exception) back to the creator.
  o::parallel([](int, int) {
    o::single([] {
      auto f = o::task_ret([](int a, int b) { return a * b; }, 6, 7);
      std::printf("task_ret answered: %d\n", f.get());
    });
  });

  // 3c. A grain-controlled parallel loop: schedule, chunk grain, and a
  //     serial cutoff in one call (small trip counts skip the fork).
  std::atomic<std::int64_t> evens{0};
  o::par_for(0, 1000, {o::Schedule::Dynamic, /*grain=*/64, /*cutoff=*/32},
             [&](std::int64_t i) {
               if (i % 2 == 0) evens.fetch_add(1);
             });
  std::printf("par_for counted %lld evens\n",
              static_cast<long long>(evens.load()));

  // 4. Nested parallelism — cheap over GLTO (ULTs only, §IV-E).
  std::atomic<int> inner{0};
  o::parallel(2, [&](int, int) {
    o::parallel(2, [&](int, int) { inner.fetch_add(1); });
  });
  std::printf("nested leaf regions: %d\n", inner.load());

  o::shutdown();
  return 0;
}
