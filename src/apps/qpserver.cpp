#include "apps/qpserver.hpp"

#include <atomic>
#include <memory>
#include <vector>

#include "apps/bqp.hpp"
#include "common/debug.hpp"
#include "common/env.hpp"
#include "common/time.hpp"
#include "glt/glt.hpp"
#include "sched/metrics.hpp"
#include "sched/sync.hpp"

namespace glto::apps::qpserver {

namespace {

/// One queued solve request. Trivially copyable by design — the channel
/// ships descriptors, the problem data is shared read-only.
struct Request {
  std::int64_t enqueue_ns = 0;
  std::uint32_t id = 0;
};

struct ServerCtx {
  sched::Channel<Request>* chan = nullptr;
  const bqp::Problem* problem = nullptr;
  sched::LatencyHistogram* hist = nullptr;
  std::atomic<std::uint64_t>* completed = nullptr;
  std::atomic<std::uint64_t>* not_converged = nullptr;
  int max_iters = 0;
};

/// Worker ULT: blocks on the channel (true suspension — the GLT_thread
/// runs other work meanwhile), solves, stamps the latency. Exits when the
/// channel is closed and drained.
void worker_main(void* argp) {
  auto* ctx = static_cast<ServerCtx*>(argp);
  Request req;
  while (ctx->chan->recv(req)) {
    const bqp::Result r =
        bqp::solve(*ctx->problem, bqp::Mode::sequential, ctx->max_iters);
    if (!r.converged) {
      ctx->not_converged->fetch_add(1, std::memory_order_relaxed);
    }
    const std::int64_t now = common::now_ns();
    ctx->hist->record(now > req.enqueue_ns
                          ? static_cast<std::uint64_t>(now - req.enqueue_ns)
                          : 0);
    ctx->completed->fetch_add(1, std::memory_order_relaxed);
  }
}

std::int64_t knob(const char* name, std::int64_t dflt) {
  return common::env_i64(name, dflt);
}

}  // namespace

Config config_from_env() {
  Config c;
  c.requests = static_cast<int>(knob("GLTO_QPSERVER_REQUESTS", c.requests));
  c.concurrency =
      static_cast<int>(knob("GLTO_QPSERVER_CONCURRENCY", c.concurrency));
  c.queue_depth = static_cast<int>(knob("GLTO_QPSERVER_QUEUE", c.queue_depth));
  c.n = static_cast<int>(knob("GLTO_QPSERVER_N", c.n));
  c.tile = static_cast<int>(knob("GLTO_QPSERVER_TILE", c.tile));
  c.rank = static_cast<int>(knob("GLTO_QPSERVER_RANK", c.rank));
  c.max_iters = static_cast<int>(knob("GLTO_QPSERVER_ITERS", c.max_iters));
  c.seed = static_cast<std::uint64_t>(knob("GLTO_QPSERVER_SEED",
                                           static_cast<std::int64_t>(c.seed)));
  return c;
}

Report run(const Config& cfg) {
  GLTO_CHECK_MSG(glt::initialized(), "qpserver::run requires glt::init");
  GLTO_CHECK(cfg.requests > 0 && cfg.concurrency > 0 && cfg.queue_depth > 0);

  const bqp::Problem problem =
      bqp::make_problem(cfg.n, cfg.tile, cfg.rank, cfg.seed);
  sched::Channel<Request> chan(static_cast<std::size_t>(cfg.queue_depth));
  auto hist = std::make_unique<sched::LatencyHistogram>();
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> not_converged{0};

  ServerCtx ctx;
  ctx.chan = &chan;
  ctx.problem = &problem;
  ctx.hist = hist.get();
  ctx.completed = &completed;
  ctx.not_converged = &not_converged;
  ctx.max_iters = cfg.max_iters;

  common::Timer timer;
  std::vector<glt::Ult*> workers;
  workers.reserve(static_cast<std::size_t>(cfg.concurrency));
  for (int i = 0; i < cfg.concurrency; ++i) {
    workers.push_back(glt::ult_create(worker_main, &ctx));
  }

  // The producer blocks when the queue is full — channel backpressure is
  // the admission control; a saturated server queues at most queue_depth.
  for (int i = 0; i < cfg.requests; ++i) {
    Request req;
    req.enqueue_ns = common::now_ns();
    req.id = static_cast<std::uint32_t>(i);
    const bool sent = chan.send(req);
    GLTO_CHECK_MSG(sent, "qpserver channel closed while producing");
  }
  chan.close();
  for (glt::Ult* w : workers) glt::ult_join(w);

  Report rep;
  rep.elapsed_s = timer.elapsed_sec();
  rep.completed = completed.load(std::memory_order_relaxed);
  rep.not_converged = not_converged.load(std::memory_order_relaxed);
  rep.throughput_rps =
      rep.elapsed_s > 0 ? static_cast<double>(rep.completed) / rep.elapsed_s
                        : 0.0;
  rep.p50_us = hist->percentile_ns(50) / 1000;
  rep.p95_us = hist->percentile_ns(95) / 1000;
  rep.p99_us = hist->percentile_ns(99) / 1000;
  rep.max_us = hist->max_ns() / 1000;
  return rep;
}

}  // namespace glto::apps::qpserver
