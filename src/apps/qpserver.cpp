#include "apps/qpserver.hpp"

#include <atomic>
#include <memory>
#include <vector>

#include "apps/bqp.hpp"
#include "common/debug.hpp"
#include "common/env.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "glt/glt.hpp"
#include "sched/metrics.hpp"
#include "sched/qos.hpp"
#include "sched/sync.hpp"

namespace glto::apps::qpserver {

namespace {

/// One queued solve request. Trivially copyable by design — the channel
/// ships descriptors, the problem data is shared read-only.
struct Request {
  std::int64_t enqueue_ns = 0;   ///< first arrival (latency + deadline base)
  std::int64_t deadline_ns = 0;  ///< absolute budget; 0 = no deadline
  std::uint32_t id = 0;
  std::uint32_t attempt = 0;     ///< admission attempts already consumed
};

struct ServerCtx {
  sched::Channel<Request>* chan = nullptr;
  const bqp::Problem* problem = nullptr;
  sched::LatencyHistogram* hist = nullptr;
  const Config* cfg = nullptr;
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> deadline_missed{0};
  std::atomic<std::uint64_t> retried{0};
  std::atomic<std::uint64_t> degraded{0};
  std::atomic<std::uint64_t> not_converged{0};
  /// Smoothed solve time feeding the admission estimate. Updated with
  /// racy relaxed load/store — a lossy heuristic, not a sync channel.
  std::atomic<std::uint64_t> ewma_service_ns{0};
  std::atomic<bool> degrade_on{false};
};

/// Lowered IPM cap for degrade mode: quarter budget, floor of 4 — enough
/// to hand back a usable (if loose) iterate.
int degraded_cap(const Config& cfg) {
  return cfg.max_iters / 4 > 4 ? cfg.max_iters / 4 : 4;
}

/// Hysteresis on the queue depth: degrade above 3/4 capacity, recover
/// below 1/4. Workers call this often; both loads are racy snapshots.
void update_degrade(ServerCtx* ctx) {
  if (!ctx->cfg->degrade) return;
  const std::size_t depth = ctx->chan->size();
  const std::size_t cap = ctx->chan->capacity();
  if (depth * 4 >= cap * 3) {
    ctx->degrade_on.store(true, std::memory_order_relaxed);
  } else if (depth * 4 <= cap) {
    ctx->degrade_on.store(false, std::memory_order_relaxed);
  }
}

/// Worker ULT: blocks on the channel (true suspension — the GLT_thread
/// runs other work meanwhile), solves, stamps the latency. Exits when the
/// channel is closed and drained. Every dequeued request lands in exactly
/// one terminal bucket: completed, or deadline_missed (expired while
/// queued, abandoned in-flight, or finished late).
void worker_main(void* argp) {
  auto* ctx = static_cast<ServerCtx*>(argp);
  const Config& cfg = *ctx->cfg;
  Request req;
  while (ctx->chan->recv(req)) {
    std::int64_t now = common::now_ns();
    if (req.deadline_ns != 0 && now >= req.deadline_ns) {
      // Expired while queued: don't burn solver time on a dead request.
      ctx->deadline_missed.fetch_add(1, std::memory_order_relaxed);
      sched::qos_note_deadline_miss(req.id, sched::QosMissPhase::queued);
      update_degrade(ctx);
      continue;
    }
    const bool degraded =
        cfg.degrade && ctx->degrade_on.load(std::memory_order_relaxed);
    if (degraded) {
      ctx->degraded.fetch_add(1, std::memory_order_relaxed);
      sched::qos_note_degraded();
    }
    sched::QosContext qos;
    qos.deadline_ns = req.deadline_ns;
    qos.attempt = req.attempt;
    const std::int64_t solve_start = now;
    const bqp::Result r =
        bqp::solve(*ctx->problem, bqp::Mode::sequential,
                   degraded ? degraded_cap(cfg) : cfg.max_iters,
                   /*tol=*/1e-10, &qos);
    now = common::now_ns();
    if (!r.deadline_abandoned) {
      const std::uint64_t service =
          now > solve_start ? static_cast<std::uint64_t>(now - solve_start)
                            : 1;
      const std::uint64_t prev =
          ctx->ewma_service_ns.load(std::memory_order_relaxed);
      ctx->ewma_service_ns.store(
          prev == 0 ? service : (7 * prev + service) / 8,
          std::memory_order_relaxed);
    }
    if (r.deadline_abandoned) {
      ctx->deadline_missed.fetch_add(1, std::memory_order_relaxed);
      sched::qos_note_deadline_miss(req.id, sched::QosMissPhase::in_flight);
    } else if (req.deadline_ns != 0 && now > req.deadline_ns) {
      ctx->deadline_missed.fetch_add(1, std::memory_order_relaxed);
      sched::qos_note_deadline_miss(req.id, sched::QosMissPhase::late);
    } else {
      if (!r.converged) {
        ctx->not_converged.fetch_add(1, std::memory_order_relaxed);
      }
      ctx->hist->record(now > req.enqueue_ns
                            ? static_cast<std::uint64_t>(now - req.enqueue_ns)
                            : 0);
      ctx->completed.fetch_add(1, std::memory_order_relaxed);
      sched::qos_note_completed();
    }
    update_degrade(ctx);
  }
}

/// Admission control for one request. True once the request is queued (a
/// worker then owns its terminal accounting); false when it was shed —
/// counted here, exactly once, after the retry budget is spent. Without a
/// deadline this degrades to the original blocking send (backpressure is
/// the only admission control, nothing is ever shed).
bool admit(ServerCtx* ctx, Request req) {
  const Config& cfg = *ctx->cfg;
  common::SplitRng rng = common::SplitRng(cfg.seed).split(req.id);
  for (;;) {
    const std::int64_t now = common::now_ns();
    bool attempt_ok = true;
    if (req.deadline_ns != 0) {
      if (now >= req.deadline_ns) {
        attempt_ok = false;
      } else {
        // Estimated queue wait from the live backlog and the smoothed
        // solve time: if the wait alone eats the remaining budget, shed
        // now instead of queueing a request that can only expire.
        const std::uint64_t est_wait_ns =
            ctx->chan->size() *
            ctx->ewma_service_ns.load(std::memory_order_relaxed) /
            static_cast<std::uint64_t>(cfg.concurrency);
        attempt_ok =
            now + static_cast<std::int64_t>(est_wait_ns) < req.deadline_ns;
      }
    }
    if (attempt_ok) {
      bool sent;
      if (req.deadline_ns != 0) {
        // This attempt may only block for its slice of the remaining
        // budget, leaving room for the retries still available.
        const int attempts_left = cfg.retries - static_cast<int>(req.attempt);
        const std::int64_t slice = (req.deadline_ns - now) / (attempts_left + 1);
        sent = ctx->chan->send_until(req, now + (slice > 0 ? slice : 1));
      } else {
        sent = ctx->chan->send(req);
      }
      if (sent) return true;
      GLTO_CHECK_MSG(!ctx->chan->closed(),
                     "qpserver channel closed while producing");
    }
    if (req.deadline_ns == 0 || static_cast<int>(req.attempt) >= cfg.retries ||
        common::now_ns() >= req.deadline_ns) {
      ctx->shed.fetch_add(1, std::memory_order_relaxed);
      sched::qos_note_shed(req.id, req.attempt + 1);
      return false;
    }
    ++req.attempt;
    ctx->retried.fetch_add(1, std::memory_order_relaxed);
    sched::qos_note_retried();
    // Deterministic jittered backoff: (seed, id, attempt) fixes the
    // jitter, so a rerun sheds and retries identically. Clamped to the
    // deadline — an exhausted budget resolves to shed on the next pass.
    const std::int64_t step_us =
        static_cast<std::int64_t>(cfg.backoff_us) * req.attempt;
    const std::int64_t jitter_us = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(cfg.backoff_us) + 1));
    const std::int64_t wake_ns = common::now_ns() + (step_us + jitter_us) * 1000;
    sched::backoff_until(wake_ns < req.deadline_ns ? wake_ns : req.deadline_ns);
  }
}

/// Per-request client ULT for the paced open-loop mode: runs admission
/// (including retry backoff) off the producer's critical path so the
/// offered arrival rate is not distorted by a congested queue.
struct ClientArg {
  ServerCtx* ctx = nullptr;
  Request req;
};

void client_main(void* argp) {
  auto* a = static_cast<ClientArg*>(argp);
  admit(a->ctx, a->req);
}

std::int64_t knob(const char* name, std::int64_t dflt) {
  return common::env_i64(name, dflt);
}

}  // namespace

Config config_from_env() {
  Config c;
  c.requests = static_cast<int>(knob("GLTO_QPSERVER_REQUESTS", c.requests));
  c.concurrency =
      static_cast<int>(knob("GLTO_QPSERVER_CONCURRENCY", c.concurrency));
  c.queue_depth = static_cast<int>(knob("GLTO_QPSERVER_QUEUE", c.queue_depth));
  c.n = static_cast<int>(knob("GLTO_QPSERVER_N", c.n));
  c.tile = static_cast<int>(knob("GLTO_QPSERVER_TILE", c.tile));
  c.rank = static_cast<int>(knob("GLTO_QPSERVER_RANK", c.rank));
  c.max_iters = static_cast<int>(knob("GLTO_QPSERVER_ITERS", c.max_iters));
  c.seed = static_cast<std::uint64_t>(knob("GLTO_QPSERVER_SEED",
                                           static_cast<std::int64_t>(c.seed)));
  c.deadline_ms =
      static_cast<int>(knob("GLTO_QPSERVER_DEADLINE_MS", c.deadline_ms));
  c.retries = static_cast<int>(knob("GLTO_QPSERVER_RETRIES", c.retries));
  c.backoff_us =
      static_cast<int>(knob("GLTO_QPSERVER_BACKOFF_US", c.backoff_us));
  c.degrade = common::env_bool("GLTO_QPSERVER_DEGRADE", c.degrade);
  return c;
}

Report run(const Config& cfg) {
  GLTO_CHECK_MSG(glt::initialized(), "qpserver::run requires glt::init");
  GLTO_CHECK(cfg.requests > 0 && cfg.concurrency > 0 && cfg.queue_depth > 0);
  GLTO_CHECK(cfg.deadline_ms >= 0 && cfg.retries >= 0 && cfg.backoff_us >= 0);

  const bqp::Problem problem =
      bqp::make_problem(cfg.n, cfg.tile, cfg.rank, cfg.seed);
  sched::Channel<Request> chan(static_cast<std::size_t>(cfg.queue_depth));
  auto hist = std::make_unique<sched::LatencyHistogram>();

  ServerCtx ctx;
  ctx.chan = &chan;
  ctx.problem = &problem;
  ctx.hist = hist.get();
  ctx.cfg = &cfg;

  common::Timer timer;
  std::vector<glt::Ult*> workers;
  workers.reserve(static_cast<std::size_t>(cfg.concurrency));
  for (int i = 0; i < cfg.concurrency; ++i) {
    workers.push_back(glt::ult_create(worker_main, &ctx));
  }

  const std::int64_t budget_ns =
      static_cast<std::int64_t>(cfg.deadline_ms) * 1'000'000;

  if (cfg.arrival_rps > 0.0) {
    // Open loop: arrivals are paced at the offered rate regardless of
    // server state; each request gets a client ULT so admission retries
    // never hold the pacing loop back. ClientArgs are PODs with stable
    // addresses for the lifetime of their ULTs.
    std::vector<ClientArg> args(static_cast<std::size_t>(cfg.requests));
    std::vector<glt::Ult*> clients;
    clients.reserve(args.size());
    const double gap_ns = 1e9 / cfg.arrival_rps;
    double next_ns = static_cast<double>(common::now_ns());
    for (int i = 0; i < cfg.requests; ++i) {
      if (common::now_ns() < static_cast<std::int64_t>(next_ns)) {
        sched::backoff_until(static_cast<std::int64_t>(next_ns));
      }
      const std::int64_t arrive = common::now_ns();
      Request req;
      req.enqueue_ns = arrive;
      req.deadline_ns = budget_ns > 0 ? arrive + budget_ns : 0;
      req.id = static_cast<std::uint32_t>(i);
      args[static_cast<std::size_t>(i)] = ClientArg{&ctx, req};
      clients.push_back(
          glt::ult_create(client_main, &args[static_cast<std::size_t>(i)]));
      next_ns += gap_ns;
    }
    for (glt::Ult* c : clients) glt::ult_join(c);
  } else {
    // Closed loop: the producer itself runs admission; with no deadline
    // this is the original behaviour — channel backpressure suspends the
    // producer and nothing is ever shed.
    for (int i = 0; i < cfg.requests; ++i) {
      const std::int64_t arrive = common::now_ns();
      Request req;
      req.enqueue_ns = arrive;
      req.deadline_ns = budget_ns > 0 ? arrive + budget_ns : 0;
      req.id = static_cast<std::uint32_t>(i);
      admit(&ctx, req);
    }
  }
  chan.close();
  for (glt::Ult* w : workers) glt::ult_join(w);

  Report rep;
  rep.offered = static_cast<std::uint64_t>(cfg.requests);
  rep.completed = ctx.completed.load(std::memory_order_relaxed);
  rep.shed = ctx.shed.load(std::memory_order_relaxed);
  rep.deadline_missed = ctx.deadline_missed.load(std::memory_order_relaxed);
  rep.retried = ctx.retried.load(std::memory_order_relaxed);
  rep.degraded = ctx.degraded.load(std::memory_order_relaxed);
  rep.not_converged = ctx.not_converged.load(std::memory_order_relaxed);
  rep.elapsed_s = timer.elapsed_sec();
  rep.throughput_rps =
      rep.elapsed_s > 0 ? static_cast<double>(rep.offered) / rep.elapsed_s
                        : 0.0;
  rep.goodput_rps =
      rep.elapsed_s > 0 ? static_cast<double>(rep.completed) / rep.elapsed_s
                        : 0.0;
  rep.p50_us = hist->percentile_ns(50) / 1000;
  rep.p95_us = hist->percentile_ns(95) / 1000;
  rep.p99_us = hist->percentile_ns(99) / 1000;
  rep.max_us = hist->max_ns() / 1000;
  GLTO_CHECK_MSG(rep.completed + rep.shed + rep.deadline_missed == rep.offered,
                 "qpserver: request accounting leak");
  return rep;
}

}  // namespace glto::apps::qpserver
