#include "apps/clover.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>

#include "common/debug.hpp"
#include "omp/omp.hpp"

namespace glto::apps::clover {

namespace {
constexpr double kDx = 1.0;  // unit cell spacing (bm grids are uniform)
constexpr double kDy = 1.0;
}  // namespace

Clover::Clover(const Config& cfg) : cfg_(cfg) {
  const int nx = cfg.nx, ny = cfg.ny;
  density0_ = Field(nx, ny, 0.2);
  density1_ = Field(nx, ny, 0.2);
  energy0_ = Field(nx, ny, 1.0);
  energy1_ = Field(nx, ny, 1.0);
  pressure_ = Field(nx, ny);
  viscosity_ = Field(nx, ny);
  soundspeed_ = Field(nx, ny);
  xvel0_ = Field(nx + 1, ny + 1);
  xvel1_ = Field(nx + 1, ny + 1);
  yvel0_ = Field(nx + 1, ny + 1);
  yvel1_ = Field(nx + 1, ny + 1);
  vol_flux_x_ = Field(nx + 1, ny);
  vol_flux_y_ = Field(nx, ny + 1);
  mass_flux_x_ = Field(nx + 1, ny);
  mass_flux_y_ = Field(nx, ny + 1);
  work_ = Field(nx, ny);
}

void Clover::init_state() {
  // clover_bm-style two-state problem: ambient gas + dense energetic
  // square in the lower-left corner.
  const int nx = cfg_.nx, ny = cfg_.ny;
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      const bool in_state2 = i < nx / 4 && j < ny / 4;
      density0_.at(i, j) = in_state2 ? 1.0 : 0.2;
      energy0_.at(i, j) = in_state2 ? 2.5 : 1.0;
      density1_.at(i, j) = density0_.at(i, j);
      energy1_.at(i, j) = energy0_.at(i, j);
    }
  }
  for (int j = 0; j <= ny; ++j) {
    for (int i = 0; i <= nx; ++i) {
      xvel0_.at(i, j) = xvel1_.at(i, j) = 0.0;
      yvel0_.at(i, j) = yvel1_.at(i, j) = 0.0;
    }
  }
  regions_issued_ = 0;
  regions_per_step_ = 0;
}

void Clover::rows(const std::function<void(int)>& row_body) {
  ++regions_issued_;
  omp::par_for(0, cfg_.ny, [&](std::int64_t j) {
    row_body(static_cast<int>(j));
  });
}

void Clover::ideal_gas() {
  rows([&](int j) {
    for (int i = 0; i < cfg_.nx; ++i) {
      const double rho = density0_.at(i, j);
      const double e = energy0_.at(i, j);
      const double p = (cfg_.gamma - 1.0) * rho * e;
      pressure_.at(i, j) = p;
      soundspeed_.at(i, j) = std::sqrt(cfg_.gamma * p / rho);
    }
  });
}

void Clover::viscosity_kernel() {
  rows([&](int j) {
    for (int i = 0; i < cfg_.nx; ++i) {
      // Artificial viscosity where the flow converges.
      const double dudx =
          0.5 * (xvel0_.at(i + 1, j) + xvel0_.at(i + 1, j + 1) -
                 xvel0_.at(i, j) - xvel0_.at(i, j + 1)) /
          kDx;
      const double dvdy =
          0.5 * (yvel0_.at(i, j + 1) + yvel0_.at(i + 1, j + 1) -
                 yvel0_.at(i, j) - yvel0_.at(i + 1, j)) /
          kDy;
      const double div = dudx + dvdy;
      viscosity_.at(i, j) =
          div < 0.0 ? 2.0 * density0_.at(i, j) * div * div : 0.0;
    }
  });
}

void Clover::calc_dt() {
  // Min-reduction over the grid: dt ≤ cfl · dx / (cs + |u|).
  std::atomic<std::int64_t> dt_bits;
  dt_bits.store(0x7FF0000000000000LL);  // +inf
  auto atomic_min = [&](double v) {
    std::int64_t nv;
    std::memcpy(&nv, &v, sizeof(nv));
    std::int64_t cur = dt_bits.load(std::memory_order_relaxed);
    double curd;
    std::memcpy(&curd, &cur, sizeof(curd));
    while (v < curd) {
      if (dt_bits.compare_exchange_weak(cur, nv, std::memory_order_relaxed)) {
        break;
      }
      std::memcpy(&curd, &cur, sizeof(curd));
    }
  };
  ++regions_issued_;
  omp::par_for(0, cfg_.ny, [&](std::int64_t j) {
    double local = 1e30;
    for (int i = 0; i < cfg_.nx; ++i) {
      const double cs = soundspeed_.at(i, static_cast<int>(j));
      const double u = std::abs(xvel0_.at(i, static_cast<int>(j)));
      const double v = std::abs(yvel0_.at(i, static_cast<int>(j)));
      local = std::min(local, kDx / (cs + u + v + 1e-12));
    }
    atomic_min(local);
  });
  std::int64_t bits = dt_bits.load(std::memory_order_relaxed);
  double mindt;
  std::memcpy(&mindt, &bits, sizeof(mindt));
  dt_ = std::min(cfg_.cfl * mindt, 0.04);
}

void Clover::pdv(bool predict) {
  const double factor = predict ? 0.5 : 1.0;
  rows([&](int j) {
    for (int i = 0; i < cfg_.nx; ++i) {
      const double dudx =
          0.5 * (xvel0_.at(i + 1, j) + xvel0_.at(i + 1, j + 1) -
                 xvel0_.at(i, j) - xvel0_.at(i, j + 1)) /
          kDx;
      const double dvdy =
          0.5 * (yvel0_.at(i, j + 1) + yvel0_.at(i + 1, j + 1) -
                 yvel0_.at(i, j) - yvel0_.at(i + 1, j)) /
          kDy;
      const double div = dudx + dvdy;
      const double p = pressure_.at(i, j) + viscosity_.at(i, j);
      const double de = -p * div * factor * dt_ / density0_.at(i, j);
      energy1_.at(i, j) = std::max(1e-6, energy0_.at(i, j) + de);
    }
  });
}

void Clover::accelerate() {
  rows([&](int j) {
    if (j == 0) return;  // corner rows 1..ny-1 interior
    for (int i = 1; i < cfg_.nx; ++i) {
      // Node (i,j) sits between cells (i-1..i, j-1..j).
      const double rho_avg =
          0.25 * (density0_.at(i - 1, j - 1) + density0_.at(i, j - 1) +
                  density0_.at(i - 1, j) + density0_.at(i, j));
      const double dpdx = 0.5 *
                          (pressure_.at(i, j - 1) + pressure_.at(i, j) -
                           pressure_.at(i - 1, j - 1) - pressure_.at(i - 1, j)) /
                          kDx;
      const double dpdy = 0.5 *
                          (pressure_.at(i - 1, j) + pressure_.at(i, j) -
                           pressure_.at(i - 1, j - 1) - pressure_.at(i, j - 1)) /
                          kDy;
      xvel1_.at(i, j) = xvel0_.at(i, j) - dt_ * dpdx / rho_avg;
      yvel1_.at(i, j) = yvel0_.at(i, j) - dt_ * dpdy / rho_avg;
      // Clamp: keeps the simplified scheme robustly bounded.
      xvel1_.at(i, j) = std::clamp(xvel1_.at(i, j), -2.0, 2.0);
      yvel1_.at(i, j) = std::clamp(yvel1_.at(i, j), -2.0, 2.0);
    }
  });
}

void Clover::flux_calc() {
  rows([&](int j) {
    // x-faces: interior faces 1..nx-1 (wall faces carry zero flux).
    for (int i = 1; i < cfg_.nx; ++i) {
      vol_flux_x_.at(i, j) =
          0.5 * dt_ * kDy * (xvel1_.at(i, j) + xvel1_.at(i, j + 1)) * 0.5;
    }
    // y-faces.
    if (j >= 1) {
      for (int i = 0; i < cfg_.nx; ++i) {
        vol_flux_y_.at(i, j) =
            0.5 * dt_ * kDx * (yvel1_.at(i, j) + yvel1_.at(i + 1, j)) * 0.5;
      }
    }
  });
}

void Clover::advec_cell(int sweep) {
  const double cell_vol = kDx * kDy;
  if (sweep == 0) {
    // x-sweep: upwind mass flux through x-faces.
    rows([&](int j) {
      for (int i = 1; i < cfg_.nx; ++i) {
        const double vf = vol_flux_x_.at(i, j);
        const double rho_up = vf >= 0 ? density1_.at(i - 1, j)
                                      : density1_.at(i, j);
        mass_flux_x_.at(i, j) = vf * rho_up;
        const double e_up = vf >= 0 ? energy1_.at(i - 1, j)
                                    : energy1_.at(i, j);
        work_.at(i, j) = mass_flux_x_.at(i, j) * e_up;  // energy flux
      }
    });
    rows([&](int j) {
      for (int i = 0; i < cfg_.nx; ++i) {
        const double m_in = i >= 1 ? mass_flux_x_.at(i, j) : 0.0;
        const double m_out = i + 1 <= cfg_.nx - 1 ? mass_flux_x_.at(i + 1, j)
                                                  : 0.0;
        const double e_in = i >= 1 ? work_.at(i, j) : 0.0;
        const double e_out = i + 1 <= cfg_.nx - 1 ? work_.at(i + 1, j) : 0.0;
        const double mass0 = density1_.at(i, j) * cell_vol;
        const double mass1 = mass0 + m_in - m_out;
        const double etot1 = mass0 * energy1_.at(i, j) + e_in - e_out;
        density1_.at(i, j) = std::max(1e-8, mass1 / cell_vol);
        energy1_.at(i, j) = std::max(1e-6, etot1 / std::max(1e-12, mass1));
      }
    });
  } else {
    // y-sweep.
    rows([&](int j) {
      if (j < 1) return;
      for (int i = 0; i < cfg_.nx; ++i) {
        const double vf = vol_flux_y_.at(i, j);
        const double rho_up = vf >= 0 ? density1_.at(i, j - 1)
                                      : density1_.at(i, j);
        mass_flux_y_.at(i, j) = vf * rho_up;
        const double e_up = vf >= 0 ? energy1_.at(i, j - 1)
                                    : energy1_.at(i, j);
        work_.at(i, j) = mass_flux_y_.at(i, j) * e_up;
      }
    });
    rows([&](int j) {
      for (int i = 0; i < cfg_.nx; ++i) {
        const double m_in = j >= 1 ? mass_flux_y_.at(i, j) : 0.0;
        const double m_out = j + 1 <= cfg_.ny - 1 ? mass_flux_y_.at(i, j + 1)
                                                  : 0.0;
        const double e_in = j >= 1 ? work_.at(i, j) : 0.0;
        const double e_out = j + 1 <= cfg_.ny - 1 ? work_.at(i, j + 1) : 0.0;
        const double mass0 = density1_.at(i, j) * cell_vol;
        const double mass1 = mass0 + m_in - m_out;
        const double etot1 = mass0 * energy1_.at(i, j) + e_in - e_out;
        density1_.at(i, j) = std::max(1e-8, mass1 / cell_vol);
        energy1_.at(i, j) = std::max(1e-6, etot1 / std::max(1e-12, mass1));
      }
    });
  }
}

void Clover::advec_mom(int sweep) {
  // Simplified momentum advection: relax corner velocities toward the
  // local average (upwind-weighted), preserving boundedness. Two regions
  // (gather the averages into work_, then apply) like the Fortran
  // original's separate node-flux and velocity kernels: the average reads
  // the j-1/j+1 neighbours, so a single in-place pass parallelized over
  // rows would race with the rows updating those neighbours. Phase one
  // only reads vel; phase two touches row-local cells only.
  Field& vel = sweep == 0 ? xvel1_ : yvel1_;
  rows([&](int j) {
    if (j == 0) return;
    for (int i = 1; i < cfg_.nx; ++i) {
      work_.at(i, j) = 0.25 * (vel.at(i - 1, j) + vel.at(i + 1, j) +
                               vel.at(i, j - 1) + vel.at(i, j + 1));
    }
  });
  rows([&](int j) {
    if (j == 0) return;
    for (int i = 1; i < cfg_.nx; ++i) {
      vel.at(i, j) = 0.98 * vel.at(i, j) + 0.02 * work_.at(i, j);
    }
  });
}

void Clover::reset_fields() {
  rows([&](int j) {
    for (int i = 0; i < cfg_.nx; ++i) {
      density0_.at(i, j) = density1_.at(i, j);
      energy0_.at(i, j) = energy1_.at(i, j);
    }
    for (int i = 0; i <= cfg_.nx; ++i) {
      xvel0_.at(i, j) = xvel1_.at(i, j);
      yvel0_.at(i, j) = yvel1_.at(i, j);
      if (j == cfg_.ny - 1) {
        xvel0_.at(i, j + 1) = xvel1_.at(i, j + 1);
        yvel0_.at(i, j + 1) = yvel1_.at(i, j + 1);
      }
    }
  });
}

void Clover::pad_regions() {
  // CloverLeaf issues 114 `parallel for` regions per step across its full
  // kernel set (boundary exchanges, field summaries, MUSCL slopes, ...).
  // The simplified scheme above issues fewer; pad with minimal kernels so
  // the per-step region count — the quantity Figs. 6/7 stress — matches.
  while (regions_per_step_ < 114) {
    ++regions_per_step_;
    ++regions_issued_;
    omp::par_for(0, cfg_.ny, [&](std::int64_t j) {
      work_.at(0, static_cast<int>(j)) += 0.0;
    });
  }
}

void Clover::lagrangian_copy() {
  // Hand the Lagrangian-step state to the advection (remap) phase: the
  // simplified Lagrangian step leaves density unchanged.
  rows([&](int j) {
    for (int i = 0; i < cfg_.nx; ++i) {
      density1_.at(i, j) = density0_.at(i, j);
    }
  });
}

void Clover::step() {
  const std::int64_t before = regions_issued_;
  ideal_gas();
  viscosity_kernel();
  calc_dt();
  pdv(true);
  accelerate();
  pdv(false);
  lagrangian_copy();
  flux_calc();
  advec_cell(0);
  advec_cell(1);
  advec_mom(0);
  advec_mom(1);
  reset_fields();
  regions_per_step_ = static_cast<int>(regions_issued_ - before);
  if (cfg_.pad_to_114_regions) pad_regions();
  regions_per_step_ = static_cast<int>(regions_issued_ - before);
}

void Clover::run(int steps) {
  for (int s = 0; s < steps; ++s) step();
}

double Clover::total_mass() const {
  double m = 0.0;
  for (int j = 0; j < cfg_.ny; ++j) {
    for (int i = 0; i < cfg_.nx; ++i) m += density0_.at(i, j) * kDx * kDy;
  }
  return m;
}

double Clover::total_energy() const {
  double e = 0.0;
  for (int j = 0; j < cfg_.ny; ++j) {
    for (int i = 0; i < cfg_.nx; ++i) {
      e += density0_.at(i, j) * energy0_.at(i, j) * kDx * kDy;
    }
  }
  return e;
}

double Clover::max_velocity() const {
  double v = 0.0;
  for (int j = 0; j <= cfg_.ny; ++j) {
    for (int i = 0; i <= cfg_.nx; ++i) {
      v = std::max(v, std::abs(xvel0_.at(i, j)));
      v = std::max(v, std::abs(yvel0_.at(i, j)));
    }
  }
  return v;
}

bool Clover::all_finite() const {
  for (int j = 0; j < cfg_.ny; ++j) {
    for (int i = 0; i < cfg_.nx; ++i) {
      if (!std::isfinite(density0_.at(i, j)) ||
          !std::isfinite(energy0_.at(i, j)) ||
          !std::isfinite(pressure_.at(i, j))) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace glto::apps::clover
