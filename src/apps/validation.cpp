#include "apps/validation.hpp"

#include <atomic>
#include <cstdint>
#include <functional>
#include <set>
#include <sstream>
#include <vector>

#include "common/time.hpp"
#include "omp/omp.hpp"

namespace glto::apps::validation {

namespace o = glto::omp;

namespace {

// ---- mode plumbing ---------------------------------------------------------

using CheckFn = bool (*)();

/// Orphan mode: route the check through a non-inlined call so the
/// constructs execute outside any lexical context the caller controls.
__attribute__((noinline)) bool orphan_call(CheckFn fn) {
  // The volatile pointer defeats inlining/IPO of the target.
  CheckFn volatile vp = fn;
  return vp();
}

/// Cross mode: the whole check runs nested inside an enclosing parallel
/// region; every enclosing member must succeed.
bool cross_call(CheckFn fn) {
  std::atomic<int> ok{0};
  o::parallel(2, [&](int, int) {
    if (fn()) ok.fetch_add(1);
  });
  return ok.load() == 2;
}

bool dispatch(Mode m, CheckFn fn) {
  switch (m) {
    case Mode::normal:
      return fn();
    case Mode::orphan:
      return orphan_call(fn);
    case Mode::cross:
      return cross_call(fn);
  }
  return false;
}

/// Busy work long enough for other OS threads to get scheduled.
void spin_us(std::int64_t us) {
  const auto t0 = common::now_ns();
  while (common::now_ns() - t0 < us * 1000) {
  }
}

// ---- generic construct checks (run in all three modes) ---------------------

bool chk_parallel_default() {
  std::atomic<int> members{0};
  int seen_nth = -1;
  o::parallel([&](int tid, int nth) {
    members.fetch_add(1);
    // Single writer: every member sees the same nth, but concurrent
    // stores to one int are still a data race — only member 0 records
    // it (the region join publishes the write to the reader below).
    if (tid == 0) seen_nth = nth;
  });
  return members.load() == seen_nth && members.load() >= 1;
}

bool chk_parallel_numthreads() {
  std::atomic<int> members{0};
  o::parallel(2, [&](int, int nth) {
    if (nth == 2) members.fetch_add(1);
  });
  return members.load() == 2;
}

bool chk_parallel_repeated() {
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> members{0};
    int nth_seen = 0;
    o::parallel([&](int tid, int nth) {
      members.fetch_add(1);
      if (tid == 0) nth_seen = nth;  // single writer; join publishes
    });
    if (members.load() != nth_seen) return false;
  }
  return true;
}

bool chk_thread_num_bounds() {
  std::atomic<std::uint64_t> mask{0};
  std::atomic<bool> bad{false};
  int nth_seen = 0;
  o::parallel([&](int tid, int nth) {
    if (tid == 0) nth_seen = nth;  // single writer; join publishes
    if (tid < 0 || tid >= nth || tid >= 64) {
      bad.store(true);
      return;
    }
    const std::uint64_t bit = 1ULL << tid;
    if (mask.fetch_or(bit) & bit) bad.store(true);  // duplicate id
  });
  return !bad.load() &&
         mask.load() == (nth_seen >= 64 ? ~0ULL : (1ULL << nth_seen) - 1);
}

bool chk_num_threads_query() {
  const int outside = o::num_threads();  // enclosing team (1 when serial)
  std::atomic<bool> ok{true};
  o::parallel(2, [&](int, int nth) {
    if (o::num_threads() != nth) ok.store(false);
  });
  return ok.load() && o::num_threads() == outside;
}

bool chk_level_query() {
  const int outside = o::level();
  std::atomic<bool> ok{true};
  o::parallel(2, [&](int, int) {
    if (o::level() != outside + 1) ok.store(false);
  });
  return ok.load() && o::level() == outside;
}

bool chk_max_threads_query() { return o::max_threads() >= 1; }

bool chk_for_static() {
  constexpr std::int64_t kN = 128;
  std::vector<std::atomic<int>> hits(kN);
  o::parallel([&](int, int) {
    o::loop(0, kN, {o::Schedule::Static, 0},
                [&](std::int64_t b, std::int64_t e) {
                  for (std::int64_t i = b; i < e; ++i) {
                    hits[static_cast<std::size_t>(i)].fetch_add(1);
                  }
                });
  });
  for (auto& h : hits) {
    if (h.load() != 1) return false;
  }
  return true;
}

bool chk_for_static_chunk() {
  constexpr std::int64_t kN = 97;
  std::vector<std::atomic<int>> hits(kN);
  o::parallel([&](int, int) {
    o::loop(0, kN, {o::Schedule::Static, 5},
                [&](std::int64_t b, std::int64_t e) {
                  for (std::int64_t i = b; i < e; ++i) {
                    hits[static_cast<std::size_t>(i)].fetch_add(1);
                  }
                });
  });
  for (auto& h : hits) {
    if (h.load() != 1) return false;
  }
  return true;
}

bool chk_for_dynamic() {
  constexpr std::int64_t kN = 100;
  std::vector<std::atomic<int>> hits(kN);
  o::parallel([&](int, int) {
    o::loop(0, kN, {o::Schedule::Dynamic, 3},
                [&](std::int64_t b, std::int64_t e) {
                  for (std::int64_t i = b; i < e; ++i) {
                    hits[static_cast<std::size_t>(i)].fetch_add(1);
                  }
                });
  });
  for (auto& h : hits) {
    if (h.load() != 1) return false;
  }
  return true;
}

bool chk_for_guided() {
  constexpr std::int64_t kN = 100;
  std::vector<std::atomic<int>> hits(kN);
  o::parallel([&](int, int) {
    o::loop(0, kN, {o::Schedule::Guided, 1},
                [&](std::int64_t b, std::int64_t e) {
                  for (std::int64_t i = b; i < e; ++i) {
                    hits[static_cast<std::size_t>(i)].fetch_add(1);
                  }
                });
  });
  for (auto& h : hits) {
    if (h.load() != 1) return false;
  }
  return true;
}

bool chk_for_consecutive() {
  std::atomic<std::int64_t> sum{0};
  o::parallel([&](int, int) {
    for (int round = 0; round < 4; ++round) {
      o::loop(0, 50, {o::Schedule::Static, 0},
                  [&](std::int64_t b, std::int64_t e) {
                    sum.fetch_add(e - b);
                  });
      o::barrier();
    }
  });
  return sum.load() == 4 * 50;
}

bool chk_for_sum_values() {
  std::atomic<std::int64_t> sum{0};
  o::parallel([&](int, int) {
    o::loop(1, 101, {o::Schedule::Dynamic, 7},
                [&](std::int64_t b, std::int64_t e) {
                  std::int64_t local = 0;
                  for (std::int64_t i = b; i < e; ++i) local += i;
                  sum.fetch_add(local);
                });
  });
  return sum.load() == 5050;
}

bool chk_barrier_phase() {
  std::atomic<int> before{0};
  std::atomic<bool> ok{true};
  o::parallel([&](int, int nth) {
    before.fetch_add(1);
    o::barrier();
    if (before.load() != nth) ok.store(false);
  });
  return ok.load();
}

bool chk_barrier_repeated() {
  std::atomic<int> counter{0};
  std::atomic<bool> ok{true};
  o::parallel([&](int, int nth) {
    for (int k = 1; k <= 8; ++k) {
      counter.fetch_add(1);
      o::barrier();
      if (counter.load() != k * nth) ok.store(false);
      o::barrier();
    }
  });
  return ok.load();
}

bool chk_single_one_winner() {
  std::atomic<int> winners{0};
  o::parallel([&](int, int) { o::single([&] { winners.fetch_add(1); }); });
  return winners.load() == 1;
}

bool chk_single_repeated() {
  std::atomic<int> winners{0};
  o::parallel([&](int, int) {
    for (int k = 0; k < 6; ++k) o::single([&] { winners.fetch_add(1); });
  });
  return winners.load() == 6;
}

bool chk_single_implies_barrier() {
  std::atomic<int> value{0};
  std::atomic<bool> ok{true};
  o::parallel([&](int, int) {
    o::single([&] { value.store(42); });
    if (value.load() != 42) ok.store(false);  // visible after the barrier
  });
  return ok.load();
}

bool chk_master_thread0() {
  std::atomic<int> who{-1};
  o::parallel([&](int tid, int) {
    o::master([&] { who.store(tid); });
    o::barrier();
  });
  return who.load() == 0;
}

bool chk_master_once() {
  std::atomic<int> runs{0};
  o::parallel([&](int, int) {
    o::master([&] { runs.fetch_add(1); });
    o::barrier();
  });
  return runs.load() == 1;
}

bool chk_critical_counter() {
  long long counter = 0;
  o::parallel([&](int, int) {
    for (int i = 0; i < 300; ++i) {
      o::critical([&] { counter += 1; });
    }
  });
  return counter == 300LL * o::max_threads();
}

bool chk_critical_named() {
  static int tag_a, tag_b;
  long long a = 0, b = 0;
  o::parallel([&](int, int) {
    for (int i = 0; i < 100; ++i) {
      o::critical(&tag_a, [&] { a += 1; });
      o::critical(&tag_b, [&] { b += 2; });
    }
  });
  const long long n = o::max_threads();
  return a == 100 * n && b == 200 * n;
}

bool chk_atomic_update() {
  // atomic construct emulated with the unnamed critical (facade contract).
  long long x = 0;
  o::parallel([&](int, int) {
    for (int i = 0; i < 200; ++i) o::critical([&] { ++x; });
  });
  return x == 200LL * o::max_threads();
}

bool chk_reduction_sum() {
  const double got =
      o::reduce_sum(1, 101, [](std::int64_t i) { return double(i); });
  return got == 5050.0;
}

bool chk_reduction_large() {
  constexpr std::int64_t kN = 5000;
  const double got = o::reduce_sum(
      0, kN, [](std::int64_t i) { return double(i % 7); });
  double expect = 0;
  for (std::int64_t i = 0; i < kN; ++i) expect += double(i % 7);
  return got == expect;
}

bool chk_nested_two_levels() {
  std::atomic<int> inner{0};
  o::parallel(2, [&](int, int) {
    o::parallel(2, [&](int, int nth) {
      if (nth == 2) inner.fetch_add(1);
    });
  });
  return inner.load() == 4;
}

bool chk_nested_inner_size() {
  std::atomic<bool> ok{true};
  o::parallel(2, [&](int, int) {
    o::parallel(3, [&](int tid, int nth) {
      if (nth != 3 || tid < 0 || tid >= 3) ok.store(false);
    });
  });
  return ok.load();
}

bool chk_nested_listing1() {
  // The paper's Listing 1 at toy scale.
  constexpr std::int64_t kN = 4;
  std::atomic<int> leaf{0};
  o::parallel([&](int, int) {
    o::loop(0, kN, {o::Schedule::Static, 0},
                [&](std::int64_t b, std::int64_t e) {
                  for (std::int64_t i = b; i < e; ++i) {
                    o::parallel(2, [&](int, int) {
                      o::loop(0, kN, {o::Schedule::Static, 0},
                                  [&](std::int64_t ib, std::int64_t ie) {
                                    leaf.fetch_add(
                                        static_cast<int>(ie - ib));
                                  });
                    });
                  }
                });
  });
  return leaf.load() == kN * kN;
}

bool chk_task_basic() {
  std::atomic<int> ran{0};
  o::parallel([&](int, int) {
    o::single([&] {
      o::task([&] { ran.fetch_add(1); });
      o::taskwait();
    });
  });
  return ran.load() == 1;
}

bool chk_task_many() {
  std::atomic<int> ran{0};
  o::parallel([&](int, int) {
    o::single([&] {
      for (int i = 0; i < 64; ++i) o::task([&] { ran.fetch_add(1); });
      o::taskwait();
    });
  });
  return ran.load() == 64;
}

bool chk_task_data_capture() {
  // firstprivate-style capture: each task owns its value at creation time.
  std::atomic<std::int64_t> sum{0};
  o::parallel([&](int, int) {
    o::single([&] {
      for (int i = 1; i <= 32; ++i) {
        const int v = i;  // captured by value (firstprivate)
        o::task([&sum, v] { sum.fetch_add(v); });
      }
      o::taskwait();
    });
  });
  return sum.load() == 32 * 33 / 2;
}

bool chk_task_nested() {
  std::atomic<int> ran{0};
  o::parallel([&](int, int) {
    o::single([&] {
      o::task([&] {
        for (int j = 0; j < 4; ++j) o::task([&] { ran.fetch_add(1); });
        o::taskwait();
      });
      o::taskwait();
    });
  });
  return ran.load() == 4;
}

bool chk_taskwait_ordering() {
  std::atomic<int> done{0};
  bool ok = false;
  o::parallel([&](int, int) {
    o::single([&] {
      for (int i = 0; i < 16; ++i) {
        o::task([&] {
          spin_us(5);
          done.fetch_add(1);
        });
      }
      o::taskwait();
      ok = done.load() == 16;  // all children complete at taskwait
    });
  });
  return ok;
}

bool chk_task_barrier_completion() {
  std::atomic<int> done{0};
  o::parallel([&](int, int) {
    o::single([&] {
      for (int i = 0; i < 32; ++i) o::task([&] { done.fetch_add(1); });
    });  // single's implicit barrier is the completion point
  });
  return done.load() == 32;
}

bool chk_task_if0() {
  std::atomic<int> done{0};
  bool immediate = false;
  o::TaskFlags flags;
  flags.if_clause = false;
  o::parallel(1, [&](int, int) {
    o::task([&] { done.fetch_add(1); }, flags);
    immediate = done.load() == 1;
  });
  return immediate;
}

bool chk_task_from_all_members() {
  std::atomic<int> done{0};
  int nth_seen = 0;
  o::parallel([&](int tid, int nth) {
    if (tid == 0) nth_seen = nth;  // single writer; join publishes
    for (int i = 0; i < 8; ++i) o::task([&] { done.fetch_add(1); });
    o::taskwait();
  });
  return done.load() == 8 * nth_seen;
}

bool chk_taskwait_deep_tree() {
  std::atomic<int> leaves{0};
  o::parallel([&](int, int) {
    o::single([&] {
      o::task([&] {
        o::task([&] {
          o::task([&] { leaves.fetch_add(1); });
          o::taskwait();
          leaves.fetch_add(1);
        });
        o::taskwait();
        leaves.fetch_add(1);
      });
      o::taskwait();
    });
  });
  return leaves.load() == 3;
}

bool chk_guided_chunk_floor() {
  // guided with a min-chunk: every dispatched range must be >= chunk
  // except possibly the last.
  std::atomic<bool> ok{true};
  std::atomic<std::int64_t> covered{0};
  o::parallel([&](int, int) {
    o::loop(0, 200, {o::Schedule::Guided, 8},
                [&](std::int64_t b, std::int64_t e) {
                  covered.fetch_add(e - b);
                  if (e - b < 8 && e != 200) ok.store(false);
                });
  });
  return ok.load() && covered.load() == 200;
}

// ---- single-mode checks -----------------------------------------------------

bool chk_set_num_threads() {
  const int before = o::max_threads();
  o::set_num_threads(2);
  std::atomic<int> members{0};
  o::parallel([&](int, int) { members.fetch_add(1); });
  o::set_num_threads(before);
  return members.load() == 2;
}

bool chk_for_empty_range() {
  bool entered = false;
  o::parallel([&](int, int) {
    o::loop(5, 5, {o::Schedule::Dynamic, 1},
                [&](std::int64_t, std::int64_t) { entered = true; });
    o::loop(9, 3, {o::Schedule::Static, 0},
                [&](std::int64_t, std::int64_t) { entered = true; });
  });
  return !entered;
}

bool chk_nested_disabled() {
  o::set_nested(false);
  std::atomic<int> inner_nth{-1};
  o::parallel(2, [&](int, int) {
    o::parallel(3, [&](int, int nth) { inner_nth.store(nth); });
  });
  o::set_nested(true);
  return inner_nth.load() == 1;
}

bool chk_producer_consumer() {
  // The paper's CG pattern: one producer in single, everyone consumes.
  std::atomic<int> done{0};
  o::parallel([&](int, int) {
    o::single([&] {
      for (int i = 0; i < 100; ++i) {
        o::task([&] {
          spin_us(2);
          done.fetch_add(1);
        });
      }
      o::taskwait();
    });
  });
  return done.load() == 100;
}

// ---- task-semantics tests (Table I differentiators) -------------------------

struct MigrationStats {
  int yields = 0;
  int migrated = 0;
};

/// Creates tasks that record the executing thread before/after taskyield.
MigrationStats measure_taskyield_migration(bool untied) {
  std::atomic<int> yields{0};
  std::atomic<int> migrated{0};
  o::TaskFlags flags;
  flags.untied = untied;
  o::parallel([&](int, int) {
    o::single([&] {
      for (int i = 0; i < 32; ++i) {
        o::task(
            [&] {
              for (int k = 0; k < 12; ++k) {
                const int before = o::thread_num();
                o::taskyield();
                // Long enough for other OS workers to get a timeslice and
                // steal the suspended tasks sitting in the deque.
                spin_us(60);
                const int after = o::thread_num();
                yields.fetch_add(1);
                if (after != before) migrated.fetch_add(1);
              }
            },
            flags);
      }
      o::taskwait();
    });
  });
  return MigrationStats{yields.load(), migrated.load()};
}

bool chk_taskyield_strict() {
  // OpenUH-style: a taskyield should reschedule the task; the strict
  // variant demands migration on the majority of yields. Every runtime in
  // the paper fails this (tied tasks stay put; stealing is too rare).
  const auto s = measure_taskyield_migration(false);
  return s.yields > 0 && s.migrated * 2 >= s.yields;
}

bool chk_taskyield_lenient() {
  // Orphan variant: at least one post-yield migration. Passes only where
  // the scheduler steals suspended tasks (GLTO over MassiveThreads).
  const auto s = measure_taskyield_migration(false);
  return s.migrated > 0;
}

bool chk_untied_any_migration() {
  const auto s = measure_taskyield_migration(true);
  return s.migrated > 0;
}

bool chk_task_final_undeferred() {
  // A `final` task must execute undeferred. GLTO runs final tasks inline;
  // the pthread baselines enqueue them like any task (paper: the fifth
  // GNU/Intel failure).
  std::atomic<int> ran{0};
  bool immediate = false;
  o::TaskFlags flags;
  flags.final = true;
  o::parallel([&](int, int) {
    o::single([&] {
      o::task(
          [&] {
            spin_us(10);
            ran.fetch_add(1);
          },
          flags);
      immediate = ran.load() == 1;  // already done when task() returns?
      o::taskwait();
    });
  });
  return immediate;
}

// ---- suite assembly ---------------------------------------------------------

struct GenericCheck {
  const char* name;
  const char* constructs;  // comma-separated construct tags
  CheckFn fn;
};

const GenericCheck kGeneric[] = {
    {"omp_parallel_default", "parallel,omp_get_num_threads,thread team",
     chk_parallel_default},
    {"omp_parallel_num_threads", "parallel num_threads,icv num-threads",
     chk_parallel_numthreads},
    {"omp_parallel_repeated", "parallel,fork-join,region reentry",
     chk_parallel_repeated},
    {"omp_get_thread_num", "omp_get_thread_num,thread ids",
     chk_thread_num_bounds},
    {"omp_in_parallel_team_size",
     "omp_get_num_threads,implicit team,omp_in_parallel",
     chk_num_threads_query},
    {"omp_get_level", "omp_get_level,nesting level", chk_level_query},
    {"omp_get_max_threads", "omp_get_max_threads", chk_max_threads_query},
    {"omp_for_static", "for,schedule(static),work distribution",
     chk_for_static},
    {"omp_for_static_chunk", "for,schedule(static;chunk),chunk dispatch",
     chk_for_static_chunk},
    {"omp_for_dynamic", "for,schedule(dynamic)", chk_for_dynamic},
    {"omp_for_guided", "for,schedule(guided)", chk_for_guided},
    {"omp_for_consecutive", "for,nowait-sequence", chk_for_consecutive},
    {"omp_for_values", "for,loop body,private", chk_for_sum_values},
    {"omp_barrier", "barrier,flush(implied)", chk_barrier_phase},
    {"omp_barrier_repeated", "barrier,phases", chk_barrier_repeated},
    {"omp_single", "single", chk_single_one_winner},
    {"omp_single_repeated", "single,arbitration", chk_single_repeated},
    {"omp_single_barrier", "single,implicit barrier",
     chk_single_implies_barrier},
    {"omp_master", "master", chk_master_thread0},
    {"omp_master_once", "master,uniqueness", chk_master_once},
    {"omp_critical", "critical,mutual exclusion", chk_critical_counter},
    {"omp_critical_named", "critical(name)", chk_critical_named},
    {"omp_atomic", "atomic,shared update", chk_atomic_update},
    {"omp_reduction", "reduction(+)", chk_reduction_sum},
    {"omp_reduction_large", "reduction,partial sums", chk_reduction_large},
    {"omp_nested_parallel", "nested parallel,omp_set_nested",
     chk_nested_two_levels},
    {"omp_nested_team_size", "nested parallel,num_threads",
     chk_nested_inner_size},
    {"omp_nested_parallel_for", "nested parallel,for",
     chk_nested_listing1},
    {"omp_task_basic", "task,task creation", chk_task_basic},
    {"omp_task_many", "task,queueing", chk_task_many},
    {"omp_task_firstprivate", "task,firstprivate,task data environment",
     chk_task_data_capture},
    {"omp_task_nested", "task,child tasks", chk_task_nested},
    {"omp_taskwait", "taskwait,task scheduling point",
     chk_taskwait_ordering},
    {"omp_task_barrier", "task,barrier completion",
     chk_task_barrier_completion},
    {"omp_task_if", "task if(false),undeferred", chk_task_if0},
    {"omp_task_all_members", "task,per-member queues,shared",
     chk_task_from_all_members},
    {"omp_taskwait_tree", "taskwait,nesting depth",
     chk_taskwait_deep_tree},
    {"omp_for_guided_chunk", "schedule(guided;chunk),chunk floor",
     chk_guided_chunk_floor},
};

const GenericCheck kSingleMode[] = {
    {"omp_set_num_threads", "omp_set_num_threads", chk_set_num_threads},
    {"omp_for_empty", "for,empty range", chk_for_empty_range},
    {"omp_nested_disabled", "omp_set_nested(false)", chk_nested_disabled},
    {"omp_task_producer_consumer", "task,single producer",
     chk_producer_consumer},
};

bool run_generic(Mode m, CheckFn fn) { return dispatch(m, fn); }

std::vector<TestCase> build_suite() {
  std::vector<TestCase> out;
  for (const auto& g : kGeneric) {
    for (Mode m : {Mode::normal, Mode::cross, Mode::orphan}) {
      TestCase tc;
      tc.name = g.name;
      tc.construct = g.constructs;
      tc.mode = m;
      tc.fn = nullptr;  // filled by table lookup in run_case
      out.push_back(tc);
    }
  }
  for (const auto& g : kSingleMode) {
    TestCase tc;
    tc.name = g.name;
    tc.construct = g.constructs;
    tc.mode = Mode::normal;
    out.push_back(tc);
  }
  // Task-semantics differentiators (the Table I story).
  out.push_back({"omp_taskyield", "taskyield", Mode::normal, nullptr});
  out.push_back({"omp_taskyield", "taskyield", Mode::orphan, nullptr});
  out.push_back({"omp_task_untied", "task untied", Mode::normal, nullptr});
  out.push_back({"omp_task_untied", "task untied", Mode::orphan, nullptr});
  out.push_back({"omp_task_final", "task final", Mode::normal, nullptr});
  return out;
}

CheckFn lookup(const std::string& name) {
  for (const auto& g : kGeneric) {
    if (name == g.name) return g.fn;
  }
  for (const auto& g : kSingleMode) {
    if (name == g.name) return g.fn;
  }
  return nullptr;
}

}  // namespace

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::normal:
      return "normal";
    case Mode::cross:
      return "cross";
    case Mode::orphan:
      return "orphan";
  }
  return "?";
}

const std::vector<TestCase>& suite() {
  static const std::vector<TestCase> s = build_suite();
  return s;
}

int construct_count() {
  std::set<std::string> tags;
  for (const auto& tc : suite()) {
    std::stringstream ss(tc.construct);
    std::string tag;
    while (std::getline(ss, tag, ',')) tags.insert(tag);
  }
  return static_cast<int>(tags.size());
}

bool run_case(const TestCase& tc) {
  // Task-semantics specials first.
  if (tc.name == "omp_taskyield") {
    return tc.mode == Mode::normal ? chk_taskyield_strict()
                                   : chk_taskyield_lenient();
  }
  if (tc.name == "omp_task_untied") return chk_untied_any_migration();
  if (tc.name == "omp_task_final") return chk_task_final_undeferred();
  CheckFn fn = lookup(tc.name);
  if (fn == nullptr) return false;
  return run_generic(tc.mode, fn);
}

SuiteResult run_suite() {
  SuiteResult res;
  for (const auto& tc : suite()) {
    res.total++;
    if (run_case(tc)) {
      res.passed++;
    } else {
      res.failed_names.push_back(tc.name + std::string("(") +
                                 mode_name(tc.mode) + ")");
    }
  }
  return res;
}

}  // namespace glto::apps::validation
