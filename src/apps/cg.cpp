#include "apps/cg.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/debug.hpp"
#include "omp/omp.hpp"

namespace glto::apps::cg {

Csr make_spd_pentadiagonal(int n) {
  Csr a;
  a.n = n;
  a.rowptr.reserve(static_cast<std::size_t>(n) + 1);
  a.rowptr.push_back(0);
  for (int i = 0; i < n; ++i) {
    for (int off : {-2, -1, 0, 1, 2}) {
      const int j = i + off;
      if (j < 0 || j >= n) continue;
      a.col.push_back(j);
      a.val.push_back(off == 0 ? 4.5 : -1.0);
    }
    a.rowptr.push_back(static_cast<int>(a.col.size()));
  }
  return a;
}

Csr make_spd_variable_diag(int n) {
  Csr a = make_spd_pentadiagonal(n);
  for (int i = 0; i < n; ++i) {
    for (int k = a.rowptr[static_cast<std::size_t>(i)];
         k < a.rowptr[static_cast<std::size_t>(i) + 1]; ++k) {
      if (a.col[static_cast<std::size_t>(k)] == i) {
        a.val[static_cast<std::size_t>(k)] = 4.5 + 0.5 * (i % 5);
      }
    }
  }
  return a;
}

void spmv_seq(const Csr& a, const std::vector<double>& x,
              std::vector<double>& y) {
  for (int i = 0; i < a.n; ++i) {
    double acc = 0.0;
    for (int k = a.rowptr[static_cast<std::size_t>(i)];
         k < a.rowptr[static_cast<std::size_t>(i) + 1]; ++k) {
      acc += a.val[static_cast<std::size_t>(k)] *
             x[static_cast<std::size_t>(a.col[static_cast<std::size_t>(k)])];
    }
    y[static_cast<std::size_t>(i)] = acc;
  }
}

int tasks_for_granularity(int n, int rows_per_task) {
  return (n + rows_per_task - 1) / rows_per_task;
}

namespace {

void spmv_rows(const Csr& a, const std::vector<double>& x,
               std::vector<double>& y, int lo, int hi) {
  for (int i = lo; i < hi; ++i) {
    double acc = 0.0;
    for (int k = a.rowptr[static_cast<std::size_t>(i)];
         k < a.rowptr[static_cast<std::size_t>(i) + 1]; ++k) {
      acc += a.val[static_cast<std::size_t>(k)] *
             x[static_cast<std::size_t>(a.col[static_cast<std::size_t>(k)])];
    }
    y[static_cast<std::size_t>(i)] = acc;
  }
}

double dot_seq(const std::vector<double>& a, const std::vector<double>& b,
               int lo, int hi) {
  double acc = 0.0;
  for (int i = lo; i < hi; ++i) {
    acc += a[static_cast<std::size_t>(i)] * b[static_cast<std::size_t>(i)];
  }
  return acc;
}

}  // namespace

Result solve_worksharing(const Csr& a, const std::vector<double>& b,
                         std::vector<double>& x, int max_iters, double tol) {
  const int n = a.n;
  std::vector<double> r(b), p(b), ap(static_cast<std::size_t>(n), 0.0);
  x.assign(static_cast<std::size_t>(n), 0.0);

  auto par_dot = [&](const std::vector<double>& u,
                     const std::vector<double>& v) {
    std::atomic<double> total;
    total.store(0.0);
    omp::parallel([&](int, int) {
      double local = 0.0;
      omp::loop(0, n, {omp::Schedule::Static, 0},
                    [&](std::int64_t lo, std::int64_t hi) {
                      local += dot_seq(u, v, static_cast<int>(lo),
                                       static_cast<int>(hi));
                    });
      double cur = total.load(std::memory_order_relaxed);
      while (!total.compare_exchange_weak(cur, cur + local,
                                          std::memory_order_relaxed)) {
      }
    });
    return total.load(std::memory_order_relaxed);
  };

  double rr = par_dot(r, r);
  const double stop2 = tol * tol * rr;
  Result out;
  for (int it = 0; it < max_iters; ++it) {
    omp::parallel([&](int, int) {
      omp::loop(0, n, {omp::Schedule::Static, 0},
                    [&](std::int64_t lo, std::int64_t hi) {
                      spmv_rows(a, p, ap, static_cast<int>(lo),
                                static_cast<int>(hi));
                    });
    });
    const double pap = par_dot(p, ap);
    const double alpha = rr / pap;
    omp::parallel([&](int, int) {
      omp::loop(0, n, {omp::Schedule::Static, 0},
                    [&](std::int64_t lo, std::int64_t hi) {
                      for (std::int64_t i = lo; i < hi; ++i) {
                        x[static_cast<std::size_t>(i)] +=
                            alpha * p[static_cast<std::size_t>(i)];
                        r[static_cast<std::size_t>(i)] -=
                            alpha * ap[static_cast<std::size_t>(i)];
                      }
                    });
    });
    const double rr_new = par_dot(r, r);
    out.iterations = it + 1;
    if (rr_new <= stop2) {
      out.converged = true;
      out.residual_norm = std::sqrt(rr_new);
      return out;
    }
    const double beta = rr_new / rr;
    rr = rr_new;
    omp::parallel([&](int, int) {
      omp::loop(0, n, {omp::Schedule::Static, 0},
                    [&](std::int64_t lo, std::int64_t hi) {
                      for (std::int64_t i = lo; i < hi; ++i) {
                        p[static_cast<std::size_t>(i)] =
                            r[static_cast<std::size_t>(i)] +
                            beta * p[static_cast<std::size_t>(i)];
                      }
                    });
    });
  }
  out.residual_norm = std::sqrt(rr);
  return out;
}

Result solve_tasks(const Csr& a, const std::vector<double>& b,
                   std::vector<double>& x, int max_iters, double tol,
                   int rows_per_task) {
  const int n = a.n;
  const int g = std::max(1, rows_per_task);
  const int ntasks = tasks_for_granularity(n, g);
  std::vector<double> r(b), p(b), ap(static_cast<std::size_t>(n), 0.0);
  std::vector<double> partial(static_cast<std::size_t>(ntasks), 0.0);
  x.assign(static_cast<std::size_t>(n), 0.0);

  Result out;
  double rr = 0.0, pap = 0.0, rr_new = 0.0;
  bool done = false;
  double stop2 = 0.0;

  // One parallel region for the whole solve; the master produces tasks
  // from inside `single` (the paper's producer/consumer transformation).
  omp::parallel([&](int, int) {
    // Producer-side helpers; only the single winner executes them.
    auto task_blocks = [&](auto&& body) {
      for (int t = 0; t < ntasks; ++t) {
        const int lo = t * g;
        const int hi = std::min(n, lo + g);
        omp::task([&body, t, lo, hi] { body(t, lo, hi); });
      }
      omp::taskwait();
    };
    auto dot_tasks = [&](const std::vector<double>& u,
                         const std::vector<double>& v) {
      task_blocks([&](int t, int lo, int hi) {
        partial[static_cast<std::size_t>(t)] = dot_seq(u, v, lo, hi);
      });
      double acc = 0.0;
      for (int t = 0; t < ntasks; ++t) {
        acc += partial[static_cast<std::size_t>(t)];
      }
      return acc;
    };

    omp::single([&] {
      rr = dot_tasks(r, r);
      stop2 = tol * tol * rr;
      for (int it = 0; it < max_iters && !done; ++it) {
        task_blocks([&](int, int lo, int hi) { spmv_rows(a, p, ap, lo, hi); });
        pap = dot_tasks(p, ap);
        const double alpha = rr / pap;
        task_blocks([&](int, int lo, int hi) {
          for (int i = lo; i < hi; ++i) {
            x[static_cast<std::size_t>(i)] +=
                alpha * p[static_cast<std::size_t>(i)];
            r[static_cast<std::size_t>(i)] -=
                alpha * ap[static_cast<std::size_t>(i)];
          }
        });
        rr_new = dot_tasks(r, r);
        out.iterations = it + 1;
        if (rr_new <= stop2) {
          done = true;
          break;
        }
        const double beta = rr_new / rr;
        rr = rr_new;
        task_blocks([&](int, int lo, int hi) {
          for (int i = lo; i < hi; ++i) {
            p[static_cast<std::size_t>(i)] =
                r[static_cast<std::size_t>(i)] +
                beta * p[static_cast<std::size_t>(i)];
          }
        });
      }
    });
  });
  out.converged = done;
  out.residual_norm = std::sqrt(done ? rr_new : rr);
  return out;
}

Result solve_tasks_jacobi(const Csr& a, const std::vector<double>& b,
                          std::vector<double>& x, int max_iters, double tol,
                          int rows_per_task) {
  const int n = a.n;
  const int g = std::max(1, rows_per_task);
  const int ntasks = tasks_for_granularity(n, g);
  std::vector<double> inv_diag(static_cast<std::size_t>(n), 1.0);
  for (int i = 0; i < n; ++i) {
    for (int k = a.rowptr[static_cast<std::size_t>(i)];
         k < a.rowptr[static_cast<std::size_t>(i) + 1]; ++k) {
      if (a.col[static_cast<std::size_t>(k)] == i) {
        inv_diag[static_cast<std::size_t>(i)] =
            1.0 / a.val[static_cast<std::size_t>(k)];
      }
    }
  }
  std::vector<double> r(b), z(static_cast<std::size_t>(n), 0.0);
  std::vector<double> p(static_cast<std::size_t>(n), 0.0);
  std::vector<double> ap(static_cast<std::size_t>(n), 0.0);
  std::vector<double> partial(static_cast<std::size_t>(ntasks), 0.0);
  x.assign(static_cast<std::size_t>(n), 0.0);

  Result out;
  bool done = false;
  double rr_final = 0.0;

  omp::parallel([&](int, int) {
    auto task_blocks = [&](auto&& body) {
      for (int t = 0; t < ntasks; ++t) {
        const int lo = t * g;
        const int hi = std::min(n, lo + g);
        omp::task([&body, t, lo, hi] { body(t, lo, hi); });
      }
      omp::taskwait();
    };
    auto dot_tasks = [&](const std::vector<double>& u,
                         const std::vector<double>& v) {
      task_blocks([&](int t, int lo, int hi) {
        partial[static_cast<std::size_t>(t)] = dot_seq(u, v, lo, hi);
      });
      double acc = 0.0;
      for (int t = 0; t < ntasks; ++t) {
        acc += partial[static_cast<std::size_t>(t)];
      }
      return acc;
    };

    omp::single([&] {
      task_blocks([&](int, int lo, int hi) {
        for (int i = lo; i < hi; ++i) {
          z[static_cast<std::size_t>(i)] =
              inv_diag[static_cast<std::size_t>(i)] *
              r[static_cast<std::size_t>(i)];
          p[static_cast<std::size_t>(i)] = z[static_cast<std::size_t>(i)];
        }
      });
      double rz = dot_tasks(r, z);
      double rr = dot_tasks(r, r);
      const double stop2 = tol * tol * rr;
      for (int it = 0; it < max_iters && !done; ++it) {
        task_blocks([&](int, int lo, int hi) { spmv_rows(a, p, ap, lo, hi); });
        const double pap = dot_tasks(p, ap);
        const double alpha = rz / pap;
        task_blocks([&](int, int lo, int hi) {
          for (int i = lo; i < hi; ++i) {
            x[static_cast<std::size_t>(i)] +=
                alpha * p[static_cast<std::size_t>(i)];
            r[static_cast<std::size_t>(i)] -=
                alpha * ap[static_cast<std::size_t>(i)];
          }
        });
        rr = dot_tasks(r, r);
        out.iterations = it + 1;
        rr_final = rr;
        if (rr <= stop2) {
          done = true;
          break;
        }
        task_blocks([&](int, int lo, int hi) {
          for (int i = lo; i < hi; ++i) {
            z[static_cast<std::size_t>(i)] =
                inv_diag[static_cast<std::size_t>(i)] *
                r[static_cast<std::size_t>(i)];
          }
        });
        const double rz_new = dot_tasks(r, z);
        const double beta = rz_new / rz;
        rz = rz_new;
        task_blocks([&](int, int lo, int hi) {
          for (int i = lo; i < hi; ++i) {
            p[static_cast<std::size_t>(i)] =
                z[static_cast<std::size_t>(i)] +
                beta * p[static_cast<std::size_t>(i)];
          }
        });
      }
    });
  });
  out.converged = done;
  out.residual_norm = std::sqrt(rr_final);
  return out;
}

}  // namespace glto::apps::cg
