// UTS — Unbalanced Tree Search (Olivier et al., LCPC'06), the paper's
// "OpenMP as environment creator" workload (§VI-B, Figs. 4 & 5).
//
// The tree is built on the fly from a deterministic *splittable* RNG: a
// node's child streams depend only on (parent stream, child index), so the
// same tree is produced under any parallel schedule. The original uses
// SHA-1; we use a SplitMix64 mixer (substitution documented in DESIGN.md).
//
// Geometric tree: a node at depth d < gen_mx has a geometrically
// distributed child count with mean b0; deeper nodes are leaves. This is
// the GEO "fixed branching" variant used by T1XXL (b0=4), with gen_mx
// scaled to container-friendly sizes.
//
// Parallelization (§VI-B): the OpenMP runtime only creates the
// environment — one `parallel` region around the whole search. Inside,
// the *application* manages work: per-thread node stacks, a shared
// release queue for load balancing, and an idle-count termination
// protocol. This is a direct port of the UTS pthreads strategy.
#pragma once

#include <cstdint>

namespace glto::apps::uts {

enum class TreeKind {
  geometric,  ///< GEO: geometric child count, depth-limited (T1XXL)
  binomial,   ///< BIN: each node has m children with probability q, else 0
};

struct Params {
  TreeKind kind = TreeKind::geometric;
  std::uint64_t root_seed = 19;  ///< tree id (same seed → same tree)
  double b0 = 4.0;               ///< expected branching factor (T1XXL: 4)
  int gen_mx = 6;                ///< GEO: depth limit for interior nodes
  int bin_m = 8;                 ///< BIN: children per interior node
  double bin_q = 0.117;          ///< BIN: interior probability; the
                                 ///< process must be subcritical (q·m < 1)
                                 ///< or init aborts — supercritical trees
                                 ///< are unbounded.
};

struct Result {
  std::uint64_t nodes = 0;
  std::uint64_t leaves = 0;
  int max_depth = 0;

  bool operator==(const Result& o) const {
    return nodes == o.nodes && leaves == o.leaves && max_depth == o.max_depth;
  }
};

/// Single-threaded reference traversal (ground truth for every variant).
Result search_sequential(const Params& p);

/// OpenMP-facade traversal: one parallel region, app-managed distribution.
/// Runs on whatever omp runtime is currently selected.
Result search_omp(const Params& p);

/// Fig. 5 native variants: the same algorithm hand-ported to raw pthreads
/// and to each native LWT API (no OpenMP layer involved). Each initializes
/// and finalizes its own runtime; must not be called while another LWT
/// runtime/OpenMP runtime is active.
Result search_pthreads(const Params& p, int nthreads);
Result search_abt_native(const Params& p, int nthreads);
Result search_qth_native(const Params& p, int nthreads);
Result search_mth_native(const Params& p, int nthreads);

}  // namespace glto::apps::uts
