// bqp — a blocked box-constrained QP interior-point solver: the DAG
// workload that validates the task-dependency engine.
//
// Real-time QP solvers (PIQP, arXiv:2304.00290; the time-certified box-QP
// IPM of arXiv:2510.04467) are built from blocked factorize/solve sweeps
// whose natural expression is a task DAG: each tile kernel (potrf, trsm,
// syrk, gemm, trsv, gemv) reads a handful of tiles and writes one, so
// `depend` clauses per tile let independent tiles of different sweep
// steps overlap. This app solves
//
//     minimize   ½ xᵀH x + gᵀx      H = diag(d) + V Vᵀ  (SPD,
//     subject to lb ≤ x ≤ ub                             diagonal-plus-low-rank)
//
// with a primal-dual IPM whose per-iteration KKT system
// (H + diag(z_l/s_l + z_u/s_u)) dx = r is factorized and solved by a
// blocked Cholesky, scheduled three ways:
//
//   sequential — plain loops, no runtime (the correctness reference)
//   taskdep    — every tile kernel is a `depend` task; factor and both
//                triangular sweeps form ONE DAG with no barrier anywhere
//   taskwait   — the same kernels fenced by taskwait after each step of
//                each sweep (what the facade forced before the dep engine)
//
// The taskdep/taskwait modes require a selected omp runtime and create
// their tasks from a single/producer region, the paper's §IV-D pattern.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/qos.hpp"

namespace glto::apps::bqp {

enum class Mode { sequential, taskdep, taskwait };

[[nodiscard]] const char* mode_name(Mode m);

struct Problem {
  int n = 0;     ///< variables (multiple of tile)
  int tile = 0;  ///< Cholesky tile size (≥ 8 so tile handles don't alias)
  int rank = 0;  ///< low-rank term width
  std::vector<double> d;   ///< n      — diagonal of H
  std::vector<double> V;   ///< n×rank — H = diag(d) + V Vᵀ (row-major)
  std::vector<double> g;   ///< n
  std::vector<double> lb;  ///< n
  std::vector<double> ub;  ///< n
};

/// Deterministic seeded instance with an interior box (lb < 0 < ub) tight
/// enough that several bounds are active at the optimum.
[[nodiscard]] Problem make_problem(int n, int tile, int rank,
                                   std::uint64_t seed);

struct Result {
  std::vector<double> x;
  std::vector<double> zl;  ///< multipliers of x ≥ lb
  std::vector<double> zu;  ///< multipliers of x ≤ ub
  int iters = 0;
  double kkt = 0.0;  ///< final inf-norm KKT residual
  bool converged = false;
  bool deadline_abandoned = false;  ///< QoS deadline expired mid-solve
};

/// Runs the IPM. taskdep/taskwait modes assert a selected omp runtime.
/// @p qos, when non-null, is polled once per iteration
/// (omp::cancellation_point-style): an expired deadline abandons the
/// solve at the next iteration boundary with deadline_abandoned set and
/// the best iterate so far in x (converged stays false).
[[nodiscard]] Result solve(const Problem& p, Mode mode, int max_iters = 60,
                           double tol = 1e-10,
                           const sched::QosContext* qos = nullptr);

/// inf-norm KKT residual of a candidate primal-dual point: stationarity,
/// box feasibility, multiplier sign, and complementarity.
[[nodiscard]] double kkt_residual(const Problem& p,
                                  const std::vector<double>& x,
                                  const std::vector<double>& zl,
                                  const std::vector<double>& zu);

// ---- blocked-Cholesky micro-driver (abl_taskdep uses these) -------------

/// Fills @p A with a seeded dense SPD matrix (n×n row-major) and @p b
/// with a rhs.
void make_spd(int n, std::uint64_t seed, std::vector<double>& A,
              std::vector<double>& b);

/// In-place blocked Cholesky of A (lower), then x := A⁻¹ b via the two
/// triangular sweeps, scheduled per @p mode. In taskdep mode the factor
/// and both sweeps are one barrier-free DAG.
void factor_solve_inplace(double* A, double* x, const double* b, int n,
                          int tile, Mode mode);

/// ‖A₀x − b‖∞ — verification helper for the micro-driver.
[[nodiscard]] double residual_inf(const std::vector<double>& A0,
                                  const std::vector<double>& x,
                                  const std::vector<double>& b, int n);

}  // namespace glto::apps::bqp
