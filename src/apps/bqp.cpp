#include "apps/bqp.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>

#include "common/debug.hpp"
#include "common/rng.hpp"
#include "common/spin.hpp"
#include "omp/omp.hpp"

namespace glto::apps::bqp {

namespace {

namespace o = glto::omp;

// ---- tile kernels (row-major, lower triangle maintained) ----------------

inline double* tile(double* A, int n, int t, int I, int J) {
  return A + static_cast<std::size_t>(I) * t * n + static_cast<std::size_t>(J) * t;
}

/// Unblocked Cholesky of the t×t diagonal block at (k,k).
void potrf(double* A, int n, int t, int k) {
  double* a = tile(A, n, t, k, k);
  for (int j = 0; j < t; ++j) {
    double diag = a[j * n + j];
    for (int p = 0; p < j; ++p) diag -= a[j * n + p] * a[j * n + p];
    GLTO_CHECK_MSG(diag > 0.0, "bqp: KKT matrix lost positive definiteness");
    diag = std::sqrt(diag);
    a[j * n + j] = diag;
    for (int i = j + 1; i < t; ++i) {
      double v = a[i * n + j];
      for (int p = 0; p < j; ++p) v -= a[i * n + p] * a[j * n + p];
      a[i * n + j] = v / diag;
    }
  }
}

/// B := B · L⁻ᵀ for the panel block B = (i,k) against L = (k,k).
void trsm(double* A, int n, int t, int k, int i) {
  const double* l = tile(A, n, t, k, k);
  double* b = tile(A, n, t, i, k);
  for (int r = 0; r < t; ++r) {
    for (int j = 0; j < t; ++j) {
      double v = b[r * n + j];
      for (int p = 0; p < j; ++p) v -= b[r * n + p] * l[j * n + p];
      b[r * n + j] = v / l[j * n + j];
    }
  }
}

/// C := C − B·Bᵀ (lower part) for C = (i,i), B = (i,k).
void syrk(double* A, int n, int t, int k, int i) {
  const double* b = tile(A, n, t, i, k);
  double* c = tile(A, n, t, i, i);
  for (int r = 0; r < t; ++r) {
    for (int cc = 0; cc <= r; ++cc) {
      double v = 0.0;
      for (int p = 0; p < t; ++p) v += b[r * n + p] * b[cc * n + p];
      c[r * n + cc] -= v;
    }
  }
}

/// C := C − A_ik·A_jkᵀ for C = (i,j), k < j < i.
void gemm(double* A, int n, int t, int k, int i, int j) {
  const double* bi = tile(A, n, t, i, k);
  const double* bj = tile(A, n, t, j, k);
  double* c = tile(A, n, t, i, j);
  for (int r = 0; r < t; ++r) {
    for (int cc = 0; cc < t; ++cc) {
      double v = 0.0;
      for (int p = 0; p < t; ++p) v += bi[r * n + p] * bj[cc * n + p];
      c[r * n + cc] -= v;
    }
  }
}

/// y_i := y_i − L(i,j)·y_j (forward-sweep update).
void gemv_sub(const double* A, double* y, int n, int t, int i, int j) {
  const double* l = tile(const_cast<double*>(A), n, t, i, j);
  double* yi = y + static_cast<std::size_t>(i) * t;
  const double* yj = y + static_cast<std::size_t>(j) * t;
  for (int r = 0; r < t; ++r) {
    double v = 0.0;
    for (int p = 0; p < t; ++p) v += l[r * n + p] * yj[p];
    yi[r] -= v;
  }
}

/// y_i := L(i,i)⁻¹·y_i (forward substitution on one segment).
void trsv_fwd(const double* A, double* y, int n, int t, int i) {
  const double* l = tile(const_cast<double*>(A), n, t, i, i);
  double* yi = y + static_cast<std::size_t>(i) * t;
  for (int r = 0; r < t; ++r) {
    double v = yi[r];
    for (int p = 0; p < r; ++p) v -= l[r * n + p] * yi[p];
    yi[r] = v / l[r * n + r];
  }
}

/// y_i := y_i − L(j,i)ᵀ·y_j (backward-sweep update, j > i).
void gemv_t_sub(const double* A, double* y, int n, int t, int i, int j) {
  const double* l = tile(const_cast<double*>(A), n, t, j, i);
  double* yi = y + static_cast<std::size_t>(i) * t;
  const double* yj = y + static_cast<std::size_t>(j) * t;
  for (int r = 0; r < t; ++r) {
    double v = 0.0;
    for (int p = 0; p < t; ++p) v += l[p * n + r] * yj[p];
    yi[r] -= v;
  }
}

/// y_i := L(i,i)⁻ᵀ·y_i (backward substitution on one segment).
void trsv_bwd(const double* A, double* y, int n, int t, int i) {
  const double* l = tile(const_cast<double*>(A), n, t, i, i);
  double* yi = y + static_cast<std::size_t>(i) * t;
  for (int r = t - 1; r >= 0; --r) {
    double v = yi[r];
    for (int p = r + 1; p < t; ++p) v -= l[p * n + r] * yi[p];
    yi[r] = v / l[r * n + r];
  }
}

// ---- mode-dispatched scheduling -----------------------------------------

/// Reusable solver workspace: the KKT tile set and every per-iteration
/// scratch vector the IPM rebuilds. Hoisted out of solve() so repeated
/// solves (the abl_taskdep sweeps, latency-benchmark loops) stop paying a
/// fresh n²+O(n) allocation train per call — after the first iteration
/// the resize calls are no-ops and the IPM touches no allocator. Every
/// buffer is fully rewritten where it is read (K's lower triangle + the
/// scratch vectors), so reuse cannot change the KKT residual. This is the
/// first step toward the Sherman–Morrison–Woodbury solve (ROADMAP), whose
/// low-rank factors will live here too.
struct Arena {
  std::vector<double> K, rhs, dx, hx, sr, dzl, dzu;
};

/// Arenas are leased from a process-wide pool for the duration of one
/// solve and returned afterwards, so repeated solves reuse warm buffers
/// while CONCURRENT solves always hold distinct arenas. (A thread_local
/// would not be sound here: solve() crosses task-runtime suspension
/// points, after which the calling context can resume on a different OS
/// thread — the stale-TLS hazard abt::tls_now documents.)
class ArenaLease {
 public:
  ArenaLease() {
    common::SpinGuard g(pool_lock());
    auto& free = pool();
    if (!free.empty()) {
      arena_ = std::move(free.back());
      free.pop_back();
    } else {
      arena_ = std::make_unique<Arena>();
    }
  }
  ~ArenaLease() {
    // Bound the pool's resident memory: an arena whose KKT buffer grew
    // past the cap is freed instead of pooled (one giant solve must not
    // pin O(n²) for the process lifetime), and pool depth is capped so a
    // burst of concurrent solves cannot park its peak width forever.
    constexpr std::size_t kMaxPooledKDoubles = 512 * 512;  // 2 MiB
    constexpr std::size_t kMaxPooledArenas = 8;
    common::SpinGuard g(pool_lock());
    auto& free = pool();
    if (arena_->K.capacity() <= kMaxPooledKDoubles &&
        free.size() < kMaxPooledArenas) {
      free.push_back(std::move(arena_));
    }
  }
  ArenaLease(const ArenaLease&) = delete;
  ArenaLease& operator=(const ArenaLease&) = delete;

  [[nodiscard]] Arena* get() const { return arena_.get(); }

 private:
  static common::SpinLock& pool_lock() {
    static common::SpinLock lock;
    return lock;
  }
  static std::vector<std::unique_ptr<Arena>>& pool() {
    static std::vector<std::unique_ptr<Arena>> free;
    return free;
  }
  std::unique_ptr<Arena> arena_;
};

/// Emits one tile kernel under the selected schedule: sequential runs it
/// now, taskdep attaches the depend clauses, taskwait strips them (the
/// fences order everything). The kernels are small trivially-copyable
/// captures, so the v2 descriptor path spawns them without a single heap
/// allocation (clauses stay inline in DepList as well). The Sched also
/// owns the solver's reusable KKT workspace for the duration of a solve.
struct Sched {
  Mode mode;
  Arena* arena = nullptr;  ///< KKT tile-buffer workspace (see Arena)

  template <class F>
  void run(F&& fn, std::initializer_list<taskdep::Dep> deps) const {
    if (mode == Mode::sequential) {
      fn();
      return;
    }
    o::TaskFlags flags;
    if (mode == Mode::taskdep) flags.depend = deps;
    o::task(std::forward<F>(fn), flags);
  }

  /// Step barrier — only the taskwait schedule needs it; the DAG's edges
  /// carry the ordering without ever stalling unrelated tiles.
  void fence() const {
    if (mode == Mode::taskwait) o::taskwait();
  }
};

/// Creates the whole factor + forward + backward pipeline. In taskdep
/// mode this is ONE barrier-free DAG: solve tiles of early block-rows
/// start while late factor tiles are still in flight.
void emit_factor_solve(double* A, double* y, int n, int t, const Sched& s) {
  const int T = n / t;
  const auto th = [&](int I, int J) -> const void* {
    return tile(A, n, t, I, J);
  };
  const auto yh = [&](int I) -> const void* {
    return y + static_cast<std::size_t>(I) * t;
  };

  for (int k = 0; k < T; ++k) {
    s.run([A, n, t, k] { potrf(A, n, t, k); }, {o::dep_inout(th(k, k))});
    s.fence();
    for (int i = k + 1; i < T; ++i) {
      s.run([A, n, t, k, i] { trsm(A, n, t, k, i); },
            {o::dep_in(th(k, k)), o::dep_inout(th(i, k))});
    }
    s.fence();
    for (int i = k + 1; i < T; ++i) {
      s.run([A, n, t, k, i] { syrk(A, n, t, k, i); },
            {o::dep_in(th(i, k)), o::dep_inout(th(i, i))});
      for (int j = k + 1; j < i; ++j) {
        s.run([A, n, t, k, i, j] { gemm(A, n, t, k, i, j); },
              {o::dep_in(th(i, k)), o::dep_in(th(j, k)),
               o::dep_inout(th(i, j))});
      }
    }
    s.fence();
  }

  // Solve sweeps are emitted right-looking: once segment j is
  // substituted, every update it feeds touches a *distinct* y segment, so
  // the tasks between two fences never write the same memory — the
  // taskwait schedule is race-free with per-step barriers, and the
  // taskdep schedule gets the identical DAG through the same clauses.
  for (int j = 0; j < T; ++j) {
    s.run([A, y, n, t, j] { trsv_fwd(A, y, n, t, j); },
          {o::dep_in(th(j, j)), o::dep_inout(yh(j))});
    s.fence();
    for (int i = j + 1; i < T; ++i) {
      s.run([A, y, n, t, i, j] { gemv_sub(A, y, n, t, i, j); },
            {o::dep_in(th(i, j)), o::dep_in(yh(j)), o::dep_inout(yh(i))});
    }
    s.fence();
  }

  for (int j = T - 1; j >= 0; --j) {
    s.run([A, y, n, t, j] { trsv_bwd(A, y, n, t, j); },
          {o::dep_in(th(j, j)), o::dep_inout(yh(j))});
    s.fence();
    for (int i = j - 1; i >= 0; --i) {
      s.run([A, y, n, t, i, j] { gemv_t_sub(A, y, n, t, i, j); },
            {o::dep_in(th(j, i)), o::dep_in(yh(j)), o::dep_inout(yh(i))});
    }
    s.fence();
  }
}

/// Factor+solve under an existing Sched (solve() reuses its arena-owning
/// Sched across IPM iterations; the public wrapper builds a transient one).
void factor_solve_with(const Sched& s, double* A, double* x, const double* b,
                       int n, int tile_sz) {
  GLTO_CHECK_MSG(n > 0 && tile_sz >= 8 && n % tile_sz == 0,
                 "bqp: n must be a multiple of tile (tile >= 8)");
  std::memcpy(x, b, static_cast<std::size_t>(n) * sizeof(double));
  if (s.mode == Mode::sequential) {
    emit_factor_solve(A, x, n, tile_sz, s);
    return;
  }
  GLTO_CHECK_MSG(o::selected(),
                 "bqp: task-scheduled modes need a selected omp runtime");
  // Producer pattern (§IV-D): one context creates the whole pipeline.
  o::parallel([&](int, int) {
    o::single([&] {
      emit_factor_solve(A, x, n, tile_sz, s);
      o::taskwait();
    });
  });
}

}  // namespace

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::sequential:
      return "sequential";
    case Mode::taskdep:
      return "taskdep";
    case Mode::taskwait:
      return "taskwait";
  }
  return "?";
}

void factor_solve_inplace(double* A, double* x, const double* b, int n,
                          int tile_sz, Mode mode) {
  const Sched s{mode};
  factor_solve_with(s, A, x, b, n, tile_sz);
}

Problem make_problem(int n, int tile_sz, int rank, std::uint64_t seed) {
  GLTO_CHECK_MSG(n > 0 && tile_sz >= 8 && n % tile_sz == 0 && rank > 0,
                 "bqp: bad problem shape");
  Problem p;
  p.n = n;
  p.tile = tile_sz;
  p.rank = rank;
  p.d.resize(static_cast<std::size_t>(n));
  p.V.resize(static_cast<std::size_t>(n) * rank);
  p.g.resize(static_cast<std::size_t>(n));
  p.lb.resize(static_cast<std::size_t>(n));
  p.ub.resize(static_cast<std::size_t>(n));
  common::FastRng rng(seed);
  const double vs = 1.0 / std::sqrt(static_cast<double>(rank + 1));
  auto u = [&] { return static_cast<double>(rng.next() >> 11) * 0x1.0p-53; };
  for (int i = 0; i < n; ++i) {
    p.d[static_cast<std::size_t>(i)] = 1.0 + u();
    for (int r = 0; r < rank; ++r) {
      p.V[static_cast<std::size_t>(i) * rank + r] = (2.0 * u() - 1.0) * vs;
    }
    p.g[static_cast<std::size_t>(i)] = 2.0 * u() - 1.0;
    // Tight-ish box around 0 so a healthy fraction of bounds are active.
    p.lb[static_cast<std::size_t>(i)] = -0.4 + 0.3 * u();
    p.ub[static_cast<std::size_t>(i)] = 0.4 - 0.3 * u();
  }
  return p;
}

namespace {

/// hx := H·x = d∘x + V·(Vᵀx) — O(n·rank), never materializes H.
void apply_h(const Problem& p, const std::vector<double>& x,
             std::vector<double>& hx, std::vector<double>& scratch_r) {
  const int n = p.n, r = p.rank;
  scratch_r.assign(static_cast<std::size_t>(r), 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < r; ++j) {
      scratch_r[static_cast<std::size_t>(j)] +=
          p.V[static_cast<std::size_t>(i) * r + j] *
          x[static_cast<std::size_t>(i)];
    }
  }
  for (int i = 0; i < n; ++i) {
    double v = p.d[static_cast<std::size_t>(i)] * x[static_cast<std::size_t>(i)];
    for (int j = 0; j < r; ++j) {
      v += p.V[static_cast<std::size_t>(i) * r + j] *
           scratch_r[static_cast<std::size_t>(j)];
    }
    hx[static_cast<std::size_t>(i)] = v;
  }
}

}  // namespace

double kkt_residual(const Problem& p, const std::vector<double>& x,
                    const std::vector<double>& zl,
                    const std::vector<double>& zu) {
  const int n = p.n;
  std::vector<double> hx(static_cast<std::size_t>(n)), sr;
  apply_h(p, x, hx, sr);
  double worst = 0.0;
  for (int i = 0; i < n; ++i) {
    const auto ii = static_cast<std::size_t>(i);
    const double stat = hx[ii] + p.g[ii] - zl[ii] + zu[ii];
    worst = std::max(worst, std::fabs(stat));
    worst = std::max(worst, p.lb[ii] - x[ii]);        // primal feasibility
    worst = std::max(worst, x[ii] - p.ub[ii]);
    worst = std::max(worst, -zl[ii]);                 // dual feasibility
    worst = std::max(worst, -zu[ii]);
    worst = std::max(worst, std::fabs(zl[ii] * (x[ii] - p.lb[ii])));
    worst = std::max(worst, std::fabs(zu[ii] * (p.ub[ii] - x[ii])));
  }
  return worst;
}

Result solve(const Problem& p, Mode mode, int max_iters, double tol,
             const sched::QosContext* qos) {
  const int n = p.n, r = p.rank;
  const auto un = static_cast<std::size_t>(n);
  std::vector<double> x(un), sl(un), su(un), zl(un, 1.0), zu(un, 1.0);
  for (int i = 0; i < n; ++i) {
    const auto ii = static_cast<std::size_t>(i);
    x[ii] = 0.5 * (p.lb[ii] + p.ub[ii]);
    sl[ii] = x[ii] - p.lb[ii];
    su[ii] = p.ub[ii] - x[ii];
  }
  // Per-iteration scratch comes from the Sched-owned arena (leased for
  // this solve): warm resizes are no-ops, so iterations 2..k — and later
  // solves reusing the pooled arena — allocate nothing. Only the
  // primal/dual state above stays local; it is moved into the Result.
  const ArenaLease lease;
  const Sched sched{mode, lease.get()};
  std::vector<double>& K = sched.arena->K;
  std::vector<double>& rhs = sched.arena->rhs;
  std::vector<double>& dx = sched.arena->dx;
  std::vector<double>& hx = sched.arena->hx;
  std::vector<double>& sr = sched.arena->sr;
  std::vector<double>& dzl = sched.arena->dzl;
  std::vector<double>& dzu = sched.arena->dzu;
  K.resize(un * un);
  rhs.resize(un);
  dx.resize(un);
  hx.resize(un);
  dzl.resize(un);
  dzu.resize(un);

  Result res;
  for (int iter = 1; iter <= max_iters; ++iter) {
    // Cancellation point (one clock read): an expired request abandons
    // the solve at the iteration boundary instead of finishing a useless
    // answer — the caller sees the best iterate so far.
    if (sched::qos_expired(qos)) {
      res.deadline_abandoned = true;
      res.iters = iter - 1;
      break;
    }
    apply_h(p, x, hx, sr);
    double mu = 0.0, quick = 0.0;
    for (int i = 0; i < n; ++i) {
      const auto ii = static_cast<std::size_t>(i);
      const double rd = hx[ii] + p.g[ii] - zl[ii] + zu[ii];
      rhs[ii] = rd;  // stationarity residual, reused below
      quick = std::max({quick, std::fabs(rd), sl[ii] * zl[ii],
                        su[ii] * zu[ii]});
      mu += sl[ii] * zl[ii] + su[ii] * zu[ii];
    }
    mu /= 2.0 * n;
    res.iters = iter - 1;
    if (quick < tol) {
      res.converged = true;
      break;
    }
    const double smu = 0.1 * mu;  // fixed centering

    // K = V·Vᵀ + diag(d + zl/sl + zu/su); lower triangle only.
    for (int i = 0; i < n; ++i) {
      const auto ii = static_cast<std::size_t>(i);
      for (int j = 0; j <= i; ++j) {
        double v = 0.0;
        for (int q = 0; q < r; ++q) {
          v += p.V[ii * static_cast<std::size_t>(r) + q] *
               p.V[static_cast<std::size_t>(j) * r + q];
        }
        K[ii * un + static_cast<std::size_t>(j)] = v;
      }
      K[ii * un + ii] += p.d[ii] + zl[ii] / sl[ii] + zu[ii] / su[ii];
    }
    for (int i = 0; i < n; ++i) {
      const auto ii = static_cast<std::size_t>(i);
      rhs[ii] = -rhs[ii] + (smu - sl[ii] * zl[ii]) / sl[ii] -
                (smu - su[ii] * zu[ii]) / su[ii];
    }

    factor_solve_with(sched, K.data(), dx.data(), rhs.data(), n, p.tile);

    double alpha = 1.0;
    for (int i = 0; i < n; ++i) {
      const auto ii = static_cast<std::size_t>(i);
      dzl[ii] = (smu - sl[ii] * zl[ii]) / sl[ii] - (zl[ii] / sl[ii]) * dx[ii];
      dzu[ii] = (smu - su[ii] * zu[ii]) / su[ii] + (zu[ii] / su[ii]) * dx[ii];
      if (dx[ii] < 0.0) alpha = std::min(alpha, -sl[ii] / dx[ii]);
      if (dx[ii] > 0.0) alpha = std::min(alpha, su[ii] / dx[ii]);
      if (dzl[ii] < 0.0) alpha = std::min(alpha, -zl[ii] / dzl[ii]);
      if (dzu[ii] < 0.0) alpha = std::min(alpha, -zu[ii] / dzu[ii]);
    }
    alpha *= 0.995;  // fraction-to-boundary
    for (int i = 0; i < n; ++i) {
      const auto ii = static_cast<std::size_t>(i);
      x[ii] += alpha * dx[ii];
      zl[ii] += alpha * dzl[ii];
      zu[ii] += alpha * dzu[ii];
      sl[ii] = x[ii] - p.lb[ii];
      su[ii] = p.ub[ii] - x[ii];
    }
  }

  // The loop records iters before taking each step; a run that exhausts
  // max_iters without converging still took max_iters full steps. An
  // abandoned solve keeps the true step count recorded at the break.
  if (!res.converged && !res.deadline_abandoned) res.iters = max_iters;

  res.x = std::move(x);
  res.zl = std::move(zl);
  res.zu = std::move(zu);
  res.kkt = kkt_residual(p, res.x, res.zl, res.zu);
  return res;
}

void make_spd(int n, std::uint64_t seed, std::vector<double>& A,
              std::vector<double>& b) {
  const auto un = static_cast<std::size_t>(n);
  std::vector<double> B(un * un);
  common::FastRng rng(seed);
  auto u = [&] { return static_cast<double>(rng.next() >> 11) * 0x1.0p-53; };
  for (auto& v : B) v = u() - 0.5;
  A.assign(un * un, 0.0);
  b.resize(un);
  for (auto& v : b) v = 2.0 * u() - 1.0;
  // A = B·Bᵀ + n·I — comfortably SPD.
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j <= i; ++j) {
      double v = 0.0;
      for (int p = 0; p < n; ++p) {
        v += B[static_cast<std::size_t>(i) * un + p] *
             B[static_cast<std::size_t>(j) * un + p];
      }
      A[static_cast<std::size_t>(i) * un + j] = v;
      A[static_cast<std::size_t>(j) * un + i] = v;
    }
    A[static_cast<std::size_t>(i) * un + i] += n;
  }
}

double residual_inf(const std::vector<double>& A0,
                    const std::vector<double>& x,
                    const std::vector<double>& b, int n) {
  const auto un = static_cast<std::size_t>(n);
  double worst = 0.0;
  for (int i = 0; i < n; ++i) {
    double v = -b[static_cast<std::size_t>(i)];
    for (int j = 0; j < n; ++j) {
      v += A0[static_cast<std::size_t>(i) * un + j] *
           x[static_cast<std::size_t>(j)];
    }
    worst = std::max(worst, std::fabs(v));
  }
  return worst;
}

}  // namespace glto::apps::bqp
