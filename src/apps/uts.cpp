#include "apps/uts.hpp"

#include <pthread.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "abt/abt.hpp"
#include "common/cacheline.hpp"
#include "common/debug.hpp"
#include "common/rng.hpp"
#include "common/spin.hpp"
#include "mth/mth.hpp"
#include "omp/omp.hpp"
#include "qth/qth.hpp"
#include "sched/locked_queue.hpp"

namespace glto::apps::uts {

namespace {

struct Node {
  common::SplitRng rng{0};
  int depth = 0;
};

/// Child count. GEO: the root always has ceil(b0) children (as in UTS, so
/// the tree is never trivially empty); interior nodes draw from a
/// geometric distribution with mean b0; nodes at gen_mx are leaves.
/// BIN: a node is interior with probability q and then has exactly m
/// children — a Galton–Watson process (subcritical when q·m < 1).
int num_children(const Params& p, Node& n) {
  switch (p.kind) {
    case TreeKind::geometric: {
      if (n.depth >= p.gen_mx) return 0;
      if (n.depth == 0) return static_cast<int>(std::ceil(p.b0));
      const double u = n.rng.next_double();
      const double prob = 1.0 / (1.0 + p.b0);  // E[children] = b0
      const double m = std::floor(std::log(1.0 - u) / std::log(1.0 - prob));
      return static_cast<int>(std::min(m, 64.0));
    }
    case TreeKind::binomial: {
      if (n.depth == 0) return p.bin_m;  // root is always interior (UTS)
      return n.rng.next_double() < p.bin_q ? p.bin_m : 0;
    }
  }
  return 0;
}

Node make_root(const Params& p) {
  if (p.kind == TreeKind::binomial) {
    GLTO_CHECK_MSG(p.bin_q * p.bin_m < 1.0,
                   "binomial UTS tree must be subcritical (q*m < 1)");
  }
  Node root;
  root.rng = common::SplitRng(p.root_seed);
  root.depth = 0;
  return root;
}

void expand(const Params& p, Node n, std::vector<Node>& out, Result& acc) {
  acc.nodes++;
  acc.max_depth = std::max(acc.max_depth, n.depth);
  const int kids = num_children(p, n);
  if (kids == 0) {
    acc.leaves++;
    return;
  }
  for (int i = 0; i < kids; ++i) {
    Node child;
    child.rng = n.rng.split(static_cast<std::uint64_t>(i));
    child.depth = n.depth + 1;
    out.push_back(child);
  }
}

void merge(Result& into, const Result& part) {
  into.nodes += part.nodes;
  into.leaves += part.leaves;
  into.max_depth = std::max(into.max_depth, part.max_depth);
}

/// Shared state of the app-level load-balancing protocol (one `parallel`
/// region; the OpenMP runtime is only the environment creator).
struct SearchShared {
  explicit SearchShared(int nthreads) : nth(nthreads) {}
  const int nth;
  sched::LockedQueue<Node> release;   // surplus chunks offered for stealing
  std::atomic<int> idle{0};
  common::SpinLock result_lock;
  Result total;
};

constexpr std::size_t kReleaseThreshold = 64;  // local depth before sharing
constexpr std::size_t kChunk = 16;             // nodes moved per release

/// Per-thread worker body; identical across the OpenMP and native ports.
/// @p yield_fn lets each threading substrate donate the CPU its own way.
template <typename YieldFn>
void search_worker(const Params& p, SearchShared& sh, int tid,
                   YieldFn&& yield_fn) {
  std::vector<Node> local;
  Result mine;
  if (tid == 0) local.push_back(make_root(p));

  bool counted_idle = false;
  for (;;) {
    if (!local.empty()) {
      if (counted_idle) {
        sh.idle.fetch_sub(1, std::memory_order_acq_rel);
        counted_idle = false;
      }
      Node n = local.back();
      local.pop_back();
      expand(p, n, local, mine);
      // Offer surplus work when the local stack grows deep.
      if (local.size() > kReleaseThreshold) {
        for (std::size_t i = 0; i < kChunk; ++i) {
          sh.release.push(local.front());
          // Move oldest (shallowest) nodes: biggest subtrees for thieves.
          local.erase(local.begin());
        }
      }
      continue;
    }
    if (auto n = sh.release.pop()) {
      local.push_back(*n);
      continue;
    }
    if (!counted_idle) {
      sh.idle.fetch_add(1, std::memory_order_acq_rel);
      counted_idle = true;
    }
    if (sh.idle.load(std::memory_order_acquire) == sh.nth &&
        sh.release.empty()) {
      break;  // global quiescence
    }
    yield_fn();
  }
  common::SpinGuard g(sh.result_lock);
  merge(sh.total, mine);
}

}  // namespace

Result search_sequential(const Params& p) {
  std::vector<Node> stack;
  Result acc;
  stack.push_back(make_root(p));
  while (!stack.empty()) {
    Node n = stack.back();
    stack.pop_back();
    expand(p, n, stack, acc);
  }
  return acc;
}

Result search_omp(const Params& p) {
  const int nth = omp::max_threads();
  SearchShared sh(nth);
  omp::parallel([&](int tid, int) {
    // Idle threads must yield *through the runtime*: over GLTO this lets
    // co-located ULTs (including a suspended master) make progress.
    search_worker(p, sh, tid, [] { omp::taskyield(); });
  });
  return sh.total;
}

Result search_pthreads(const Params& p, int nthreads) {
  SearchShared sh(nthreads);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nthreads));
  for (int t = 0; t < nthreads; ++t) {
    threads.emplace_back([&, t] {
      search_worker(p, sh, t, [] { std::this_thread::yield(); });
    });
  }
  for (auto& th : threads) th.join();
  return sh.total;
}

Result search_abt_native(const Params& p, int nthreads) {
  abt::Config cfg;
  cfg.num_xstreams = nthreads;
  cfg.bind_threads = false;
  abt::init(cfg);
  SearchShared sh(nthreads);
  struct Arg {
    const Params* p;
    SearchShared* sh;
    int tid;
  };
  std::vector<Arg> args;
  args.reserve(static_cast<std::size_t>(nthreads));
  for (int t = 0; t < nthreads; ++t) args.push_back(Arg{&p, &sh, t});
  std::vector<abt::WorkUnit*> ults;
  for (int t = 0; t < nthreads; ++t) {
    ults.push_back(abt::ult_create_on(
        t,
        [](void* q) {
          auto* a = static_cast<Arg*>(q);
          search_worker(*a->p, *a->sh, a->tid, [] { abt::yield(); });
        },
        &args[static_cast<std::size_t>(t)]));
  }
  for (auto* u : ults) abt::join(u);
  abt::finalize();
  return sh.total;
}

Result search_qth_native(const Params& p, int nthreads) {
  qth::Config cfg;
  cfg.num_shepherds = nthreads;
  cfg.bind_threads = false;
  qth::init(cfg);
  SearchShared sh(nthreads);
  struct Arg {
    const Params* p;
    SearchShared* sh;
    int tid;
    qth::aligned_t feb_lock;  // FEB word used as the qthreads-style mutex
  };
  // qthreads port detail: result merging synchronizes through FEB words
  // (every native qthreads sync goes through the word-lock table).
  std::vector<Arg> args;
  args.reserve(static_cast<std::size_t>(nthreads));
  for (int t = 0; t < nthreads; ++t) args.push_back(Arg{&p, &sh, t, 0});
  std::vector<qth::aligned_t> rets(static_cast<std::size_t>(nthreads), 0);
  for (int t = 0; t < nthreads; ++t) {
    qth::fork_to(
        t,
        [](void* q) -> qth::aligned_t {
          auto* a = static_cast<Arg*>(q);
          // Exercise the FEB table on the idle path, as the native
          // qthreads scheduler does for its internal synchronization.
          search_worker(*a->p, *a->sh, a->tid, [a] {
            qth::aligned_t sink = 0;
            qth::readFF(&sink, &a->feb_lock);
            qth::yield();
          });
          return 0;
        },
        &args[static_cast<std::size_t>(t)], &rets[static_cast<std::size_t>(t)]);
  }
  qth::aligned_t sink = 0;
  for (auto& r : rets) qth::readFF(&sink, &r);
  qth::finalize();
  return sh.total;
}

Result search_mth_native(const Params& p, int nthreads) {
  mth::Config cfg;
  cfg.num_workers = nthreads;
  cfg.bind_threads = false;
  mth::init(cfg);
  SearchShared sh(nthreads);
  struct Arg {
    const Params* p;
    SearchShared* sh;
    int tid;
  };
  std::vector<Arg> args;
  args.reserve(static_cast<std::size_t>(nthreads));
  for (int t = 0; t < nthreads; ++t) args.push_back(Arg{&p, &sh, t});
  std::vector<mth::Strand*> strands;
  for (int t = 0; t < nthreads; ++t) {
    strands.push_back(mth::create(
        [](void* q) {
          auto* a = static_cast<Arg*>(q);
          search_worker(*a->p, *a->sh, a->tid, [] { mth::yield(); });
        },
        &args[static_cast<std::size_t>(t)]));
  }
  for (auto* s : strands) mth::join(s);
  mth::finalize();
  return sh.total;
}

}  // namespace glto::apps::uts
