// CG — conjugate gradient on a sparse SPD matrix; the paper's task-
// parallel workload (§VI-E, Figs. 10–13, Table III).
//
// The paper takes the OpenMP CG of Aliaga et al., replaces its
// `parallel for` regions with `task` directives, and runs it on the
// SuiteSparse matrix bmwcra_1 restricted to 14,878 rows, sweeping the
// task granularity (rows per task): 10/20/50/100 → 1,488/744/298/149
// tasks per operation. A single producer (inside `single`) creates the
// tasks; the remaining threads consume — the pattern that exposes the
// Intel runtime's queue contention and cut-off behaviour.
//
// Substitutions (DESIGN.md): bmwcra_1 → synthetic pentadiagonal SPD
// matrix with exactly 14,878 rows; MKL SpMV → own CSR SpMV.
#pragma once

#include <cstdint>
#include <vector>

namespace glto::apps::cg {

/// Compressed sparse row matrix.
struct Csr {
  int n = 0;
  std::vector<int> rowptr;  // n+1
  std::vector<int> col;
  std::vector<double> val;

  [[nodiscard]] std::int64_t nnz() const {
    return static_cast<std::int64_t>(val.size());
  }
};

/// Symmetric positive definite pentadiagonal test matrix
/// (4.5 on the diagonal, -1 at offsets ±1, ±2): diagonally dominant.
Csr make_spd_pentadiagonal(int n);

/// Same sparsity, but with a periodically varying diagonal (4.5 + (i mod 5)/2)
/// so diagonal (Jacobi) preconditioning is non-trivial.
Csr make_spd_variable_diag(int n);

/// The paper's default row count (bmwcra_1 subset).
inline constexpr int kPaperRows = 14878;

/// y = A x (sequential reference).
void spmv_seq(const Csr& a, const std::vector<double>& x,
              std::vector<double>& y);

struct Result {
  int iterations = 0;
  double residual_norm = 0.0;  // ‖b - Ax‖₂ at exit
  bool converged = false;
};

/// Work-sharing CG: every vector op is a `parallel for` (the original
/// Aliaga et al. structure). Uses the currently selected omp runtime.
Result solve_worksharing(const Csr& a, const std::vector<double>& b,
                         std::vector<double>& x, int max_iters, double tol);

/// Task-parallel CG (the paper's transformation): every vector/SpMV
/// operation is decomposed into row-block tasks of @p rows_per_task rows,
/// created by a single producer inside `single` and executed by the
/// consuming threads.
Result solve_tasks(const Csr& a, const std::vector<double>& b,
                   std::vector<double>& x, int max_iters, double tol,
                   int rows_per_task);

/// Jacobi-preconditioned task-parallel CG: same producer/consumer task
/// structure with M = diag(A). On matrices with non-constant diagonals it
/// converges in fewer iterations than plain CG (extension beyond the
/// paper; same scheduling behaviour).
Result solve_tasks_jacobi(const Csr& a, const std::vector<double>& b,
                          std::vector<double>& x, int max_iters, double tol,
                          int rows_per_task);

/// Number of tasks one operation spawns for a granularity (paper: 1488 /
/// 744 / 298 / 149 for g = 10 / 20 / 50 / 100 at n = 14,878).
[[nodiscard]] int tasks_for_granularity(int n, int rows_per_task);

}  // namespace glto::apps::cg
