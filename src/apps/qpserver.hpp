// qpserver — QP-as-a-service: sustained concurrent solve traffic through
// one runtime instance.
//
// The real-time-MPC solvers bqp models (EIQP, arXiv 2502.07738; the
// time-certified box-QP IPM of arXiv 2510.04467) are judged on p95/p99
// solve latency under heavy traffic from many users, not on a single
// solve's wall clock. This driver measures exactly that scenario: a
// producer streams thousands of independent box-QP solve requests into a
// bounded sched::Channel, a fixed flock of worker ULTs blocks on recv()
// — truly suspended, not micro-sleeping — and each request's
// enqueue→solved latency lands in a LatencyHistogram. Backpressure is
// the channel bound: a full queue suspends the producer instead of
// growing an unbounded backlog.
//
// Requires an initialized glt:: runtime (any backend). Knobs
// ($GLTO_QPSERVER_*): REQUESTS, CONCURRENCY, QUEUE, N, TILE, RANK,
// ITERS, SEED.
#pragma once

#include <cstdint>

namespace glto::apps::qpserver {

struct Config {
  int requests = 2000;    ///< total solve requests streamed
  int concurrency = 8;    ///< worker ULTs draining the channel
  int queue_depth = 64;   ///< channel capacity (backpressure bound)
  int n = 48;             ///< QP variables (multiple of tile)
  int tile = 16;          ///< Cholesky tile size
  int rank = 4;           ///< low-rank term width
  int max_iters = 40;     ///< IPM iteration cap per solve
  std::uint64_t seed = 42;
};

/// Config with every field overridable via $GLTO_QPSERVER_<KNOB>.
[[nodiscard]] Config config_from_env();

struct Report {
  std::uint64_t completed = 0;
  std::uint64_t not_converged = 0;  ///< solves that hit the iteration cap
  double elapsed_s = 0.0;
  double throughput_rps = 0.0;  ///< completed requests per second
  // enqueue→solved latency (conservative ≤12.5% percentile estimates,
  // exact max — see sched::LatencyHistogram).
  std::uint64_t p50_us = 0;
  std::uint64_t p95_us = 0;
  std::uint64_t p99_us = 0;
  std::uint64_t max_us = 0;
};

/// Streams cfg.requests solves through the live glt runtime at
/// cfg.concurrency and reports the latency distribution. The caller must
/// have called glt::init.
[[nodiscard]] Report run(const Config& cfg);

}  // namespace glto::apps::qpserver
