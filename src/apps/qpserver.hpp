// qpserver — QP-as-a-service: sustained concurrent solve traffic through
// one runtime instance.
//
// The real-time-MPC solvers bqp models (EIQP, arXiv 2502.07738; the
// time-certified box-QP IPM of arXiv 2510.04467) are judged on p95/p99
// solve latency under heavy traffic from many users, not on a single
// solve's wall clock. This driver measures exactly that scenario: a
// producer streams thousands of independent box-QP solve requests into a
// bounded sched::Channel, a fixed flock of worker ULTs blocks on recv()
// — truly suspended, not micro-sleeping — and each request's
// enqueue→solved latency lands in a LatencyHistogram.
//
// Overload resilience (deadline_ms > 0 arms the whole layer):
//  - every request carries an absolute deadline; admission sheds a
//    request whose estimated queue wait already exceeds the remaining
//    budget, or whose timed send cannot enqueue within its slice;
//  - shed attempts retry up to `retries` times with deterministic
//    jittered backoff before counting as shed;
//  - a worker drops queue-expired requests without solving, and an
//    in-flight solve polls its QosContext so an expired request abandons
//    work at the next IPM iteration boundary;
//  - degrade mode lowers the IPM iteration cap while the queue sits
//    above a high-water mark, trading accuracy for goodput.
// Accounting is exact: completed + shed + deadline_missed == offered,
// each request landing in exactly one terminal bucket.
//
// Requires an initialized glt:: runtime (any backend). Knobs
// ($GLTO_QPSERVER_*): REQUESTS, CONCURRENCY, QUEUE, N, TILE, RANK,
// ITERS, SEED, DEADLINE_MS, RETRIES, BACKOFF_US, DEGRADE.
#pragma once

#include <cstdint>

namespace glto::apps::qpserver {

struct Config {
  int requests = 2000;    ///< total solve requests streamed
  int concurrency = 8;    ///< worker ULTs draining the channel
  int queue_depth = 64;   ///< channel capacity (backpressure bound)
  int n = 48;             ///< QP variables (multiple of tile)
  int tile = 16;          ///< Cholesky tile size
  int rank = 4;           ///< low-rank term width
  int max_iters = 40;     ///< IPM iteration cap per solve
  std::uint64_t seed = 42;
  // --- overload / QoS (deadline_ms == 0 disables the whole layer and
  // reproduces the original always-blocking closed-loop behaviour) ---
  int deadline_ms = 0;    ///< per-request budget from arrival, ms
  int retries = 2;        ///< admission retry attempts after a shed
  int backoff_us = 200;   ///< retry backoff step (jittered, per attempt)
  bool degrade = false;   ///< lower IPM cap when the queue runs hot
  /// Open-loop arrival pacing in requests/s; 0 = closed loop (the
  /// producer blocks on backpressure). Set by benches/tests, not env —
  /// overload is a property of the experiment, not the deployment.
  double arrival_rps = 0.0;
};

/// Config with every field overridable via $GLTO_QPSERVER_<KNOB>.
[[nodiscard]] Config config_from_env();

struct Report {
  std::uint64_t offered = 0;          ///< requests presented for admission
  std::uint64_t completed = 0;        ///< solved within budget
  std::uint64_t shed = 0;             ///< dropped at admission (post-retry)
  std::uint64_t deadline_missed = 0;  ///< expired queued/in-flight/late
  std::uint64_t retried = 0;          ///< admission retry attempts taken
  std::uint64_t degraded = 0;         ///< solves run under the lowered cap
  std::uint64_t not_converged = 0;    ///< solves that hit the iteration cap
  double elapsed_s = 0.0;
  double throughput_rps = 0.0;  ///< terminal outcomes per second
  double goodput_rps = 0.0;     ///< completed-within-budget per second
  // enqueue→solved latency of *completed* requests (conservative ≤12.5%
  // percentile estimates, exact max — see sched::LatencyHistogram).
  std::uint64_t p50_us = 0;
  std::uint64_t p95_us = 0;
  std::uint64_t p99_us = 0;
  std::uint64_t max_us = 0;
};

/// Streams cfg.requests solves through the live glt runtime at
/// cfg.concurrency and reports the latency distribution plus the
/// overload accounting. The caller must have called glt::init. Checks
/// completed + shed + deadline_missed == offered before returning.
[[nodiscard]] Report run(const Config& cfg);

}  // namespace glto::apps::qpserver
