// OpenUH-style OpenMP validation suite (paper §V, Table I).
//
// The OpenUH OpenMP Validation Suite 3.1 runs 123 tests over 62 OpenMP
// constructs in *normal*, *cross*, and *orphan* modes:
//   normal — the construct is exercised directly;
//   cross  — the construct runs nested inside another parallel construct;
//   orphan — the construct is invoked from a separate (non-inlined)
//            function, outside the lexical extent of its region.
//
// This re-implementation follows that structure against the omp:: facade:
// 38 construct checks × 3 modes + 5 task-semantics tests = 123 tests.
// The task-semantics tests are the ones the paper's Table I hinges on:
//
//   omp_taskyield (normal)  strict:  most yields must migrate the task to
//                                    another thread — fails everywhere
//                                    (matches the paper: every runtime
//                                    fails plain taskyield).
//   omp_taskyield (orphan)  lenient: some post-yield migration — only a
//                                    stealing runtime (GLTO/MTH) passes.
//   omp_task_untied (normal/orphan)  untied tasks must be able to resume
//                                    on a different thread — passes only
//                                    with work stealing (GLTO/MTH).
//   omp_task_final (normal)          a final task must execute undeferred —
//                                    GLTO runs final tasks inline and
//                                    passes; the pthread baselines enqueue
//                                    them and fail.
//
// Run over each of the five runtimes to regenerate Table I
// (bench/table1_validation).
#pragma once

#include <string>
#include <vector>

namespace glto::apps::validation {

enum class Mode { normal, cross, orphan };

[[nodiscard]] const char* mode_name(Mode m);

struct TestCase {
  std::string name;        ///< e.g. "omp_parallel_for_static"
  std::string construct;   ///< construct group, e.g. "parallel for"
  Mode mode = Mode::normal;
  bool (*fn)(Mode) = nullptr;
};

/// The full suite (123 cases). Deterministic order.
[[nodiscard]] const std::vector<TestCase>& suite();

/// Number of distinct construct groups covered (paper: 62).
[[nodiscard]] int construct_count();

struct SuiteResult {
  int total = 0;
  int passed = 0;
  std::vector<std::string> failed_names;
};

/// Runs the entire suite against the *currently selected* omp runtime.
[[nodiscard]] SuiteResult run_suite();

/// Runs a single case (for fine-grained gtest wrapping).
[[nodiscard]] bool run_case(const TestCase& tc);

}  // namespace glto::apps::validation
