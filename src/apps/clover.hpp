// CloverLeaf-mini — a C++ port of the CloverLeaf hydrodynamics mini-app
// structure, the paper's compute-bound work-sharing workload (§VI-C,
// Figs. 6 & 7).
//
// What matters for the experiment is the *shape*: a staggered Cartesian
// grid (energy/density/pressure at cell centres, velocities at cell
// corners), advanced by an explicit scheme where every kernel is its own
// `parallel for` region, and the whole kernel sequence repeats thousands
// of times — CloverLeaf runs 114 parallel loops per step, 2,955 steps,
// 336,870 work-sharing regions. The runtime's work-assignment overhead
// (Fig. 7) is paid once per region, which is why pthread runtimes with a
// broadcast-style fork win this scenario.
//
// The physics here is a simplified compressible-hydro scheme (ideal-gas
// EOS, artificial viscosity, PdV energy update, corner acceleration,
// first-order upwind advection) — honest enough to conserve mass and keep
// fields finite, small enough to verify in unit tests. Substitution from
// the Fortran original is documented in DESIGN.md.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace glto::apps::clover {

struct Config {
  int nx = 64;
  int ny = 64;
  double gamma = 1.4;
  double cfl = 0.5;
  /// Extra no-op sub-kernel invocations per step so the per-step count of
  /// work-sharing regions matches CloverLeaf's 114 (Fig. 6/7 fidelity).
  bool pad_to_114_regions = true;
};

/// A 2-D field with one halo cell on each side, row-major.
class Field {
 public:
  Field() = default;
  Field(int nx, int ny, double init = 0.0)
      : nx_(nx), ny_(ny), data_(static_cast<std::size_t>((nx + 2) * (ny + 2)),
                                init) {}

  [[nodiscard]] double& at(int i, int j) {
    return data_[static_cast<std::size_t>((j + 1) * (nx_ + 2) + (i + 1))];
  }
  [[nodiscard]] double at(int i, int j) const {
    return data_[static_cast<std::size_t>((j + 1) * (nx_ + 2) + (i + 1))];
  }
  [[nodiscard]] int nx() const { return nx_; }
  [[nodiscard]] int ny() const { return ny_; }

 private:
  int nx_ = 0, ny_ = 0;
  std::vector<double> data_;
};

/// The mini-app. Every kernel runs through the currently selected omp
/// runtime; construct one after omp::select().
class Clover {
 public:
  explicit Clover(const Config& cfg);

  /// Sets the bm-style two-state initial condition: ambient gas plus a
  /// dense, energetic square region in the lower-left corner.
  void init_state();

  /// Advances one explicit step (dt from a CFL-style stability bound).
  void step();

  /// Runs @p steps steps.
  void run(int steps);

  // Diagnostics (used by tests and the bench harness).
  [[nodiscard]] double total_mass() const;
  [[nodiscard]] double total_energy() const;
  [[nodiscard]] double max_velocity() const;
  [[nodiscard]] bool all_finite() const;
  [[nodiscard]] double dt() const { return dt_; }

  /// Number of `parallel for` regions issued per step (paper: 114).
  [[nodiscard]] int regions_per_step() const { return regions_per_step_; }

  /// Total regions issued so far.
  [[nodiscard]] std::int64_t regions_issued() const {
    return regions_issued_;
  }

 private:
  void ideal_gas();
  void viscosity_kernel();
  void calc_dt();
  void pdv(bool predict);
  void lagrangian_copy();
  void accelerate();
  void flux_calc();
  void advec_cell(int sweep);
  void advec_mom(int sweep);
  void reset_fields();
  void pad_regions();

  /// parallel_for over interior rows; bumps the region counter.
  void rows(const std::function<void(int)>& row_body);

  Config cfg_;
  double dt_ = 1e-4;
  int regions_per_step_ = 0;
  std::int64_t regions_issued_ = 0;

  Field density0_, density1_, energy0_, energy1_;
  Field pressure_, viscosity_, soundspeed_;
  Field xvel0_, xvel1_, yvel0_, yvel1_;  // corner-centred
  Field vol_flux_x_, vol_flux_y_, mass_flux_x_, mass_flux_y_;
  Field work_;
};

}  // namespace glto::apps::clover
