#include "glt/glt.hpp"

#include <atomic>

#include "abt/abt.hpp"
#include "common/debug.hpp"
#include "common/env.hpp"
#include "mth/mth.hpp"
#include "qth/qth.hpp"
#include "sched/chaos.hpp"
#include "sched/trace.hpp"
#include "sched/watchdog.hpp"

namespace glto::glt {

namespace {

struct GltState {
  Config cfg;
  std::atomic<std::uint64_t> ults_created{0};
  std::atomic<std::uint64_t> tasklets_created{0};
  std::uint64_t metrics_token = 0;
};

GltState* g_state = nullptr;

/// Metrics provider: publish the live backend's counters as named entries
/// (registered for the lifetime of the glt instance).
void glt_metrics_provider(void* /*arg*/, sched::MetricsSnapshot& out) {
  const Stats s = stats();
  out.add("glt.ults_created", s.ults_created);
  out.add("glt.tasklets_created", s.tasklets_created);
  out.add("sched.steals", s.steals);
  out.add("sched.failed_steals", s.failed_steals);
  out.add("sched.stack_cache_hits", s.stack_cache_hits);
  out.add("sched.parks", s.parks);
  out.add("sched.parked_us", s.parked_us);
  out.add("sched.wakes_issued", s.wakes_issued);
  out.add("sched.wakes_spurious", s.wakes_spurious);
  out.add("sched.bulk_deposits", s.bulk_deposits);
  // Blocking-primitive traffic (sched/sync.hpp): contexts parked on wait
  // lists, and parked ULTs handed straight back to a worker deque.
  out.add("sched.suspensions", sched::suspensions());
  out.add("sched.wakes_direct", sched::wakes_direct());
  out.add("sched.timed_waits", sched::timed_waits());
  out.add("sched.timed_wait_timeouts", sched::timed_wait_timeouts());
}

/// Heap wrapper for backends whose native spawn signature differs from
/// WorkFn (qth returns aligned_t) or that need a join word (qth).
struct QthUltRecord {
  WorkFn fn;
  void* arg;
  qth::aligned_t ret = 0;
};

qth::aligned_t qth_trampoline(void* p) {
  auto* rec = static_cast<QthUltRecord*>(p);
  rec->fn(rec->arg);
  return 0;
}

}  // namespace

const char* impl_name(Impl impl) {
  switch (impl) {
    case Impl::abt:
      return "abt";
    case Impl::qth:
      return "qth";
    case Impl::mth:
      return "mth";
  }
  return "?";
}

std::optional<Impl> impl_from_string(std::string_view name) {
  if (name == "abt" || name == "argobots") return Impl::abt;
  if (name == "qth" || name == "qthreads") return Impl::qth;
  if (name == "mth" || name == "massivethreads") return Impl::mth;
  return std::nullopt;
}

Config config_from_env() {
  Config cfg;
  if (auto s = common::env_str("GLT_IMPL")) {
    if (auto impl = impl_from_string(*s)) cfg.impl = *impl;
  }
  cfg.num_threads = static_cast<int>(common::env_i64("GLT_NUM_THREADS", 0));
  cfg.shared_queues = common::env_bool("GLT_SHARED_QUEUES", false);
  return cfg;
}

void init(const Config& cfg) {
  GLTO_CHECK_MSG(g_state == nullptr, "glt::init called twice");
  // Hardening knobs resolve before any worker exists, so every thread the
  // backends spawn sees a settled chaos plan / watchdog window. (The omp
  // facade also resolves these; both entry points are idempotent.)
  sched::chaos_init_from_env();
  sched::watchdog_init_from_env();
  sched::trace_init_from_env();
  sched::metrics_init_from_env();
  g_state = new GltState();
  g_state->cfg = cfg;
  g_state->metrics_token =
      sched::metrics_register_provider(glt_metrics_provider, nullptr);
  switch (cfg.impl) {
    case Impl::abt: {
      abt::Config c;
      c.num_xstreams = cfg.num_threads;
      c.shared_pool = cfg.shared_queues;
      c.bind_threads = cfg.bind_threads;
      abt::init(c);
      break;
    }
    case Impl::qth: {
      qth::Config c;
      c.num_shepherds = cfg.num_threads;
      c.bind_threads = cfg.bind_threads;
      c.shared_pool = cfg.shared_queues;
      qth::init(c);
      break;
    }
    case Impl::mth: {
      mth::Config c;
      c.num_workers = cfg.num_threads;
      c.bind_threads = cfg.bind_threads;
      c.pin_main = cfg.pin_main;
      c.shared_pool = cfg.shared_queues;
      mth::init(c);
      break;
    }
  }
}

void finalize() {
  GLTO_CHECK_MSG(g_state != nullptr, "glt::finalize without init");
  switch (g_state->cfg.impl) {
    case Impl::abt:
      abt::finalize();
      break;
    case Impl::qth:
      qth::finalize();
      break;
    case Impl::mth:
      mth::finalize();
      break;
  }
  sched::metrics_unregister_provider(g_state->metrics_token);
  delete g_state;
  g_state = nullptr;
  // Export whatever the rings hold so far; later instances (or atexit)
  // simply rewrite the file with more history.
  sched::trace_flush();
}

bool initialized() { return g_state != nullptr; }

Impl current_impl() {
  GLTO_CHECK(g_state != nullptr);
  return g_state->cfg.impl;
}

int num_threads() {
  switch (g_state->cfg.impl) {
    case Impl::abt:
      return abt::num_xstreams();
    case Impl::qth:
      return qth::num_shepherds();
    case Impl::mth:
      return mth::num_workers();
  }
  return 0;
}

int thread_num() {
  switch (g_state->cfg.impl) {
    case Impl::abt:
      return abt::self_rank();
    case Impl::qth:
      return qth::shep_rank();
    case Impl::mth:
      return mth::worker_rank();
  }
  return -1;
}

Ult* ult_create(WorkFn fn, void* arg) {
  g_state->ults_created.fetch_add(1, std::memory_order_relaxed);
  switch (g_state->cfg.impl) {
    case Impl::abt:
      return reinterpret_cast<Ult*>(abt::ult_create(fn, arg));
    case Impl::qth: {
      auto* rec = new QthUltRecord{fn, arg, 0};
      qth::fork(qth_trampoline, rec, &rec->ret);
      return reinterpret_cast<Ult*>(rec);
    }
    case Impl::mth:
      return reinterpret_cast<Ult*>(mth::create(fn, arg));
  }
  return nullptr;
}

Ult* ult_create_to(int tid, WorkFn fn, void* arg) {
  g_state->ults_created.fetch_add(1, std::memory_order_relaxed);
  switch (g_state->cfg.impl) {
    case Impl::abt:
      return reinterpret_cast<Ult*>(abt::ult_create_on(tid, fn, arg));
    case Impl::qth: {
      auto* rec = new QthUltRecord{fn, arg, 0};
      qth::fork_to(tid, qth_trampoline, rec, &rec->ret);
      return reinterpret_cast<Ult*>(rec);
    }
    case Impl::mth:
      // mth has no placement: work-first + stealing decide (documented).
      return reinterpret_cast<Ult*>(mth::create(fn, arg));
  }
  return nullptr;
}

void ult_create_bulk(WorkFn fn, void* const* args, int n, Ult** out,
                     bool spread) {
  if (n <= 0) return;
  g_state->ults_created.fetch_add(static_cast<std::uint64_t>(n),
                                  std::memory_order_relaxed);
  switch (g_state->cfg.impl) {
    case Impl::abt:
      abt::ult_create_bulk(fn, args, n,
                           reinterpret_cast<abt::WorkUnit**>(out), spread);
      break;
    case Impl::qth: {
      // The qth shape needs a per-ULT record (trampoline + return-word
      // FEB); records are built in waves so the argument arrays stay on
      // the stack while the batch deposit itself remains bulk.
      constexpr int kWave = 256;
      void* qargs[kWave];
      qth::aligned_t* qrets[kWave];
      int done = 0;
      while (done < n) {
        const int take = n - done < kWave ? n - done : kWave;
        for (int i = 0; i < take; ++i) {
          auto* rec = new QthUltRecord{fn, args[done + i], 0};
          out[done + i] = reinterpret_cast<Ult*>(rec);
          qargs[i] = rec;
          qrets[i] = &rec->ret;
        }
        qth::fork_bulk(qth_trampoline, qargs, qrets, take, spread);
        done += take;
      }
      break;
    }
    case Impl::mth:
      // mth has no placement (the thief decides): spread is advisory, the
      // batch is queued help-first on the caller's deque.
      mth::create_bulk(fn, args, n, reinterpret_cast<mth::Strand**>(out));
      break;
  }
}

bool ult_is_done(Ult* u) {
  switch (g_state->cfg.impl) {
    case Impl::abt:
      return abt::is_done(reinterpret_cast<abt::WorkUnit*>(u));
    case Impl::qth:
      // The qthread's completion fills its return-word FEB; probing the
      // word's full bit is Qthreads' native non-blocking completion test.
      return qth::feb_is_full(&reinterpret_cast<QthUltRecord*>(u)->ret);
    case Impl::mth:
      return mth::is_done(reinterpret_cast<mth::Strand*>(u));
  }
  return false;
}

void ult_join(Ult* u) {
  // Watchdog bracket: a blocking join is a potential "parked waiter" —
  // the stall monitor only fires while waiters exist with no scheduler
  // progress, and a join that suspends into backend work keeps bumping
  // progress through WsCore::acquire.
  sched::watchdog_enter_wait();
  switch (g_state->cfg.impl) {
    case Impl::abt:
      abt::join(reinterpret_cast<abt::WorkUnit*>(u));
      break;
    case Impl::qth: {
      auto* rec = reinterpret_cast<QthUltRecord*>(u);
      qth::aligned_t sink = 0;
      qth::readFF(&sink, &rec->ret);
      delete rec;
      break;
    }
    case Impl::mth:
      mth::join(reinterpret_cast<mth::Strand*>(u));
      break;
  }
  sched::watchdog_exit_wait();
}

Tasklet* tasklet_create(WorkFn fn, void* arg) {
  g_state->tasklets_created.fetch_add(1, std::memory_order_relaxed);
  if (g_state->cfg.impl == Impl::abt) {
    return reinterpret_cast<Tasklet*>(abt::tasklet_create(fn, arg));
  }
  // qth/mth: tasklets are emulated over ULTs (as in the original GLT).
  auto* t = reinterpret_cast<Tasklet*>(ult_create(fn, arg));
  // Keep the counters disjoint: the emulation ULT is reported as a tasklet.
  g_state->ults_created.fetch_sub(1, std::memory_order_relaxed);
  return t;
}

Tasklet* tasklet_create_to(int tid, WorkFn fn, void* arg) {
  g_state->tasklets_created.fetch_add(1, std::memory_order_relaxed);
  if (g_state->cfg.impl == Impl::abt) {
    return reinterpret_cast<Tasklet*>(abt::tasklet_create_on(tid, fn, arg));
  }
  auto* t = reinterpret_cast<Tasklet*>(ult_create_to(tid, fn, arg));
  g_state->ults_created.fetch_sub(1, std::memory_order_relaxed);
  return t;
}

void tasklet_join(Tasklet* t) {
  if (g_state->cfg.impl == Impl::abt) {
    sched::watchdog_enter_wait();
    abt::join(reinterpret_cast<abt::WorkUnit*>(t));
    sched::watchdog_exit_wait();
    return;
  }
  ult_join(reinterpret_cast<Ult*>(t));
}

void yield() {
  switch (g_state->cfg.impl) {
    case Impl::abt:
      abt::yield();
      break;
    case Impl::qth:
      qth::yield();
      break;
    case Impl::mth:
      mth::yield();
      break;
  }
}

bool maybe_work() {
  switch (g_state->cfg.impl) {
    case Impl::abt:
      return abt::maybe_work();
    case Impl::qth:
      return qth::maybe_work();
    case Impl::mth:
      return mth::maybe_work();
  }
  return false;
}

void* self_local() {
  switch (g_state->cfg.impl) {
    case Impl::abt:
      return abt::self_local();
    case Impl::qth:
      return qth::self_local();
    case Impl::mth:
      return mth::self_local();
  }
  return nullptr;
}

void set_self_local(void* p) {
  switch (g_state->cfg.impl) {
    case Impl::abt:
      abt::set_self_local(p);
      break;
    case Impl::qth:
      qth::set_self_local(p);
      break;
    case Impl::mth:
      mth::set_self_local(p);
      break;
  }
}

bool supports_stealing() { return g_state->cfg.impl == Impl::mth; }

bool supports_native_tasklets() { return g_state->cfg.impl == Impl::abt; }

bool local_spawn() {
  // qth gained run-local plain forks with the shared work-stealing core;
  // only its locked ablation baseline still round-robin-scatters them
  // with no stealing to undo a bad placement.
  if (g_state->cfg.impl == Impl::qth) {
    return qth::dispatch_mode() == sched::Dispatch::WorkStealing;
  }
  return true;
}

Stats stats() {
  Stats s;
  if (g_state != nullptr) {
    s.ults_created = g_state->ults_created.load(std::memory_order_relaxed);
    s.tasklets_created =
        g_state->tasklets_created.load(std::memory_order_relaxed);
    // All three backends dispatch through the shared sched::WsCore, so
    // the scheduler-behaviour counters are uniformly meaningful — table3
    // and abl_glt_dispatch sweep GLT_IMPL and compare them directly.
    // Every backend Stats inherits sched::StatsSnapshot: one slice
    // assignment replaces the old per-backend field-by-field copies.
    sched::StatsSnapshot& base = s;
    switch (g_state->cfg.impl) {
      case Impl::abt:
        base = abt::stats();
        break;
      case Impl::mth:
        base = mth::stats();
        break;
      case Impl::qth:
        base = qth::stats();
        break;
    }
  }
  return s;
}

}  // namespace glto::glt
