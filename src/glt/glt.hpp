// glt — Generic Lightweight Threads: one programming model over the three
// LWT backends (abt, qth, mth), mirroring the GLT API of Castelló et al.
//
// The PM (paper §III-B, Fig. 1):
//  * GLT_thread  — an OS thread bound to a core; fixed set created at init.
//  * GLT_ult     — user-level thread; create/join/yield; may carry any work.
//  * GLT_tasklet — stackless work unit; native on abt, emulated over ULTs
//                  on qth and mth (exactly as in the original GLT).
//  * GLT_scheduler — backend-specific; selecting a backend changes
//                  performance, never results.
//
// A program written against this header runs unmodified over Argobots-,
// Qthreads-, or MassiveThreads-style scheduling; the backend is chosen at
// init() (programmatically or via $GLT_IMPL). All three backends dispatch
// through the shared work-stealing core (src/sched), so $GLT_SHARED_QUEUES
// (collapse the per-thread pools into one shared queue, neutralizing load
// imbalance per §IV-F) and the per-backend $*_DISPATCH=locked ablation
// baseline are honoured uniformly.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "sched/metrics.hpp"
#include "sched/sync.hpp"

namespace glto::glt {

enum class Impl : std::uint8_t { abt, qth, mth };

[[nodiscard]] const char* impl_name(Impl impl);
[[nodiscard]] std::optional<Impl> impl_from_string(std::string_view name);

struct Config {
  Impl impl = Impl::abt;
  int num_threads = 0;        ///< GLT_threads; 0 → $GLT_NUM_THREADS or cores
  bool shared_queues = false; ///< $GLT_SHARED_QUEUES (all backends)
  bool bind_threads = true;
  bool pin_main = false;      ///< mth: never migrate main (GLTO §IV-G fix)
};

/// Reads Config from $GLT_IMPL, $GLT_NUM_THREADS, $GLT_SHARED_QUEUES.
[[nodiscard]] Config config_from_env();

void init(const Config& cfg = config_from_env());
void finalize();
[[nodiscard]] bool initialized();
[[nodiscard]] Impl current_impl();

[[nodiscard]] int num_threads();

/// Rank of the GLT_thread executing the caller. Under the mth and abt
/// backends this can change across suspension points (stealing).
[[nodiscard]] int thread_num();

struct Ult;
struct Tasklet;

using WorkFn = void (*)(void*);

/// Creates a ULT scheduled by the caller's GLT_thread (backend-dependent
/// placement; mth runs it immediately, work-first).
Ult* ult_create(WorkFn fn, void* arg);

/// Creates a ULT destined for GLT_thread @p tid. Placement is exact on
/// abt (the unit is pinned, never stolen) and qth; advisory on mth (the
/// thief decides).
Ult* ult_create_to(int tid, WorkFn fn, void* arg);

/// Creates @p n ULTs running fn(args[i]) through the backend's bulk-spawn
/// path: the whole batch is deposited into the scheduling core in one
/// call (one queue publication per victim GLT_thread, one targeted wake
/// per victim) instead of n create+wake round-trips. @p spread fans the
/// batch across GLT_threads — the single-producer fan-out pattern the
/// round-robin ult_create_to loop used to pay per-unit wakes for;
/// otherwise the batch stays with the caller and idle GLT_threads steal
/// it. On mth the units are *queued* (help-first) rather than run
/// work-first, and spread is advisory as always. Handles are written to
/// @p out[0..n).
void ult_create_bulk(WorkFn fn, void* const* args, int n, Ult** out,
                     bool spread);

/// Waits for the ULT and destroys it.
void ult_join(Ult* u);

/// Non-destructive completion poll: true once the ULT has finished
/// executing (ult_join must still be called to reclaim it). Maps to
/// abt::is_done / the qth return-word FEB / mth::is_done — the
/// per-handle probe for completion-order joins (conformance tests in
/// tests/test_glt.cpp; abl_glt_dispatch's burst-co cell uses the
/// aggregate counter form of the same idea).
[[nodiscard]] bool ult_is_done(Ult* u);

Tasklet* tasklet_create(WorkFn fn, void* arg);
Tasklet* tasklet_create_to(int tid, WorkFn fn, void* arg);
void tasklet_join(Tasklet* t);

/// Cooperative yield to the underlying scheduler.
void yield();

/// Racy probe: could the calling GLT_thread's scheduler run anything else
/// right now (own pool, main slot, steal victim)? Busy-wait loops pair it
/// with yield(): yield while work exists, release the core when it does
/// not — a spinning waiter on an oversubscribed host otherwise starves
/// the very producer it waits for.
[[nodiscard]] bool maybe_work();

/// Backend capability: is *placement advisory* — i.e. can a unit created
/// with ult_create_to still migrate? True only for mth — this is what
/// decides the paper's Table I omp_task_untied / omp_taskyield outcomes.
/// (abt and qth steal unpinned ult_create units internally for load
/// balance, but honour ult_create_to exactly, so they report false.)
[[nodiscard]] bool supports_stealing();

/// Backend capability: stackless tasklets without ULT emulation (abt).
[[nodiscard]] bool supports_native_tasklets();

/// Backend capability: does ult_create place the unit on the *caller's*
/// GLT_thread (abt/qth: own deque, stealable; mth: work-first, runs
/// inline)? False only for qth's locked ablation baseline, which
/// round-robin-scatters plain forks across shepherds with no stealing to
/// undo a bad placement — callers that need run-local placement
/// (dependency wake-ups) must use ult_create_to(thread_num()) there.
[[nodiscard]] bool local_spawn();

/// Per-work-unit user pointer ("ULT-local storage"): follows the current
/// ULT across yields, blocking joins, and (mth) steals. GLTO hangs its
/// per-task OpenMP execution context here.
[[nodiscard]] void* self_local();
void set_self_local(void* p);

/// Scheduler behaviour (Table III-style runs) lives in the shared
/// sched::StatsSnapshot base: every backend runs the same sched::WsCore,
/// so all base counters are populated for abt, qth, and mth alike (zero
/// under *_DISPATCH=locked / one thread), and glt::stats() copies the
/// whole block with one slice assignment instead of field by field.
struct Stats : sched::StatsSnapshot {
  std::uint64_t ults_created = 0;     ///< Table II "Created GLT_ults"
  std::uint64_t tasklets_created = 0;
};

[[nodiscard]] Stats stats();

// ---- GLT synchronization conformance layer -------------------------------
//
// The GLT spec's blocking objects (glt_mutex_*, glt_cond_*, glt_barrier_*)
// map onto the shared sched:: primitives — one implementation under every
// backend, waiters truly suspended. Exposed here under GLT-style names so
// raw-backend code (no omp:: facade) writes to the spec's vocabulary;
// glt::init registers the active backend's SuspendOps, which is what makes
// these block natively instead of micro-sleeping.
using mutex = sched::Mutex;         ///< glt_mutex: FIFO-handoff ULT mutex
using cond = sched::Condvar;        ///< glt_cond: condition variable
using barrier = sched::Barrier;     ///< glt_barrier: sense-reversing, blocking
using event = sched::Event;         ///< one-shot wait-queue event
using latch = sched::CompletionLatch;  ///< counts work down to zero
template <class T>
using channel = sched::Channel<T>;  ///< bounded MPMC descriptor channel

}  // namespace glto::glt
