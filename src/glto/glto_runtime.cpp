#include "glto/glto_runtime.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <vector>

#include "common/affinity.hpp"
#include "common/debug.hpp"
#include "common/env.hpp"
#include "common/spin.hpp"
#include "common/time.hpp"
#include "omp/task_support.hpp"
#include "sched/chaos.hpp"
#include "sched/freelist.hpp"
#include "sched/metrics.hpp"
#include "sched/sync.hpp"
#include "sched/trace.hpp"
#include "taskdep/taskdep.hpp"

namespace glto::rt {

namespace {

using omp::Schedule;

constexpr int kLoopRing = 8;  ///< concurrent nowait loop descriptors per team

/// One work-sharing loop instance shared by a team.
struct LoopDesc {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  std::int64_t chunk = 0;
  Schedule sched = Schedule::Static;
  std::atomic<std::int64_t> next{0};
  std::atomic<std::uint64_t> ready_seq{0};  ///< loop instance published
};

struct TaskCtx;

using omp::detail::DepPayload;
using omp::detail::ReadyGate;
using omp::detail::tg_cancelled;
using omp::detail::TgScope;

/// A parallel team: fixed membership, barrier, single/loop bookkeeping.
struct Team {
  int size = 1;
  int level = 0;
  Team* parent = nullptr;

  // Blocking team barrier: non-last arrivers park on the wait list (their
  // GLT_thread runs sibling ULTs meanwhile), the last arriver wakes the
  // flock through the core's targeted-wake path — no sleep quantum.
  sched::Barrier barrier;

  // single construct arbitration (see single_try()).
  std::atomic<std::uint64_t> single_claimed{0};

  // Work-sharing loop instances (ring buffer, nowait-tolerant).
  LoopDesc loops[kLoopRing];
  std::atomic<std::uint64_t> loops_inited{0};

  // Round-robin cursor for producer-pattern task dispatch (§IV-D).
  std::atomic<std::uint64_t> task_rr{0};
};

/// Execution context of an implicit or explicit OpenMP task. Lives on the
/// executing ULT's stack; reachable via glt::self_local(), so it follows
/// the ULT across suspensions and (mth) steals.
struct TaskCtx {
  Team* team = nullptr;
  int tid = 0;
  TaskCtx* parent = nullptr;
  /// Explicit-task context: thread_num() reports the *executing*
  /// GLT_thread live (it changes when a stealing backend migrates the
  /// task — what omp_get_thread_num requires and the untied validation
  /// tests observe).
  bool is_explicit_task = false;

  // Outstanding child-task ULT handles (creator-owned; see header note).
  common::SpinLock child_lock;
  std::vector<glt::Ult*> children;
  /// Dependent children the engine is still withholding: submitted, but
  /// their ULT not yet created. join/taskwait must wait these out too —
  /// the wake-up pushes the handle into `children` before decrementing.
  std::atomic<std::int64_t> deferred{0};
  /// Innermost active taskgroup of this task (nullptr outside groups).
  TgScope* group = nullptr;

  // Per-member construct counters.
  std::uint64_t single_seq = 0;
  std::uint64_t loop_seq = 0;

  // Active loop state.
  LoopDesc* loop = nullptr;
  std::int64_t static_k = 0;  ///< next static chunk index for this member

  // Producer-pattern detection for task dispatch.
  bool in_single = false;
  bool in_master = false;
};

/// Dependence-domain key: the address of the *creating* task's context.
/// Dependences match only among tasks submitted by the same context —
/// OpenMP's sibling scoping — so a child task naming its parent's dep
/// object creates no edge, which is exactly the cross-scope hazard
/// (child depends on parent's still-open node + in-body taskwait) that
/// used to deadlock. Address recycling across retired contexts is benign:
/// a retired occupant's nodes are completed, and edges against completed
/// predecessors are no-ops.
[[nodiscard]] std::uintptr_t dep_domain(const TaskCtx* c) {
  return reinterpret_cast<std::uintptr_t>(c);
}

/// Argument block for team-member ULT thunks. RegionBody is non-owning:
/// the forking caller's frame outlives the join.
struct MemberArg {
  Team* team;
  int tid;
  omp::RegionBody body;
};

// GLTO's waits no longer poll. Barriers, taskgroup ends, dep gates and
// critical sections block on the sched:: primitives (Barrier,
// CompletionLatch, Event, Mutex): the waiter ULT parks on an intrusive
// wait list and the signaller re-deposits it through the core's
// targeted-wake path. The one remaining polling wait is the
// deferred-child join (handles are published by the dependency engine —
// a foreign completion source with no wait queue) and the timed waits,
// both of which go through sched::wait / sched::wait_until.

class GltoRuntime;

/// Per-task record carrying the v2 descriptor through deferral and the
/// dependency engine (DepPayload rides the descriptor). Recycled through
/// a process-wide freelist — after warm-up, spawning a task with a small
/// trivially-copyable capture touches no allocator at all.
struct TaskArg : DepPayload {
  TaskArg() : DepPayload{Kind::spawn} {}
  Team* team = nullptr;
  omp::TaskDesc desc;
  GltoRuntime* rt = nullptr;
  TaskCtx* parent = nullptr;            ///< creator (outlives us: it joins)
  TgScope* group = nullptr;             ///< enclosing taskgroup, if any
  taskdep::TaskNode* node = nullptr;    ///< non-null for depend tasks
  std::uint64_t submit_ns = 0;          ///< latency profiling stamp (0 = off)
};

/// TaskArg recycling: per-OS-thread lists keyed by detail::record_rank()
/// (unique across runtime instances), locked shared slab beyond that.
sched::Freelist<TaskArg>& arg_pool() {
  static sched::Freelist<TaskArg> pool(omp::detail::kRecordPoolWorkers);
  return pool;
}

TaskArg* alloc_task_arg() {
  if (TaskArg* a = arg_pool().try_alloc(omp::detail::record_rank())) return a;
  return new TaskArg();
}

void free_task_arg(TaskArg* a) {
  a->team = nullptr;
  a->desc = omp::TaskDesc();  // already consumed by run(); stay empty
  a->rt = nullptr;
  a->parent = nullptr;
  a->group = nullptr;
  a->node = nullptr;
  a->submit_ns = 0;
  arg_pool().recycle(omp::detail::record_rank(), a);
}

class GltoRuntime final : public omp::Runtime {
 public:
  explicit GltoRuntime(const GltoOptions& opts) {
    default_threads_ = opts.num_threads > 0
                           ? opts.num_threads
                           : static_cast<int>(common::env_i64(
                                 "OMP_NUM_THREADS",
                                 common::hardware_concurrency()));
    nested_ = opts.nested;
    glt::Config gcfg;
    gcfg.impl = opts.impl;
    gcfg.num_threads = default_threads_;
    gcfg.shared_queues = opts.shared_queues;
    gcfg.bind_threads = opts.bind_threads;
    // §IV-G: under MassiveThreads the primary GLT_thread must keep the
    // master; GLTO disables main-context migration.
    gcfg.pin_main = opts.impl == glt::Impl::mth;
    glt::init(gcfg);
    ults_at_reset_ = glt::stats().ults_created;

    root_team_.size = 1;
    root_team_.level = 0;
    root_ctx_.team = &root_team_;
    root_ctx_.tid = 0;
    glt::set_self_local(&root_ctx_);
    // DAG ready-bursts (one completing tile releasing k dependents) are
    // bulk-spawned: one scheduler deposit + targeted wakes instead of k.
    dep_engine_.set_on_ready_batch(&GltoRuntime::on_deps_ready_batch);
  }

  ~GltoRuntime() override {
    glt::set_self_local(nullptr);
    glt::finalize();
  }

  [[nodiscard]] const char* name() const override { return name_.c_str(); }
  void set_name(std::string n) { name_ = std::move(n); }

  void parallel(int nthreads, omp::RegionBody body) override {
    TaskCtx* pctx = cur();
    int nth = nthreads > 0 ? nthreads : default_threads_;
    const int new_level = pctx->team->level + 1;
    if (!nested_ && new_level > 1) nth = 1;

    Team team;
    team.size = nth;
    team.level = new_level;
    team.parent = pctx->team;
    team.barrier.init(nth);

    // §IV-C / §IV-E: outer-level members go one-per-GLT_thread, pinned
    // (exact placement — the §IV-C contract the placement tests enforce);
    // nested members stay on the creating GLT_thread (no
    // oversubscription). Each pinned submit already costs exactly one
    // targeted wake under the new wake protocol, so the region fork needs
    // no bulk deposit — the batch path is for task bursts, where one
    // victim receives many units.
    const bool outer = new_level == 1;
    std::vector<MemberArg> args(static_cast<std::size_t>(nth));
    std::vector<glt::Ult*> ults;
    ults.reserve(static_cast<std::size_t>(nth > 0 ? nth - 1 : 0));
    const int glt_n = glt::num_threads();
    for (int i = 1; i < nth; ++i) {
      args[static_cast<std::size_t>(i)] = MemberArg{&team, i, body};
      glt::Ult* u =
          outer ? glt::ult_create_to(i % glt_n, member_thunk,
                                     &args[static_cast<std::size_t>(i)])
                : glt::ult_create(member_thunk,
                                  &args[static_cast<std::size_t>(i)]);
      ults.push_back(u);
    }

    // Master executes member 0 inline, then joins (implicit barrier).
    run_member(&team, 0, body, pctx);
    for (auto* u : ults) glt::ult_join(u);
  }

  int thread_num() override {
    TaskCtx* c = cur();
    if (c->is_explicit_task && c->team->size > 0) {
      return glt::thread_num() % c->team->size;
    }
    return c->tid;
  }
  int team_size() override { return cur()->team->size; }
  int level() override { return cur()->team->level; }

  void set_default_threads(int n) override {
    if (n > 0) default_threads_ = n;
  }
  int default_threads() override { return default_threads_; }

  void set_nested(bool enabled) override { nested_ = enabled; }
  bool nested() override { return nested_; }

  void loop_begin(std::int64_t lo, std::int64_t hi, Schedule sched,
                  std::int64_t chunk) override {
    TaskCtx* c = cur();
    Team* t = c->team;
    const std::uint64_t seq = c->loop_seq++;
    LoopDesc& d = t->loops[seq % kLoopRing];
    std::uint64_t expected = seq;
    if (t->loops_inited.compare_exchange_strong(expected, seq + 1,
                                                std::memory_order_acq_rel)) {
      d.lo = lo;
      d.hi = hi;
      d.sched = sched;
      d.chunk = chunk;
      d.next.store(lo, std::memory_order_relaxed);
      d.ready_seq.store(seq + 1, std::memory_order_release);
    } else {
      while (d.ready_seq.load(std::memory_order_acquire) < seq + 1) {
        glt::yield();
      }
    }
    c->loop = &d;
    c->static_k = 0;
  }

  bool loop_next(std::int64_t* lo, std::int64_t* hi) override {
    TaskCtx* c = cur();
    LoopDesc* d = c->loop;
    GLTO_CHECK_MSG(d != nullptr, "loop_next outside a loop construct");
    const std::int64_t n = d->hi - d->lo;
    if (n <= 0) return false;
    const int p = c->team->size;
    switch (d->sched) {
      case Schedule::Auto:
      case Schedule::Runtime:  // resolved by the facade; fall back safely
      case Schedule::Static: {
        if (d->chunk <= 0) {
          // One balanced block per member.
          if (c->static_k > 0) return false;
          const std::int64_t base = n / p, rem = n % p;
          const std::int64_t b =
              d->lo + c->tid * base + std::min<std::int64_t>(c->tid, rem);
          const std::int64_t e = b + base + (c->tid < rem ? 1 : 0);
          if (b >= e) return false;
          *lo = b;
          *hi = e;
          c->static_k = 1;
          return true;
        }
        // Round-robin chunks: tid, tid+p, tid+2p, ...
        const std::int64_t idx = c->tid + c->static_k * p;
        const std::int64_t b = d->lo + idx * d->chunk;
        if (b >= d->hi) return false;
        *lo = b;
        *hi = std::min(d->hi, b + d->chunk);
        c->static_k++;
        return true;
      }
      case Schedule::Dynamic: {
        const std::int64_t step = d->chunk > 0 ? d->chunk : 1;
        const std::int64_t b =
            d->next.fetch_add(step, std::memory_order_relaxed);
        if (b >= d->hi) return false;
        *lo = b;
        *hi = std::min(d->hi, b + step);
        return true;
      }
      case Schedule::Guided: {
        const std::int64_t min_chunk = d->chunk > 0 ? d->chunk : 1;
        std::int64_t b = d->next.load(std::memory_order_relaxed);
        for (;;) {
          if (b >= d->hi) return false;
          const std::int64_t remaining = d->hi - b;
          const std::int64_t take =
              std::max<std::int64_t>(min_chunk, remaining / (2 * p));
          if (d->next.compare_exchange_weak(b, b + take,
                                            std::memory_order_relaxed)) {
            *lo = b;
            *hi = std::min(d->hi, b + take);
            return true;
          }
        }
      }
    }
    return false;
  }

  void loop_end() override { cur()->loop = nullptr; }

  void barrier() override { barrier_wait(cur()->team); }

  bool single_try() override {
    TaskCtx* c = cur();
    const std::uint64_t mine = ++c->single_seq;
    std::uint64_t expected = mine - 1;
    if (c->team->single_claimed.compare_exchange_strong(
            expected, mine, std::memory_order_acq_rel)) {
      c->in_single = true;
      return true;
    }
    return false;
  }

  void single_done() override { cur()->in_single = false; }

  void critical_enter(const void* tag) override {
    sched::Mutex* lock;
    {
      common::SpinGuard g(critical_map_lock_);
      lock = &critical_locks_[tag];
    }
    // Contended entry suspends the ULT; unlock hands the mutex FIFO to
    // the oldest waiter (no barging past a parked member).
    lock->lock();
  }

  void critical_exit(const void* tag) override {
    sched::Mutex* lock;
    {
      common::SpinGuard g(critical_map_lock_);
      lock = &critical_locks_[tag];
    }
    lock->unlock();
  }

  void task(omp::TaskDesc desc, const omp::TaskFlags& flags) override {
    TaskCtx* c = cur();
    const bool has_deps = !flags.depend.empty();
    if (!flags.if_clause || flags.final) {
      // Undeferred: run inline in a child context. GLTO executes `final`
      // tasks directly — the behaviour the validation suite rewards
      // (Table I) and the pthread baselines lack. Depend clauses still
      // order it: wait (yielding) until the engine opens the gate.
      tasks_immediate_.fetch_add(1, std::memory_order_relaxed);
      taskdep::TaskNode* node = nullptr;
      if (has_deps) {
        ReadyGate gate;
        auto sub = dep_engine_.submit(&gate, flags.depend.data(),
                                      flags.depend.size(), dep_domain(c));
        node = sub.node;
        // Blocks for real: the completing predecessor's thread sets the
        // event and re-deposits this ULT through the core.
        if (!sub.ready) gate.ready.wait();
      }
      TaskCtx inline_ctx;
      inline_ctx.team = c->team;
      inline_ctx.tid = c->tid;
      inline_ctx.parent = c;
      inline_ctx.group = c->group;
      inline_ctx.is_explicit_task = true;
      glt::set_self_local(&inline_ctx);
      // Cancellation: a member of a cancelled taskgroup skips its body
      // but keeps the full completion protocol (dep release, child join).
      if (!tg_cancelled(c->group)) desc.run();
      // Release at task completion, before the child join — same rule as
      // task_thunk: a child depending on this task's own dep object must
      // be releasable here or the join would spin on it forever.
      if (node != nullptr) dep_engine_.complete(node);
      join_children(&inline_ctx);
      glt::set_self_local(c);
      return;
    }
    tasks_queued_.fetch_add(1, std::memory_order_relaxed);
    TaskArg* arg = alloc_task_arg();
    arg->team = c->team;
    arg->desc = std::move(desc);
    arg->rt = this;
    arg->parent = c;
    arg->group = c->group;
    arg->submit_ns =
        sched::profile_task_submit(reinterpret_cast<std::uintptr_t>(arg));
    if (arg->group != nullptr) arg->group->latch.add(1);
    if (has_deps) {
      // The ULT is NOT created yet: the engine withholds the task until
      // its release counter hits zero, then the completing predecessor's
      // thread spawns it straight onto its own work-stealing deque.
      c->deferred.fetch_add(1, std::memory_order_relaxed);
      auto sub = dep_engine_.submit(arg, flags.depend.data(),
                                    flags.depend.size(), dep_domain(c));
      if (!sub.ready) return;  // wake-up owns arg from submit() onward
      arg->node = sub.node;
      spawn_dep_task(arg, c->in_single || c->in_master
                              ? SpawnVia::producer_rr
                              : SpawnVia::backend);
      return;
    }
    if (sched::chaos_spawn_fail()) {
      // Injected ULT-creation failure: degrade to inline execution. The
      // thunk runs the full completion protocol on the caller's context;
      // no handle to join, so nothing is pushed to children.
      run_task_inline_now(arg);
      return;
    }
    glt::Ult* u;
    if (c->in_single || c->in_master) {
      // Producer pattern (§IV-D): one context creates all tasks; dispatch
      // round-robin so every GLT_thread consumes.
      const auto target = c->team->task_rr.fetch_add(
          1, std::memory_order_relaxed);
      u = glt::ult_create_to(
          static_cast<int>(target %
                           static_cast<std::uint64_t>(glt::num_threads())),
          task_thunk, arg);
    } else {
      u = glt::ult_create(task_thunk, arg);
    }
    common::SpinGuard g(c->child_lock);
    c->children.push_back(u);
  }

  /// Batch spawn: the whole burst becomes ULTs deposited into the GLT
  /// scheduler in one bulk call — a producer (single/master) burst fans
  /// out with one queue publication + one targeted wake per GLT_thread
  /// instead of n round-robin submits each broadcasting wakes. Depend,
  /// final and if(false) tasks keep their per-task semantics via task().
  void task_bulk(omp::TaskDesc* descs, std::size_t n,
                 const omp::TaskFlags& flags) override {
    const bool has_deps = !flags.depend.empty();
    if (n < 2 || !flags.if_clause || flags.final || has_deps ||
        sched::chaos_enabled()) {
      // Under chaos the burst degrades to per-task spawns so every unit
      // passes the spawn-fail hook individually.
      for (std::size_t i = 0; i < n; ++i) task(std::move(descs[i]), flags);
      return;
    }
    TaskCtx* c = cur();
    tasks_queued_.fetch_add(n, std::memory_order_relaxed);
    const bool spread = c->in_single || c->in_master;
    constexpr std::size_t kWave = 256;
    void* argv[kWave];
    glt::Ult* handles[kWave];
    std::size_t done = 0;
    while (done < n) {
      const std::size_t take = std::min<std::size_t>(kWave, n - done);
      for (std::size_t i = 0; i < take; ++i) {
        TaskArg* arg = alloc_task_arg();
        arg->team = c->team;
        arg->desc = std::move(descs[done + i]);
        arg->rt = this;
        arg->parent = c;
        arg->group = c->group;
        if (arg->group != nullptr) arg->group->latch.add(1);
        arg->submit_ns = sched::profile_task_submit(
            reinterpret_cast<std::uintptr_t>(arg));
        argv[i] = arg;
      }
      glt::ult_create_bulk(task_thunk, argv, static_cast<int>(take),
                           handles, spread);
      {
        common::SpinGuard g(c->child_lock);
        c->children.insert(c->children.end(), handles, handles + take);
      }
      done += take;
    }
  }

  void taskwait() override { join_children(cur()); }

  void taskgroup_begin() override {
    TaskCtx* c = cur();
    auto* g = new TgScope();
    g->parent = c->group;
    c->group = g;
  }

  void taskgroup_end() override {
    TaskCtx* c = cur();
    TgScope* g = c->group;
    GLTO_CHECK_MSG(g != nullptr, "taskgroup_end without taskgroup_begin");
    // Wait only for this group's tasks; their ULT handles stay in
    // c->children and are joined (already Done) at the next taskwait or
    // the implicit region join. Blocks outright: the last finishing
    // member's count_down wakes this ULT, and the latch's locked
    // zero-observation protocol makes the delete safe immediately after.
    g->latch.wait();
    c->group = g->parent;
    delete g;
  }

  bool taskgroup_end_for_us(std::int64_t timeout_us) override {
    TaskCtx* c = cur();
    TgScope* g = c->group;
    GLTO_CHECK_MSG(g != nullptr, "taskgroup_end without taskgroup_begin");
    // Timed waits poll (there is no timed park on the latch); on timeout
    // the group stays active/open — the caller cancels + drains it.
    if (!sched::wait_until([g] { return g->latch.try_wait(); },
                           common::now_ns() + timeout_us * 1000)) {
      return false;
    }
    c->group = g->parent;
    delete g;
    return true;
  }

  bool cancel_taskgroup() override {
    TgScope* g = cur()->group;
    if (g == nullptr) return false;
    g->cancelled.store(true, std::memory_order_release);
    sched::trace_emit(sched::TraceKind::cancel,
                      reinterpret_cast<std::uintptr_t>(g));
    return true;
  }

  bool cancellation_requested() override {
    return tg_cancelled(cur()->group);
  }

  bool taskwait_for_us(std::int64_t timeout_us) override {
    return join_children_until(cur(), /*timed=*/true,
                               common::now_ns() + timeout_us * 1000);
  }

  omp::TaskStats task_stats() override {
    omp::TaskStats s;
    static_cast<taskdep::Stats&>(s) = dep_engine_.stats();
    return s;
  }

  void taskyield() override { glt::yield(); }

  void yield_hint() override { glt::yield(); }

  const void* task_identity() override { return cur(); }

  omp::Counters counters() override {
    omp::Counters out;
    out.os_threads_created =
        static_cast<std::uint64_t>(glt::num_threads());
    out.ults_created = glt::stats().ults_created - ults_at_reset_;
    out.tasks_queued = tasks_queued_.load(std::memory_order_relaxed);
    out.tasks_immediate = tasks_immediate_.load(std::memory_order_relaxed);
    return out;
  }

  void reset_counters() override {
    ults_at_reset_ = glt::stats().ults_created;
    tasks_queued_.store(0, std::memory_order_relaxed);
    tasks_immediate_.store(0, std::memory_order_relaxed);
  }

 private:
  static TaskCtx* cur() {
    auto* c = static_cast<TaskCtx*>(glt::self_local());
    GLTO_CHECK_MSG(c != nullptr, "GLTO context missing on this ULT");
    return c;
  }

  static void run_member(Team* team, int tid, const omp::RegionBody& body,
                         TaskCtx* parent) {
    TaskCtx ctx;
    ctx.team = team;
    ctx.tid = tid;
    ctx.parent = parent;
    ctx.in_master = tid == 0;  // master thread: producer dispatch applies
    glt::set_self_local(&ctx);
    body(tid, team->size);
    join_children(&ctx);  // implicit-barrier task completion
    glt::set_self_local(parent);
  }

  static void member_thunk(void* p) {
    auto* a = static_cast<MemberArg*>(p);
    TaskCtx ctx;
    ctx.team = a->team;
    ctx.tid = a->tid;
    glt::set_self_local(&ctx);
    a->body(a->tid, a->team->size);
    join_children(&ctx);
  }

  static void task_thunk(void* p) {
    auto* a = static_cast<TaskArg*>(p);
    TaskCtx ctx;
    ctx.team = a->team;
    // Executing "thread" id: the GLT_thread this task landed on, mapped
    // into the team (documented deviation: tasks are not bound to one
    // implicit-task member in GLTO).
    ctx.tid = a->team->size > 0
                  ? glt::thread_num() % a->team->size
                  : 0;
    ctx.is_explicit_task = true;
    ctx.parent = a->parent;
    // Taskgroup membership is inherited: tasks this body creates belong to
    // the creator's group (they bump pending before our join, and we join
    // them before our own decrement, so pending cannot hit zero early).
    ctx.group = a->group;
    glt::set_self_local(&ctx);
    // Cancellation: a member of a cancelled taskgroup skips its body but
    // keeps the full completion protocol below, so joins, dep gates, and
    // pending-waits always terminate.
    const std::uint64_t t_start = sched::profile_task_start(
        a->submit_ns, reinterpret_cast<std::uintptr_t>(a));
    if (!tg_cancelled(a->group)) a->desc.run();
    sched::profile_task_complete(t_start,
                                 reinterpret_cast<std::uintptr_t>(a));
    // Dependences release at *task* completion (OpenMP's rule), before the
    // transitive child join: children submit into their own dependence
    // domain (keyed by this ctx) so they can never gate on this node, and
    // a sibling legitimately depending on it must be releasable here
    // (joining first would withhold that sibling forever).
    if (a->node != nullptr) a->rt->dep_engine_.complete(a->node);
    join_children(&ctx);
    if (a->group != nullptr) a->group->latch.count_down();
    free_task_arg(a);
  }

  /// Chaos degrade path: runs a fully-initialised TaskArg inline on the
  /// calling context, as if ULT creation had failed. task_thunk installs
  /// the child context but never restores the caller's (a real ULT just
  /// dies with its stack), so save/restore it here.
  static void run_task_inline_now(TaskArg* a) {
    void* saved = glt::self_local();
    task_thunk(a);
    glt::set_self_local(saved);
  }

  /// How a ready depend task's ULT is placed.
  enum class SpawnVia {
    backend,      ///< submit-time ready, worker context: backend default
    producer_rr,  ///< submit-time ready, single/master producer: fan out
    run_local,    ///< dependency wake-up: the completing thread's queue
  };

  /// Creates the ULT of a depend task whose release counter reached zero
  /// (at submit, or via the engine's wake-up on the thread that completed
  /// the final predecessor — landing the task on that thread's own
  /// work-stealing deque). Pushes the handle before decrementing
  /// `deferred` so join_children cannot miss it.
  void spawn_dep_task(TaskArg* arg, SpawnVia via) {
    // Everything needed after the create goes to locals FIRST: work-first
    // backends (mth) run the task to completion inside ult_create, and
    // task_thunk deletes arg when it finishes.
    TaskCtx* parent = arg->parent;
    if (sched::chaos_spawn_fail()) {
      // Injected ULT-creation failure on the dependency release path: the
      // task runs inline on the releasing thread. No handle to publish;
      // the decrement comes after full completion, so a join that reads
      // deferred==0 has nothing left to wait for.
      run_task_inline_now(arg);
      parent->deferred.fetch_sub(1, std::memory_order_release);
      return;
    }
    Team* team = arg->team;
    glt::Ult* u;
    if (via == SpawnVia::producer_rr) {
      const auto target =
          team->task_rr.fetch_add(1, std::memory_order_relaxed);
      u = glt::ult_create_to(
          static_cast<int>(target %
                           static_cast<std::uint64_t>(glt::num_threads())),
          task_thunk, arg);
    } else if (via == SpawnVia::run_local && !glt::local_spawn()) {
      // qth round-robin-scatters plain forks and has no stealing to pull
      // the task back, so every wake-up would bounce the dep chain to an
      // idle shepherd and cost an OS reschedule per link under
      // oversubscription. Pin it to the completing thread instead.
      u = glt::ult_create_to(glt::thread_num(), task_thunk, arg);
    } else {
      u = glt::ult_create(task_thunk, arg);
    }
    {
      common::SpinGuard g(parent->child_lock);
      parent->children.push_back(u);
    }
    parent->deferred.fetch_sub(1, std::memory_order_release);
  }

  /// Dependency-engine wake-up: runs on the thread that completed the
  /// final predecessor, always inside a GLT context.
  static void on_dep_ready(void* payload, taskdep::TaskNode* node) {
    auto* pl = static_cast<DepPayload*>(payload);
    if (pl->kind == DepPayload::Kind::gate) {
      static_cast<ReadyGate*>(pl)->ready.set();
      return;
    }
    auto* arg = static_cast<TaskArg*>(pl);
    arg->node = node;
    arg->rt->spawn_dep_task(arg, SpawnVia::run_local);
  }

  /// Batch wake-up: one completing predecessor released @p n successors
  /// at once. Gates open immediately; the spawn-kind payloads become one
  /// bulk deposit onto the completing thread's own deque (run-local, like
  /// the single wake-up) with targeted wakes — k dependents no longer
  /// serialize on k submit+wake round-trips.
  static void on_deps_ready_batch(void* const* payloads,
                                  taskdep::TaskNode* const* nodes,
                                  std::size_t n) {
    constexpr std::size_t kWave = 64;
    TaskArg* wave[kWave];
    TaskCtx* parents[kWave];
    void* argv[kWave];
    glt::Ult* handles[kWave];
    std::size_t pending = 0;
    for (std::size_t i = 0; i <= n; ++i) {
      if (i < n) {
        auto* pl = static_cast<DepPayload*>(payloads[i]);
        if (pl->kind == DepPayload::Kind::gate) {
          static_cast<ReadyGate*>(pl)->ready.set();
          continue;
        }
        auto* arg = static_cast<TaskArg*>(pl);
        arg->node = nodes[i];
        wave[pending++] = arg;
        if (pending < kWave) continue;
      }
      if (pending == 0) continue;
      if (pending == 1 || !glt::local_spawn() || sched::chaos_enabled()) {
        // qth-locked keeps the per-task pinned wake-up (see spawn_dep_task);
        // under chaos every wake-up goes per-task so each one passes the
        // spawn-fail hook.
        for (std::size_t k = 0; k < pending; ++k) {
          wave[k]->rt->spawn_dep_task(wave[k], SpawnVia::run_local);
        }
        pending = 0;
        continue;
      }
      // Snapshot creator pointers BEFORE the create: a deposited task can
      // run to completion (and free its arg) on another thread while this
      // loop is still publishing handles.
      for (std::size_t k = 0; k < pending; ++k) {
        parents[k] = wave[k]->parent;
        argv[k] = wave[k];
      }
      glt::ult_create_bulk(task_thunk, argv, static_cast<int>(pending),
                           handles, /*spread=*/false);
      for (std::size_t k = 0; k < pending; ++k) {
        {
          common::SpinGuard g(parents[k]->child_lock);
          parents[k]->children.push_back(handles[k]);
        }
        parents[k]->deferred.fetch_sub(1, std::memory_order_release);
      }
      pending = 0;
    }
  }

  static void join_children(TaskCtx* c) {
    (void)join_children_until(c, /*timed=*/false, {});
  }

  /// Child join, optionally bounded by @p deadline_ns. Untimed mode joins
  /// everything (blocking on in-flight children — ult_join suspends
  /// natively in the backend). Timed mode only reaps children that have
  /// already finished (glt::ult_is_done) — a blocking ult_join could
  /// overshoot the budget by the child's whole runtime — and returns
  /// false at the deadline; unfinished children go back into c->children
  /// and are joined by the next untimed wait, so a timed-out join leaves
  /// the task tree fully consistent.
  ///
  /// This is the one remaining polling wait in GLTO: while `deferred`
  /// children are withheld by the dependency engine there is no handle to
  /// join and no wait queue to park on — the WaitEngine steps let the
  /// predecessors run, then escalate to bounded parks.
  static bool join_children_until(TaskCtx* c, bool timed,
                                  std::int64_t deadline_ns) {
    sched::WaitEngine wait;
    for (;;) {
      std::vector<glt::Ult*> grabbed;
      {
        common::SpinGuard g(c->child_lock);
        grabbed.swap(c->children);
      }
      if (!grabbed.empty()) {
        bool progressed = false;
        if (!timed) {
          for (auto* u : grabbed) glt::ult_join(u);
          progressed = true;
        } else {
          std::vector<glt::Ult*> keep;
          for (auto* u : grabbed) {
            if (glt::ult_is_done(u)) {
              glt::ult_join(u);  // already Done: reclaim, never blocks long
              progressed = true;
            } else {
              keep.push_back(u);
            }
          }
          if (!keep.empty()) {
            common::SpinGuard g(c->child_lock);
            c->children.insert(c->children.end(), keep.begin(), keep.end());
          }
        }
        if (progressed) continue;
      } else if (c->deferred.load(std::memory_order_acquire) == 0) {
        // A wake-up pushes the child handle *before* decrementing
        // `deferred`, so after reading zero one locked re-check suffices.
        common::SpinGuard g(c->child_lock);
        if (c->children.empty()) return true;
        continue;
      }
      if (timed) {
        if (common::now_ns() >= deadline_ns) return false;
        wait.step_until(deadline_ns);
      } else {
        wait.step();  // withheld children exist; let predecessors run
      }
    }
  }

  static void barrier_wait(Team* t) {
    if (t->size <= 1) return;
    t->barrier.arrive_and_wait();
  }

  std::string name_ = "glto";
  int default_threads_ = 1;
  bool nested_ = true;
  Team root_team_;
  TaskCtx root_ctx_;
  std::uint64_t ults_at_reset_ = 0;
  std::atomic<std::uint64_t> tasks_queued_{0};
  std::atomic<std::uint64_t> tasks_immediate_{0};
  taskdep::DepEngine dep_engine_{&GltoRuntime::on_dep_ready};

  common::SpinLock critical_map_lock_;
  std::map<const void*, sched::Mutex> critical_locks_;
};

}  // namespace

std::unique_ptr<omp::Runtime> make_glto_runtime(const GltoOptions& opts) {
  auto rt = std::make_unique<GltoRuntime>(opts);
  rt->set_name(std::string("glto-") + glt::impl_name(opts.impl));
  return rt;
}

}  // namespace glto::rt
