// Narrowly-scoped ThreadSanitizer happens-before annotations.
//
// Doctrine (docs/API.md "Sanitizers & static analysis"):
//
//  * A TSan report is first assumed to be a REAL race and fixed in the
//    code — usually by strengthening a memory order on the publication
//    side (e.g. the Chase–Lev bottom store) so the happens-before edge
//    exists for every observer, TSan included.
//  * Only when a racy access is intentional and provably benign, and the
//    real synchronization runs through a channel TSan cannot see (an asm
//    fence, a hardware-ordering argument), may the edge be modeled here
//    with tsan_release()/tsan_acquire() — and EVERY call site must carry a
//    comment naming the exact happens-before edge it models.
//  * Suppression files are never the answer: scripts/tsan.supp is checked
//    empty by scripts/san_ctest.sh.
//
// The wrappers compile to nothing outside -fsanitize=thread builds, so
// annotated code carries zero release-build cost.
#pragma once

#if defined(__SANITIZE_THREAD__)
#define GLTO_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define GLTO_TSAN 1
#endif
#endif

#if defined(GLTO_TSAN)
extern "C" {
void __tsan_acquire(void* addr);
void __tsan_release(void* addr);
}
#endif

namespace glto {

/// Models the acquire side of a happens-before edge on @p addr that the
/// code establishes through means TSan cannot observe. Pair with a
/// tsan_release() on the publishing side; comment the edge at both sites.
inline void tsan_acquire(const void* addr) {
#if defined(GLTO_TSAN)
  __tsan_acquire(const_cast<void*>(addr));
#else
  (void)addr;
#endif
}

/// Release side of tsan_acquire(); see that function.
inline void tsan_release(const void* addr) {
#if defined(GLTO_TSAN)
  __tsan_release(const_cast<void*>(addr));
#else
  (void)addr;
#endif
}

}  // namespace glto
