// GLTO — the OpenMP runtime over GLT (the paper's core contribution, §IV).
//
// Design decisions mirrored from the paper:
//  * One GLT_thread per requested OpenMP thread, created at init and bound
//    to cores (§IV-B). Teams never create OS threads.
//  * Work-sharing regions (§IV-C): the master creates one GLT_ult per
//    non-master team member, dispatched to GLT_thread i, runs member 0's
//    share inline, then joins — mimicking the Intel/GNU fork-join shape.
//  * Tasks (§IV-D): every `task` becomes a GLT_ult. When the creating
//    context sits inside a single/master region (the producer pattern),
//    tasks are dispatched **round-robin** across all GLT_threads;
//    otherwise each GLT_thread keeps its own tasks.
//  * Nested parallelism (§IV-E): inner teams create their ULTs on the
//    *current* GLT_thread — never new OS threads — so nesting cannot
//    oversubscribe cores.
//  * Load imbalance (§IV-F): GLT_SHARED_QUEUES collapses the per-thread
//    pools into one shared queue (abt backend).
//  * MassiveThreads (§IV-G): the main/master context must stay the primary
//    GLT_thread, so the mth backend is initialized with pin_main and the
//    master never yields across a steal boundary.
//
//  * Task dependences (`depend` clauses) run through the taskdep engine
//    (src/taskdep): a task with unmet predecessors defers ULT creation
//    until its release counter hits zero; the completing predecessor's
//    thread then spawns it onto its own work-stealing deque.
//
// Deviation noted for reviewers: a task implicitly waits for its child
// tasks when it finishes (transitive join). OpenMP lets children outlive
// parents until the next barrier; the transitive join gives the same
// region-barrier guarantee with creator-owned ULT handles and does not
// change any pattern the paper measures. taskgroup is group-scoped: it
// waits only for tasks created inside the group (plus their descendants,
// transitively) — never for siblings created before it, even inside a
// depend task.
#pragma once

#include <memory>

#include "glt/glt.hpp"
#include "omp/runtime.hpp"

namespace glto::rt {

struct GltoOptions {
  glt::Impl impl = glt::Impl::abt;
  int num_threads = 0;         ///< GLT_threads; 0 → $OMP_NUM_THREADS / cores
  bool nested = true;
  bool bind_threads = true;
  bool shared_queues = false;  ///< GLT_SHARED_QUEUES
};

/// Creates a GLTO runtime. Initializes GLT (and the chosen backend); the
/// returned runtime owns that initialization and tears it down on destroy.
std::unique_ptr<omp::Runtime> make_glto_runtime(const GltoOptions& opts);

}  // namespace glto::rt
