#include "pomp/pomp_runtime.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include "common/affinity.hpp"
#include "common/cacheline.hpp"
#include "common/debug.hpp"
#include "common/env.hpp"
#include "common/rng.hpp"
#include "common/spin.hpp"
#include "omp/task_support.hpp"
#include "sched/chaos.hpp"
#include "sched/freelist.hpp"
#include "sched/locked_queue.hpp"
#include "sched/metrics.hpp"
#include "sched/trace.hpp"
#include "sched/watchdog.hpp"
#include "taskdep/taskdep.hpp"

namespace glto::pomp {

namespace {

using omp::Schedule;

constexpr int kLoopRing = 8;

struct LoopDesc {
  std::int64_t lo = 0, hi = 0, chunk = 0;
  Schedule sched = Schedule::Static;
  std::atomic<std::int64_t> next{0};
  std::atomic<std::uint64_t> ready_seq{0};
};

struct TaskCtx;
class PompRuntime;

using omp::detail::DepPayload;
using omp::detail::ReadyGate;
using omp::detail::tg_cancelled;
using omp::detail::TgScope;

/// Dependence-domain key: the creating task's context address (same rule
/// as GLTO — dependences scope per creating task, so a child naming its
/// parent's dep object never gates on the parent's open node).
[[nodiscard]] std::uintptr_t dep_domain(const TaskCtx* c) {
  return reinterpret_cast<std::uintptr_t>(c);
}

/// RAII watchdog bracket for pomp's helping wait loops (the pthread
/// analog of GLTO's WaitBackoff registration).
struct WatchdogWaitScope {
  WatchdogWaitScope() { sched::watchdog_enter_wait(); }
  ~WatchdogWaitScope() { sched::watchdog_exit_wait(); }
  WatchdogWaitScope(const WatchdogWaitScope&) = delete;
  WatchdogWaitScope& operator=(const WatchdogWaitScope&) = delete;
};

/// A deferred explicit task: the v2 descriptor rides through the queues
/// and the dependency engine (DepPayload header). Records recycle through
/// a process-wide freelist keyed by detail::record_rank().
struct TaskRec : DepPayload {
  TaskRec() : DepPayload{Kind::spawn} {}
  omp::TaskDesc desc;
  TaskCtx* creator = nullptr;
  struct PompTeam* team = nullptr;
  bool untied = false;
  bool final = false;
  TgScope* group = nullptr;           ///< enclosing taskgroup, if any
  taskdep::TaskNode* node = nullptr;  ///< non-null for depend tasks
  std::uint64_t submit_ns = 0;        ///< latency profiling stamp (0 = off)
};

sched::Freelist<TaskRec>& rec_pool() {
  static sched::Freelist<TaskRec> pool(omp::detail::kRecordPoolWorkers);
  return pool;
}

TaskRec* alloc_task_rec() {
  if (TaskRec* r = rec_pool().try_alloc(omp::detail::record_rank())) return r;
  return new TaskRec();
}

void free_task_rec(TaskRec* r) {
  r->desc = omp::TaskDesc();  // consumed by run(); keep the slot empty
  r->creator = nullptr;
  r->team = nullptr;
  r->untied = false;
  r->final = false;
  r->group = nullptr;
  r->node = nullptr;
  r->submit_ns = 0;
  rec_pool().recycle(omp::detail::record_rank(), r);
}

struct PompTeam {
  int size = 1;
  int level = 0;
  PompTeam* parent = nullptr;
  PompRuntime* rt = nullptr;

  std::atomic<int> barrier_arrived{0};
  std::atomic<std::uint64_t> barrier_epoch{0};
  std::atomic<std::uint64_t> single_claimed{0};
  LoopDesc loops[kLoopRing];
  std::atomic<std::uint64_t> loops_inited{0};

  /// Deferred tasks belonging to this region, not yet finished.
  std::atomic<std::int64_t> tasks_outstanding{0};

  // GNU: one shared task queue for the whole team.
  sched::LockedQueue<TaskRec*> shared_queue;
  // Intel: bounded per-member deques (created on demand by the runtime).
  std::vector<std::unique_ptr<sched::BoundedDeque<TaskRec*>>> deques;
};

/// Execution context of an implicit or explicit task on a pthread.
/// pthread-based runtimes never migrate running tasks, so a plain
/// thread_local current pointer suffices.
struct TaskCtx {
  PompTeam* team = nullptr;
  int tid = 0;
  TaskCtx* parent = nullptr;
  std::atomic<std::int64_t> children_outstanding{0};
  std::uint64_t single_seq = 0;
  std::uint64_t loop_seq = 0;
  LoopDesc* loop = nullptr;
  std::int64_t static_k = 0;
  bool in_single = false;
  bool in_master = false;
  TgScope* group = nullptr;  ///< innermost active taskgroup of this task
};

thread_local TaskCtx* t_ctx = nullptr;

/// enqueue_ready's deque-full fallback state (see its comment).
thread_local bool t_in_ready_fallback = false;
thread_local std::vector<TaskRec*> t_ready_spill;

/// Work order handed to a pooled/spawned worker thread. RegionBody is
/// non-owning: the forking caller's frame outlives the region.
struct Assignment {
  PompTeam* team = nullptr;
  int tid = 0;
  omp::RegionBody body;
  std::atomic<int>* remaining = nullptr;  // members still running
};

/// A pooled worker pthread. Parks between assignments.
struct Worker {
  std::thread thread;
  std::mutex m;
  std::condition_variable cv;
  Assignment* assignment = nullptr;  // guarded by m
  bool die = false;                  // guarded by m
  int bind_rank = -1;
};

class PompRuntime : public omp::Runtime {
 public:
  explicit PompRuntime(const PompOptions& opts, bool reuse_nested_threads)
      : reuse_nested_(reuse_nested_threads) {
    default_threads_ =
        opts.num_threads > 0
            ? opts.num_threads
            : static_cast<int>(common::env_i64(
                  "OMP_NUM_THREADS", common::hardware_concurrency()));
    nested_ = opts.nested;
    bind_ = opts.bind_threads;
    active_wait_ = opts.active_wait;
    cutoff_ = opts.task_cutoff > 0 ? opts.task_cutoff : 256;

    root_team_.size = 1;
    root_team_.level = 0;
    root_team_.rt = this;
    root_ctx_.team = &root_team_;
    root_ctx_.tid = 0;
    t_ctx = &root_ctx_;
    {
      common::SpinGuard g(teams_lock_);
      live_teams_.push_back(&root_team_);
    }
    // Stall-dump coverage: without this, a watchdog expiry under a pomp
    // runtime reported only WsCore state (i.e. nothing) — register a
    // dumper so queue depths and in-flight counts make it into the dump.
    watchdog_token_ = sched::watchdog_register_dumper(dump_task_state, this);
  }

  ~PompRuntime() override {
    sched::watchdog_unregister_dumper(watchdog_token_);
    t_ctx = nullptr;
    // Retire every pooled worker.
    std::vector<std::unique_ptr<Worker>> all;
    {
      common::SpinGuard g(pool_lock_);
      all.swap(free_workers_);
    }
    for (auto& w : all) retire(std::move(w));
  }

  // ---- region management -------------------------------------------------

  void parallel(int nthreads, omp::RegionBody body) override {
    TaskCtx* pctx = t_ctx;
    int nth = nthreads > 0 ? nthreads : default_threads_;
    const int new_level = pctx->team->level + 1;
    if (!nested_ && new_level > 1) nth = 1;

    PompTeam team;
    team.size = nth;
    team.level = new_level;
    team.parent = pctx->team;
    team.rt = this;
    init_task_storage(team);
    {
      common::SpinGuard g(teams_lock_);
      live_teams_.push_back(&team);
    }

    std::atomic<int> remaining{nth - 1};
    std::vector<Assignment> assigns(static_cast<std::size_t>(nth));
    std::vector<std::unique_ptr<Worker>> engaged;
    const bool fresh_only = new_level > 1 && !reuse_nested_;
    for (int i = 1; i < nth; ++i) {
      auto& a = assigns[static_cast<std::size_t>(i)];
      a = Assignment{&team, i, body, &remaining};
      engaged.push_back(engage_worker(&a, fresh_only, i));
    }

    run_member(&team, 0, body, pctx);

    // Implicit barrier: wait for every member, helping with tasks.
    {
      WatchdogWaitScope wd;
      while (remaining.load(std::memory_order_acquire) > 0) {
        if (!try_run_one_task(&team)) wait_relax();
      }
      while (team.tasks_outstanding.load(std::memory_order_acquire) > 0) {
        if (!try_run_one_task(&team)) wait_relax();
      }
    }

    for (auto& w : engaged) {
      if (fresh_only) {
        retire(std::move(w));  // GNU nested: destroy, never reuse
      } else {
        common::SpinGuard g(pool_lock_);
        free_workers_.push_back(std::move(w));
      }
    }
    {
      // The team object dies with this frame; drop it from the dump set.
      common::SpinGuard g(teams_lock_);
      for (auto it = live_teams_.begin(); it != live_teams_.end(); ++it) {
        if (*it == &team) {
          live_teams_.erase(it);
          break;
        }
      }
    }
  }

  int thread_num() override { return t_ctx->tid; }
  int team_size() override { return t_ctx->team->size; }
  int level() override { return t_ctx->team->level; }

  void set_default_threads(int n) override {
    if (n > 0) default_threads_ = n;
  }
  int default_threads() override { return default_threads_; }
  void set_nested(bool enabled) override { nested_ = enabled; }
  bool nested() override { return nested_; }

  // ---- work-sharing loops (same arbitration as GLTO) ----------------------

  void loop_begin(std::int64_t lo, std::int64_t hi, Schedule sched,
                  std::int64_t chunk) override {
    TaskCtx* c = t_ctx;
    PompTeam* t = c->team;
    const std::uint64_t seq = c->loop_seq++;
    LoopDesc& d = t->loops[seq % kLoopRing];
    std::uint64_t expected = seq;
    if (t->loops_inited.compare_exchange_strong(expected, seq + 1,
                                                std::memory_order_acq_rel)) {
      d.lo = lo;
      d.hi = hi;
      d.sched = sched;
      d.chunk = chunk;
      d.next.store(lo, std::memory_order_relaxed);
      d.ready_seq.store(seq + 1, std::memory_order_release);
    } else {
      while (d.ready_seq.load(std::memory_order_acquire) < seq + 1) {
        wait_relax();
      }
    }
    c->loop = &d;
    c->static_k = 0;
  }

  bool loop_next(std::int64_t* lo, std::int64_t* hi) override {
    TaskCtx* c = t_ctx;
    LoopDesc* d = c->loop;
    GLTO_CHECK_MSG(d != nullptr, "loop_next outside a loop construct");
    const std::int64_t n = d->hi - d->lo;
    if (n <= 0) return false;
    const int p = c->team->size;
    switch (d->sched) {
      case Schedule::Auto:
      case Schedule::Runtime:  // resolved by the facade; fall back safely
      case Schedule::Static: {
        if (d->chunk <= 0) {
          if (c->static_k > 0) return false;
          const std::int64_t base = n / p, rem = n % p;
          const std::int64_t b =
              d->lo + c->tid * base + std::min<std::int64_t>(c->tid, rem);
          const std::int64_t e = b + base + (c->tid < rem ? 1 : 0);
          if (b >= e) return false;
          *lo = b;
          *hi = e;
          c->static_k = 1;
          return true;
        }
        const std::int64_t idx = c->tid + c->static_k * p;
        const std::int64_t b = d->lo + idx * d->chunk;
        if (b >= d->hi) return false;
        *lo = b;
        *hi = std::min(d->hi, b + d->chunk);
        c->static_k++;
        return true;
      }
      case Schedule::Dynamic: {
        const std::int64_t step = d->chunk > 0 ? d->chunk : 1;
        const std::int64_t b =
            d->next.fetch_add(step, std::memory_order_relaxed);
        if (b >= d->hi) return false;
        *lo = b;
        *hi = std::min(d->hi, b + step);
        return true;
      }
      case Schedule::Guided: {
        const std::int64_t min_chunk = d->chunk > 0 ? d->chunk : 1;
        std::int64_t b = d->next.load(std::memory_order_relaxed);
        for (;;) {
          if (b >= d->hi) return false;
          const std::int64_t remaining = d->hi - b;
          const std::int64_t take =
              std::max<std::int64_t>(min_chunk, remaining / (2 * p));
          if (d->next.compare_exchange_weak(b, b + take,
                                            std::memory_order_relaxed)) {
            *lo = b;
            *hi = std::min(d->hi, b + take);
            return true;
          }
        }
      }
    }
    return false;
  }

  void loop_end() override { t_ctx->loop = nullptr; }

  // ---- synchronization ----------------------------------------------------

  void barrier() override {
    PompTeam* t = t_ctx->team;
    if (t->size <= 1) return;
    WatchdogWaitScope wd;
    const std::uint64_t epoch =
        t->barrier_epoch.load(std::memory_order_acquire);
    if (t->barrier_arrived.fetch_add(1, std::memory_order_acq_rel) ==
        t->size - 1) {
      // Last arriver: drain this region's tasks, then release.
      while (t->tasks_outstanding.load(std::memory_order_acquire) > 0) {
        if (!try_run_one_task(t)) wait_relax();
      }
      t->barrier_arrived.store(0, std::memory_order_relaxed);
      t->barrier_epoch.fetch_add(1, std::memory_order_release);
    } else {
      // OpenMP threads execute queued tasks while waiting at barriers.
      while (t->barrier_epoch.load(std::memory_order_acquire) == epoch) {
        if (!try_run_one_task(t)) wait_relax();
      }
    }
  }

  bool single_try() override {
    TaskCtx* c = t_ctx;
    const std::uint64_t mine = ++c->single_seq;
    std::uint64_t expected = mine - 1;
    if (c->team->single_claimed.compare_exchange_strong(
            expected, mine, std::memory_order_acq_rel)) {
      c->in_single = true;
      return true;
    }
    return false;
  }

  void single_done() override { t_ctx->in_single = false; }

  void critical_enter(const void* tag) override {
    common::SpinLock* lock;
    {
      common::SpinGuard g(critical_map_lock_);
      lock = &critical_locks_[tag];
    }
    while (!lock->try_lock()) wait_relax();
  }

  void critical_exit(const void* tag) override {
    common::SpinGuard g(critical_map_lock_);
    critical_locks_[tag].unlock();
  }

  // ---- tasks ---------------------------------------------------------------

  void task(omp::TaskDesc desc, const omp::TaskFlags& flags) override {
    TaskCtx* c = t_ctx;
    const bool has_deps = !flags.depend.empty();
    if (!flags.if_clause) {
      if (has_deps) {
        // Undeferred with deps: help run tasks until the gate opens, then
        // execute inline (the pthread analog of GLTO's yielding gate).
        ReadyGate gate;
        auto sub = dep_engine_.submit(&gate, flags.depend.data(),
                                      flags.depend.size(), dep_domain(c));
        if (!sub.ready) {
          // is_set_locked, not is_set: the gate dies with this frame, so
          // the open observation must serialize past the setter's last
          // access to it (Event destruction protocol).
          while (!gate.ready.is_set_locked()) {
            if (!try_run_one_task(c->team)) wait_relax();
          }
        }
        run_inline(c, std::move(desc), sub.node);
        return;
      }
      run_inline(c, std::move(desc));
      return;
    }
    TaskRec* rec = alloc_task_rec();
    rec->desc = std::move(desc);
    rec->creator = c;
    rec->team = c->team;
    rec->untied = flags.untied;
    rec->final = flags.final;
    rec->group = c->group;
    if (rec->group != nullptr) {
      rec->group->latch.add(1);
    }
    rec->submit_ns =
        sched::profile_task_submit(reinterpret_cast<std::uintptr_t>(rec));
    c->children_outstanding.fetch_add(1, std::memory_order_relaxed);
    c->team->tasks_outstanding.fetch_add(1, std::memory_order_relaxed);
    if (has_deps) {
      auto sub = dep_engine_.submit(rec, flags.depend.data(),
                                    flags.depend.size(), dep_domain(c));
      // Unmet predecessors: the task is withheld from every queue (it is
      // already counted in children/tasks_outstanding, so taskwait and
      // barriers wait for it); the wake-up enqueues it natively and owns
      // rec — including the node field — from submit() onward.
      if (!sub.ready) return;
      rec->node = sub.node;
    }
    // Note: `final` tasks are enqueued like any other — neither baseline
    // short-circuits them (the Table I omp_task_final failure).
    if (!enqueue(c, rec)) {
      // Intel cut-off: deque full → execute immediately (undeferred).
      tasks_immediate_.fetch_add(1, std::memory_order_relaxed);
      execute(rec);
      return;
    }
    tasks_queued_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Batch spawn: builds the records up front, bumps the outstanding
  /// counters once per wave, and hands the whole set to the subclass's
  /// enqueue_bulk — the GNU runtime appends a burst under ONE shared-queue
  /// lock acquisition instead of n. Depend and if(false) tasks keep their
  /// per-task semantics via task().
  void task_bulk(omp::TaskDesc* descs, std::size_t n,
                 const omp::TaskFlags& flags) override {
    const bool has_deps = !flags.depend.empty();
    if (n < 2 || !flags.if_clause || has_deps) {
      for (std::size_t i = 0; i < n; ++i) task(std::move(descs[i]), flags);
      return;
    }
    TaskCtx* c = t_ctx;
    constexpr std::size_t kWave = 256;
    TaskRec* wave[kWave];
    std::size_t done = 0;
    while (done < n) {
      const std::size_t take = std::min<std::size_t>(kWave, n - done);
      for (std::size_t i = 0; i < take; ++i) {
        TaskRec* rec = alloc_task_rec();
        rec->desc = std::move(descs[done + i]);
        rec->creator = c;
        rec->team = c->team;
        rec->untied = flags.untied;
        rec->final = flags.final;
        rec->group = c->group;
        if (rec->group != nullptr) {
          rec->group->latch.add(1);
        }
        rec->submit_ns = sched::profile_task_submit(
            reinterpret_cast<std::uintptr_t>(rec));
        wave[i] = rec;
      }
      c->children_outstanding.fetch_add(static_cast<std::int64_t>(take),
                                        std::memory_order_relaxed);
      c->team->tasks_outstanding.fetch_add(static_cast<std::int64_t>(take),
                                           std::memory_order_relaxed);
      enqueue_bulk(c, wave, take);
      done += take;
    }
  }

  void taskwait() override {
    TaskCtx* c = t_ctx;
    WatchdogWaitScope wd;
    while (c->children_outstanding.load(std::memory_order_acquire) > 0) {
      if (!try_run_one_task(c->team)) wait_relax();
    }
  }

  bool taskwait_for_us(std::int64_t timeout_us) override {
    TaskCtx* c = t_ctx;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::microseconds(timeout_us);
    WatchdogWaitScope wd;
    while (c->children_outstanding.load(std::memory_order_acquire) > 0) {
      if (std::chrono::steady_clock::now() >= deadline) return false;
      // Unlike the untimed taskwait, a timed wait must NOT help-run
      // tasks: a helped body is unpreemptible, so one long child blows
      // the deadline unboundedly — and a child that polls a flag this
      // thread sets after the wait would deadlock against its own
      // waiter. Team members at barriers keep executing tasks; this
      // thread waits idly, bounded.
      wait_relax();
    }
    return true;
  }

  void taskgroup_begin() override {
    TaskCtx* c = t_ctx;
    auto* g = new TgScope();
    g->parent = c->group;
    c->group = g;
  }

  void taskgroup_end() override {
    TaskCtx* c = t_ctx;
    TgScope* g = c->group;
    GLTO_CHECK_MSG(g != nullptr, "taskgroup_end without taskgroup_begin");
    WatchdogWaitScope wd;
    while (!g->latch.try_wait()) {
      if (!try_run_one_task(c->team)) wait_relax();
    }
    c->group = g->parent;
    delete g;
  }

  bool taskgroup_end_for_us(std::int64_t timeout_us) override {
    TaskCtx* c = t_ctx;
    TgScope* g = c->group;
    GLTO_CHECK_MSG(g != nullptr, "taskgroup_end without taskgroup_begin");
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::microseconds(timeout_us);
    WatchdogWaitScope wd;
    while (!g->latch.try_wait()) {
      if (std::chrono::steady_clock::now() >= deadline) {
        return false;  // group stays active/open: caller cancels + drains
      }
      // No inline helping while the deadline is live (see taskwait_for_us:
      // a helped member polling its cancellation point would deadlock
      // against the thread that cancels it at expiry). The post-cancel
      // drain — the untimed taskgroup_end — helps as usual.
      wait_relax();
    }
    c->group = g->parent;
    delete g;
    return true;
  }

  bool cancel_taskgroup() override {
    TgScope* g = t_ctx->group;
    if (g == nullptr) return false;
    g->cancelled.store(true, std::memory_order_release);
    sched::trace_emit(sched::TraceKind::cancel,
                      reinterpret_cast<std::uintptr_t>(g));
    return true;
  }

  bool cancellation_requested() override {
    return tg_cancelled(t_ctx->group);
  }

  omp::TaskStats task_stats() override {
    omp::TaskStats s;
    static_cast<taskdep::Stats&>(s) = dep_engine_.stats();
    return s;
  }

  void taskyield() override {
    // Tied pthread tasks cannot migrate; the best a baseline can do is run
    // another queued task in place (GOMP/Intel behave the same way).
    try_run_one_task(t_ctx->team);
  }

  void yield_hint() override { wait_relax(); }

  const void* task_identity() override { return t_ctx; }

  // ---- counters -------------------------------------------------------------

  omp::Counters counters() override {
    omp::Counters out;
    out.os_threads_created =
        threads_created_.load(std::memory_order_relaxed);
    out.os_threads_reused = threads_reused_.load(std::memory_order_relaxed);
    out.tasks_queued = tasks_queued_.load(std::memory_order_relaxed);
    out.tasks_immediate = tasks_immediate_.load(std::memory_order_relaxed);
    out.task_steals = task_steals_.load(std::memory_order_relaxed);
    return out;
  }

  void reset_counters() override {
    threads_created_.store(0, std::memory_order_relaxed);
    threads_reused_.store(0, std::memory_order_relaxed);
    tasks_queued_.store(0, std::memory_order_relaxed);
    tasks_immediate_.store(0, std::memory_order_relaxed);
    task_steals_.store(0, std::memory_order_relaxed);
  }

 protected:
  /// Subclass policy: set up the team's task storage.
  virtual void init_task_storage(PompTeam& team) = 0;
  /// Subclass policy: enqueue a deferred task; false → cut-off (run now).
  /// @p c may be null (dependency wake-up from a thread outside the
  /// task's team); use rec->team for storage.
  virtual bool enqueue(TaskCtx* c, TaskRec* rec) = 0;
  /// Subclass policy: dequeue + execute one task; false when none found.
  virtual bool try_run_one_task(PompTeam* team) = 0;

  /// Subclass policy: enqueue a whole batch (records already counted in
  /// children/tasks_outstanding). Default loops enqueue() with the same
  /// cut-off fallback as task(); GNU overrides with a single-lock append.
  virtual void enqueue_bulk(TaskCtx* c, TaskRec** recs, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      if (enqueue(c, recs[i])) {
        tasks_queued_.fetch_add(1, std::memory_order_relaxed);
      } else {
        tasks_immediate_.fetch_add(1, std::memory_order_relaxed);
        execute(recs[i]);
      }
    }
  }

  void execute(TaskRec* rec) {
    TaskCtx ctx;
    ctx.team = rec->team;
    ctx.tid = t_ctx != nullptr && t_ctx->team == rec->team ? t_ctx->tid : 0;
    ctx.parent = rec->creator;
    ctx.group = rec->group;  // nested tasks inherit taskgroup membership
    TaskCtx* saved = t_ctx;
    t_ctx = &ctx;
    // Cancellation: a member of a cancelled taskgroup skips its body but
    // keeps the full completion protocol below, so waits always terminate.
    tasks_running_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t t_start = sched::profile_task_start(
        rec->submit_ns, reinterpret_cast<std::uintptr_t>(rec));
    if (!tg_cancelled(rec->group)) rec->desc.run();
    sched::profile_task_complete(t_start,
                                 reinterpret_cast<std::uintptr_t>(rec));
    tasks_running_.fetch_sub(1, std::memory_order_relaxed);
    sched::watchdog_note_progress();  // pomp's task turnover IS progress
    // Dependences release at *task* completion (OpenMP's rule), before the
    // child drain: a child depending on this task's own dep object must be
    // releasable here, or the drain below would spin on it forever. The
    // wake-up enqueues successors natively (executing inline on cut-off).
    if (rec->node != nullptr) dep_engine_.complete(rec->node);
    // A finished task must have no pending children of its own before its
    // parent's taskwait can be satisfied; drain them here.
    while (ctx.children_outstanding.load(std::memory_order_acquire) > 0) {
      if (!try_run_one_task(rec->team)) wait_relax();
    }
    t_ctx = saved;
    if (rec->group != nullptr) {
      rec->group->latch.count_down();
    }
    rec->creator->children_outstanding.fetch_sub(1,
                                                 std::memory_order_release);
    rec->team->tasks_outstanding.fetch_sub(1, std::memory_order_release);
    free_task_rec(rec);
  }

  /// Dependency wake-up target: enqueue a released task through the
  /// subclass's native path; deque-full falls back to executing it right
  /// here (its deps are met by construction). The fallback is flattened:
  /// executing a task completes it, which can wake the next link of a
  /// chain into this same fallback — recursing would nest one stack
  /// frame per chain link, so re-entrant wake-ups spill to a per-thread
  /// list the outermost frame drains iteratively.
  void enqueue_ready(TaskRec* rec) {
    TaskCtx* c =
        t_ctx != nullptr && t_ctx->team == rec->team ? t_ctx : nullptr;
    if (enqueue(c, rec)) {
      tasks_queued_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (t_in_ready_fallback) {
      t_ready_spill.push_back(rec);
      return;
    }
    t_in_ready_fallback = true;
    tasks_immediate_.fetch_add(1, std::memory_order_relaxed);
    execute(rec);
    while (!t_ready_spill.empty()) {
      TaskRec* next = t_ready_spill.back();
      t_ready_spill.pop_back();
      tasks_immediate_.fetch_add(1, std::memory_order_relaxed);
      execute(next);
    }
    t_in_ready_fallback = false;
  }

  static void on_dep_ready(void* payload, taskdep::TaskNode* node) {
    auto* pl = static_cast<DepPayload*>(payload);
    if (pl->kind == DepPayload::Kind::gate) {
      static_cast<ReadyGate*>(pl)->ready.set();
      return;
    }
    auto* rec = static_cast<TaskRec*>(pl);
    rec->node = node;
    rec->team->rt->enqueue_ready(rec);
  }

  void run_inline(TaskCtx* c, omp::TaskDesc desc,
                  taskdep::TaskNode* node = nullptr) {
    tasks_immediate_.fetch_add(1, std::memory_order_relaxed);
    TaskCtx ctx;
    ctx.team = c->team;
    ctx.tid = c->tid;
    ctx.parent = c;
    ctx.group = c->group;
    TaskCtx* saved = t_ctx;
    t_ctx = &ctx;
    if (!tg_cancelled(c->group)) desc.run();
    sched::watchdog_note_progress();
    // Release at task completion, before the child drain — same rule as
    // execute(): a child depending on this task's own dep object must be
    // releasable here or the drain would spin on it forever.
    if (node != nullptr) dep_engine_.complete(node);
    while (ctx.children_outstanding.load(std::memory_order_acquire) > 0) {
      if (!try_run_one_task(c->team)) wait_relax();
    }
    t_ctx = saved;
  }

  void wait_relax() {
    sched::chaos_maybe_delay();  // every relax step is a suspension point
    if (active_wait_) {
      common::cpu_relax();
    } else {
      std::this_thread::yield();
    }
  }

  std::atomic<std::uint64_t> tasks_queued_{0};
  std::atomic<std::uint64_t> tasks_immediate_{0};
  std::atomic<std::uint64_t> task_steals_{0};
  std::atomic<std::int64_t> tasks_running_{0};  ///< bodies on a thread now
  int cutoff_ = 256;
  taskdep::DepEngine dep_engine_{&PompRuntime::on_dep_ready};

  /// Watchdog dumper: shared-queue depth, per-member deque depths, and
  /// in-flight counts for every live team. Uses try_lock throughout — a
  /// dump of a wedged process must never become a second hang.
  static void dump_task_state(void* arg) {
    auto* rt = static_cast<PompRuntime*>(arg);
    std::fprintf(
        stderr,
        "[glto-pomp] tasks: queued=%llu immediate=%llu running=%lld\n",
        static_cast<unsigned long long>(
            rt->tasks_queued_.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            rt->tasks_immediate_.load(std::memory_order_relaxed)),
        static_cast<long long>(
            rt->tasks_running_.load(std::memory_order_relaxed)));
    if (!rt->teams_lock_.try_lock()) {
      std::fputs("[glto-pomp] team registry busy, depths unavailable\n",
                 stderr);
      return;
    }
    for (const PompTeam* team : rt->live_teams_) {
      std::size_t deque_depth = 0;
      for (const auto& d : team->deques) {
        if (d) deque_depth += d->size();
      }
      std::fprintf(
          stderr,
          "[glto-pomp]   team level=%d size=%d outstanding=%lld "
          "shared_queue=%zu deques=%zu\n",
          team->level, team->size,
          static_cast<long long>(
              team->tasks_outstanding.load(std::memory_order_relaxed)),
          team->shared_queue.size(), deque_depth);
    }
    rt->teams_lock_.unlock();
  }

 private:
  static void run_member(PompTeam* team, int tid,
                         const omp::RegionBody& body, TaskCtx* parent) {
    TaskCtx ctx;
    ctx.team = team;
    ctx.tid = tid;
    ctx.parent = parent;
    ctx.in_master = tid == 0;
    TaskCtx* saved = t_ctx;
    t_ctx = &ctx;
    body(tid, team->size);
    t_ctx = saved;
  }

  /// Hands @p a to a pooled worker (or a fresh pthread when @p fresh_only).
  std::unique_ptr<Worker> engage_worker(Assignment* a, bool fresh_only,
                                        int bind_rank) {
    std::unique_ptr<Worker> w;
    if (!fresh_only) {
      common::SpinGuard g(pool_lock_);
      if (!free_workers_.empty()) {
        w = std::move(free_workers_.back());
        free_workers_.pop_back();
        threads_reused_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (!w) {
      w = std::make_unique<Worker>();
      w->bind_rank = bind_ ? bind_rank : -1;
      threads_created_.fetch_add(1, std::memory_order_relaxed);
      Worker* wp = w.get();
      PompRuntime* rt = this;
      w->thread = std::thread([wp, rt] { rt->worker_loop(wp); });
    }
    {
      std::lock_guard<std::mutex> lk(w->m);
      w->assignment = a;
    }
    w->cv.notify_one();
    return w;
  }

  void worker_loop(Worker* w) {
    if (w->bind_rank >= 0) common::bind_self_to_core(w->bind_rank);
    for (;;) {
      Assignment* a = nullptr;
      {
        std::unique_lock<std::mutex> lk(w->m);
        w->cv.wait(lk, [&] { return w->assignment != nullptr || w->die; });
        if (w->die) return;
        a = w->assignment;
        w->assignment = nullptr;
      }
      run_member(a->team, a->tid, a->body, nullptr);
      // Help drain this region's tasks before reporting completion.
      while (a->team->tasks_outstanding.load(std::memory_order_acquire) >
             0) {
        if (!try_run_one_task(a->team)) wait_relax();
      }
      a->remaining->fetch_sub(1, std::memory_order_release);
    }
  }

  void retire(std::unique_ptr<Worker> w) {
    {
      std::lock_guard<std::mutex> lk(w->m);
      w->die = true;
    }
    w->cv.notify_one();
    w->thread.join();
  }

  bool reuse_nested_;
  int default_threads_ = 1;
  bool nested_ = true;
  bool bind_ = true;
  bool active_wait_ = true;

  PompTeam root_team_;
  TaskCtx root_ctx_;

  common::SpinLock pool_lock_;
  std::vector<std::unique_ptr<Worker>> free_workers_;

  common::SpinLock teams_lock_;
  std::vector<PompTeam*> live_teams_;  ///< dump_task_state's walk set
  std::uint64_t watchdog_token_ = 0;

  std::atomic<std::uint64_t> threads_created_{0};
  std::atomic<std::uint64_t> threads_reused_{0};

  common::SpinLock critical_map_lock_;
  std::map<const void*, common::SpinLock> critical_locks_;
};

/// libgomp-like: shared team task queue; nested regions never reuse
/// threads.
class GnuRuntime final : public PompRuntime {
 public:
  explicit GnuRuntime(const PompOptions& opts)
      : PompRuntime(opts, /*reuse_nested_threads=*/false) {}

  [[nodiscard]] const char* name() const override { return "gnu"; }

 protected:
  void init_task_storage(PompTeam&) override {}

  bool enqueue(TaskCtx*, TaskRec* rec) override {
    rec->team->shared_queue.push(rec);
    return true;
  }

  void enqueue_bulk(TaskCtx*, TaskRec** recs, std::size_t n) override {
    // One lock acquisition for the whole burst (the per-task path pays
    // one per push on the same single team-wide lock).
    recs[0]->team->shared_queue.push_n(recs, n);
    tasks_queued_.fetch_add(n, std::memory_order_relaxed);
  }

  bool try_run_one_task(PompTeam* team) override {
    if (auto rec = team->shared_queue.pop()) {
      execute(*rec);
      return true;
    }
    return false;
  }
};

/// Intel-like: hot-team reuse; bounded per-thread deques with stealing and
/// the 256-entry cut-off.
class IntelRuntime final : public PompRuntime {
 public:
  explicit IntelRuntime(const PompOptions& opts)
      : PompRuntime(opts, /*reuse_nested_threads=*/true) {}

  [[nodiscard]] const char* name() const override { return "intel"; }

 protected:
  void init_task_storage(PompTeam& team) override {
    team.deques.resize(static_cast<std::size_t>(team.size));
    for (auto& d : team.deques) {
      d = std::make_unique<sched::BoundedDeque<TaskRec*>>(
          static_cast<std::size_t>(cutoff_));
    }
  }

  bool enqueue(TaskCtx* c, TaskRec* rec) override {
    auto& deques = rec->team->deques;
    if (deques.empty()) {  // team of 1 without storage: run inline
      return false;
    }
    // Out-of-team enqueues (dependency wake-ups fired by a thread outside
    // the task's team) scatter across the deques instead of piling onto
    // slot 0, so cross-team DAG release storms don't serialize.
    // Seed from the thread_local's own address so concurrent threads
    // draw different slot sequences instead of colliding in lockstep.
    thread_local common::FastRng slot_rng{
        0xD00DADu ^ static_cast<std::uint64_t>(
                        reinterpret_cast<std::uintptr_t>(&slot_rng))};
    const auto slot = c != nullptr
                          ? static_cast<std::size_t>(c->tid) % deques.size()
                          : static_cast<std::size_t>(slot_rng.next()) %
                                deques.size();
    return deques[slot]->try_push(rec);
  }

  bool try_run_one_task(PompTeam* team) override {
    auto& deques = team->deques;
    if (deques.empty()) return false;
    const auto n = deques.size();
    const auto self =
        t_ctx != nullptr && t_ctx->team == team
            ? static_cast<std::size_t>(t_ctx->tid) % n
            : 0;
    if (auto rec = deques[self]->pop_owner()) {
      execute(*rec);
      return true;
    }
    // Work stealing: random victim order (contention under many threads is
    // the paper's §VI-E observation).
    thread_local common::FastRng rng{0xC0FFEE};
    const auto start = static_cast<std::size_t>(rng.next() % n);
    for (std::size_t k = 0; k < n; ++k) {
      const auto v = (start + k) % n;
      if (v == self) continue;
      if (auto rec = deques[v]->steal()) {
        task_steals_.fetch_add(1, std::memory_order_relaxed);
        execute(*rec);
        return true;
      }
    }
    return false;
  }
};

}  // namespace

std::unique_ptr<omp::Runtime> make_gnu_runtime(const PompOptions& opts) {
  return std::make_unique<GnuRuntime>(opts);
}

std::unique_ptr<omp::Runtime> make_intel_runtime(const PompOptions& opts) {
  return std::make_unique<IntelRuntime>(opts);
}

}  // namespace glto::pomp
