// pomp — pthread-based OpenMP baseline runtimes ("GCC" and "ICC" bars).
//
// Two runtimes with the policies the paper measures:
//
// GnuRuntime (libgomp-like):
//  * Top-level teams reuse a persistent pool; **nested teams spawn fresh
//    pthreads every region and destroy them at region end** — the source
//    of the 3,536 created threads in Table II and the ≥10× nested slowdown
//    of Figs. 8/9.
//  * Tasks go through **one shared task queue per team** protected by a
//    single lock.
//
// IntelRuntime (Intel OpenMP RT-like):
//  * "Hot teams": workers return to a freelist at region end and are
//    re-engaged by later (incl. nested) regions — Table II: 1,296 created
//    / 2,240 reused.
//  * Tasks go to **bounded per-thread deques with work stealing**; when a
//    producer's deque is full (default capacity 256) the task executes
//    immediately — the **cut-off mechanism** of §VI-E, Table III & Fig. 14.
//
// Both honour OMP_WAIT_POLICY: active (spin) or passive (park) waiting.
#pragma once

#include <memory>

#include "omp/runtime.hpp"

namespace glto::pomp {

struct PompOptions {
  int num_threads = 0;   ///< 0 → $OMP_NUM_THREADS or hardware threads
  bool nested = true;    ///< OMP_NESTED
  bool bind_threads = true;
  bool active_wait = true;  ///< OMP_WAIT_POLICY=active
  int task_cutoff = 256;    ///< Intel: per-thread task-deque capacity
};

std::unique_ptr<omp::Runtime> make_gnu_runtime(const PompOptions& opts);
std::unique_ptr<omp::Runtime> make_intel_runtime(const PompOptions& opts);

}  // namespace glto::pomp
