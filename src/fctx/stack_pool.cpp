#include "fctx/stack_pool.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <vector>

#include "common/debug.hpp"
#include "common/spin.hpp"
#include "common/thread_safety.hpp"

namespace glto::fctx {

namespace {

std::size_t page_size() {
  static const std::size_t ps = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  return ps;
}

std::size_t round_up_pages(std::size_t n) {
  const std::size_t ps = page_size();
  return (n + ps - 1) / ps * ps;
}

}  // namespace

struct StackPool::Impl {
  glto::common::SpinLock lock;
  // recycled stacks (base addresses); guarded by lock
  std::vector<void*> free_bases GLTO_GUARDED_BY(lock);
  // everything mapped, for teardown; guarded by lock
  std::vector<void*> all_bases GLTO_GUARDED_BY(lock);
  std::atomic<std::uint64_t> mapped{0};
  std::atomic<std::uint64_t> cache_hits{0};
  bool per_thread_cache = false;
};

namespace {

/// Per-thread free-stack cache. Bound to at most one pool per thread (in
/// practice: the immortal global() pool — the only one allowed to enable
/// caching, so the spill in the destructor can never dangle).
struct ThreadCache {
  StackPool::Impl* owner = nullptr;
  std::vector<void*> bases;

  ~ThreadCache() {
    if (owner == nullptr || bases.empty()) return;
    glto::common::SpinGuard g(owner->lock);
    owner->free_bases.insert(owner->free_bases.end(), bases.begin(),
                             bases.end());
  }
};

thread_local ThreadCache t_cache;

}  // namespace

StackPool::StackPool(std::size_t stack_size, bool per_thread_cache)
    : impl_(new Impl), stack_size_(round_up_pages(stack_size)) {
  impl_->per_thread_cache = per_thread_cache;
}

StackPool::~StackPool() {
  // A caching pool must be immortal: per-thread caches hold a raw Impl*
  // that they dereference from thread-exit destructors, so destroying
  // the pool first would be a use-after-free. Fail loudly instead.
  GLTO_CHECK_MSG(!impl_->per_thread_cache,
                 "a StackPool with per_thread_cache enabled must never be "
                 "destroyed (thread caches spill into it at thread exit)");
  const std::size_t total = stack_size_ + page_size();
  for (void* base : impl_->all_bases) ::munmap(base, total);
  delete impl_;
}

Stack StackPool::make_stack(void* base) const {
  Stack s;
  s.base = base;
  s.size = stack_size_;
  s.top = static_cast<char*>(base) + page_size() + stack_size_;
  // Fresh TSan fiber per occupancy: the handle is destroyed on release(),
  // so a recycled stack never inherits its previous occupant's vector
  // clock (stale happens-before edges would mask real races).
  s.tsan = tsan_fiber_create();
  return s;
}

Stack StackPool::acquire() {
  if (impl_->per_thread_cache &&
      (t_cache.owner == impl_ || t_cache.owner == nullptr)) {
    t_cache.owner = impl_;
    if (!t_cache.bases.empty()) {
      void* base = t_cache.bases.back();
      t_cache.bases.pop_back();
      impl_->cache_hits.fetch_add(1, std::memory_order_relaxed);
      return make_stack(base);
    }
    // Batch refill: one lock acquisition amortized over kCacheRefillBatch
    // subsequent lock-free acquires.
    {
      glto::common::SpinGuard g(impl_->lock);
      const std::size_t take =
          std::min(kCacheRefillBatch, impl_->free_bases.size());
      for (std::size_t i = 0; i < take; ++i) {
        t_cache.bases.push_back(impl_->free_bases.back());
        impl_->free_bases.pop_back();
      }
    }
    if (!t_cache.bases.empty()) {
      void* base = t_cache.bases.back();
      t_cache.bases.pop_back();
      return make_stack(base);
    }
  } else {
    glto::common::SpinGuard g(impl_->lock);
    if (!impl_->free_bases.empty()) {
      void* base = impl_->free_bases.back();
      impl_->free_bases.pop_back();
      return make_stack(base);
    }
  }
  const std::size_t total = stack_size_ + page_size();
  void* base = ::mmap(nullptr, total, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
  GLTO_CHECK_MSG(base != MAP_FAILED, "stack mmap failed");
  // Guard page at the low end: stack overflow faults instead of corrupting
  // a neighbouring stack.
  GLTO_CHECK(::mprotect(base, page_size(), PROT_NONE) == 0);
  impl_->mapped.fetch_add(1, std::memory_order_relaxed);
  {
    glto::common::SpinGuard g(impl_->lock);
    impl_->all_bases.push_back(base);
  }
  return make_stack(base);
}

void StackPool::release(Stack s) {
  if (!s.valid()) return;
  asan_clear_stack(s.region());  // drop poison left by abandoned frames
  tsan_fiber_destroy(s.tsan);    // retire the occupant's TSan identity
  if (impl_->per_thread_cache &&
      (t_cache.owner == impl_ || t_cache.owner == nullptr)) {
    t_cache.owner = impl_;
    t_cache.bases.push_back(s.base);
    if (t_cache.bases.size() > kCacheSpillHigh) {
      // Spill half back to the shared freelist in one lock acquisition so
      // a join-heavy thread keeps feeding spawn-heavy ones.
      const std::size_t keep = kCacheSpillHigh / 2;
      glto::common::SpinGuard g(impl_->lock);
      impl_->free_bases.insert(impl_->free_bases.end(),
                               t_cache.bases.begin() + keep,
                               t_cache.bases.end());
      t_cache.bases.resize(keep);
    }
    return;
  }
  glto::common::SpinGuard g(impl_->lock);
  impl_->free_bases.push_back(s.base);
}

std::uint64_t StackPool::total_mapped() const {
  return impl_->mapped.load(std::memory_order_relaxed);
}

std::uint64_t StackPool::cache_hits() const {
  return impl_->cache_hits.load(std::memory_order_relaxed);
}

StackPool& StackPool::global() {
  static StackPool* pool =  // immortal: ULTs may outlive main
      new StackPool(kDefaultStackSize, /*per_thread_cache=*/true);
  return *pool;
}

}  // namespace glto::fctx
