#include "fctx/stack_pool.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <vector>

#include "common/debug.hpp"
#include "common/spin.hpp"

namespace glto::fctx {

namespace {

std::size_t page_size() {
  static const std::size_t ps = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  return ps;
}

std::size_t round_up_pages(std::size_t n) {
  const std::size_t ps = page_size();
  return (n + ps - 1) / ps * ps;
}

}  // namespace

struct StackPool::Impl {
  glto::common::SpinLock lock;
  std::vector<void*> free_bases;       // recycled stacks (base addresses)
  std::vector<void*> all_bases;        // everything mapped, for teardown
  std::atomic<std::uint64_t> mapped{0};
};

StackPool::StackPool(std::size_t stack_size)
    : impl_(new Impl), stack_size_(round_up_pages(stack_size)) {}

StackPool::~StackPool() {
  const std::size_t total = stack_size_ + page_size();
  for (void* base : impl_->all_bases) ::munmap(base, total);
  delete impl_;
}

Stack StackPool::acquire() {
  {
    glto::common::SpinGuard g(impl_->lock);
    if (!impl_->free_bases.empty()) {
      void* base = impl_->free_bases.back();
      impl_->free_bases.pop_back();
      Stack s;
      s.base = base;
      s.size = stack_size_;
      s.top = static_cast<char*>(base) + page_size() + stack_size_;
      return s;
    }
  }
  const std::size_t total = stack_size_ + page_size();
  void* base = ::mmap(nullptr, total, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
  GLTO_CHECK_MSG(base != MAP_FAILED, "stack mmap failed");
  // Guard page at the low end: stack overflow faults instead of corrupting
  // a neighbouring stack.
  GLTO_CHECK(::mprotect(base, page_size(), PROT_NONE) == 0);
  impl_->mapped.fetch_add(1, std::memory_order_relaxed);
  {
    glto::common::SpinGuard g(impl_->lock);
    impl_->all_bases.push_back(base);
  }
  Stack s;
  s.base = base;
  s.size = stack_size_;
  s.top = static_cast<char*>(base) + page_size() + stack_size_;
  return s;
}

void StackPool::release(Stack s) {
  if (!s.valid()) return;
  glto::common::SpinGuard g(impl_->lock);
  impl_->free_bases.push_back(s.base);
}

std::uint64_t StackPool::total_mapped() const {
  return impl_->mapped.load(std::memory_order_relaxed);
}

StackPool& StackPool::global() {
  static StackPool* pool = new StackPool();  // immortal: ULTs may outlive main
  return *pool;
}

}  // namespace glto::fctx
