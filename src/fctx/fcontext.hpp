// Minimal fast user-level context switching, Boost.Context fcontext style.
//
// This is the mechanism that makes user-level threads (ULTs) "lightweight":
// a switch saves/restores only the System V callee-saved registers plus the
// FP control words — roughly 20 ns — versus microseconds for an OS thread
// context switch through the kernel. All three LWT libraries in this repo
// (abt, qth, mth) are built on these two primitives.
#pragma once

#include <cstddef>

// AddressSanitizer needs to be told about every stack switch, or code
// running on a fiber stack trips "stack-use-after-return"-style false
// positives (ASan believes the thread is still on its OS stack). The
// annotations below are no-ops in non-ASan builds.
#if defined(__SANITIZE_ADDRESS__)
#define GLTO_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define GLTO_ASAN_FIBERS 1
#endif
#endif

#if defined(GLTO_ASAN_FIBERS)
extern "C" {
void __sanitizer_start_switch_fiber(void** fake_stack_save,
                                    const void* bottom, std::size_t size);
void __sanitizer_finish_switch_fiber(void* fake_stack_save,
                                     const void** bottom_old,
                                     std::size_t* size_old);
void __asan_unpoison_memory_region(void const volatile* addr,
                                   std::size_t size);
}
#endif

namespace glto::fctx {

/// Opaque handle to a suspended context (points into its stack).
using fcontext_t = void*;

/// Value carried across a switch: the context we came from plus a payload.
struct transfer_t {
  fcontext_t from;  ///< context of the suspended side; resume it to go back
  void* data;       ///< payload passed through jump_fcontext
};

/// Entry function type for a fresh context. Receives the transfer from the
/// first jump into it. Must never return (finish by jumping elsewhere);
/// returning aborts the process.
using entry_fn = void (*)(transfer_t);

/// Creates a context on the stack [sp - size, sp). @p sp is the *top*
/// (highest address) of the stack. The context starts executing @p fn when
/// first jumped to.
fcontext_t make_fcontext(void* sp, std::size_t size, entry_fn fn);

/// Suspends the current context and resumes @p to, passing @p data.
/// Returns when somebody jumps back, with the peer's context and payload.
transfer_t jump_fcontext(fcontext_t to, void* data);

/// Stack bounds for ASan fiber bookkeeping: @p bottom is the *lowest*
/// usable address, @p size the usable byte count. An empty region (the
/// default) tells ASan "unknown" — legal, but loses precision.
struct StackRegion {
  const void* bottom = nullptr;
  std::size_t size = 0;
};

/// Bounds of the calling OS thread's own stack (pthread_getattr_np).
/// Used for the scheduler loops and main contexts that run on native
/// thread stacks rather than pooled fiber stacks.
StackRegion os_thread_stack();

/// Clears stale ASan shadow from a fiber stack about to be recycled. A
/// context that finishes by jumping away (every ULT) never returns through
/// its frames, so their redzones stay poisoned on the stack — the next
/// occupant's locals would land on them and report a bogus underflow.
inline void asan_clear_stack(StackRegion r) {
#if defined(GLTO_ASAN_FIBERS)
  if (r.bottom != nullptr) __asan_unpoison_memory_region(r.bottom, r.size);
#else
  (void)r;
#endif
}

/// Must be the first statement of every context entry function: closes the
/// fiber switch that activated this context for the first time. (A fresh
/// context has no saved fake stack, hence the null save pointer.)
inline void asan_enter() {
#if defined(GLTO_ASAN_FIBERS)
  __sanitizer_finish_switch_fiber(nullptr, nullptr, nullptr);
#endif
}

/// jump_fcontext with ASan fiber annotations. @p target is the stack
/// region of the context being resumed. The fake-stack save pointer lives
/// in THIS frame — on the suspending fiber's own stack — so it travels
/// with the fiber and is found again no matter which OS thread resumes it.
/// @p abandon: the calling context never runs again (a Done jump from a
/// dying fiber); its fake stack is released instead of saved.
inline transfer_t jump_fcontext_to(fcontext_t to, void* data,
                                   StackRegion target, bool abandon = false) {
#if defined(GLTO_ASAN_FIBERS)
  void* fake = nullptr;
  __sanitizer_start_switch_fiber(abandon ? nullptr : &fake, target.bottom,
                                 target.size);
  transfer_t t = jump_fcontext(to, data);
  __sanitizer_finish_switch_fiber(fake, nullptr, nullptr);
  return t;
#else
  (void)target;
  (void)abandon;
  return jump_fcontext(to, data);
#endif
}

}  // namespace glto::fctx
