// Minimal fast user-level context switching, Boost.Context fcontext style.
//
// This is the mechanism that makes user-level threads (ULTs) "lightweight":
// a switch saves/restores only the System V callee-saved registers plus the
// FP control words — roughly 20 ns — versus microseconds for an OS thread
// context switch through the kernel. All three LWT libraries in this repo
// (abt, qth, mth) are built on these two primitives.
#pragma once

#include <cstddef>

// AddressSanitizer needs to be told about every stack switch, or code
// running on a fiber stack trips "stack-use-after-return"-style false
// positives (ASan believes the thread is still on its OS stack). The
// annotations below are no-ops in non-ASan builds.
#if defined(__SANITIZE_ADDRESS__)
#define GLTO_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define GLTO_ASAN_FIBERS 1
#endif
#endif

#if defined(GLTO_ASAN_FIBERS)
extern "C" {
void __sanitizer_start_switch_fiber(void** fake_stack_save,
                                    const void* bottom, std::size_t size);
void __sanitizer_finish_switch_fiber(void* fake_stack_save,
                                     const void** bottom_old,
                                     std::size_t* size_old);
void __asan_unpoison_memory_region(void const volatile* addr,
                                   std::size_t size);
}
#endif

// ThreadSanitizer models every execution context as a "fiber" with its own
// vector clock. Without the protocol below TSan cannot follow a ULT context
// switch: it would keep attributing a migrated ULT's accesses to whichever
// OS thread last announced itself, fabricating races (and masking real
// ones). Each pooled stack owns a TSan fiber handle, created on acquire and
// destroyed on recycle; __tsan_switch_to_fiber is called immediately before
// every jump. The annotations are no-ops in non-TSan builds.
#if defined(__SANITIZE_THREAD__)
#define GLTO_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define GLTO_TSAN_FIBERS 1
#endif
#endif

#if defined(GLTO_TSAN_FIBERS)
extern "C" {
void* __tsan_create_fiber(unsigned flags);
void __tsan_destroy_fiber(void* fiber);
void __tsan_switch_to_fiber(void* fiber, unsigned flags);
void* __tsan_get_current_fiber();
void __tsan_set_fiber_name(void* fiber, const char* name);
}
#endif

namespace glto::fctx {

/// Opaque handle to a suspended context (points into its stack).
using fcontext_t = void*;

/// Value carried across a switch: the context we came from plus a payload.
struct transfer_t {
  fcontext_t from;  ///< context of the suspended side; resume it to go back
  void* data;       ///< payload passed through jump_fcontext
};

/// Entry function type for a fresh context. Receives the transfer from the
/// first jump into it. Must never return (finish by jumping elsewhere);
/// returning aborts the process.
using entry_fn = void (*)(transfer_t);

/// Creates a context on the stack [sp - size, sp). @p sp is the *top*
/// (highest address) of the stack. The context starts executing @p fn when
/// first jumped to.
fcontext_t make_fcontext(void* sp, std::size_t size, entry_fn fn);

/// Suspends the current context and resumes @p to, passing @p data.
/// Returns when somebody jumps back, with the peer's context and payload.
transfer_t jump_fcontext(fcontext_t to, void* data);

/// Identity of the context being switched to, for sanitizer bookkeeping:
/// @p bottom is the *lowest* usable address, @p size the usable byte count
/// (ASan fiber bounds; an empty region means "unknown" — legal, but loses
/// precision), and @p tsan is the TSan fiber handle of the context that
/// runs on this stack (null outside GLTO_TSAN_FIBERS builds).
struct StackRegion {
  const void* bottom = nullptr;
  std::size_t size = 0;
  void* tsan = nullptr;
};

/// Bounds of the calling OS thread's own stack (pthread_getattr_np).
/// Used for the scheduler loops and main contexts that run on native
/// thread stacks rather than pooled fiber stacks. Under TSan the region
/// also carries the calling thread's root fiber handle, so jumps back to
/// a native-stack context restore the right TSan identity.
StackRegion os_thread_stack();

/// Allocates a TSan fiber identity for a context about to live on a pooled
/// stack (StackPool::acquire calls this; StackPool::release destroys it).
/// Returns null outside TSan builds.
inline void* tsan_fiber_create() {
#if defined(GLTO_TSAN_FIBERS)
  return __tsan_create_fiber(0);
#else
  return nullptr;
#endif
}

/// Destroys a TSan fiber identity on stack recycle. Must never be called
/// with the *current* fiber (release a stack only after its occupant has
/// jumped away for good). Null-safe; no-op outside TSan builds.
inline void tsan_fiber_destroy(void* fiber) {
#if defined(GLTO_TSAN_FIBERS)
  if (fiber != nullptr) __tsan_destroy_fiber(fiber);
#else
  (void)fiber;
#endif
}

/// The calling context's own TSan fiber handle (the OS thread's root fiber
/// when called from a native stack). Null outside TSan builds.
inline void* tsan_fiber_current() {
#if defined(GLTO_TSAN_FIBERS)
  return __tsan_get_current_fiber();
#else
  return nullptr;
#endif
}

/// Clears stale ASan shadow from a fiber stack about to be recycled. A
/// context that finishes by jumping away (every ULT) never returns through
/// its frames, so their redzones stay poisoned on the stack — the next
/// occupant's locals would land on them and report a bogus underflow.
inline void asan_clear_stack(StackRegion r) {
#if defined(GLTO_ASAN_FIBERS)
  if (r.bottom != nullptr) __asan_unpoison_memory_region(r.bottom, r.size);
#else
  (void)r;
#endif
}

/// Must be the first statement of every context entry function: closes the
/// fiber switch that activated this context for the first time. (A fresh
/// context has no saved fake stack, hence the null save pointer.)
inline void asan_enter() {
#if defined(GLTO_ASAN_FIBERS)
  __sanitizer_finish_switch_fiber(nullptr, nullptr, nullptr);
#endif
}

/// jump_fcontext with sanitizer fiber annotations. @p target is the
/// identity of the context being resumed. The ASan fake-stack save pointer
/// lives in THIS frame — on the suspending fiber's own stack — so it
/// travels with the fiber and is found again no matter which OS thread
/// resumes it. @p abandon: the calling context never runs again (a Done
/// jump from a dying fiber); its fake stack is released instead of saved.
///
/// TSan: __tsan_switch_to_fiber must immediately precede the actual switch
/// and names the context about to run; flags=0 makes the switch itself a
/// synchronization point, which is sound because a context switch is
/// genuinely program-ordered on its OS thread (the jump is a compiler
/// barrier and no other thread runs either context meanwhile). The dying
/// side of an abandon jump needs no extra handling here — its fiber is
/// destroyed later, on StackPool recycle.
inline transfer_t jump_fcontext_to(fcontext_t to, void* data,
                                   StackRegion target, bool abandon = false) {
  (void)target;
  (void)abandon;
#if defined(GLTO_ASAN_FIBERS)
  void* fake = nullptr;
  __sanitizer_start_switch_fiber(abandon ? nullptr : &fake, target.bottom,
                                 target.size);
#endif
#if defined(GLTO_TSAN_FIBERS)
  if (target.tsan != nullptr) __tsan_switch_to_fiber(target.tsan, 0);
#endif
#if defined(GLTO_ASAN_FIBERS)
  transfer_t t = jump_fcontext(to, data);
  __sanitizer_finish_switch_fiber(fake, nullptr, nullptr);
  return t;
#else
  return jump_fcontext(to, data);
#endif
}

}  // namespace glto::fctx
