// Minimal fast user-level context switching, Boost.Context fcontext style.
//
// This is the mechanism that makes user-level threads (ULTs) "lightweight":
// a switch saves/restores only the System V callee-saved registers plus the
// FP control words — roughly 20 ns — versus microseconds for an OS thread
// context switch through the kernel. All three LWT libraries in this repo
// (abt, qth, mth) are built on these two primitives.
#pragma once

#include <cstddef>

namespace glto::fctx {

/// Opaque handle to a suspended context (points into its stack).
using fcontext_t = void*;

/// Value carried across a switch: the context we came from plus a payload.
struct transfer_t {
  fcontext_t from;  ///< context of the suspended side; resume it to go back
  void* data;       ///< payload passed through jump_fcontext
};

/// Entry function type for a fresh context. Receives the transfer from the
/// first jump into it. Must never return (finish by jumping elsewhere);
/// returning aborts the process.
using entry_fn = void (*)(transfer_t);

/// Creates a context on the stack [sp - size, sp). @p sp is the *top*
/// (highest address) of the stack. The context starts executing @p fn when
/// first jumped to.
fcontext_t make_fcontext(void* sp, std::size_t size, entry_fn fn);

/// Suspends the current context and resumes @p to, passing @p data.
/// Returns when somebody jumps back, with the peer's context and payload.
transfer_t jump_fcontext(fcontext_t to, void* data);

}  // namespace glto::fctx
