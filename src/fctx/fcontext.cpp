#include "fctx/fcontext.hpp"

#include <pthread.h>

#include <cstdio>
#include <cstdlib>

#if defined(GLTO_FCTX_UCONTEXT)
#include <ucontext.h>

#include <map>

#include "common/spin.hpp"
#endif

namespace glto::fctx {

extern "C" void glto_fctx_on_exit(void*) {
  std::fprintf(stderr, "glto::fctx: context entry function returned\n");
  std::abort();
}

StackRegion os_thread_stack() {
  StackRegion r;
#if defined(__linux__)
  pthread_attr_t attr;
  if (pthread_getattr_np(pthread_self(), &attr) == 0) {
    void* addr = nullptr;
    std::size_t size = 0;
    if (pthread_attr_getstack(&attr, &addr, &size) == 0) {
      r.bottom = addr;
      r.size = size;
    }
    pthread_attr_destroy(&attr);
  }
#endif
  // Native-stack contexts (scheduler loops, main ULTs) keep the calling
  // thread's root fiber as their TSan identity; jumps back to them restore
  // it even after the context migrated to another worker.
  r.tsan = tsan_fiber_current();
  return r;
}

#if !defined(GLTO_FCTX_UCONTEXT)

extern "C" {
transfer_t glto_jump_fcontext(fcontext_t to, void* data);
fcontext_t glto_make_fcontext(void* sp, std::size_t size, entry_fn fn);
}

fcontext_t make_fcontext(void* sp, std::size_t size, entry_fn fn) {
  return glto_make_fcontext(sp, size, fn);
}

transfer_t jump_fcontext(fcontext_t to, void* data) {
  return glto_jump_fcontext(to, data);
}

#else  // ucontext fallback for non-x86-64 hosts (slower: syscall per switch).

namespace {

struct UctxRecord {
  ucontext_t ctx;
  entry_fn fn = nullptr;
  transfer_t pending{};
  bool fresh = false;
};

thread_local transfer_t g_incoming{};
thread_local ucontext_t* g_current = nullptr;

void trampoline(unsigned hi, unsigned lo) {
  auto* rec = reinterpret_cast<UctxRecord*>(
      (static_cast<std::uintptr_t>(hi) << 32) | lo);
  rec->fn(g_incoming);
  glto_fctx_on_exit(nullptr);
}

}  // namespace

fcontext_t make_fcontext(void* sp, std::size_t size, entry_fn fn) {
  // Carve the record out of the top of the stack itself so that no separate
  // allocation (and no leak) is needed — mirrors the asm implementation.
  auto top = reinterpret_cast<std::uintptr_t>(sp);
  top = (top - sizeof(UctxRecord)) & ~std::uintptr_t(63);
  auto* rec = reinterpret_cast<UctxRecord*>(top);
  new (rec) UctxRecord();
  getcontext(&rec->ctx);
  rec->ctx.uc_stack.ss_sp = static_cast<char*>(sp) - size;
  rec->ctx.uc_stack.ss_size = top - reinterpret_cast<std::uintptr_t>(
                                        static_cast<char*>(sp) - size);
  rec->ctx.uc_link = nullptr;
  rec->fn = fn;
  rec->fresh = true;
  const auto p = reinterpret_cast<std::uintptr_t>(rec);
  makecontext(&rec->ctx, reinterpret_cast<void (*)()>(trampoline), 2,
              static_cast<unsigned>(p >> 32),
              static_cast<unsigned>(p & 0xffffffffu));
  return rec;
}

transfer_t jump_fcontext(fcontext_t to, void* data) {
  auto* target = static_cast<UctxRecord*>(to);
  UctxRecord self;
  g_incoming = transfer_t{&self, data};
  ucontext_t* prev = g_current;
  g_current = &target->ctx;
  swapcontext(&self.ctx, &target->ctx);
  g_current = prev;
  return g_incoming;
}

#endif

}  // namespace glto::fctx
