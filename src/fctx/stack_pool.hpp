// Pooled ULT stack allocation.
//
// Creating a ULT must be orders of magnitude cheaper than pthread_create;
// the dominant cost is stack allocation, so stacks are mmap'ed once (with a
// PROT_NONE guard page below) and recycled through a global lock-free-ish
// freelist with per-thread caches.
#pragma once

#include <cstddef>
#include <cstdint>

namespace glto::fctx {

struct Stack {
  void* base = nullptr;   ///< lowest mapped address (guard page)
  void* top = nullptr;    ///< highest usable address; pass to make_fcontext
  std::size_t size = 0;   ///< usable size (excludes the guard page)

  [[nodiscard]] bool valid() const { return base != nullptr; }
};

/// Process-wide stack pool. Thread-safe.
class StackPool {
 public:
  /// @p stack_size is rounded up to whole pages. 64 KiB default matches
  /// typical LWT library defaults (Argobots: 64 KiB).
  explicit StackPool(std::size_t stack_size = kDefaultStackSize);
  ~StackPool();

  StackPool(const StackPool&) = delete;
  StackPool& operator=(const StackPool&) = delete;

  /// Returns a guard-paged stack; recycles a previously released one when
  /// available, otherwise mmaps a fresh one.
  Stack acquire();

  /// Returns a stack to the pool for reuse.
  void release(Stack s);

  [[nodiscard]] std::size_t stack_size() const { return stack_size_; }

  /// Number of stacks ever mmap'ed (for tests / ablation counters).
  [[nodiscard]] std::uint64_t total_mapped() const;

  /// The process-wide default pool (64 KiB stacks).
  static StackPool& global();

  static constexpr std::size_t kDefaultStackSize = 64 * 1024;

 private:
  struct Impl;
  Impl* impl_;
  std::size_t stack_size_;
};

}  // namespace glto::fctx
