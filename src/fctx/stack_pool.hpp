// Pooled ULT stack allocation.
//
// Creating a ULT must be orders of magnitude cheaper than pthread_create;
// the dominant cost is stack allocation, so stacks are mmap'ed once (with a
// PROT_NONE guard page below) and recycled. The global() pool additionally
// keeps a per-thread cache of free stacks with batched refill/spill to the
// shared freelist, so the acquire()/release() fast path on scheduler
// threads touches no lock (a spawn-heavy xstream otherwise serializes on
// the freelist spinlock — exactly the hot path the paper's create/join
// microbenchmarks measure).
#pragma once

#include <cstddef>
#include <cstdint>

#include "fctx/fcontext.hpp"

namespace glto::fctx {

struct Stack {
  void* base = nullptr;   ///< lowest mapped address (guard page)
  void* top = nullptr;    ///< highest usable address; pass to make_fcontext
  std::size_t size = 0;   ///< usable size (excludes the guard page)
  void* tsan = nullptr;   ///< TSan fiber handle (acquire() → release())

  [[nodiscard]] bool valid() const { return base != nullptr; }

  /// Context identity for fctx::jump_fcontext_to: the usable range as ASan
  /// fiber bounds plus the TSan fiber handle.
  [[nodiscard]] StackRegion region() const {
    return {static_cast<const char*>(top) - size, size, tsan};
  }
};

/// Process-wide stack pool. Thread-safe.
class StackPool {
 public:
  /// @p stack_size is rounded up to whole pages. 64 KiB default matches
  /// typical LWT library defaults (Argobots: 64 KiB).
  ///
  /// @p per_thread_cache enables the lock-free per-thread free-stack
  /// caches. Only an *immortal* pool may enable it (thread caches spill
  /// back on thread exit, which must not outlive the pool); global() does.
  explicit StackPool(std::size_t stack_size = kDefaultStackSize,
                     bool per_thread_cache = false);
  ~StackPool();

  StackPool(const StackPool&) = delete;
  StackPool& operator=(const StackPool&) = delete;

  /// Returns a guard-paged stack; recycles a previously released one when
  /// available, otherwise mmaps a fresh one.
  Stack acquire();

  /// Returns a stack to the pool for reuse.
  void release(Stack s);

  [[nodiscard]] std::size_t stack_size() const { return stack_size_; }

  /// Number of stacks ever mmap'ed (for tests / ablation counters).
  [[nodiscard]] std::uint64_t total_mapped() const;

  /// acquire() calls served from a per-thread cache without locking.
  [[nodiscard]] std::uint64_t cache_hits() const;

  /// The process-wide default pool (64 KiB stacks, per-thread caches on).
  static StackPool& global();

  static constexpr std::size_t kDefaultStackSize = 64 * 1024;
  /// Stacks moved shared→thread cache per refill (one lock acquisition).
  static constexpr std::size_t kCacheRefillBatch = 16;
  /// Cache size that triggers a spill of half the cache back to shared.
  static constexpr std::size_t kCacheSpillHigh = 64;

  struct Impl;  ///< opaque; public so the per-thread cache can point at it

 private:
  [[nodiscard]] Stack make_stack(void* base) const;

  Impl* impl_;
  std::size_t stack_size_;
};

}  // namespace glto::fctx
