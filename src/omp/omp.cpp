#include "omp/omp.hpp"

#include <atomic>
#include <memory>

#include "common/cacheline.hpp"
#include "common/debug.hpp"
#include "common/env.hpp"
#include "glto/glto_runtime.hpp"
#include "omp/task_support.hpp"
#include "pomp/pomp_runtime.hpp"
#include "sched/chaos.hpp"
#include "sched/freelist.hpp"
#include "sched/metrics.hpp"
#include "sched/trace.hpp"
#include "sched/watchdog.hpp"

namespace glto::omp {

namespace {

std::unique_ptr<Runtime> g_runtime;
RuntimeKind g_kind = RuntimeKind::glto_abt;

void parse_omp_schedule();

}  // namespace

// ---- descriptor spill pool + placement counters ---------------------------

namespace detail {

namespace {

struct SpillSlab {
  alignas(std::max_align_t) unsigned char bytes[kSpillSlabBytes];
};

/// Descriptor-placement counters, one cache-line-padded slot per record
/// rank: a single process-wide atomic would put a contended RMW on the
/// very task-spawn path this ABI makes allocation-free. Threads beyond
/// kRecordPoolWorkers share slots (still correct, relaxed adds); sums
/// are taken in task_inline_count()/task_alloc_count().
struct alignas(common::kCacheLine) PlacementSlot {
  std::atomic<std::uint64_t> inline_count{0};
  std::atomic<std::uint64_t> alloc_count{0};
};

PlacementSlot g_placement[kRecordPoolWorkers];

PlacementSlot& placement_slot() {
  return g_placement[static_cast<unsigned>(record_rank()) %
                     kRecordPoolWorkers];
}

/// Slab freelist shared by every runtime instance: per-OS-thread lists
/// keyed by detail::record_rank(), locked shared slab beyond that. Spills
/// recycle to the *freeing* thread's list, so producer/consumer pairs
/// keep slabs circulating without malloc after warm-up.
sched::Freelist<SpillSlab>& spill_pool() {
  static sched::Freelist<SpillSlab> pool(kRecordPoolWorkers);
  return pool;
}

}  // namespace

// See the task_support.hpp declaration: noinline + asm barrier force the
// thread_local lookup to happen at call time on the *current* OS thread,
// never cached from before a ULT suspension (the abt::tls_now idiom).
__attribute__((noinline)) int record_rank() {
  asm volatile("");
  static std::atomic<int> next{0};
  thread_local const int rank = next.fetch_add(1, std::memory_order_relaxed);
  return rank;
}

void* spill_alloc(std::size_t bytes) {
  if (bytes <= kSpillSlabBytes) {
    if (SpillSlab* s = spill_pool().try_alloc(record_rank())) return s;
    return new SpillSlab();
  }
  return ::operator new(bytes);
}

void spill_free(void* p, std::size_t bytes) {
  if (bytes <= kSpillSlabBytes) {
    spill_pool().recycle(record_rank(), static_cast<SpillSlab*>(p));
    return;
  }
  ::operator delete(p);
}

void note_task_inline() {
  placement_slot().inline_count.fetch_add(1, std::memory_order_relaxed);
}

void note_task_alloc() {
  placement_slot().alloc_count.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t task_inline_count() {
  std::uint64_t sum = 0;
  for (const PlacementSlot& s : g_placement) {
    sum += s.inline_count.load(std::memory_order_relaxed);
  }
  return sum;
}

std::uint64_t task_alloc_count() {
  std::uint64_t sum = 0;
  for (const PlacementSlot& s : g_placement) {
    sum += s.alloc_count.load(std::memory_order_relaxed);
  }
  return sum;
}

}  // namespace detail

// ---- runtime selection ----------------------------------------------------

const char* kind_name(RuntimeKind k) {
  switch (k) {
    case RuntimeKind::gnu:
      return "gnu";
    case RuntimeKind::intel:
      return "intel";
    case RuntimeKind::glto_abt:
      return "glto-abt";
    case RuntimeKind::glto_qth:
      return "glto-qth";
    case RuntimeKind::glto_mth:
      return "glto-mth";
  }
  return "?";
}

std::optional<RuntimeKind> kind_from_string(std::string_view s) {
  if (s == "gnu" || s == "gcc" || s == "gomp") return RuntimeKind::gnu;
  if (s == "intel" || s == "icc" || s == "iomp") return RuntimeKind::intel;
  if (s == "glto-abt" || s == "abt") return RuntimeKind::glto_abt;
  if (s == "glto-qth" || s == "qth") return RuntimeKind::glto_qth;
  if (s == "glto-mth" || s == "mth") return RuntimeKind::glto_mth;
  return std::nullopt;
}

const std::vector<RuntimeKind>& all_kinds() {
  static const std::vector<RuntimeKind> kinds = {
      RuntimeKind::gnu, RuntimeKind::intel, RuntimeKind::glto_abt,
      RuntimeKind::glto_qth, RuntimeKind::glto_mth};
  return kinds;
}

void select(RuntimeKind kind, const SelectOptions& opts) {
  GLTO_CHECK_MSG(!g_runtime, "omp::select while a runtime is active");
  // Resolve the hardening + observability knobs before any scheduler
  // exists, so every worker loop sees a settled plan from its first
  // acquire.
  sched::chaos_init_from_env();
  sched::watchdog_init_from_env();
  sched::trace_init_from_env();
  sched::metrics_init_from_env();
  switch (kind) {
    case RuntimeKind::gnu:
    case RuntimeKind::intel: {
      pomp::PompOptions p;
      p.num_threads = opts.num_threads;
      p.nested = opts.nested;
      p.bind_threads = opts.bind_threads;
      p.active_wait = opts.active_wait;
      p.task_cutoff = opts.task_cutoff;
      g_runtime = kind == RuntimeKind::gnu ? pomp::make_gnu_runtime(p)
                                           : pomp::make_intel_runtime(p);
      break;
    }
    case RuntimeKind::glto_abt:
    case RuntimeKind::glto_qth:
    case RuntimeKind::glto_mth: {
      rt::GltoOptions g;
      g.impl = kind == RuntimeKind::glto_abt   ? glt::Impl::abt
               : kind == RuntimeKind::glto_qth ? glt::Impl::qth
                                               : glt::Impl::mth;
      g.num_threads = opts.num_threads;
      g.nested = opts.nested;
      g.bind_threads = opts.bind_threads;
      g.shared_queues = opts.shared_queues;
      g_runtime = rt::make_glto_runtime(g);
      break;
    }
  }
  g_kind = kind;
  parse_omp_schedule();
}

void select_from_env() {
  RuntimeKind kind = RuntimeKind::glto_abt;
  if (auto s = common::env_str("OMP_RUNTIME")) {
    if (auto k = kind_from_string(*s)) kind = *k;
  }
  SelectOptions opts;
  opts.nested = common::env_bool("OMP_NESTED", true);
  opts.active_wait =
      common::env_str("OMP_WAIT_POLICY").value_or("active") == "active";
  opts.shared_queues = common::env_bool("GLT_SHARED_QUEUES", false);
  select(kind, opts);
}


void shutdown() {
  GLTO_CHECK_MSG(g_runtime != nullptr, "omp::shutdown without select");
  g_runtime.reset();
  // The pomp runtimes never pass through glt::finalize, so flush here too
  // (benign rewrite when the glto runtimes already flushed).
  sched::trace_flush();
}

bool selected() { return g_runtime != nullptr; }

RuntimeKind current_kind() { return g_kind; }

Runtime& runtime() {
  GLTO_CHECK_MSG(g_runtime != nullptr, "no OpenMP runtime selected");
  return *g_runtime;
}

// ---- directives -----------------------------------------------------------

namespace {

// OMP_SCHEDULE for schedule(runtime); parsed at select() time.
Schedule g_env_sched = Schedule::Static;
std::int64_t g_env_chunk = 0;

void parse_omp_schedule() {
  g_env_sched = Schedule::Static;
  g_env_chunk = 0;
  auto s = common::env_str("OMP_SCHEDULE");
  if (!s) return;
  std::string v = *s;
  const auto comma = v.find(',');
  std::string kind = comma == std::string::npos ? v : v.substr(0, comma);
  if (comma != std::string::npos) {
    g_env_chunk = std::atoll(v.c_str() + comma + 1);
  }
  if (kind == "dynamic") {
    g_env_sched = Schedule::Dynamic;
  } else if (kind == "guided") {
    g_env_sched = Schedule::Guided;
  } else {
    g_env_sched = Schedule::Static;
  }
}

}  // namespace

namespace detail {

void resolve_schedule(Schedule* sched, std::int64_t* chunk) {
  if (*sched == Schedule::Auto) {
    *sched = Schedule::Static;
    *chunk = 0;
  } else if (*sched == Schedule::Runtime) {
    *sched = g_env_sched;
    *chunk = g_env_chunk;
  }
}

}  // namespace detail

void barrier() { runtime().barrier(); }

void task(std::function<void()> fn) {
  runtime().task(TaskDesc::make(std::move(fn)), {});
}

void task(std::function<void()> fn, const TaskFlags& flags) {
  runtime().task(TaskDesc::make(std::move(fn)), flags);
}

void task_bulk(TaskDesc* descs, std::size_t n, const TaskFlags& flags) {
  runtime().task_bulk(descs, n, flags);
}

void taskwait() { runtime().taskwait(); }

void taskyield() { runtime().taskyield(); }

bool cancel() { return runtime().cancel_taskgroup(); }

bool cancellation_point() { return runtime().cancellation_requested(); }

bool taskwait_for(std::chrono::microseconds timeout) {
  return runtime().taskwait_for_us(timeout.count());
}

TaskStats task_stats() {
  TaskStats s;
  static_cast<taskdep::Stats&>(s) = runtime().task_stats();
  s.task_inline = detail::task_inline_count();
  s.task_alloc = detail::task_alloc_count();
  return s;
}

// ---- queries ----------------------------------------------------------------

int thread_num() { return runtime().thread_num(); }
int num_threads() { return runtime().team_size(); }
int level() { return runtime().level(); }
int max_threads() { return runtime().default_threads(); }
void set_num_threads(int n) { runtime().set_default_threads(n); }
void set_nested(bool enabled) { runtime().set_nested(enabled); }

// ---- sections ---------------------------------------------------------------

void sections(const Section* blocks, std::size_t count) {
  // One member submits every block as a task in a single bulk spawn and
  // waits; the implicit barrier lets the rest of the team help drain them
  // (pthread runtimes execute queued tasks at barriers; GLTO deposits the
  // batch across its workers with targeted wakes). Replaces the dynamic
  // index loop, which paid one shared-counter grab — and, on GLTO, one
  // broadcast wake per spawned helper — per block.
  Runtime& rt = runtime();
  if (rt.single_try()) {
    constexpr std::size_t kWave = 64;
    TaskDesc wave[kWave];
    std::size_t done = 0;
    while (done < count) {
      const std::size_t take =
          count - done < kWave ? count - done : kWave;
      for (std::size_t i = 0; i < take; ++i) {
        const Section& s = blocks[done + i];
        wave[i] = TaskDesc::make([s] { s.fn(s.ctx); });
      }
      rt.task_bulk(wave, take, {});
      done += take;
    }
    rt.taskwait();
    rt.single_done();
  }
  rt.barrier();
}

void sections(const std::vector<std::function<void()>>& blocks) {
  std::vector<Section> descs;
  descs.reserve(blocks.size());
  for (const auto& b : blocks) descs.push_back(section_of(b));
  sections(descs.data(), descs.size());
}

// ---- deprecated v1 loop wrappers --------------------------------------------

void for_loop(std::int64_t lo, std::int64_t hi, Schedule sched,
              std::int64_t chunk,
              const std::function<void(std::int64_t, std::int64_t)>& body) {
  loop(lo, hi, LoopOpts{sched, chunk, 0}, body);
}

void parallel_for(std::int64_t lo, std::int64_t hi,
                  const std::function<void(std::int64_t)>& body) {
  par_for(lo, hi, body);
}

void parallel_for_ranges(
    std::int64_t lo, std::int64_t hi, Schedule sched, std::int64_t chunk,
    const std::function<void(std::int64_t, std::int64_t)>& body) {
  par_for(lo, hi, LoopOpts{sched, chunk, 0}, body);
}

// ---- locks ------------------------------------------------------------------

void Lock::set() { m_.lock(); }

bool Lock::test() { return m_.try_lock(); }

void Lock::unset() { m_.unlock(); }

void NestLock::set() {
  const void* self = runtime().task_identity();
  if (owner_.load(std::memory_order_acquire) == self) {
    depth_.fetch_add(1, std::memory_order_relaxed);  // re-entry by the owner
    return;
  }
  m_.lock();  // suspends while another task holds it
  owner_.store(self, std::memory_order_release);
  depth_.store(1, std::memory_order_relaxed);
}

bool NestLock::test() {
  const void* self = runtime().task_identity();
  if (owner_.load(std::memory_order_acquire) == self) {
    depth_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  if (!m_.try_lock()) return false;
  owner_.store(self, std::memory_order_release);
  depth_.store(1, std::memory_order_relaxed);
  return true;
}

void NestLock::unset() {
  if (depth_.fetch_sub(1, std::memory_order_relaxed) == 1) {
    owner_.store(nullptr, std::memory_order_release);
    m_.unlock();
  }
}

}  // namespace glto::omp
