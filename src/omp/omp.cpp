#include "omp/omp.hpp"

#include <atomic>
#include <memory>

#include "common/debug.hpp"
#include "common/env.hpp"
#include "glto/glto_runtime.hpp"
#include "pomp/pomp_runtime.hpp"

namespace glto::omp {

namespace {

std::unique_ptr<Runtime> g_runtime;
RuntimeKind g_kind = RuntimeKind::glto_abt;

void parse_omp_schedule();

}  // namespace

const char* kind_name(RuntimeKind k) {
  switch (k) {
    case RuntimeKind::gnu:
      return "gnu";
    case RuntimeKind::intel:
      return "intel";
    case RuntimeKind::glto_abt:
      return "glto-abt";
    case RuntimeKind::glto_qth:
      return "glto-qth";
    case RuntimeKind::glto_mth:
      return "glto-mth";
  }
  return "?";
}

std::optional<RuntimeKind> kind_from_string(std::string_view s) {
  if (s == "gnu" || s == "gcc" || s == "gomp") return RuntimeKind::gnu;
  if (s == "intel" || s == "icc" || s == "iomp") return RuntimeKind::intel;
  if (s == "glto-abt" || s == "abt") return RuntimeKind::glto_abt;
  if (s == "glto-qth" || s == "qth") return RuntimeKind::glto_qth;
  if (s == "glto-mth" || s == "mth") return RuntimeKind::glto_mth;
  return std::nullopt;
}

const std::vector<RuntimeKind>& all_kinds() {
  static const std::vector<RuntimeKind> kinds = {
      RuntimeKind::gnu, RuntimeKind::intel, RuntimeKind::glto_abt,
      RuntimeKind::glto_qth, RuntimeKind::glto_mth};
  return kinds;
}

void select(RuntimeKind kind, const SelectOptions& opts) {
  GLTO_CHECK_MSG(!g_runtime, "omp::select while a runtime is active");
  switch (kind) {
    case RuntimeKind::gnu:
    case RuntimeKind::intel: {
      pomp::PompOptions p;
      p.num_threads = opts.num_threads;
      p.nested = opts.nested;
      p.bind_threads = opts.bind_threads;
      p.active_wait = opts.active_wait;
      p.task_cutoff = opts.task_cutoff;
      g_runtime = kind == RuntimeKind::gnu ? pomp::make_gnu_runtime(p)
                                           : pomp::make_intel_runtime(p);
      break;
    }
    case RuntimeKind::glto_abt:
    case RuntimeKind::glto_qth:
    case RuntimeKind::glto_mth: {
      rt::GltoOptions g;
      g.impl = kind == RuntimeKind::glto_abt   ? glt::Impl::abt
               : kind == RuntimeKind::glto_qth ? glt::Impl::qth
                                               : glt::Impl::mth;
      g.num_threads = opts.num_threads;
      g.nested = opts.nested;
      g.bind_threads = opts.bind_threads;
      g.shared_queues = opts.shared_queues;
      g_runtime = rt::make_glto_runtime(g);
      break;
    }
  }
  g_kind = kind;
  parse_omp_schedule();
}

void select_from_env() {
  RuntimeKind kind = RuntimeKind::glto_abt;
  if (auto s = common::env_str("OMP_RUNTIME")) {
    if (auto k = kind_from_string(*s)) kind = *k;
  }
  SelectOptions opts;
  opts.nested = common::env_bool("OMP_NESTED", true);
  opts.active_wait =
      common::env_str("OMP_WAIT_POLICY").value_or("active") == "active";
  opts.shared_queues = common::env_bool("GLT_SHARED_QUEUES", false);
  select(kind, opts);
}


void shutdown() {
  GLTO_CHECK_MSG(g_runtime != nullptr, "omp::shutdown without select");
  g_runtime.reset();
}

bool selected() { return g_runtime != nullptr; }

RuntimeKind current_kind() { return g_kind; }

Runtime& runtime() {
  GLTO_CHECK_MSG(g_runtime != nullptr, "no OpenMP runtime selected");
  return *g_runtime;
}

// ---- directives -----------------------------------------------------------

void parallel(int num_threads, const std::function<void(int, int)>& body) {
  runtime().parallel(num_threads, body);
}

void parallel(const std::function<void(int, int)>& body) {
  runtime().parallel(0, body);
}

namespace {

// OMP_SCHEDULE for schedule(runtime); parsed at select() time.
Schedule g_env_sched = Schedule::Static;
std::int64_t g_env_chunk = 0;

void parse_omp_schedule() {
  g_env_sched = Schedule::Static;
  g_env_chunk = 0;
  auto s = common::env_str("OMP_SCHEDULE");
  if (!s) return;
  std::string v = *s;
  const auto comma = v.find(',');
  std::string kind = comma == std::string::npos ? v : v.substr(0, comma);
  if (comma != std::string::npos) {
    g_env_chunk = std::atoll(v.c_str() + comma + 1);
  }
  if (kind == "dynamic") {
    g_env_sched = Schedule::Dynamic;
  } else if (kind == "guided") {
    g_env_sched = Schedule::Guided;
  } else {
    g_env_sched = Schedule::Static;
  }
}

/// Resolves auto/runtime schedules to a concrete kind+chunk.
void resolve_schedule(Schedule* sched, std::int64_t* chunk) {
  if (*sched == Schedule::Auto) {
    *sched = Schedule::Static;
    *chunk = 0;
  } else if (*sched == Schedule::Runtime) {
    *sched = g_env_sched;
    *chunk = g_env_chunk;
  }
}

}  // namespace

void for_loop(std::int64_t lo, std::int64_t hi, Schedule sched,
              std::int64_t chunk,
              const std::function<void(std::int64_t, std::int64_t)>& body) {
  Runtime& rt = runtime();
  resolve_schedule(&sched, &chunk);
  rt.loop_begin(lo, hi, sched, chunk);
  std::int64_t b = 0, e = 0;
  while (rt.loop_next(&b, &e)) body(b, e);
  rt.loop_end();
}

void parallel_for(std::int64_t lo, std::int64_t hi,
                  const std::function<void(std::int64_t)>& body) {
  runtime().parallel(0, [&](int, int) {
    for_loop(lo, hi, Schedule::Static, 0,
             [&](std::int64_t b, std::int64_t e) {
               for (std::int64_t i = b; i < e; ++i) body(i);
             });
  });
}

void parallel_for_ranges(
    std::int64_t lo, std::int64_t hi, Schedule sched, std::int64_t chunk,
    const std::function<void(std::int64_t, std::int64_t)>& body) {
  runtime().parallel(0, [&](int, int) { for_loop(lo, hi, sched, chunk, body); });
}

void barrier() { runtime().barrier(); }

void single(const std::function<void()>& body) {
  Runtime& rt = runtime();
  if (rt.single_try()) {
    body();
    rt.single_done();
  }
  rt.barrier();  // implicit barrier at the end of single
}

void master(const std::function<void()>& body) {
  if (runtime().thread_num() == 0) body();
}

void critical(const std::function<void()>& body) {
  critical(nullptr, body);
}

void critical(const void* tag, const std::function<void()>& body) {
  Runtime& rt = runtime();
  rt.critical_enter(tag);
  body();
  rt.critical_exit(tag);
}

void task(std::function<void()> fn) { runtime().task(std::move(fn), {}); }

void task(std::function<void()> fn, const TaskFlags& flags) {
  runtime().task(std::move(fn), flags);
}

void taskwait() { runtime().taskwait(); }

void taskyield() { runtime().taskyield(); }

TaskStats task_stats() { return runtime().task_stats(); }

// ---- queries ----------------------------------------------------------------

int thread_num() { return runtime().thread_num(); }
int num_threads() { return runtime().team_size(); }
int level() { return runtime().level(); }
int max_threads() { return runtime().default_threads(); }
void set_num_threads(int n) { runtime().set_default_threads(n); }
void set_nested(bool enabled) { runtime().set_nested(enabled); }

double reduce_sum(std::int64_t lo, std::int64_t hi,
                  const std::function<double(std::int64_t)>& term) {
  Runtime& rt = runtime();
  std::atomic<double> total{0.0};
  rt.parallel(0, [&](int, int) {
    double local = 0.0;
    for_loop(lo, hi, Schedule::Static, 0,
             [&](std::int64_t b, std::int64_t e) {
               for (std::int64_t i = b; i < e; ++i) local += term(i);
             });
    // One atomic combine per member (what reduction(+:x) compiles to).
    double cur = total.load(std::memory_order_relaxed);
    while (!total.compare_exchange_weak(cur, cur + local,
                                        std::memory_order_relaxed)) {
    }
  });
  return total.load(std::memory_order_relaxed);
}

void sections(const std::vector<std::function<void()>>& blocks) {
  // Compiles to a dynamic loop over section indices (exactly how GCC
  // lowers #pragma omp sections), one block per grab, barrier after.
  Runtime& rt = runtime();
  for_loop(0, static_cast<std::int64_t>(blocks.size()), Schedule::Dynamic, 1,
           [&](std::int64_t b, std::int64_t e) {
             for (std::int64_t i = b; i < e; ++i) {
               blocks[static_cast<std::size_t>(i)]();
             }
           });
  rt.barrier();
}

void taskgroup(const std::function<void()>& body) {
  // Group-scoped wait: only tasks created inside the group are awaited
  // (grandchildren complete transitively — each task drains its own
  // children before finishing in both runtime families). Earlier siblings
  // keep running; the old taskwait fallback over-waited them.
  Runtime& rt = runtime();
  rt.taskgroup_begin();
  body();
  rt.taskgroup_end();
}

void Lock::set() {
  Runtime& rt = runtime();
  for (;;) {
    if (!locked_.exchange(true, std::memory_order_acquire)) return;
    while (locked_.load(std::memory_order_relaxed)) rt.yield_hint();
  }
}

bool Lock::test() {
  return !locked_.load(std::memory_order_relaxed) &&
         !locked_.exchange(true, std::memory_order_acquire);
}

void Lock::unset() { locked_.store(false, std::memory_order_release); }

void NestLock::set() {
  Runtime& rt = runtime();
  const void* self = rt.task_identity();
  for (;;) {
    const void* cur = owner_.load(std::memory_order_acquire);
    if (cur == self) {  // re-entry by the owning task
      depth_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    const void* expected = nullptr;
    if (cur == nullptr &&
        owner_.compare_exchange_weak(expected, self,
                                     std::memory_order_acquire)) {
      depth_.store(1, std::memory_order_relaxed);
      return;
    }
    rt.yield_hint();
  }
}

bool NestLock::test() {
  Runtime& rt = runtime();
  const void* self = rt.task_identity();
  const void* cur = owner_.load(std::memory_order_acquire);
  if (cur == self) {
    depth_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  const void* expected = nullptr;
  if (cur == nullptr && owner_.compare_exchange_strong(
                            expected, self, std::memory_order_acquire)) {
    depth_.store(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void NestLock::unset() {
  if (depth_.fetch_sub(1, std::memory_order_relaxed) == 1) {
    owner_.store(nullptr, std::memory_order_release);
  }
}

}  // namespace glto::omp
