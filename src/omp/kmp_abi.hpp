// kmp_abi — a compiler-facing entry-point layer modeled on the LLVM/Intel
// OpenMP runtime ABI (__kmpc_*), the interface GLTO inherits from BOLT.
//
// A compiler lowering `#pragma omp parallel for` emits calls like
// __kmpc_fork_call / __kmpc_for_static_init / __kmpc_barrier; this shim
// provides the same shapes (C linkage, outlined-function microtask,
// explicit gtid) over whichever runtime omp::select() activated. It is
// how pre-compiled object code would target this runtime without the C++
// facade.
//
// Entry points are prefixed glto_kmpc_ (we cannot ship the reserved
// __kmpc_ names next to a real libomp).
#pragma once

#include <cstddef>
#include <cstdint>

extern "C" {

/// Outlined parallel-region body: (gtid, tid, shared) — gtid is the
/// global thread id the runtime hands back, shared the captured frame.
using glto_kmpc_micro = void (*)(std::int32_t gtid, std::int32_t tid,
                                 void* shared);

/// __kmpc_fork_call: run @p fn on a team of the default size.
void glto_kmpc_fork_call(glto_kmpc_micro fn, void* shared);

/// __kmpc_push_num_threads + fork: explicit team size.
void glto_kmpc_fork_call_nt(std::int32_t num_threads, glto_kmpc_micro fn,
                            void* shared);

/// __kmpc_global_thread_num.
std::int32_t glto_kmpc_global_thread_num();

/// omp_get_num_threads via the ABI.
std::int32_t glto_kmpc_team_size();

/// __kmpc_for_static_init_8: computes this thread's [\*plower, \*pupper]
/// (inclusive) slice of [lower, upper]; \*pstride is the round-robin
/// stride for chunked static. Returns nonzero when the thread has work.
std::int32_t glto_kmpc_for_static_init(std::int64_t lower,
                                       std::int64_t upper,
                                       std::int64_t chunk,
                                       std::int64_t* plower,
                                       std::int64_t* pupper,
                                       std::int64_t* pstride);

/// __kmpc_dispatch_init_8 / __kmpc_dispatch_next_8 (dynamic schedule).
void glto_kmpc_dispatch_init(std::int64_t lower, std::int64_t upper,
                             std::int64_t chunk);
std::int32_t glto_kmpc_dispatch_next(std::int64_t* plower,
                                     std::int64_t* pupper);

/// __kmpc_barrier.
void glto_kmpc_barrier();

/// __kmpc_single / __kmpc_end_single. Returns nonzero for the winner.
std::int32_t glto_kmpc_single();
void glto_kmpc_end_single();

/// __kmpc_master (nonzero on thread 0; no barrier implied).
std::int32_t glto_kmpc_master();

/// __kmpc_critical / __kmpc_end_critical with a named lock slot.
void glto_kmpc_critical(void** lock_slot);
void glto_kmpc_end_critical(void** lock_slot);

/// __kmpc_omp_task_alloc + __kmpc_omp_task collapsed: defer fn(arg).
using glto_kmpc_task_fn = void (*)(void* arg);
void glto_kmpc_omp_task(glto_kmpc_task_fn fn, void* arg);

/// Bulk task spawn (taskloop-shaped lowering): defers fn(args[i]) for
/// i in [0, n) through the runtime's batch-spawn ABI — one scheduler
/// deposit + targeted per-worker wakeups instead of n submit+wake
/// round-trips. Semantically identical to n glto_kmpc_omp_task calls.
void glto_kmpc_omp_task_bulk(glto_kmpc_task_fn fn, void* const* args,
                             std::int32_t n);

/// __kmpc_omp_task_with_deps: defer fn(arg) ordered after the listed
/// dependences. @p flags follows the LLVM kmp_depend_info convention:
/// bit 0 = in, bit 1 = out (both set = inout; out alone orders the same).
struct glto_kmpc_depend_info {
  void* base_addr;
  std::size_t len;
  std::uint8_t flags;
};
void glto_kmpc_omp_task_with_deps(glto_kmpc_task_fn fn, void* arg,
                                  std::int32_t ndeps,
                                  const glto_kmpc_depend_info* dep_list);

/// __kmpc_omp_taskwait / __kmpc_omp_taskyield.
void glto_kmpc_omp_taskwait();
void glto_kmpc_omp_taskyield();

/// __kmpc_taskgroup / __kmpc_end_taskgroup: group-scoped task wait.
void glto_kmpc_taskgroup();
void glto_kmpc_end_taskgroup();

/// __kmpc_cancel / __kmpc_cancellationpoint. @p cncl_kind follows the
/// LLVM kmp_cancel_kind convention (parallel=1, loop=2, sections=3,
/// taskgroup=4); only taskgroup cancellation is supported here — other
/// kinds return 0 (construct proceeds), matching a runtime built without
/// OMP_CANCELLATION. glto_kmpc_cancel returns nonzero when cancellation
/// was activated; glto_kmpc_cancellationpoint returns nonzero when the
/// caller should branch to the end of its construct.
std::int32_t glto_kmpc_cancel(std::int32_t cncl_kind);
std::int32_t glto_kmpc_cancellationpoint(std::int32_t cncl_kind);

/// __kmpc_reduce-style combine: atomically adds @p val into @p target.
void glto_kmpc_atomic_add_f64(double* target, double val);
void glto_kmpc_atomic_add_i64(std::int64_t* target, std::int64_t val);

}  // extern "C"
