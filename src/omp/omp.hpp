// omp — the application-facing OpenMP-style API (v2).
//
// Applications (UTS, CloverLeaf-mini, CG, the microbenchmarks, examples)
// are written once against this facade and run unmodified over any of the
// five runtime configurations the paper compares:
//
//     gnu        — libgomp-like pthread runtime        ("GCC" bars)
//     intel      — Intel-like pthread runtime          ("ICC" bars)
//     glto-abt   — GLTO over the Argobots-like backend ("GLTO(ABT)")
//     glto-qth   — GLTO over the Qthreads-like backend ("GLTO(QTH)")
//     glto-mth   — GLTO over the MassiveThreads-like   ("GLTO(MTH)")
//
// This mirrors the paper's methodology (§IV-A, Fig. 2): identical OpenMP
// code, swappable runtime underneath. Select a runtime with omp::select()
// or $OMP_RUNTIME; tear it down with omp::shutdown() before selecting
// another.
//
// API v2 (zero-allocation task ABI — see docs/API.md for migration
// notes): task/loop entry points are templates that build omp::TaskDesc
// descriptors in place, so a task with a small trivially-copyable capture
// performs no heap allocation anywhere between the call site and the
// scheduler. Highlights:
//
//     omp::task(f, args...)                 — descriptor task, firstprivate args
//     omp::task_ret(f, args...)             — returns omp::future<T>
//     omp::par_for(lo, hi, {sched,grain,cutoff}, body)
//                                           — fork + grain-controlled loop + join
//     omp::loop(lo, hi, opts, body)         — work-shared loop inside parallel
//     omp::sections(f1, f2, ...)            — span-style section dispatch
//
// The v1 std::function overloads (task, for_loop, parallel_for,
// parallel_for_ranges, vector-based sections) remain as thin
// [[deprecated]] wrappers; in-tree code is fully migrated and CI builds
// with -Werror=deprecated-declarations.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/time.hpp"
#include "omp/runtime.hpp"
#include "sched/sync.hpp"
#include "sched/watchdog.hpp"

namespace glto::omp {

// ---- ULT-native synchronization -----------------------------------------
//
// Blocking primitives over the shared scheduling core (sched/sync.hpp),
// re-exported as the application-facing names. A waiter suspends for
// real — it parks on the primitive's wait list and the signaller
// re-deposits it through the core's targeted-wake path; no sleep
// quantum, no lost wakeups. On contexts that cannot suspend (the
// pthread runtimes, tasklets, foreign OS threads) the same calls
// degrade to a work-conserving OS-thread park. Payloads ship by
// descriptor (channel<T> requires trivially-copyable T) — no
// std::function anywhere on the signalling path.
using event = sched::Event;              ///< one-shot wait-queue event
using mutex = sched::Mutex;              ///< FIFO-handoff ULT mutex
using scoped_lock = sched::ScopedLock;   ///< RAII guard for omp::mutex
using condvar = sched::Condvar;          ///< condition variable over omp::mutex
template <class T>
using channel = sched::Channel<T>;       ///< bounded MPMC channel

/// The five runtime configurations of the paper's evaluation.
enum class RuntimeKind : std::uint8_t {
  gnu,
  intel,
  glto_abt,
  glto_qth,
  glto_mth,
};

[[nodiscard]] const char* kind_name(RuntimeKind k);
[[nodiscard]] std::optional<RuntimeKind> kind_from_string(std::string_view s);

/// All five kinds, in the paper's plotting order (GCC, ICC, ABT, QTH, MTH).
[[nodiscard]] const std::vector<RuntimeKind>& all_kinds();

struct SelectOptions {
  int num_threads = 0;        ///< 0 → $OMP_NUM_THREADS or hardware threads
  bool nested = true;         ///< paper sets OMP_NESTED=true for all tests
  bool bind_threads = true;   ///< OMP_PROC_BIND=true
  bool active_wait = true;    ///< OMP_WAIT_POLICY (pthread runtimes)
  bool shared_queues = false; ///< GLT_SHARED_QUEUES (GLTO)
  int task_cutoff = 256;      ///< Intel task-deque capacity (Fig. 14 knob)
};

/// Instantiates and activates a runtime. Any previously selected runtime
/// must have been shut down. Thread-affinity/binding is best-effort.
void select(RuntimeKind kind, const SelectOptions& opts = {});

/// Reads $OMP_RUNTIME (default "glto-abt") and selects it.
void select_from_env();

/// Tears the active runtime down. All parallel work must have completed.
void shutdown();

[[nodiscard]] bool selected();
[[nodiscard]] RuntimeKind current_kind();

/// The active runtime (asserts one is selected). Most code should prefer
/// the free functions below.
[[nodiscard]] Runtime& runtime();

namespace detail {
/// Resolves Auto/Runtime schedules to a concrete kind+chunk (Runtime
/// comes from $OMP_SCHEDULE, parsed at select() time). Defined in omp.cpp.
void resolve_schedule(Schedule* sched, std::int64_t* chunk);
}  // namespace detail

// ---- directives ---------------------------------------------------------

/// #pragma omp parallel num_threads(n) — @p body is any callable taking
/// (thread_num, team_size); it is invoked through a non-owning RegionBody
/// trampoline (the caller's frame outlives the fork/join).
template <class F,
          std::enable_if_t<std::is_invocable_v<F&, int, int>, int> = 0>
void parallel(int num_threads, F&& body) {
  runtime().parallel(num_threads, detail::region_of(body));
}

/// #pragma omp parallel (default team size)
template <class F,
          std::enable_if_t<std::is_invocable_v<F&, int, int>, int> = 0>
void parallel(F&& body) {
  runtime().parallel(0, detail::region_of(body));
}

/// Loop options for omp::par_for / omp::loop — schedule kind, grain
/// (chunk) size, and a serial cutoff.
struct LoopOpts {
  Schedule sched = Schedule::Static;
  /// Chunk granted per dispatch: schedule(sched, grain). 0 → per-schedule
  /// default (static: one balanced block per member; dynamic/guided: 1).
  std::int64_t grain = 0;
  /// par_for only: trip counts <= cutoff skip the fork entirely and run
  /// serial in the caller — the task-granularity control the paper's
  /// Fig. 14 cut-off study applies to loops.
  std::int64_t cutoff = 0;
};

namespace detail {
/// Dispatches one loop chunk to @p body, which may take a range
/// (int64 begin, int64 end) or a single index (int64 i).
template <class Body>
void invoke_chunk(Body& body, std::int64_t b, std::int64_t e) {
  if constexpr (std::is_invocable_v<Body&, std::int64_t, std::int64_t>) {
    body(b, e);
  } else {
    static_assert(std::is_invocable_v<Body&, std::int64_t>,
                  "loop body must take (int64) or (int64, int64)");
    for (std::int64_t i = b; i < e; ++i) body(i);
  }
}
}  // namespace detail

/// #pragma omp for schedule(...) — must be called inside parallel by every
/// team member; chunks [lo, hi) through the team's shared loop descriptor
/// and hands each grant straight to @p body (no type erasure, no implicit
/// barrier — call omp::barrier() if the next construct needs one).
template <class Body>
void loop(std::int64_t lo, std::int64_t hi, LoopOpts opts, Body&& body) {
  Runtime& rt = runtime();
  Schedule sched = opts.sched;
  std::int64_t chunk = opts.grain;
  detail::resolve_schedule(&sched, &chunk);
  rt.loop_begin(lo, hi, sched, chunk);
  std::int64_t b = 0, e = 0;
  while (rt.loop_next(&b, &e)) detail::invoke_chunk(body, b, e);
  rt.loop_end();
}

/// #pragma omp parallel for — fork + work-shared loop + join in one call.
/// Subsumes the v1 parallel_for / parallel_for_ranges pair: @p body takes
/// an index or a range, and opts carries schedule/grain/cutoff.
template <class Body>
void par_for(std::int64_t lo, std::int64_t hi, LoopOpts opts, Body&& body) {
  if (hi <= lo) return;
  if (opts.cutoff > 0 && hi - lo <= opts.cutoff) {
    detail::invoke_chunk(body, lo, hi);  // below cutoff: no fork at all
    return;
  }
  parallel([&](int, int) { loop(lo, hi, opts, body); });
}

template <class Body>
void par_for(std::int64_t lo, std::int64_t hi, Body&& body) {
  par_for(lo, hi, LoopOpts{}, std::forward<Body>(body));
}

/// #pragma omp barrier
void barrier();

/// #pragma omp single — runs @p body on one member; implicit barrier after.
template <class F, std::enable_if_t<std::is_invocable_v<F&>, int> = 0>
void single(F&& body) {
  Runtime& rt = runtime();
  if (rt.single_try()) {
    body();
    rt.single_done();
  }
  rt.barrier();  // implicit barrier at the end of single
}

/// #pragma omp master — runs on thread 0 only; no barrier.
template <class F, std::enable_if_t<std::is_invocable_v<F&>, int> = 0>
void master(F&& body) {
  if (runtime().thread_num() == 0) body();
}

/// #pragma omp critical [(tag)]
template <class F, std::enable_if_t<std::is_invocable_v<F&>, int> = 0>
void critical(const void* tag, F&& body) {
  Runtime& rt = runtime();
  rt.critical_enter(tag);
  body();
  rt.critical_exit(tag);
}

template <class F, std::enable_if_t<std::is_invocable_v<F&>, int> = 0>
void critical(F&& body) {
  critical(nullptr, std::forward<F>(body));
}

/// #pragma omp task — builds a TaskDesc in place: @p f plus decay-copied
/// @p args (firstprivate). Small trivially-copyable captures live inline
/// in the descriptor; task creation allocates nothing.
template <class F, class... Args,
          std::enable_if_t<
              std::is_invocable_v<std::decay_t<F>&, std::decay_t<Args>&...>,
              int> = 0>
void task(F&& f, Args&&... args) {
  runtime().task(
      TaskDesc::make(std::forward<F>(f), std::forward<Args>(args)...), {});
}

/// #pragma omp task with clauses (untied/final/if/depend).
template <class F,
          std::enable_if_t<std::is_invocable_v<std::decay_t<F>&>, int> = 0>
void task(F&& f, const TaskFlags& flags) {
  runtime().task(TaskDesc::make(std::forward<F>(f)), flags);
}

/// v1 compatibility: a std::function forces a heap-spilled descriptor.
[[deprecated(
    "omp::task takes any callable directly now; passing std::function "
    "boxes the capture and spills the descriptor payload")]]
void task(std::function<void()> fn);
[[deprecated(
    "omp::task takes any callable directly now; passing std::function "
    "boxes the capture and spills the descriptor payload")]]
void task(std::function<void()> fn, const TaskFlags& flags);

/// Batch spawn (the bulk half of the task ABI): moves @p n prebuilt
/// descriptors into the runtime in ONE virtual call — semantically n
/// omp::task calls, but GLTO deposits the whole burst into its scheduler
/// with one queue publication + one targeted wakeup per GLT_thread
/// instead of n submit+wake round-trips. The descriptors are consumed.
void task_bulk(TaskDesc* descs, std::size_t n, const TaskFlags& flags = {});

// ---- value-returning tasks: omp::future<T> ------------------------------

namespace detail {

template <class T>
struct FutureState {
  std::atomic<int> refs{2};  ///< the future + the task closure
  std::atomic<bool> done{false};
  sched::Event done_ev;  ///< set after `done`; ULT waiters park on this
  std::exception_ptr error{};
  bool has_value = false;
  alignas(T) unsigned char storage[sizeof(T)];

  [[nodiscard]] T* value_ptr() { return reinterpret_cast<T*>(storage); }
  ~FutureState() {
    if (has_value) value_ptr()->~T();
  }
  static void unref(FutureState* s) {
    if (s->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) delete s;
  }
};

template <>
struct FutureState<void> {
  std::atomic<int> refs{2};
  std::atomic<bool> done{false};
  sched::Event done_ev;
  std::exception_ptr error{};
  static void unref(FutureState* s) {
    if (s->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) delete s;
  }
};

}  // namespace detail

/// Outcome of a timed wait (future::wait_for / wait_until): the deadline
/// is a first-class result, not a hang.
enum class FutureStatus : std::uint8_t { ready, timeout };

/// Handle to the result of an omp::task_ret task. Completion is observed
/// by polling the runtime's scheduling machinery: wait() yields the
/// calling ULT (GLTO) or runs queued tasks in place (pthread runtimes) —
/// the same cooperative progress rule as taskwait, but for one task.
/// Exceptions thrown by the task body are transported and rethrown from
/// get(). Move-only; get() consumes the handle.
template <class T>
class future {
 public:
  future() = default;
  explicit future(detail::FutureState<T>* st) : st_(st) {}
  future(const future&) = delete;
  future& operator=(const future&) = delete;
  future(future&& o) noexcept : st_(o.st_) { o.st_ = nullptr; }
  future& operator=(future&& o) noexcept {
    if (this != &o) {
      reset();
      st_ = o.st_;
      o.st_ = nullptr;
    }
    return *this;
  }
  ~future() { reset(); }

  [[nodiscard]] bool valid() const { return st_ != nullptr; }

  /// Non-blocking completion poll (the FEB/is_done shape of the GLT layer).
  [[nodiscard]] bool is_done() const {
    return st_ != nullptr && st_->done.load(std::memory_order_acquire);
  }

  /// Blocks until the task completed. On a ULT this is a true suspension:
  /// the waiter parks on the state's event and the completing task hands
  /// it straight back to a worker deque — no sleep quantum. Contexts that
  /// cannot suspend (the pthread runtimes, foreign threads) keep the
  /// cooperative polling rule: taskyield between probes, so the runtimes
  /// that must drain their own queues while waiting still do. Safe to
  /// call before or after completion; the handle stays valid for get().
  void wait() {
    if (st_ == nullptr) return;  // moved-from / consumed: nothing to wait on
    if (st_->done.load(std::memory_order_acquire)) return;
    if (sched::current_suspend_ops() != nullptr) {
      st_->done_ev.wait();
      return;
    }
    sched::watchdog_enter_wait();
    while (!st_->done.load(std::memory_order_acquire)) {
      if (selected()) {
        Runtime& rt = runtime();
        rt.taskyield();
        // taskyield on the pthread runtimes only runs a queued task when
        // one exists — it has no backoff of its own. The polite wait
        // hint honours the configured wait policy, so an empty-queue
        // spin doesn't run hot and starve the member executing the task
        // on oversubscribed hosts.
        rt.yield_hint();
      } else {
        std::this_thread::yield();
      }
    }
    sched::watchdog_exit_wait();
  }

  /// Timed wait over sched::wait_until, bounded by an absolute deadline.
  /// Returns FutureStatus::ready when the task completed,
  /// FutureStatus::timeout once @p deadline passed with the task still
  /// running — the handle stays valid either way (the task keeps running
  /// after a timeout; wait()/get() can still join it). An empty handle
  /// reports ready: there is nothing left to wait on.
  FutureStatus wait_until(std::chrono::steady_clock::time_point deadline) {
    if (st_ == nullptr) return FutureStatus::ready;
    if (st_->done.load(std::memory_order_acquire)) return FutureStatus::ready;
    const auto left = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          deadline - std::chrono::steady_clock::now())
                          .count();
    const bool ready = sched::wait_until(
        [this] {
          if (st_->done.load(std::memory_order_acquire)) return true;
          // Keep the pthread runtimes draining their queues between
          // steps (on GLTO this is one extra cooperative yield).
          if (selected()) runtime().taskyield();
          return st_->done.load(std::memory_order_acquire);
        },
        common::now_ns() + (left > 0 ? left : 0));
    return ready ? FutureStatus::ready : FutureStatus::timeout;
  }

  /// Relative-timeout form of wait_until.
  FutureStatus wait_for(std::chrono::microseconds timeout) {
    return wait_until(std::chrono::steady_clock::now() + timeout);
  }

  /// Waits, then returns the task's value (or rethrows its exception).
  /// Consumes the handle: valid() is false afterwards; a second get()
  /// (or get() on a moved-from handle) throws instead of crashing.
  T get() {
    if (st_ == nullptr) {
      throw std::logic_error("omp::future::get on an empty handle");
    }
    wait();
    detail::FutureState<T>* st = st_;
    st_ = nullptr;
    struct Unref {
      detail::FutureState<T>* s;
      ~Unref() { detail::FutureState<T>::unref(s); }
    } guard{st};
    if (st->error) std::rethrow_exception(st->error);
    if constexpr (!std::is_void_v<T>) {
      return std::move(*st->value_ptr());
    }
  }

 private:
  void reset() {
    if (st_ != nullptr) {
      detail::FutureState<T>::unref(st_);
      st_ = nullptr;
    }
  }
  detail::FutureState<T>* st_ = nullptr;
};

/// #pragma omp task with a result: runs f(args...) as a task and returns
/// a future for its value. The shared state is one small allocation; the
/// descriptor itself follows the usual inline/spill rule.
template <class F, class... Args>
[[nodiscard]] auto task_ret(F&& f, Args&&... args)
    -> future<std::invoke_result_t<std::decay_t<F>&, std::decay_t<Args>&...>> {
  using R = std::invoke_result_t<std::decay_t<F>&, std::decay_t<Args>&...>;
  auto* st = new detail::FutureState<R>();
  task([st, fn = std::decay_t<F>(std::forward<F>(f)),
        tup = std::tuple<std::decay_t<Args>...>(
            std::forward<Args>(args)...)]() mutable {
    try {
      if constexpr (std::is_void_v<R>) {
        std::apply(fn, tup);
      } else {
        ::new (static_cast<void*>(st->storage)) R(std::apply(fn, tup));
        st->has_value = true;
      }
    } catch (...) {
      st->error = std::current_exception();
    }
    st->done.store(true, std::memory_order_release);
    // Wake a parked waiter. Set before unref: the waiter's handle holds
    // the other reference, so the state outlives this set() either way.
    st->done_ev.set();
    detail::FutureState<R>::unref(st);
  });
  return future<R>(st);
}

/// depend-clause builders for TaskFlags::depend. The pointer is the
/// OpenMP "list item": pass an object's address (size defaults to one
/// byte — the handle idiom tiled codes use) or an explicit byte range;
/// overlapping ranges conflict.
[[nodiscard]] inline taskdep::Dep dep_in(const void* p, std::size_t size = 0) {
  return {p, size, taskdep::DepKind::in};
}
[[nodiscard]] inline taskdep::Dep dep_out(const void* p,
                                          std::size_t size = 0) {
  return {p, size, taskdep::DepKind::out};
}
[[nodiscard]] inline taskdep::Dep dep_inout(const void* p,
                                            std::size_t size = 0) {
  return {p, size, taskdep::DepKind::inout};
}

/// #pragma omp taskwait / taskyield
void taskwait();
void taskyield();

// ---- cancellation & deadlines -------------------------------------------

/// #pragma omp cancel taskgroup — marks the calling task's innermost
/// enclosing taskgroup cancelled: member tasks that have not started yet
/// skip their body; bodies already running finish normally; the group's
/// end still joins everything. Returns false when there is no enclosing
/// taskgroup or the runtime has no cancellation support (then a no-op).
bool cancel();

/// #pragma omp cancellation point taskgroup — true when the calling
/// task's taskgroup has been cancelled; long-running bodies poll this and
/// unwind early.
[[nodiscard]] bool cancellation_point();

/// Deadline form of taskwait: waits for the calling task's children for
/// at most @p timeout. True → join completed; false → timeout (the
/// children keep running and remain joined by the next taskwait or
/// region end — a timed-out wait never detaches anything).
bool taskwait_for(std::chrono::microseconds timeout);

/// #pragma omp taskgroup with a deadline: runs @p body, then waits at
/// most @p timeout for the group's tasks. On expiry the group is
/// cancelled — not-yet-started members skip their body — and then drained
/// to completion, so the scope closes consistently either way. Returns
/// true when the group finished inside the deadline, false when it had to
/// be cancelled.
template <class F, std::enable_if_t<std::is_invocable_v<F&>, int> = 0>
bool taskgroup_with_deadline(std::chrono::microseconds timeout, F&& body) {
  Runtime& rt = runtime();
  rt.taskgroup_begin();
  body();
  if (rt.taskgroup_end_for_us(timeout.count())) return true;
  rt.cancel_taskgroup();
  rt.taskgroup_end();
  return false;
}

/// #pragma omp taskloop grainsize(g) — carves [lo, hi) into ⌈n/g⌉ chunk
/// tasks, submits them as ONE bulk spawn (omp::task_bulk), then waits for
/// them. Unlike par_for (fork + work-shared loop) this runs inside the
/// CURRENT team — from a single/master producer the chunks fan out across
/// the team's workers through the bulk-deposit path, one publication +
/// one targeted wake per victim. @p body takes (int64 i) or a range
/// (int64 begin, int64 end); @p grain <= 0 defaults to 1.
template <class Body>
void taskloop(std::int64_t lo, std::int64_t hi, std::int64_t grain,
              Body&& body) {
  if (hi <= lo) return;
  const std::int64_t g = grain > 0 ? grain : 1;
  const auto nchunks = static_cast<std::size_t>((hi - lo + g - 1) / g);
  std::vector<TaskDesc> descs;
  descs.reserve(nchunks);
  // One shared copy of the body; the per-chunk captures stay at 24 bytes
  // (pointer + bounds) so every chunk descriptor is inline-payload.
  auto chunk_body = std::decay_t<Body>(std::forward<Body>(body));
  for (std::int64_t b = lo; b < hi; b += g) {
    const std::int64_t e = b + g < hi ? b + g : hi;
    descs.push_back(TaskDesc::make(
        [&chunk_body, b, e] { detail::invoke_chunk(chunk_body, b, e); }));
  }
  task_bulk(descs.data(), descs.size());
  taskwait();
}

/// Dependency-engine + descriptor-placement counters of the active
/// runtime. task_inline/task_alloc are process-wide monotonic (they count
/// descriptor construction in the facade, above any one runtime) — take
/// deltas around the region of interest.
[[nodiscard]] TaskStats task_stats();

// ---- queries (omp_* library routines) -----------------------------------

[[nodiscard]] int thread_num();     ///< omp_get_thread_num
[[nodiscard]] int num_threads();    ///< omp_get_num_threads
[[nodiscard]] int level();          ///< omp_get_level
[[nodiscard]] int max_threads();    ///< omp_get_max_threads
void set_num_threads(int n);        ///< omp_set_num_threads
void set_nested(bool enabled);      ///< omp_set_nested

/// Parallel sum-reduction helper (the pattern `reduction(+:acc)` expands
/// to): each member accumulates privately; master receives the total.
template <class F,
          std::enable_if_t<std::is_invocable_v<F&, std::int64_t>, int> = 0>
double reduce_sum(std::int64_t lo, std::int64_t hi, F&& term) {
  std::atomic<double> total{0.0};
  parallel([&](int, int) {
    double local = 0.0;
    loop(lo, hi, LoopOpts{},
         [&](std::int64_t b, std::int64_t e) {
           for (std::int64_t i = b; i < e; ++i) local += term(i);
         });
    // One atomic combine per member (what reduction(+:x) compiles to).
    double cur = total.load(std::memory_order_relaxed);
    while (!total.compare_exchange_weak(cur, cur + local,
                                        std::memory_order_relaxed)) {
    }
  });
  return total.load(std::memory_order_relaxed);
}

// ---- sections -----------------------------------------------------------

/// One section block: a non-owning descriptor (the callable outlives the
/// sections call). Build with omp::section_of or the variadic overload.
struct Section {
  void (*fn)(void*) = nullptr;
  void* ctx = nullptr;
};

/// Wraps a caller-owned callable (lvalue) as a Section.
template <class F>
[[nodiscard]] Section section_of(F& f) {
  return Section{[](void* p) { (*static_cast<F*>(p))(); },
                 const_cast<void*>(static_cast<const void*>(std::addressof(f)))};
}

/// #pragma omp sections — distributes @p count blocks over the team
/// (dynamic dispatch, one block per grab); implicit barrier after. The
/// span form: callers keep the blocks in any contiguous storage.
void sections(const Section* blocks, std::size_t count);

/// Variadic form: each argument is one section block.
template <class... Fs,
          std::enable_if_t<(sizeof...(Fs) > 0) &&
                               (std::is_invocable_v<Fs&> && ...),
                           int> = 0>
void sections(Fs&&... blocks) {
  const Section arr[] = {section_of(blocks)...};
  sections(arr, sizeof...(Fs));
}

/// v1 compatibility: copies nothing anymore (takes the vector by const
/// reference), but still routes every block through a std::function.
[[deprecated("use omp::sections(f1, f2, ...) or the Section-span overload")]]
void sections(const std::vector<std::function<void()>>& blocks);

/// #pragma omp taskgroup — runs @p body, then waits for the tasks the
/// current task created *inside the group* (descendants complete
/// transitively — see the runtime docs). Tasks created before the group —
/// e.g. by an enclosing depend task — are NOT waited for.
template <class F, std::enable_if_t<std::is_invocable_v<F&>, int> = 0>
void taskgroup(F&& body) {
  // Group-scoped wait: only tasks created inside the group are awaited
  // (grandchildren complete transitively — each task drains its own
  // children before finishing in both runtime families).
  Runtime& rt = runtime();
  rt.taskgroup_begin();
  body();
  rt.taskgroup_end();
}

// ---- deprecated v1 loop surface -----------------------------------------

[[deprecated("use omp::loop(lo, hi, {sched, grain}, body)")]]
void for_loop(std::int64_t lo, std::int64_t hi, Schedule sched,
              std::int64_t chunk,
              const std::function<void(std::int64_t, std::int64_t)>& body);

[[deprecated("use omp::par_for(lo, hi, body)")]]
void parallel_for(std::int64_t lo, std::int64_t hi,
                  const std::function<void(std::int64_t)>& body);

[[deprecated("use omp::par_for(lo, hi, {sched, grain}, body)")]]
void parallel_for_ranges(
    std::int64_t lo, std::int64_t hi, Schedule sched, std::int64_t chunk,
    const std::function<void(std::int64_t, std::int64_t)>& body);

// ---- locks (omp_lock_t / omp_nest_lock_t) -------------------------------

/// omp_lock_t over sched::Mutex: a contended set() suspends the calling
/// ULT (FIFO handoff on unset — no barging); on the pthread runtimes the
/// OS thread parks, matching omp_set_lock semantics there.
class Lock {
 public:
  Lock() = default;
  Lock(const Lock&) = delete;
  Lock& operator=(const Lock&) = delete;

  void set();                  ///< omp_set_lock (blocks)
  [[nodiscard]] bool test();   ///< omp_test_lock (non-blocking)
  void unset();                ///< omp_unset_lock

 private:
  sched::Mutex m_;
};

/// omp_nest_lock_t: re-acquirable by the task that owns it. Ownership is
/// the runtime's task identity; the underlying mutex is held from the
/// first set() to the matching last unset().
class NestLock {
 public:
  NestLock() = default;
  NestLock(const NestLock&) = delete;
  NestLock& operator=(const NestLock&) = delete;

  void set();
  [[nodiscard]] bool test();
  void unset();
  [[nodiscard]] int depth() const {
    return depth_.load(std::memory_order_relaxed);
  }

 private:
  sched::Mutex m_;
  std::atomic<const void*> owner_{nullptr};
  std::atomic<int> depth_{0};
};

}  // namespace glto::omp
