// omp — the application-facing OpenMP-style API.
//
// Applications (UTS, CloverLeaf-mini, CG, the microbenchmarks, examples)
// are written once against this facade and run unmodified over any of the
// five runtime configurations the paper compares:
//
//     gnu        — libgomp-like pthread runtime        ("GCC" bars)
//     intel      — Intel-like pthread runtime          ("ICC" bars)
//     glto-abt   — GLTO over the Argobots-like backend ("GLTO(ABT)")
//     glto-qth   — GLTO over the Qthreads-like backend ("GLTO(QTH)")
//     glto-mth   — GLTO over the MassiveThreads-like   ("GLTO(MTH)")
//
// This mirrors the paper's methodology (§IV-A, Fig. 2): identical OpenMP
// code, swappable runtime underneath. Select a runtime with omp::select()
// or $OMP_RUNTIME; tear it down with omp::shutdown() before selecting
// another.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "omp/runtime.hpp"

namespace glto::omp {

/// The five runtime configurations of the paper's evaluation.
enum class RuntimeKind : std::uint8_t {
  gnu,
  intel,
  glto_abt,
  glto_qth,
  glto_mth,
};

[[nodiscard]] const char* kind_name(RuntimeKind k);
[[nodiscard]] std::optional<RuntimeKind> kind_from_string(std::string_view s);

/// All five kinds, in the paper's plotting order (GCC, ICC, ABT, QTH, MTH).
[[nodiscard]] const std::vector<RuntimeKind>& all_kinds();

struct SelectOptions {
  int num_threads = 0;        ///< 0 → $OMP_NUM_THREADS or hardware threads
  bool nested = true;         ///< paper sets OMP_NESTED=true for all tests
  bool bind_threads = true;   ///< OMP_PROC_BIND=true
  bool active_wait = true;    ///< OMP_WAIT_POLICY (pthread runtimes)
  bool shared_queues = false; ///< GLT_SHARED_QUEUES (GLTO)
  int task_cutoff = 256;      ///< Intel task-deque capacity (Fig. 14 knob)
};

/// Instantiates and activates a runtime. Any previously selected runtime
/// must have been shut down. Thread-affinity/binding is best-effort.
void select(RuntimeKind kind, const SelectOptions& opts = {});

/// Reads $OMP_RUNTIME (default "glto-abt") and selects it.
void select_from_env();

/// Tears the active runtime down. All parallel work must have completed.
void shutdown();

[[nodiscard]] bool selected();
[[nodiscard]] RuntimeKind current_kind();

/// The active runtime (asserts one is selected). Most code should prefer
/// the free functions below.
[[nodiscard]] Runtime& runtime();

// ---- directives ---------------------------------------------------------

/// #pragma omp parallel num_threads(n)
void parallel(int num_threads, const std::function<void(int, int)>& body);

/// #pragma omp parallel (default team size)
void parallel(const std::function<void(int, int)>& body);

/// #pragma omp for schedule(...) — must be called inside parallel by every
/// team member; iterates @p body over chunks. No implicit barrier.
void for_loop(std::int64_t lo, std::int64_t hi, Schedule sched,
              std::int64_t chunk,
              const std::function<void(std::int64_t, std::int64_t)>& body);

/// #pragma omp parallel for — fork + static loop + join in one call.
void parallel_for(std::int64_t lo, std::int64_t hi,
                  const std::function<void(std::int64_t)>& body);

/// parallel_for with explicit schedule/chunk and a range body.
void parallel_for_ranges(
    std::int64_t lo, std::int64_t hi, Schedule sched, std::int64_t chunk,
    const std::function<void(std::int64_t, std::int64_t)>& body);

/// #pragma omp barrier
void barrier();

/// #pragma omp single — runs @p body on one member; implicit barrier after.
void single(const std::function<void()>& body);

/// #pragma omp master — runs on thread 0 only; no barrier.
void master(const std::function<void()>& body);

/// #pragma omp critical [(tag)]
void critical(const std::function<void()>& body);
void critical(const void* tag, const std::function<void()>& body);

/// #pragma omp task
void task(std::function<void()> fn);
void task(std::function<void()> fn, const TaskFlags& flags);

/// depend-clause builders for TaskFlags::depend. The pointer is the
/// OpenMP "list item": pass an object's address (size defaults to one
/// byte — the handle idiom tiled codes use) or an explicit byte range;
/// overlapping ranges conflict.
[[nodiscard]] inline taskdep::Dep dep_in(const void* p, std::size_t size = 0) {
  return {p, size, taskdep::DepKind::in};
}
[[nodiscard]] inline taskdep::Dep dep_out(const void* p,
                                          std::size_t size = 0) {
  return {p, size, taskdep::DepKind::out};
}
[[nodiscard]] inline taskdep::Dep dep_inout(const void* p,
                                            std::size_t size = 0) {
  return {p, size, taskdep::DepKind::inout};
}

/// #pragma omp taskwait / taskyield
void taskwait();
void taskyield();

/// Dependency-engine counters of the active runtime.
[[nodiscard]] TaskStats task_stats();

// ---- queries (omp_* library routines) -----------------------------------

[[nodiscard]] int thread_num();     ///< omp_get_thread_num
[[nodiscard]] int num_threads();    ///< omp_get_num_threads
[[nodiscard]] int level();          ///< omp_get_level
[[nodiscard]] int max_threads();    ///< omp_get_max_threads
void set_num_threads(int n);        ///< omp_set_num_threads
void set_nested(bool enabled);      ///< omp_set_nested

/// Parallel sum-reduction helper (the pattern `reduction(+:acc)` expands
/// to): each member accumulates privately; master receives the total.
double reduce_sum(std::int64_t lo, std::int64_t hi,
                  const std::function<double(std::int64_t)>& term);

/// #pragma omp sections — distributes the given blocks over the team
/// (dynamic dispatch, one block per grab); implicit barrier after.
void sections(const std::vector<std::function<void()>>& blocks);

/// #pragma omp taskgroup — runs @p body, then waits for the tasks the
/// current task created *inside the group* (descendants complete
/// transitively — see the runtime docs). Tasks created before the group —
/// e.g. by an enclosing depend task — are NOT waited for.
void taskgroup(const std::function<void()>& body);

// ---- locks (omp_lock_t / omp_nest_lock_t) -------------------------------

/// omp_lock_t. Spin-acquires with runtime-appropriate waiting: ULTs yield
/// to their scheduler, pthreads yield the core.
class Lock {
 public:
  Lock() = default;
  Lock(const Lock&) = delete;
  Lock& operator=(const Lock&) = delete;

  void set();                  ///< omp_set_lock (blocks)
  [[nodiscard]] bool test();   ///< omp_test_lock (non-blocking)
  void unset();                ///< omp_unset_lock

 private:
  std::atomic<bool> locked_{false};
};

/// omp_nest_lock_t: re-acquirable by the task that owns it.
class NestLock {
 public:
  NestLock() = default;
  NestLock(const NestLock&) = delete;
  NestLock& operator=(const NestLock&) = delete;

  void set();
  [[nodiscard]] bool test();
  void unset();
  [[nodiscard]] int depth() const {
    return depth_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<const void*> owner_{nullptr};
  std::atomic<int> depth_{0};
};

}  // namespace glto::omp
