// Internal task-machinery pieces shared by the runtime implementations
// (glto_runtime.cpp and pomp_runtime.cpp). Not part of the public facade.
#pragma once

#include <atomic>
#include <cstdint>

#include "sched/sync.hpp"

namespace glto::omp::detail {

/// One taskgroup instance. Counts the unfinished tasks its owning task
/// created inside the group — and only those — so taskgroup_end never
/// over-waits earlier siblings (the transitive-join deviation exposure:
/// a taskgroup nested in a depend task must not wait the depend task's
/// pre-group children). Lives on the taskgroup frame; end waits the latch
/// to reach zero before popping it, so tasks never outlive their scope.
///
/// The count lives in a CompletionLatch: GLTO's taskgroup_end blocks on
/// it outright (the waiter ULT parks, the last finishing member wakes it
/// through the core), while the pthread runtimes keep their helping loops
/// and poll try_wait() between help-run steps. A task's add(1) is ordered
/// before its creator's own count_down, so the count cannot hit zero
/// while group work remains.
struct TgScope {
  sched::CompletionLatch latch;
  TgScope* parent = nullptr;
  /// omp::cancel(): set once, checked by every group member task right
  /// before its body runs. A cancelled group still *joins* everything —
  /// in-flight bodies finish, not-yet-started members skip their body but
  /// keep the full completion bookkeeping (dep release, child join,
  /// pending decrement), so taskgroup_end's wait terminates normally.
  std::atomic<bool> cancelled{false};
};

/// True when @p g or any enclosing taskgroup has been cancelled. Walks the
/// scope chain — cancellation of an outer group reaches tasks spawned in
/// nested groups, mirroring OpenMP's innermost-enclosing-region rule.
[[nodiscard]] inline bool tg_cancelled(const TgScope* g) {
  for (; g != nullptr; g = g->parent) {
    if (g->cancelled.load(std::memory_order_acquire)) return true;
  }
  return false;
}

/// Discriminated payload header for the dependency engine's ready
/// callback: deferred tasks get scheduled (runtime-specific), undeferred
/// tasks with deps open an inline gate.
struct DepPayload {
  enum class Kind : std::uint8_t { spawn, gate } kind;
};

/// Gate an undeferred (if(false)/final) task with deps waits on inline.
/// GLTO waiters block on the event (true suspension); the pthread
/// runtimes poll is_set_locked() between help-run steps. The gate is
/// stack-resident and dies the moment the waiter sees it open, so every
/// observation that unblocks the waiter must be a locked one (see the
/// Event destruction protocol) — never gate on the racy is_set().
struct ReadyGate : DepPayload {
  ReadyGate() : DepPayload{Kind::gate} {}
  sched::Event ready;
};

/// Per-worker capacity of the task-record freelists (TaskArg/TaskRec
/// recycling in the runtimes and the descriptor spill-slab pool). OS
/// threads beyond this many distinct ranks fall back to the freelists'
/// locked shared slab — correct, just not lock-free.
inline constexpr int kRecordPoolWorkers = 64;

/// Process-wide small integer rank of the calling OS thread, handed out
/// on first use. Indexes the owner-only per-worker lists of the record
/// freelists: unlike a team-relative tid it is unique across concurrent
/// teams and runtime instances, so two threads never share a lock-free
/// list. Monotonic — a process that churns through more than
/// kRecordPoolWorkers OS threads pushes later threads onto the locked
/// slab path.
///
/// Defined out-of-line (omp.cpp) behind a noinline + compiler barrier:
/// the free paths call it AFTER a task body ran — i.e. after a possible
/// ULT suspension and OS-thread migration — where an inlined, cached
/// thread_local read from before the context switch would hand back the
/// pre-migration thread's rank and let two OS threads mutate one
/// owner-only freelist (the stale-TLS hazard abt::tls_now documents).
[[nodiscard]] int record_rank();

}  // namespace glto::omp::detail
