// Internal task-machinery pieces shared by the runtime implementations
// (glto_runtime.cpp and pomp_runtime.cpp). Not part of the public facade.
#pragma once

#include <atomic>
#include <cstdint>

namespace glto::omp::detail {

/// One taskgroup instance. Counts the unfinished tasks its owning task
/// created inside the group — and only those — so taskgroup_end never
/// over-waits earlier siblings (the transitive-join deviation exposure:
/// a taskgroup nested in a depend task must not wait the depend task's
/// pre-group children). Lives on the taskgroup frame; end waits pending
/// to reach zero before popping it, so tasks never outlive their scope.
struct TgScope {
  std::atomic<std::int64_t> pending{0};
  TgScope* parent = nullptr;
};

/// Discriminated payload header for the dependency engine's ready
/// callback: deferred tasks get scheduled (runtime-specific), undeferred
/// tasks with deps open an inline gate.
struct DepPayload {
  enum class Kind : std::uint8_t { spawn, gate } kind;
};

/// Gate an undeferred (if(false)/final) task with deps waits on inline.
struct ReadyGate : DepPayload {
  ReadyGate() : DepPayload{Kind::gate} {}
  std::atomic<bool> open{false};
};

}  // namespace glto::omp::detail
