// omp::TaskDesc — the zero-allocation task descriptor, the only currency
// that crosses the Runtime virtual ABI (task ABI v2).
//
// The paper's thesis is that lightweight-thread OpenMP wins or loses on
// per-task overhead, yet the v1 facade paid a type-erased
// std::function<void()> (heap for any capture beyond the SSO buffer) plus
// a heap task record on *every* omp::task. A TaskDesc is a trampoline
// `void(*)(void*)` plus a cache-line-sized inline payload buffer: any
// trivially-copyable capture of up to kInlineBytes is stored in place and
// the whole descriptor moves by memcpy — task creation performs **zero
// heap allocations**. Captures that don't fit (or aren't trivially
// copyable, e.g. a boxed std::function from the deprecated v1 overloads)
// spill to a fixed-size slab recycled through a sched::Freelist; only
// captures larger than a slab fall back to operator new.
//
// omp::task_stats() reports the split as task_inline / task_alloc — the
// inline-payload rate the dispatch ablation (abl_glt_dispatch) prints.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <tuple>
#include <type_traits>
#include <utility>

namespace glto::omp {

namespace detail {

/// Spill-slab geometry: one fixed block size keeps the freelist simple and
/// covers every realistic capture (a boxed std::function is 32 bytes).
inline constexpr std::size_t kSpillSlabBytes = 256;

// Defined in omp.cpp (the pool is a sched::Freelist<SpillSlab> shared by
// every runtime; payloads recycle to the freeing thread's list).
[[nodiscard]] void* spill_alloc(std::size_t bytes);
void spill_free(void* p, std::size_t bytes);
void note_task_inline();
void note_task_alloc();
[[nodiscard]] std::uint64_t task_inline_count();
[[nodiscard]] std::uint64_t task_alloc_count();

}  // namespace detail

/// Type-erased, move-only, allocation-free (for small trivially-copyable
/// captures) description of one unit of deferred work. 64 bytes total.
class TaskDesc {
 public:
  using InvokeFn = void (*)(void*);

  /// Inline payload capacity: five pointers' worth of capture. Larger or
  /// non-trivially-copyable callables spill to the slab pool.
  static constexpr std::size_t kInlineBytes = 40;
  static constexpr std::size_t kInlineAlign = 8;

  TaskDesc() = default;
  TaskDesc(const TaskDesc&) = delete;
  TaskDesc& operator=(const TaskDesc&) = delete;

  TaskDesc(TaskDesc&& other) noexcept { steal(other); }

  TaskDesc& operator=(TaskDesc&& other) noexcept {
    if (this != &other) {
      release();
      steal(other);
    }
    return *this;
  }

  ~TaskDesc() { release(); }

  /// Builds a descriptor invoking f(args...). Arguments are captured by
  /// value (decay-copied — OpenMP firstprivate semantics); pass pointers
  /// or std::ref for shared state.
  template <class F, class... Args>
  [[nodiscard]] static TaskDesc make(F&& f, Args&&... args) {
    if constexpr (sizeof...(Args) == 0) {
      return from_callable(std::forward<F>(f));
    } else {
      return from_callable(
          [fn = std::decay_t<F>(std::forward<F>(f)),
           tup = std::tuple<std::decay_t<Args>...>(
               std::forward<Args>(args)...)]() mutable { std::apply(fn, tup); });
    }
  }

  [[nodiscard]] explicit operator bool() const { return invoke_ != nullptr; }
  [[nodiscard]] bool spilled() const { return spill_ != nullptr; }

  /// Executes the captured callable once and destroys the payload; the
  /// descriptor is empty afterwards. Must not be called twice.
  void run() {
    InvokeFn fn = invoke_;
    invoke_ = nullptr;
    fn(payload());
    destroy_payload();
  }

 private:
  template <class C0>
  [[nodiscard]] static TaskDesc from_callable(C0&& c) {
    using C = std::decay_t<C0>;
    static_assert(std::is_invocable_v<C&>,
                  "omp::task callable must be invocable with the given args");
    // The spill pool hands out max_align_t-aligned blocks (slab or plain
    // operator new); an over-aligned capture (e.g. an AVX vector) would
    // be constructed at UB alignment — reject it at compile time.
    static_assert(alignof(C) <= alignof(std::max_align_t),
                  "task capture alignment exceeds the spill pool's "
                  "max_align_t guarantee — capture a pointer instead");
    TaskDesc d;
    d.invoke_ = [](void* p) { (*static_cast<C*>(p))(); };
    if constexpr (sizeof(C) <= kInlineBytes && alignof(C) <= kInlineAlign &&
                  std::is_trivially_copyable_v<C>) {
      ::new (static_cast<void*>(d.buf_)) C(std::forward<C0>(c));
      detail::note_task_inline();
    } else {
      void* block = detail::spill_alloc(sizeof(C));
      ::new (block) C(std::forward<C0>(c));
      d.spill_ = block;
      d.destroy_ = [](void* p) {
        static_cast<C*>(p)->~C();
        detail::spill_free(p, sizeof(C));
      };
      detail::note_task_alloc();
    }
    return d;
  }

  [[nodiscard]] void* payload() { return spill_ != nullptr ? spill_ : buf_; }

  void destroy_payload() {
    // Inline payloads are trivially copyable (hence trivially
    // destructible); only spills carry a destroy hook, which also returns
    // the block to the slab pool.
    if (destroy_ != nullptr) {
      InvokeFn d = destroy_;
      destroy_ = nullptr;
      void* p = spill_;
      spill_ = nullptr;
      d(p);
    }
  }

  /// Destroys a payload that never ran (descriptor dropped or overwritten).
  void release() {
    invoke_ = nullptr;
    destroy_payload();
  }

  void steal(TaskDesc& other) noexcept {
    invoke_ = other.invoke_;
    destroy_ = other.destroy_;
    spill_ = other.spill_;
    if (spill_ == nullptr && invoke_ != nullptr) {
      // Inline payloads are trivially copyable by construction.
      __builtin_memcpy(buf_, other.buf_, kInlineBytes);
    }
    other.invoke_ = nullptr;
    other.destroy_ = nullptr;
    other.spill_ = nullptr;
  }

  InvokeFn invoke_ = nullptr;
  InvokeFn destroy_ = nullptr;  ///< non-null iff the payload spilled
  void* spill_ = nullptr;       ///< slab / heap block when capture didn't fit
  alignas(kInlineAlign) unsigned char buf_[kInlineBytes];
};

static_assert(sizeof(TaskDesc) == 64, "TaskDesc is one cache line");

}  // namespace glto::omp
