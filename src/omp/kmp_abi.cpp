#include "omp/kmp_abi.hpp"

#include <atomic>

#include "omp/omp.hpp"

namespace o = glto::omp;

extern "C" {

void glto_kmpc_fork_call(glto_kmpc_micro fn, void* shared) {
  o::parallel([fn, shared](int tid, int) {
    fn(static_cast<std::int32_t>(tid), static_cast<std::int32_t>(tid),
       shared);
  });
}

void glto_kmpc_fork_call_nt(std::int32_t num_threads, glto_kmpc_micro fn,
                            void* shared) {
  o::parallel(static_cast<int>(num_threads), [fn, shared](int tid, int) {
    fn(static_cast<std::int32_t>(tid), static_cast<std::int32_t>(tid),
       shared);
  });
}

std::int32_t glto_kmpc_global_thread_num() {
  return static_cast<std::int32_t>(o::thread_num());
}

std::int32_t glto_kmpc_team_size() {
  return static_cast<std::int32_t>(o::num_threads());
}

std::int32_t glto_kmpc_for_static_init(std::int64_t lower,
                                       std::int64_t upper,
                                       std::int64_t chunk,
                                       std::int64_t* plower,
                                       std::int64_t* pupper,
                                       std::int64_t* pstride) {
  // Inclusive bounds, like the real ABI.
  const std::int64_t n = upper - lower + 1;
  if (n <= 0) return 0;
  const auto tid = static_cast<std::int64_t>(o::thread_num());
  const auto nth = static_cast<std::int64_t>(o::num_threads());
  if (chunk <= 0) {
    // One balanced block per thread.
    const std::int64_t base = n / nth, rem = n % nth;
    const std::int64_t b =
        lower + tid * base + (tid < rem ? tid : rem);
    const std::int64_t len = base + (tid < rem ? 1 : 0);
    if (len <= 0) return 0;
    *plower = b;
    *pupper = b + len - 1;
    *pstride = n;  // no second round
    return 1;
  }
  // Chunked static: thread's first chunk; caller iterates by *pstride.
  const std::int64_t b = lower + tid * chunk;
  if (b > upper) return 0;
  *plower = b;
  *pupper = b + chunk - 1 > upper ? upper : b + chunk - 1;
  *pstride = nth * chunk;
  return 1;
}

void glto_kmpc_dispatch_init(std::int64_t lower, std::int64_t upper,
                             std::int64_t chunk) {
  o::runtime().loop_begin(lower, upper + 1, o::Schedule::Dynamic, chunk);
}

std::int32_t glto_kmpc_dispatch_next(std::int64_t* plower,
                                     std::int64_t* pupper) {
  std::int64_t b = 0, e = 0;
  if (o::runtime().loop_next(&b, &e)) {
    *plower = b;
    *pupper = e - 1;  // ABI uses inclusive bounds
    return 1;
  }
  o::runtime().loop_end();
  return 0;
}

void glto_kmpc_barrier() { o::barrier(); }

std::int32_t glto_kmpc_single() {
  return o::runtime().single_try() ? 1 : 0;
}

void glto_kmpc_end_single() { o::runtime().single_done(); }

std::int32_t glto_kmpc_master() { return o::thread_num() == 0 ? 1 : 0; }

void glto_kmpc_critical(void** lock_slot) {
  o::runtime().critical_enter(lock_slot);
}

void glto_kmpc_end_critical(void** lock_slot) {
  o::runtime().critical_exit(lock_slot);
}

void glto_kmpc_omp_task(glto_kmpc_task_fn fn, void* arg) {
  // The 16-byte {fn, arg} capture lives inline in the TaskDesc: the
  // compiler-shaped path is zero-allocation end to end, like the facade.
  o::task([fn, arg] { fn(arg); });
}

void glto_kmpc_omp_task_bulk(glto_kmpc_task_fn fn, void* const* args,
                             std::int32_t n) {
  constexpr std::int32_t kWave = 64;
  o::TaskDesc wave[kWave];
  std::int32_t done = 0;
  while (done < n) {
    const std::int32_t take = n - done < kWave ? n - done : kWave;
    for (std::int32_t i = 0; i < take; ++i) {
      void* arg = args[done + i];
      wave[i] = o::TaskDesc::make([fn, arg] { fn(arg); });
    }
    o::task_bulk(wave, static_cast<std::size_t>(take));
    done += take;
  }
}

void glto_kmpc_omp_task_with_deps(glto_kmpc_task_fn fn, void* arg,
                                  std::int32_t ndeps,
                                  const glto_kmpc_depend_info* dep_list) {
  o::TaskFlags flags;
  flags.depend.reserve(static_cast<std::size_t>(ndeps > 0 ? ndeps : 0));
  for (std::int32_t i = 0; i < ndeps; ++i) {
    const glto_kmpc_depend_info& d = dep_list[i];
    // LLVM convention: bit 0 = in, bit 1 = out; out implies write ordering
    // whether or not in is also set.
    const auto kind = (d.flags & 0x2) != 0
                          ? ((d.flags & 0x1) != 0
                                 ? glto::taskdep::DepKind::inout
                                 : glto::taskdep::DepKind::out)
                          : glto::taskdep::DepKind::in;
    flags.depend.push_back({d.base_addr, d.len, kind});
  }
  o::task([fn, arg] { fn(arg); }, flags);
}

void glto_kmpc_omp_taskwait() { o::taskwait(); }

void glto_kmpc_omp_taskyield() { o::taskyield(); }

void glto_kmpc_taskgroup() { o::runtime().taskgroup_begin(); }

void glto_kmpc_end_taskgroup() { o::runtime().taskgroup_end(); }

namespace {
constexpr std::int32_t kKmpCancelTaskgroup = 4;
}  // namespace

std::int32_t glto_kmpc_cancel(std::int32_t cncl_kind) {
  if (cncl_kind != kKmpCancelTaskgroup) return 0;
  return o::runtime().cancel_taskgroup() ? 1 : 0;
}

std::int32_t glto_kmpc_cancellationpoint(std::int32_t cncl_kind) {
  if (cncl_kind != kKmpCancelTaskgroup) return 0;
  return o::runtime().cancellation_requested() ? 1 : 0;
}

void glto_kmpc_atomic_add_f64(double* target, double val) {
  auto* a = reinterpret_cast<std::atomic<double>*>(target);
  double cur = a->load(std::memory_order_relaxed);
  while (!a->compare_exchange_weak(cur, cur + val,
                                   std::memory_order_relaxed)) {
  }
}

void glto_kmpc_atomic_add_i64(std::int64_t* target, std::int64_t val) {
  reinterpret_cast<std::atomic<std::int64_t>*>(target)->fetch_add(
      val, std::memory_order_relaxed);
}

}  // extern "C"
