// The runtime-neutral OpenMP execution interface (task ABI v2).
//
// This plays the role the OpenMP ABI plays in the paper: the same
// application binary runs over the Intel runtime (pthreads) or over GLTO
// (LWTs) just by switching the linked runtime (paper Fig. 2). Here the
// "ABI" is this abstract class; applications use the omp:: facade
// (src/omp/omp.hpp) and never see concrete runtimes.
//
// ABI v2: the only work currency crossing this interface is the POD
// omp::TaskDesc (trampoline + inline payload; see task_desc.hpp) for
// explicit tasks and the non-owning RegionBody for parallel regions —
// no std::function crosses a virtual call, so the facade's templated
// entry points reach the scheduler without a single heap allocation for
// small trivially-copyable captures.
//
// Implementations:
//   * pomp::GnuRuntime   — libgomp-like pthread baseline
//   * pomp::IntelRuntime — Intel-like pthread baseline
//   * rt::GltoRuntime    — GLTO over GLT over {abt,qth,mth}
#pragma once

#include <cstdint>
#include <memory>
#include <utility>

#include "omp/task_desc.hpp"
#include "taskdep/dep.hpp"

namespace glto::omp {

enum class Schedule : std::uint8_t {
  Static,
  Dynamic,
  Guided,
  Auto,     ///< implementation-defined; resolves to Static here
  Runtime,  ///< taken from OMP_SCHEDULE at runtime selection
};

/// Non-owning trampoline for a parallel-region body: the forking caller's
/// frame outlives the region (fork/join), so the runtime only carries a
/// function pointer + context — the v2 replacement for the
/// std::function<void(int,int)> the v1 ABI copied through every virtual
/// parallel() and stored per worker assignment.
struct RegionBody {
  using Fn = void (*)(void*, int, int);
  Fn fn = nullptr;
  void* ctx = nullptr;
  void operator()(int tid, int team_size) const { fn(ctx, tid, team_size); }
};

namespace detail {
/// Wraps a caller-owned callable (lvalue; must outlive the region).
template <class F>
[[nodiscard]] inline RegionBody region_of(F& body) {
  return RegionBody{
      [](void* p, int tid, int nth) { (*static_cast<F*>(p))(tid, nth); },
      const_cast<void*>(static_cast<const void*>(std::addressof(body)))};
}
}  // namespace detail

struct TaskFlags {
  bool untied = false;
  bool final = false;
  bool if_clause = true;  ///< if(false) → undeferred, executed inline
  /// depend(in/out/inout: ...) clauses. A task with unmet dependences is
  /// *deferred*: it is withheld from the scheduler until every
  /// predecessor completes, then enqueued by the releasing thread
  /// (undeferred tasks with deps instead wait inline for their turn).
  /// Inline storage for up to four clauses — no allocation on the tile
  /// kernels the bqp workload emits.
  taskdep::DepList depend;
};

/// Dependency-engine counters plus descriptor-placement counters (the
/// inline-payload rate of the v2 task ABI). Basis for abl_taskdep and the
/// abl_glt_dispatch omp-task cells; dep fields are zero for a runtime
/// that saw no depend clauses.
struct TaskStats : taskdep::Stats {
  std::uint64_t task_inline = 0;  ///< descriptors whose capture fit inline
  std::uint64_t task_alloc = 0;   ///< descriptors that spilled to slab/heap
};

/// Counters every runtime maintains; basis for Tables II and III.
struct Counters {
  std::uint64_t os_threads_created = 0;  ///< pthreads / GLT_threads spawned
  std::uint64_t os_threads_reused = 0;   ///< re-engaged from a pool (Intel)
  std::uint64_t ults_created = 0;        ///< GLT_ults (GLTO only)
  std::uint64_t tasks_queued = 0;        ///< deferred through a task queue
  std::uint64_t tasks_immediate = 0;     ///< executed inline (cut-off, final)
  std::uint64_t task_steals = 0;         ///< consumer-side steals (Intel)
};

class Runtime {
 public:
  virtual ~Runtime() = default;

  [[nodiscard]] virtual const char* name() const = 0;

  /// Fork/join parallel region. @p body runs once per team member with
  /// (thread_num, team_size); an implicit barrier precedes the return.
  /// @p nthreads <= 0 requests the runtime default (OMP_NUM_THREADS).
  /// Nested calls create nested teams when nesting is enabled.
  virtual void parallel(int nthreads, RegionBody body) = 0;

  // --- team queries, relative to the innermost enclosing region ---------
  [[nodiscard]] virtual int thread_num() = 0;
  [[nodiscard]] virtual int team_size() = 0;
  [[nodiscard]] virtual int level() = 0;

  /// Default team size for future regions (omp_set_num_threads).
  virtual void set_default_threads(int n) = 0;
  [[nodiscard]] virtual int default_threads() = 0;

  /// Enables/disables nested parallelism (OMP_NESTED).
  virtual void set_nested(bool enabled) = 0;
  [[nodiscard]] virtual bool nested() = 0;

  // --- work-sharing loops (all team members must participate) -----------
  virtual void loop_begin(std::int64_t lo, std::int64_t hi, Schedule sched,
                          std::int64_t chunk) = 0;
  /// Next chunk [*lo, *hi) for the calling member; false when exhausted.
  virtual bool loop_next(std::int64_t* lo, std::int64_t* hi) = 0;
  /// Ends the loop construct (no implicit barrier — call barrier()).
  virtual void loop_end() = 0;

  // --- synchronization ---------------------------------------------------
  virtual void barrier() = 0;
  /// True for exactly one member per single construct instance.
  virtual bool single_try() = 0;
  virtual void single_done() = 0;  ///< winner calls when leaving the block
  virtual void critical_enter(const void* tag) = 0;
  virtual void critical_exit(const void* tag) = 0;

  // --- explicit tasks ----------------------------------------------------
  /// Creates an explicit task from a moved-in descriptor. flags.depend
  /// orders it after conflicting earlier tasks (see TaskFlags); taskwait
  /// also waits for dependent tasks the engine is still withholding.
  virtual void task(TaskDesc desc, const TaskFlags& flags) = 0;

  /// Batch spawn: moves @p n descriptors into the runtime in ONE call —
  /// semantically identical to n task() calls with the same flags, but a
  /// runtime may (and GLTO does) deposit the whole batch into its
  /// scheduler with one queue publication per victim worker and one
  /// targeted wake per victim instead of n submit+wake round-trips. The
  /// descriptors are consumed (moved-from) on return. Default: a plain
  /// loop, so pthread baselines and out-of-tree runtimes stay correct
  /// without opting in.
  virtual void task_bulk(TaskDesc* descs, std::size_t n,
                         const TaskFlags& flags) {
    for (std::size_t i = 0; i < n; ++i) {
      task(std::move(descs[i]), flags);
    }
  }

  virtual void taskwait() = 0;
  virtual void taskyield() = 0;

  /// taskgroup construct: end waits ONLY for tasks created between begin
  /// and end by the *current* task (descendants complete transitively via
  /// this runtime family's child-drain rule) — never for siblings created
  /// before the group, even inside a depend task. The default end falls
  /// back to taskwait (over-waits; both shipped runtimes override).
  virtual void taskgroup_begin() {}
  virtual void taskgroup_end() { taskwait(); }

  // --- cancellation & deadlines ------------------------------------------
  /// omp::cancel(taskgroup): marks the calling task's innermost enclosing
  /// taskgroup cancelled — member tasks not yet started skip their body,
  /// in-flight bodies run to completion, and taskgroup_end still joins
  /// everything. Returns false when there is no enclosing taskgroup (the
  /// construct is then a no-op), or when the runtime has no cancellation
  /// support (the pthread baselines' gnu/intel default here).
  virtual bool cancel_taskgroup() { return false; }

  /// Cancellation point: true when the calling task's taskgroup (or an
  /// enclosing one) has been cancelled and the caller should unwind.
  [[nodiscard]] virtual bool cancellation_requested() { return false; }

  /// Deadline form of taskwait: waits for the calling task's children for
  /// at most @p timeout_us microseconds. Returns true when the join
  /// completed, false on timeout — the children keep running and remain
  /// joined by the next taskwait/region end, so a timed-out wait leaves
  /// the tree consistent. Default: the blocking taskwait (no deadline
  /// support; never reports timeout).
  virtual bool taskwait_for_us(std::int64_t timeout_us) {
    (void)timeout_us;
    taskwait();
    return true;
  }

  /// Deadline form of taskgroup_end: waits at most @p timeout_us for the
  /// group's tasks. True → the group completed and was popped, exactly as
  /// taskgroup_end. False → timeout: the group stays active and open, so
  /// the caller can cancel_taskgroup() and then taskgroup_end() to drain
  /// (the omp::taskgroup_with_deadline recipe). Default: the blocking end
  /// (no deadline support; never reports timeout).
  virtual bool taskgroup_end_for_us(std::int64_t timeout_us) {
    (void)timeout_us;
    taskgroup_end();
    return true;
  }

  /// Dependency-engine counters (deps registered/deferred, DAG wake-ups).
  /// The descriptor-placement counters are filled in by the facade's
  /// omp::task_stats() — they live in the descriptor layer, above any
  /// single runtime.
  [[nodiscard]] virtual TaskStats task_stats() { return {}; }

  /// Polite wait hint while spinning on user-level synchronization (omp
  /// locks): GLTO yields the ULT; pthread runtimes yield the OS thread.
  /// Unlike taskyield() this is NOT a task scheduling point.
  virtual void yield_hint() = 0;

  /// Stable identity of the calling task context (for nestable locks:
  /// the owner of an omp nest lock is a *task*, not an OS thread).
  [[nodiscard]] virtual const void* task_identity() = 0;

  // --- instrumentation ---------------------------------------------------
  [[nodiscard]] virtual Counters counters() = 0;
  virtual void reset_counters() = 0;
};

}  // namespace glto::omp
