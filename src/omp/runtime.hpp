// The runtime-neutral OpenMP execution interface.
//
// This plays the role the OpenMP ABI plays in the paper: the same
// application binary runs over the Intel runtime (pthreads) or over GLTO
// (LWTs) just by switching the linked runtime (paper Fig. 2). Here the
// "ABI" is this abstract class; applications use the omp:: facade
// (src/omp/omp.hpp) and never see concrete runtimes.
//
// Implementations:
//   * pomp::GnuRuntime   — libgomp-like pthread baseline
//   * pomp::IntelRuntime — Intel-like pthread baseline
//   * rt::GltoRuntime    — GLTO over GLT over {abt,qth,mth}
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "taskdep/dep.hpp"

namespace glto::omp {

enum class Schedule : std::uint8_t {
  Static,
  Dynamic,
  Guided,
  Auto,     ///< implementation-defined; resolves to Static here
  Runtime,  ///< taken from OMP_SCHEDULE at runtime selection
};

struct TaskFlags {
  bool untied = false;
  bool final = false;
  bool if_clause = true;  ///< if(false) → undeferred, executed inline
  /// depend(in/out/inout: ...) clauses. A task with unmet dependences is
  /// *deferred*: it is withheld from the scheduler until every
  /// predecessor completes, then enqueued by the releasing thread
  /// (undeferred tasks with deps instead wait inline for their turn).
  std::vector<taskdep::Dep> depend;
};

/// Dependency-engine counters (basis for the abl_taskdep ablation); all
/// zero for a runtime that saw no depend clauses.
using TaskStats = taskdep::Stats;

/// Counters every runtime maintains; basis for Tables II and III.
struct Counters {
  std::uint64_t os_threads_created = 0;  ///< pthreads / GLT_threads spawned
  std::uint64_t os_threads_reused = 0;   ///< re-engaged from a pool (Intel)
  std::uint64_t ults_created = 0;        ///< GLT_ults (GLTO only)
  std::uint64_t tasks_queued = 0;        ///< deferred through a task queue
  std::uint64_t tasks_immediate = 0;     ///< executed inline (cut-off, final)
  std::uint64_t task_steals = 0;         ///< consumer-side steals (Intel)
};

class Runtime {
 public:
  virtual ~Runtime() = default;

  [[nodiscard]] virtual const char* name() const = 0;

  /// Fork/join parallel region. @p body runs once per team member with
  /// (thread_num, team_size); an implicit barrier precedes the return.
  /// @p nthreads <= 0 requests the runtime default (OMP_NUM_THREADS).
  /// Nested calls create nested teams when nesting is enabled.
  virtual void parallel(int nthreads,
                        const std::function<void(int, int)>& body) = 0;

  // --- team queries, relative to the innermost enclosing region ---------
  [[nodiscard]] virtual int thread_num() = 0;
  [[nodiscard]] virtual int team_size() = 0;
  [[nodiscard]] virtual int level() = 0;

  /// Default team size for future regions (omp_set_num_threads).
  virtual void set_default_threads(int n) = 0;
  [[nodiscard]] virtual int default_threads() = 0;

  /// Enables/disables nested parallelism (OMP_NESTED).
  virtual void set_nested(bool enabled) = 0;
  [[nodiscard]] virtual bool nested() = 0;

  // --- work-sharing loops (all team members must participate) -----------
  virtual void loop_begin(std::int64_t lo, std::int64_t hi, Schedule sched,
                          std::int64_t chunk) = 0;
  /// Next chunk [*lo, *hi) for the calling member; false when exhausted.
  virtual bool loop_next(std::int64_t* lo, std::int64_t* hi) = 0;
  /// Ends the loop construct (no implicit barrier — call barrier()).
  virtual void loop_end() = 0;

  // --- synchronization ---------------------------------------------------
  virtual void barrier() = 0;
  /// True for exactly one member per single construct instance.
  virtual bool single_try() = 0;
  virtual void single_done() = 0;  ///< winner calls when leaving the block
  virtual void critical_enter(const void* tag) = 0;
  virtual void critical_exit(const void* tag) = 0;

  // --- explicit tasks ----------------------------------------------------
  /// Creates an explicit task. flags.depend orders it after conflicting
  /// earlier tasks (see TaskFlags); taskwait also waits for dependent
  /// tasks the engine is still withholding.
  virtual void task(std::function<void()> fn, const TaskFlags& flags) = 0;
  virtual void taskwait() = 0;
  virtual void taskyield() = 0;

  /// taskgroup construct: end waits ONLY for tasks created between begin
  /// and end by the *current* task (descendants complete transitively via
  /// this runtime family's child-drain rule) — never for siblings created
  /// before the group, even inside a depend task. The default end falls
  /// back to taskwait (over-waits; both shipped runtimes override).
  virtual void taskgroup_begin() {}
  virtual void taskgroup_end() { taskwait(); }

  /// Dependency-engine counters (deps registered/deferred, DAG wake-ups).
  [[nodiscard]] virtual TaskStats task_stats() { return {}; }

  /// Polite wait hint while spinning on user-level synchronization (omp
  /// locks): GLTO yields the ULT; pthread runtimes yield the OS thread.
  /// Unlike taskyield() this is NOT a task scheduling point.
  virtual void yield_hint() = 0;

  /// Stable identity of the calling task context (for nestable locks:
  /// the owner of an omp nest lock is a *task*, not an OS thread).
  [[nodiscard]] virtual const void* task_identity() = 0;

  // --- instrumentation ---------------------------------------------------
  [[nodiscard]] virtual Counters counters() = 0;
  virtual void reset_counters() = 0;
};

}  // namespace glto::omp
