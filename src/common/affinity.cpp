#include "common/affinity.hpp"

#include <pthread.h>
#include <sched.h>
#include <unistd.h>

#include <thread>

namespace glto::common {

int hardware_concurrency() {
  int n = static_cast<int>(std::thread::hardware_concurrency());
  return n > 0 ? n : 1;
}

bool bind_self_to_core(int rank) {
  const int ncpu = hardware_concurrency();
  if (ncpu <= 0 || rank < 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(rank % ncpu), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
}

void unbind_self() {
  const int ncpu = hardware_concurrency();
  cpu_set_t set;
  CPU_ZERO(&set);
  for (int i = 0; i < ncpu; ++i) CPU_SET(static_cast<unsigned>(i), &set);
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
}

}  // namespace glto::common
