// CPU affinity helpers.
//
// The paper binds OS threads to cores (OMP_PROC_BIND=true, GLT_threads
// "bound to CPU cores"). Binding is best-effort: in constrained containers
// (or when fewer cores exist than threads) failures are silently ignored,
// mirroring the round-robin oversubscribed placement of the original study.
#pragma once

namespace glto::common {

/// Number of CPUs available to this process.
int hardware_concurrency();

/// Binds the calling OS thread to core (rank % num_cpus). Best-effort.
/// Returns true if the affinity call succeeded.
bool bind_self_to_core(int rank);

/// Clears the calling thread's affinity mask (binds to all CPUs).
void unbind_self();

}  // namespace glto::common
