#include "common/env.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/affinity.hpp"

namespace glto::common {

std::optional<std::string> env_str(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return std::nullopt;
  return std::string(v);
}

std::int64_t env_i64(const char* name, std::int64_t fallback) {
  auto v = env_str(name);
  if (!v) return fallback;
  errno = 0;
  char* end = nullptr;
  long long out = std::strtoll(v->c_str(), &end, 10);
  if (errno != 0 || end == v->c_str()) return fallback;
  return static_cast<std::int64_t>(out);
}

bool env_bool(const char* name, bool fallback) {
  auto v = env_str(name);
  if (!v) return fallback;
  std::string s = *v;
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (s == "1" || s == "true" || s == "yes" || s == "on") return true;
  if (s == "0" || s == "false" || s == "no" || s == "off") return false;
  return fallback;
}

int env_worker_count(const char* name, int requested) {
  if (requested > 0) return requested;
  const auto n = env_i64(name, static_cast<std::int64_t>(
                                   hardware_concurrency()));
  return n > 0 ? static_cast<int>(n) : 1;
}

void env_set(const char* name, const char* value) {
  if (value == nullptr) {
    ::unsetenv(name);
  } else {
    ::setenv(name, value, /*overwrite=*/1);
  }
}

}  // namespace glto::common
