// Spinlocks with exponential backoff.
//
// Runtime internals (pools, FEB buckets, task queues) prefer spinlocks over
// pthread mutexes: critical sections are tens of nanoseconds and must not
// deschedule a ULT-carrying OS thread.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/cacheline.hpp"
#include "common/thread_safety.hpp"

namespace glto::common {

/// Test-and-test-and-set spinlock with bounded exponential backoff.
class GLTO_CAPABILITY("mutex") SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() GLTO_ACQUIRE() {
    std::uint32_t backoff = 1;
    for (;;) {
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
      while (locked_.load(std::memory_order_relaxed)) {
        for (std::uint32_t i = 0; i < backoff; ++i) cpu_relax();
        if (backoff < 1024) backoff <<= 1;
      }
    }
  }

  bool try_lock() GLTO_TRY_ACQUIRE(true) {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() GLTO_RELEASE() {
    locked_.store(false, std::memory_order_release);
  }

 private:
  std::atomic<bool> locked_{false};
};

/// RAII guard for SpinLock (mirrors std::lock_guard without <mutex>).
class GLTO_SCOPED_CAPABILITY SpinGuard {
 public:
  explicit SpinGuard(SpinLock& l) GLTO_ACQUIRE(l) : lock_(l) { lock_.lock(); }
  ~SpinGuard() GLTO_RELEASE() { lock_.unlock(); }
  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

 private:
  SpinLock& lock_;
};

/// Spin-wait helper with backoff; calls @p pred until it returns true.
template <typename Pred>
void spin_until(Pred&& pred) {
  std::uint32_t backoff = 1;
  while (!pred()) {
    for (std::uint32_t i = 0; i < backoff; ++i) cpu_relax();
    if (backoff < 4096) backoff <<= 1;
  }
}

}  // namespace glto::common
