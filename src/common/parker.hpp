// Idle-thread parking with bounded timeouts and single-permit wakeups.
//
// Scheduler loops spin briefly when their pools drain, then park here. All
// waits are timeout-bounded, so a missed notification costs at most one
// timeout period instead of a hang; this keeps the wake protocol simple and
// is the behaviour OMP_WAIT_POLICY=passive models.
//
// Wakes are *permit-based*: unpark() grants one permit, and a permit
// granted while nobody is parked is consumed immediately by the next
// park_for_us — so a producer that targets a worker between its last queue
// probe and its cv wait can never lose the wake. park_for_us reports
// whether it consumed a permit (woken) or ran out the clock (timed out);
// the scheduling core uses the distinction to count spurious wakes and to
// grow its adaptive backoff only on truly fruitless parks.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace glto::common {

class Parker {
 public:
  /// Blocks the caller for at most @p us microseconds or until a permit
  /// is consumed. Returns true when woken by a permit (possibly granted
  /// before the call), false on timeout.
  ///
  /// A Parker carries ONE permit, so it serves one parked thread — the
  /// scheduling core gives every worker its own instance; broadcasts are
  /// a loop of unpark() over the team (a banked permit also reaches a
  /// worker that was between its queue probe and its park, which a
  /// notify-all of current waiters would miss).
  bool park_for_us(std::int64_t us) {
    std::unique_lock<std::mutex> lk(mutex_);
    if (permit_) {
      permit_ = false;
      return true;
    }
    waiters_.fetch_add(1, std::memory_order_relaxed);
    cv_.wait_for(lk, std::chrono::microseconds(us), [&] { return permit_; });
    waiters_.fetch_sub(1, std::memory_order_relaxed);
    if (permit_) {
      permit_ = false;
      return true;
    }
    return false;
  }

  /// Deadline form of park_for_us: blocks until @p deadline or a permit.
  /// Timed waits against an absolute deadline are what let timeout be a
  /// first-class outcome of the runtime's blocking surfaces (wait_for,
  /// taskwait_for) instead of an accumulation of relative sleeps that
  /// drifts past the caller's budget.
  bool park_until(std::chrono::steady_clock::time_point deadline) {
    std::unique_lock<std::mutex> lk(mutex_);
    if (permit_) {
      permit_ = false;
      return true;
    }
    waiters_.fetch_add(1, std::memory_order_relaxed);
    cv_.wait_until(lk, deadline, [&] { return permit_; });
    waiters_.fetch_sub(1, std::memory_order_relaxed);
    if (permit_) {
      permit_ = false;
      return true;
    }
    return false;
  }

  /// Grants one permit and wakes one parked thread. Never lost: a permit
  /// granted while nobody is parked short-circuits the next park.
  void unpark() {
    {
      std::lock_guard<std::mutex> lk(mutex_);
      permit_ = true;
    }
    cv_.notify_one();
  }

  [[nodiscard]] int waiters() const {
    return waiters_.load(std::memory_order_relaxed);
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool permit_ = false;  ///< guarded by mutex_
  std::atomic<int> waiters_{0};
};

}  // namespace glto::common
