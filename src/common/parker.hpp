// Idle-thread parking with bounded timeouts.
//
// Scheduler loops spin briefly when their pools drain, then park here. All
// waits are timeout-bounded, so a missed notification costs at most one
// timeout period instead of a hang; this keeps the wake protocol simple and
// is the behaviour OMP_WAIT_POLICY=passive models.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>

namespace glto::common {

class Parker {
 public:
  /// Blocks the caller for at most @p us microseconds or until unparked.
  void park_for_us(std::int64_t us) {
    std::unique_lock<std::mutex> lk(mutex_);
    waiters_.fetch_add(1, std::memory_order_relaxed);
    cv_.wait_for(lk, std::chrono::microseconds(us));
    waiters_.fetch_sub(1, std::memory_order_relaxed);
  }

  /// Wakes all parked threads (cheap no-op when nobody is parked).
  void unpark_all() {
    if (waiters_.load(std::memory_order_acquire) > 0) {
      std::lock_guard<std::mutex> lk(mutex_);
      cv_.notify_all();
    }
  }

  [[nodiscard]] int waiters() const {
    return waiters_.load(std::memory_order_relaxed);
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::atomic<int> waiters_{0};
};

}  // namespace glto::common
