// Idle-thread parking with bounded timeouts and single-permit wakeups.
//
// Scheduler loops spin briefly when their pools drain, then park here. All
// waits are timeout-bounded, so a missed notification costs at most one
// timeout period instead of a hang; this keeps the wake protocol simple and
// is the behaviour OMP_WAIT_POLICY=passive models.
//
// Wakes are *permit-based*: unpark() grants one permit, and a permit
// granted while nobody is parked is consumed immediately by the next
// park_for_us — so a producer that targets a worker between its last queue
// probe and its cv wait can never lose the wake. park_for_us reports
// whether it consumed a permit (woken) or ran out the clock (timed out);
// the scheduling core uses the distinction to count spurious wakes and to
// grow its adaptive backoff only on truly fruitless parks.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>

#include "common/checked_mutex.hpp"
#include "common/thread_safety.hpp"

namespace glto::common {

class Parker {
 public:
  /// Blocks the caller for at most @p us microseconds or until a permit
  /// is consumed. Returns true when woken by a permit (possibly granted
  /// before the call), false on timeout.
  ///
  /// A Parker carries ONE permit, so it serves one parked thread — the
  /// scheduling core gives every worker its own instance; broadcasts are
  /// a loop of unpark() over the team (a banked permit also reaches a
  /// worker that was between its queue probe and its park, which a
  /// notify-all of current waiters would miss).
  bool park_for_us(std::int64_t us) {
    return park_until(std::chrono::steady_clock::now() +
                      std::chrono::microseconds(us));
  }

  /// Deadline form of park_for_us: blocks until @p deadline or a permit.
  /// Timed waits against an absolute deadline are what let timeout be a
  /// first-class outcome of the runtime's blocking surfaces (wait_for,
  /// taskwait_for) instead of an accumulation of relative sleeps that
  /// drifts past the caller's budget.
  bool park_until(std::chrono::steady_clock::time_point deadline) {
    // Explicit wait loop instead of the predicate overload: a predicate
    // lambda cannot carry thread-safety attributes in C++17, so reading
    // permit_ inside one would defeat its GLTO_GUARDED_BY check.
    mutex_.lock();
    if (permit_) {
      permit_ = false;
      mutex_.unlock();
      return true;
    }
    waiters_.fetch_add(1, std::memory_order_relaxed);
    while (!permit_) {
      if (cv_.wait_until(mutex_, deadline) == std::cv_status::timeout) break;
    }
    waiters_.fetch_sub(1, std::memory_order_relaxed);
    const bool woken = permit_;
    permit_ = false;
    mutex_.unlock();
    return woken;
  }

  /// Grants one permit and wakes one parked thread. Never lost: a permit
  /// granted while nobody is parked short-circuits the next park.
  void unpark() {
    {
      CheckedLock lk(mutex_);
      permit_ = true;
    }
    cv_.notify_one();
  }

  [[nodiscard]] int waiters() const {
    return waiters_.load(std::memory_order_relaxed);
  }

 private:
  CheckedMutex mutex_;
  // condition_variable_any: waits on the annotated mutex directly (it is
  // BasicLockable), which keeps the permit_ guard compiler-checked.
  std::condition_variable_any cv_;
  bool permit_ GLTO_GUARDED_BY(mutex_) = false;  ///< guarded by mutex_
  std::atomic<int> waiters_{0};
};

}  // namespace glto::common
