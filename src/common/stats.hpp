// Small online statistics helper used by bench harnesses to report the
// mean / stddev / min / max of repeated executions (the paper reports
// averages of 50 or 1,000 runs with error bars).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace glto::common {

class RunStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double median() const;

  /// "mean ± stddev [min, max] (n)" for human-readable bench tables.
  [[nodiscard]] std::string summary() const;

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

}  // namespace glto::common
