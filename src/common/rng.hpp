// Deterministic, splittable random number generation.
//
// UTS builds its tree with a *splittable* deterministic generator so that the
// same tree is produced regardless of the parallel schedule (the original
// benchmark uses SHA-1; we use a SplitMix64-style mixer, which preserves the
// property that child streams are derived purely from (parent state, index)).
#pragma once

#include <cstdint>

namespace glto::common {

/// 64-bit finalizer from SplitMix64 (Stafford variant 13).
inline constexpr std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Deterministic splittable RNG: every node of a computation tree owns a
/// 64-bit state; children derive theirs from (state, child index) only.
class SplitRng {
 public:
  explicit constexpr SplitRng(std::uint64_t seed) : state_(mix64(seed)) {}

  /// Deterministic child stream @p i of this stream.
  [[nodiscard]] constexpr SplitRng split(std::uint64_t i) const {
    return SplitRng(state_ ^ mix64(i * 0x9e3779b97f4a7c15ULL + 0x5851f42d4c957f2dULL));
  }

  /// Next value; advances the stream.
  constexpr std::uint64_t next() {
    state_ = mix64(state_);
    return state_;
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, n).
  constexpr std::uint64_t next_below(std::uint64_t n) {
    return n == 0 ? 0 : next() % n;
  }

  [[nodiscard]] constexpr std::uint64_t state() const { return state_; }

 private:
  explicit constexpr SplitRng(std::uint64_t raw, int) : state_(raw) {}
  std::uint64_t state_;
};

/// xoshiro-style fast sequential PRNG for benchmark data generation.
class FastRng {
 public:
  explicit FastRng(std::uint64_t seed) : s_(mix64(seed)) {}
  std::uint64_t next() {
    s_ = mix64(s_);
    return s_;
  }
  double next_double() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

 private:
  std::uint64_t s_;
};

}  // namespace glto::common
