// An OS mutex the thread-safety analysis can see.
//
// libstdc++'s std::mutex carries no capability attributes, so members
// guarded by one cannot be GLTO_GUARDED_BY-checked. CheckedMutex wraps
// std::mutex with the annotations (and CheckedLock mirrors
// std::lock_guard); registry-style subsystems that block — metrics,
// watchdog — use these so their lock discipline is compiler-enforced like
// the spinlock-guarded runtime core. It satisfies BasicLockable, so
// std::condition_variable_any waits on it directly.
#pragma once

#include <mutex>

#include "common/thread_safety.hpp"

namespace glto::common {

class GLTO_CAPABILITY("mutex") CheckedMutex {
 public:
  CheckedMutex() = default;
  CheckedMutex(const CheckedMutex&) = delete;
  CheckedMutex& operator=(const CheckedMutex&) = delete;

  void lock() GLTO_ACQUIRE() { m_.lock(); }
  bool try_lock() GLTO_TRY_ACQUIRE(true) { return m_.try_lock(); }
  void unlock() GLTO_RELEASE() { m_.unlock(); }

 private:
  std::mutex m_;
};

/// RAII guard for CheckedMutex (std::lock_guard with annotations).
class GLTO_SCOPED_CAPABILITY CheckedLock {
 public:
  explicit CheckedLock(CheckedMutex& m) GLTO_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~CheckedLock() GLTO_RELEASE() { m_.unlock(); }
  CheckedLock(const CheckedLock&) = delete;
  CheckedLock& operator=(const CheckedLock&) = delete;

 private:
  CheckedMutex& m_;
};

}  // namespace glto::common
