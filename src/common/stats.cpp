#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace glto::common {

void RunStats::add(double x) { samples_.push_back(x); }

double RunStats::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double RunStats::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double RunStats::min() const {
  double out = std::numeric_limits<double>::infinity();
  for (double x : samples_) out = std::min(out, x);
  return samples_.empty() ? 0.0 : out;
}

double RunStats::max() const {
  double out = -std::numeric_limits<double>::infinity();
  for (double x : samples_) out = std::max(out, x);
  return samples_.empty() ? 0.0 : out;
}

double RunStats::median() const {
  if (samples_.empty()) return 0.0;
  std::vector<double> s = samples_;
  std::sort(s.begin(), s.end());
  const std::size_t n = s.size();
  return n % 2 == 1 ? s[n / 2] : 0.5 * (s[n / 2 - 1] + s[n / 2]);
}

std::string RunStats::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%.6f ± %.6f [%.6f, %.6f] (n=%zu)", mean(),
                stddev(), min(), max(), count());
  return buf;
}

}  // namespace glto::common
