// Monotonic wall-clock timing used by benches and runtime statistics.
#pragma once

#include <chrono>
#include <cstdint>

namespace glto::common {

/// Nanoseconds from a monotonic clock.
inline std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Seconds (double) from a monotonic clock.
inline double now_sec() { return static_cast<double>(now_ns()) * 1e-9; }

/// Simple scoped stopwatch.
class Timer {
 public:
  Timer() : start_(now_ns()) {}
  void reset() { start_ = now_ns(); }
  [[nodiscard]] std::int64_t elapsed_ns() const { return now_ns() - start_; }
  [[nodiscard]] double elapsed_sec() const {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }

 private:
  std::int64_t start_;
};

}  // namespace glto::common
