// Environment-variable helpers used across the runtime stack.
//
// All runtime knobs (OMP_NUM_THREADS, GLT_IMPL, GLT_SHARED_QUEUES, ...) are
// read through this module so that tests can override them coherently.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace glto::common {

/// Returns the raw value of @p name, or std::nullopt if unset/empty.
std::optional<std::string> env_str(const char* name);

/// Parses @p name as a decimal integer; returns @p fallback when unset or
/// unparsable.
std::int64_t env_i64(const char* name, std::int64_t fallback);

/// Boolean env parsing compatible with OpenMP conventions: "1", "true",
/// "TRUE", "yes", "on" are true; "0", "false", "no", "off" are false.
bool env_bool(const char* name, bool fallback);

/// Sets (or clears, when @p value is nullptr) an environment variable.
/// Only used by tests and benchmark drivers.
void env_set(const char* name, const char* value);

/// Worker-count resolution shared by the three LWT backends (previously
/// hand-rolled in each init): @p requested when positive, else $name,
/// else the hardware thread count. Always ≥ 1.
int env_worker_count(const char* name, int requested);

}  // namespace glto::common
