// Cache-line size constants and padded wrappers to avoid false sharing in
// runtime-internal shared state (queue heads, barrier counters, ...).
#pragma once

#include <atomic>
#include <cstddef>
#include <new>

namespace glto::common {

inline constexpr std::size_t kCacheLine = 64;

/// A value padded out to occupy (at least) one full cache line.
template <typename T>
struct alignas(kCacheLine) Padded {
  T value{};
  char pad[kCacheLine - (sizeof(T) % kCacheLine == 0 ? kCacheLine
                                                     : sizeof(T) % kCacheLine)];
};

/// Padded atomic — each instance owns its own cache line.
template <typename T>
struct alignas(kCacheLine) PaddedAtomic {
  std::atomic<T> value{};
};

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

}  // namespace glto::common
