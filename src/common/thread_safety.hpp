// Clang Thread Safety Analysis attribute macros.
//
// The lock-discipline contract of every annotated type ("waiters_ is
// guarded by lock_") used to live in comments; these macros make Clang
// enforce it at compile time (-Werror=thread-safety in the CI clang leg),
// so a "touched a member after dropping the lock" bug — the PR-8 class of
// review catch — becomes a build break. GCC does not implement the
// analysis; everything expands to nothing there, so the annotations are
// zero-cost and gcc builds are unaffected.
//
// Conventions (docs/API.md "Sanitizers & static analysis"):
//  * Lock types (common::SpinLock, common::CheckedMutex, sched::Mutex) are
//    GLTO_CAPABILITY; their RAII guards are GLTO_SCOPED_CAPABILITY.
//  * Every member whose comment says "guarded by X" carries
//    GLTO_GUARDED_BY(X); the comment stays for human readers.
//  * Functions that assume a lock is held take GLTO_REQUIRES(lock).
//  * GLTO_NO_THREAD_SAFETY_ANALYSIS is a last resort for code whose
//    discipline is real but outside the analysis' model (e.g. a callback
//    invoked with an aliased lock held through a pointer); each use must
//    carry a comment saying why the analysis cannot see the guard.
#pragma once

#if defined(__clang__)
#define GLTO_TSA_ATTR(x) __attribute__((x))
#else
#define GLTO_TSA_ATTR(x)  // no-op: gcc has no thread-safety analysis
#endif

#define GLTO_CAPABILITY(x) GLTO_TSA_ATTR(capability(x))
#define GLTO_SCOPED_CAPABILITY GLTO_TSA_ATTR(scoped_lockable)
#define GLTO_GUARDED_BY(x) GLTO_TSA_ATTR(guarded_by(x))
#define GLTO_PT_GUARDED_BY(x) GLTO_TSA_ATTR(pt_guarded_by(x))
#define GLTO_ACQUIRED_BEFORE(...) GLTO_TSA_ATTR(acquired_before(__VA_ARGS__))
#define GLTO_ACQUIRED_AFTER(...) GLTO_TSA_ATTR(acquired_after(__VA_ARGS__))
#define GLTO_REQUIRES(...) GLTO_TSA_ATTR(requires_capability(__VA_ARGS__))
#define GLTO_ACQUIRE(...) GLTO_TSA_ATTR(acquire_capability(__VA_ARGS__))
#define GLTO_RELEASE(...) GLTO_TSA_ATTR(release_capability(__VA_ARGS__))
#define GLTO_TRY_ACQUIRE(...) GLTO_TSA_ATTR(try_acquire_capability(__VA_ARGS__))
#define GLTO_EXCLUDES(...) GLTO_TSA_ATTR(locks_excluded(__VA_ARGS__))
#define GLTO_RETURN_CAPABILITY(x) GLTO_TSA_ATTR(lock_returned(x))
#define GLTO_NO_THREAD_SAFETY_ANALYSIS GLTO_TSA_ATTR(no_thread_safety_analysis)
