// Runtime-internal assertion macros. GLTO_CHECK stays on in release builds:
// scheduler invariants are cheap to test and catastrophic to violate.
#pragma once

#include <cstdio>
#include <cstdlib>

#define GLTO_CHECK(cond)                                                   \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "GLTO_CHECK failed: %s at %s:%d\n", #cond,      \
                   __FILE__, __LINE__);                                    \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define GLTO_CHECK_MSG(cond, msg)                                          \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "GLTO_CHECK failed: %s (%s) at %s:%d\n", #cond, \
                   msg, __FILE__, __LINE__);                               \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#ifndef NDEBUG
#define GLTO_DCHECK(cond) GLTO_CHECK(cond)
#else
#define GLTO_DCHECK(cond) \
  do {                    \
  } while (0)
#endif
