// Unified metrics registry + latency profiling hooks.
//
// Three layers, all cheap-by-default:
//
//  * sched::StatsSnapshot — the one shared-scheduler counter block every
//    backend used to hand-copy field by field. abt/qth/mth/glt Stats now
//    inherit it, so a snapshot is a single slice assignment. The counters
//    behind it stay cache-line-sharded per worker (WsCore::Counters); this
//    header only names the aggregated view.
//
//  * Latency histograms — per-task submit→start (queue delay) and
//    start→complete (service time), log2 octaves with 8 linear sub-buckets
//    (≤12.5% value error) and exact count/max. Armed by $GLTO_METRICS=1 or
//    implicitly whenever tracing is on; off, each hook is one relaxed load
//    and a predictable branch (the same contract as trace_emit).
//
//  * MetricsSnapshot / providers — named counters and gauges pulled from
//    every live subsystem (backend stats, dep engines, chaos, trace rings,
//    histograms) through registered provider callbacks, with delta-since-
//    baseline for bench rows and the watchdog dump.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace glto::sched {

/// Scheduler-behaviour counters common to every backend (zero under
/// locked dispatch / one thread). Backend Stats structs inherit this so
/// glt::stats() copies the block once instead of field by field.
struct StatsSnapshot {
  std::uint64_t steals = 0;           ///< units taken from another worker
  std::uint64_t failed_steals = 0;    ///< empty / lost-race steal attempts
  std::uint64_t stack_cache_hits = 0; ///< ULT stacks served lock-free
  std::uint64_t parks = 0;            ///< idle parks (adaptive 200µs–2ms)
  std::uint64_t parked_us = 0;        ///< total requested park time, µs
  std::uint64_t wakes_issued = 0;     ///< targeted unparks sent to workers
  std::uint64_t wakes_spurious = 0;   ///< parks woken but found no work
  std::uint64_t bulk_deposits = 0;    ///< submit_bulk batches published

  /// Copy the core-owned fields from a WsCoreStats (template so this
  /// header stays independent of ws_core.hpp). stack_cache_hits is owned
  /// by the stack pool, not the core — callers fill it separately.
  template <typename CoreStats>
  void assign_core(const CoreStats& cs) {
    steals = cs.steals;
    failed_steals = cs.failed_steals;
    parks = cs.parks;
    parked_us = cs.parked_us;
    wakes_issued = cs.wakes_issued;
    wakes_spurious = cs.wakes_spurious;
    bulk_deposits = cs.bulk_deposits;
  }
};

/// Log2-octave histogram with 8 linear sub-buckets per octave.
/// record() is wait-free (two relaxed fetch_adds + a CAS-free max update
/// loop); percentile_ns() reports each bucket's upper bound, so estimates
/// are conservative within 12.5%. count()/max_ns() are exact.
class LatencyHistogram {
 public:
  static constexpr unsigned kSubBits = 3;
  static constexpr unsigned kSub = 1u << kSubBits;          // 8
  static constexpr unsigned kMaxOctave = 47;                // ns < 2^48
  static constexpr unsigned kSlots = (kMaxOctave - 2) * kSub + kSub;  // 368

  void record(std::uint64_t ns) {
    slots_[slot_of(ns)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t cur = max_.load(std::memory_order_relaxed);
    while (ns > cur &&
           !max_.compare_exchange_weak(cur, ns, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t max_ns() const {
    return max_.load(std::memory_order_relaxed);
  }

  /// Value at percentile @p p in (0, 100]. p=100 returns the exact max.
  [[nodiscard]] std::uint64_t percentile_ns(double p) const;

  void reset();

 private:
  static unsigned slot_of(std::uint64_t ns) {
    if (ns < kSub) return static_cast<unsigned>(ns);
    unsigned o = 63u - static_cast<unsigned>(__builtin_clzll(ns));
    if (o > kMaxOctave) {
      o = kMaxOctave;
      ns = (std::uint64_t{1} << (kMaxOctave + 1)) - 1;
    }
    const unsigned sub =
        static_cast<unsigned>((ns >> (o - kSubBits)) & (kSub - 1));
    return (o - 2) * kSub + sub;
  }
  /// Upper bound of values mapping to @p slot (the reported estimate).
  static std::uint64_t slot_upper(unsigned slot);

  std::atomic<std::uint64_t> slots_[kSlots]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// Global per-task latency instruments (all deferred tasks across every
/// runtime feed the same pair; recording is sharded only by bucket).
[[nodiscard]] LatencyHistogram& queue_delay_hist();
[[nodiscard]] LatencyHistogram& service_time_hist();

namespace lat_detail {
extern std::atomic<bool> g_lat_on;
std::uint64_t task_submit_slow(std::uint64_t id, bool deferred);
std::uint64_t task_start_slow(std::uint64_t submit_ns, std::uint64_t id);
void task_complete_slow(std::uint64_t start_ns, std::uint64_t id);
}  // namespace lat_detail

[[nodiscard]] inline bool profiling_enabled() {
  return lat_detail::g_lat_on.load(std::memory_order_relaxed);
}

/// Stamp a task at submission. Returns the submit timestamp to stash on the
/// task record, or 0 when profiling is off (the other hooks then no-op).
/// Also emits the task_submit trace event when tracing is armed.
inline std::uint64_t profile_task_submit(std::uint64_t id,
                                         bool deferred = true) {
  if (!profiling_enabled()) return 0;
  return lat_detail::task_submit_slow(id, deferred);
}

/// Record queue delay (submit→start) and return the start timestamp to
/// carry to profile_task_complete. Pass the value profile_task_submit
/// returned; 0 propagates as a no-op.
inline std::uint64_t profile_task_start(std::uint64_t submit_ns,
                                        std::uint64_t id) {
  if (submit_ns == 0) return 0;
  return lat_detail::task_start_slow(submit_ns, id);
}

/// Record service time (start→complete); emits the task slice trace event.
inline void profile_task_complete(std::uint64_t start_ns, std::uint64_t id) {
  if (start_ns == 0) return;
  lat_detail::task_complete_slow(start_ns, id);
}

/// A point-in-time view of every registered metric. Entries are either
/// counters (monotonic; deltas subtract) or gauges (reported as-is).
struct MetricsSnapshot {
  struct Entry {
    std::string name;
    std::uint64_t value = 0;
    bool counter = true;
  };
  std::vector<Entry> entries;

  /// Merge-add: same-named counter entries accumulate (multiple dep
  /// engines report under one name).
  void add(std::string_view name, std::uint64_t v, bool counter = true);
  [[nodiscard]] std::uint64_t value(std::string_view name) const;
  [[nodiscard]] bool has(std::string_view name) const;
};

/// Provider callback: append entries describing the subsystem's current
/// counters. Must not block; called with the registry lock held.
using MetricsProviderFn = void (*)(void* arg, MetricsSnapshot& out);

/// Register / unregister a provider (mirrors watchdog_register_dumper).
std::uint64_t metrics_register_provider(MetricsProviderFn fn, void* arg);
void metrics_unregister_provider(std::uint64_t token);

/// Snapshot all providers plus the built-in entries (latency percentiles,
/// trace ring totals, chaos fault count).
[[nodiscard]] MetricsSnapshot metrics_snapshot();

/// Delta against the registry's internal baseline (updated on every call;
/// first call baselines at process start). Counter entries subtract —
/// clamped at 0 across runtime re-init — and gauges pass through.
[[nodiscard]] MetricsSnapshot metrics_delta();

/// Delta against a caller-owned baseline, which is updated to the current
/// snapshot. Lets benches keep private epochs without disturbing
/// metrics_delta() users.
[[nodiscard]] MetricsSnapshot metrics_delta_since(MetricsSnapshot& baseline);

/// Print "name value" lines for every entry; used by the watchdog stall
/// dump. Never blocks (try-lock; prints a notice if the registry is busy).
void metrics_dump(std::FILE* out);

/// Resolve $GLTO_METRICS (latency histograms on/off). Tracing being armed
/// also arms the histograms — the exporter wants the same timestamps.
/// Idempotent; called from glt::init and omp::select after trace init.
void metrics_init_from_env();

/// Test hook: force the latency gate (does not touch env resolution).
void metrics_set_for_testing(bool latency_on);

}  // namespace glto::sched
