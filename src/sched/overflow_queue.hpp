// Unbounded MPMC queue: lock-free fast path, locked overflow.
//
// The scheduler needs multi-producer queues that (a) never reject a push —
// a ready ULT has nowhere else to go — and (b) stay lock-free at the rates
// the paper measures. Vyukov's bounded MPMC ring (sched::MpmcQueue) gives
// the lock-free fast path; a spinlock-guarded deque absorbs the overflow
// when a burst outruns the ring. Consumers drain the overflow as soon as
// it is non-empty, so overflowed items are never starved; ordering across
// the ring/overflow boundary is approximate (FIFO within each), which is
// fine for ready queues where order is a fairness heuristic, not a
// correctness property.
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>

#include "sched/locked_queue.hpp"
#include "sched/mpmc_queue.hpp"

namespace glto::sched {

template <typename T>
class OverflowQueue {
 public:
  explicit OverflowQueue(std::size_t ring_capacity = 1024)
      : ring_(ring_capacity) {}

  OverflowQueue(const OverflowQueue&) = delete;
  OverflowQueue& operator=(const OverflowQueue&) = delete;

  /// Never fails. Lock-free unless the ring is full or the overflow is
  /// already draining (pushing behind the overflow keeps items that
  /// overflowed together from being reordered indefinitely).
  void push(T item) {
    if (overflow_count_.load(std::memory_order_acquire) == 0 &&
        ring_.try_push(item)) {
      return;
    }
    overflow_.push(item);
    overflow_count_.fetch_add(1, std::memory_order_release);
  }

  /// Bulk append. Ring slots are still claimed one CAS at a time (MPMC
  /// cell sequencing allows no less), but once the batch overflows the
  /// ring, the entire tail is appended under ONE overflow-lock
  /// acquisition — a burst that outruns the ring pays one lock
  /// round-trip, not one per item.
  void push_n(const T* items, std::size_t n) {
    std::size_t i = 0;
    if (overflow_count_.load(std::memory_order_acquire) == 0) {
      while (i < n && ring_.try_push(items[i])) ++i;
    }
    if (i < n) {
      overflow_.push_n(items + i, n - i);
      overflow_count_.fetch_add(static_cast<std::int64_t>(n - i),
                                std::memory_order_release);
    }
  }

  std::optional<T> pop() {
    if (overflow_count_.load(std::memory_order_acquire) > 0) {
      if (auto v = overflow_.pop()) {
        overflow_count_.fetch_sub(1, std::memory_order_relaxed);
        return v;
      }
    }
    return ring_.try_pop();
  }

  /// Racy; for idle heuristics and stats only.
  [[nodiscard]] std::size_t size_approx() const {
    return ring_.size_approx() +
           static_cast<std::size_t>(
               overflow_count_.load(std::memory_order_relaxed));
  }

 private:
  MpmcQueue<T> ring_;
  LockedQueue<T> overflow_;
  std::atomic<std::int64_t> overflow_count_{0};
};

}  // namespace glto::sched
