#include "sched/qos.hpp"

#include <atomic>

#include "common/time.hpp"
#include "sched/trace.hpp"

namespace glto::sched {

namespace {

std::atomic<std::uint64_t> g_completed{0};
std::atomic<std::uint64_t> g_shed{0};
std::atomic<std::uint64_t> g_deadline_missed{0};
std::atomic<std::uint64_t> g_retried{0};
std::atomic<std::uint64_t> g_degraded{0};

}  // namespace

bool qos_expired(const QosContext* qos) {
  if (qos == nullptr || qos->deadline_ns == 0) return false;
  return common::now_ns() >= qos->deadline_ns;
}

void qos_note_completed() {
  g_completed.fetch_add(1, std::memory_order_relaxed);
}

void qos_note_shed(std::uint64_t request_id, std::uint32_t attempts) {
  g_shed.fetch_add(1, std::memory_order_relaxed);
  trace_emit(TraceKind::qos_shed, request_id, attempts);
}

void qos_note_deadline_miss(std::uint64_t request_id, QosMissPhase phase) {
  g_deadline_missed.fetch_add(1, std::memory_order_relaxed);
  trace_emit(TraceKind::deadline_miss, request_id,
             static_cast<std::uint32_t>(phase));
}

void qos_note_retried() { g_retried.fetch_add(1, std::memory_order_relaxed); }

void qos_note_degraded() { g_degraded.fetch_add(1, std::memory_order_relaxed); }

std::uint64_t qos_completed() {
  return g_completed.load(std::memory_order_relaxed);
}
std::uint64_t qos_shed_total() {
  return g_shed.load(std::memory_order_relaxed);
}
std::uint64_t qos_deadline_missed() {
  return g_deadline_missed.load(std::memory_order_relaxed);
}
std::uint64_t qos_retried() {
  return g_retried.load(std::memory_order_relaxed);
}
std::uint64_t qos_degraded() {
  return g_degraded.load(std::memory_order_relaxed);
}

void qos_reset_for_testing() {
  g_completed.store(0, std::memory_order_relaxed);
  g_shed.store(0, std::memory_order_relaxed);
  g_deadline_missed.store(0, std::memory_order_relaxed);
  g_retried.store(0, std::memory_order_relaxed);
  g_degraded.store(0, std::memory_order_relaxed);
}

}  // namespace glto::sched
