// Bounded lock-free MPMC queue (Vyukov's algorithm).
//
// Used where many producers and many consumers touch the same queue at high
// rate (the abt shared pool under GLT_SHARED_QUEUES). Each slot carries a
// sequence number; producers and consumers claim slots with a single CAS on
// their cursor, so contention is on two cache lines instead of one lock.
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <vector>

#include "common/cacheline.hpp"
#include "common/debug.hpp"

namespace glto::sched {

template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(std::size_t capacity_pow2 = 1024)
      : capacity_(round_pow2(capacity_pow2)),
        mask_(capacity_ - 1),
        slots_(capacity_) {
    for (std::size_t i = 0; i < capacity_; ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  /// Returns false when the queue is full.
  bool try_push(T item) {
    std::size_t pos = tail_.value.load(std::memory_order_relaxed);
    for (;;) {
      Slot& s = slots_[pos & mask_];
      const std::size_t seq = s.seq.load(std::memory_order_acquire);
      const auto diff = static_cast<std::intptr_t>(seq) -
                        static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        if (tail_.value.compare_exchange_weak(pos, pos + 1,
                                              std::memory_order_relaxed)) {
          s.item = item;
          s.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = tail_.value.load(std::memory_order_relaxed);
      }
    }
  }

  std::optional<T> try_pop() {
    std::size_t pos = head_.value.load(std::memory_order_relaxed);
    for (;;) {
      Slot& s = slots_[pos & mask_];
      const std::size_t seq = s.seq.load(std::memory_order_acquire);
      const auto diff = static_cast<std::intptr_t>(seq) -
                        static_cast<std::intptr_t>(pos + 1);
      if (diff == 0) {
        if (head_.value.compare_exchange_weak(pos, pos + 1,
                                              std::memory_order_relaxed)) {
          T out = s.item;
          s.seq.store(pos + capacity_, std::memory_order_release);
          return out;
        }
      } else if (diff < 0) {
        return std::nullopt;  // empty
      } else {
        pos = head_.value.load(std::memory_order_relaxed);
      }
    }
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  [[nodiscard]] std::size_t size_approx() const {
    const auto t = tail_.value.load(std::memory_order_relaxed);
    const auto h = head_.value.load(std::memory_order_relaxed);
    return t >= h ? t - h : 0;
  }

 private:
  struct Slot {
    std::atomic<std::size_t> seq;
    T item;
  };

  static std::size_t round_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p < 4 ? 4 : p;
  }

  std::size_t capacity_;
  std::size_t mask_;
  std::vector<Slot> slots_;
  glto::common::PaddedAtomic<std::size_t> head_;
  glto::common::PaddedAtomic<std::size_t> tail_;
};

}  // namespace glto::sched
