// Per-worker object freelist with a shared overflow slab.
//
// Work-unit records (abt WorkUnits, qth Threads, mth Strands) are created
// and destroyed at the paper's microbenchmark rates, so their allocation
// must stay off malloc and off any shared lock on the fast path. Each
// worker owns a plain vector it alone touches (lock-free by ownership);
// oversized lists spill half to a spinlock-guarded shared slab, which also
// feeds workers whose join/create balance runs negative and foreign
// threads that recycle from outside the worker fleet.
//
// Hoisted out of the abt backend (PR 1) so qth and mth recycle through the
// identical policy — the qth/mth dispatch-parity work this PR is about.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <vector>

#include "common/cacheline.hpp"
#include "common/spin.hpp"
#include "common/thread_safety.hpp"
#include "sched/chaos.hpp"

namespace glto::sched {

template <typename Node>
class Freelist {
 public:
  /// Local-list size that triggers a spill of half the list to the slab.
  static constexpr std::size_t kSpillHigh = 512;
  /// Nodes moved slab→local per refill (one lock acquisition).
  static constexpr std::size_t kRefillBatch = 32;

  explicit Freelist(int num_workers)
      : lists_(static_cast<std::size_t>(num_workers > 0 ? num_workers : 1)) {}

  Freelist(const Freelist&) = delete;
  Freelist& operator=(const Freelist&) = delete;

  ~Freelist() {
    for (PerWorker& pw : lists_) {
      for (Node* n : pw.items) delete n;
    }
    for (Node* n : slab_) delete n;
  }

  /// Pops a recycled node (per-worker list, batch-refilled from the slab)
  /// or returns nullptr — the caller heap-allocates a fresh one. Lock-free
  /// unless the local list is empty and the slab has stock. @p rank < 0
  /// (foreign thread) or beyond the worker count takes the locked slab
  /// path — slower, but without it such threads would recycle into the
  /// slab while never draining it, growing it without bound (e.g. gnu's
  /// nested mode churns through fresh OS threads every region).
  [[nodiscard]] Node* try_alloc(int rank) {
    // Chaos hook: a simulated slab-exhaustion forces the caller onto its
    // heap-spill path, the same degradation a genuinely drained pool
    // produces. Every caller must already tolerate nullptr, so injecting
    // it here exercises real recovery code, not a synthetic branch.
    if (chaos_alloc_fail()) return nullptr;
    if (rank < 0 || static_cast<std::size_t>(rank) >= lists_.size()) {
      if (slab_size_.load(std::memory_order_relaxed) == 0) return nullptr;
      common::SpinGuard g(slab_lock_);
      if (slab_.empty()) return nullptr;
      Node* n = slab_.back();
      slab_.pop_back();
      slab_size_.store(slab_.size(), std::memory_order_relaxed);
      return n;
    }
    PerWorker& pw = lists_[static_cast<std::size_t>(rank)];
    if (pw.items.empty() &&
        slab_size_.load(std::memory_order_relaxed) > 0) {
      common::SpinGuard g(slab_lock_);
      const std::size_t take = std::min(kRefillBatch, slab_.size());
      pw.items.insert(pw.items.end(), slab_.end() - static_cast<long>(take),
                      slab_.end());
      slab_.resize(slab_.size() - take);
      slab_size_.store(slab_.size(), std::memory_order_relaxed);
    }
    if (pw.items.empty()) return nullptr;
    Node* n = pw.items.back();
    pw.items.pop_back();
    return n;
  }

  /// Recycles a node. Owner fast path when @p rank ≥ 0; foreign threads
  /// (and spills from oversized local lists) go through the shared slab.
  /// Callers after a suspension point must pass the *current* rank (see
  /// abt::tls_now) — a stale rank would touch another worker's owner-only
  /// list.
  void recycle(int rank, Node* n) {
    if (rank >= 0 && static_cast<std::size_t>(rank) < lists_.size()) {
      PerWorker& pw = lists_[static_cast<std::size_t>(rank)];
      pw.items.push_back(n);
      if (pw.items.size() > kSpillHigh) {
        const std::size_t keep = kSpillHigh / 2;
        common::SpinGuard g(slab_lock_);
        slab_.insert(slab_.end(), pw.items.begin() + static_cast<long>(keep),
                     pw.items.end());
        slab_size_.store(slab_.size(), std::memory_order_relaxed);
        pw.items.resize(keep);
      }
      return;
    }
    common::SpinGuard g(slab_lock_);
    slab_.push_back(n);
    slab_size_.store(slab_.size(), std::memory_order_relaxed);
  }

  /// Racy stock probe (tests / stats).
  [[nodiscard]] std::size_t slab_size_approx() const {
    return slab_size_.load(std::memory_order_relaxed);
  }

 private:
  struct alignas(common::kCacheLine) PerWorker {
    std::vector<Node*> items;
  };

  std::vector<PerWorker> lists_;
  common::SpinLock slab_lock_;
  std::vector<Node*> slab_ GLTO_GUARDED_BY(slab_lock_);
  /// Lock-free mirror of slab_.size() so the empty-slab fast path skips
  /// the lock; refreshed under slab_lock_ after every mutation.
  std::atomic<std::size_t> slab_size_{0};
};

}  // namespace glto::sched
