// Mutex/spinlock-protected FIFO/deque containers.
//
// These deliberately *simple* queues model what the paper's baselines use:
// libgomp's single shared task queue is a mutex-protected list, and the
// Intel runtime's per-thread task deques are lock-protected (thieves take
// the victim's lock). The contention they exhibit under many OS threads is
// part of the behaviour the paper measures, so we keep the locking honest
// rather than substituting a lock-free structure.
#pragma once

#include <deque>
#include <optional>

#include "common/spin.hpp"
#include "common/thread_safety.hpp"

namespace glto::sched {

/// Spinlock-protected FIFO queue.
template <typename T>
class LockedQueue {
 public:
  void push(T item) {
    glto::common::SpinGuard g(lock_);
    items_.push_back(std::move(item));
  }

  void push_front(T item) {
    glto::common::SpinGuard g(lock_);
    items_.push_front(std::move(item));
  }

  /// Appends @p n items under a single lock acquisition (bulk deposits:
  /// one producer publishing a burst pays one lock round-trip, not n).
  void push_n(const T* items, std::size_t n) {
    glto::common::SpinGuard g(lock_);
    for (std::size_t i = 0; i < n; ++i) items_.push_back(items[i]);
  }

  std::optional<T> pop() {
    glto::common::SpinGuard g(lock_);
    if (items_.empty()) return std::nullopt;
    T out = std::move(items_.front());
    items_.pop_front();
    return out;
  }

  std::optional<T> pop_back() {
    glto::common::SpinGuard g(lock_);
    if (items_.empty()) return std::nullopt;
    T out = std::move(items_.back());
    items_.pop_back();
    return out;
  }

  [[nodiscard]] std::size_t size() const {
    glto::common::SpinGuard g(lock_);
    return items_.size();
  }

  [[nodiscard]] bool empty() const { return size() == 0; }

 private:
  mutable glto::common::SpinLock lock_;
  std::deque<T> items_ GLTO_GUARDED_BY(lock_);
};

/// Bounded lock-protected deque: owner pushes/pops at the back, thieves pop
/// at the front. push() fails when full — the Intel-like runtime uses this
/// to trigger its task cut-off (task executed immediately instead of
/// deferred) exactly like KMP_TASK_DEQUE's bounded behaviour.
template <typename T>
class BoundedDeque {
 public:
  explicit BoundedDeque(std::size_t capacity) : capacity_(capacity) {}

  /// Returns false (without enqueueing) when the deque is full.
  bool try_push(T item) {
    glto::common::SpinGuard g(lock_);
    if (items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    return true;
  }

  std::optional<T> pop_owner() {  // LIFO for locality
    glto::common::SpinGuard g(lock_);
    if (items_.empty()) return std::nullopt;
    T out = std::move(items_.back());
    items_.pop_back();
    return out;
  }

  std::optional<T> steal() {  // FIFO steals oldest
    glto::common::SpinGuard g(lock_);
    if (items_.empty()) return std::nullopt;
    T out = std::move(items_.front());
    items_.pop_front();
    return out;
  }

  [[nodiscard]] std::size_t size() const {
    glto::common::SpinGuard g(lock_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  mutable glto::common::SpinLock lock_;
  std::deque<T> items_ GLTO_GUARDED_BY(lock_);
  std::size_t capacity_;
};

}  // namespace glto::sched
