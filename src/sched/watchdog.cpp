#include "sched/watchdog.hpp"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "common/checked_mutex.hpp"
#include "common/env.hpp"
#include "sched/metrics.hpp"
#include "sched/trace.hpp"

namespace glto::sched {

namespace detail {
std::atomic<bool> g_watchdog_on{false};
std::atomic<std::uint64_t> g_watchdog_progress{0};
std::atomic<std::int64_t> g_watchdog_waiters{0};
std::atomic<std::int64_t> g_watchdog_pending{0};
}  // namespace detail

namespace {

struct Dumper {
  std::uint64_t token;
  WatchdogDumpFn fn;
  void* arg;
};

// Leaked on purpose: the monitor is a detached thread that may outlive
// static destruction; it must never touch a destroyed global.
struct WatchdogState {
  common::CheckedMutex m;
  // condition_variable_any: waits on the annotated mutex directly (it is
  // BasicLockable), keeping the guarded members compiler-checked.
  std::condition_variable_any cv;
  std::int64_t window_ms GLTO_GUARDED_BY(m) = 0;  ///< 0 = disarmed
  std::uint64_t generation GLTO_GUARDED_BY(m) = 0;
  bool thread_running GLTO_GUARDED_BY(m) = false;
  std::vector<Dumper> dumpers GLTO_GUARDED_BY(m);
  std::uint64_t next_token GLTO_GUARDED_BY(m) = 1;
};

WatchdogState& state() {
  static WatchdogState* s = new WatchdogState();
  return *s;
}

std::once_flag g_env_once;

void fire(WatchdogState& s, std::int64_t stalled_ms) {
  std::fprintf(stderr,
               "glto: WATCHDOG: no scheduler progress for %lld ms with "
               "%lld blocked waiter(s) and %lld pending dep node(s) — "
               "runtime is quiescent but unfinished; dumping state\n",
               static_cast<long long>(stalled_ms),
               static_cast<long long>(detail::g_watchdog_waiters.load(
                   std::memory_order_relaxed)),
               static_cast<long long>(detail::g_watchdog_pending.load(
                   std::memory_order_relaxed)));
  std::vector<Dumper> dumpers;
  {
    common::CheckedLock lk(s.m);
    dumpers = s.dumpers;
  }
  for (const Dumper& d : dumpers) d.fn(d.arg);
  // Consolidated counters, then the flight recorder: with $GLTO_TRACE
  // armed the stall dump carries the last events per worker ring — a
  // timeline of how the runtime wedged, not just its final queue depths.
  metrics_dump(stderr);
  if (trace_enabled()) trace_dump_tail(stderr, 64);
  std::fflush(stderr);
  std::abort();
}

// Single persistent monitor: spawned on the first arm, it sleeps while
// disarmed and re-baselines its stall clock whenever the window changes.
void monitor_loop() {
  WatchdogState& s = state();
  std::uint64_t seen_generation = 0;
  std::uint64_t last_progress = 0;
  auto stall_start = std::chrono::steady_clock::now();
  bool stalled = false;
  for (;;) {
    std::int64_t window;
    {
      common::CheckedLock lk(s.m);
      // Explicit wait loop instead of the predicate overload: a predicate
      // lambda cannot carry thread-safety attributes in C++17, so reading
      // window_ms inside one would defeat its GLTO_GUARDED_BY check.
      while (s.window_ms <= 0) s.cv.wait(s.m);
      if (s.generation != seen_generation) {
        seen_generation = s.generation;
        stalled = false;
        last_progress =
            detail::g_watchdog_progress.load(std::memory_order_relaxed);
      }
      window = s.window_ms;
      // Poll at a quarter window so a stall is caught within ~1.25
      // windows worst-case without burning cycles on tight re-checks.
      s.cv.wait_for(s.m,
                    std::chrono::milliseconds(window < 4 ? 1 : window / 4));
      if (s.window_ms <= 0 || s.generation != seen_generation) continue;
    }
    const std::uint64_t progress =
        detail::g_watchdog_progress.load(std::memory_order_relaxed);
    const std::int64_t waiters =
        detail::g_watchdog_waiters.load(std::memory_order_relaxed);
    const std::int64_t pending =
        detail::g_watchdog_pending.load(std::memory_order_relaxed);
    const bool unfinished = waiters > 0 || pending > 0;
    if (progress != last_progress || !unfinished) {
      last_progress = progress;
      stalled = false;
      continue;
    }
    const auto now = std::chrono::steady_clock::now();
    if (!stalled) {
      stalled = true;
      stall_start = now;
      continue;
    }
    const auto stalled_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(now -
                                                              stall_start)
            .count();
    if (stalled_ms >= window) fire(s, stalled_ms);
  }
}

void arm(std::int64_t ms) {
  WatchdogState& s = state();
  bool spawn = false;
  {
    common::CheckedLock lk(s.m);
    s.window_ms = ms;
    ++s.generation;
    if (ms > 0 && !s.thread_running) {
      s.thread_running = true;
      spawn = true;
    }
  }
  detail::g_watchdog_on.store(ms > 0, std::memory_order_release);
  s.cv.notify_all();
  if (spawn) std::thread(monitor_loop).detach();
}

}  // namespace

void watchdog_init_from_env() {
  std::call_once(g_env_once, [] {
    const std::int64_t ms = common::env_i64("GLTO_WATCHDOG_MS", 0);
    if (ms > 0) arm(ms);
  });
}

void watchdog_set_for_testing(std::int64_t ms) {
  std::call_once(g_env_once, [] {});
  arm(ms > 0 ? ms : 0);
}

std::uint64_t watchdog_register_dumper(WatchdogDumpFn fn, void* arg) {
  WatchdogState& s = state();
  common::CheckedLock lk(s.m);
  const std::uint64_t token = s.next_token++;
  s.dumpers.push_back(Dumper{token, fn, arg});
  return token;
}

void watchdog_unregister_dumper(std::uint64_t token) {
  WatchdogState& s = state();
  common::CheckedLock lk(s.m);
  for (auto it = s.dumpers.begin(); it != s.dumpers.end(); ++it) {
    if (it->token == token) {
      s.dumpers.erase(it);
      return;
    }
  }
}

}  // namespace glto::sched
