// Fault-injection chaos harness shared by the runtime tree.
//
// Probabilistically fails ULT creation (the caller degrades to inline
// execution), fails freelist slab allocation (exercising the heap spill
// paths), and injects short delays at suspension points (widening race
// windows that a clean scheduler ordering would never open). The plan is
// resolved once from $GLTO_CHAOS ("spawn:p,alloc:p,delay:p[,seed:s]") by
// sched::resolve_chaos; with the variable unset every hook is one relaxed
// load of `detail::g_chaos_on` and a predictable branch — cheap enough to
// leave compiled into release builds (abl_glt_dispatch carries the
// chaos-off overhead cell proving it).
//
// Determinism: each OS thread derives its roll stream from
// mix64(seed ^ thread-ordinal), so a fixed seed reproduces the same
// per-thread fault sequence; cross-thread interleaving still varies, which
// is the point of a soak.
#pragma once

#include <atomic>
#include <cstdint>

#include "sched/dispatch.hpp"

namespace glto::sched {

namespace detail {
extern std::atomic<bool> g_chaos_on;
/// Out-of-line probability rolls — only reached when chaos is enabled.
[[nodiscard]] bool chaos_roll_spawn();
[[nodiscard]] bool chaos_roll_alloc();
[[nodiscard]] bool chaos_roll_delay();
void chaos_do_delay();
}  // namespace detail

/// Resolves $GLTO_CHAOS on first use and latches the result. Idempotent;
/// every hook funnels through the cached flag afterwards.
void chaos_init_from_env();

/// Replaces the active plan (tests/bench toggle chaos in-process without
/// re-exec). Passing a default-constructed ChaosConfig turns chaos off.
void chaos_set_for_testing(const ChaosConfig& cfg);

/// Current plan (post-resolution).
[[nodiscard]] ChaosConfig chaos_config();

/// Total faults injected so far (spawn + alloc + delay), for soak
/// assertions that the harness actually fired.
[[nodiscard]] std::uint64_t chaos_faults_injected();

/// One relaxed load: is any fault injection active? For callers that pick
/// a different code path wholesale under chaos (e.g. bulk spawns degrade
/// to per-task spawns so each one passes the spawn-fail hook).
[[nodiscard]] inline bool chaos_enabled() {
  return detail::g_chaos_on.load(std::memory_order_relaxed);
}

/// True ⇒ the caller must pretend ULT creation failed and run the work
/// inline instead.
inline bool chaos_spawn_fail() {
  if (!detail::g_chaos_on.load(std::memory_order_relaxed)) return false;
  return detail::chaos_roll_spawn();
}

/// True ⇒ the freelist must report slab exhaustion (caller heap-spills).
inline bool chaos_alloc_fail() {
  if (!detail::g_chaos_on.load(std::memory_order_relaxed)) return false;
  return detail::chaos_roll_alloc();
}

/// Possibly sleeps a few microseconds; called at suspension points.
inline void chaos_maybe_delay() {
  if (!detail::g_chaos_on.load(std::memory_order_relaxed)) return;
  if (detail::chaos_roll_delay()) detail::chaos_do_delay();
}

}  // namespace glto::sched
