// Per-request quality-of-service context: the runtime half of a
// real-time serving contract. A request carries an absolute deadline and
// an attempt count through admission, queueing, and the solve itself;
// long-running compute polls the context (cancellation_point-style) so an
// expired in-flight request abandons work instead of finishing a useless
// answer. Global qos.* counters feed the metrics registry — and therefore
// the watchdog's stall dump — so an overloaded server is diagnosable from
// a single dump: rising shed/deadline_missed with flat completed is the
// overload signature.
#pragma once

#include <cstdint>

namespace glto::sched {

/// POD carried alongside one request. Passed by pointer into compute
/// loops; nullptr everywhere means "no QoS" and costs one branch.
struct QosContext {
  std::int64_t deadline_ns = 0;  ///< absolute, common::now_ns clock; 0 = none
  std::uint32_t attempt = 0;     ///< admission attempts consumed (0 = first)

  [[nodiscard]] bool has_deadline() const { return deadline_ns != 0; }
  /// Budget left at @p now_ns; <= 0 once expired. 0 deadline = unbounded
  /// (callers must check has_deadline() before treating this as a bound).
  [[nodiscard]] std::int64_t remaining_ns(std::int64_t now_ns) const {
    return deadline_ns - now_ns;
  }
  [[nodiscard]] bool expired(std::int64_t now_ns) const {
    return deadline_ns != 0 && now_ns >= deadline_ns;
  }
};

/// Poll hook for compute loops (one clock read per call): true when @p qos
/// carries a deadline that has passed. nullptr-safe — a loop can carry
/// the pointer unconditionally.
[[nodiscard]] bool qos_expired(const QosContext* qos);

/// Where a deadline miss was detected; recorded in the trace event aux.
enum class QosMissPhase : std::uint32_t {
  queued = 1,    ///< expired while waiting in the request queue
  in_flight = 2, ///< solve abandoned mid-iteration
  late = 3,      ///< solve finished, but past the deadline
};

/// Accounting events. completed/shed/deadline_missed are terminal — a
/// well-behaved server records exactly one of them per offered request;
/// retried/degraded are incidental and may accompany any outcome.
void qos_note_completed();
void qos_note_shed(std::uint64_t request_id, std::uint32_t attempts);
void qos_note_deadline_miss(std::uint64_t request_id, QosMissPhase phase);
void qos_note_retried();
void qos_note_degraded();

/// Counter reads for the metrics registry (qos.* keys).
[[nodiscard]] std::uint64_t qos_completed();
[[nodiscard]] std::uint64_t qos_shed_total();
[[nodiscard]] std::uint64_t qos_deadline_missed();
[[nodiscard]] std::uint64_t qos_retried();
[[nodiscard]] std::uint64_t qos_degraded();

/// Zeroes every qos.* counter; test isolation only.
void qos_reset_for_testing();

}  // namespace glto::sched
