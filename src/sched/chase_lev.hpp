// Chase–Lev work-stealing deque (dynamic circular array).
//
// Owner pushes/pops at the bottom without locks; thieves steal from the top
// with a CAS. This is the queue MassiveThreads-style schedulers use for
// continuation stealing, and the Intel-like OpenMP baseline uses a bounded
// variant for its per-thread task deques.
//
// Reference: Chase & Lev, "Dynamic Circular Work-Stealing Deque", SPAA'05,
// with the C11 memory-order corrections of Lê et al. (PPoPP'13).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/cacheline.hpp"

namespace glto::sched {

template <typename T>
class ChaseLevDeque {
  static_assert(sizeof(T) <= sizeof(void*) && std::is_trivially_copyable_v<T>,
                "ChaseLevDeque stores small trivially-copyable handles");

 public:
  explicit ChaseLevDeque(std::size_t initial_capacity = 64)
      : array_(new Array(round_pow2(initial_capacity))) {}

  ~ChaseLevDeque() {
    Array* a = array_.load(std::memory_order_relaxed);
    while (a != nullptr) {
      Array* prev = a->prev;
      delete a;
      a = prev;
    }
  }

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  /// Owner-only: push one element at the bottom.
  void push(T item) {
    std::int64_t b = bottom_.load(std::memory_order_relaxed);
    std::int64_t t = top_.load(std::memory_order_acquire);
    Array* a = array_.load(std::memory_order_relaxed);
    if (b - t > static_cast<std::int64_t>(a->capacity) - 1) {
      a = grow(a, t, b);
    }
    a->put(b, item);
    // Release STORE (not fence + relaxed store as in Lê et al.): equally
    // correct — everything before the bottom advance, the slot write and
    // the pushed object's plain fields included, is published to a thief
    // whose steal() acquire-loads bottom_ — and identical codegen on
    // x86-64. The store form is kept because TSan does not model
    // standalone fences: with the fence form every stolen unit's payload
    // reads would be false races.
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// Owner-only: push @p n elements at the bottom in one publication —
  /// one capacity check, one releasing bottom advance for the whole batch
  /// (the bulk-deposit fast path of WsCore::submit_bulk).
  /// Thieves can start stealing the batch the moment bottom moves.
  void push_n(const T* items, std::size_t n) {
    if (n == 0) return;
    std::int64_t b = bottom_.load(std::memory_order_relaxed);
    std::int64_t t = top_.load(std::memory_order_acquire);
    Array* a = array_.load(std::memory_order_relaxed);
    while (b - t + static_cast<std::int64_t>(n) >
           static_cast<std::int64_t>(a->capacity)) {
      a = grow(a, t, b);
    }
    for (std::size_t i = 0; i < n; ++i) {
      a->put(b + static_cast<std::int64_t>(i), items[i]);
    }
    // Release store, not fence + relaxed: see push().
    bottom_.store(b + static_cast<std::int64_t>(n),
                  std::memory_order_release);
  }

  /// Owner-only: pop from the bottom (LIFO). Returns false when empty.
  bool pop(T* out) {
    std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Array* a = array_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t > b) {  // empty; restore
      bottom_.store(b + 1, std::memory_order_relaxed);
      return false;
    }
    *out = a->get(b);
    if (t == b) {  // last element: race with thieves
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        bottom_.store(b + 1, std::memory_order_relaxed);
        return false;
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return true;
  }

  /// Thief: steal from the top (FIFO). Returns false when empty/lost race.
  bool steal(T* out) {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return false;
    Array* a = array_.load(std::memory_order_consume);
    T item = a->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return false;
    }
    *out = item;
    return true;
  }

  /// Approximate size (racy; for heuristics and stats only).
  [[nodiscard]] std::int64_t size_approx() const {
    return bottom_.load(std::memory_order_relaxed) -
           top_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] bool empty_approx() const { return size_approx() <= 0; }

 private:
  struct Array {
    explicit Array(std::size_t cap) : capacity(cap), mask(cap - 1),
                                      slots(cap), prev(nullptr) {}
    std::size_t capacity;
    std::size_t mask;
    std::vector<std::atomic<T>> slots;
    Array* prev;  // retired arrays are kept until deque destruction

    void put(std::int64_t i, T v) {
      slots[static_cast<std::size_t>(i) & mask].store(
          v, std::memory_order_relaxed);
    }
    T get(std::int64_t i) const {
      return slots[static_cast<std::size_t>(i) & mask].load(
          std::memory_order_relaxed);
    }
  };

  static std::size_t round_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p < 8 ? 8 : p;
  }

  Array* grow(Array* old, std::int64_t t, std::int64_t b) {
    auto* bigger = new Array(old->capacity * 2);
    bigger->prev = old;
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    array_.store(bigger, std::memory_order_release);
    return bigger;
  }

  alignas(glto::common::kCacheLine) std::atomic<std::int64_t> top_{0};
  alignas(glto::common::kCacheLine) std::atomic<std::int64_t> bottom_{0};
  alignas(glto::common::kCacheLine) std::atomic<Array*> array_;
};

}  // namespace glto::sched
