// Stall watchdog: turns a silent runtime hang into an actionable report.
//
// A wedged lightweight-thread runtime looks exactly like an idle one from
// the outside — every worker parked, no CPU burned — so a lost wake or a
// dependence cycle used to surface only as a CI job timeout with no state
// attached. The watchdog ($GLTO_WATCHDOG_MS) watches three gauges:
//
//   progress — bumped every time a worker acquires runnable work
//              (sched::WsCore) or a blocking wait completes
//   waiters  — tasks/threads currently blocked in a runtime wait
//              (taskwait, barrier, taskgroup, dep gate, future)
//   pending  — dependence-graph nodes submitted but not yet completed
//
// When progress stays frozen for a full window while waiters or pending is
// non-zero, the runtime is quiescent-but-unfinished: the watchdog runs
// every registered dumper (the scheduling cores print their idle mask,
// per-worker queue depths and park/wake counters; the dep engine its
// pending-node count) and aborts, so the hang produces a scheduler-state
// dump instead of a timeout.
//
// All hooks are one relaxed load when the watchdog is disabled (the
// default), mirroring the chaos harness's off-cost contract.
#pragma once

#include <atomic>
#include <cstdint>

namespace glto::sched {

namespace detail {
extern std::atomic<bool> g_watchdog_on;
extern std::atomic<std::uint64_t> g_watchdog_progress;
extern std::atomic<std::int64_t> g_watchdog_waiters;
extern std::atomic<std::int64_t> g_watchdog_pending;
}  // namespace detail

/// State-dump callback; prints to stderr. Runs on the monitor thread right
/// before abort, so it must not block on runtime locks held by the stall.
using WatchdogDumpFn = void (*)(void* arg);

/// Resolves $GLTO_WATCHDOG_MS on first use; > 0 starts the monitor thread
/// with that stall window. Idempotent.
void watchdog_init_from_env();

/// (Re)arms the watchdog with an explicit window; ms <= 0 disarms. Used by
/// tests to exercise the abort path without environment plumbing.
void watchdog_set_for_testing(std::int64_t ms);

/// Registers a state dumper; returns a token for unregister. Backends
/// register their scheduling core at init and unregister at finalize.
std::uint64_t watchdog_register_dumper(WatchdogDumpFn fn, void* arg);
void watchdog_unregister_dumper(std::uint64_t token);

/// Progress heartbeat — any sign the runtime is still moving.
inline void watchdog_note_progress() {
  if (!detail::g_watchdog_on.load(std::memory_order_relaxed)) return;
  detail::g_watchdog_progress.fetch_add(1, std::memory_order_relaxed);
}

/// Blocking-wait gauge; call on entry/exit of every runtime wait loop.
inline void watchdog_enter_wait() {
  if (!detail::g_watchdog_on.load(std::memory_order_relaxed)) return;
  detail::g_watchdog_waiters.fetch_add(1, std::memory_order_relaxed);
}
inline void watchdog_exit_wait() {
  if (!detail::g_watchdog_on.load(std::memory_order_relaxed)) return;
  detail::g_watchdog_waiters.fetch_sub(1, std::memory_order_relaxed);
  // A wait finishing is progress even if no new work was acquired.
  detail::g_watchdog_progress.fetch_add(1, std::memory_order_relaxed);
}

/// Dep-graph gauge; +1 per node submitted, -1 per node completed. Kept
/// unconditional-cheap: the dep engine calls it on its slow paths only.
inline void watchdog_add_pending(std::int64_t delta) {
  if (!detail::g_watchdog_on.load(std::memory_order_relaxed)) return;
  detail::g_watchdog_pending.fetch_add(delta, std::memory_order_relaxed);
}

}  // namespace glto::sched
