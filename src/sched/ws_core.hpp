// Shared work-stealing scheduler core for the three LWT backends.
//
// PR 1 built this machinery inside the abt backend: per-worker Chase–Lev
// deques with randomized stealing, an owner-only "fair" FIFO side queue
// for pinned/remote/yielded units, a locked-FIFO ablation baseline, a
// single shared MPMC pool for the §IV-F GLT_SHARED_QUEUES study, adaptive
// idle parking, and steal/park counters. This header hoists all of it into
// one reusable engine so qth shepherds and mth workers dispatch through
// the identical fast path — restoring the cross-backend comparison the
// paper's Figs. 4–9 are about (one GLT API, three runtimes, no penalty).
//
// Queue discipline per worker (work-stealing mode):
//  * `deque`  — unpinned units pushed by the owner; LIFO bottom for the
//    owner (cache-warm, work-first), FIFO top for thieves.
//  * `fair`   — pinned, remote-submitted, and yielded units; MPMC push,
//    popped FIFO by the owner only, checked first every 64th pop so it
//    cannot starve behind a spawn storm. Pinned units are never stolen —
//    the exact-placement contract glt::ult_create_to documents.
//  * `locked` — the seed's mutex-guarded FIFO, used exclusively when the
//    core runs in Dispatch::Locked (the measurable baseline).
// A separate *main slot* holds the primary context: only the worker-0
// loop pops it, so a thief can never resume main and tear the runtime
// down from a foreign OS thread (the §IV-G pin-the-main hazard).
//
// Wakeups (the fan-out-dispatch PR): each worker parks on its own
// common::Parker and advertises idleness in an atomic idle-mask before its
// final pre-park probe, so a producer deposit either sees the idle bit
// (and issues one targeted unpark) or the worker's probe sees the deposit
// — no lost wakeups, and no O(team) futex broadcast per push. The
// $GLTO_WAKE_POLICY axis keeps the old broadcast reachable:
//  * one        — every deposit wakes at most one parked worker: the
//                 deposit's owner for owner-only stores (fair/locked/main),
//                 any parked thief for stealable deque pushes. Default.
//  * threshold  — like `one`; submit_bulk engages victims proportionally
//                 to the batch size (⌈n/kBulkWakeGrain⌉) instead of one
//                 per unit of team width.
//  * all        — every deposit wakes every parked worker (the pre-PR-5
//                 thundering-herd baseline, kept for the ablation).
// notify() and request_shutdown() keep broadcast semantics regardless.
//
// submit_bulk deposits a whole batch with one publication per victim and
// one targeted wake per victim: `spread` fans contiguous chunks across
// workers (the producer pattern — the caller's chunk rides its own deque,
// remote chunks go to the victims' fair FIFOs), `local` publishes the
// whole batch on the caller's deque with one release fence
// (ChaseLevDeque::push_n) and wakes idle thieves to rebalance.
//
// The core stores opaque handles (T is a pointer type); running, context
// switching, and lifetime stay in the backend. Null (T{}) means "none".
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "common/cacheline.hpp"
#include "common/parker.hpp"
#include "common/rng.hpp"
#include "sched/chase_lev.hpp"
#include "sched/dispatch.hpp"
#include "sched/locked_queue.hpp"
#include "sched/overflow_queue.hpp"
#include "sched/trace.hpp"
#include "sched/watchdog.hpp"

namespace glto::sched {

struct WsCoreConfig {
  int num_workers = 1;
  bool shared_pool = false;   ///< one pool for all workers (§IV-F ablation)
  bool work_stealing = true;  ///< false → Dispatch::Locked baseline
  std::size_t deque_capacity = 256;
  std::size_t fair_capacity = 1024;
  /// Idle-worker wakeup policy; Auto resolves from $GLTO_WAKE_POLICY
  /// (default wake-one).
  WakePolicy wake_policy = WakePolicy::Auto;
};

struct WsCoreStats {
  std::uint64_t steals = 0;          ///< units taken from another worker
  std::uint64_t failed_steals = 0;   ///< empty / lost-race steal attempts
  std::uint64_t parks = 0;           ///< idle parks (adaptive 200µs–2ms)
  std::uint64_t parked_us = 0;       ///< total requested park time, µs
  std::uint64_t wakes_issued = 0;    ///< targeted unparks sent to workers
  std::uint64_t wakes_spurious = 0;  ///< parks woken but found no work
  std::uint64_t bulk_deposits = 0;   ///< submit_bulk batches published
};

/// Adaptive idle parking: the first park is short (work often arrives
/// within the old fixed 200 µs), each consecutive fruitless park doubles
/// up to a 2 ms cap — a steal probe runs between parks, so a long park can
/// never strand runnable work for more than one wake latency. A park cut
/// short by an unpark does NOT double the backoff: the wake was a real
/// signal that work was near (another worker merely beat us to it), and
/// punishing it would make racing consumers drift toward the 2 ms cap.
inline constexpr std::int64_t kParkMinUs = 200;
inline constexpr std::int64_t kParkMaxUs = 2000;

/// Wake-on-threshold grain: under WakePolicy::Threshold a bulk deposit of
/// n units engages ⌈n/kBulkWakeGrain⌉ victims (clamped to the team), so a
/// small batch does not pay one wake per worker of team width.
inline constexpr std::size_t kBulkWakeGrain = 4;

/// Per-loop acquire state: pop-fairness tick, idle backoff, main-slot
/// alternation, and the steal-victim RNG. One per scheduler loop, owned by
/// the loop (stack or TLS) — never shared between OS threads.
struct AcquireState {
  explicit AcquireState(std::uint64_t seed) : rng(common::mix64(seed)) {}
  unsigned tick = 0;
  int idle = 0;
  std::int64_t park_us = kParkMinUs;
  bool main_turn = false;
  bool advertised = false;    ///< idle-mask bit currently set by this loop
  bool wake_pending = false;  ///< last park was cut short by an unpark
  common::FastRng rng;
};

/// Distribution hint for WsCore::submit_bulk.
enum class BulkHint : std::uint8_t {
  spread,  ///< fan chunks out across workers (producer pattern)
  local,   ///< publish on the caller's deque; woken thieves rebalance
};

template <typename T>
class WsCore {
  static_assert(std::is_pointer_v<T>, "WsCore stores opaque handles");

 public:
  explicit WsCore(const WsCoreConfig& cfg)
      : n_(cfg.num_workers > 0 ? cfg.num_workers : 1),
        shared_(cfg.shared_pool),
        ws_(cfg.work_stealing),
        policy_(resolve_wake_policy(cfg.wake_policy)),
        idle_words_(static_cast<std::size_t>((n_ + 63) / 64)),
        sync_(new WorkerSync[static_cast<std::size_t>(n_)]),
        counters_(static_cast<std::size_t>(n_)) {
    for (auto& w : idle_words_) w.store(0, std::memory_order_relaxed);
    const int pool_count = shared_ ? 1 : n_;
    pools_.reserve(static_cast<std::size_t>(pool_count));
    for (int i = 0; i < pool_count; ++i) {
      pools_.push_back(std::make_unique<Pool>(cfg.deque_capacity,
                                              cfg.fair_capacity));
    }
  }

  WsCore(const WsCore&) = delete;
  WsCore& operator=(const WsCore&) = delete;

  [[nodiscard]] int num_workers() const { return n_; }
  [[nodiscard]] bool work_stealing() const { return ws_; }
  [[nodiscard]] bool shared_pool() const { return shared_; }
  [[nodiscard]] WakePolicy wake_policy() const { return policy_; }
  [[nodiscard]] bool stealing_active() const {
    return ws_ && !shared_ && n_ > 1;
  }

  // ------------------------------------------------------------- routing

  /// Creation-time placement. Hot path — an unpinned spawn by the target's
  /// own worker — lands LIFO on the caller's lock-free deque where idle
  /// workers steal from the top. Exact placement (@p pinned) and foreign
  /// submissions (@p caller_rank != @p target_rank, incl. foreign threads
  /// with caller_rank < 0) go through the target's owner-only fair FIFO,
  /// so pinned units can never be stolen.
  void submit(int caller_rank, int target_rank, bool pinned, T item) {
    if (!ws_) {
      pool_for(target_rank).locked.push(item);
      wake_owner_store(caller_rank, target_rank);
    } else if (shared_) {
      pools_[0]->fair.push(item);
      wake_any(caller_rank);
    } else if (pinned || caller_rank != target_rank) {
      pool_for(target_rank).fair.push(item);
      wake_owner_store(caller_rank, target_rank);
    } else {
      pool_for(caller_rank).deque.push(item);
      wake_thief(caller_rank);
    }
  }

  /// Re-readies a suspended unit. @p fifo routes through the fair FIFO
  /// (yields — the unit must not immediately preempt deque work);
  /// otherwise a woken unpinned unit lands LIFO on the waker's own deque
  /// (cache-warm, stealable). Callers resolve @p caller_rank *after* any
  /// suspension point (it may have changed OS threads).
  void ready(int caller_rank, int home_rank, bool pinned, bool fifo,
             T item) {
    if (!ws_) {
      pool_for(home_rank).locked.push(item);
      wake_owner_store(caller_rank, home_rank);
    } else if (shared_) {
      pools_[0]->fair.push(item);
      wake_any(caller_rank);
    } else if (pinned) {
      pool_for(home_rank).fair.push(item);
      wake_owner_store(caller_rank, home_rank);
    } else if (caller_rank >= 0 && !fifo) {
      pool_for(caller_rank).deque.push(item);
      wake_thief(caller_rank);
    } else {
      const int rank = caller_rank >= 0 ? caller_rank : home_rank;
      pool_for(rank).fair.push(item);
      wake_owner_store(caller_rank, rank);
    }
  }

  /// Owner push onto @p rank's primary store for the current mode (deque,
  /// shared pool, or locked FIFO). For callers that manage their own
  /// placement policy (mth publishes continuations and yields this way —
  /// everything it schedules is stealable).
  void push_owner(int rank, T item) {
    if (!ws_) {
      pool_for(rank).locked.push(item);
      wake_owner_store(rank, rank);
    } else if (shared_) {
      pools_[0]->fair.push(item);
      wake_any(rank);
    } else {
      pool_for(rank).deque.push(item);
      wake_thief(rank);
    }
  }

  /// Queues the primary (main) context. Only pop_main — called by the
  /// worker-0 loop — ever returns it, whatever the mode: a worker that
  /// resumed main would let finalize tear the runtime down from a foreign
  /// OS thread while the real main thread still runs on its stack.
  void push_main(T item) {
    if (ws_) {
      main_fair_.push(item);
    } else {
      main_locked_.push(item);
    }
    // Only the worker-0 loop can consume the main slot, so its wake is
    // always targeted — even under the broadcast policy nothing else
    // could run this item.
    if (policy_ == WakePolicy::All) {
      wake_all();
    } else {
      publish_fence();
      if (idle_claim(0)) unpark(0);
    }
  }

  /// Deposits @p n units in one call: one queue publication per victim and
  /// one targeted wake per victim, instead of n push+wake round-trips.
  /// `spread` fans contiguous chunks across workers — the caller's chunk
  /// rides its own deque (stealable), remote victims receive theirs
  /// through the owner-only fair FIFO (the producer-pattern placement the
  /// round-robin ult_create_to path used, minus the per-unit wakes).
  /// `local` publishes everything on the caller's deque with a single
  /// releasing bottom advance and wakes idle thieves to pull the batch
  /// apart. Victim
  /// count per policy: one → min(team, n); threshold → ⌈n/kBulkWakeGrain⌉
  /// clamped to the team; all → the whole team (broadcast wake).
  void submit_bulk(int caller_rank, const T* items, std::size_t n,
                   BulkHint hint) {
    if (n == 0) return;
    bulk_deposits_.fetch_add(1, std::memory_order_relaxed);
    trace_emit(TraceKind::bulk_deposit, static_cast<std::uint64_t>(n),
               static_cast<std::uint32_t>(hint == BulkHint::local ? 1 : 0));
    if (!ws_) {
      submit_bulk_locked(caller_rank, items, n);
      return;
    }
    if (shared_) {
      pools_[0]->fair.push_n(items, n);
      wake_bulk_any(caller_rank, n);
      return;
    }
    if (hint == BulkHint::local && caller_rank >= 0) {
      pool_for(caller_rank).deque.push_n(items, n);
      if (stealing_active()) wake_bulk_any(caller_rank, n);
      return;
    }
    // spread: k victims, contiguous ⌈n/k⌉-unit chunks. Every victim that
    // received a chunk gets its own targeted wake — a fair-FIFO chunk is
    // owner-only, so an unwoken victim would strand it for a park period.
    const std::size_t k = bulk_victims(n);
    const std::size_t chunk = (n + k - 1) / k;
    const int start = caller_rank >= 0 ? caller_rank : 0;
    bool woke_any_needed = false;
    std::size_t i = 0;
    for (std::size_t j = 0; j < k && i < n; ++j) {
      const int victim = static_cast<int>(
          (static_cast<std::size_t>(start) + j) % static_cast<std::size_t>(n_));
      const std::size_t take = std::min(chunk, n - i);
      if (victim == caller_rank) {
        pool_for(victim).deque.push_n(items + i, take);
        woke_any_needed = true;  // stealable: wake a thief below
      } else {
        pool_for(victim).fair.push_n(items + i, take);
        publish_fence();
        if (policy_ == WakePolicy::All) {
          wake_all();
        } else if (idle_claim(victim)) {
          unpark(victim);
        }
      }
      i += take;
    }
    if (woke_any_needed && stealing_active()) wake_thief(caller_rank);
  }

  // --------------------------------------------------------- consumption

  /// Owner-side pop from @p rank's pool. Work-first: the deque bottom
  /// (newest, cache-warm) goes first; the fair queue is checked first
  /// every 64th pop so pinned/yielded units cannot starve behind a spawn
  /// storm. Returns T{} when empty.
  T pop_local(int rank, unsigned* tick) {
    Pool& pool = pool_for(rank);
    if (!ws_) {
      if (auto v = pool.locked.pop()) return *v;
      return T{};
    }
    const bool fair_first = (++*tick & 63u) == 0;
    if (fair_first) {
      if (auto v = pool.fair.pop()) return *v;
    }
    if (!shared_) {
      T item{};
      if (pool.deque.pop(&item)) return item;
    }
    if (!fair_first) {
      if (auto v = pool.fair.pop()) return *v;
    }
    return T{};
  }

  /// Pops the main slot. Call only from the worker-0 loop.
  T pop_main() {
    if (ws_) {
      if (auto v = main_fair_.pop()) return *v;
      return T{};
    }
    if (auto v = main_locked_.pop()) return *v;
    return T{};
  }

  /// One randomized sweep over the other workers' deques. Victims are
  /// probed with relaxed loads first (empty_approx) so an idle fleet does
  /// not hammer seq_cst steal operations — and so failed_steals measures
  /// real contention (a victim that *looked* non-empty but yielded
  /// nothing), not idle-loop spinning.
  T try_steal(int rank, common::FastRng& rng) {
    if (!stealing_active()) return T{};
    Counters& c = counters_[static_cast<std::size_t>(rank)];
    const int start =
        static_cast<int>(rng.next() % static_cast<unsigned>(n_));
    for (int k = 0; k < n_; ++k) {
      const int victim = start + k < n_ ? start + k : start + k - n_;
      if (victim == rank) continue;
      auto& deque = pools_[static_cast<std::size_t>(victim)]->deque;
      if (deque.empty_approx()) continue;
      T item{};
      if (deque.steal(&item)) {
        c.steals.fetch_add(1, std::memory_order_relaxed);
        trace_emit(TraceKind::steal_success,
                   static_cast<std::uint64_t>(victim));
        return item;
      }
      c.failed_steals.fetch_add(1, std::memory_order_relaxed);
      trace_emit(TraceKind::steal_attempt,
                 static_cast<std::uint64_t>(victim));
    }
    return T{};
  }

  /// Non-blocking acquire: local pop, then (optionally) the main slot,
  /// then one steal sweep. No idling — for schedulers that fall back to a
  /// base context when nothing is runnable (mth's leave()).
  T try_next(int rank, unsigned* tick, common::FastRng& rng,
             bool with_main) {
    if (with_main) {
      if (T item = pop_main()) return item;
    }
    if (T item = pop_local(rank, tick)) return item;
    return try_steal(rank, rng);
  }

  /// Blocking acquire for worker loops: drains @p rank's pool, steals when
  /// idle, parks briefly (spin → yield → advertise-idle → adaptive park)
  /// when there is nothing to steal. Returns T{} only when shutdown was
  /// requested and a full pop + steal probe found nothing. @p with_main on
  /// the worker-0 loop alternates fairly between the main slot and the
  /// regular pool: strict priority either way starves someone (main-first
  /// starves yielded-to pool work; pool-first starves main when a
  /// co-located unit busy-waits for main at a barrier).
  ///
  /// Wake protocol: the idle-mask bit is set (seq_cst) BEFORE the final
  /// pre-park probe, so a producer's deposit either observes the bit and
  /// targets this worker's parker, or the probe observes the deposit —
  /// the push/park race can no longer cost a full park timeout. A park
  /// cut short by an unpark that then finds nothing counts as a spurious
  /// wake and does not grow the backoff; only a timed-out park doubles it.
  T acquire(int rank, AcquireState& st, bool with_main) {
    Counters& c = counters_[static_cast<std::size_t>(rank)];
    for (;;) {
      T item{};
      if (with_main && st.main_turn) {
        item = pop_main();
        if (!item) item = pop_local(rank, &st.tick);
      } else {
        item = pop_local(rank, &st.tick);
        if (!item && with_main) item = pop_main();
      }
      st.main_turn = !st.main_turn;
      if (!item) item = try_steal(rank, st.rng);
      if (item) {
        if (st.advertised) {
          idle_clear(rank);
          st.advertised = false;
        }
        st.wake_pending = false;
        st.idle = 0;
        st.park_us = kParkMinUs;
        c.acquired.fetch_add(1, std::memory_order_relaxed);
        watchdog_note_progress();
        return item;
      }
      if (st.wake_pending) {
        // Unparked, probed everything, found nothing: the deposit that
        // woke us was claimed by someone else.
        st.wake_pending = false;
        c.wakes_spurious.fetch_add(1, std::memory_order_relaxed);
      }
      if (shutdown_.load(std::memory_order_acquire)) {
        if (st.advertised) {
          idle_clear(rank);
          st.advertised = false;
        }
        return T{};
      }
      if (++st.idle < 64) {
        common::cpu_relax();
      } else if (st.idle < 96) {
        std::this_thread::yield();
      } else if (!st.advertised) {
        // Advertise idleness, then loop for one more full probe: a
        // deposit racing this transition is caught either by the
        // producer's mask read or by the re-probe.
        idle_set(rank);
        st.advertised = true;
      } else {
        c.parks.fetch_add(1, std::memory_order_relaxed);
        c.parked_us.fetch_add(static_cast<std::uint64_t>(st.park_us),
                              std::memory_order_relaxed);
        trace_emit(TraceKind::park, static_cast<std::uint64_t>(rank),
                   static_cast<std::uint32_t>(st.park_us));
        const bool woken = sync_[static_cast<std::size_t>(rank)]
                               .parker.park_for_us(st.park_us);
        idle_clear(rank);  // idempotent: the waker may have claimed it
        st.advertised = false;
        trace_emit(TraceKind::unpark, static_cast<std::uint64_t>(rank),
                   woken ? 1u : 0u);
        if (woken) {
          st.wake_pending = true;
        } else {
          st.park_us = std::min<std::int64_t>(st.park_us * 2, kParkMaxUs);
        }
      }
    }
  }

  // ------------------------------------------------------------- control

  /// Broadcast "something changed" — wakes every parked worker regardless
  /// of policy (rare, non-deposit events).
  void notify() { broadcast_unpark(); }

  void request_shutdown() {
    shutdown_.store(true, std::memory_order_release);
    // Broadcast past the idle mask: a worker between its mask clear and
    // its next park still holds a permit and exits within one timeout.
    broadcast_unpark();
  }

  [[nodiscard]] bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  /// Racy "is there anything I could run?" probe for yield heuristics
  /// (with nothing else runnable, yielding is a no-op).
  [[nodiscard]] bool maybe_work(int rank, bool with_main) const {
    if (with_main && ws_ && main_fair_.size_approx() > 0) return true;
    if (with_main && !ws_ && !main_locked_.empty()) return true;
    const Pool& own = pool_for(rank);
    if (!ws_) return !own.locked.empty();
    if (own.fair.size_approx() > 0 || !own.deque.empty_approx()) return true;
    if (!stealing_active()) return false;
    for (int v = 0; v < n_; ++v) {
      if (v == rank) continue;
      if (!pools_[static_cast<std::size_t>(v)]->deque.empty_approx()) {
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] WsCoreStats stats() const {
    WsCoreStats s;
    for (const Counters& c : counters_) {
      s.steals += c.steals.load(std::memory_order_relaxed);
      s.failed_steals += c.failed_steals.load(std::memory_order_relaxed);
      s.parks += c.parks.load(std::memory_order_relaxed);
      s.parked_us += c.parked_us.load(std::memory_order_relaxed);
      s.wakes_spurious += c.wakes_spurious.load(std::memory_order_relaxed);
    }
    s.wakes_issued = wakes_issued_.load(std::memory_order_relaxed);
    s.bulk_deposits = bulk_deposits_.load(std::memory_order_relaxed);
    return s;
  }

  /// Whether @p rank currently advertises itself in the idle mask (set
  /// just before its final pre-park probe, cleared when it wakes with
  /// work). Racy by nature — for diagnostics and tests that want to poke
  /// a *provably parked* worker, not for scheduling decisions.
  [[nodiscard]] bool idle_advertised(int rank) const {
    const auto bit = std::uint64_t{1} << (static_cast<unsigned>(rank) % 64);
    return (idle_words_[static_cast<std::size_t>(rank) / 64].load(
                std::memory_order_acquire) &
            bit) != 0;
  }

  /// Stall-watchdog state dump: idle mask, per-worker queue depths and
  /// park/wake counters — everything needed to distinguish a lost wake
  /// (work queued, worker advertised idle) from a true dependence stall
  /// (all queues empty, waiters elsewhere). Racy relaxed reads only: the
  /// runtime is presumed wedged, and this must not block on its locks.
  void dump_state(const char* tag) const {
    std::fprintf(stderr, "glto: WATCHDOG: core[%s] workers=%d mode=%s%s "
                         "shutdown=%d\n",
                 tag, n_, ws_ ? "ws" : "locked", shared_ ? "+shared" : "",
                 shutdown_.load(std::memory_order_relaxed) ? 1 : 0);
    std::fprintf(stderr, "glto: WATCHDOG:   idle mask:");
    for (std::size_t w = 0; w < idle_words_.size(); ++w) {
      std::fprintf(stderr, " %016llx",
                   static_cast<unsigned long long>(
                       idle_words_[w].load(std::memory_order_relaxed)));
    }
    std::fprintf(
        stderr, "  main slot: %llu\n",
        static_cast<unsigned long long>(
            ws_ ? static_cast<std::uint64_t>(main_fair_.size_approx())
                : static_cast<std::uint64_t>(main_locked_.size())));
    for (int r = 0; r < n_; ++r) {
      const Pool& p = pool_for(r);
      const Counters& c = counters_[static_cast<std::size_t>(r)];
      const std::int64_t dq = p.deque.size_approx();
      std::fprintf(
          stderr,
          "glto: WATCHDOG:   w%-3d deque=%lld fair=%zu locked=%zu "
          "acquired=%llu steals=%llu parks=%llu spurious=%llu "
          "parked_waiters=%d\n",
          r, static_cast<long long>(dq < 0 ? 0 : dq), p.fair.size_approx(),
          p.locked.size(),
          static_cast<unsigned long long>(
              c.acquired.load(std::memory_order_relaxed)),
          static_cast<unsigned long long>(
              c.steals.load(std::memory_order_relaxed)),
          static_cast<unsigned long long>(
              c.parks.load(std::memory_order_relaxed)),
          static_cast<unsigned long long>(
              c.wakes_spurious.load(std::memory_order_relaxed)),
          sync_[static_cast<std::size_t>(r)].parker.waiters());
      if (shared_) break;  // one pool serves every rank; counters differ,
                           // but the queue line would just repeat
    }
    std::fprintf(stderr, "glto: WATCHDOG:   wakes_issued=%llu "
                         "bulk_deposits=%llu\n",
                 static_cast<unsigned long long>(
                     wakes_issued_.load(std::memory_order_relaxed)),
                 static_cast<unsigned long long>(
                     bulk_deposits_.load(std::memory_order_relaxed)));
  }

 private:
  struct Pool {
    Pool(std::size_t deque_cap, std::size_t fair_cap)
        : deque(deque_cap), fair(fair_cap) {}
    ChaseLevDeque<T> deque;
    OverflowQueue<T> fair;
    LockedQueue<T> locked;
  };

  /// Per-worker counters, owner-written; one cache line each so the hot
  /// loop never bounces a shared stats line.
  struct alignas(common::kCacheLine) Counters {
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> failed_steals{0};
    std::atomic<std::uint64_t> parks{0};
    std::atomic<std::uint64_t> parked_us{0};
    std::atomic<std::uint64_t> wakes_spurious{0};
    std::atomic<std::uint64_t> acquired{0};  ///< units successfully acquired
  };

  /// Per-worker parker, cache-line-isolated: unparking worker A never
  /// bounces the line worker B's park state lives on.
  struct alignas(common::kCacheLine) WorkerSync {
    common::Parker parker;
  };

  Pool& pool_for(int rank) {
    return *pools_[shared_ ? 0 : static_cast<std::size_t>(rank)];
  }
  const Pool& pool_for(int rank) const {
    return *pools_[shared_ ? 0 : static_cast<std::size_t>(rank)];
  }

  // ------------------------------------------------------ idle-mask wakes

  /// Orders this thread's queue publication before its idle-mask read —
  /// the producer half of the Dekker pattern the consumer's seq_cst
  /// idle_set forms. Without it, store→load reordering lets both sides
  /// miss each other and the deposit waits out a full park timeout (the
  /// pre-PR-5 multi-ms stalls).
  static void publish_fence() {
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }

  void idle_set(int rank) {
    idle_words_[static_cast<std::size_t>(rank) / 64].fetch_or(
        std::uint64_t{1} << (static_cast<std::size_t>(rank) % 64),
        std::memory_order_seq_cst);
  }

  void idle_clear(int rank) {
    idle_words_[static_cast<std::size_t>(rank) / 64].fetch_and(
        ~(std::uint64_t{1} << (static_cast<std::size_t>(rank) % 64)),
        std::memory_order_acq_rel);
  }

  /// Atomically claims @p rank's idle bit; true when this caller cleared
  /// it (and therefore owns the wake).
  bool idle_claim(int rank) {
    const std::uint64_t bit = std::uint64_t{1}
                              << (static_cast<std::size_t>(rank) % 64);
    return (idle_words_[static_cast<std::size_t>(rank) / 64].fetch_and(
                ~bit, std::memory_order_acq_rel) &
            bit) != 0;
  }

  /// Claims any idle worker's bit (≠ @p exclude); returns its rank or -1.
  int claim_any_idle(int exclude) {
    for (std::size_t w = 0; w < idle_words_.size(); ++w) {
      std::uint64_t cur = idle_words_[w].load(std::memory_order_relaxed);
      while (cur != 0) {
        const int bit = __builtin_ctzll(cur);
        const int rank = static_cast<int>(w) * 64 + bit;
        const std::uint64_t mask = std::uint64_t{1} << bit;
        if (rank == exclude) {
          cur &= ~mask;
          continue;
        }
        if (idle_words_[w].compare_exchange_weak(
                cur, cur & ~mask, std::memory_order_acq_rel,
                std::memory_order_relaxed)) {
          return rank;
        }
        // cur reloaded by the failed CAS; rescan this word.
      }
    }
    return -1;
  }

  void unpark(int rank) {
    wakes_issued_.fetch_add(1, std::memory_order_relaxed);
    trace_emit(TraceKind::wake, static_cast<std::uint64_t>(rank));
    sync_[static_cast<std::size_t>(rank)].parker.unpark();
  }

  /// Wake for a deposit into @p store_rank's owner-only store
  /// (fair/locked): only that owner can run the item, so the wake is
  /// always targeted — unless the owner IS the caller (awake by
  /// definition), in which case no wake is needed.
  void wake_owner_store(int caller_rank, int store_rank) {
    if (policy_ == WakePolicy::All) {
      wake_all();
      return;
    }
    if (shared_) {
      // pool_for collapsed the store: any worker can pop it.
      wake_any(caller_rank);
      return;
    }
    if (store_rank == caller_rank) return;
    publish_fence();
    if (idle_claim(store_rank)) unpark(store_rank);
  }

  /// Wake for a stealable deposit on @p caller_rank's own deque: the
  /// caller is awake, so engage one parked thief (if any).
  void wake_thief(int caller_rank) {
    if (policy_ == WakePolicy::All) {
      wake_all();
      return;
    }
    if (!stealing_active()) return;
    publish_fence();
    const int v = claim_any_idle(caller_rank);
    if (v >= 0) unpark(v);
  }

  /// Wake for a deposit any worker can consume (shared pool).
  void wake_any(int caller_rank) {
    if (policy_ == WakePolicy::All) {
      wake_all();
      return;
    }
    if (n_ == 1 && caller_rank >= 0) return;
    publish_fence();
    const int v = claim_any_idle(caller_rank);
    if (v >= 0) unpark(v);
  }

  /// Bulk variant of wake_any: engage up to the policy's victim quota.
  void wake_bulk_any(int caller_rank, std::size_t n) {
    if (policy_ == WakePolicy::All) {
      wake_all();
      return;
    }
    publish_fence();
    const std::size_t quota = bulk_victims(n);
    for (std::size_t i = 0; i < quota; ++i) {
      const int v = claim_any_idle(caller_rank);
      if (v < 0) break;
      unpark(v);
    }
  }

  /// Victim/wake quota for an n-unit bulk deposit under the active policy.
  [[nodiscard]] std::size_t bulk_victims(std::size_t n) const {
    const auto team = static_cast<std::size_t>(n_);
    if (policy_ == WakePolicy::Threshold) {
      return std::min(team, std::max<std::size_t>(
                                1, (n + kBulkWakeGrain - 1) / kBulkWakeGrain));
    }
    return std::min(team, n);
  }

  /// Broadcast wake of every *advertised-idle* worker (the `all` ablation
  /// baseline reproduces the old per-push unpark_all cost shape).
  void wake_all() {
    publish_fence();
    for (;;) {
      const int v = claim_any_idle(-1);
      if (v < 0) return;
      unpark(v);
    }
  }

  /// Unconditional broadcast (shutdown/notify): permits reach even workers
  /// currently between a mask clear and their next park.
  void broadcast_unpark() {
    for (int r = 0; r < n_; ++r) {
      sync_[static_cast<std::size_t>(r)].parker.unpark();
    }
  }

  /// Locked-baseline bulk: round-robin chunks over the per-worker FIFOs
  /// (the seed's scatter shape), one wake per engaged owner.
  void submit_bulk_locked(int caller_rank, const T* items, std::size_t n) {
    if (shared_) {
      pool_for(0).locked.push_n(items, n);
      wake_bulk_any(caller_rank, n);
      return;
    }
    const std::size_t k = bulk_victims(n);
    const std::size_t chunk = (n + k - 1) / k;
    const int start = caller_rank >= 0 ? caller_rank : 0;
    std::size_t i = 0;
    for (std::size_t j = 0; j < k && i < n; ++j) {
      const int victim = static_cast<int>(
          (static_cast<std::size_t>(start) + j) % static_cast<std::size_t>(n_));
      const std::size_t take = std::min(chunk, n - i);
      pool_for(victim).locked.push_n(items + i, take);
      wake_owner_store(caller_rank, victim);
      i += take;
    }
  }

  const int n_;
  const bool shared_;
  const bool ws_;
  const WakePolicy policy_;
  std::vector<std::unique_ptr<Pool>> pools_;
  OverflowQueue<T> main_fair_{64};
  LockedQueue<T> main_locked_;
  /// One idle bit per worker, set (seq_cst) before the final pre-park
  /// probe and claimed (CAS) by wakers — see acquire().
  std::vector<std::atomic<std::uint64_t>> idle_words_;
  std::unique_ptr<WorkerSync[]> sync_;
  std::vector<Counters> counters_;
  alignas(common::kCacheLine) std::atomic<std::uint64_t> wakes_issued_{0};
  std::atomic<std::uint64_t> bulk_deposits_{0};
  std::atomic<bool> shutdown_{false};
};

}  // namespace glto::sched
