// Shared work-stealing scheduler core for the three LWT backends.
//
// PR 1 built this machinery inside the abt backend: per-worker Chase–Lev
// deques with randomized stealing, an owner-only "fair" FIFO side queue
// for pinned/remote/yielded units, a locked-FIFO ablation baseline, a
// single shared MPMC pool for the §IV-F GLT_SHARED_QUEUES study, adaptive
// idle parking, and steal/park counters. This header hoists all of it into
// one reusable engine so qth shepherds and mth workers dispatch through
// the identical fast path — restoring the cross-backend comparison the
// paper's Figs. 4–9 are about (one GLT API, three runtimes, no penalty).
//
// Queue discipline per worker (work-stealing mode):
//  * `deque`  — unpinned units pushed by the owner; LIFO bottom for the
//    owner (cache-warm, work-first), FIFO top for thieves.
//  * `fair`   — pinned, remote-submitted, and yielded units; MPMC push,
//    popped FIFO by the owner only, checked first every 64th pop so it
//    cannot starve behind a spawn storm. Pinned units are never stolen —
//    the exact-placement contract glt::ult_create_to documents.
//  * `locked` — the seed's mutex-guarded FIFO, used exclusively when the
//    core runs in Dispatch::Locked (the measurable baseline).
// A separate *main slot* holds the primary context: only the worker-0
// loop pops it, so a thief can never resume main and tear the runtime
// down from a foreign OS thread (the §IV-G pin-the-main hazard).
//
// The core stores opaque handles (T is a pointer type); running, context
// switching, and lifetime stay in the backend. Null (T{}) means "none".
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/cacheline.hpp"
#include "common/parker.hpp"
#include "common/rng.hpp"
#include "sched/chase_lev.hpp"
#include "sched/dispatch.hpp"
#include "sched/locked_queue.hpp"
#include "sched/overflow_queue.hpp"

namespace glto::sched {

struct WsCoreConfig {
  int num_workers = 1;
  bool shared_pool = false;   ///< one pool for all workers (§IV-F ablation)
  bool work_stealing = true;  ///< false → Dispatch::Locked baseline
  std::size_t deque_capacity = 256;
  std::size_t fair_capacity = 1024;
};

struct WsCoreStats {
  std::uint64_t steals = 0;         ///< units taken from another worker
  std::uint64_t failed_steals = 0;  ///< empty / lost-race steal attempts
  std::uint64_t parks = 0;          ///< idle parks (adaptive 200µs–2ms)
  std::uint64_t parked_us = 0;      ///< total requested park time, µs
};

/// Adaptive idle parking: the first park is short (work often arrives
/// within the old fixed 200 µs), each consecutive fruitless park doubles
/// up to a 2 ms cap — a steal probe runs between parks, so a long park can
/// never strand runnable work for more than one wake latency.
inline constexpr std::int64_t kParkMinUs = 200;
inline constexpr std::int64_t kParkMaxUs = 2000;

/// Per-loop acquire state: pop-fairness tick, idle backoff, main-slot
/// alternation, and the steal-victim RNG. One per scheduler loop, owned by
/// the loop (stack or TLS) — never shared between OS threads.
struct AcquireState {
  explicit AcquireState(std::uint64_t seed) : rng(common::mix64(seed)) {}
  unsigned tick = 0;
  int idle = 0;
  std::int64_t park_us = kParkMinUs;
  bool main_turn = false;
  common::FastRng rng;
};

template <typename T>
class WsCore {
  static_assert(std::is_pointer_v<T>, "WsCore stores opaque handles");

 public:
  explicit WsCore(const WsCoreConfig& cfg)
      : n_(cfg.num_workers > 0 ? cfg.num_workers : 1),
        shared_(cfg.shared_pool),
        ws_(cfg.work_stealing),
        counters_(static_cast<std::size_t>(n_)) {
    const int pool_count = shared_ ? 1 : n_;
    pools_.reserve(static_cast<std::size_t>(pool_count));
    for (int i = 0; i < pool_count; ++i) {
      pools_.push_back(std::make_unique<Pool>(cfg.deque_capacity,
                                              cfg.fair_capacity));
    }
  }

  WsCore(const WsCore&) = delete;
  WsCore& operator=(const WsCore&) = delete;

  [[nodiscard]] int num_workers() const { return n_; }
  [[nodiscard]] bool work_stealing() const { return ws_; }
  [[nodiscard]] bool shared_pool() const { return shared_; }
  [[nodiscard]] bool stealing_active() const {
    return ws_ && !shared_ && n_ > 1;
  }

  // ------------------------------------------------------------- routing

  /// Creation-time placement. Hot path — an unpinned spawn by the target's
  /// own worker — lands LIFO on the caller's lock-free deque where idle
  /// workers steal from the top. Exact placement (@p pinned) and foreign
  /// submissions (@p caller_rank != @p target_rank, incl. foreign threads
  /// with caller_rank < 0) go through the target's owner-only fair FIFO,
  /// so pinned units can never be stolen.
  void submit(int caller_rank, int target_rank, bool pinned, T item) {
    if (!ws_) {
      pool_for(target_rank).locked.push(item);
    } else if (shared_) {
      pools_[0]->fair.push(item);
    } else if (pinned || caller_rank != target_rank) {
      pool_for(target_rank).fair.push(item);
    } else {
      pool_for(caller_rank).deque.push(item);
    }
    parker_.unpark_all();
  }

  /// Re-readies a suspended unit. @p fifo routes through the fair FIFO
  /// (yields — the unit must not immediately preempt deque work);
  /// otherwise a woken unpinned unit lands LIFO on the waker's own deque
  /// (cache-warm, stealable). Callers resolve @p caller_rank *after* any
  /// suspension point (it may have changed OS threads).
  void ready(int caller_rank, int home_rank, bool pinned, bool fifo,
             T item) {
    if (!ws_) {
      pool_for(home_rank).locked.push(item);
    } else if (shared_) {
      pools_[0]->fair.push(item);
    } else if (pinned) {
      pool_for(home_rank).fair.push(item);
    } else if (caller_rank >= 0 && !fifo) {
      pool_for(caller_rank).deque.push(item);
    } else {
      pool_for(caller_rank >= 0 ? caller_rank : home_rank).fair.push(item);
    }
    parker_.unpark_all();
  }

  /// Owner push onto @p rank's primary store for the current mode (deque,
  /// shared pool, or locked FIFO). For callers that manage their own
  /// placement policy (mth publishes continuations and yields this way —
  /// everything it schedules is stealable).
  void push_owner(int rank, T item) {
    if (!ws_) {
      pool_for(rank).locked.push(item);
    } else if (shared_) {
      pools_[0]->fair.push(item);
    } else {
      pool_for(rank).deque.push(item);
    }
    parker_.unpark_all();
  }

  /// Queues the primary (main) context. Only pop_main — called by the
  /// worker-0 loop — ever returns it, whatever the mode: a worker that
  /// resumed main would let finalize tear the runtime down from a foreign
  /// OS thread while the real main thread still runs on its stack.
  void push_main(T item) {
    if (ws_) {
      main_fair_.push(item);
    } else {
      main_locked_.push(item);
    }
    parker_.unpark_all();
  }

  // --------------------------------------------------------- consumption

  /// Owner-side pop from @p rank's pool. Work-first: the deque bottom
  /// (newest, cache-warm) goes first; the fair queue is checked first
  /// every 64th pop so pinned/yielded units cannot starve behind a spawn
  /// storm. Returns T{} when empty.
  T pop_local(int rank, unsigned* tick) {
    Pool& pool = pool_for(rank);
    if (!ws_) {
      if (auto v = pool.locked.pop()) return *v;
      return T{};
    }
    const bool fair_first = (++*tick & 63u) == 0;
    if (fair_first) {
      if (auto v = pool.fair.pop()) return *v;
    }
    if (!shared_) {
      T item{};
      if (pool.deque.pop(&item)) return item;
    }
    if (!fair_first) {
      if (auto v = pool.fair.pop()) return *v;
    }
    return T{};
  }

  /// Pops the main slot. Call only from the worker-0 loop.
  T pop_main() {
    if (ws_) {
      if (auto v = main_fair_.pop()) return *v;
      return T{};
    }
    if (auto v = main_locked_.pop()) return *v;
    return T{};
  }

  /// One randomized sweep over the other workers' deques. Victims are
  /// probed with relaxed loads first (empty_approx) so an idle fleet does
  /// not hammer seq_cst steal operations — and so failed_steals measures
  /// real contention (a victim that *looked* non-empty but yielded
  /// nothing), not idle-loop spinning.
  T try_steal(int rank, common::FastRng& rng) {
    if (!stealing_active()) return T{};
    Counters& c = counters_[static_cast<std::size_t>(rank)];
    const int start =
        static_cast<int>(rng.next() % static_cast<unsigned>(n_));
    for (int k = 0; k < n_; ++k) {
      const int victim = start + k < n_ ? start + k : start + k - n_;
      if (victim == rank) continue;
      auto& deque = pools_[static_cast<std::size_t>(victim)]->deque;
      if (deque.empty_approx()) continue;
      T item{};
      if (deque.steal(&item)) {
        c.steals.fetch_add(1, std::memory_order_relaxed);
        return item;
      }
      c.failed_steals.fetch_add(1, std::memory_order_relaxed);
    }
    return T{};
  }

  /// Non-blocking acquire: local pop, then (optionally) the main slot,
  /// then one steal sweep. No idling — for schedulers that fall back to a
  /// base context when nothing is runnable (mth's leave()).
  T try_next(int rank, unsigned* tick, common::FastRng& rng,
             bool with_main) {
    if (with_main) {
      if (T item = pop_main()) return item;
    }
    if (T item = pop_local(rank, tick)) return item;
    return try_steal(rank, rng);
  }

  /// Blocking acquire for worker loops: drains @p rank's pool, steals when
  /// idle, parks briefly (spin → yield → adaptive park, with counters)
  /// when there is nothing to steal. Returns T{} only when shutdown was
  /// requested and a full pop + steal probe found nothing. @p with_main on
  /// the worker-0 loop alternates fairly between the main slot and the
  /// regular pool: strict priority either way starves someone (main-first
  /// starves yielded-to pool work; pool-first starves main when a
  /// co-located unit busy-waits for main at a barrier).
  T acquire(int rank, AcquireState& st, bool with_main) {
    Counters& c = counters_[static_cast<std::size_t>(rank)];
    for (;;) {
      T item{};
      if (with_main && st.main_turn) {
        item = pop_main();
        if (!item) item = pop_local(rank, &st.tick);
      } else {
        item = pop_local(rank, &st.tick);
        if (!item && with_main) item = pop_main();
      }
      st.main_turn = !st.main_turn;
      if (!item) item = try_steal(rank, st.rng);
      if (item) {
        st.idle = 0;
        st.park_us = kParkMinUs;
        return item;
      }
      if (shutdown_.load(std::memory_order_acquire)) return T{};
      if (++st.idle < 64) {
        common::cpu_relax();
      } else if (st.idle < 96) {
        std::this_thread::yield();
      } else {
        // Adaptive park: exponential growth, reset on any work. The loop
        // just ran a full pop + steal probe and found nothing, so
        // extending the park is safe — and a push always unparks us early.
        c.parks.fetch_add(1, std::memory_order_relaxed);
        c.parked_us.fetch_add(static_cast<std::uint64_t>(st.park_us),
                              std::memory_order_relaxed);
        parker_.park_for_us(st.park_us);
        st.park_us = std::min<std::int64_t>(st.park_us * 2, kParkMaxUs);
      }
    }
  }

  // ------------------------------------------------------------- control

  void notify() { parker_.unpark_all(); }

  void request_shutdown() {
    shutdown_.store(true, std::memory_order_release);
    // Parked workers wake within their current timeout (2 ms cap) even if
    // the unpark raced, so plain joins terminate promptly.
    parker_.unpark_all();
  }

  [[nodiscard]] bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  /// Racy "is there anything I could run?" probe for yield heuristics
  /// (with nothing else runnable, yielding is a no-op).
  [[nodiscard]] bool maybe_work(int rank, bool with_main) const {
    if (with_main && ws_ && main_fair_.size_approx() > 0) return true;
    if (with_main && !ws_ && !main_locked_.empty()) return true;
    const Pool& own = pool_for(rank);
    if (!ws_) return !own.locked.empty();
    if (own.fair.size_approx() > 0 || !own.deque.empty_approx()) return true;
    if (!stealing_active()) return false;
    for (int v = 0; v < n_; ++v) {
      if (v == rank) continue;
      if (!pools_[static_cast<std::size_t>(v)]->deque.empty_approx()) {
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] WsCoreStats stats() const {
    WsCoreStats s;
    for (const Counters& c : counters_) {
      s.steals += c.steals.load(std::memory_order_relaxed);
      s.failed_steals += c.failed_steals.load(std::memory_order_relaxed);
      s.parks += c.parks.load(std::memory_order_relaxed);
      s.parked_us += c.parked_us.load(std::memory_order_relaxed);
    }
    return s;
  }

 private:
  struct Pool {
    Pool(std::size_t deque_cap, std::size_t fair_cap)
        : deque(deque_cap), fair(fair_cap) {}
    ChaseLevDeque<T> deque;
    OverflowQueue<T> fair;
    LockedQueue<T> locked;
  };

  /// Per-worker counters, owner-written; one cache line each so the hot
  /// loop never bounces a shared stats line.
  struct alignas(common::kCacheLine) Counters {
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> failed_steals{0};
    std::atomic<std::uint64_t> parks{0};
    std::atomic<std::uint64_t> parked_us{0};
  };

  Pool& pool_for(int rank) {
    return *pools_[shared_ ? 0 : static_cast<std::size_t>(rank)];
  }
  const Pool& pool_for(int rank) const {
    return *pools_[shared_ ? 0 : static_cast<std::size_t>(rank)];
  }

  const int n_;
  const bool shared_;
  const bool ws_;
  std::vector<std::unique_ptr<Pool>> pools_;
  OverflowQueue<T> main_fair_{64};
  LockedQueue<T> main_locked_;
  std::vector<Counters> counters_;
  std::atomic<bool> shutdown_{false};
  common::Parker parker_;
};

}  // namespace glto::sched
