#include "sched/chaos.hpp"

#include <chrono>
#include <mutex>
#include <thread>

#include "common/rng.hpp"
#include "sched/trace.hpp"

namespace glto::sched {

namespace detail {
std::atomic<bool> g_chaos_on{false};
}  // namespace detail

namespace {

struct ChaosState {
  ChaosConfig cfg;
  std::atomic<std::uint64_t> faults{0};
  std::atomic<std::uint64_t> thread_ordinal{0};
  // Seed epoch: bumping it makes every thread re-derive its stream, so
  // chaos_set_for_testing takes effect on threads that already rolled.
  std::atomic<std::uint64_t> epoch{0};
};

ChaosState& state() {
  static ChaosState s;
  return s;
}

std::once_flag g_env_once;

/// Per-thread roll stream, re-derived whenever the global plan changes.
common::FastRng& thread_stream() {
  thread_local common::FastRng rng(0);
  thread_local std::uint64_t seen_epoch = ~0ULL;
  ChaosState& s = state();
  const std::uint64_t e = s.epoch.load(std::memory_order_acquire);
  if (seen_epoch != e) {
    seen_epoch = e;
    const std::uint64_t ord =
        s.thread_ordinal.fetch_add(1, std::memory_order_relaxed);
    rng = common::FastRng(common::mix64(s.cfg.seed ^ (ord + 1)) ^ e);
  }
  return rng;
}

void apply(const ChaosConfig& cfg) {
  ChaosState& s = state();
  s.cfg = cfg;
  s.epoch.fetch_add(1, std::memory_order_acq_rel);
  detail::g_chaos_on.store(cfg.enabled, std::memory_order_release);
}

}  // namespace

void chaos_init_from_env() {
  std::call_once(g_env_once, [] { apply(resolve_chaos("GLTO_CHAOS")); });
}

void chaos_set_for_testing(const ChaosConfig& cfg) {
  // Make sure the env resolution can't land after us and clobber the plan.
  std::call_once(g_env_once, [] {});
  apply(cfg);
}

ChaosConfig chaos_config() { return state().cfg; }

std::uint64_t chaos_faults_injected() {
  return state().faults.load(std::memory_order_relaxed);
}

namespace detail {

bool chaos_roll_spawn() {
  ChaosState& s = state();
  if (s.cfg.spawn_p <= 0.0) return false;
  if (thread_stream().next_double() >= s.cfg.spawn_p) return false;
  s.faults.fetch_add(1, std::memory_order_relaxed);
  trace_emit(TraceKind::chaos_fault, 0, /*aux=spawn*/ 1);
  return true;
}

bool chaos_roll_alloc() {
  ChaosState& s = state();
  if (s.cfg.alloc_p <= 0.0) return false;
  if (thread_stream().next_double() >= s.cfg.alloc_p) return false;
  s.faults.fetch_add(1, std::memory_order_relaxed);
  trace_emit(TraceKind::chaos_fault, 0, /*aux=alloc*/ 2);
  return true;
}

bool chaos_roll_delay() {
  ChaosState& s = state();
  if (s.cfg.delay_p <= 0.0) return false;
  if (thread_stream().next_double() >= s.cfg.delay_p) return false;
  s.faults.fetch_add(1, std::memory_order_relaxed);
  trace_emit(TraceKind::chaos_fault, 0, /*aux=delay*/ 3);
  return true;
}

void chaos_do_delay() {
  // 1–64 µs: long enough to reorder a racing pair, short enough that a
  // soak over thousands of tasks stays inside its ctest TIMEOUT.
  const std::uint64_t us = 1 + (thread_stream().next() & 63);
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

}  // namespace detail

}  // namespace glto::sched
