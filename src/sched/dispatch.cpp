#include "sched/dispatch.hpp"

#include <cctype>
#include <cstdio>
#include <string>

#include "common/env.hpp"

namespace glto::sched {

const char* dispatch_name(Dispatch d) {
  switch (d) {
    case Dispatch::Auto:
      return "auto";
    case Dispatch::WorkStealing:
      return "ws";
    case Dispatch::Locked:
      return "locked";
  }
  return "?";
}

Dispatch resolve_dispatch(Dispatch requested, const char* env_var) {
  if (requested != Dispatch::Auto) return requested;
  if (auto s = common::env_str(env_var)) {
    std::string v = *s;
    for (char& c : v) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    if (v == "locked") return Dispatch::Locked;
    if (v != "ws" && v != "workstealing") {
      std::fprintf(stderr,
                   "sched: unrecognized %s='%s' (expected 'ws' or "
                   "'locked'); using work stealing\n",
                   env_var, s->c_str());
    }
  }
  return Dispatch::WorkStealing;
}

const char* wake_policy_name(WakePolicy p) {
  switch (p) {
    case WakePolicy::Auto:
      return "auto";
    case WakePolicy::One:
      return "one";
    case WakePolicy::Threshold:
      return "threshold";
    case WakePolicy::All:
      return "all";
  }
  return "?";
}

WakePolicy resolve_wake_policy(WakePolicy requested, const char* env_var) {
  if (requested != WakePolicy::Auto) return requested;
  if (auto s = common::env_str(env_var)) {
    std::string v = *s;
    for (char& c : v) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    if (v == "one") return WakePolicy::One;
    if (v == "threshold") return WakePolicy::Threshold;
    if (v == "all" || v == "broadcast") return WakePolicy::All;
    std::fprintf(stderr,
                 "sched: unrecognized %s='%s' (expected 'one', 'threshold' "
                 "or 'all'); using wake-one\n",
                 env_var, s->c_str());
  }
  return WakePolicy::One;
}

ChaosConfig resolve_chaos(const char* env_var) {
  ChaosConfig cfg;
  auto s = common::env_str(env_var);
  if (!s || s->empty()) return cfg;
  std::string v = *s;
  for (char& c : v) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  std::size_t pos = 0;
  while (pos < v.size()) {
    std::size_t comma = v.find(',', pos);
    if (comma == std::string::npos) comma = v.size();
    std::string tok = v.substr(pos, comma - pos);
    pos = comma + 1;
    if (tok.empty()) continue;
    const std::size_t colon = tok.find(':');
    const std::string key = tok.substr(0, colon);
    const std::string val =
        colon == std::string::npos ? std::string() : tok.substr(colon + 1);
    double p = 0.0;
    bool numeric = false;
    try {
      p = std::stod(val);
      numeric = true;
    } catch (...) {
    }
    if (key == "seed" && numeric) {
      cfg.seed = static_cast<std::uint64_t>(p);
      if (cfg.seed == 0) cfg.seed = 1;
      continue;
    }
    if (numeric) {
      p = p < 0.0 ? 0.0 : (p > 1.0 ? 1.0 : p);
      if (key == "spawn") {
        cfg.spawn_p = p;
        continue;
      }
      if (key == "alloc") {
        cfg.alloc_p = p;
        continue;
      }
      if (key == "delay") {
        cfg.delay_p = p;
        continue;
      }
    }
    std::fprintf(stderr,
                 "sched: unrecognized %s token '%s' (expected "
                 "spawn:p, alloc:p, delay:p or seed:s); skipping\n",
                 env_var, tok.c_str());
  }
  cfg.enabled = cfg.spawn_p > 0.0 || cfg.alloc_p > 0.0 || cfg.delay_p > 0.0;
  return cfg;
}

}  // namespace glto::sched
