#include "sched/dispatch.hpp"

#include <cctype>
#include <cstdio>
#include <string>

#include "common/env.hpp"

namespace glto::sched {

const char* dispatch_name(Dispatch d) {
  switch (d) {
    case Dispatch::Auto:
      return "auto";
    case Dispatch::WorkStealing:
      return "ws";
    case Dispatch::Locked:
      return "locked";
  }
  return "?";
}

Dispatch resolve_dispatch(Dispatch requested, const char* env_var) {
  if (requested != Dispatch::Auto) return requested;
  if (auto s = common::env_str(env_var)) {
    std::string v = *s;
    for (char& c : v) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    if (v == "locked") return Dispatch::Locked;
    if (v != "ws" && v != "workstealing") {
      std::fprintf(stderr,
                   "sched: unrecognized %s='%s' (expected 'ws' or "
                   "'locked'); using work stealing\n",
                   env_var, s->c_str());
    }
  }
  return Dispatch::WorkStealing;
}

const char* wake_policy_name(WakePolicy p) {
  switch (p) {
    case WakePolicy::Auto:
      return "auto";
    case WakePolicy::One:
      return "one";
    case WakePolicy::Threshold:
      return "threshold";
    case WakePolicy::All:
      return "all";
  }
  return "?";
}

WakePolicy resolve_wake_policy(WakePolicy requested, const char* env_var) {
  if (requested != WakePolicy::Auto) return requested;
  if (auto s = common::env_str(env_var)) {
    std::string v = *s;
    for (char& c : v) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    if (v == "one") return WakePolicy::One;
    if (v == "threshold") return WakePolicy::Threshold;
    if (v == "all" || v == "broadcast") return WakePolicy::All;
    std::fprintf(stderr,
                 "sched: unrecognized %s='%s' (expected 'one', 'threshold' "
                 "or 'all'); using wake-one\n",
                 env_var, s->c_str());
  }
  return WakePolicy::One;
}

}  // namespace glto::sched
