#include "sched/sync.hpp"

#include <thread>

#include "common/cacheline.hpp"
#include "common/debug.hpp"
#include "common/time.hpp"
#include "sched/chaos.hpp"
#include "sched/trace.hpp"
#include "sched/watchdog.hpp"

namespace glto::sched {

namespace {

// Small fixed registry: one slot per live backend (nested_libraries runs
// two at once). Slots are CAS-claimed; lookup is a short scan.
constexpr int kMaxSuspendOps = 4;
std::atomic<const SuspendOps*> g_ops[kMaxSuspendOps];

std::atomic<std::uint64_t> g_suspensions{0};
std::atomic<std::uint64_t> g_wakes_direct{0};
std::atomic<std::uint64_t> g_timed_waits{0};
std::atomic<std::uint64_t> g_timed_wait_timeouts{0};

/// The fallback parker for contexts that cannot suspend. Thread-local and
/// immortal (lives as long as the OS thread), so a signaller's unpark()
/// after the waiter already observed `signaled` lands on live memory; the
/// stale permit at worst short-circuits that thread's next park — benign,
/// every park loop rechecks its predicate.
common::Parker& foreign_parker() {
  thread_local common::Parker p;
  return p;
}

/// Backoff ladder shared by the Parker fallback and the WaitEngine.
constexpr std::uint32_t kSpinSteps = 16;
constexpr std::uint32_t kYieldSteps = 24;
constexpr std::int64_t kSleepStepUs = 20;
constexpr std::int64_t kSleepCapUs = 200;

/// Bridges a ParkOp through a backend suspend: runs on the scheduler
/// stack after the waiter's context is saved, with the handle in hand.
bool park_suspend_cb(void* arg, void* handle) {
  auto* op = static_cast<sync_detail::ParkOp*>(arg);
  op->node->handle = handle;
  op->lock->lock();
  // The ParkOp lives on the waiter's stack: the moment the lock below is
  // released, a signaller can pop the node, wake the waiter on another
  // worker, and the frame dies — copy everything needed after the unlock
  // while the lock still pins it.
  void (*post)(void*) = op->post_enqueue;
  void* post_arg = op->ctx2;
  const bool parked = op->try_enqueue(op);
  op->lock->unlock();
  if (parked) {
    if (post != nullptr) post(post_arg);
    g_suspensions.fetch_add(1, std::memory_order_relaxed);
  }
  return parked;
}

}  // namespace

void register_suspend_ops(const SuspendOps* ops) {
  for (int i = 0; i < kMaxSuspendOps; ++i) {
    const SuspendOps* expected = nullptr;
    if (g_ops[i].compare_exchange_strong(expected, ops,
                                         std::memory_order_acq_rel)) {
      return;
    }
  }
  // A full registry means a backend leaked its slot across init/finalize;
  // dropping the registration silently would degrade every wait on this
  // backend to the Parker fallback — fail loudly instead.
  GLTO_CHECK_MSG(false, "suspend-ops registry full: leaked registration?");
}

void unregister_suspend_ops(const SuspendOps* ops) {
  for (int i = 0; i < kMaxSuspendOps; ++i) {
    const SuspendOps* expected = ops;
    if (g_ops[i].compare_exchange_strong(expected, nullptr,
                                         std::memory_order_acq_rel)) {
      return;
    }
  }
}

const SuspendOps* current_suspend_ops() {
  for (int i = 0; i < kMaxSuspendOps; ++i) {
    const SuspendOps* o = g_ops[i].load(std::memory_order_acquire);
    if (o != nullptr && o->can_suspend()) return o;
  }
  return nullptr;
}

std::uint64_t suspensions() {
  return g_suspensions.load(std::memory_order_relaxed);
}
std::uint64_t wakes_direct() {
  return g_wakes_direct.load(std::memory_order_relaxed);
}
std::uint64_t timed_waits() {
  return g_timed_waits.load(std::memory_order_relaxed);
}
std::uint64_t timed_wait_timeouts() {
  return g_timed_wait_timeouts.load(std::memory_order_relaxed);
}

void backoff_until(std::int64_t deadline_ns) {
  WaitEngine e;
  while (e.step_until(deadline_ns)) {
  }
}

void backoff_for_us(std::int64_t us) {
  backoff_until(common::now_ns() + us * 1000);
}

namespace sync_detail {

bool run_some_work() {
  // maybe_work is a *probe* ("anything runnable for this thread?") —
  // the actual execution happens when the caller yields into the
  // scheduler. True therefore means "yield now and it will count".
  for (int i = 0; i < kMaxSuspendOps; ++i) {
    const SuspendOps* o = g_ops[i].load(std::memory_order_acquire);
    if (o != nullptr && o->maybe_work()) return true;
  }
  return false;
}

void yield_some() {
  for (int i = 0; i < kMaxSuspendOps; ++i) {
    const SuspendOps* o = g_ops[i].load(std::memory_order_acquire);
    if (o != nullptr && o->can_suspend()) {
      o->yield();
      return;
    }
  }
  std::this_thread::yield();
}

bool park_current(ParkOp& op) {
  WaitNode* n = op.node;
  if (trace_enabled()) {
    n->block_ns = static_cast<std::uint64_t>(common::now_ns());
    trace_emit(TraceKind::ult_block, reinterpret_cast<std::uintptr_t>(n));
  }
  chaos_maybe_delay();
  watchdog_enter_wait();
  bool parked;
  const SuspendOps* ops = current_suspend_ops();
  if (ops != nullptr) {
    n->ops = ops;
    ops->suspend(&park_suspend_cb, &op);
    // Resumed: either the signaller handed us back (signaled set before
    // the resume) or try_enqueue aborted and the scheduler re-readied us.
    parked = n->signaled.load(std::memory_order_acquire);
  } else {
    // Foreign thread / tasklet / pthread runtime: park the OS thread, but
    // stay work-conserving — a stackless context blocking on a primitive
    // must keep its worker draining runnable units or the very unit that
    // would signal us may never run.
    common::Parker& p = foreign_parker();
    n->parker = &p;
    op.lock->lock();
    parked = op.try_enqueue(&op);
    op.lock->unlock();
    if (parked) {
      // op is this thread's own frame here (we block below until
      // signaled), so reading it after the unlock is safe on this path.
      if (op.post_enqueue != nullptr) op.post_enqueue(op.ctx2);
      g_suspensions.fetch_add(1, std::memory_order_relaxed);
      std::int64_t sleep_us = 0;
      while (!n->signaled.load(std::memory_order_acquire)) {
        if (run_some_work()) {
          // Runnable units exist somewhere: give the schedulers the core
          // before sleeping (an OS yield — this context cannot switch).
          std::this_thread::yield();
          if (n->signaled.load(std::memory_order_acquire)) break;
        }
        if (sleep_us < kSleepCapUs) sleep_us += kSleepStepUs;
        p.park_for_us(sleep_us);
      }
    }
  }
  watchdog_exit_wait();
  return parked;
}

void wake_node(WaitNode* n) {
  // The node lives on the waiter's stack and dies the instant the waiter
  // observes `signaled` (fallback) or is dispatched (ULT) — copy every
  // field first, and make the signaled store the last node access.
  const SuspendOps* ops = n->ops;
  void* handle = n->handle;
  common::Parker* parker = n->parker;
  if (trace_enabled()) {
    const std::uint64_t now = static_cast<std::uint64_t>(common::now_ns());
    const std::uint64_t blocked_us =
        n->block_ns != 0 && now > n->block_ns ? (now - n->block_ns) / 1000 : 0;
    trace_emit_at(TraceKind::ult_unblock, now,
                  reinterpret_cast<std::uintptr_t>(n),
                  blocked_us > 0xffffffffULL
                      ? 0xffffffffu
                      : static_cast<std::uint32_t>(blocked_us));
  }
  chaos_maybe_delay();
  n->signaled.store(true, std::memory_order_release);
  if (parker != nullptr) {
    parker->unpark();
  } else {
    ops->resume(handle);
    g_wakes_direct.fetch_add(1, std::memory_order_relaxed);
  }
  watchdog_note_progress();
}

void wake_list(WaitNode* head) {
  while (head != nullptr) {
    WaitNode* next = head->next;  // read before the node can die
    wake_node(head);
    head = next;
  }
}

TimedPark timed_park_current(ParkOp& op, std::int64_t deadline_ns) {
  WaitNode* n = op.node;
  GLTO_CHECK_MSG(op.cancel_list != nullptr,
                 "timed park without a cancel list");
  // A timed waiter never suspends through a backend: nothing would
  // resume a suspended ULT at the deadline. It enqueues as a
  // Parker-backed node (wake_node's fallback branch) and polls
  // `signaled` through the WaitEngine's deadline clamp, which drains
  // runnable units and yields before it ever micro-parks, so a ULT
  // caller stays work-conserving while it waits. If the ULT migrates
  // mid-wait the recorded parker goes stale and a signaller's unpark
  // lands on the old thread's immortal parker — benign: the waiter
  // polls, and every park in the ladder is bounded (≤200 µs).
  n->parker = &foreign_parker();
  if (trace_enabled()) {
    n->block_ns = static_cast<std::uint64_t>(common::now_ns());
    trace_emit(TraceKind::ult_block, reinterpret_cast<std::uintptr_t>(n));
  }
  chaos_maybe_delay();
  op.lock->lock();
  const bool parked = op.try_enqueue(&op);
  op.lock->unlock();
  if (!parked) return TimedPark::aborted;
  // op is this context's own frame (we do not return before the wait is
  // resolved), so reading it after the unlock is safe on this path.
  if (op.post_enqueue != nullptr) op.post_enqueue(op.ctx2);
  g_timed_waits.fetch_add(1, std::memory_order_relaxed);
  WaitEngine e;
  while (!n->signaled.load(std::memory_order_acquire)) {
    if (e.step_until(deadline_ns)) continue;
    // Deadline passed: race the signaller for the node under the
    // primitive's lock. Unlinking wins the timeout; a signaller that
    // already popped the node wins the wait — it is past the pop and
    // before its `signaled` store (its last node access), so spin that
    // bounded window out and honour the signal.
    op.lock->lock();
    const bool unlinked = op.cancel_list->remove(n);
    op.lock->unlock();
    if (unlinked) {
      g_timed_wait_timeouts.fetch_add(1, std::memory_order_relaxed);
      if (trace_enabled()) {
        const std::uint64_t now = static_cast<std::uint64_t>(common::now_ns());
        const std::uint64_t blocked_us =
            n->block_ns != 0 && now > n->block_ns ? (now - n->block_ns) / 1000
                                                  : 0;
        trace_emit_at(TraceKind::ult_unblock, now,
                      reinterpret_cast<std::uintptr_t>(n),
                      blocked_us > 0xffffffffULL
                          ? 0xffffffffu
                          : static_cast<std::uint32_t>(blocked_us));
      }
      return TimedPark::timeout;
    }
    while (!n->signaled.load(std::memory_order_acquire)) {
      common::cpu_relax();
    }
    break;
  }
  return TimedPark::signaled;
}

}  // namespace sync_detail

// ----------------------------------------------------------------- Event

bool Event::enqueue_cb(sync_detail::ParkOp* op) {
  auto* e = static_cast<Event*>(op->ctx);
  if (e->set_.load(std::memory_order_relaxed)) return false;
  e->waiters_.push(op->node);
  return true;
}

void Event::set() {
  WaitNode* chain;
  {
    common::SpinGuard g(lock_);
    set_.store(true, std::memory_order_release);
    chain = waiters_.detach_all();
  }
  sync_detail::wake_list(chain);
}

void Event::wait() {
  // Locked fast path: a waiter is allowed to destroy the Event once
  // wait() returns, so the set observation must serialize after the
  // setter's unlock (a racy is_set() here could return while set() is
  // still touching members). The parked path is safe without this —
  // wake_list runs past set()'s last member access and touches only the
  // chain — and the enqueue_cb re-check runs under the same lock.
  if (is_set_locked()) return;
  WaitNode n;
  sync_detail::ParkOp op;
  op.lock = &lock_;
  op.node = &n;
  op.try_enqueue = &Event::enqueue_cb;
  op.ctx = this;
  sync_detail::park_current(op);
}

bool Event::wait_until(std::int64_t deadline_ns) {
  if (is_set_locked()) return true;
  WaitNode n;
  sync_detail::ParkOp op;
  op.lock = &lock_;
  op.node = &n;
  op.try_enqueue = &Event::enqueue_cb;
  op.ctx = this;
  op.cancel_list = &waiters_;
  // aborted = the enqueue re-check saw the event set; signaled = the
  // setter woke us. Both are locked observations — safe delete-gates.
  return sync_detail::timed_park_current(op, deadline_ns) !=
         sync_detail::TimedPark::timeout;
}

// ----------------------------------------------------------------- Mutex

bool Mutex::enqueue_cb(sync_detail::ParkOp* op) {
  auto* m = static_cast<Mutex*>(op->ctx);
  std::uint32_t expected = 0;
  if (m->state_.compare_exchange_strong(expected, 1,
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed)) {
    return false;  // acquired during the re-check; no park
  }
  m->waiters_.push(op->node);
  return true;
}

void Mutex::lock_slow() {
  WaitNode n;
  sync_detail::ParkOp op;
  op.lock = &qlock_;
  op.node = &n;
  op.try_enqueue = &Mutex::enqueue_cb;
  op.ctx = this;
  // Either we parked and a handoff made us the owner, or the re-check
  // CAS acquired the lock — both ways we own it on return.
  sync_detail::park_current(op);
}

bool Mutex::try_lock_until(std::int64_t deadline_ns) {
  if (try_lock()) return true;
  WaitNode n;
  sync_detail::ParkOp op;
  op.lock = &qlock_;
  op.node = &n;
  op.try_enqueue = &Mutex::enqueue_cb;
  op.ctx = this;
  op.cancel_list = &waiters_;
  // aborted = the enqueue re-check CAS acquired the lock; signaled = an
  // unlock() handed ownership to us FIFO-style. A handoff that raced the
  // timeout resolves as signaled (the cancel unlink lost), so ownership
  // is never dropped on the floor.
  return sync_detail::timed_park_current(op, deadline_ns) !=
         sync_detail::TimedPark::timeout;
}

void Mutex::unlock() {
  WaitNode* n;
  {
    common::SpinGuard g(qlock_);
    n = waiters_.pop();
    if (n == nullptr) {
      state_.store(0, std::memory_order_release);
      return;
    }
    // Direct handoff: the lock word stays 1 and ownership transfers to
    // the oldest waiter — a barger spinning on the fast path cannot slip
    // in between.
  }
  sync_detail::wake_node(n);
}

// --------------------------------------------------------------- Condvar

bool Condvar::enqueue_cb(sync_detail::ParkOp* op) {
  auto* cv = static_cast<Condvar*>(op->ctx);
  cv->waiters_.push(op->node);
  return true;  // a condvar wait always parks
}

void Condvar::release_mutex_cb(void* ctx2) {
  static_cast<Mutex*>(ctx2)->unlock();
}

void Condvar::wait(Mutex& m) {
  WaitNode n;
  sync_detail::ParkOp op;
  op.lock = &lock_;
  op.node = &n;
  op.try_enqueue = &Condvar::enqueue_cb;
  op.post_enqueue = &Condvar::release_mutex_cb;  // after the node is listed
  op.ctx = this;
  op.ctx2 = &m;
  sync_detail::park_current(op);
  m.lock();
}

bool Condvar::wait_until(Mutex& m, std::int64_t deadline_ns) {
  WaitNode n;
  sync_detail::ParkOp op;
  op.lock = &lock_;
  op.node = &n;
  op.try_enqueue = &Condvar::enqueue_cb;
  op.post_enqueue = &Condvar::release_mutex_cb;  // after the node is listed
  op.ctx = this;
  op.ctx2 = &m;
  op.cancel_list = &waiters_;
  const sync_detail::TimedPark r =
      sync_detail::timed_park_current(op, deadline_ns);
  // The mutex is reacquired on both outcomes; the reacquire is untimed.
  m.lock();
  return r != sync_detail::TimedPark::timeout;
}

void Condvar::notify_one() {
  WaitNode* n;
  {
    common::SpinGuard g(lock_);
    n = waiters_.pop();
  }
  if (n != nullptr) sync_detail::wake_node(n);
}

void Condvar::notify_all() {
  WaitNode* chain;
  {
    common::SpinGuard g(lock_);
    chain = waiters_.detach_all();
  }
  sync_detail::wake_list(chain);
}

// ------------------------------------------------------- CompletionLatch

bool CompletionLatch::enqueue_cb(sync_detail::ParkOp* op) {
  auto* l = static_cast<CompletionLatch*>(op->ctx);
  if (l->count_ == 0) return false;
  l->waiters_.push(op->node);
  return true;
}

void CompletionLatch::add(std::int64_t n) {
  common::SpinGuard g(lock_);
  count_ += n;
}

void CompletionLatch::count_down(std::int64_t n) {
  WaitNode* chain = nullptr;
  {
    common::SpinGuard g(lock_);
    count_ -= n;
    if (count_ == 0) chain = waiters_.detach_all();
  }
  // Past the unlock we touch only the detached chain: a waiter that
  // observed zero may already have freed the latch's owner.
  sync_detail::wake_list(chain);
}

bool CompletionLatch::try_wait() {
  common::SpinGuard g(lock_);
  return count_ == 0;
}

void CompletionLatch::wait() {
  if (try_wait()) return;
  WaitNode n;
  sync_detail::ParkOp op;
  op.lock = &lock_;
  op.node = &n;
  op.try_enqueue = &CompletionLatch::enqueue_cb;
  op.ctx = this;
  sync_detail::park_current(op);
}

bool CompletionLatch::wait_until(std::int64_t deadline_ns) {
  if (try_wait()) return true;
  WaitNode n;
  sync_detail::ParkOp op;
  op.lock = &lock_;
  op.node = &n;
  op.try_enqueue = &CompletionLatch::enqueue_cb;
  op.ctx = this;
  op.cancel_list = &waiters_;
  // aborted = the enqueue re-check saw zero; signaled = the final
  // count_down woke us. Both observations serialize after the
  // decrementer's unlock, so the destruction protocol holds.
  return sync_detail::timed_park_current(op, deadline_ns) !=
         sync_detail::TimedPark::timeout;
}

std::int64_t CompletionLatch::pending() const {
  common::SpinGuard g(lock_);
  return count_;
}

// --------------------------------------------------------------- Barrier

namespace {
struct BarrierWaitCtx {
  std::uint64_t my_epoch;
};
}  // namespace

bool Barrier::enqueue_cb(sync_detail::ParkOp* op) {
  auto* b = static_cast<Barrier*>(op->ctx);
  const auto* w = static_cast<const BarrierWaitCtx*>(op->ctx2);
  if (b->epoch_ != w->my_epoch) return false;  // cycle completed meanwhile
  b->waiters_.push(op->node);
  return true;
}

bool Barrier::arrive_and_wait() {
  BarrierWaitCtx w{};
  lock_.lock();
  if (++arrived_ == parties_) {
    arrived_ = 0;
    ++epoch_;
    WaitNode* chain = waiters_.detach_all();
    lock_.unlock();
    sync_detail::wake_list(chain);
    return true;
  }
  w.my_epoch = epoch_;
  lock_.unlock();
  WaitNode n;
  sync_detail::ParkOp op;
  op.lock = &lock_;
  op.node = &n;
  op.try_enqueue = &Barrier::enqueue_cb;
  op.ctx = this;
  op.ctx2 = &w;
  sync_detail::park_current(op);
  return false;
}

// ------------------------------------------------------------ WaitEngine

WaitEngine::WaitEngine() { watchdog_enter_wait(); }
WaitEngine::~WaitEngine() { watchdog_exit_wait(); }

void WaitEngine::step() {
  chaos_maybe_delay();
  if (spins_ < kSpinSteps) {
    ++spins_;
    common::cpu_relax();
    return;
  }
  if (sync_detail::run_some_work()) {
    // Runnable units exist: yield into the scheduler so they actually
    // execute (on a ULT this context-switches into the work), and
    // restart the cheap end of the ladder.
    sync_detail::yield_some();
    yields_ = 0;
    sleep_us_ = 0;
    return;
  }
  if (yields_ < kYieldSteps) {
    ++yields_;
    sync_detail::yield_some();
    return;
  }
  if (sleep_us_ < kSleepCapUs) sleep_us_ += kSleepStepUs;
  foreign_parker().park_for_us(sleep_us_);
}

bool WaitEngine::step_until(std::int64_t deadline_ns) {
  const std::int64_t now = common::now_ns();
  if (now >= deadline_ns) return false;
  chaos_maybe_delay();
  if (spins_ < kSpinSteps) {
    ++spins_;
    common::cpu_relax();
    return true;
  }
  if (sync_detail::run_some_work()) {
    sync_detail::yield_some();
    yields_ = 0;
    sleep_us_ = 0;
    return true;
  }
  if (yields_ < kYieldSteps) {
    ++yields_;
    sync_detail::yield_some();
    return true;
  }
  if (sleep_us_ < kSleepCapUs) sleep_us_ += kSleepStepUs;
  const std::int64_t budget_us = (deadline_ns - now) / 1000;
  foreign_parker().park_for_us(
      budget_us < sleep_us_ ? (budget_us > 0 ? budget_us : 1) : sleep_us_);
  return true;
}

}  // namespace glto::sched
