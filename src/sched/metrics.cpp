#include "sched/metrics.hpp"

#include <cinttypes>

#include "common/checked_mutex.hpp"
#include "common/env.hpp"
#include "common/time.hpp"
#include "sched/chaos.hpp"
#include "sched/qos.hpp"
#include "sched/trace.hpp"

namespace glto::sched {

// ---------------------------------------------------------------------------
// LatencyHistogram

std::uint64_t LatencyHistogram::slot_upper(unsigned slot) {
  if (slot < kSub) return slot;
  const unsigned group = slot / kSub;       // 1 .. kMaxOctave-2
  const unsigned sub = slot % kSub;
  const unsigned o = group + 2;             // octave of the group
  const std::uint64_t base = std::uint64_t{1} << o;
  const std::uint64_t width = std::uint64_t{1} << (o - kSubBits);
  return base + (sub + 1) * width - 1;
}

std::uint64_t LatencyHistogram::percentile_ns(double p) const {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  if (p >= 100.0) return max_ns();
  if (p <= 0.0) p = 0.0;
  // ceil(p/100 * n), at least 1: the rank of the percentile sample.
  std::uint64_t rank =
      static_cast<std::uint64_t>((p / 100.0) * static_cast<double>(n));
  if (static_cast<double>(rank) < (p / 100.0) * static_cast<double>(n) ||
      rank == 0) {
    ++rank;
  }
  std::uint64_t cum = 0;
  for (unsigned i = 0; i < kSlots; ++i) {
    cum += slots_[i].load(std::memory_order_relaxed);
    if (cum >= rank) {
      const std::uint64_t upper = slot_upper(i);
      const std::uint64_t mx = max_ns();
      return upper < mx || mx == 0 ? upper : mx;
    }
  }
  return max_ns();
}

void LatencyHistogram::reset() {
  for (auto& s : slots_) s.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

LatencyHistogram& queue_delay_hist() {
  static LatencyHistogram* h = new LatencyHistogram;  // leaked: atexit emits
  return *h;
}

LatencyHistogram& service_time_hist() {
  static LatencyHistogram* h = new LatencyHistogram;
  return *h;
}

// ---------------------------------------------------------------------------
// Latency hooks

namespace lat_detail {

std::atomic<bool> g_lat_on{false};

std::uint64_t task_submit_slow(std::uint64_t id, bool deferred) {
  const std::uint64_t now = common::now_ns();
  trace_emit_at(TraceKind::task_submit, now, id, deferred ? 1 : 0);
  return now;
}

std::uint64_t task_start_slow(std::uint64_t submit_ns, std::uint64_t id) {
  const std::uint64_t now = common::now_ns();
  if (now > submit_ns) queue_delay_hist().record(now - submit_ns);
  trace_emit_at(TraceKind::task_start, now, id, 0);
  return now;
}

void task_complete_slow(std::uint64_t start_ns, std::uint64_t id) {
  const std::uint64_t now = common::now_ns();
  const std::uint64_t dur = now > start_ns ? now - start_ns : 0;
  service_time_hist().record(dur);
  // The trace slice carries its duration in µs (u32: caps at ~71 min).
  std::uint64_t dur_us = dur / 1000;
  if (dur_us > 0xffffffffu) dur_us = 0xffffffffu;
  trace_emit_at(TraceKind::task_complete, now, id,
                static_cast<std::uint32_t>(dur_us));
}

}  // namespace lat_detail

// ---------------------------------------------------------------------------
// MetricsSnapshot + registry

void MetricsSnapshot::add(std::string_view name, std::uint64_t v,
                          bool counter) {
  for (auto& e : entries) {
    if (e.name == name) {
      if (counter && e.counter) {
        e.value += v;
      } else {
        e.value = v;
      }
      return;
    }
  }
  entries.push_back(Entry{std::string(name), v, counter});
}

std::uint64_t MetricsSnapshot::value(std::string_view name) const {
  for (const auto& e : entries) {
    if (e.name == name) return e.value;
  }
  return 0;
}

bool MetricsSnapshot::has(std::string_view name) const {
  for (const auto& e : entries) {
    if (e.name == name) return true;
  }
  return false;
}

namespace {

struct Provider {
  std::uint64_t token;
  MetricsProviderFn fn;
  void* arg;
};

struct MetricsRegistry {
  common::CheckedMutex m;
  std::vector<Provider> providers GLTO_GUARDED_BY(m);
  std::uint64_t next_token GLTO_GUARDED_BY(m) = 1;
  MetricsSnapshot last_delta_base GLTO_GUARDED_BY(m);
  bool env_resolved GLTO_GUARDED_BY(m) = false;
};

MetricsRegistry& mreg() {
  static MetricsRegistry* r = new MetricsRegistry;  // leaked: atexit reads
  return *r;
}

void append_builtin(MetricsSnapshot& out) {
  const auto& qd = queue_delay_hist();
  const auto& st = service_time_hist();
  out.add("lat.queue_count", qd.count());
  out.add("lat.queue_p50_ns", qd.percentile_ns(50), /*counter=*/false);
  out.add("lat.queue_p95_ns", qd.percentile_ns(95), /*counter=*/false);
  out.add("lat.queue_p99_ns", qd.percentile_ns(99), /*counter=*/false);
  out.add("lat.queue_max_ns", qd.max_ns(), /*counter=*/false);
  out.add("lat.service_count", st.count());
  out.add("lat.service_p50_ns", st.percentile_ns(50), /*counter=*/false);
  out.add("lat.service_p95_ns", st.percentile_ns(95), /*counter=*/false);
  out.add("lat.service_p99_ns", st.percentile_ns(99), /*counter=*/false);
  out.add("lat.service_max_ns", st.max_ns(), /*counter=*/false);
  out.add("trace.events_recorded", trace_events_recorded());
  out.add("trace.events_dropped", trace_events_dropped());
  out.add("chaos.faults_injected", chaos_faults_injected());
  out.add("qos.completed", qos_completed());
  out.add("qos.shed", qos_shed_total());
  out.add("qos.deadline_missed", qos_deadline_missed());
  out.add("qos.retried", qos_retried());
  out.add("qos.degraded", qos_degraded());
}

MetricsSnapshot snapshot_locked(MetricsRegistry& r) GLTO_REQUIRES(r.m) {
  MetricsSnapshot out;
  for (const auto& p : r.providers) p.fn(p.arg, out);
  append_builtin(out);
  return out;
}

MetricsSnapshot delta_of(const MetricsSnapshot& cur,
                         const MetricsSnapshot& base) {
  MetricsSnapshot d;
  d.entries.reserve(cur.entries.size());
  for (const auto& e : cur.entries) {
    if (!e.counter) {
      d.entries.push_back(e);
      continue;
    }
    const std::uint64_t prev = base.value(e.name);
    // Counters reset when a runtime is torn down and re-initialised
    // (benches select several runtimes in sequence); clamp instead of
    // wrapping to a garbage 2^64-ish delta.
    d.entries.push_back(
        MetricsSnapshot::Entry{e.name, e.value >= prev ? e.value - prev : 0,
                               true});
  }
  return d;
}

}  // namespace

std::uint64_t metrics_register_provider(MetricsProviderFn fn, void* arg) {
  MetricsRegistry& r = mreg();
  common::CheckedLock lk(r.m);
  const std::uint64_t token = r.next_token++;
  r.providers.push_back(Provider{token, fn, arg});
  return token;
}

void metrics_unregister_provider(std::uint64_t token) {
  MetricsRegistry& r = mreg();
  common::CheckedLock lk(r.m);
  for (auto it = r.providers.begin(); it != r.providers.end(); ++it) {
    if (it->token == token) {
      r.providers.erase(it);
      return;
    }
  }
}

MetricsSnapshot metrics_snapshot() {
  MetricsRegistry& r = mreg();
  common::CheckedLock lk(r.m);
  return snapshot_locked(r);
}

MetricsSnapshot metrics_delta() {
  MetricsRegistry& r = mreg();
  common::CheckedLock lk(r.m);
  MetricsSnapshot cur = snapshot_locked(r);
  MetricsSnapshot d = delta_of(cur, r.last_delta_base);
  r.last_delta_base = std::move(cur);
  return d;
}

MetricsSnapshot metrics_delta_since(MetricsSnapshot& baseline) {
  MetricsSnapshot cur = metrics_snapshot();
  MetricsSnapshot d = delta_of(cur, baseline);
  baseline = std::move(cur);
  return d;
}

void metrics_dump(std::FILE* out) {
  MetricsRegistry& r = mreg();
  // The watchdog calls this from a wedged process: never block on the
  // registry, and never call back into a provider that might.
  if (!r.m.try_lock()) {
    std::fputs("[glto-metrics] registry busy, snapshot unavailable\n", out);
    return;
  }
  MetricsSnapshot snap = snapshot_locked(r);
  r.m.unlock();
  for (const auto& e : snap.entries) {
    std::fprintf(out, "[glto-metrics] %-24s %" PRIu64 "%s\n", e.name.c_str(),
                 e.value, e.counter ? "" : " (gauge)");
  }
}

void metrics_init_from_env() {
  MetricsRegistry& r = mreg();
  {
    common::CheckedLock lk(r.m);
    if (r.env_resolved) {
      // Re-checked on every runtime select: tracing may have been armed
      // between calls (trace_set_for_testing), keep the implication fresh.
      if (trace_enabled()) {
        lat_detail::g_lat_on.store(true, std::memory_order_relaxed);
      }
      return;
    }
    r.env_resolved = true;
  }
  const bool metrics_on = common::env_bool("GLTO_METRICS", false);
  if (metrics_on || trace_enabled()) {
    lat_detail::g_lat_on.store(true, std::memory_order_relaxed);
  }
}

void metrics_set_for_testing(bool latency_on) {
  lat_detail::g_lat_on.store(latency_on, std::memory_order_relaxed);
}

}  // namespace glto::sched
