// Scheduling-core selection shared by the three LWT backends.
//
// Every backend exposes the same ablation axis the paper's §IV-F-style
// studies need: the PR-1 work-stealing core (Chase–Lev deques + randomized
// stealing) against the seed's mutex-guarded FIFO pools. The mode is
// resolved once at init from the backend's own environment variable
// ($ABT_DISPATCH, $QTH_DISPATCH, $MTH_DISPATCH), so a single binary can
// sweep backend × dispatch without rebuilding.
#pragma once

#include <cstdint>

namespace glto::sched {

enum class Dispatch : std::uint8_t {
  Auto,          ///< resolve from the backend's $*_DISPATCH, default ws
  WorkStealing,  ///< Chase–Lev deques + randomized stealing (lock-free)
  Locked,        ///< mutex-guarded FIFO pools, no stealing (seed baseline)
};

/// Human-readable mode name ("ws" / "locked" / "auto").
[[nodiscard]] const char* dispatch_name(Dispatch d);

/// Resolves Dispatch::Auto through @p env_var ("ws" | "workstealing" |
/// "locked", case-insensitive). An unrecognized value warns on stderr and
/// falls back to work stealing — a silent fallback would mislabel an
/// ablation run. Non-Auto requests pass through untouched.
[[nodiscard]] Dispatch resolve_dispatch(Dispatch requested,
                                        const char* env_var);

}  // namespace glto::sched
