// Scheduling-core selection shared by the three LWT backends.
//
// Every backend exposes the same ablation axis the paper's §IV-F-style
// studies need: the PR-1 work-stealing core (Chase–Lev deques + randomized
// stealing) against the seed's mutex-guarded FIFO pools. The mode is
// resolved once at init from the backend's own environment variable
// ($ABT_DISPATCH, $QTH_DISPATCH, $MTH_DISPATCH), so a single binary can
// sweep backend × dispatch without rebuilding.
#pragma once

#include <cstdint>

namespace glto::sched {

enum class Dispatch : std::uint8_t {
  Auto,          ///< resolve from the backend's $*_DISPATCH, default ws
  WorkStealing,  ///< Chase–Lev deques + randomized stealing (lock-free)
  Locked,        ///< mutex-guarded FIFO pools, no stealing (seed baseline)
};

/// Human-readable mode name ("ws" / "locked" / "auto").
[[nodiscard]] const char* dispatch_name(Dispatch d);

/// Resolves Dispatch::Auto through @p env_var ("ws" | "workstealing" |
/// "locked", case-insensitive). An unrecognized value warns on stderr and
/// falls back to work stealing — a silent fallback would mislabel an
/// ablation run. Non-Auto requests pass through untouched.
[[nodiscard]] Dispatch resolve_dispatch(Dispatch requested,
                                        const char* env_var);

/// Idle-worker wakeup policy of the shared scheduling core — the second
/// ablation axis ($GLTO_WAKE_POLICY, honoured by all three backends).
/// Before this axis existed every push broadcast-woke the whole team
/// (today's `all`), so a single-producer burst paid one futex storm per
/// task; `one` issues exactly one targeted wake per deposit and is the
/// default.
enum class WakePolicy : std::uint8_t {
  Auto,       ///< resolve from $GLTO_WAKE_POLICY, default wake-one
  One,        ///< each deposit wakes at most one parked worker (targeted)
  Threshold,  ///< like One; bulk deposits engage victims ∝ queued work
  All,        ///< every deposit wakes every parked worker (legacy baseline)
};

/// Human-readable policy name ("one" / "threshold" / "all" / "auto").
[[nodiscard]] const char* wake_policy_name(WakePolicy p);

/// Resolves WakePolicy::Auto through @p env_var ("one" | "threshold" |
/// "all", case-insensitive; default wake-one). Unrecognized values warn on
/// stderr and fall back to wake-one. Non-Auto requests pass through.
[[nodiscard]] WakePolicy resolve_wake_policy(
    WakePolicy requested, const char* env_var = "GLTO_WAKE_POLICY");

/// Fault-injection plan of the chaos harness ($GLTO_CHAOS). Each
/// probability is independent and evaluated per opportunity:
///   spawn:p — ULT creation fails, the task degrades to inline execution
///   alloc:p — freelist slab allocation fails, exercising the spill paths
///   delay:p — a short delay is injected at a suspension point to widen
///             race windows
/// A fixed seed makes a chaos soak reproducible bit-for-bit modulo thread
/// interleaving: each thread derives its stream from seed × thread id.
struct ChaosConfig {
  bool enabled = false;
  double spawn_p = 0.0;
  double alloc_p = 0.0;
  double delay_p = 0.0;
  std::uint64_t seed = 1;
};

/// Parses @p env_var as "spawn:p,alloc:p,delay:p[,seed:s]" (keys optional,
/// any order, probabilities clamped to [0,1]). Unset or empty → disabled.
/// Unrecognized tokens warn on stderr and are skipped — a silent typo
/// would turn a chaos CI leg into a no-op.
[[nodiscard]] ChaosConfig resolve_chaos(const char* env_var = "GLTO_CHAOS");

}  // namespace glto::sched
