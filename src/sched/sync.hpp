// ULT-native blocking primitives over the shared scheduling core.
//
// Every blocking wait in the runtime used to bottom out in bounded
// micro-sleeps (WaitBackoff, ≤200 µs quantum), which puts a hard floor
// under wake latency and burns wake tokens on spurious re-probes. The
// primitives here suspend the waiter for real: it captures its
// continuation, parks on an intrusive wait list, and the signaller
// re-deposits it onto a worker deque through the core's targeted-wake
// path. No sleep quantum, no lost wakeups.
//
// Backend coupling is a five-function vtable (SuspendOps) each ULT
// backend registers at init: `suspend(cb, arg)` switches to the
// scheduler, runs `cb` there — *after* the waiter's context is fully
// saved — and `cb` enqueues the waiter under the primitive's lock with a
// re-check of the wait condition (the same registered-or-complete shape
// qth's FEB engine uses). `cb` returning false means the condition was
// already satisfied and the scheduler re-readies the waiter immediately;
// returning true hands ownership of the handle to the eventual
// signaller, which resumes it with `resume(handle)`.
//
// Contexts that cannot suspend (foreign OS threads, tasklets, the
// pthread runtimes) fall back to a work-conserving park on the calling
// thread's Parker: the signaller banks a permit, so the wake is never
// lost and never waits out a timeout quantum; between parks the waiter
// drains runnable units via the registered backends' maybe_work so a
// stackless context blocking on a primitive cannot wedge its worker.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "common/parker.hpp"
#include "common/spin.hpp"
#include "common/thread_safety.hpp"

namespace glto::sched {

// ------------------------------------------------------------ SuspendOps

/// Enqueue-under-lock callback run on the scheduler stack after the
/// waiter's context is saved. @p handle is the backend's record for the
/// suspended context. Return true to park (the signaller now owns the
/// handle and must resume() it exactly once); false to abort the park
/// (condition already satisfied — the scheduler re-readies the waiter).
using SuspendCb = bool (*)(void* arg, void* handle);

/// Per-backend suspension vtable. Registered at backend init,
/// unregistered at finalize; raw-backend users (no glt:: facade) get the
/// same blocking behaviour, and two live backends (nested_libraries)
/// each resume their own waiters.
struct SuspendOps {
  bool (*can_suspend)();                    ///< caller can capture a continuation
  void (*suspend)(SuspendCb cb, void* arg); ///< park current ULT via cb
  void (*resume)(void* handle);             ///< re-deposit a parked handle
  void (*yield)();                          ///< cooperative yield
  bool (*maybe_work)();                     ///< probe: anything runnable here?
};

void register_suspend_ops(const SuspendOps* ops);
void unregister_suspend_ops(const SuspendOps* ops);

/// The vtable to suspend the *calling context* through: first registered
/// backend whose can_suspend() is true, nullptr when the caller must use
/// the Parker fallback.
[[nodiscard]] const SuspendOps* current_suspend_ops();

/// Counters for the metrics registry: contexts actually parked on a wait
/// list, and parked contexts handed straight back to a worker deque by a
/// signaller (as opposed to Parker-fallback wakes).
[[nodiscard]] std::uint64_t suspensions();
[[nodiscard]] std::uint64_t wakes_direct();

/// Deadline-bounded waits entered, and the subset that expired. Exported
/// as sched.timed_waits / sched.timed_wait_timeouts.
[[nodiscard]] std::uint64_t timed_waits();
[[nodiscard]] std::uint64_t timed_wait_timeouts();

/// Work-conserving bounded backoff for retry loops (the lint-sanctioned
/// replacement for naked sleeps): runs the WaitEngine ladder — spin,
/// yield, drain runnable units, escalating micro-parks — until
/// @p deadline_ns (common::now_ns clock) has passed.
void backoff_until(std::int64_t deadline_ns);
void backoff_for_us(std::int64_t us);

// -------------------------------------------------------------- WaitNode

/// One parked waiter. Lives on the waiter's stack for the duration of the
/// wait; the signaller must copy every field it needs into locals before
/// resuming/unparking, because the node dies the instant the waiter runs.
struct WaitNode {
  void* handle = nullptr;             ///< backend record (ULT path)
  const SuspendOps* ops = nullptr;    ///< backend to resume through
  common::Parker* parker = nullptr;   ///< fallback path (thread-local, immortal)
  std::atomic<bool> signaled{false};
  WaitNode* next = nullptr;
  std::uint64_t block_ns = 0;         ///< stamped only when tracing is armed
};

/// Intrusive FIFO of WaitNodes; guarded by the owning primitive's lock.
struct WaitList {
  WaitNode* head = nullptr;
  WaitNode* tail = nullptr;

  void push(WaitNode* n) {
    n->next = nullptr;
    if (tail != nullptr) {
      tail->next = n;
    } else {
      head = n;
    }
    tail = n;
  }
  WaitNode* pop() {
    WaitNode* n = head;
    if (n != nullptr) {
      head = n->next;
      if (head == nullptr) tail = nullptr;
    }
    return n;
  }
  /// Unlinks the whole chain (walk via ->next after the lock is dropped).
  WaitNode* detach_all() {
    WaitNode* n = head;
    head = tail = nullptr;
    return n;
  }
  /// Unlinks @p n if it is still queued; false when a signaller already
  /// popped it. Timed waiters call this under the primitive's lock to
  /// cancel — the lock arbitrates the timeout-vs-signal race.
  bool remove(WaitNode* n) {
    WaitNode* prev = nullptr;
    for (WaitNode* cur = head; cur != nullptr; prev = cur, cur = cur->next) {
      if (cur != n) continue;
      if (prev != nullptr) {
        prev->next = cur->next;
      } else {
        head = cur->next;
      }
      if (tail == cur) tail = prev;
      cur->next = nullptr;
      return true;
    }
    return false;
  }
  [[nodiscard]] bool empty() const { return head == nullptr; }
};

namespace sync_detail {

/// One park request. try_enqueue runs with *lock held* and must either
/// enqueue op->node (return true) or observe the condition satisfied
/// (return false). post_enqueue — optional — runs after the lock is
/// released on the parking path only; Condvar uses it to drop the user
/// mutex once the node is safely enqueued. It receives ctx2 by value,
/// never the ParkOp: the op lives on the waiter's stack, and once the
/// lock is released a signaller can wake the waiter and kill the frame —
/// everything needed post-enqueue is copied out while the lock pins it.
struct ParkOp {
  common::SpinLock* lock = nullptr;
  WaitNode* node = nullptr;
  bool (*try_enqueue)(ParkOp* op) = nullptr;
  void (*post_enqueue)(void* ctx2) = nullptr;
  void* ctx = nullptr;
  void* ctx2 = nullptr;
  WaitList* cancel_list = nullptr;  ///< timed waits: list to unlink from
};

/// Blocks the caller until its node is signaled (ULT suspension when the
/// context supports it, work-conserving Parker park otherwise). Returns
/// true if the caller actually parked, false if try_enqueue aborted.
bool park_current(ParkOp& op);

/// Outcome of a deadline-bounded park.
enum class TimedPark {
  aborted,   ///< try_enqueue observed the condition satisfied; never parked
  signaled,  ///< a signaller detached and woke the node
  timeout,   ///< deadline passed; the waiter unlinked its own node
};

/// Deadline-bounded variant of park_current. op.cancel_list must point at
/// the wait list try_enqueue pushes onto. The waiter never suspends
/// through a backend (nothing would resume it at the deadline); it
/// enqueues a Parker-backed node and polls it through the WaitEngine's
/// deadline clamp, so ULT callers stay work-conserving while they wait.
/// On timeout the node is unlinked under the primitive's lock; a signal
/// that already detached the node wins and the call reports `signaled`.
TimedPark timed_park_current(ParkOp& op, std::int64_t deadline_ns);

/// Wakes one parked waiter. Must be called with the primitive's lock
/// *released* and the node already unlinked; reads everything it needs
/// before the waiter can possibly run.
void wake_node(WaitNode* n);

/// Wakes a detached chain (detach_all), FIFO order.
void wake_list(WaitNode* head);

/// Probes the registered backends: true when the calling thread has
/// runnable units it could reach by yielding (the probe does not execute
/// anything itself — follow with yield_some()).
bool run_some_work();

/// Cooperative yield through the best available backend.
void yield_some();

}  // namespace sync_detail

// ----------------------------------------------------------------- Event

/// One-shot (resettable) wait-queue event: waiters park until set() wakes
/// the flock. reset() may only be called when no waiter can be in flight.
///
/// Destruction protocol (same as CompletionLatch): an observer that may
/// destroy the Event once it sees it set must observe through a *locked*
/// read — wait() or is_set_locked() — which serializes after set()'s
/// unlock, past the setter's last member access (set() touches only the
/// detached wake chain afterwards). is_set() is the lock-free poll for
/// observers that do NOT free the Event on a true result; using it as a
/// delete-gate races with the setter still inside set().
class Event {
 public:
  Event() = default;
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  void set();
  void wait();
  /// Waits until set or @p deadline_ns (common::now_ns clock). Returns
  /// is_set at return: true on signal, false on timeout. A timeout
  /// invalidates nothing — the waiter may re-wait, and a set() that lands
  /// after the timeout is never stranded (the timed-out node is fully
  /// unlinked before this returns). Both outcomes are locked observations,
  /// so the destruction protocol above holds for wait_until too.
  [[nodiscard]] bool wait_until(std::int64_t deadline_ns);
  /// Racy poll — never gate destruction on this (see class comment).
  [[nodiscard]] bool is_set() const {
    return set_.load(std::memory_order_acquire);
  }
  /// Locked observation for poll-then-destroy sites: true only once the
  /// setter can no longer touch this Event.
  [[nodiscard]] bool is_set_locked() const {
    common::SpinGuard g(lock_);
    return set_.load(std::memory_order_relaxed);
  }
  void reset() { set_.store(false, std::memory_order_release); }

 private:
  // Runs with lock_ held through the aliased ParkOp::lock pointer (the
  // park path locks it on the scheduler stack); the analysis cannot
  // connect the alias to this->lock_.
  static bool enqueue_cb(sync_detail::ParkOp* op)
      GLTO_NO_THREAD_SAFETY_ANALYSIS;

  std::atomic<bool> set_{false};
  mutable common::SpinLock lock_;
  WaitList waiters_ GLTO_GUARDED_BY(lock_);
};

// ----------------------------------------------------------------- Mutex

/// ULT mutex with FIFO handoff. unlock() passes ownership directly to the
/// oldest waiter (the lock word never goes through 0 while the queue is
/// non-empty), so a spinning newcomer cannot barge past a parked waiter.
/// On contexts that cannot suspend, lock() degrades to a Parker park —
/// the OS thread blocks, matching omp_set_lock semantics there.
class GLTO_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() GLTO_ACQUIRE() {
    std::uint32_t expected = 0;
    if (state_.compare_exchange_strong(expected, 1, std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
      return;
    }
    lock_slow();
  }
  bool try_lock() GLTO_TRY_ACQUIRE(true) {
    std::uint32_t expected = 0;
    return state_.compare_exchange_strong(
        expected, 1, std::memory_order_acquire, std::memory_order_relaxed);
  }
  /// Acquires the mutex or gives up at @p deadline_ns (common::now_ns
  /// clock). True means the caller owns the mutex. The FIFO-handoff race
  /// resolves in the lock's favour: if unlock() hands ownership to this
  /// waiter while it is timing out, the waiter accepts the lock and
  /// returns true — ownership is never dropped on the floor.
  [[nodiscard]] bool try_lock_until(std::int64_t deadline_ns)
      GLTO_TRY_ACQUIRE(true);
  void unlock() GLTO_RELEASE();

 private:
  friend class Condvar;
  void lock_slow();
  // Runs with qlock_ held through the aliased ParkOp::lock pointer.
  static bool enqueue_cb(sync_detail::ParkOp* op)
      GLTO_NO_THREAD_SAFETY_ANALYSIS;

  std::atomic<std::uint32_t> state_{0};  ///< 0 unlocked, 1 locked
  common::SpinLock qlock_;
  WaitList waiters_ GLTO_GUARDED_BY(qlock_);
};

/// RAII guard for sched::Mutex.
class GLTO_SCOPED_CAPABILITY ScopedLock {
 public:
  explicit ScopedLock(Mutex& m) GLTO_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~ScopedLock() GLTO_RELEASE() { m_.unlock(); }
  ScopedLock(const ScopedLock&) = delete;
  ScopedLock& operator=(const ScopedLock&) = delete;

 private:
  Mutex& m_;
};

// --------------------------------------------------------------- Condvar

/// Condition variable over sched::Mutex. wait() enqueues the waiter while
/// the mutex is still held (the release happens after the node is on the
/// list — on the ULT path, on the scheduler stack), so a notify that is
/// serialized after the mutex release can never slip between "decide to
/// wait" and "parked". Spurious wakeups are possible; callers loop on
/// their predicate as with any condvar.
class Condvar {
 public:
  Condvar() = default;
  Condvar(const Condvar&) = delete;
  Condvar& operator=(const Condvar&) = delete;

  /// REQUIRES(m) enforces the condvar contract at every call site; the
  /// body is exempt from analysis because its release/reacquire of @p m
  /// happens through the park protocol (release_mutex_cb fires on the
  /// scheduler stack after the node is enqueued), which the analysis
  /// cannot see — it would flag the trailing m.lock() as a double
  /// acquire.
  void wait(Mutex& m) GLTO_REQUIRES(m) GLTO_NO_THREAD_SAFETY_ANALYSIS;
  /// wait() with a deadline (common::now_ns clock). Returns false on
  /// timeout, true when notified; @p m is reacquired before returning in
  /// *both* cases (the reacquire itself is untimed, as with any condvar).
  /// Spurious true returns are possible — loop on the predicate and
  /// re-check it after a false return too, since a notify can land
  /// between the timeout and the reacquire.
  [[nodiscard]] bool wait_until(Mutex& m, std::int64_t deadline_ns)
      GLTO_REQUIRES(m) GLTO_NO_THREAD_SAFETY_ANALYSIS;
  void notify_one();
  void notify_all();

 private:
  // Runs with lock_ held through the aliased ParkOp::lock pointer.
  static bool enqueue_cb(sync_detail::ParkOp* op)
      GLTO_NO_THREAD_SAFETY_ANALYSIS;
  static void release_mutex_cb(void* ctx2);

  common::SpinLock lock_;
  WaitList waiters_ GLTO_GUARDED_BY(lock_);
};

// ------------------------------------------------------- CompletionLatch

/// Counts outstanding work down to zero and wakes the waiters parked on
/// it. Every transition — including the decrement — happens under one
/// lock, so a deleter that observes zero through try_wait()/wait() is
/// serialized after the final count_down()'s unlock, and the decrementer
/// touches only its detached wake chain afterwards: freeing the latch's
/// owner right after the wait returns is safe.
class CompletionLatch {
 public:
  CompletionLatch() = default;
  explicit CompletionLatch(std::int64_t initial) : count_(initial) {}
  CompletionLatch(const CompletionLatch&) = delete;
  CompletionLatch& operator=(const CompletionLatch&) = delete;

  void add(std::int64_t n);
  void count_down(std::int64_t n = 1);
  /// True when the count is zero (locked read — see class comment).
  [[nodiscard]] bool try_wait();
  void wait();
  /// Waits for zero until @p deadline_ns (common::now_ns clock). True
  /// when the count reached zero (a locked observation, so the
  /// destruction protocol holds); false on timeout — the latch is
  /// untouched and the caller may re-wait.
  [[nodiscard]] bool wait_until(std::int64_t deadline_ns);
  /// Racy read for stats/asserts only.
  [[nodiscard]] std::int64_t pending() const;

 private:
  // Runs with lock_ held through the aliased ParkOp::lock pointer.
  static bool enqueue_cb(sync_detail::ParkOp* op)
      GLTO_NO_THREAD_SAFETY_ANALYSIS;

  mutable common::SpinLock lock_;
  std::int64_t count_ GLTO_GUARDED_BY(lock_) = 0;
  WaitList waiters_ GLTO_GUARDED_BY(lock_);
};

// --------------------------------------------------------------- Barrier

/// Sense-reversing blocking barrier: the first parties-1 arrivers park,
/// the last arriver advances the epoch and wakes the flock through the
/// core. Returns true to exactly one arriver per cycle (the "serial"
/// thread). Reusable immediately — a waiter from the next cycle enqueues
/// against the new epoch.
class Barrier {
 public:
  Barrier() = default;
  explicit Barrier(int parties) : parties_(parties) {}
  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Set before any arrival of a cycle; not thread-safe against arrivals
  /// (the lock only keeps the member writes analysis-clean and ordered).
  void init(int parties) {
    common::SpinGuard g(lock_);
    parties_ = parties;
    arrived_ = 0;
  }
  bool arrive_and_wait();

 private:
  // Runs with lock_ held through the aliased ParkOp::lock pointer.
  static bool enqueue_cb(sync_detail::ParkOp* op)
      GLTO_NO_THREAD_SAFETY_ANALYSIS;

  common::SpinLock lock_;
  int parties_ GLTO_GUARDED_BY(lock_) = 0;
  int arrived_ GLTO_GUARDED_BY(lock_) = 0;
  std::uint64_t epoch_ GLTO_GUARDED_BY(lock_) = 0;
  WaitList waiters_ GLTO_GUARDED_BY(lock_);
};

// ----------------------------------------------------- polling wait/until

/// Backoff engine behind sched::wait / sched::wait_until — the one
/// remaining *polling* wait, for predicates with no wait queue to park on
/// (timed waits against foreign completion sources). Spins briefly,
/// yields, drains runnable units, then parks in escalating micro-sleeps
/// (20 µs … 200 µs). Watchdog-bracketed; chaos-delay aware.
class WaitEngine {
 public:
  WaitEngine();
  ~WaitEngine();
  WaitEngine(const WaitEngine&) = delete;
  WaitEngine& operator=(const WaitEngine&) = delete;

  void step();
  /// One step that never sleeps past @p deadline_ns (common::now_ns
  /// clock). Returns false once the deadline has passed.
  bool step_until(std::int64_t deadline_ns);

 private:
  std::uint32_t spins_ = 0;
  std::uint32_t yields_ = 0;
  std::int64_t sleep_us_ = 0;
};

/// Polls @p pred to true with adaptive backoff.
template <typename Pred>
void wait(Pred&& pred) {
  if (pred()) return;
  WaitEngine e;
  while (!pred()) e.step();
}

/// Polls @p pred until true or @p deadline_ns (common::now_ns clock).
/// Returns the predicate's final value — callers' handles stay valid on
/// timeout; nothing is consumed or invalidated.
template <typename Pred>
bool wait_until(Pred&& pred, std::int64_t deadline_ns) {
  if (pred()) return true;
  WaitEngine e;
  while (!pred()) {
    if (!e.step_until(deadline_ns)) return pred();
  }
  return true;
}

// --------------------------------------------------------------- Channel

/// Bounded MPMC channel for trivially copyable payloads (descriptor-first
/// discipline: ship a struct of PODs, not an owning object). send blocks
/// while full, recv blocks while empty; close() wakes everyone — send
/// returns false after close, recv returns false once closed *and*
/// drained.
template <typename T>
class Channel {
  static_assert(std::is_trivially_copyable_v<T>,
                "Channel payloads are copied through a ring buffer; ship a "
                "descriptor, not an owning object");

 public:
  explicit Channel(std::size_t capacity)
      : buf_(capacity == 0 ? 1 : capacity), cap_(buf_.size()) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  bool send(const T& v) {
    m_.lock();
    while (count_ == cap_ && !closed_) not_full_.wait(m_);
    if (closed_) {
      m_.unlock();
      return false;
    }
    buf_[(head_ + count_) % cap_] = v;
    ++count_;
    m_.unlock();
    not_empty_.notify_one();
    return true;
  }

  bool recv(T& out) {
    m_.lock();
    while (count_ == 0 && !closed_) not_empty_.wait(m_);
    if (count_ == 0) {
      m_.unlock();
      return false;  // closed and drained
    }
    out = buf_[head_];
    head_ = (head_ + 1) % cap_;
    --count_;
    m_.unlock();
    not_full_.notify_one();
    return true;
  }

  /// send() with a deadline (common::now_ns clock): false when the
  /// channel stayed full past @p deadline_ns or was closed — the item was
  /// never enqueued. The deadline covers the whole operation, including
  /// the channel-mutex acquire.
  bool send_until(const T& v, std::int64_t deadline_ns) {
    if (!m_.try_lock_until(deadline_ns)) return false;
    while (count_ == cap_ && !closed_) {
      if (!not_full_.wait_until(m_, deadline_ns)) {
        // Timed out — but the mutex is reacquired, so re-check before
        // failing: a slot freed between timeout and reacquire is ours.
        if (count_ == cap_ && !closed_) {
          m_.unlock();
          return false;
        }
      }
    }
    if (closed_) {
      m_.unlock();
      return false;
    }
    buf_[(head_ + count_) % cap_] = v;
    ++count_;
    m_.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// recv() with a deadline: drains remaining items after close() before
  /// failing, exactly like recv. A false return consumed nothing — an
  /// item sent concurrently with the timeout stays in the channel for
  /// the next receiver.
  bool recv_until(T& out, std::int64_t deadline_ns) {
    if (!m_.try_lock_until(deadline_ns)) return false;
    while (count_ == 0 && !closed_) {
      if (!not_empty_.wait_until(m_, deadline_ns)) {
        // Re-check under the reacquired mutex: an item that arrived
        // between the timeout and the reacquire must not be lost.
        if (count_ == 0) {
          m_.unlock();
          return false;
        }
      }
    }
    if (count_ == 0) {
      m_.unlock();
      return false;  // closed and drained
    }
    out = buf_[head_];
    head_ = (head_ + 1) % cap_;
    --count_;
    m_.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Non-blocking variants: false when the channel is full/empty/closed.
  bool try_send(const T& v) {
    ScopedLock g(m_);
    if (closed_ || count_ == cap_) return false;
    buf_[(head_ + count_) % cap_] = v;
    ++count_;
    not_empty_.notify_one();
    return true;
  }
  bool try_recv(T& out) {
    ScopedLock g(m_);
    if (count_ == 0) return false;
    out = buf_[head_];
    head_ = (head_ + 1) % cap_;
    --count_;
    not_full_.notify_one();
    return true;
  }

  void close() {
    m_.lock();
    closed_ = true;
    m_.unlock();
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() {
    ScopedLock g(m_);
    return closed_;
  }
  /// Queued-item snapshot for admission heuristics — a locked read, but
  /// stale by the time the caller acts on it.
  [[nodiscard]] std::size_t size() {
    ScopedLock g(m_);
    return count_;
  }
  [[nodiscard]] std::size_t capacity() const { return cap_; }

 private:
  Mutex m_;
  Condvar not_full_;
  Condvar not_empty_;
  std::vector<T> buf_ GLTO_GUARDED_BY(m_);
  std::size_t cap_;  ///< immutable after construction
  std::size_t head_ GLTO_GUARDED_BY(m_) = 0;
  std::size_t count_ GLTO_GUARDED_BY(m_) = 0;
  bool closed_ GLTO_GUARDED_BY(m_) = false;
};

}  // namespace glto::sched
