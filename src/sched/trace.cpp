#include "sched/trace.hpp"

#include <unistd.h>

#include <cinttypes>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>

#include "common/checked_mutex.hpp"
#include "common/env.hpp"
#include "common/time.hpp"

namespace glto::sched {

namespace trace_detail {
std::atomic<bool> g_trace_on{false};
}  // namespace trace_detail

namespace {

// One registered ring per emitting OS thread. Records are leaked on purpose:
// a worker may emit after its backend shut down (atexit ordering), so ring
// storage must outlive every runtime instance.
struct RingRec {
  TraceRing* ring = nullptr;
  std::string label;
  unsigned tid = 0;  // stable track id, registration order
};

struct Registry {
  common::CheckedMutex m;
  std::vector<RingRec*> rings GLTO_GUARDED_BY(m);
  std::atomic<std::uint64_t> generation{1};
  // per-ring capacity, power of two; guarded by m
  std::size_t ring_events GLTO_GUARDED_BY(m) = 0;
  // empty → record-only (flight recorder); guarded by m
  std::string path GLTO_GUARDED_BY(m);
  // Atomic, not guarded: written once at init (under m), then read on
  // the lock-free emit fast path by every tracing thread.
  std::atomic<std::uint64_t> epoch_ns{0};
  bool env_resolved GLTO_GUARDED_BY(m) = false;
  bool atexit_registered GLTO_GUARDED_BY(m) = false;
};

Registry& reg() {
  static Registry* r = new Registry;  // leaked: see RingRec
  return *r;
}

struct TlsRing {
  TraceRing* ring = nullptr;
  RingRec* rec = nullptr;
  std::uint64_t generation = 0;
};
thread_local TlsRing t_ring;

constexpr std::size_t kDefaultRingKb = 256;
constexpr std::size_t kMinRingEvents = 16;

std::size_t pow2_floor(std::size_t n) {
  std::size_t p = kMinRingEvents;
  while (p * 2 <= n) p *= 2;
  return p;
}

/// Register (or re-register after reset_for_testing) the calling thread's
/// ring. Caller does NOT hold the registry mutex.
RingRec* register_current_thread() {
  Registry& r = reg();
  common::CheckedLock lk(r.m);
  auto* rec = new RingRec;
  rec->ring = new TraceRing(r.ring_events ? r.ring_events : kMinRingEvents);
  rec->tid = static_cast<unsigned>(r.rings.size());
  rec->label = "thread-" + std::to_string(rec->tid);
  r.rings.push_back(rec);
  t_ring.ring = rec->ring;
  t_ring.rec = rec;
  t_ring.generation = r.generation.load(std::memory_order_relaxed);
  return rec;
}

TraceRing* current_ring_slow() {
  Registry& r = reg();
  if (t_ring.ring == nullptr ||
      t_ring.generation != r.generation.load(std::memory_order_relaxed)) {
    register_current_thread();
  }
  return t_ring.ring;
}

const char* kind_name(std::uint16_t k) {
  switch (static_cast<TraceKind>(k)) {
    case TraceKind::none: return "none";
    case TraceKind::task_submit: return "task_submit";
    case TraceKind::task_start: return "task_start";
    case TraceKind::task_complete: return "task";
    case TraceKind::steal_attempt: return "steal_attempt";
    case TraceKind::steal_success: return "steal_success";
    case TraceKind::park: return "park";
    case TraceKind::unpark: return "unpark";
    case TraceKind::wake: return "wake";
    case TraceKind::bulk_deposit: return "bulk_deposit";
    case TraceKind::dep_register: return "dep_register";
    case TraceKind::dep_release: return "dep_release";
    case TraceKind::ult_switch: return "ult_switch";
    case TraceKind::chaos_fault: return "chaos_fault";
    case TraceKind::cancel: return "cancel";
    case TraceKind::ult_block: return "ult_block";
    case TraceKind::ult_unblock: return "ult_unblock";
    case TraceKind::qos_shed: return "qos_shed";
    case TraceKind::deadline_miss: return "deadline_miss";
  }
  return "unknown";
}

void flush_at_exit() { trace_flush(nullptr); }

/// Emit one JSON trace event; @p first tracks the comma state.
void write_event(std::FILE* f, bool& first, const RingRec& rec,
                 const TraceEvent& ev, std::uint64_t* park_begin_ns) {
  const auto kind = static_cast<TraceKind>(ev.kind);
  const double ts_us = static_cast<double>(ev.ts_ns) / 1000.0;

  // park/unpark pairs on one thread become a single "park" slice so idle
  // time is visible as a block, not two dots.
  if (kind == TraceKind::park) {
    *park_begin_ns = ev.ts_ns + 1;  // +1 so ts 0 still reads as armed
    return;
  }
  if (kind == TraceKind::unpark && *park_begin_ns != 0) {
    const double b_us = static_cast<double>(*park_begin_ns - 1) / 1000.0;
    const double dur_us = ts_us > b_us ? ts_us - b_us : 0.0;
    std::fprintf(f,
                 "%s{\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"ts\":%.3f,"
                 "\"dur\":%.3f,\"name\":\"park\",\"args\":{\"woken\":%u}}",
                 first ? "" : ",\n", rec.tid, b_us, dur_us, ev.aux);
    first = false;
    *park_begin_ns = 0;
    return;
  }

  if (kind == TraceKind::task_complete) {
    // Service time rides in aux (us); render the execution as a slice.
    const double dur_us = static_cast<double>(ev.aux);
    const double b_us = ts_us > dur_us ? ts_us - dur_us : 0.0;
    std::fprintf(f,
                 "%s{\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"ts\":%.3f,"
                 "\"dur\":%.3f,\"name\":\"task\",\"args\":{\"id\":%" PRIu64
                 "}}",
                 first ? "" : ",\n", rec.tid, b_us, dur_us, ev.arg);
    first = false;
    return;
  }

  if (kind == TraceKind::ult_unblock && ev.aux > 0) {
    // The waker stamped the blocked duration in aux (us); render the
    // blocked span as a slice ending at the wake, like task_complete.
    // (The waiter may have migrated OS threads, so per-thread pairing
    // with the matching ult_block cannot work — the duration rides on
    // the event instead.)
    const double dur_us = static_cast<double>(ev.aux);
    const double b_us = ts_us > dur_us ? ts_us - dur_us : 0.0;
    std::fprintf(f,
                 "%s{\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"ts\":%.3f,"
                 "\"dur\":%.3f,\"name\":\"blocked\",\"args\":{\"id\":%" PRIu64
                 "}}",
                 first ? "" : ",\n", rec.tid, b_us, dur_us, ev.arg);
    first = false;
    return;
  }

  std::fprintf(f,
               "%s{\"ph\":\"i\",\"pid\":1,\"tid\":%u,\"ts\":%.3f,"
               "\"name\":\"%s\",\"s\":\"t\",\"args\":{\"arg\":%" PRIu64
               ",\"aux\":%u}}",
               first ? "" : ",\n", rec.tid, ts_us, kind_name(ev.kind), ev.arg,
               ev.aux);
  first = false;
}

}  // namespace

namespace trace_detail {

__attribute__((noinline)) void emit_slow(TraceKind k, std::uint64_t arg,
                                         std::uint32_t aux) {
  TraceRing* ring = current_ring_slow();
  const std::uint64_t ts =
      common::now_ns() - reg().epoch_ns.load(std::memory_order_relaxed);
  ring->emit(k, ts, arg, aux);
}

__attribute__((noinline)) void emit_slow_at(TraceKind k, std::uint64_t now_ns,
                                            std::uint64_t arg,
                                            std::uint32_t aux) {
  TraceRing* ring = current_ring_slow();
  const std::uint64_t epoch =
      reg().epoch_ns.load(std::memory_order_relaxed);
  ring->emit(k, now_ns > epoch ? now_ns - epoch : 0, arg, aux);
}

}  // namespace trace_detail

void trace_init_from_env() {
  Registry& r = reg();
  common::CheckedLock lk(r.m);
  if (r.env_resolved) return;
  r.env_resolved = true;
  r.epoch_ns.store(common::now_ns(), std::memory_order_relaxed);

  const std::size_t kb = static_cast<std::size_t>(
      common::env_i64("GLTO_TRACE_RING_KB",
                      static_cast<std::int64_t>(kDefaultRingKb)));
  r.ring_events = pow2_floor((kb > 0 ? kb : 1) * 1024 / sizeof(TraceEvent));

  const auto v = common::env_str("GLTO_TRACE");
  if (!v || v->empty() || *v == "0") return;
  // Any value arms recording; a value other than "1" is the export path.
  if (*v != "1") r.path = *v;
  if (!r.atexit_registered) {
    r.atexit_registered = true;
    std::atexit(flush_at_exit);
  }
  trace_detail::g_trace_on.store(true, std::memory_order_relaxed);
}

void trace_thread_label(const char* backend, int rank) {
  if (!trace_enabled()) return;
  current_ring_slow();
  Registry& r = reg();
  common::CheckedLock lk(r.m);
  t_ring.rec->label =
      std::string(backend) + (rank >= 0 ? "-w" + std::to_string(rank) : "");
}

bool trace_flush(const char* path_override) {
  Registry& r = reg();
  common::CheckedLock lk(r.m);
  const std::string path = path_override ? path_override : r.path;
  if (path.empty()) return false;

  // Temp file + rename: parallel ctest processes share one $GLTO_TRACE path;
  // last renamer wins and the file is always complete JSON.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (!f) return false;

  std::fputs("{\"traceEvents\":[\n", f);
  bool first = true;
  std::fprintf(f,
               "%s{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":"
               "\"process_name\",\"args\":{\"name\":\"glto\"}}",
               first ? "" : ",\n");
  first = false;
  for (const RingRec* rec : r.rings) {
    std::fprintf(f,
                 ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":%u,\"name\":"
                 "\"thread_name\",\"args\":{\"name\":\"%s\"}}",
                 rec->tid, rec->label.c_str());
    std::fprintf(f,
                 ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":%u,\"name\":"
                 "\"thread_sort_index\",\"args\":{\"sort_index\":%u}}",
                 rec->tid, rec->tid);
  }
  for (const RingRec* rec : r.rings) {
    const std::uint64_t head = rec->ring->head();
    const std::uint64_t cap = rec->ring->capacity();
    const std::uint64_t lo = head > cap ? head - cap : 0;
    std::uint64_t park_begin = 0;
    for (std::uint64_t i = lo; i < head; ++i) {
      write_event(f, first, *rec, rec->ring->at(i), &park_begin);
    }
  }
  std::fputs("\n]}\n", f);
  const bool ok = std::fclose(f) == 0;
  if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

void trace_dump_tail(std::FILE* out, std::size_t max_per_ring) {
  Registry& r = reg();
  // try_lock only: the watchdog fires while the process is wedged, and a
  // thread stuck inside flush must not turn the dump into a second hang.
  if (!r.m.try_lock()) {
    std::fputs("[glto-trace] registry busy, tail unavailable\n", out);
    return;
  }
  for (const RingRec* rec : r.rings) {
    const std::uint64_t head = rec->ring->head();
    std::uint64_t n = head > rec->ring->capacity()
                          ? static_cast<std::uint64_t>(rec->ring->capacity())
                          : head;
    if (n > max_per_ring) n = max_per_ring;
    if (n == 0) continue;
    std::fprintf(out, "[glto-trace] %s: last %" PRIu64 " of %" PRIu64
                      " events\n",
                 rec->label.c_str(), n, head);
    for (std::uint64_t i = head - n; i < head; ++i) {
      const TraceEvent& ev = rec->ring->at(i);
      std::fprintf(out,
                   "  +%10.3fus %-14s arg=%" PRIu64 " aux=%u\n",
                   static_cast<double>(ev.ts_ns) / 1000.0, kind_name(ev.kind),
                   ev.arg, ev.aux);
    }
  }
  r.m.unlock();
}

std::uint64_t trace_epoch_ns() {
  return reg().epoch_ns.load(std::memory_order_relaxed);
}

std::uint64_t trace_events_recorded() {
  Registry& r = reg();
  common::CheckedLock lk(r.m);
  std::uint64_t total = 0;
  for (const RingRec* rec : r.rings) total += rec->ring->head();
  return total;
}

std::uint64_t trace_events_dropped() {
  Registry& r = reg();
  common::CheckedLock lk(r.m);
  std::uint64_t total = 0;
  for (const RingRec* rec : r.rings) {
    const std::uint64_t head = rec->ring->head();
    const std::uint64_t cap = rec->ring->capacity();
    if (head > cap) total += head - cap;
  }
  return total;
}

void trace_set_for_testing(bool on, const char* path,
                           std::size_t ring_events) {
  Registry& r = reg();
  {
    common::CheckedLock lk(r.m);
    r.env_resolved = true;
    if (r.epoch_ns.load(std::memory_order_relaxed) == 0) {
      r.epoch_ns.store(common::now_ns(), std::memory_order_relaxed);
    }
    r.path = path ? path : "";
    if (ring_events != 0) r.ring_events = pow2_floor(ring_events);
    if (r.ring_events == 0) r.ring_events = kMinRingEvents;
  }
  trace_detail::g_trace_on.store(on, std::memory_order_relaxed);
}

void trace_reset_for_testing() {
  Registry& r = reg();
  common::CheckedLock lk(r.m);
  // The reset contract requires emitting threads to be joined, so the
  // discarded rings can actually be freed here (unlike process exit,
  // where they leak by design); the generation bump makes any surviving
  // thread_local pointer re-register instead of touching freed memory.
  for (RingRec* rec : r.rings) {
    delete rec->ring;
    delete rec;
  }
  r.rings.clear();
  r.generation.fetch_add(1, std::memory_order_relaxed);
  t_ring = TlsRing{};
}

const TraceRing* trace_current_ring() { return t_ring.ring; }

}  // namespace glto::sched
