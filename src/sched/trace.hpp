// Always-on tracing rings with a Chrome trace-event JSON exporter.
//
// Each OS thread that emits gets a private fixed-capacity binary ring
// (overwrite-oldest, single writer, zero allocation after first use), so the
// hot path is: one relaxed load of the global gate, and — only when tracing
// is armed — an out-of-line store of a 24-byte event. Rings are sized by
// $GLTO_TRACE_RING_KB (per thread) and live until process exit; the exporter
// walks them at glt::finalize / omp::shutdown / atexit and writes
// {"traceEvents":[...]} for chrome://tracing or ui.perfetto.dev.
//
// Gating contract (mirrors chaos.hpp / watchdog.hpp): when $GLTO_TRACE is
// unset, every emit site costs exactly one relaxed load + predictable branch.
// The slow path is deliberately out of line in trace.cpp: ULTs migrate across
// OS threads at suspension points, so the thread_local ring must be
// re-resolved at the call, never cached across a potential switch (the same
// rule as abt::tls_now).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <vector>

namespace glto::sched {

/// Event kinds recorded in the rings. Values are stable within a trace file
/// (the exporter writes names, tools never see the numbers), but not an ABI.
enum class TraceKind : std::uint16_t {
  none = 0,
  task_submit,    // arg=task id, aux=1 if deferred (queued), 0 if inline
  task_start,     // arg=task id
  task_complete,  // arg=task id, aux=service time in us (clamped to u32)
  steal_attempt,  // arg=victim rank (CAS lost or deque emptied under us)
  steal_success,  // arg=victim rank
  park,           // arg=rank, aux=requested park us
  unpark,         // arg=rank parked-state observed, aux=1 woken / 0 timeout
  wake,           // arg=target rank (emitted by the waking thread)
  bulk_deposit,   // arg=units deposited, aux=home-rank hint (+1, 0 = none)
  dep_register,   // arg=dep node id, aux=dependence count
  dep_release,    // arg=dep node id, aux=successors made ready
  ult_switch,     // arg=unit id: scheduler dispatched a ULT/strand
  chaos_fault,    // aux=fault class (sched::ChaosPoint value)
  cancel,         // arg=taskgroup/team id: cancellation observed
  ult_block,      // arg=wait-node id: context parked on a sync primitive
  ult_unblock,    // arg=wait-node id, aux=blocked duration in us
  qos_shed,       // arg=request id, aux=attempts used before the drop
  deadline_miss,  // arg=request id, aux=QosMissPhase (1 queued / 2 in-flight
                  // / 3 finished late)
};

/// One ring slot. 24 bytes, trivially copyable; written by exactly one
/// thread, read only at export/dump time.
struct TraceEvent {
  std::uint64_t ts_ns;  // since trace_epoch_ns()
  std::uint64_t arg;
  std::uint32_t aux;
  std::uint16_t kind;  // TraceKind
  std::uint16_t reserved;
};
static_assert(sizeof(TraceEvent) == 24, "keep ring slots compact");

/// Fixed-capacity overwrite-oldest event ring. Single producer; readers
/// (exporter, watchdog flight recorder, tests) tolerate a racing writer by
/// snapshotting head first — a torn slot at the overwrite frontier shows up
/// as one bogus event in a crash dump, never as UB on the writer.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity_pow2)
      : slots_(capacity_pow2), mask_(capacity_pow2 - 1) {}

  void emit(TraceKind k, std::uint64_t ts_ns, std::uint64_t arg,
            std::uint32_t aux) {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    TraceEvent& e = slots_[h & mask_];
    e.ts_ns = ts_ns;
    e.arg = arg;
    e.aux = aux;
    e.kind = static_cast<std::uint16_t>(k);
    e.reserved = 0;
    head_.store(h + 1, std::memory_order_release);
  }

  /// Total events ever emitted (monotonic; oldest retained is
  /// max(0, head - capacity)).
  [[nodiscard]] std::uint64_t head() const {
    return head_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
  [[nodiscard]] const TraceEvent& at(std::uint64_t i) const {
    return slots_[i & mask_];
  }

 private:
  std::vector<TraceEvent> slots_;
  std::size_t mask_;
  std::atomic<std::uint64_t> head_{0};
};

namespace trace_detail {
// The only state an emit site touches when tracing is off.
extern std::atomic<bool> g_trace_on;
// Out of line so the thread_local ring is resolved at the call site's OS
// thread (post-migration), and so the off path stays a leaf branch.
void emit_slow(TraceKind k, std::uint64_t arg, std::uint32_t aux);
void emit_slow_at(TraceKind k, std::uint64_t now_ns, std::uint64_t arg,
                  std::uint32_t aux);
}  // namespace trace_detail

[[nodiscard]] inline bool trace_enabled() {
  return trace_detail::g_trace_on.load(std::memory_order_relaxed);
}

/// The per-site hook. Cost when $GLTO_TRACE is unset: one relaxed load and
/// one predictable branch.
inline void trace_emit(TraceKind k, std::uint64_t arg = 0,
                       std::uint32_t aux = 0) {
  if (!trace_detail::g_trace_on.load(std::memory_order_relaxed)) return;
  trace_detail::emit_slow(k, arg, aux);
}

/// trace_emit for call sites that already hold a fresh common::now_ns()
/// reading (the latency hooks): reuses it instead of taking the clock a
/// second time — per-task profiling pays 3 clock reads, not 6.
inline void trace_emit_at(TraceKind k, std::uint64_t now_ns,
                          std::uint64_t arg = 0, std::uint32_t aux = 0) {
  if (!trace_detail::g_trace_on.load(std::memory_order_relaxed)) return;
  trace_detail::emit_slow_at(k, now_ns, arg, aux);
}

/// Resolve $GLTO_TRACE / $GLTO_TRACE_RING_KB. Idempotent; called from
/// glt::init and omp::select. "$GLTO_TRACE=path.json" records + exports at
/// flush; "$GLTO_TRACE=1" records only (flight recorder for the watchdog).
void trace_init_from_env();

/// Label the calling thread's track in the exported trace (e.g. "abt-w3").
/// No-op when tracing is off; safe to call before the first emit.
void trace_thread_label(const char* backend, int rank);

/// Export all rings as Chrome trace-event JSON. Uses the $GLTO_TRACE path
/// unless @p path_override is given; returns false if no path is configured
/// or the write failed. Writes via a temp file + rename so concurrent
/// processes sharing one path never interleave.
bool trace_flush(const char* path_override = nullptr);

/// Flight recorder: append the newest @p max_per_ring events of every ring
/// to @p out, oldest first per ring. Used by the watchdog stall dump.
void trace_dump_tail(std::FILE* out, std::size_t max_per_ring);

/// Monotonic-clock origin all event timestamps are relative to.
[[nodiscard]] std::uint64_t trace_epoch_ns();

/// Sum of head() over all rings (events ever recorded).
[[nodiscard]] std::uint64_t trace_events_recorded();
/// Sum over rings of events lost to overwrite (head - capacity, clamped).
[[nodiscard]] std::uint64_t trace_events_dropped();

// Test hooks. set_for_testing arms/disarms tracing in-process;
// ring_events==0 keeps the current per-ring capacity. reset_for_testing
// discards all rings (caller must have joined any emitting threads; stale
// thread_local pointers re-register via a generation check).
void trace_set_for_testing(bool on, const char* path, std::size_t ring_events);
void trace_reset_for_testing();
[[nodiscard]] const TraceRing* trace_current_ring();

}  // namespace glto::sched
