#include "abt/abt.hpp"

#include <atomic>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "common/affinity.hpp"
#include "common/cacheline.hpp"
#include "common/debug.hpp"
#include "common/env.hpp"
#include "common/parker.hpp"
#include "common/spin.hpp"
#include "fctx/fcontext.hpp"
#include "fctx/stack_pool.hpp"
#include "sched/locked_queue.hpp"

namespace glto::abt {

namespace {

enum class State : std::uint8_t { Ready, Running, Blocked, Done };
enum class Kind : std::uint8_t { Ult, Tasklet, Main };
enum class Dir : std::uint8_t { Resume, Yield, Block, Done };

WorkUnit* const kJoinerSentinel = reinterpret_cast<WorkUnit*>(std::uintptr_t(1));

}  // namespace

struct WorkUnit {
  WorkFn fn = nullptr;
  void* arg = nullptr;
  fctx::fcontext_t ctx = nullptr;
  fctx::Stack stack;
  std::atomic<State> state{State::Ready};
  std::atomic<WorkUnit*> joiner{nullptr};
  std::atomic<int> last_rank{-1};
  int home_rank = 0;
  Kind kind = Kind::Ult;
  void* user_local = nullptr;  ///< see abt::self_local()
};

namespace {

/// Message passed through a context switch from a suspending work unit to
/// the scheduler that receives control.
struct SwitchMsg {
  Dir dir;
  WorkUnit* self;
  WorkUnit* target;  // join target for Dir::Block
};

struct Pool {
  sched::LockedQueue<WorkUnit*> q;
};

struct Runtime {
  Config cfg;
  int n = 0;
  std::vector<std::unique_ptr<Pool>> pools;
  /// The primary (main) ULT is only ever scheduled by xstream 0, even
  /// under a shared pool — otherwise a worker could resume main, and
  /// finalize would tear the primary scheduler down from a foreign
  /// thread while the real main thread still runs on its stack (the
  /// same pin-the-main issue the paper hits with MassiveThreads, §IV-G).
  Pool main_pool;
  std::vector<std::thread> workers;
  std::atomic<bool> shutdown{false};
  common::Parker parker;
  fctx::Stack primary_sched_stack;

  std::atomic<std::uint64_t> ults_created{0};
  std::atomic<std::uint64_t> tasklets_created{0};
  std::atomic<std::uint64_t> yields{0};
};

Runtime* g_rt = nullptr;

struct Tls {
  int rank = -1;
  WorkUnit* current = nullptr;        // unit whose stack we are running on
  fctx::fcontext_t sched_ctx = nullptr;  // way back to this xstream's scheduler
  WorkUnit* main_unit = nullptr;      // primary thread only
};

thread_local Tls tls;

/// TLS accessor that defeats address caching across context switches: a
/// ULT can resume on a different OS thread (shared pools), so any code
/// that touches `tls` after a suspension point must recompute the
/// thread-local address. The noinline + asm barrier forces GCC to
/// re-evaluate %fs-relative addressing at the call site's *current*
/// thread instead of reusing a pre-switch computation.
__attribute__((noinline)) Tls& tls_now() {
  asm volatile("");
  return tls;
}

Pool& pool_for(int rank) {
  return *g_rt->pools[g_rt->cfg.shared_pool ? 0 : static_cast<size_t>(rank)];
}

void push_ready(WorkUnit* wu) {
  wu->state.store(State::Ready, std::memory_order_relaxed);
  if (wu->kind == Kind::Main) {
    g_rt->main_pool.q.push(wu);  // only xstream 0 schedules the primary
  } else {
    pool_for(wu->home_rank).q.push(wu);
  }
  g_rt->parker.unpark_all();
}

void complete(WorkUnit* wu) {
  // Claim the joiner slot BEFORE publishing Done: the moment Done is
  // visible, a polling joiner may return from join() and delete wu, so
  // the Done store must be this function's last access to *wu.
  WorkUnit* j =
      wu->joiner.exchange(kJoinerSentinel, std::memory_order_acq_rel);
  wu->state.store(State::Done, std::memory_order_release);
  if (j != nullptr) push_ready(j);
}

/// Handles the message a suspending work unit sent when control came back
/// to a scheduler. Shared by worker loops and the primary scheduler entry.
void process_directive(fctx::transfer_t t) {
  SwitchMsg msg = *static_cast<SwitchMsg*>(t.data);  // copy before any free
  msg.self->ctx = t.from;
  switch (msg.dir) {
    case Dir::Yield:
      push_ready(msg.self);
      break;
    case Dir::Block: {
      WorkUnit* target = msg.target;
      msg.self->state.store(State::Blocked, std::memory_order_relaxed);
      WorkUnit* expected = nullptr;
      const bool registered =
          target->state.load(std::memory_order_acquire) != State::Done &&
          target->joiner.compare_exchange_strong(expected, msg.self,
                                                 std::memory_order_acq_rel);
      if (!registered) push_ready(msg.self);  // target already finished
      break;
    }
    case Dir::Done: {
      WorkUnit* wu = msg.self;
      fctx::StackPool::global().release(wu->stack);
      wu->stack = fctx::Stack{};
      complete(wu);
      break;
    }
    case Dir::Resume:
      GLTO_CHECK_MSG(false, "Resume is never sent to a scheduler");
  }
}

void run_unit(WorkUnit* wu) {
  wu->last_rank.store(tls.rank, std::memory_order_relaxed);
  if (wu->kind == Kind::Tasklet) {
    wu->state.store(State::Running, std::memory_order_relaxed);
    wu->fn(wu->arg);
    complete(wu);
    return;
  }
  wu->state.store(State::Running, std::memory_order_relaxed);
  tls.current = wu;
  SwitchMsg resume{Dir::Resume, wu, nullptr};
  fctx::transfer_t t = fctx::jump_fcontext(wu->ctx, &resume);
  tls.current = nullptr;
  process_directive(t);
}

/// Scheduler loop: drains this xstream's pool; parks briefly when idle.
/// Workers exit on shutdown; the primary scheduler context never observes
/// shutdown while running (finalize executes on the primary ULT).
void sched_loop() {
  Pool& pool = pool_for(tls.rank);
  const bool primary = tls.rank == 0;
  int idle = 0;
  // The primary alternates fairly between its regular pool and the main
  // slot: strict priority either way starves someone (main-first starves
  // yielded-to pool work; pool-first starves main when a co-located ULT
  // busy-waits for main at a barrier).
  bool main_turn = false;
  for (;;) {
    std::optional<WorkUnit*> wu;
    if (primary && main_turn) {
      wu = g_rt->main_pool.q.pop();
      if (!wu) wu = pool.q.pop();
    } else {
      wu = pool.q.pop();
      if (!wu && primary) wu = g_rt->main_pool.q.pop();
    }
    main_turn = !main_turn;
    if (wu) {
      idle = 0;
      run_unit(*wu);
      continue;
    }
    if (g_rt->shutdown.load(std::memory_order_acquire)) break;
    if (++idle < 64) {
      common::cpu_relax();
    } else if (idle < 96) {
      std::this_thread::yield();
    } else {
      g_rt->parker.park_for_us(200);
    }
  }
}

void worker_main(int rank) {
  tls.rank = rank;
  if (g_rt->cfg.bind_threads) common::bind_self_to_core(rank);
  sched_loop();
}

/// Entry for the primary xstream's scheduler context (created lazily the
/// first time the primary ULT suspends).
void primary_sched_entry(fctx::transfer_t t) {
  process_directive(t);
  sched_loop();
  GLTO_CHECK_MSG(false, "primary scheduler exited while runtime is alive");
}

/// Suspends the calling ULT with the given directive; returns when
/// resumed. noinline: callers loop around this (join), and an inlined
/// copy would let the compiler reuse a pre-switch TLS address after the
/// ULT migrated to another OS thread.
__attribute__((noinline)) void suspend(Dir dir, WorkUnit* target) {
  WorkUnit* self = tls.current;
  GLTO_CHECK_MSG(self != nullptr, "suspend outside a ULT");
  if (tls.sched_ctx == nullptr) {
    // First suspension of the primary ULT: build the primary scheduler.
    GLTO_CHECK(self->kind == Kind::Main);
    fctx::Stack s = fctx::StackPool::global().acquire();
    g_rt->primary_sched_stack = s;
    tls.sched_ctx = fctx::make_fcontext(s.top, s.size, primary_sched_entry);
  }
  SwitchMsg msg{dir, self, target};
  fctx::transfer_t t = fctx::jump_fcontext(tls.sched_ctx, &msg);
  // Resumed — possibly on a *different OS thread* (shared pools): the
  // thread-local block must be re-resolved, never reused from above.
  Tls& now = tls_now();
  now.sched_ctx = t.from;
  now.current = self;
}

/// Entry trampoline for freshly created ULTs.
void ult_entry(fctx::transfer_t t) {
  SwitchMsg in = *static_cast<SwitchMsg*>(t.data);
  WorkUnit* self = in.self;
  tls.sched_ctx = t.from;
  tls.current = self;
  self->fn(self->arg);
  // fn may have suspended and resumed on a different OS thread: resolve
  // the CURRENT thread's scheduler context, not the entry-time one.
  SwitchMsg done{Dir::Done, self, nullptr};
  fctx::jump_fcontext(tls_now().sched_ctx, &done);
  GLTO_CHECK_MSG(false, "resumed a finished ULT");
}

WorkUnit* create_unit(Kind kind, int rank, WorkFn fn, void* arg) {
  GLTO_CHECK_MSG(g_rt != nullptr, "abt::init has not been called");
  GLTO_CHECK(rank >= 0 && rank < g_rt->n);
  auto* wu = new WorkUnit();
  wu->fn = fn;
  wu->arg = arg;
  wu->home_rank = rank;
  wu->kind = kind;
  if (kind == Kind::Ult) {
    wu->stack = fctx::StackPool::global().acquire();
    wu->ctx = fctx::make_fcontext(wu->stack.top, wu->stack.size, ult_entry);
    g_rt->ults_created.fetch_add(1, std::memory_order_relaxed);
  } else {
    g_rt->tasklets_created.fetch_add(1, std::memory_order_relaxed);
  }
  pool_for(rank).q.push(wu);
  g_rt->parker.unpark_all();
  return wu;
}

int default_rank() { return tls.rank >= 0 ? tls.rank : 0; }

}  // namespace

void init(const Config& cfg_in) {
  GLTO_CHECK_MSG(g_rt == nullptr, "abt::init called twice");
  g_rt = new Runtime();
  g_rt->cfg = cfg_in;
  if (g_rt->cfg.num_xstreams <= 0) {
    g_rt->cfg.num_xstreams = static_cast<int>(common::env_i64(
        "ABT_NUM_XSTREAMS", common::hardware_concurrency()));
  }
  g_rt->n = g_rt->cfg.num_xstreams;
  const int pool_count = g_rt->cfg.shared_pool ? 1 : g_rt->n;
  for (int i = 0; i < pool_count; ++i) {
    g_rt->pools.push_back(std::make_unique<Pool>());
  }
  // The caller becomes the primary ULT on xstream 0.
  tls.rank = 0;
  tls.sched_ctx = nullptr;
  auto* main_unit = new WorkUnit();
  main_unit->kind = Kind::Main;
  main_unit->home_rank = 0;
  main_unit->state.store(State::Running, std::memory_order_relaxed);
  tls.main_unit = main_unit;
  tls.current = main_unit;
  if (g_rt->cfg.bind_threads) common::bind_self_to_core(0);
  for (int r = 1; r < g_rt->n; ++r) {
    g_rt->workers.emplace_back(worker_main, r);
  }
}

void finalize() {
  GLTO_CHECK_MSG(g_rt != nullptr, "abt::finalize without init");
  GLTO_CHECK_MSG(tls.main_unit != nullptr && tls.current == tls.main_unit,
                 "finalize must run on the primary ULT");
  g_rt->shutdown.store(true, std::memory_order_release);
  g_rt->parker.unpark_all();
  // Parked workers wake within their 200 us timeout even if the unpark
  // raced, so plain joins terminate promptly.
  for (auto& w : g_rt->workers) w.join();
  fctx::StackPool::global().release(g_rt->primary_sched_stack);
  delete tls.main_unit;
  tls = Tls{};
  delete g_rt;
  g_rt = nullptr;
}

bool initialized() { return g_rt != nullptr; }

int num_xstreams() { return g_rt ? g_rt->n : 0; }

int self_rank() { return tls.rank; }

bool in_ult() { return tls.current != nullptr; }

WorkUnit* ult_create(WorkFn fn, void* arg) {
  return create_unit(Kind::Ult, default_rank(), fn, arg);
}

WorkUnit* ult_create_on(int rank, WorkFn fn, void* arg) {
  return create_unit(Kind::Ult, rank, fn, arg);
}

WorkUnit* tasklet_create(WorkFn fn, void* arg) {
  return create_unit(Kind::Tasklet, default_rank(), fn, arg);
}

WorkUnit* tasklet_create_on(int rank, WorkFn fn, void* arg) {
  return create_unit(Kind::Tasklet, rank, fn, arg);
}

void join(WorkUnit* wu) {
  GLTO_CHECK(wu != nullptr);
  if (tls.current == nullptr) {
    // Foreign thread (not an xstream): passive wait.
    common::spin_until([&] {
      return wu->state.load(std::memory_order_acquire) == State::Done;
    });
  } else {
    while (wu->state.load(std::memory_order_acquire) != State::Done) {
      suspend(Dir::Block, wu);
    }
  }
  delete wu;
}

void yield() {
  if (tls.current == nullptr) return;  // no-op outside ULTs
  g_rt->yields.fetch_add(1, std::memory_order_relaxed);
  suspend(Dir::Yield, nullptr);
}

bool is_done(const WorkUnit* wu) {
  return wu->state.load(std::memory_order_acquire) == State::Done;
}

int executed_on(const WorkUnit* wu) {
  return wu->last_rank.load(std::memory_order_relaxed);
}

namespace {
thread_local void* g_foreign_local = nullptr;
}

void* self_local() {
  return tls.current != nullptr ? tls.current->user_local : g_foreign_local;
}

void set_self_local(void* p) {
  if (tls.current != nullptr) {
    tls.current->user_local = p;
  } else {
    g_foreign_local = p;
  }
}

Stats stats() {
  Stats s;
  if (g_rt != nullptr) {
    s.ults_created = g_rt->ults_created.load(std::memory_order_relaxed);
    s.tasklets_created = g_rt->tasklets_created.load(std::memory_order_relaxed);
    s.yields = g_rt->yields.load(std::memory_order_relaxed);
  }
  return s;
}

}  // namespace glto::abt
