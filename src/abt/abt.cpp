#include "abt/abt.hpp"

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/affinity.hpp"
#include "common/debug.hpp"
#include "common/env.hpp"
#include "common/rng.hpp"
#include "common/spin.hpp"
#include "fctx/fcontext.hpp"
#include "fctx/stack_pool.hpp"
#include "sched/freelist.hpp"
#include "sched/sync.hpp"
#include "sched/watchdog.hpp"
#include "sched/ws_core.hpp"

namespace glto::abt {

namespace {

enum class State : std::uint8_t { Ready, Running, Blocked, Done };
enum class Kind : std::uint8_t { Ult, Tasklet, Main };
enum class Dir : std::uint8_t { Resume, Yield, Block, BlockExt, Done };

WorkUnit* const kJoinerSentinel = reinterpret_cast<WorkUnit*>(std::uintptr_t(1));

}  // namespace

struct WorkUnit {
  WorkFn fn = nullptr;
  void* arg = nullptr;
  fctx::fcontext_t ctx = nullptr;
  fctx::Stack stack;
  /// ASan bounds of the stack this unit runs on: its pooled stack for
  /// ULTs, the process native stack for Kind::Main.
  fctx::StackRegion stack_region;
  std::atomic<State> state{State::Ready};
  std::atomic<WorkUnit*> joiner{nullptr};
  std::atomic<int> last_rank{-1};
  int home_rank = 0;
  Kind kind = Kind::Ult;
  bool pinned = false;  ///< created with *_create_on: never stolen
  void* user_local = nullptr;  ///< see abt::self_local()
};

namespace {

/// Message passed through a context switch from a suspending work unit to
/// the scheduler that receives control.
struct SwitchMsg {
  Dir dir;
  WorkUnit* self;
  WorkUnit* target;  // join target for Dir::Block
  // Dir::BlockExt payload (sched::sync primitives): the scheduler runs cb
  // after this context is saved; cb false means the wait condition was
  // already satisfied and the unit must be re-readied.
  sched::SuspendCb cb = nullptr;
  void* cb_arg = nullptr;
};

struct Runtime {
  Config cfg;
  bool ws = true;  ///< resolved dispatch mode (true → work stealing)
  int n = 0;
  /// The shared scheduling core (PR-1 fast path, hoisted to src/sched so
  /// qth/mth dispatch through the identical engine). The primary (main)
  /// ULT travels through the core's main slot: only xstream 0 ever
  /// schedules it, even under a shared pool or stealing — otherwise a
  /// worker could resume main, and finalize would tear the primary
  /// scheduler down from a foreign thread while the real main thread
  /// still runs on its stack (the same pin-the-main issue the paper hits
  /// with MassiveThreads, §IV-G).
  std::unique_ptr<sched::WsCore<WorkUnit*>> core;
  std::unique_ptr<sched::Freelist<WorkUnit>> free;
  std::vector<std::thread> workers;
  fctx::Stack primary_sched_stack;
  std::uint64_t watchdog_token = 0;

  std::atomic<std::uint64_t> ults_created{0};
  std::atomic<std::uint64_t> tasklets_created{0};
  std::atomic<std::uint64_t> yields{0};
  std::uint64_t stack_hits_at_init = 0;
};

Runtime* g_rt = nullptr;

struct Tls {
  int rank = -1;
  WorkUnit* current = nullptr;        // unit whose stack we are running on
  fctx::fcontext_t sched_ctx = nullptr;  // way back to this xstream's scheduler
  fctx::StackRegion sched_stack;      // ASan bounds of the scheduler's stack
  WorkUnit* main_unit = nullptr;      // primary thread only
};

thread_local Tls tls;

/// TLS accessor that defeats address caching across context switches: a
/// ULT can resume on a different OS thread (shared pools, stealing), so
/// any code that touches `tls` after a suspension point must recompute the
/// thread-local address. The noinline + asm barrier forces GCC to
/// re-evaluate %fs-relative addressing at the call site's *current*
/// thread instead of reusing a pre-switch computation.
__attribute__((noinline)) Tls& tls_now() {
  asm volatile("");
  return tls;
}

// ------------------------------------------------------------------ alloc

void reset_unit(WorkUnit* wu, Kind kind, int rank, bool pinned, WorkFn fn,
                void* arg) {
  wu->fn = fn;
  wu->arg = arg;
  wu->ctx = nullptr;
  wu->state.store(State::Ready, std::memory_order_relaxed);
  wu->joiner.store(nullptr, std::memory_order_relaxed);
  wu->last_rank.store(-1, std::memory_order_relaxed);
  wu->home_rank = rank;
  wu->kind = kind;
  wu->pinned = pinned;
  wu->user_local = nullptr;
}

/// Recycles a joined record through the shared freelist. Resolves TLS via
/// tls_now(): the caller (join) reaches here after a suspension point,
/// so the ULT may have resumed on a different OS thread and a cached
/// %fs-relative address would index another xstream's owner-only list.
void recycle_unit(WorkUnit* wu) {
  if (g_rt == nullptr) {  // joined after finalize: nothing to recycle into
    delete wu;
    return;
  }
  g_rt->free->recycle(tls_now().rank, wu);
}

// --------------------------------------------------------------- dispatch

/// Re-readies a suspended unit through the core's routing policy; the
/// primary ULT goes to the main slot.
void push_ready(WorkUnit* wu, bool fifo) {
  wu->state.store(State::Ready, std::memory_order_relaxed);
  if (wu->kind == Kind::Main) {
    g_rt->core->push_main(wu);
  } else {
    g_rt->core->ready(tls.rank, wu->home_rank, wu->pinned, fifo, wu);
  }
}

void complete(WorkUnit* wu) {
  // Claim the joiner slot BEFORE publishing Done: the moment Done is
  // visible, a polling joiner may return from join() and recycle wu, so
  // the Done store must be this function's last access to *wu.
  WorkUnit* j =
      wu->joiner.exchange(kJoinerSentinel, std::memory_order_acq_rel);
  wu->state.store(State::Done, std::memory_order_release);
  if (j != nullptr) push_ready(j, /*fifo=*/false);
}

/// Handles the message a suspending work unit sent when control came back
/// to a scheduler. Shared by worker loops and the primary scheduler entry.
void process_directive(fctx::transfer_t t) {
  SwitchMsg msg = *static_cast<SwitchMsg*>(t.data);  // copy before any free
  msg.self->ctx = t.from;
  switch (msg.dir) {
    case Dir::Yield:
      push_ready(msg.self, /*fifo=*/true);
      break;
    case Dir::Block: {
      WorkUnit* target = msg.target;
      msg.self->state.store(State::Blocked, std::memory_order_relaxed);
      WorkUnit* expected = nullptr;
      const bool registered =
          target->state.load(std::memory_order_acquire) != State::Done &&
          target->joiner.compare_exchange_strong(expected, msg.self,
                                                 std::memory_order_acq_rel);
      if (!registered) {
        push_ready(msg.self, /*fifo=*/false);  // target already finished
      }
      break;
    }
    case Dir::BlockExt: {
      // Park on a sched::sync primitive. The enqueue callback re-checks
      // the wait condition under the primitive's lock (same shape as the
      // FEB register-or-complete path): false ⇒ no park, re-ready now.
      msg.self->state.store(State::Blocked, std::memory_order_relaxed);
      if (!msg.cb(msg.cb_arg, msg.self)) {
        push_ready(msg.self, /*fifo=*/false);
      }
      break;
    }
    case Dir::Done: {
      WorkUnit* wu = msg.self;
      fctx::StackPool::global().release(wu->stack);
      wu->stack = fctx::Stack{};
      complete(wu);
      break;
    }
    case Dir::Resume:
      GLTO_CHECK_MSG(false, "Resume is never sent to a scheduler");
  }
}

void run_unit(WorkUnit* wu) {
  wu->last_rank.store(tls.rank, std::memory_order_relaxed);
  sched::trace_emit(sched::TraceKind::ult_switch,
                    reinterpret_cast<std::uintptr_t>(wu),
                    wu->kind == Kind::Tasklet ? 1u : 0u);
  if (wu->kind == Kind::Tasklet) {
    // Tasklets run on the scheduler's own stack. tls.current must point
    // at the tasklet for the duration: on the primary xstream it still
    // holds the *suspended main ULT*, and a tasklet that touched yield()
    // or self_local() would otherwise act on main's identity — yield
    // would "suspend" main from inside the scheduler context and jump
    // through a dead fcontext. (Latent in the seed; first exposed by
    // examples/glt_hello's yielding tasklets.)
    WorkUnit* prev = tls.current;
    tls.current = wu;
    wu->state.store(State::Running, std::memory_order_relaxed);
    wu->fn(wu->arg);
    tls.current = prev;
    complete(wu);
    return;
  }
  wu->state.store(State::Running, std::memory_order_relaxed);
  tls.current = wu;
  SwitchMsg resume{Dir::Resume, wu, nullptr};
  fctx::transfer_t t = fctx::jump_fcontext_to(wu->ctx, &resume,
                                              wu->stack_region);
  tls.current = nullptr;
  process_directive(t);
}

/// Scheduler loop: the shared core drains this xstream's pool, steals
/// when idle, and parks briefly when there is nothing to steal. Workers
/// exit on shutdown; the primary scheduler context never observes
/// shutdown while running (finalize executes on the primary ULT).
void sched_loop() {
  const bool primary = tls.rank == 0;
  sched::AcquireState st(0x9e3779b97f4a7c15ULL +
                         static_cast<std::uint64_t>(tls.rank));
  for (;;) {
    WorkUnit* wu = g_rt->core->acquire(tls.rank, st, primary);
    if (wu == nullptr) break;
    run_unit(wu);
  }
}

void worker_main(int rank) {
  tls.rank = rank;
  tls.sched_stack = fctx::os_thread_stack();  // sched_loop runs right here
  if (g_rt->cfg.bind_threads) common::bind_self_to_core(rank);
  sched::trace_thread_label("abt", rank);
  sched_loop();
}

/// Entry for the primary xstream's scheduler context (created lazily the
/// first time the primary ULT suspends).
void primary_sched_entry(fctx::transfer_t t) {
  fctx::asan_enter();
  process_directive(t);
  sched_loop();
  GLTO_CHECK_MSG(false, "primary scheduler exited while runtime is alive");
}

/// Suspends the calling ULT with the given directive; returns when
/// resumed. noinline: callers loop around this (join), and an inlined
/// copy would let the compiler reuse a pre-switch TLS address after the
/// ULT migrated to another OS thread.
__attribute__((noinline)) void suspend(Dir dir, WorkUnit* target,
                                       sched::SuspendCb cb = nullptr,
                                       void* cb_arg = nullptr) {
  WorkUnit* self = tls.current;
  GLTO_CHECK_MSG(self != nullptr, "suspend outside a ULT");
  GLTO_CHECK_MSG(self->kind != Kind::Tasklet,
                 "tasklets are stackless and cannot suspend (no yield-wait "
                 "or blocking join inside a tasklet)");
  if (tls.sched_ctx == nullptr) {
    // First suspension of the primary ULT: build the primary scheduler.
    GLTO_CHECK(self->kind == Kind::Main);
    fctx::Stack s = fctx::StackPool::global().acquire();
    g_rt->primary_sched_stack = s;
    tls.sched_ctx = fctx::make_fcontext(s.top, s.size, primary_sched_entry);
    tls.sched_stack = s.region();
  }
  SwitchMsg msg{dir, self, target, cb, cb_arg};
  fctx::transfer_t t =
      fctx::jump_fcontext_to(tls.sched_ctx, &msg, tls.sched_stack);
  // Resumed — possibly on a *different OS thread* (shared pools or a
  // steal): the thread-local block must be re-resolved, never reused.
  Tls& now = tls_now();
  now.sched_ctx = t.from;
  now.current = self;
}

/// Entry trampoline for freshly created ULTs.
void ult_entry(fctx::transfer_t t) {
  fctx::asan_enter();
  SwitchMsg in = *static_cast<SwitchMsg*>(t.data);
  WorkUnit* self = in.self;
  tls.sched_ctx = t.from;
  tls.current = self;
  self->fn(self->arg);
  // fn may have suspended and resumed on a different OS thread: resolve
  // the CURRENT thread's scheduler context, not the entry-time one.
  SwitchMsg done{Dir::Done, self, nullptr};
  Tls& now = tls_now();
  fctx::jump_fcontext_to(now.sched_ctx, &done, now.sched_stack,
                         /*abandon=*/true);
  GLTO_CHECK_MSG(false, "resumed a finished ULT");
}

WorkUnit* create_unit(Kind kind, int rank, bool pinned, WorkFn fn,
                      void* arg) {
  GLTO_CHECK_MSG(g_rt != nullptr, "abt::init has not been called");
  GLTO_CHECK(rank >= 0 && rank < g_rt->n);
  WorkUnit* wu = g_rt->free->try_alloc(tls.rank);
  if (wu == nullptr) wu = new WorkUnit();
  reset_unit(wu, kind, rank, pinned, fn, arg);
  if (kind == Kind::Ult) {
    wu->stack = fctx::StackPool::global().acquire();
    wu->ctx = fctx::make_fcontext(wu->stack.top, wu->stack.size, ult_entry);
    wu->stack_region = wu->stack.region();
    g_rt->ults_created.fetch_add(1, std::memory_order_relaxed);
  } else {
    g_rt->tasklets_created.fetch_add(1, std::memory_order_relaxed);
  }
  g_rt->core->submit(tls.rank, rank, pinned, wu);
  return wu;
}

int default_rank() { return tls.rank >= 0 ? tls.rank : 0; }

void dump_core_state(void* arg) {
  static_cast<sched::WsCore<WorkUnit*>*>(arg)->dump_state("abt");
}

// ------------------------------------------------- sched::SuspendOps bridge

bool ops_can_suspend() {
  return g_rt != nullptr && tls.current != nullptr &&
         tls.current->kind != Kind::Tasklet;
}

void ops_suspend(sched::SuspendCb cb, void* arg) {
  suspend(Dir::BlockExt, nullptr, cb, arg);
}

/// Re-deposits a unit a sync-primitive signaller owns. May run on a
/// foreign OS thread (rank -1) — the core routes that through the home
/// rank's fair queue; tls_now() because wakers can sit after a
/// suspension point themselves.
void ops_resume(void* handle) {
  auto* wu = static_cast<WorkUnit*>(handle);
  wu->state.store(State::Ready, std::memory_order_relaxed);
  if (wu->kind == Kind::Main) {
    g_rt->core->push_main(wu);
  } else {
    g_rt->core->ready(tls_now().rank, wu->home_rank, wu->pinned,
                      /*fifo=*/false, wu);
  }
}

void ops_yield() { yield(); }
bool ops_maybe_work() { return maybe_work(); }

constexpr sched::SuspendOps kSuspendOps{ops_can_suspend, ops_suspend,
                                        ops_resume, ops_yield,
                                        ops_maybe_work};

}  // namespace

void init(const Config& cfg_in) {
  GLTO_CHECK_MSG(g_rt == nullptr, "abt::init called twice");
  // Arm observability even for raw-backend users (no glt:: facade):
  // both resolvers are idempotent, so the facade path pays nothing.
  sched::trace_init_from_env();
  sched::metrics_init_from_env();
  g_rt = new Runtime();
  g_rt->cfg = cfg_in;
  g_rt->cfg.num_xstreams =
      common::env_worker_count("ABT_NUM_XSTREAMS", cfg_in.num_xstreams);
  g_rt->n = g_rt->cfg.num_xstreams;
  g_rt->ws = sched::resolve_dispatch(g_rt->cfg.dispatch, "ABT_DISPATCH") ==
             Dispatch::WorkStealing;
  sched::WsCoreConfig core_cfg;
  core_cfg.num_workers = g_rt->n;
  core_cfg.shared_pool = g_rt->cfg.shared_pool;
  core_cfg.work_stealing = g_rt->ws;
  g_rt->core = std::make_unique<sched::WsCore<WorkUnit*>>(core_cfg);
  g_rt->free = std::make_unique<sched::Freelist<WorkUnit>>(g_rt->n);
  g_rt->watchdog_token =
      sched::watchdog_register_dumper(dump_core_state, g_rt->core.get());
  g_rt->stack_hits_at_init = fctx::StackPool::global().cache_hits();
  // The caller becomes the primary ULT on xstream 0.
  tls.rank = 0;
  tls.sched_ctx = nullptr;
  auto* main_unit = new WorkUnit();
  main_unit->kind = Kind::Main;
  main_unit->stack_region = fctx::os_thread_stack();
  main_unit->home_rank = 0;
  main_unit->pinned = true;
  main_unit->state.store(State::Running, std::memory_order_relaxed);
  tls.main_unit = main_unit;
  tls.current = main_unit;
  if (g_rt->cfg.bind_threads) common::bind_self_to_core(0);
  sched::register_suspend_ops(&kSuspendOps);
  for (int r = 1; r < g_rt->n; ++r) {
    g_rt->workers.emplace_back(worker_main, r);
  }
}

void finalize() {
  GLTO_CHECK_MSG(g_rt != nullptr, "abt::finalize without init");
  GLTO_CHECK_MSG(tls.main_unit != nullptr && tls.current == tls.main_unit,
                 "finalize must run on the primary ULT");
  sched::unregister_suspend_ops(&kSuspendOps);
  sched::watchdog_unregister_dumper(g_rt->watchdog_token);
  g_rt->core->request_shutdown();
  for (auto& w : g_rt->workers) w.join();
  fctx::StackPool::global().release(g_rt->primary_sched_stack);
  delete tls.main_unit;
  tls = Tls{};
  delete g_rt;  // Freelist dtor frees all recycled WorkUnits
  g_rt = nullptr;
}

bool initialized() { return g_rt != nullptr; }

int num_xstreams() { return g_rt ? g_rt->n : 0; }

int self_rank() { return tls.rank; }

bool in_ult() {
  return tls.current != nullptr && tls.current->kind != Kind::Tasklet;
}

bool maybe_work() {
  if (g_rt == nullptr || tls.rank < 0) return false;
  return g_rt->core->maybe_work(tls.rank, tls.rank == 0);
}

Dispatch dispatch_mode() {
  if (g_rt == nullptr) return Dispatch::Auto;
  return g_rt->ws ? Dispatch::WorkStealing : Dispatch::Locked;
}

WorkUnit* ult_create(WorkFn fn, void* arg) {
  return create_unit(Kind::Ult, default_rank(), /*pinned=*/false, fn, arg);
}

WorkUnit* ult_create_on(int rank, WorkFn fn, void* arg) {
  return create_unit(Kind::Ult, rank, /*pinned=*/true, fn, arg);
}

void ult_create_bulk(WorkFn fn, void* const* args, int n, WorkUnit** out,
                     bool spread) {
  GLTO_CHECK_MSG(g_rt != nullptr, "abt::init has not been called");
  if (n <= 0) return;
  const int home = default_rank();
  for (int i = 0; i < n; ++i) {
    WorkUnit* wu = g_rt->free->try_alloc(tls.rank);
    if (wu == nullptr) wu = new WorkUnit();
    reset_unit(wu, Kind::Ult, home, /*pinned=*/false, fn, args[i]);
    wu->stack = fctx::StackPool::global().acquire();
    wu->ctx = fctx::make_fcontext(wu->stack.top, wu->stack.size, ult_entry);
    wu->stack_region = wu->stack.region();
    out[i] = wu;
  }
  g_rt->ults_created.fetch_add(static_cast<std::uint64_t>(n),
                               std::memory_order_relaxed);
  g_rt->core->submit_bulk(
      tls.rank, out, static_cast<std::size_t>(n),
      spread ? sched::BulkHint::spread : sched::BulkHint::local);
}

WorkUnit* tasklet_create(WorkFn fn, void* arg) {
  return create_unit(Kind::Tasklet, default_rank(), /*pinned=*/false, fn,
                     arg);
}

WorkUnit* tasklet_create_on(int rank, WorkFn fn, void* arg) {
  return create_unit(Kind::Tasklet, rank, /*pinned=*/true, fn, arg);
}

void join(WorkUnit* wu) {
  GLTO_CHECK(wu != nullptr);
  if (tls.current == nullptr) {
    // Foreign thread (not an xstream): passive wait.
    common::spin_until([&] {
      return wu->state.load(std::memory_order_acquire) == State::Done;
    });
  } else {
    while (wu->state.load(std::memory_order_acquire) != State::Done) {
      suspend(Dir::Block, wu);
    }
  }
  recycle_unit(wu);
}

void yield() {
  if (tls.current == nullptr || tls.current->kind == Kind::Tasklet) {
    return;  // no-op outside ULTs; tasklets run to completion (§III-B)
  }
  g_rt->yields.fetch_add(1, std::memory_order_relaxed);
  suspend(Dir::Yield, nullptr);
}

bool is_done(const WorkUnit* wu) {
  return wu->state.load(std::memory_order_acquire) == State::Done;
}

int executed_on(const WorkUnit* wu) {
  return wu->last_rank.load(std::memory_order_relaxed);
}

namespace {
thread_local void* g_foreign_local = nullptr;
}

void* self_local() {
  return tls.current != nullptr ? tls.current->user_local : g_foreign_local;
}

void set_self_local(void* p) {
  if (tls.current != nullptr) {
    tls.current->user_local = p;
  } else {
    g_foreign_local = p;
  }
}

Stats stats() {
  Stats s;
  if (g_rt != nullptr) {
    s.ults_created = g_rt->ults_created.load(std::memory_order_relaxed);
    s.tasklets_created = g_rt->tasklets_created.load(std::memory_order_relaxed);
    s.yields = g_rt->yields.load(std::memory_order_relaxed);
    s.assign_core(g_rt->core->stats());
    s.stack_cache_hits =
        fctx::StackPool::global().cache_hits() - g_rt->stack_hits_at_init;
  }
  return s;
}

}  // namespace glto::abt
