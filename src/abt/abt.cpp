#include "abt/abt.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/affinity.hpp"
#include "common/cacheline.hpp"
#include "common/debug.hpp"
#include "common/env.hpp"
#include "common/parker.hpp"
#include "common/rng.hpp"
#include "common/spin.hpp"
#include "fctx/fcontext.hpp"
#include "fctx/stack_pool.hpp"
#include "sched/chase_lev.hpp"
#include "sched/locked_queue.hpp"
#include "sched/overflow_queue.hpp"

namespace glto::abt {

namespace {

enum class State : std::uint8_t { Ready, Running, Blocked, Done };
enum class Kind : std::uint8_t { Ult, Tasklet, Main };
enum class Dir : std::uint8_t { Resume, Yield, Block, Done };

WorkUnit* const kJoinerSentinel = reinterpret_cast<WorkUnit*>(std::uintptr_t(1));

}  // namespace

struct WorkUnit {
  WorkFn fn = nullptr;
  void* arg = nullptr;
  fctx::fcontext_t ctx = nullptr;
  fctx::Stack stack;
  std::atomic<State> state{State::Ready};
  std::atomic<WorkUnit*> joiner{nullptr};
  std::atomic<int> last_rank{-1};
  int home_rank = 0;
  Kind kind = Kind::Ult;
  bool pinned = false;  ///< created with *_create_on: never stolen
  void* user_local = nullptr;  ///< see abt::self_local()
};

namespace {

/// Message passed through a context switch from a suspending work unit to
/// the scheduler that receives control.
struct SwitchMsg {
  Dir dir;
  WorkUnit* self;
  WorkUnit* target;  // join target for Dir::Block
};

/// Ready-unit storage of one xstream. Which members are live depends on
/// the dispatch mode:
///  * WorkStealing — `deque` holds unpinned units pushed by the owner
///    (LIFO bottom for the owner, FIFO top for thieves); `fair` holds
///    pinned, remote-submitted, and yielded units and is popped only by
///    the owner (FIFO, so yield is a fairness point and pinned units
///    cannot be stolen).
///  * Locked — everything goes through `locked` (the seed's baseline
///    behaviour, kept runtime-selectable for the §IV-F-style ablation).
struct Pool {
  sched::ChaseLevDeque<WorkUnit*> deque{256};
  sched::OverflowQueue<WorkUnit*> fair{1024};
  sched::LockedQueue<WorkUnit*> locked;
};

/// Per-xstream counters, owner-written; one cache line each so the hot
/// loop never bounces a shared stats line.
struct alignas(common::kCacheLine) XsCounters {
  std::atomic<std::uint64_t> steals{0};
  std::atomic<std::uint64_t> failed_steals{0};
  std::atomic<std::uint64_t> parks{0};
  std::atomic<std::uint64_t> parked_us{0};
};

/// Adaptive idle parking: the first park is short (work often arrives
/// within the old fixed 200 µs), each consecutive fruitless park doubles
/// up to a 2 ms cap — a steal probe runs between parks (the scheduler
/// loop re-polls pools and victims before every extension), so a long
/// park can never strand runnable work for more than one wake latency.
constexpr std::int64_t kParkMinUs = 200;
constexpr std::int64_t kParkMaxUs = 2000;

/// Per-xstream WorkUnit free list (owner-only; lock-free by ownership).
/// Oversized lists spill half to a shared slab, which also feeds workers
/// whose join/create balance runs negative and foreign threads.
struct alignas(common::kCacheLine) FreeList {
  std::vector<WorkUnit*> units;
};

constexpr std::size_t kFreeListSpillHigh = 512;
constexpr std::size_t kFreeListRefillBatch = 32;

struct Runtime {
  Config cfg;
  bool ws = true;  ///< resolved dispatch mode (true → work stealing)
  int n = 0;
  std::vector<std::unique_ptr<Pool>> pools;
  /// The primary (main) ULT is only ever scheduled by xstream 0, even
  /// under a shared pool or stealing — otherwise a worker could resume
  /// main, and finalize would tear the primary scheduler down from a
  /// foreign thread while the real main thread still runs on its stack
  /// (the same pin-the-main issue the paper hits with MassiveThreads,
  /// §IV-G).
  Pool main_pool;
  std::vector<std::thread> workers;
  std::atomic<bool> shutdown{false};
  common::Parker parker;
  fctx::Stack primary_sched_stack;

  std::vector<XsCounters> xs_counters;
  std::vector<FreeList> free_lists;
  common::SpinLock slab_lock;
  std::vector<WorkUnit*> slab;  ///< shared WorkUnit overflow free list
  std::atomic<std::size_t> slab_size{0};  ///< lock-free emptiness probe

  std::atomic<std::uint64_t> ults_created{0};
  std::atomic<std::uint64_t> tasklets_created{0};
  std::atomic<std::uint64_t> yields{0};
  std::uint64_t stack_hits_at_init = 0;
};

Runtime* g_rt = nullptr;

struct Tls {
  int rank = -1;
  WorkUnit* current = nullptr;        // unit whose stack we are running on
  fctx::fcontext_t sched_ctx = nullptr;  // way back to this xstream's scheduler
  WorkUnit* main_unit = nullptr;      // primary thread only
};

thread_local Tls tls;

/// TLS accessor that defeats address caching across context switches: a
/// ULT can resume on a different OS thread (shared pools, stealing), so
/// any code that touches `tls` after a suspension point must recompute the
/// thread-local address. The noinline + asm barrier forces GCC to
/// re-evaluate %fs-relative addressing at the call site's *current*
/// thread instead of reusing a pre-switch computation.
__attribute__((noinline)) Tls& tls_now() {
  asm volatile("");
  return tls;
}

Pool& pool_for(int rank) {
  return *g_rt->pools[g_rt->cfg.shared_pool ? 0 : static_cast<size_t>(rank)];
}

// ------------------------------------------------------------------ alloc

void reset_unit(WorkUnit* wu, Kind kind, int rank, bool pinned, WorkFn fn,
                void* arg) {
  wu->fn = fn;
  wu->arg = arg;
  wu->ctx = nullptr;
  wu->state.store(State::Ready, std::memory_order_relaxed);
  wu->joiner.store(nullptr, std::memory_order_relaxed);
  wu->last_rank.store(-1, std::memory_order_relaxed);
  wu->home_rank = rank;
  wu->kind = kind;
  wu->pinned = pinned;
  wu->user_local = nullptr;
}

/// Pops a recycled record (per-xstream free list, batch-refilled from the
/// shared slab) or heap-allocates a fresh one. Lock-free on xstreams
/// unless the local list is empty.
WorkUnit* alloc_unit() {
  if (tls.rank >= 0) {
    FreeList& fl = g_rt->free_lists[static_cast<std::size_t>(tls.rank)];
    if (fl.units.empty() &&
        g_rt->slab_size.load(std::memory_order_relaxed) > 0) {
      common::SpinGuard g(g_rt->slab_lock);
      const std::size_t take =
          std::min(kFreeListRefillBatch, g_rt->slab.size());
      fl.units.insert(fl.units.end(), g_rt->slab.end() - take,
                      g_rt->slab.end());
      g_rt->slab.resize(g_rt->slab.size() - take);
      g_rt->slab_size.store(g_rt->slab.size(), std::memory_order_relaxed);
    }
    if (!fl.units.empty()) {
      WorkUnit* wu = fl.units.back();
      fl.units.pop_back();
      return wu;
    }
  }
  return new WorkUnit();
}

/// Recycles a joined record. Owner-only fast path; foreign threads (and
/// oversized local lists) go through the shared slab. Resolves TLS via
/// tls_now(): the caller (join) reaches here after a suspension point,
/// so the ULT may have resumed on a different OS thread and a cached
/// %fs-relative address would index another xstream's owner-only list.
void recycle_unit(WorkUnit* wu) {
  if (g_rt == nullptr) {  // joined after finalize: nothing to recycle into
    delete wu;
    return;
  }
  Tls& now = tls_now();
  if (now.rank >= 0) {
    FreeList& fl = g_rt->free_lists[static_cast<std::size_t>(now.rank)];
    fl.units.push_back(wu);
    if (fl.units.size() > kFreeListSpillHigh) {
      const std::size_t keep = kFreeListSpillHigh / 2;
      common::SpinGuard g(g_rt->slab_lock);
      g_rt->slab.insert(g_rt->slab.end(), fl.units.begin() + keep,
                        fl.units.end());
      g_rt->slab_size.store(g_rt->slab.size(), std::memory_order_relaxed);
      fl.units.resize(keep);
    }
    return;
  }
  common::SpinGuard g(g_rt->slab_lock);
  g_rt->slab.push_back(wu);
  g_rt->slab_size.store(g_rt->slab.size(), std::memory_order_relaxed);
}

// --------------------------------------------------------------- dispatch

/// Re-readies a suspended unit. @p fifo routes through the fair FIFO side
/// queue (yields — the unit must not immediately preempt deque work);
/// otherwise a woken unpinned unit lands LIFO on the waker's own deque
/// (cache-warm, stealable).
void push_ready(WorkUnit* wu, bool fifo) {
  wu->state.store(State::Ready, std::memory_order_relaxed);
  if (wu->kind == Kind::Main) {
    // Only xstream 0 schedules the primary.
    if (g_rt->ws) {
      g_rt->main_pool.fair.push(wu);
    } else {
      g_rt->main_pool.locked.push(wu);
    }
  } else if (!g_rt->ws) {
    pool_for(wu->home_rank).locked.push(wu);
  } else if (g_rt->cfg.shared_pool) {
    g_rt->pools[0]->fair.push(wu);
  } else if (wu->pinned) {
    pool_for(wu->home_rank).fair.push(wu);
  } else if (tls.rank >= 0 && !fifo) {
    pool_for(tls.rank).deque.push(wu);
  } else {
    pool_for(tls.rank >= 0 ? tls.rank : wu->home_rank).fair.push(wu);
  }
  g_rt->parker.unpark_all();
}

void complete(WorkUnit* wu) {
  // Claim the joiner slot BEFORE publishing Done: the moment Done is
  // visible, a polling joiner may return from join() and recycle wu, so
  // the Done store must be this function's last access to *wu.
  WorkUnit* j =
      wu->joiner.exchange(kJoinerSentinel, std::memory_order_acq_rel);
  wu->state.store(State::Done, std::memory_order_release);
  if (j != nullptr) push_ready(j, /*fifo=*/false);
}

/// Handles the message a suspending work unit sent when control came back
/// to a scheduler. Shared by worker loops and the primary scheduler entry.
void process_directive(fctx::transfer_t t) {
  SwitchMsg msg = *static_cast<SwitchMsg*>(t.data);  // copy before any free
  msg.self->ctx = t.from;
  switch (msg.dir) {
    case Dir::Yield:
      push_ready(msg.self, /*fifo=*/true);
      break;
    case Dir::Block: {
      WorkUnit* target = msg.target;
      msg.self->state.store(State::Blocked, std::memory_order_relaxed);
      WorkUnit* expected = nullptr;
      const bool registered =
          target->state.load(std::memory_order_acquire) != State::Done &&
          target->joiner.compare_exchange_strong(expected, msg.self,
                                                 std::memory_order_acq_rel);
      if (!registered) {
        push_ready(msg.self, /*fifo=*/false);  // target already finished
      }
      break;
    }
    case Dir::Done: {
      WorkUnit* wu = msg.self;
      fctx::StackPool::global().release(wu->stack);
      wu->stack = fctx::Stack{};
      complete(wu);
      break;
    }
    case Dir::Resume:
      GLTO_CHECK_MSG(false, "Resume is never sent to a scheduler");
  }
}

void run_unit(WorkUnit* wu) {
  wu->last_rank.store(tls.rank, std::memory_order_relaxed);
  if (wu->kind == Kind::Tasklet) {
    // Tasklets run on the scheduler's own stack. tls.current must point
    // at the tasklet for the duration: on the primary xstream it still
    // holds the *suspended main ULT*, and a tasklet that touched yield()
    // or self_local() would otherwise act on main's identity — yield
    // would "suspend" main from inside the scheduler context and jump
    // through a dead fcontext. (Latent in the seed; first exposed by
    // examples/glt_hello's yielding tasklets.)
    WorkUnit* prev = tls.current;
    tls.current = wu;
    wu->state.store(State::Running, std::memory_order_relaxed);
    wu->fn(wu->arg);
    tls.current = prev;
    complete(wu);
    return;
  }
  wu->state.store(State::Running, std::memory_order_relaxed);
  tls.current = wu;
  SwitchMsg resume{Dir::Resume, wu, nullptr};
  fctx::transfer_t t = fctx::jump_fcontext(wu->ctx, &resume);
  tls.current = nullptr;
  process_directive(t);
}

/// Owner-side pop from this xstream's pool. Work-first: the deque bottom
/// (newest, cache-warm) goes first; the fair queue is checked first every
/// 64th pop so pinned/yielded units cannot starve behind a spawn storm.
WorkUnit* pop_local(Pool& pool, unsigned* tick) {
  if (!g_rt->ws) {
    if (auto wu = pool.locked.pop()) return *wu;
    return nullptr;
  }
  const bool fair_first = (++*tick & 63u) == 0;
  if (fair_first) {
    if (auto wu = pool.fair.pop()) return *wu;
  }
  if (!g_rt->cfg.shared_pool) {
    WorkUnit* wu = nullptr;
    if (pool.deque.pop(&wu)) return wu;
  }
  if (!fair_first) {
    if (auto wu = pool.fair.pop()) return *wu;
  }
  return nullptr;
}

WorkUnit* pop_main_slot() {
  if (g_rt->ws) {
    if (auto wu = g_rt->main_pool.fair.pop()) return *wu;
    return nullptr;
  }
  if (auto wu = g_rt->main_pool.locked.pop()) return *wu;
  return nullptr;
}

/// One randomized sweep over the other xstreams' deques. Victims are
/// probed with relaxed loads first (empty_approx) so an idle fleet does
/// not hammer seq_cst steal operations — and so failed_steals measures
/// real contention (a victim that *looked* non-empty but yielded
/// nothing: lost CAS race or drained between probe and steal), not
/// idle-loop spinning.
WorkUnit* try_steal(common::FastRng& rng) {
  const int n = g_rt->n;
  XsCounters& c = g_rt->xs_counters[static_cast<std::size_t>(tls.rank)];
  const int start = static_cast<int>(rng.next() % static_cast<unsigned>(n));
  for (int k = 0; k < n; ++k) {
    const int victim = start + k < n ? start + k : start + k - n;
    if (victim == tls.rank) continue;
    auto& deque = g_rt->pools[static_cast<std::size_t>(victim)]->deque;
    if (deque.empty_approx()) continue;
    WorkUnit* wu = nullptr;
    if (deque.steal(&wu)) {
      c.steals.fetch_add(1, std::memory_order_relaxed);
      return wu;
    }
    c.failed_steals.fetch_add(1, std::memory_order_relaxed);
  }
  return nullptr;
}

/// Scheduler loop: drains this xstream's pool, steals when idle, parks
/// briefly when there is nothing to steal. Workers exit on shutdown; the
/// primary scheduler context never observes shutdown while running
/// (finalize executes on the primary ULT).
void sched_loop() {
  Pool& pool = pool_for(tls.rank);
  const bool primary = tls.rank == 0;
  const bool stealing =
      g_rt->ws && !g_rt->cfg.shared_pool && g_rt->n > 1;
  common::FastRng rng(common::mix64(
      0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(tls.rank)));
  XsCounters& counters =
      g_rt->xs_counters[static_cast<std::size_t>(tls.rank)];
  unsigned tick = 0;
  int idle = 0;
  std::int64_t park_us = kParkMinUs;
  // The primary alternates fairly between its regular pool and the main
  // slot: strict priority either way starves someone (main-first starves
  // yielded-to pool work; pool-first starves main when a co-located ULT
  // busy-waits for main at a barrier).
  bool main_turn = false;
  for (;;) {
    WorkUnit* wu = nullptr;
    if (primary && main_turn) {
      wu = pop_main_slot();
      if (wu == nullptr) wu = pop_local(pool, &tick);
    } else {
      wu = pop_local(pool, &tick);
      if (wu == nullptr && primary) wu = pop_main_slot();
    }
    main_turn = !main_turn;
    if (wu == nullptr && stealing) wu = try_steal(rng);
    if (wu != nullptr) {
      idle = 0;
      park_us = kParkMinUs;
      run_unit(wu);
      continue;
    }
    if (g_rt->shutdown.load(std::memory_order_acquire)) break;
    if (++idle < 64) {
      common::cpu_relax();
    } else if (idle < 96) {
      std::this_thread::yield();
    } else {
      // Adaptive park: exponential growth, reset on any work. The loop
      // just ran a full pop + steal probe and found nothing, so extending
      // the park is safe — and a push always unparks us early.
      counters.parks.fetch_add(1, std::memory_order_relaxed);
      counters.parked_us.fetch_add(static_cast<std::uint64_t>(park_us),
                                   std::memory_order_relaxed);
      g_rt->parker.park_for_us(park_us);
      park_us = std::min<std::int64_t>(park_us * 2, kParkMaxUs);
    }
  }
}

void worker_main(int rank) {
  tls.rank = rank;
  if (g_rt->cfg.bind_threads) common::bind_self_to_core(rank);
  sched_loop();
}

/// Entry for the primary xstream's scheduler context (created lazily the
/// first time the primary ULT suspends).
void primary_sched_entry(fctx::transfer_t t) {
  process_directive(t);
  sched_loop();
  GLTO_CHECK_MSG(false, "primary scheduler exited while runtime is alive");
}

/// Suspends the calling ULT with the given directive; returns when
/// resumed. noinline: callers loop around this (join), and an inlined
/// copy would let the compiler reuse a pre-switch TLS address after the
/// ULT migrated to another OS thread.
__attribute__((noinline)) void suspend(Dir dir, WorkUnit* target) {
  WorkUnit* self = tls.current;
  GLTO_CHECK_MSG(self != nullptr, "suspend outside a ULT");
  GLTO_CHECK_MSG(self->kind != Kind::Tasklet,
                 "tasklets are stackless and cannot suspend (no yield-wait "
                 "or blocking join inside a tasklet)");
  if (tls.sched_ctx == nullptr) {
    // First suspension of the primary ULT: build the primary scheduler.
    GLTO_CHECK(self->kind == Kind::Main);
    fctx::Stack s = fctx::StackPool::global().acquire();
    g_rt->primary_sched_stack = s;
    tls.sched_ctx = fctx::make_fcontext(s.top, s.size, primary_sched_entry);
  }
  SwitchMsg msg{dir, self, target};
  fctx::transfer_t t = fctx::jump_fcontext(tls.sched_ctx, &msg);
  // Resumed — possibly on a *different OS thread* (shared pools or a
  // steal): the thread-local block must be re-resolved, never reused.
  Tls& now = tls_now();
  now.sched_ctx = t.from;
  now.current = self;
}

/// Entry trampoline for freshly created ULTs.
void ult_entry(fctx::transfer_t t) {
  SwitchMsg in = *static_cast<SwitchMsg*>(t.data);
  WorkUnit* self = in.self;
  tls.sched_ctx = t.from;
  tls.current = self;
  self->fn(self->arg);
  // fn may have suspended and resumed on a different OS thread: resolve
  // the CURRENT thread's scheduler context, not the entry-time one.
  SwitchMsg done{Dir::Done, self, nullptr};
  fctx::jump_fcontext(tls_now().sched_ctx, &done);
  GLTO_CHECK_MSG(false, "resumed a finished ULT");
}

WorkUnit* create_unit(Kind kind, int rank, bool pinned, WorkFn fn,
                      void* arg) {
  GLTO_CHECK_MSG(g_rt != nullptr, "abt::init has not been called");
  GLTO_CHECK(rank >= 0 && rank < g_rt->n);
  WorkUnit* wu = alloc_unit();
  reset_unit(wu, kind, rank, pinned, fn, arg);
  if (kind == Kind::Ult) {
    wu->stack = fctx::StackPool::global().acquire();
    wu->ctx = fctx::make_fcontext(wu->stack.top, wu->stack.size, ult_entry);
    g_rt->ults_created.fetch_add(1, std::memory_order_relaxed);
  } else {
    g_rt->tasklets_created.fetch_add(1, std::memory_order_relaxed);
  }
  if (!g_rt->ws) {
    pool_for(rank).locked.push(wu);
  } else if (g_rt->cfg.shared_pool) {
    g_rt->pools[0]->fair.push(wu);
  } else if (pinned || tls.rank != rank) {
    // Exact placement, or a submission from a foreign thread: the target
    // xstream's owner-only FIFO (never stolen).
    pool_for(rank).fair.push(wu);
  } else {
    // Hot path — unpinned spawn on the calling xstream: lock-free owner
    // push; idle xstreams steal from the top.
    pool_for(rank).deque.push(wu);
  }
  g_rt->parker.unpark_all();
  return wu;
}

int default_rank() { return tls.rank >= 0 ? tls.rank : 0; }

Dispatch resolve_dispatch(Dispatch d) {
  if (d != Dispatch::Auto) return d;
  if (auto s = common::env_str("ABT_DISPATCH")) {
    std::string v = *s;
    for (char& c : v) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    if (v == "locked") return Dispatch::Locked;
    if (v != "ws" && v != "workstealing") {
      // A silent fallback would mislabel an ablation run; say what won.
      std::fprintf(stderr,
                   "abt: unrecognized ABT_DISPATCH='%s' "
                   "(expected 'ws' or 'locked'); using work stealing\n",
                   s->c_str());
    }
  }
  return Dispatch::WorkStealing;
}

}  // namespace

void init(const Config& cfg_in) {
  GLTO_CHECK_MSG(g_rt == nullptr, "abt::init called twice");
  g_rt = new Runtime();
  g_rt->cfg = cfg_in;
  if (g_rt->cfg.num_xstreams <= 0) {
    g_rt->cfg.num_xstreams = static_cast<int>(common::env_i64(
        "ABT_NUM_XSTREAMS", common::hardware_concurrency()));
  }
  g_rt->n = g_rt->cfg.num_xstreams;
  g_rt->ws = resolve_dispatch(g_rt->cfg.dispatch) == Dispatch::WorkStealing;
  const int pool_count = g_rt->cfg.shared_pool ? 1 : g_rt->n;
  for (int i = 0; i < pool_count; ++i) {
    g_rt->pools.push_back(std::make_unique<Pool>());
  }
  g_rt->xs_counters = std::vector<XsCounters>(static_cast<std::size_t>(g_rt->n));
  g_rt->free_lists = std::vector<FreeList>(static_cast<std::size_t>(g_rt->n));
  g_rt->stack_hits_at_init = fctx::StackPool::global().cache_hits();
  // The caller becomes the primary ULT on xstream 0.
  tls.rank = 0;
  tls.sched_ctx = nullptr;
  auto* main_unit = new WorkUnit();
  main_unit->kind = Kind::Main;
  main_unit->home_rank = 0;
  main_unit->pinned = true;
  main_unit->state.store(State::Running, std::memory_order_relaxed);
  tls.main_unit = main_unit;
  tls.current = main_unit;
  if (g_rt->cfg.bind_threads) common::bind_self_to_core(0);
  for (int r = 1; r < g_rt->n; ++r) {
    g_rt->workers.emplace_back(worker_main, r);
  }
}

void finalize() {
  GLTO_CHECK_MSG(g_rt != nullptr, "abt::finalize without init");
  GLTO_CHECK_MSG(tls.main_unit != nullptr && tls.current == tls.main_unit,
                 "finalize must run on the primary ULT");
  g_rt->shutdown.store(true, std::memory_order_release);
  g_rt->parker.unpark_all();
  // Parked workers wake within their current timeout (2 ms cap) even if
  // the unpark raced, so plain joins terminate promptly.
  for (auto& w : g_rt->workers) w.join();
  fctx::StackPool::global().release(g_rt->primary_sched_stack);
  for (FreeList& fl : g_rt->free_lists) {
    for (WorkUnit* wu : fl.units) delete wu;
  }
  for (WorkUnit* wu : g_rt->slab) delete wu;
  delete tls.main_unit;
  tls = Tls{};
  delete g_rt;
  g_rt = nullptr;
}

bool initialized() { return g_rt != nullptr; }

int num_xstreams() { return g_rt ? g_rt->n : 0; }

int self_rank() { return tls.rank; }

bool in_ult() {
  return tls.current != nullptr && tls.current->kind != Kind::Tasklet;
}

Dispatch dispatch_mode() {
  if (g_rt == nullptr) return Dispatch::Auto;
  return g_rt->ws ? Dispatch::WorkStealing : Dispatch::Locked;
}

WorkUnit* ult_create(WorkFn fn, void* arg) {
  return create_unit(Kind::Ult, default_rank(), /*pinned=*/false, fn, arg);
}

WorkUnit* ult_create_on(int rank, WorkFn fn, void* arg) {
  return create_unit(Kind::Ult, rank, /*pinned=*/true, fn, arg);
}

WorkUnit* tasklet_create(WorkFn fn, void* arg) {
  return create_unit(Kind::Tasklet, default_rank(), /*pinned=*/false, fn,
                     arg);
}

WorkUnit* tasklet_create_on(int rank, WorkFn fn, void* arg) {
  return create_unit(Kind::Tasklet, rank, /*pinned=*/true, fn, arg);
}

void join(WorkUnit* wu) {
  GLTO_CHECK(wu != nullptr);
  if (tls.current == nullptr) {
    // Foreign thread (not an xstream): passive wait.
    common::spin_until([&] {
      return wu->state.load(std::memory_order_acquire) == State::Done;
    });
  } else {
    while (wu->state.load(std::memory_order_acquire) != State::Done) {
      suspend(Dir::Block, wu);
    }
  }
  recycle_unit(wu);
}

void yield() {
  if (tls.current == nullptr || tls.current->kind == Kind::Tasklet) {
    return;  // no-op outside ULTs; tasklets run to completion (§III-B)
  }
  g_rt->yields.fetch_add(1, std::memory_order_relaxed);
  suspend(Dir::Yield, nullptr);
}

bool is_done(const WorkUnit* wu) {
  return wu->state.load(std::memory_order_acquire) == State::Done;
}

int executed_on(const WorkUnit* wu) {
  return wu->last_rank.load(std::memory_order_relaxed);
}

namespace {
thread_local void* g_foreign_local = nullptr;
}

void* self_local() {
  return tls.current != nullptr ? tls.current->user_local : g_foreign_local;
}

void set_self_local(void* p) {
  if (tls.current != nullptr) {
    tls.current->user_local = p;
  } else {
    g_foreign_local = p;
  }
}

Stats stats() {
  Stats s;
  if (g_rt != nullptr) {
    s.ults_created = g_rt->ults_created.load(std::memory_order_relaxed);
    s.tasklets_created = g_rt->tasklets_created.load(std::memory_order_relaxed);
    s.yields = g_rt->yields.load(std::memory_order_relaxed);
    for (const XsCounters& c : g_rt->xs_counters) {
      s.steals += c.steals.load(std::memory_order_relaxed);
      s.failed_steals += c.failed_steals.load(std::memory_order_relaxed);
      s.parks += c.parks.load(std::memory_order_relaxed);
      s.parked_us += c.parked_us.load(std::memory_order_relaxed);
    }
    s.stack_cache_hits =
        fctx::StackPool::global().cache_hits() - g_rt->stack_hits_at_init;
  }
  return s;
}

}  // namespace glto::abt
