// abt — an Argobots-like lightweight-threading library.
//
// Model (mirrors Argobots, the paper's best-behaved GLT backend):
//  * A fixed set of *execution streams* (xstreams): OS threads bound to
//    cores. Xstream 0 is the *primary* xstream — the thread that called
//    abt::init — and the calling context becomes the *primary ULT*.
//  * Each xstream owns a lock-free Chase–Lev deque: the owner pushes and
//    pops LIFO at the bottom (cache-warm, work-first), idle xstreams steal
//    FIFO from the top with randomized victim selection. Only *unpinned*
//    units (ult_create / tasklet_create) are stealable; units placed with
//    ult_create_on / tasklet_create_on are pinned and always execute on
//    their target xstream — the exact-placement contract the GLT layer
//    documents and the paper's work-assignment studies (Fig. 7) rely on.
//    Pinned, remote-submitted, and yielded units travel through a
//    per-xstream MPMC side queue that is drained FIFO by its owner only.
//    An optional single shared pool (Config::shared_pool) implements the
//    GLT_SHARED_QUEUES behaviour of §IV-F over the same lock-free MPMC
//    queue, so that ablation measures queue contention, not lock
//    convoying. Config::dispatch (or $ABT_DISPATCH) can select the
//    original mutex-guarded per-xstream FIFO pools ("locked") as a
//    measurable baseline.
//  * Work units are either *ULTs* (own stack, can yield/block) or
//    *tasklets* (stackless, run to completion on the scheduler's stack —
//    natively supported here just as in Argobots, §III-B).
//
// Blocking is cooperative: a ULT joining another suspends itself and is
// re-readied by the finisher, so scheduler threads never block in the
// kernel while work exists.
#pragma once

#include <cstdint>

#include "sched/dispatch.hpp"
#include "sched/metrics.hpp"

namespace glto::abt {

using WorkFn = void (*)(void*);

/// Scheduling-core selection (the ablation axis, resolved from
/// $ABT_DISPATCH when Auto). Shared with qth/mth via sched::Dispatch.
using Dispatch = sched::Dispatch;

struct Config {
  int num_xstreams = 0;      ///< 0 → $ABT_NUM_XSTREAMS or hardware threads
  bool shared_pool = false;  ///< one pool shared by all xstreams
  bool bind_threads = true;  ///< pin xstream i to core i (best-effort)
  Dispatch dispatch = Dispatch::Auto;
};

/// Opaque handle to a ULT or tasklet.
struct WorkUnit;

/// Starts the runtime; the caller becomes the primary ULT on xstream 0.
void init(const Config& cfg = {});

/// Stops all xstreams. Pending work must have been joined already.
void finalize();

[[nodiscard]] bool initialized();
[[nodiscard]] int num_xstreams();

/// Rank of the xstream executing the caller (-1 on foreign threads).
[[nodiscard]] int self_rank();

/// True when the caller runs inside a ULT (including the primary ULT).
[[nodiscard]] bool in_ult();

/// Racy probe: could the calling xstream's scheduler run anything else
/// right now (own pool, main slot on xstream 0, or a steal victim)? Busy-
/// wait loops use it to decide between yielding (work exists — run it)
/// and releasing the core (nothing runnable — spinning would only starve
/// the producers on oversubscribed hosts).
[[nodiscard]] bool maybe_work();

/// Creates a ULT in the deque of the calling xstream (or the shared
/// pool). Unpinned: an idle xstream may steal it.
WorkUnit* ult_create(WorkFn fn, void* arg);

/// Creates a ULT pinned to xstream @p rank (exact placement, never
/// stolen; advisory under a shared pool).
WorkUnit* ult_create_on(int rank, WorkFn fn, void* arg);

/// Creates @p n unpinned ULTs running fn(args[i]) and deposits the whole
/// batch through the scheduling core's bulk path: one queue publication
/// per victim xstream and one targeted wake per victim, instead of n
/// push+wake round-trips. @p spread fans contiguous chunks across
/// xstreams (the single-producer fan-out pattern); otherwise the batch
/// rides the caller's deque and woken thieves rebalance it. Handles are
/// written to @p out[0..n).
void ult_create_bulk(WorkFn fn, void* const* args, int n, WorkUnit** out,
                     bool spread);

/// Creates a stackless tasklet (calling xstream's deque, stealable).
WorkUnit* tasklet_create(WorkFn fn, void* arg);

/// Creates a stackless tasklet pinned to xstream @p rank.
WorkUnit* tasklet_create_on(int rank, WorkFn fn, void* arg);

/// Waits for completion and destroys the work unit.
void join(WorkUnit* wu);

/// Cooperatively yields the calling ULT back to its xstream's scheduler.
void yield();

/// True once @p wu has finished executing (join must still be called).
[[nodiscard]] bool is_done(const WorkUnit* wu);

/// Rank the work unit last executed on (for migration tests).
[[nodiscard]] int executed_on(const WorkUnit* wu);

/// Per-work-unit user pointer ("ULT-local storage"). Runtimes layered on
/// abt (GLTO) hang their per-ULT execution context here; it travels with
/// the ULT across suspensions. On a foreign thread it falls back to a
/// thread-local slot.
[[nodiscard]] void* self_local();
void set_self_local(void* p);

/// Scheduler-behaviour counters live in the shared sched::StatsSnapshot
/// base (every backend runs the same WsCore); only xstream-specific
/// counters are declared here.
struct Stats : sched::StatsSnapshot {
  std::uint64_t ults_created = 0;
  std::uint64_t tasklets_created = 0;
  std::uint64_t yields = 0;
};

/// Dispatch mode the runtime is using (resolves Dispatch::Auto).
[[nodiscard]] Dispatch dispatch_mode();

/// Snapshot of global counters since init().
[[nodiscard]] Stats stats();

}  // namespace glto::abt
