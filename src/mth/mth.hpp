// mth — a MassiveThreads-like lightweight-threading library.
//
// Model (mirrors MassiveThreads 0.95 as used in the paper):
//  * A fixed set of *workers* (OS threads), each owning a Chase–Lev
//    work-stealing deque. **Random work stealing is on by default** — the
//    trait behind GLTO(MTH)'s load-balancing wins (Fig. 13, ≤4 threads)
//    and its stealing-contention losses (Figs. 10–12).
//  * Thread creation is **work-first**: mth::create switches to the child
//    immediately; the parent's *continuation* is published to the worker's
//    deque where idle workers can steal it. This is how MassiveThreads
//    achieves near-Cilk spawn semantics.
//  * Consequently **the main context is a schedulable, stealable item**:
//    after a spawn, main's continuation may be resumed by any worker.
//    This is the §IV-G property that forced the GLTO authors to pin the
//    master thread; Config::pin_main reproduces their modification (main
//    is then only ever resumed by worker 0 and never yields).
//
// join() may migrate the calling strand across OS threads; runtime state
// is always re-read from thread-local storage after a suspension point.
#pragma once

#include <cstdint>

#include "sched/dispatch.hpp"
#include "sched/metrics.hpp"

namespace glto::mth {

using WorkFn = void (*)(void*);

/// Scheduling-core selection (resolved from $MTH_DISPATCH when Auto).
/// Locked mode replaces the Chase–Lev deques with mutex-guarded FIFOs and
/// disables stealing — the ablation baseline; spawns stay work-first.
using Dispatch = sched::Dispatch;

struct Config {
  int num_workers = 0;   ///< 0 → $MTH_NUM_WORKERS or hardware threads
  bool bind_threads = true;
  bool pin_main = false; ///< GLTO §IV-G: main never migrates off worker 0
  bool shared_pool = false;  ///< one pool for all workers (§IV-F ablation)
  Dispatch dispatch = Dispatch::Auto;
};

/// Opaque handle to a user-level thread (strand).
struct Strand;

void init(const Config& cfg = {});
void finalize();
[[nodiscard]] bool initialized();
[[nodiscard]] int num_workers();

/// Worker executing the caller (-1 on foreign threads). May change across
/// any suspension point (spawn/join/yield) — always re-query.
[[nodiscard]] int worker_rank();

[[nodiscard]] bool in_strand();

/// Work-first spawn: switches to the child immediately; the caller's
/// continuation becomes stealable. Returns (on the parent's continuation)
/// the child handle for join().
Strand* create(WorkFn fn, void* arg);

/// Help-first bulk spawn: creates @p n strands running fn(args[i]) and
/// publishes them through the scheduling core's bulk path (one deposit on
/// the caller's deque + targeted wakes) instead of the work-first jump
/// create() performs per child — a single producer fans a burst out
/// without running each child to its first suspension inline. Handles are
/// written to @p out[0..n); everything deposited is stealable.
void create_bulk(WorkFn fn, void* const* args, int n, Strand** out);

/// Waits for @p s and destroys it. The caller may resume on a different
/// worker than it started on.
void join(Strand* s);

/// Yields to other runnable strands (no-op when there is nothing to run).
void yield();

/// Racy probe: could the calling worker's scheduler run anything else
/// right now? See abt::maybe_work for the busy-wait rationale.
[[nodiscard]] bool maybe_work();

[[nodiscard]] bool is_done(const Strand* s);

/// Worker the strand last ran on.
[[nodiscard]] int executed_on(const Strand* s);

/// Per-strand user pointer ("ULT-local storage"); travels with the strand
/// across suspensions *and* steals. Thread-local fallback on foreign
/// threads.
[[nodiscard]] void* self_local();
void set_self_local(void* p);

/// Shared-core scheduler behaviour (steals = successful continuation
/// steals) lives in the sched::StatsSnapshot base, parity with abt/qth;
/// MassiveThreads-specific counters here.
struct Stats : sched::StatsSnapshot {
  std::uint64_t strands_created = 0;
  std::uint64_t main_migrations = 0;  ///< times main resumed off worker 0
};

/// Dispatch mode the runtime is using (resolves Dispatch::Auto).
[[nodiscard]] Dispatch dispatch_mode();

[[nodiscard]] Stats stats();

}  // namespace glto::mth
