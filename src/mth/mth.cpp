#include "mth/mth.hpp"

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/affinity.hpp"
#include "common/cacheline.hpp"
#include "common/debug.hpp"
#include "common/env.hpp"
#include "common/rng.hpp"
#include "common/spin.hpp"
#include "fctx/fcontext.hpp"
#include "fctx/stack_pool.hpp"
#include "sched/freelist.hpp"
#include "sched/sync.hpp"
#include "sched/watchdog.hpp"
#include "sched/ws_core.hpp"

namespace glto::mth {

namespace {

enum class Kind : std::uint8_t { Ult, Main };
enum class Dir : std::uint8_t {
  Resume,   // base loop resumed a strand; carries the base context
  Spawn,    // parent jumped into a fresh child; child publishes parent
  Yield,    // strand wants back in the run queue
  Block,    // strand waits on a join target
  BlockExt, // strand parks on a sched::sync primitive (cb decides)
  Migrate,  // strand asks to be requeued on worker 0's pinned slot
  Done,     // strand finished; clean it up
};

Strand* const kJoinerSentinel = reinterpret_cast<Strand*>(std::uintptr_t(1));

}  // namespace

struct Strand {
  WorkFn fn = nullptr;
  void* arg = nullptr;
  fctx::fcontext_t ctx = nullptr;
  fctx::Stack stack;
  /// ASan bounds of the stack this strand runs on: its pooled stack for
  /// ULTs, the process native stack for Kind::Main.
  fctx::StackRegion stack_region;
  std::atomic<bool> done{false};
  std::atomic<Strand*> joiner{nullptr};
  std::atomic<int> last_rank{-1};
  Kind kind = Kind::Ult;
  void* user_local = nullptr;  ///< see mth::self_local()
};

namespace {

struct SwitchMsg {
  Dir dir;
  Strand* self;    // the strand that produced the message
  Strand* target;  // Spawn: the child; Block: the join target
  /// The strand this jump resumes (set by every jump site that targets a
  /// strand). Only strand_entry reads it: a bulk-created (queued) strand
  /// is first activated from a scheduler loop or another strand's leave(),
  /// where the message describes the *sender* — the entry recovers its own
  /// identity from here instead of a Spawn payload.
  Strand* resumee = nullptr;
  // Dir::BlockExt payload: cb runs after the sender's context is saved;
  // false means the wait condition was already satisfied — re-ready now.
  sched::SuspendCb cb = nullptr;
  void* cb_arg = nullptr;
};

/// Per-worker base-context bookkeeping. The ready queues, freelists, and
/// steal machinery live in the shared sched::WsCore — this is only the
/// fcontext state a work-first scheduler needs on top of it.
struct alignas(common::kCacheLine) Worker {
  fctx::fcontext_t base_ctx = nullptr;  // valid while a strand chain runs
  fctx::Stack base_stack;               // only worker 0 (lazily created)
  fctx::StackRegion base_region;        // ASan bounds of the base stack
};

struct Runtime {
  Config cfg;
  bool ws = true;  ///< resolved dispatch mode (true → work stealing)
  int n = 0;
  std::vector<Worker> workers;
  /// Shared scheduling core. Everything mth schedules is stealable (its
  /// defining trait), so strands go through push_owner; the core's main
  /// slot replaces the old `pinned0` queue for pin_main / Migrate — only
  /// worker 0 pops it.
  std::unique_ptr<sched::WsCore<Strand*>> core;
  std::unique_ptr<sched::Freelist<Strand>> free;
  std::vector<std::thread> threads;

  std::atomic<std::uint64_t> strands_created{0};
  std::atomic<std::uint64_t> main_migrations{0};
  std::uint64_t stack_hits_at_init = 0;
  std::uint64_t watchdog_token = 0;
};

Runtime* g_rt = nullptr;

struct Tls {
  int rank = -1;
  Strand* current = nullptr;
  unsigned tick = 0;  // fair-queue cadence for core pops outside base_loop
  common::FastRng rng{0};
};

thread_local Tls tls;

/// TLS accessor that defeats address caching across context switches:
/// strands migrate between OS threads (work stealing), so code running
/// after a suspension point must re-resolve the thread-local block. See
/// abt::tls_now for the full rationale.
__attribute__((noinline)) Tls& tls_now() {
  asm volatile("");
  return tls;
}

bool use_pinned_path(const Strand* s) {
  return s->kind == Kind::Main && g_rt->cfg.pin_main;
}

/// Makes @p s runnable again. Owner-pushes onto the *current* worker's
/// deque (callers are always on a worker thread), except pinned-main which
/// goes through the core's worker-0-only main slot.
void make_ready(Strand* s) {
  if (use_pinned_path(s)) {
    g_rt->core->push_main(s);
  } else {
    g_rt->core->push_owner(tls.rank, s);
  }
}

void complete(Strand* s) {
  // Order matters: once `done` is visible a joiner may free the strand,
  // so the joiner slot must be claimed first (see abt::complete).
  Strand* j = s->joiner.exchange(kJoinerSentinel, std::memory_order_acq_rel);
  s->done.store(true, std::memory_order_release);
  if (j != nullptr) make_ready(j);
}

/// Handles a non-Resume message delivered by a strand that transferred
/// control to us. Runs on the receiving side (another strand's stack or a
/// worker base loop), after the sender's context is fully saved in t.from.
void process_directive(const SwitchMsg& msg, fctx::fcontext_t from) {
  switch (msg.dir) {
    case Dir::Yield:
      msg.self->ctx = from;
      make_ready(msg.self);
      break;
    case Dir::Migrate:
      msg.self->ctx = from;
      g_rt->core->push_main(msg.self);
      break;
    case Dir::Block: {
      msg.self->ctx = from;
      Strand* target = msg.target;
      Strand* expected = nullptr;
      const bool registered =
          !target->done.load(std::memory_order_acquire) &&
          target->joiner.compare_exchange_strong(expected, msg.self,
                                                 std::memory_order_acq_rel);
      if (!registered) make_ready(msg.self);  // target already finished
      break;
    }
    case Dir::BlockExt:
      // sched::sync park: enqueue under the primitive's lock with a
      // condition re-check (the generic register-or-complete shape).
      msg.self->ctx = from;
      if (!msg.cb(msg.cb_arg, msg.self)) make_ready(msg.self);
      break;
    case Dir::Done:
      fctx::StackPool::global().release(msg.self->stack);
      msg.self->stack = fctx::Stack{};
      complete(msg.self);
      break;
    case Dir::Resume:
    case Dir::Spawn:
      GLTO_CHECK_MSG(false, "unexpected directive");
  }
}

/// Landing routine for a strand that just got control: interprets the
/// incoming transfer and refreshes TLS. Shared by suspend() and entry.
/// noinline: runs right after a context switch, where the strand may be
/// on a different OS thread than its caller's inlined code computed TLS
/// addresses for.
__attribute__((noinline)) void strand_landing(Strand* self,
                                              fctx::transfer_t t) {
  Tls& now = tls_now();
  SwitchMsg in = *static_cast<SwitchMsg*>(t.data);
  if (in.dir == Dir::Resume) {
    // Resumed by a worker base loop: remember how to fall back to it.
    g_rt->workers[static_cast<std::size_t>(now.rank)].base_ctx = t.from;
  } else {
    process_directive(in, t.from);
  }
  now.current = self;
  self->last_rank.store(now.rank, std::memory_order_relaxed);
  if (self->kind == Kind::Main && now.rank != 0) {
    g_rt->main_migrations.fetch_add(1, std::memory_order_relaxed);
  }
}

/// Picks the next runnable strand without idling: worker 0's main slot
/// first, then the shared core's own pool (work-first order), then one
/// randomized steal sweep. Returns nullptr when idle.
Strand* find_next() {
  return g_rt->core->try_next(tls.rank, &tls.tick, tls.rng,
                              /*with_main=*/tls.rank == 0);
}

void base_loop();

void base_entry(fctx::transfer_t t) {
  fctx::asan_enter();
  // Worker 0's base context, created lazily at main's first suspension.
  SwitchMsg in = *static_cast<SwitchMsg*>(t.data);
  process_directive(in, t.from);
  base_loop();
  GLTO_CHECK_MSG(false, "worker base loop exited while suspended main exists");
}

/// Leaves the current strand with @p msg: transfers to the next runnable
/// strand, or to the worker's base loop when idle. For Yield/Block the
/// call returns when the strand is resumed; for Done it never returns.
/// noinline: suspension point (see strand_landing).
__attribute__((noinline)) void leave(SwitchMsg msg) {
  Strand* self = msg.self;
  for (;;) {
    Worker& w = g_rt->workers[static_cast<std::size_t>(tls.rank)];
    fctx::fcontext_t to;
    fctx::StackRegion to_region;
    if (Strand* next = find_next()) {
      to = next->ctx;
      to_region = next->stack_region;
      msg.resumee = next;
    } else if (w.base_ctx != nullptr) {
      to = w.base_ctx;
      to_region = w.base_region;
      w.base_ctx = nullptr;  // one-shot: consumed by this jump
    } else {
      // Worker 0 only: the main OS thread entered the runtime running the
      // main strand, so its base loop does not exist until first needed.
      // (Workers >0 always have a live base: they start in base_loop.)
      GLTO_CHECK(tls.rank == 0 && !w.base_stack.valid());
      fctx::Stack s = fctx::StackPool::global().acquire();
      w.base_stack = s;
      w.base_region = s.region();
      to = fctx::make_fcontext(s.top, s.size, base_entry);
      to_region = w.base_region;
    }
    fctx::transfer_t t = fctx::jump_fcontext_to(
        to, &msg, to_region, /*abandon=*/msg.dir == Dir::Done);
    // Resumed (Yield/Block only; Done strands never come back).
    strand_landing(self, t);
    return;
  }
}

void base_loop() {
  sched::AcquireState st(0x8BADF00DULL +
                         static_cast<std::uint64_t>(tls.rank));
  for (;;) {
    Strand* s = g_rt->core->acquire(tls.rank, st, /*with_main=*/tls.rank == 0);
    if (s == nullptr) break;
    sched::trace_emit(sched::TraceKind::ult_switch,
                      reinterpret_cast<std::uintptr_t>(s));
    SwitchMsg resume{Dir::Resume, nullptr, nullptr, s};
    fctx::transfer_t t =
        fctx::jump_fcontext_to(s->ctx, &resume, s->stack_region);
    // A strand fell back to us with a directive.
    SwitchMsg in = *static_cast<SwitchMsg*>(t.data);
    process_directive(in, t.from);
  }
}

void worker_main(int rank) {
  tls.rank = rank;
  tls.rng = common::FastRng(0x8BADF00D + static_cast<std::uint64_t>(rank));
  // base_loop runs right here, on this worker's native pthread stack.
  g_rt->workers[static_cast<std::size_t>(rank)].base_region =
      fctx::os_thread_stack();
  if (g_rt->cfg.bind_threads) common::bind_self_to_core(rank);
  sched::trace_thread_label("mth", rank);
  base_loop();
}

void strand_entry(fctx::transfer_t t) {
  fctx::asan_enter();
  // First activation. For a work-first spawn t carries the Spawn message
  // and t.from is the parent's freshly saved continuation. A *queued*
  // strand (create_bulk) is instead first activated from a scheduler loop
  // (Resume) or another strand's leave() (any directive): the message
  // describes the sender, and the entry recovers its own identity from
  // msg.resumee — strand_landing handles both shapes.
  SwitchMsg in = *static_cast<SwitchMsg*>(t.data);
  Strand* self;
  if (in.dir == Dir::Spawn) {
    self = in.target;
    Strand* parent = in.self;
    parent->ctx = t.from;
    // Publish the parent's continuation: this is the work-first handoff
    // that makes it stealable by idle workers (MassiveThreads semantics).
    make_ready(parent);
    tls.current = self;
    self->last_rank.store(tls.rank, std::memory_order_relaxed);
  } else {
    self = in.resumee;
    GLTO_CHECK_MSG(self != nullptr, "queued strand resumed without identity");
    strand_landing(self, t);
  }
  self->fn(self->arg);

  SwitchMsg done{Dir::Done, self, nullptr};
  leave(done);
  GLTO_CHECK_MSG(false, "resumed a finished strand");
}

/// Help-first bulk spawn: @p n strands are created *queued* — published
/// through the scheduling core's bulk path (one deposit, targeted wakes)
/// instead of the work-first jump mth::create performs per child. This is
/// what lets a single producer fan a burst out without running each child
/// to its first suspension inline; everything deposited is stealable, as
/// all mth scheduling is.
void create_bulk_impl(WorkFn fn, void* const* args, int n, Strand** out) {
  GLTO_CHECK_MSG(g_rt != nullptr, "mth::init has not been called");
  GLTO_CHECK_MSG(tls.current != nullptr, "mth::create_bulk outside a strand");
  if (n <= 0) return;
  for (int i = 0; i < n; ++i) {
    Strand* child = g_rt->free->try_alloc(tls.rank);
    if (child == nullptr) child = new Strand();
    child->fn = fn;
    child->arg = args[i];
    child->done.store(false, std::memory_order_relaxed);
    child->joiner.store(nullptr, std::memory_order_relaxed);
    child->last_rank.store(-1, std::memory_order_relaxed);
    child->kind = Kind::Ult;
    child->user_local = nullptr;
    child->stack = fctx::StackPool::global().acquire();
    child->ctx = fctx::make_fcontext(child->stack.top, child->stack.size,
                                     strand_entry);
    child->stack_region = child->stack.region();
    out[i] = child;
  }
  g_rt->strands_created.fetch_add(static_cast<std::uint64_t>(n),
                                  std::memory_order_relaxed);
  g_rt->core->submit_bulk(tls.rank, out, static_cast<std::size_t>(n),
                          sched::BulkHint::local);
}

void dump_core_state(void* arg) {
  static_cast<sched::WsCore<Strand*>*>(arg)->dump_state("mth");
}

// ------------------------------------------------- sched::SuspendOps bridge

bool ops_can_suspend() { return g_rt != nullptr && tls.current != nullptr; }

void ops_suspend(sched::SuspendCb cb, void* arg) {
  SwitchMsg m{Dir::BlockExt, tls.current, nullptr};
  m.cb = cb;
  m.cb_arg = arg;
  leave(m);
}

/// Re-deposits a strand a sync-primitive signaller owns. make_ready is
/// wrong here: push_owner assumes a worker-thread caller, but wakers can
/// be foreign OS threads (rank -1) — core->ready routes that through the
/// fair queue instead.
void ops_resume(void* handle) {
  auto* s = static_cast<Strand*>(handle);
  if (use_pinned_path(s)) {
    g_rt->core->push_main(s);
  } else {
    g_rt->core->ready(tls_now().rank, /*home_rank=*/0, /*pinned=*/false,
                      /*fifo=*/false, s);
  }
}

void ops_yield() { yield(); }
bool ops_maybe_work() { return maybe_work(); }

constexpr sched::SuspendOps kSuspendOps{ops_can_suspend, ops_suspend,
                                        ops_resume, ops_yield,
                                        ops_maybe_work};

}  // namespace

void init(const Config& cfg_in) {
  GLTO_CHECK_MSG(g_rt == nullptr, "mth::init called twice");
  // Arm observability even for raw-backend users (no glt:: facade):
  // both resolvers are idempotent, so the facade path pays nothing.
  sched::trace_init_from_env();
  sched::metrics_init_from_env();
  g_rt = new Runtime();
  g_rt->cfg = cfg_in;
  g_rt->cfg.num_workers =
      common::env_worker_count("MTH_NUM_WORKERS", cfg_in.num_workers);
  g_rt->n = g_rt->cfg.num_workers;
  g_rt->ws = sched::resolve_dispatch(g_rt->cfg.dispatch, "MTH_DISPATCH") ==
             Dispatch::WorkStealing;
  g_rt->workers = std::vector<Worker>(static_cast<std::size_t>(g_rt->n));
  sched::WsCoreConfig core_cfg;
  core_cfg.num_workers = g_rt->n;
  core_cfg.shared_pool = g_rt->cfg.shared_pool;
  core_cfg.work_stealing = g_rt->ws;
  core_cfg.deque_capacity = 64;  // continuation chains stay shallow
  g_rt->core = std::make_unique<sched::WsCore<Strand*>>(core_cfg);
  g_rt->free = std::make_unique<sched::Freelist<Strand>>(g_rt->n);
  g_rt->watchdog_token =
      sched::watchdog_register_dumper(dump_core_state, g_rt->core.get());
  g_rt->stack_hits_at_init = fctx::StackPool::global().cache_hits();
  tls.rank = 0;
  tls.tick = 0;
  tls.rng = common::FastRng(0x8BADF00D);
  auto* main_strand = new Strand();
  main_strand->kind = Kind::Main;
  main_strand->stack_region = fctx::os_thread_stack();
  tls.current = main_strand;
  if (g_rt->cfg.bind_threads) common::bind_self_to_core(0);
  sched::register_suspend_ops(&kSuspendOps);
  for (int r = 1; r < g_rt->n; ++r) {
    g_rt->threads.emplace_back(worker_main, r);
  }
}

void finalize() {
  GLTO_CHECK_MSG(g_rt != nullptr, "mth::finalize without init");
  Strand* self = tls.current;
  GLTO_CHECK_MSG(self != nullptr && self->kind == Kind::Main,
                 "finalize must run on the main strand");
  // Main may have been stolen; ride the main slot back to worker 0's OS
  // thread (the original main thread) so joining the workers is safe.
  if (tls.rank != 0) {
    SwitchMsg m{Dir::Migrate, self, nullptr};
    leave(m);
    GLTO_CHECK(tls.rank == 0);
  }
  sched::unregister_suspend_ops(&kSuspendOps);
  sched::watchdog_unregister_dumper(g_rt->watchdog_token);
  g_rt->core->request_shutdown();
  for (auto& th : g_rt->threads) th.join();
  fctx::StackPool::global().release(g_rt->workers[0].base_stack);
  delete self;
  tls = Tls{};
  delete g_rt;  // Freelist dtor frees all recycled Strand records
  g_rt = nullptr;
}

bool initialized() { return g_rt != nullptr; }

int num_workers() { return g_rt ? g_rt->n : 0; }

int worker_rank() { return tls.rank; }

bool in_strand() { return tls.current != nullptr; }

bool maybe_work() {
  if (g_rt == nullptr || tls.rank < 0) return false;
  return g_rt->core->maybe_work(tls.rank, tls.rank == 0);
}

Dispatch dispatch_mode() {
  if (g_rt == nullptr) return Dispatch::Auto;
  return g_rt->ws ? Dispatch::WorkStealing : Dispatch::Locked;
}

Strand* create(WorkFn fn, void* arg) {
  GLTO_CHECK_MSG(g_rt != nullptr, "mth::init has not been called");
  Strand* parent = tls.current;
  GLTO_CHECK_MSG(parent != nullptr, "mth::create outside a strand");
  Strand* child = g_rt->free->try_alloc(tls.rank);
  if (child == nullptr) child = new Strand();
  child->fn = fn;
  child->arg = arg;
  child->done.store(false, std::memory_order_relaxed);
  child->joiner.store(nullptr, std::memory_order_relaxed);
  child->last_rank.store(-1, std::memory_order_relaxed);
  child->kind = Kind::Ult;
  child->user_local = nullptr;
  child->stack = fctx::StackPool::global().acquire();
  child->ctx =
      fctx::make_fcontext(child->stack.top, child->stack.size, strand_entry);
  child->stack_region = child->stack.region();
  g_rt->strands_created.fetch_add(1, std::memory_order_relaxed);

  // Work-first: run the child NOW; our continuation is published by the
  // child (after this context is saved) and may be stolen meanwhile —
  // strand_landing (noinline) re-resolves TLS on whatever OS thread
  // resumes us.
  SwitchMsg spawn{Dir::Spawn, parent, child};
  fctx::transfer_t t =
      fctx::jump_fcontext_to(child->ctx, &spawn, child->stack_region);
  strand_landing(parent, t);
  return child;
}

void create_bulk(WorkFn fn, void* const* args, int n, Strand** out) {
  create_bulk_impl(fn, args, n, out);
}

void join(Strand* s) {
  GLTO_CHECK(s != nullptr);
  Strand* self = tls.current;
  if (self == nullptr) {
    common::spin_until(
        [&] { return s->done.load(std::memory_order_acquire); });
  } else {
    while (!s->done.load(std::memory_order_acquire)) {
      SwitchMsg m{Dir::Block, self, s};
      leave(m);
    }
  }
  // Recycle through the shared freelist; the joiner may have migrated
  // across OS threads above, so the rank is re-resolved (tls_now).
  if (g_rt == nullptr) {
    delete s;
    return;
  }
  g_rt->free->recycle(tls_now().rank, s);
}

void yield() {
  Strand* self = tls.current;
  if (self == nullptr) return;
  // Cheap check: with nothing else runnable, yielding is a no-op.
  if (!g_rt->core->maybe_work(tls.rank, /*with_main=*/tls.rank == 0)) return;
  SwitchMsg m{Dir::Yield, self, nullptr};
  leave(m);
}

bool is_done(const Strand* s) {
  return s->done.load(std::memory_order_acquire);
}

int executed_on(const Strand* s) {
  return s->last_rank.load(std::memory_order_relaxed);
}

namespace {
thread_local void* g_foreign_local = nullptr;
}

void* self_local() {
  return tls.current != nullptr ? tls.current->user_local : g_foreign_local;
}

void set_self_local(void* p) {
  if (tls.current != nullptr) {
    tls.current->user_local = p;
  } else {
    g_foreign_local = p;
  }
}

Stats stats() {
  Stats s;
  if (g_rt != nullptr) {
    s.strands_created = g_rt->strands_created.load(std::memory_order_relaxed);
    s.main_migrations =
        g_rt->main_migrations.load(std::memory_order_relaxed);
    s.assign_core(g_rt->core->stats());
    s.stack_cache_hits =
        fctx::StackPool::global().cache_hits() - g_rt->stack_hits_at_init;
  }
  return s;
}

}  // namespace glto::mth
