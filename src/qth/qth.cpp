#include "qth/qth.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/affinity.hpp"
#include "common/cacheline.hpp"
#include "common/debug.hpp"
#include "common/env.hpp"
#include "common/spin.hpp"
#include "fctx/fcontext.hpp"
#include "fctx/stack_pool.hpp"
#include "sched/freelist.hpp"
#include "sched/sync.hpp"
#include "sched/watchdog.hpp"
#include "sched/ws_core.hpp"

namespace glto::qth {

namespace {

enum class Kind : std::uint8_t { Qthread, Main };
enum class Dir : std::uint8_t { Resume, Yield, BlockFeb, BlockExt, Done };
enum class FebOp : std::uint8_t { ReadFF, ReadFE, WriteEF };

struct Thread {
  QthFn fn = nullptr;
  void* arg = nullptr;
  aligned_t* ret = nullptr;
  fctx::fcontext_t ctx = nullptr;
  fctx::Stack stack;
  /// ASan bounds of the stack this thread runs on: its pooled stack for
  /// qthreads, the process native stack for Kind::Main.
  fctx::StackRegion stack_region;
  int home_shep = 0;
  Kind kind = Kind::Qthread;
  bool pinned = false;  ///< fork_to: exact placement, never stolen
  void* user_local = nullptr;  ///< see qth::self_local()
};

/// A qthread parked on a FEB word.
struct Waiter {
  Thread* th;
  FebOp op;
  aligned_t* dst;  // ReadFF / ReadFE destination
  aligned_t val;   // WriteEF value
};

/// Per-word full/empty state. A word with no table entry is *full* with no
/// waiters (Qthreads' default: all memory starts full).
struct FebEntry {
  bool full = true;
  std::deque<Waiter> waiters;
};

struct FebBucket {
  common::SpinLock lock;
  std::unordered_map<std::uintptr_t, FebEntry> words;
};

constexpr std::size_t kFebBuckets = 64;

struct SwitchMsg {
  Dir dir;
  Thread* self;
  // BlockFeb payload:
  FebOp op;
  aligned_t* addr;
  aligned_t* dst;
  aligned_t val;
  // BlockExt payload (sched::sync primitives): cb runs on the scheduler
  // after the context is saved; false means the condition was already
  // satisfied and the thread must be re-readied.
  sched::SuspendCb cb = nullptr;
  void* cb_arg = nullptr;
};

struct Runtime {
  Config cfg;
  bool ws = true;  ///< resolved dispatch mode (true → work stealing)
  int n = 0;
  /// Shared scheduling core (same engine as abt/mth). The main context
  /// travels through the core's main slot: only shepherd 0 — whose
  /// scheduler runs on the main OS thread — ever resumes it, so finalize
  /// always executes where init did.
  std::unique_ptr<sched::WsCore<Thread*>> core;
  std::unique_ptr<sched::Freelist<Thread>> free;
  std::vector<std::thread> workers;
  std::atomic<std::uint64_t> rr_next{0};
  fctx::Stack primary_sched_stack;
  std::uint64_t watchdog_token = 0;
  FebBucket feb[kFebBuckets];

  std::atomic<std::uint64_t> threads_created{0};
  std::atomic<std::uint64_t> feb_ops{0};
  std::atomic<std::uint64_t> feb_blocks{0};
  std::uint64_t stack_hits_at_init = 0;
};

Runtime* g_rt = nullptr;

struct Tls {
  int rank = -1;
  Thread* current = nullptr;
  fctx::fcontext_t sched_ctx = nullptr;
  fctx::StackRegion sched_stack;  // ASan bounds of the scheduler's stack
  Thread* main_thread = nullptr;
};

thread_local Tls tls;

/// TLS accessor that defeats address caching across context switches: with
/// work stealing a blocked qthread can be woken onto another shepherd's
/// deque and resume on a different OS thread, so any code that touches
/// `tls` after a suspension point must recompute the thread-local address
/// (see abt::tls_now for the full rationale).
__attribute__((noinline)) Tls& tls_now() {
  asm volatile("");
  return tls;
}

FebBucket& bucket_for(const aligned_t* addr) {
  const auto p = reinterpret_cast<std::uintptr_t>(addr);
  // Mix the address so neighbouring words spread across buckets.
  return g_rt->feb[(p >> 3) * 0x9e3779b97f4a7c15ULL >> 58 & (kFebBuckets - 1)];
}

/// Makes @p th runnable. The main context goes to the core's main slot;
/// a woken unpinned qthread lands on the waker's own deque (cache-warm,
/// stealable), pinned ones return to their home shepherd's fair queue.
/// @p fifo routes through the fair queue instead (yields — a yielding
/// qthread must not immediately preempt deque work). The caller's rank is
/// resolved via tls_now(): wake paths (writeF from qthread_entry) can run
/// after the calling qthread migrated OS threads, and an inlined copy
/// could otherwise reuse a pre-switch TLS address — a stale rank here
/// would owner-push onto another shepherd's single-producer deque.
void push_ready(Thread* th, bool fifo) {
  if (th->kind == Kind::Main) {
    g_rt->core->push_main(th);
  } else {
    g_rt->core->ready(tls_now().rank, th->home_shep, th->pinned, fifo, th);
  }
}

/// Satisfies as many waiters as the word's state allows, FIFO-fair.
/// Must be called with the bucket lock held; readied threads are collected
/// into @p wake and pushed after the lock is dropped.
void drain_waiters(FebEntry& e, aligned_t* addr, std::vector<Thread*>& wake) {
  while (!e.waiters.empty()) {
    Waiter& w = e.waiters.front();
    bool satisfied = false;
    switch (w.op) {
      case FebOp::ReadFF:
        if (e.full) {
          if (w.dst != nullptr) *w.dst = *addr;
          satisfied = true;
        }
        break;
      case FebOp::ReadFE:
        if (e.full) {
          if (w.dst != nullptr) *w.dst = *addr;
          e.full = false;
          satisfied = true;
        }
        break;
      case FebOp::WriteEF:
        if (!e.full) {
          *addr = w.val;
          e.full = true;
          satisfied = true;
        }
        break;
    }
    if (!satisfied) break;  // FIFO fairness: do not overtake a blocked head
    wake.push_back(w.th);
    e.waiters.pop_front();
  }
}

/// Attempts a FEB operation immediately. Returns true when it completed;
/// false when the caller must block. Never blocks itself.
bool feb_try(FebOp op, aligned_t* addr, aligned_t* dst, aligned_t val) {
  FebBucket& b = bucket_for(addr);
  g_rt->feb_ops.fetch_add(1, std::memory_order_relaxed);
  std::vector<Thread*> wake;
  bool done = false;
  {
    common::SpinGuard g(b.lock);
    auto it = b.words.find(reinterpret_cast<std::uintptr_t>(addr));
    const bool full = it == b.words.end() ? true : it->second.full;
    switch (op) {
      case FebOp::ReadFF:
        if (full) {
          if (dst != nullptr) *dst = *addr;
          done = true;
        }
        break;
      case FebOp::ReadFE:
        if (full) {
          if (dst != nullptr) *dst = *addr;
          auto& e = it == b.words.end()
                        ? b.words[reinterpret_cast<std::uintptr_t>(addr)]
                        : it->second;
          e.full = false;
          // Emptying may unblock a pending writeEF (and transitively more).
          drain_waiters(e, addr, wake);
          done = true;
        }
        break;
      case FebOp::WriteEF:
        if (!full) {
          *addr = val;
          it->second.full = true;
          drain_waiters(it->second, addr, wake);
          done = true;
        }
        break;
    }
  }
  for (Thread* th : wake) push_ready(th, /*fifo=*/false);
  return done;
}

/// Registers @p th as a waiter — used by the scheduler after the thread's
/// context is fully saved. Re-checks the condition under the lock; returns
/// true if the op completed instead (thread must be re-readied).
bool feb_register_or_complete(Thread* th, FebOp op, aligned_t* addr,
                              aligned_t* dst, aligned_t val) {
  FebBucket& b = bucket_for(addr);
  g_rt->feb_ops.fetch_add(1, std::memory_order_relaxed);
  std::vector<Thread*> wake;
  bool completed = false;
  {
    common::SpinGuard g(b.lock);
    auto& e = b.words[reinterpret_cast<std::uintptr_t>(addr)];
    switch (op) {
      case FebOp::ReadFF:
        if (e.full) {
          if (dst != nullptr) *dst = *addr;
          completed = true;
        }
        break;
      case FebOp::ReadFE:
        if (e.full) {
          if (dst != nullptr) *dst = *addr;
          e.full = false;
          drain_waiters(e, addr, wake);
          completed = true;
        }
        break;
      case FebOp::WriteEF:
        if (!e.full) {
          *addr = val;
          e.full = true;
          drain_waiters(e, addr, wake);
          completed = true;
        }
        break;
    }
    if (!completed) {
      e.waiters.push_back(Waiter{th, op, dst, val});
      g_rt->feb_blocks.fetch_add(1, std::memory_order_relaxed);
    }
  }
  for (Thread* t : wake) push_ready(t, /*fifo=*/false);
  return completed;
}

void set_feb_state(aligned_t* addr, bool full) {
  FebBucket& b = bucket_for(addr);
  g_rt->feb_ops.fetch_add(1, std::memory_order_relaxed);
  std::vector<Thread*> wake;
  {
    common::SpinGuard g(b.lock);
    auto& e = b.words[reinterpret_cast<std::uintptr_t>(addr)];
    e.full = full;
    drain_waiters(e, addr, wake);
    if (e.full && e.waiters.empty()) {
      // Full with nobody waiting == default state; reclaim the entry.
      b.words.erase(reinterpret_cast<std::uintptr_t>(addr));
    }
  }
  for (Thread* t : wake) push_ready(t, /*fifo=*/false);
}

void process_directive(fctx::transfer_t t) {
  SwitchMsg msg = *static_cast<SwitchMsg*>(t.data);
  msg.self->ctx = t.from;
  switch (msg.dir) {
    case Dir::Yield:
      push_ready(msg.self, /*fifo=*/true);
      break;
    case Dir::BlockFeb:
      if (feb_register_or_complete(msg.self, msg.op, msg.addr, msg.dst,
                                   msg.val)) {
        push_ready(msg.self, /*fifo=*/false);
      }
      break;
    case Dir::BlockExt:
      // sched::sync park; the cb is the register-or-complete of the
      // generic primitives (enqueue under the primitive's lock with a
      // condition re-check, exactly the BlockFeb shape above).
      if (!msg.cb(msg.cb_arg, msg.self)) {
        push_ready(msg.self, /*fifo=*/false);
      }
      break;
    case Dir::Done: {
      Thread* th = msg.self;
      fctx::StackPool::global().release(th->stack);
      th->stack = fctx::Stack{};
      // Qthreads are auto-freed (joins go through the ret FEB); the record
      // is recycled through the shared freelist instead of the seed's
      // delete — schedulers never migrate, so tls.rank is stable here.
      g_rt->free->recycle(tls.rank, th);
      break;
    }
    case Dir::Resume:
      GLTO_CHECK_MSG(false, "Resume is never sent to a scheduler");
  }
}

void run_thread(Thread* th) {
  sched::trace_emit(sched::TraceKind::ult_switch,
                    reinterpret_cast<std::uintptr_t>(th));
  tls.current = th;
  SwitchMsg resume{Dir::Resume, th, FebOp::ReadFF, nullptr, nullptr, 0};
  fctx::transfer_t t = fctx::jump_fcontext_to(th->ctx, &resume,
                                              th->stack_region);
  tls.current = nullptr;
  process_directive(t);
}

/// Scheduler loop over the shared core: drains this shepherd's pool,
/// steals when idle, parks when there is nothing to steal. Shepherd 0
/// additionally serves the main slot.
void sched_loop() {
  const bool primary = tls.rank == 0;
  sched::AcquireState st(0x517cc1b727220a95ULL +
                         static_cast<std::uint64_t>(tls.rank));
  for (;;) {
    Thread* th = g_rt->core->acquire(tls.rank, st, primary);
    if (th == nullptr) break;
    run_thread(th);
  }
}

void worker_main(int rank) {
  tls.rank = rank;
  tls.sched_stack = fctx::os_thread_stack();  // sched_loop runs right here
  if (g_rt->cfg.bind_threads) common::bind_self_to_core(rank);
  sched::trace_thread_label("qth", rank);
  sched_loop();
}

void primary_sched_entry(fctx::transfer_t t) {
  fctx::asan_enter();
  process_directive(t);
  sched_loop();
  GLTO_CHECK_MSG(false, "primary scheduler exited while runtime is alive");
}

/// Suspends the calling qthread with the given directive; returns when
/// resumed. noinline: callers loop around this, and an inlined copy would
/// let the compiler reuse a pre-switch TLS address after the qthread
/// migrated to another OS thread (a steal while FEB-blocked).
__attribute__((noinline)) void suspend(SwitchMsg msg) {
  Thread* self = tls.current;
  GLTO_CHECK_MSG(self != nullptr, "qth: blocking op on a foreign thread");
  if (tls.sched_ctx == nullptr) {
    GLTO_CHECK(self->kind == Kind::Main);
    fctx::Stack s = fctx::StackPool::global().acquire();
    g_rt->primary_sched_stack = s;
    tls.sched_ctx = fctx::make_fcontext(s.top, s.size, primary_sched_entry);
    tls.sched_stack = s.region();
  }
  msg.self = self;
  fctx::transfer_t t =
      fctx::jump_fcontext_to(tls.sched_ctx, &msg, tls.sched_stack);
  // Resumed — possibly on a *different OS thread*: the thread-local block
  // must be re-resolved, never reused.
  Tls& now = tls_now();
  now.sched_ctx = t.from;
  now.current = self;
}

void qthread_entry(fctx::transfer_t t) {
  fctx::asan_enter();
  SwitchMsg in = *static_cast<SwitchMsg*>(t.data);
  Thread* self = in.self;
  tls.sched_ctx = t.from;
  tls.current = self;
  const aligned_t result = self->fn(self->arg);
  if (self->ret != nullptr) writeF(self->ret, result);
  // fn (or writeF's FEB op) may have suspended and resumed on a different
  // OS thread: resolve the CURRENT thread's scheduler context.
  SwitchMsg done{Dir::Done, self, FebOp::ReadFF, nullptr, nullptr, 0};
  Tls& now = tls_now();
  fctx::jump_fcontext_to(now.sched_ctx, &done, now.sched_stack,
                         /*abandon=*/true);
  GLTO_CHECK_MSG(false, "resumed a finished qthread");
}

void dump_core_state(void* arg) {
  static_cast<sched::WsCore<Thread*>*>(arg)->dump_state("qth");
}

// ------------------------------------------------- sched::SuspendOps bridge

bool ops_can_suspend() { return g_rt != nullptr && tls.current != nullptr; }

void ops_suspend(sched::SuspendCb cb, void* arg) {
  SwitchMsg msg{Dir::BlockExt, nullptr, FebOp::ReadFF, nullptr, nullptr, 0,
                cb, arg};
  suspend(msg);
}

void ops_resume(void* handle) {
  push_ready(static_cast<Thread*>(handle), /*fifo=*/false);
}

void ops_yield() { yield(); }
bool ops_maybe_work() { return maybe_work(); }

constexpr sched::SuspendOps kSuspendOps{ops_can_suspend, ops_suspend,
                                        ops_resume, ops_yield,
                                        ops_maybe_work};

}  // namespace

void init(const Config& cfg_in) {
  GLTO_CHECK_MSG(g_rt == nullptr, "qth::init called twice");
  // Arm observability even for raw-backend users (no glt:: facade):
  // both resolvers are idempotent, so the facade path pays nothing.
  sched::trace_init_from_env();
  sched::metrics_init_from_env();
  g_rt = new Runtime();
  g_rt->cfg = cfg_in;
  g_rt->cfg.num_shepherds =
      common::env_worker_count("QTH_NUM_SHEPHERDS", cfg_in.num_shepherds);
  g_rt->n = g_rt->cfg.num_shepherds;
  g_rt->ws = sched::resolve_dispatch(g_rt->cfg.dispatch, "QTH_DISPATCH") ==
             Dispatch::WorkStealing;
  sched::WsCoreConfig core_cfg;
  core_cfg.num_workers = g_rt->n;
  core_cfg.shared_pool = g_rt->cfg.shared_pool;
  core_cfg.work_stealing = g_rt->ws;
  g_rt->core = std::make_unique<sched::WsCore<Thread*>>(core_cfg);
  g_rt->free = std::make_unique<sched::Freelist<Thread>>(g_rt->n);
  g_rt->watchdog_token =
      sched::watchdog_register_dumper(dump_core_state, g_rt->core.get());
  g_rt->stack_hits_at_init = fctx::StackPool::global().cache_hits();
  tls.rank = 0;
  tls.sched_ctx = nullptr;
  auto* main_th = new Thread();
  main_th->kind = Kind::Main;
  main_th->stack_region = fctx::os_thread_stack();
  main_th->home_shep = 0;
  main_th->pinned = true;
  tls.main_thread = main_th;
  tls.current = main_th;
  if (g_rt->cfg.bind_threads) common::bind_self_to_core(0);
  sched::register_suspend_ops(&kSuspendOps);
  for (int r = 1; r < g_rt->n; ++r) {
    g_rt->workers.emplace_back(worker_main, r);
  }
}

void finalize() {
  GLTO_CHECK_MSG(g_rt != nullptr, "qth::finalize without init");
  GLTO_CHECK_MSG(tls.current == tls.main_thread,
                 "finalize must run on the main context");
  sched::unregister_suspend_ops(&kSuspendOps);
  sched::watchdog_unregister_dumper(g_rt->watchdog_token);
  g_rt->core->request_shutdown();
  for (auto& w : g_rt->workers) w.join();
  fctx::StackPool::global().release(g_rt->primary_sched_stack);
  delete tls.main_thread;
  tls = Tls{};
  delete g_rt;  // Freelist dtor frees all recycled Thread records
  g_rt = nullptr;
}

bool initialized() { return g_rt != nullptr; }

int num_shepherds() { return g_rt ? g_rt->n : 0; }

int shep_rank() { return tls.rank; }

bool in_qthread() { return tls.current != nullptr; }

bool maybe_work() {
  if (g_rt == nullptr || tls.rank < 0) return false;
  return g_rt->core->maybe_work(tls.rank, tls.rank == 0);
}

Dispatch dispatch_mode() {
  if (g_rt == nullptr) return Dispatch::Auto;
  return g_rt->ws ? Dispatch::WorkStealing : Dispatch::Locked;
}

namespace {

void fork_impl(int shep, bool pinned, QthFn fn, void* arg, aligned_t* ret) {
  GLTO_CHECK_MSG(g_rt != nullptr, "qth::init has not been called");
  GLTO_CHECK(shep >= 0 && shep < g_rt->n);
  if (ret != nullptr) feb_empty(ret);
  Thread* th = g_rt->free->try_alloc(tls.rank);
  if (th == nullptr) th = new Thread();
  th->fn = fn;
  th->arg = arg;
  th->ret = ret;
  th->ctx = nullptr;
  th->home_shep = shep;
  th->kind = Kind::Qthread;
  th->pinned = pinned;
  th->user_local = nullptr;
  th->stack = fctx::StackPool::global().acquire();
  th->ctx = fctx::make_fcontext(th->stack.top, th->stack.size, qthread_entry);
  th->stack_region = th->stack.region();
  g_rt->threads_created.fetch_add(1, std::memory_order_relaxed);
  g_rt->core->submit(tls.rank, shep, pinned, th);
}

}  // namespace

void fork_to(int shep, QthFn fn, void* arg, aligned_t* ret) {
  fork_impl(shep, /*pinned=*/true, fn, arg, ret);
}

void fork_bulk(QthFn fn, void* const* args, aligned_t* const* rets, int n,
               bool spread) {
  GLTO_CHECK_MSG(g_rt != nullptr, "qth::init has not been called");
  if (n <= 0) return;
  // Batch sized for the stack: deposits beyond it publish in waves, each
  // with its own per-victim wakes — still one wake per victim per wave.
  constexpr int kWave = 256;
  Thread* wave[kWave];
  int done = 0;
  while (done < n) {
    const int take = std::min(kWave, n - done);
    for (int i = 0; i < take; ++i) {
      aligned_t* ret = rets != nullptr ? rets[done + i] : nullptr;
      if (ret != nullptr) feb_empty(ret);
      Thread* th = g_rt->free->try_alloc(tls.rank);
      if (th == nullptr) th = new Thread();
      th->fn = fn;
      th->arg = args[done + i];
      th->ret = ret;
      th->ctx = nullptr;
      th->home_shep = tls.rank >= 0 ? tls.rank : 0;
      th->kind = Kind::Qthread;
      th->pinned = false;
      th->user_local = nullptr;
      th->stack = fctx::StackPool::global().acquire();
      th->ctx =
          fctx::make_fcontext(th->stack.top, th->stack.size, qthread_entry);
      th->stack_region = th->stack.region();
      wave[i] = th;
    }
    g_rt->threads_created.fetch_add(static_cast<std::uint64_t>(take),
                                    std::memory_order_relaxed);
    g_rt->core->submit_bulk(
        tls.rank, wave, static_cast<std::size_t>(take),
        spread ? sched::BulkHint::spread : sched::BulkHint::local);
    done += take;
  }
}

void fork(QthFn fn, void* arg, aligned_t* ret) {
  // Work stealing: a fork from a shepherd is run-local — it lands on the
  // caller's deque where idle shepherds steal it (load balance without
  // the seed's blind scatter). Foreign threads, and every fork in locked
  // mode, keep the seed's round-robin placement.
  if (g_rt->ws && tls.rank >= 0) {
    fork_impl(tls.rank, /*pinned=*/false, fn, arg, ret);
    return;
  }
  const auto next = g_rt->rr_next.fetch_add(1, std::memory_order_relaxed);
  fork_impl(static_cast<int>(next % static_cast<std::uint64_t>(g_rt->n)),
            /*pinned=*/false, fn, arg, ret);
}

void yield() {
  if (tls.current == nullptr) return;
  SwitchMsg msg{Dir::Yield, nullptr, FebOp::ReadFF, nullptr, nullptr, 0};
  suspend(msg);
}

void feb_empty(aligned_t* addr) { set_feb_state(addr, false); }

void feb_fill(aligned_t* addr) { set_feb_state(addr, true); }

bool feb_is_full(aligned_t* addr) {
  FebBucket& b = bucket_for(addr);
  g_rt->feb_ops.fetch_add(1, std::memory_order_relaxed);
  common::SpinGuard g(b.lock);
  auto it = b.words.find(reinterpret_cast<std::uintptr_t>(addr));
  return it == b.words.end() ? true : it->second.full;
}

namespace {

void feb_op_blocking(FebOp op, aligned_t* addr, aligned_t* dst, aligned_t val) {
  if (feb_try(op, addr, dst, val)) return;
  if (tls.current == nullptr) {
    // Foreign OS thread: spin politely until the fast path succeeds.
    common::spin_until([&] { return feb_try(op, addr, dst, val); });
    return;
  }
  SwitchMsg msg{Dir::BlockFeb, nullptr, op, addr, dst, val};
  suspend(msg);
  // The scheduler performed (or registered) the op; when we resume it has
  // been satisfied by drain_waiters — nothing left to do.
}

}  // namespace

void readFF(aligned_t* dst, aligned_t* src) {
  feb_op_blocking(FebOp::ReadFF, src, dst, 0);
}

void readFE(aligned_t* dst, aligned_t* src) {
  feb_op_blocking(FebOp::ReadFE, src, dst, 0);
}

void writeEF(aligned_t* dst, aligned_t val) {
  feb_op_blocking(FebOp::WriteEF, dst, nullptr, val);
}

void writeF(aligned_t* dst, aligned_t val) {
  FebBucket& b = bucket_for(dst);
  g_rt->feb_ops.fetch_add(1, std::memory_order_relaxed);
  std::vector<Thread*> wake;
  {
    common::SpinGuard g(b.lock);
    auto& e = b.words[reinterpret_cast<std::uintptr_t>(dst)];
    *dst = val;
    e.full = true;
    drain_waiters(e, dst, wake);
    if (e.waiters.empty()) {
      b.words.erase(reinterpret_cast<std::uintptr_t>(dst));
    }
  }
  for (Thread* t : wake) push_ready(t, /*fifo=*/false);
}

namespace {
thread_local void* g_foreign_local = nullptr;
}

void* self_local() {
  return tls.current != nullptr ? tls.current->user_local : g_foreign_local;
}

void set_self_local(void* p) {
  if (tls.current != nullptr) {
    tls.current->user_local = p;
  } else {
    g_foreign_local = p;
  }
}

Stats stats() {
  Stats s;
  if (g_rt != nullptr) {
    s.threads_created = g_rt->threads_created.load(std::memory_order_relaxed);
    s.feb_ops = g_rt->feb_ops.load(std::memory_order_relaxed);
    s.feb_blocks = g_rt->feb_blocks.load(std::memory_order_relaxed);
    s.assign_core(g_rt->core->stats());
    s.stack_cache_hits =
        fctx::StackPool::global().cache_hits() - g_rt->stack_hits_at_init;
  }
  return s;
}

struct Sinc {
  std::atomic<std::uint64_t> remaining{0};
  aligned_t done_word = 0;  // FEB-empty until the last submission
};

Sinc* sinc_create(std::uint64_t expect) {
  auto* s = new Sinc();
  s->remaining.store(expect, std::memory_order_relaxed);
  if (expect > 0) {
    feb_empty(&s->done_word);
  } else {
    s->done_word = 1;  // trivially complete (word full by default)
  }
  return s;
}

void sinc_submit(Sinc* s) {
  GLTO_CHECK_MSG(s->remaining.load(std::memory_order_relaxed) > 0,
                 "sinc_submit beyond the expected count");
  if (s->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    writeF(&s->done_word, 1);  // last submitter signals through the FEB
  }
}

void sinc_wait(Sinc* s) {
  aligned_t sink = 0;
  readFF(&sink, &s->done_word);
}

void sinc_destroy(Sinc* s) { delete s; }

}  // namespace glto::qth
