// qth — a Qthreads-like lightweight-threading library.
//
// Model (mirrors Qthreads 1.10 as used in the paper):
//  * A fixed set of *shepherds*: OS threads, each owning a work queue.
//    Since the dispatch-parity PR the shepherds run on the shared
//    work-stealing core (sched::WsCore): a plain fork() from a shepherd
//    lands on the caller's Chase–Lev deque where idle shepherds steal it,
//    while fork_to() stays exact (owner-only fair queue, never stolen).
//    $QTH_DISPATCH=locked restores the seed behaviour — round-robin
//    scatter over mutex-guarded FIFOs with no stealing, the configuration
//    whose task-migration failures the paper's Table I reports — as a
//    measurable ablation baseline.
//  * The signature synchronization primitive is the **FEB** (full/empty
//    bit): every aligned 64-bit word can be read/written with blocking
//    full/empty semantics (readFF, readFE, writeEF, writeF). FEB state
//    lives in a central hash table whose buckets are protected by striped
//    locks — Qthreads "protects all memory words with mutex regions",
//    which is the contention source the paper measures in Figs. 4/5 and
//    the rising QTH curves of Figs. 10–13.
//  * Every qthread's completion is itself signalled through a FEB on its
//    return word, so *all* join traffic funnels through the word-lock
//    table, faithfully reproducing that cost model.
//
// Thread handles: fork() returns immediately; completion is observed via
// the caller-owned return word (readFF). The runtime frees thread records
// automatically after completion.
#pragma once

#include <cstdint>

#include "sched/dispatch.hpp"
#include "sched/metrics.hpp"

namespace glto::qth {

/// The only word size FEB operations apply to (Qthreads' aligned_t).
using aligned_t = std::uint64_t;

using QthFn = aligned_t (*)(void*);

/// Scheduling-core selection (resolved from $QTH_DISPATCH when Auto).
using Dispatch = sched::Dispatch;

struct Config {
  int num_shepherds = 0;  ///< 0 → $QTH_NUM_SHEPHERDS or hardware threads
  bool bind_threads = true;
  bool shared_pool = false;  ///< one pool for all shepherds (§IV-F ablation)
  Dispatch dispatch = Dispatch::Auto;
};

void init(const Config& cfg = {});
void finalize();
[[nodiscard]] bool initialized();
[[nodiscard]] int num_shepherds();

/// Shepherd executing the caller (-1 on foreign threads).
[[nodiscard]] int shep_rank();

/// True when the caller runs inside a qthread (including the main thread,
/// which becomes a schedulable context on first blocking op).
[[nodiscard]] bool in_qthread();

/// Racy probe: could the calling shepherd's scheduler run anything else
/// right now? See abt::maybe_work for the busy-wait rationale.
[[nodiscard]] bool maybe_work();

/// Spawns a qthread. Under work stealing a fork from a shepherd lands on
/// the caller's own deque (run-local, stealable by idle shepherds); forks
/// from foreign threads — and every fork in locked mode — scatter
/// round-robin as the seed did. If @p ret is non-null it is emptied now
/// and filled with fn's return value on completion, so readFF(ret) is the
/// join operation.
void fork(QthFn fn, void* arg, aligned_t* ret);

/// Spawns @p n qthreads running fn(args[i]) (return word rets[i], may be
/// null) and deposits the whole batch through the scheduling core's bulk
/// path: one queue publication per victim shepherd and one targeted wake
/// per victim, instead of n fork+wake round-trips. @p spread fans
/// contiguous chunks across shepherds (producer fan-out); otherwise the
/// batch rides the caller's deque and woken shepherds steal it. In locked
/// mode the batch round-robins over the seed FIFOs like plain forks.
void fork_bulk(QthFn fn, void* const* args, aligned_t* const* rets, int n,
               bool spread);

/// Spawns a qthread on shepherd @p shep (exact placement: the qthread is
/// pinned and never stolen; advisory under a shared pool).
void fork_to(int shep, QthFn fn, void* arg, aligned_t* ret);

/// Cooperative yield to the shepherd's scheduler.
void yield();

// --- FEB operations (all block cooperatively) ---------------------------

/// Marks @p addr empty. Words are full by default.
void feb_empty(aligned_t* addr);

/// Marks @p addr full and wakes waiters (does not change the value).
void feb_fill(aligned_t* addr);

/// True when @p addr is currently full.
[[nodiscard]] bool feb_is_full(aligned_t* addr);

/// Waits until @p src is full, then copies *src into *dst (src stays full).
void readFF(aligned_t* dst, aligned_t* src);

/// Waits until @p src is full, copies it out, then marks it empty.
void readFE(aligned_t* dst, aligned_t* src);

/// Waits until @p dst is empty, stores @p val, then marks it full.
void writeEF(aligned_t* dst, aligned_t val);

/// Stores @p val and marks @p dst full regardless of prior state.
void writeF(aligned_t* dst, aligned_t val);

/// Per-qthread user pointer ("ULT-local storage"); travels with the
/// qthread across suspensions. Thread-local fallback on foreign threads.
[[nodiscard]] void* self_local();
void set_self_local(void* p);

// --- sinc: scalable incomplete counter (qthreads' qt_sinc_t) -------------
//
// Fan-in synchronization: created with an expected submission count;
// submitters call sinc_submit once each; waiters block (through the FEB
// machinery, like everything in qth) until all submissions arrived.

struct Sinc;

/// Creates a sinc expecting @p expect submissions.
[[nodiscard]] Sinc* sinc_create(std::uint64_t expect);

/// Records one completion (signals waiters on the last one).
void sinc_submit(Sinc* s);

/// Blocks until all expected submissions arrived.
void sinc_wait(Sinc* s);

/// Destroys the sinc (must be complete or unused).
void sinc_destroy(Sinc* s);

/// Shared-core scheduler behaviour lives in the sched::StatsSnapshot base
/// (zero in locked mode / single shep); qthreads-specific counters here.
struct Stats : sched::StatsSnapshot {
  std::uint64_t threads_created = 0;
  std::uint64_t feb_ops = 0;        ///< lock-table acquisitions
  std::uint64_t feb_blocks = 0;     ///< times a qthread suspended on a FEB
};

/// Dispatch mode the runtime is using (resolves Dispatch::Auto).
[[nodiscard]] Dispatch dispatch_mode();

[[nodiscard]] Stats stats();

}  // namespace glto::qth
