#include "taskdep/taskdep.hpp"

#include <algorithm>
#include <vector>

#include "common/debug.hpp"
#include "common/env.hpp"
#include "common/rng.hpp"
#include "common/spin.hpp"
#include "common/thread_safety.hpp"
#include "sched/metrics.hpp"
#include "sched/trace.hpp"
#include "sched/watchdog.hpp"

namespace glto::taskdep {

namespace {

/// Dependency cells cover 64-byte chunks of the address space: ranges that
/// overlap share at least one chunk, so overlap is detected without an
/// interval index. 64 bytes matches the cache line — the natural "one
/// object" granularity for dep handles.
constexpr int kChunkShift = 6;

/// Bucket occupancy that triggers the retired-cell sweep.
constexpr std::size_t kGcWatermark = 16;

}  // namespace

/// One registered task. Reference-counted: the creator holds one reference
/// until complete(); each cell naming the node (writer/reader slot) and
/// each predecessor's successor list holds another.
struct TaskNode {
  void* payload = nullptr;
  /// Release counter: predecessor edges + one registration guard. The
  /// transition to zero (guard removal in submit, or a predecessor's
  /// complete) makes the task runnable exactly once.
  std::atomic<std::int64_t> waits{1};
  std::atomic<int> refs{1};
  std::atomic<bool> completed{false};
  common::SpinLock lock;               ///< guards successors + completion
  std::vector<TaskNode*> successors GLTO_GUARDED_BY(lock);  ///< entries hold refs
};

namespace {

/// Access history of one address chunk within one dep domain: the last
/// writer and the readers admitted since. Writer/reader slots hold node
/// references. Identical addresses in different domains occupy distinct
/// cells — sibling scoping falls out of the cell key.
struct Cell {
  std::uintptr_t chunk = 0;
  std::uintptr_t domain = 0;
  TaskNode* last_writer = nullptr;
  std::vector<TaskNode*> readers;
};

bool node_retired(const TaskNode* n) {
  return n == nullptr || n->completed.load(std::memory_order_acquire);
}

}  // namespace

struct DepEngine::Bucket {
  common::SpinLock lock;
  std::vector<Cell> cells GLTO_GUARDED_BY(lock);
  /// Occupancy that triggers the next retired-cell sweep. Re-armed after
  /// every sweep to twice the cells that *survived*, so a bucket full of
  /// live (un-retired) cells — a wide in-flight DAG — doubles before it
  /// pays another scan instead of re-scanning on every registration.
  std::size_t gc_at GLTO_GUARDED_BY(lock) = kGcWatermark;
};

DepEngine::DepEngine(ReadyFn on_ready, int hash_bits) : on_ready_(on_ready) {
  GLTO_CHECK_MSG(on_ready != nullptr, "DepEngine needs a ready callback");
  int bits = hash_bits > 0
                 ? hash_bits
                 : static_cast<int>(
                       common::env_i64("GLTO_TASKDEP_HASH_BITS", 10));
  bits = std::max(4, std::min(bits, 20));
  hash_bits_ = bits;
  nbuckets_ = std::size_t{1} << bits;
  buckets_ = new Bucket[nbuckets_];
  // Every live engine reports under the same names; the registry merges
  // same-named counters by addition (runtimes may hold several engines).
  metrics_token_ = sched::metrics_register_provider(
      [](void* arg, sched::MetricsSnapshot& out) {
        const auto s = static_cast<DepEngine*>(arg)->stats();
        out.add("deps.registered", s.deps_registered);
        out.add("deps.deferred", s.deps_deferred);
        out.add("deps.ready_hits", s.dag_ready_hits);
      },
      this);
}

DepEngine::~DepEngine() {
  sched::metrics_unregister_provider(metrics_token_);
  for (std::size_t i = 0; i < nbuckets_; ++i) {
    for (Cell& cell : buckets_[i].cells) {
      if (cell.last_writer != nullptr) unref(cell.last_writer);
      for (TaskNode* r : cell.readers) unref(r);
    }
  }
  delete[] buckets_;
}

void DepEngine::ref(TaskNode* n) {
  n->refs.fetch_add(1, std::memory_order_relaxed);
}

void DepEngine::unref(TaskNode* n) {
  if (n->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) delete n;
}

/// Adds pred → succ. Self-edges are skipped (a task with in+out clauses on
/// one range must not wait for itself); completed predecessors add
/// nothing. Lock order is bucket → node, and complete() takes only the
/// node lock, so there is no cycle.
void DepEngine::add_edge(TaskNode* pred, TaskNode* succ) {
  if (pred == succ) return;
  common::SpinGuard g(pred->lock);
  if (pred->completed.load(std::memory_order_relaxed)) return;
  succ->waits.fetch_add(1, std::memory_order_relaxed);
  ref(succ);
  pred->successors.push_back(succ);
}

DepEngine::Submit DepEngine::submit(void* payload, const Dep* deps,
                                    std::size_t ndeps,
                                    std::uintptr_t domain) {
  auto* node = new TaskNode();
  node->payload = payload;
  deps_registered_.fetch_add(ndeps, std::memory_order_relaxed);
  sched::trace_emit(sched::TraceKind::dep_register,
                    reinterpret_cast<std::uintptr_t>(node),
                    static_cast<std::uint32_t>(ndeps));
  sched::watchdog_add_pending(1);

  // One registration at a time: a task's clauses span several chunks, and
  // two concurrent submitters interleaving per-chunk updates could each
  // become the other's predecessor on different chunks — a cycle neither
  // release ever breaks. Serializing submissions makes every edge point
  // from an earlier-submitted task to a later one (acyclic by
  // construction); complete() never takes this lock, so wake-ups stay
  // concurrent. The producer pattern submits from one context anyway.
  common::SpinGuard submit_guard(submit_lock_);

  for (std::size_t d = 0; d < ndeps; ++d) {
    const Dep& dep = deps[d];
    const auto base = reinterpret_cast<std::uintptr_t>(dep.addr);
    const std::uintptr_t size = dep.size > 0 ? dep.size : 1;
    const std::uintptr_t first = base >> kChunkShift;
    const std::uintptr_t last = (base + size - 1) >> kChunkShift;
    for (std::uintptr_t chunk = first; chunk <= last; ++chunk) {
      // The domain participates in the hash so one domain's wide DAG
      // cannot crowd every other domain out of its buckets.
      Bucket& b =
          buckets_[common::mix64(chunk ^ common::mix64(domain)) &
                   (nbuckets_ - 1)];
      common::SpinGuard g(b.lock);
      // Retire cells whose entire history has completed (keeps buckets
      // from growing without bound across the iterations of a
      // long-running solver), then find or create this chunk's cell. A
      // fully retired cell carries no ordering information: every edge
      // its occupants could induce is already satisfied. The sweep is
      // amortized — it only runs once the bucket has grown past the
      // re-armed watermark (see Bucket::gc_at), so registration stays
      // O(bucket occupancy) instead of paying the reader-scan on every
      // clause even when nothing is retirable.
      if (b.cells.size() >= b.gc_at) {
        for (std::size_t i = 0; i < b.cells.size();) {
          Cell& c = b.cells[i];
          const bool readers_done =
              std::all_of(c.readers.begin(), c.readers.end(), node_retired);
          if (node_retired(c.last_writer) && readers_done) {
            if (c.last_writer != nullptr) unref(c.last_writer);
            for (TaskNode* r : c.readers) unref(r);
            if (&c != &b.cells.back()) c = std::move(b.cells.back());
            b.cells.pop_back();
            continue;  // re-examine the element swapped into slot i
          }
          ++i;
        }
        b.gc_at = std::max(kGcWatermark, b.cells.size() * 2);
      }
      Cell* cell = nullptr;
      for (Cell& c : b.cells) {
        if (c.chunk == chunk && c.domain == domain) {
          cell = &c;
          break;
        }
      }
      if (cell == nullptr) {
        b.cells.push_back(Cell{chunk, domain, nullptr, {}});
        cell = &b.cells.back();
      }
      if (dep.kind == DepKind::in) {
        if (cell->last_writer != nullptr) add_edge(cell->last_writer, node);
        cell->readers.push_back(node);
        ref(node);
      } else {  // out / inout: after the last writer and all its readers
        if (cell->last_writer != nullptr) {
          add_edge(cell->last_writer, node);
          unref(cell->last_writer);
        }
        for (TaskNode* r : cell->readers) {
          add_edge(r, node);
          unref(r);
        }
        cell->readers.clear();
        cell->last_writer = node;
        ref(node);
      }
    }
  }

  // Remove the registration guard; whoever takes the counter to zero —
  // this decrement or a predecessor's complete() — owns the release.
  if (node->waits.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    return Submit{node, true};
  }
  deps_deferred_.fetch_add(1, std::memory_order_relaxed);
  return Submit{node, false};
}

void DepEngine::complete(TaskNode* node) {
  sched::watchdog_add_pending(-1);
  std::vector<TaskNode*> succs;
  {
    common::SpinGuard g(node->lock);
    node->completed.store(true, std::memory_order_release);
    succs.swap(node->successors);
  }
  // Collect every successor this completion releases, then hand the set
  // to the runtime in ONE batch callback when several became ready at
  // once (the DAG ready-burst a finishing tile produces) — the runtime
  // bulk-deposits them with targeted wakes instead of k submit+wake
  // round-trips. Small bursts stay on the stack.
  constexpr std::size_t kInlineReady = 16;
  void* payloads_inline[kInlineReady];
  TaskNode* nodes_inline[kInlineReady];
  std::vector<void*> payloads_spill;
  std::vector<TaskNode*> nodes_spill;
  std::size_t nready = 0;
  for (TaskNode* s : succs) {
    if (s->waits.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      dag_ready_hits_.fetch_add(1, std::memory_order_relaxed);
      if (nready < kInlineReady) {
        payloads_inline[nready] = s->payload;
        nodes_inline[nready] = s;
      } else {
        if (nready == kInlineReady) {
          payloads_spill.assign(payloads_inline,
                                payloads_inline + kInlineReady);
          nodes_spill.assign(nodes_inline, nodes_inline + kInlineReady);
        }
        payloads_spill.push_back(s->payload);
        nodes_spill.push_back(s);
      }
      ++nready;
    }
    // The successor-list reference is dropped only after the callback
    // below has run (ready nodes stay referenced through the batch).
  }
  sched::trace_emit(sched::TraceKind::dep_release,
                    reinterpret_cast<std::uintptr_t>(node),
                    static_cast<std::uint32_t>(nready));
  void* const* payloads =
      nready > kInlineReady ? payloads_spill.data() : payloads_inline;
  TaskNode* const* nodes =
      nready > kInlineReady ? nodes_spill.data() : nodes_inline;
  if (nready > 1 && on_ready_batch_ != nullptr) {
    on_ready_batch_(payloads, nodes, nready);
  } else {
    for (std::size_t i = 0; i < nready; ++i) {
      on_ready_(payloads[i], nodes[i]);
    }
  }
  for (TaskNode* s : succs) unref(s);
  unref(node);  // the creator's reference
}

Stats DepEngine::stats() const {
  Stats s;
  s.deps_registered = deps_registered_.load(std::memory_order_relaxed);
  s.deps_deferred = deps_deferred_.load(std::memory_order_relaxed);
  s.dag_ready_hits = dag_ready_hits_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace glto::taskdep
