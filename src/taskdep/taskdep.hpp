// taskdep — the task-dependency engine behind OpenMP `depend` clauses.
//
// The paper's tasking story (§IV-D) makes ULTs cheap enough that dataflow
// patterns no longer need barrier-style taskwait forests — but only if the
// runtime can express them. This engine supplies the missing piece: given
// tasks annotated with in/out/inout address ranges, it builds the
// producer→consumer DAG incrementally and tells the runtime the instant a
// task's last predecessor finishes, so the runtime can enqueue it straight
// onto the backend's work-stealing deques (GLTO) or task queues (pthread
// baselines).
//
// Design:
//  * A fixed-size hash table of *dependency cells*, keyed on 64-byte
//    chunks of the address space (1 << $GLTO_TASKDEP_HASH_BITS buckets,
//    default 10) *within a dep domain*. A dep on range [addr, addr+size)
//    registers against every chunk the range covers, so *overlapping*
//    ranges conflict through their shared chunks — stricter than the
//    OpenMP "identical list item" rule, never weaker.
//  * Dep *domains* implement OpenMP's sibling scoping: dependences only
//    order tasks that share a domain (the runtimes pass the generating
//    task's identity, so siblings share one and a task's children get
//    their own). A child naming one of its parent's dep objects therefore
//    no longer takes an edge from the parent's still-incomplete node —
//    the cross-scope ancestor/descendant deadlock an earlier revision
//    documented as a known hazard — and false ordering between unrelated
//    concurrent DAGs (e.g. two solver instances sharing one runtime) is
//    gone with it. Domains are address-keyed: a recycled task record
//    reusing a domain value is harmless, since every cell the retired
//    occupant populated is either swept or edge-free (completed nodes
//    add no edges).
//  * Each cell remembers the last writer and the readers since that
//    writer. Registration applies the classic rules: in → edge from the
//    last writer; out/inout → edges from the last writer and every
//    reader, then the cell's history is reset to the new writer.
//  * Each task node carries an atomic *release counter* (predecessor
//    edges + one registration guard). Completion of a predecessor
//    decrements it; the transition to zero fires the runtime's ready
//    callback exactly once.
//  * Nodes are intrusively reference-counted (cells and successor lists
//    hold references), so a completed task's record stays valid while a
//    cell still names it as writer/reader and is reclaimed as soon as it
//    is displaced.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstddef>

#include "common/spin.hpp"
#include "taskdep/dep.hpp"

namespace glto::taskdep {

struct TaskNode;

/// The dependency engine. One instance per runtime; all methods are
/// thread-safe (per-bucket spinlocks + per-node spinlocks).
class DepEngine {
 public:
  /// @p on_ready fires exactly once per deferred task, from the thread
  /// executing its final predecessor's complete(); it receives the payload
  /// given to submit() plus the task's node (the callback may fire before
  /// the submitter even sees the node from Submit — pass it here so the
  /// wake-up path never reads a not-yet-published field). Never fires for
  /// tasks submit() reported ready.
  using ReadyFn = void (*)(void* payload, TaskNode* node);

  /// Optional batch form of the ready callback: when a completing task
  /// releases SEVERAL successors at once (a tile whose k dependents all
  /// reach zero — the DAG ready-burst), the engine hands the whole set to
  /// one call so the runtime can bulk-deposit them (one scheduler
  /// publication + targeted wakes) instead of paying k submit+wake
  /// round-trips. Single releases, and engines without a batch callback,
  /// keep the per-task on_ready path.
  using ReadyBatchFn = void (*)(void* const* payloads,
                                TaskNode* const* nodes, std::size_t n);

  /// @p hash_bits 0 → $GLTO_TASKDEP_HASH_BITS (default 10 → 1024 buckets).
  explicit DepEngine(ReadyFn on_ready, int hash_bits = 0);
  ~DepEngine();

  /// Installs the batch ready callback (call before any submit()).
  void set_on_ready_batch(ReadyBatchFn fn) { on_ready_batch_ = fn; }

  DepEngine(const DepEngine&) = delete;
  DepEngine& operator=(const DepEngine&) = delete;

  struct Submit {
    TaskNode* node = nullptr;
    bool ready = false;  ///< all predecessors already finished: run it now
  };

  /// Registers a task with its depend clauses. When `ready` is false the
  /// engine owns the wake-up: on_ready(payload) will fire later. Either
  /// way the caller must eventually call complete(node) after the task's
  /// body (and, per this runtime's transitive-join rule, its children)
  /// finish. @p domain scopes matching: only tasks submitted with the
  /// same domain value can exchange edges — runtimes pass the generating
  /// task's identity so dependences bind siblings only, as OpenMP scopes
  /// them (0 is just another domain: the implicit top-level one).
  Submit submit(void* payload, const Dep* deps, std::size_t ndeps,
                std::uintptr_t domain = 0);

  /// Marks the task finished, waking any successor whose release counter
  /// hits zero (on_ready runs inline on this thread — the wake-up path
  /// that feeds ready tasks straight to the caller's scheduler queue).
  void complete(TaskNode* node);

  [[nodiscard]] Stats stats() const;

  [[nodiscard]] int hash_bits() const { return hash_bits_; }

 private:
  struct Bucket;

  void add_edge(TaskNode* pred, TaskNode* succ);
  static void ref(TaskNode* n);
  static void unref(TaskNode* n);

  ReadyFn on_ready_;
  ReadyBatchFn on_ready_batch_ = nullptr;
  int hash_bits_;
  std::size_t nbuckets_;
  Bucket* buckets_;
  /// Serializes submit() (see the cycle note there); complete() is free.
  common::SpinLock submit_lock_;

  std::atomic<std::uint64_t> deps_registered_{0};
  std::atomic<std::uint64_t> deps_deferred_{0};
  std::atomic<std::uint64_t> dag_ready_hits_{0};
  std::uint64_t metrics_token_ = 0;  ///< registry handle (ctor → dtor)
};

}  // namespace glto::taskdep
