// taskdep/dep.hpp — the dependency-clause vocabulary, and nothing else.
//
// This is the only taskdep header the public omp facade needs: TaskFlags
// carries a list of Dep clauses and task_stats() returns Stats. Keeping
// these PODs free of engine internals (hash table, spinlocks, atomics)
// means omp.hpp consumers never couple to the engine; the engine itself
// lives in taskdep.hpp.
#pragma once

#include <cstdint>
#include <cstddef>
#include <initializer_list>

namespace glto::taskdep {

enum class DepKind : std::uint8_t {
  in,     ///< read  — concurrent with other `in`s on the same range
  out,    ///< write — ordered after every earlier access
  inout,  ///< read-write — same ordering as out
};

/// One `depend` clause: an address range and an access kind. size 0 is
/// treated as 1 byte (the "list item as handle" idiom: depend(inout: A)
/// passes &A with its natural size, tile codes pass the tile base).
struct Dep {
  const void* addr = nullptr;
  std::size_t size = 0;
  DepKind kind = DepKind::inout;
};

struct Stats {
  std::uint64_t deps_registered = 0;  ///< depend clauses processed
  std::uint64_t deps_deferred = 0;    ///< tasks parked on unmet predecessors
  std::uint64_t dag_ready_hits = 0;   ///< wake-ups: deferred task released
                                      ///< by its final completing predecessor
};

/// Small-vector of Dep clauses with inline storage for the common case
/// (tile kernels carry at most three clauses), part of the
/// zero-allocation task ABI: TaskFlags::depend used to be a std::vector,
/// charging every depend task a heap allocation before it reached the
/// engine. Spills to the heap only beyond kInlineDeps.
class DepList {
 public:
  static constexpr std::size_t kInlineDeps = 4;

  DepList() = default;
  DepList(std::initializer_list<Dep> deps) { assign(deps.begin(), deps.size()); }
  DepList(const DepList& o) { assign(o.data(), o.size_); }
  DepList(DepList&& o) noexcept { steal(o); }

  DepList& operator=(const DepList& o) {
    if (this != &o) {
      size_ = 0;
      assign(o.data(), o.size_);
    }
    return *this;
  }
  DepList& operator=(DepList&& o) noexcept {
    if (this != &o) {
      delete[] heap_;
      heap_ = nullptr;
      steal(o);
    }
    return *this;
  }
  DepList& operator=(std::initializer_list<Dep> deps) {
    size_ = 0;
    assign(deps.begin(), deps.size());
    return *this;
  }

  ~DepList() { delete[] heap_; }

  void push_back(const Dep& d) {
    if (size_ == cap_) grow(size_ + 1);
    data()[size_++] = d;
  }

  void reserve(std::size_t n) {
    if (n > cap_) grow(n);
  }

  void clear() { size_ = 0; }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] Dep* data() { return heap_ != nullptr ? heap_ : inline_; }
  [[nodiscard]] const Dep* data() const {
    return heap_ != nullptr ? heap_ : inline_;
  }
  [[nodiscard]] const Dep* begin() const { return data(); }
  [[nodiscard]] const Dep* end() const { return data() + size_; }

 private:
  void assign(const Dep* src, std::size_t n) {
    reserve(n);
    Dep* dst = data();
    for (std::size_t i = 0; i < n; ++i) dst[i] = src[i];
    size_ = n;
  }

  void steal(DepList& o) noexcept {
    heap_ = o.heap_;
    size_ = o.size_;
    cap_ = o.cap_;
    if (heap_ == nullptr) {
      for (std::size_t i = 0; i < size_; ++i) inline_[i] = o.inline_[i];
    }
    o.heap_ = nullptr;
    o.size_ = 0;
    o.cap_ = kInlineDeps;
  }

  void grow(std::size_t need) {
    std::size_t cap = cap_ * 2;
    if (cap < need) cap = need;
    Dep* fresh = new Dep[cap];
    const Dep* src = data();
    for (std::size_t i = 0; i < size_; ++i) fresh[i] = src[i];
    delete[] heap_;
    heap_ = fresh;
    cap_ = cap;
  }

  Dep inline_[kInlineDeps];
  Dep* heap_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = kInlineDeps;
};

}  // namespace glto::taskdep
