// taskdep/dep.hpp — the dependency-clause vocabulary, and nothing else.
//
// This is the only taskdep header the public omp facade needs: TaskFlags
// carries a list of Dep clauses and task_stats() returns Stats. Keeping
// these PODs free of engine internals (hash table, spinlocks, atomics)
// means omp.hpp consumers never couple to the engine; the engine itself
// lives in taskdep.hpp.
#pragma once

#include <cstdint>
#include <cstddef>

namespace glto::taskdep {

enum class DepKind : std::uint8_t {
  in,     ///< read  — concurrent with other `in`s on the same range
  out,    ///< write — ordered after every earlier access
  inout,  ///< read-write — same ordering as out
};

/// One `depend` clause: an address range and an access kind. size 0 is
/// treated as 1 byte (the "list item as handle" idiom: depend(inout: A)
/// passes &A with its natural size, tile codes pass the tile base).
struct Dep {
  const void* addr = nullptr;
  std::size_t size = 0;
  DepKind kind = DepKind::inout;
};

struct Stats {
  std::uint64_t deps_registered = 0;  ///< depend clauses processed
  std::uint64_t deps_deferred = 0;    ///< tasks parked on unmet predecessors
  std::uint64_t dag_ready_hits = 0;   ///< wake-ups: deferred task released
                                      ///< by its final completing predecessor
};

}  // namespace glto::taskdep
