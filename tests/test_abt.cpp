// Unit + integration tests for the Argobots-like runtime.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "abt/abt.hpp"
#include "common/env.hpp"

namespace ga = glto::abt;

namespace {

/// RAII runtime for a test body.
struct AbtScope {
  explicit AbtScope(int n, bool shared = false) {
    ga::Config cfg;
    cfg.num_xstreams = n;
    cfg.shared_pool = shared;
    cfg.bind_threads = false;  // container may have 1 core
    ga::init(cfg);
  }
  ~AbtScope() { ga::finalize(); }
};

}  // namespace

TEST(Abt, InitFinalize) {
  AbtScope s(2);
  EXPECT_TRUE(ga::initialized());
  EXPECT_EQ(ga::num_xstreams(), 2);
  EXPECT_EQ(ga::self_rank(), 0);
  EXPECT_TRUE(ga::in_ult()) << "caller is the primary ULT";
}

TEST(Abt, SingleUltRunsAndJoins) {
  AbtScope s(1);
  std::atomic<int> x{0};
  auto* u = ga::ult_create([](void* p) { static_cast<std::atomic<int>*>(p)->store(42); }, &x);
  ga::join(u);
  EXPECT_EQ(x.load(), 42);
}

TEST(Abt, ManyUltsAllExecute) {
  AbtScope s(4);
  constexpr int kN = 500;
  std::atomic<int> count{0};
  std::vector<ga::WorkUnit*> us;
  us.reserve(kN);
  for (int i = 0; i < kN; ++i) {
    us.push_back(ga::ult_create(
        [](void* p) { static_cast<std::atomic<int>*>(p)->fetch_add(1); },
        &count));
  }
  for (auto* u : us) ga::join(u);
  EXPECT_EQ(count.load(), kN);
}

TEST(Abt, UltCreateOnTargetsXstream) {
  AbtScope s(3);
  // create_on pins: a ULT created on rank r must execute on rank r even
  // with work stealing enabled (exact-placement contract).
  for (int r = 0; r < 3; ++r) {
    std::atomic<int> observed{-1};
    auto* u = ga::ult_create_on(
        r,
        [](void* p) {
          static_cast<std::atomic<int>*>(p)->store(ga::self_rank());
        },
        &observed);
    ga::join(u);
    EXPECT_EQ(observed.load(), r) << "pinned units are never stolen";
  }
}

TEST(Abt, ExecutedOnReportsRank) {
  AbtScope s(3);
  for (int r = 0; r < 3; ++r) {
    std::atomic<int> dummy{0};
    auto* u = ga::ult_create_on(
        r, [](void* p) { static_cast<std::atomic<int>*>(p)->store(1); },
        &dummy);
    // Yield while waiting: a ULT on xstream 0 only runs when the primary
    // ULT suspends (cooperative scheduling).
    while (!ga::is_done(u)) ga::yield();
    EXPECT_EQ(ga::executed_on(u), r);
    ga::join(u);
  }
}

TEST(Abt, TaskletRunsWithoutStack) {
  AbtScope s(2);
  std::atomic<int> x{0};
  auto* t = ga::tasklet_create(
      [](void* p) { static_cast<std::atomic<int>*>(p)->store(7); }, &x);
  ga::join(t);
  EXPECT_EQ(x.load(), 7);
  EXPECT_GE(ga::stats().tasklets_created, 1u);
}

TEST(Abt, YieldInterleavesUltsOnOneXstream) {
  AbtScope s(1);
  // Two ULTs on one xstream must interleave via yield: each appends its tag
  // alternately. Proves cooperative scheduling works and that yield is a
  // fairness point (a yielded ULT goes to the FIFO side queue, so its peer
  // runs next). Which tag goes first depends on the dispatch mode — the
  // work-first deque pops the newest ULT first, the locked FIFO the oldest
  // — so only strict alternation is asserted, not the starting tag.
  struct Shared {
    std::vector<int> order;
  } sh;
  struct Arg {
    Shared* sh;
    int tag;
  };
  Arg a0{&sh, 0}, a1{&sh, 1};
  auto body = [](void* p) {
    auto* a = static_cast<Arg*>(p);
    for (int i = 0; i < 3; ++i) {
      a->sh->order.push_back(a->tag);
      ga::yield();
    }
  };
  auto* u0 = ga::ult_create(body, &a0);
  auto* u1 = ga::ult_create(body, &a1);
  ga::join(u0);
  ga::join(u1);
  ASSERT_EQ(sh.order.size(), 6u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(sh.order[static_cast<std::size_t>(i)], sh.order[i % 2])
        << "i=" << i;
  }
  EXPECT_NE(sh.order[0], sh.order[1]) << "yield must interleave the ULTs";
}

TEST(Abt, UltJoinsAnotherUlt) {
  AbtScope s(2);
  struct State {
    std::atomic<int> inner{0};
    std::atomic<int> outer{0};
  } st;
  struct Outer {
    State* st;
  } outer_arg{&st};
  auto* u = ga::ult_create(
      [](void* p) {
        auto* st = static_cast<Outer*>(p)->st;
        auto* inner = ga::ult_create(
            [](void* q) { static_cast<State*>(q)->inner.store(5); }, st);
        ga::join(inner);
        st->outer.store(st->inner.load() + 1);
      },
      &outer_arg);
  ga::join(u);
  EXPECT_EQ(st.inner.load(), 5);
  EXPECT_EQ(st.outer.load(), 6);
}

TEST(Abt, DeepNestedJoinChain) {
  AbtScope s(2);
  // Each ULT spawns and joins the next; depth 50 exercises blocking and
  // re-readying through the scheduler repeatedly.
  struct Node {
    int depth;
    std::atomic<int>* sum;
  };
  static ga::WorkFn rec = [](void* p) {
    auto* n = static_cast<Node*>(p);
    if (n->depth > 0) {
      Node child{n->depth - 1, n->sum};
      auto* u = ga::ult_create(rec, &child);
      ga::join(u);
    }
    n->sum->fetch_add(1);
  };
  std::atomic<int> sum{0};
  Node root{50, &sum};
  auto* u = ga::ult_create(rec, &root);
  ga::join(u);
  EXPECT_EQ(sum.load(), 51);
}

TEST(Abt, SharedPoolExecutesEverything) {
  AbtScope s(4, /*shared=*/true);
  constexpr int kN = 300;
  std::atomic<int> count{0};
  std::vector<ga::WorkUnit*> us;
  for (int i = 0; i < kN; ++i) {
    // Placement rank is advisory under a shared pool.
    us.push_back(ga::ult_create_on(
        i % 4, [](void* p) { static_cast<std::atomic<int>*>(p)->fetch_add(1); },
        &count));
  }
  for (auto* u : us) ga::join(u);
  EXPECT_EQ(count.load(), kN);
}

TEST(Abt, StatsCountCreations) {
  AbtScope s(1);
  const auto before = ga::stats();
  std::atomic<int> x{0};
  auto* a = ga::ult_create([](void* p) { static_cast<std::atomic<int>*>(p)->fetch_add(1); }, &x);
  auto* b = ga::tasklet_create([](void* p) { static_cast<std::atomic<int>*>(p)->fetch_add(1); }, &x);
  ga::join(a);
  ga::join(b);
  const auto after = ga::stats();
  EXPECT_EQ(after.ults_created, before.ults_created + 1);
  EXPECT_EQ(after.tasklets_created, before.tasklets_created + 1);
}

TEST(Abt, ReinitAfterFinalize) {
  {
    AbtScope s(2);
    std::atomic<int> x{0};
    auto* u = ga::ult_create([](void* p) { static_cast<std::atomic<int>*>(p)->store(1); }, &x);
    ga::join(u);
  }
  {
    AbtScope s(3);
    EXPECT_EQ(ga::num_xstreams(), 3);
    std::atomic<int> x{0};
    auto* u = ga::ult_create([](void* p) { static_cast<std::atomic<int>*>(p)->store(2); }, &x);
    ga::join(u);
    EXPECT_EQ(x.load(), 2);
  }
}

TEST(Abt, ChildCreatesGrandchildrenAcrossXstreams) {
  AbtScope s(4);
  std::atomic<int> total{0};
  struct Arg {
    std::atomic<int>* total;
  } arg{&total};
  auto* u = ga::ult_create(
      [](void* p) {
        auto* total = static_cast<Arg*>(p)->total;
        std::vector<ga::WorkUnit*> kids;
        for (int r = 0; r < ga::num_xstreams(); ++r) {
          for (int i = 0; i < 10; ++i) {
            kids.push_back(ga::ult_create_on(
                r,
                [](void* q) {
                  static_cast<std::atomic<int>*>(q)->fetch_add(1);
                },
                total));
          }
        }
        for (auto* k : kids) ga::join(k);
      },
      &arg);
  ga::join(u);
  EXPECT_EQ(total.load(), 40);
}

TEST(Abt, ManyTaskletsInterleavedWithUlts) {
  AbtScope s(2);
  constexpr int kN = 200;
  std::atomic<int> count{0};
  std::vector<ga::WorkUnit*> ws;
  for (int i = 0; i < kN; ++i) {
    auto fn = [](void* p) { static_cast<std::atomic<int>*>(p)->fetch_add(1); };
    ws.push_back(i % 2 == 0 ? ga::ult_create(fn, &count)
                            : ga::tasklet_create(fn, &count));
  }
  for (auto* w : ws) ga::join(w);
  EXPECT_EQ(count.load(), kN);
}

// ---------------------------------------------------------------------------
// Work-stealing scheduler surfaces (Chase–Lev dispatch, PR 1).
// ---------------------------------------------------------------------------

TEST(AbtSteal, IdleXstreamStealsUnpinnedWork) {
  AbtScope s(2);
  ASSERT_EQ(ga::dispatch_mode(), ga::Dispatch::WorkStealing);
  // The primary ULT never suspends below, so xstream 0's scheduler never
  // runs: the only way this unpinned ULT can execute is a steal by
  // xstream 1. Deterministic forcing of the steal path.
  std::atomic<int> ran_on{-1};
  auto* u = ga::ult_create(
      [](void* p) {
        static_cast<std::atomic<int>*>(p)->store(ga::self_rank());
      },
      &ran_on);
  while (!ga::is_done(u)) {
    // Busy poll WITHOUT yielding: keeps the primary scheduler parked.
  }
  EXPECT_EQ(ran_on.load(), 1) << "unit must have been stolen by xstream 1";
  EXPECT_EQ(ga::executed_on(u), 1);
  EXPECT_GE(ga::stats().steals, 1u);
  ga::join(u);
}

TEST(AbtSteal, PinnedPlacementExactUnderStealStorm) {
  AbtScope s(4);
  // A storm of stealable units plus pinned units to every rank: stealing
  // must never move a pinned unit off its target xstream.
  constexpr int kStorm = 400;
  constexpr int kPinnedPerRank = 25;
  std::atomic<int> storm_count{0};
  std::vector<ga::WorkUnit*> storm;
  storm.reserve(kStorm);
  for (int i = 0; i < kStorm; ++i) {
    storm.push_back(ga::ult_create(
        [](void* p) {
          ga::yield();  // churn: suspensions interleave with steals
          static_cast<std::atomic<int>*>(p)->fetch_add(1);
        },
        &storm_count));
  }
  struct Observed {
    std::atomic<int> rank{-1};
  };
  std::vector<Observed> seen(4 * kPinnedPerRank);
  std::vector<ga::WorkUnit*> pinned;
  for (int r = 0; r < 4; ++r) {
    for (int i = 0; i < kPinnedPerRank; ++i) {
      pinned.push_back(ga::ult_create_on(
          r,
          [](void* p) {
            static_cast<Observed*>(p)->rank.store(ga::self_rank());
          },
          &seen[static_cast<std::size_t>(r * kPinnedPerRank + i)]));
    }
  }
  for (auto* u : pinned) ga::join(u);
  for (auto* u : storm) ga::join(u);
  EXPECT_EQ(storm_count.load(), kStorm);
  for (int r = 0; r < 4; ++r) {
    for (int i = 0; i < kPinnedPerRank; ++i) {
      EXPECT_EQ(seen[static_cast<std::size_t>(r * kPinnedPerRank + i)]
                    .rank.load(),
                r)
          << "pinned unit crossed xstreams";
    }
  }
}

TEST(AbtSteal, SelfLocalFollowsUnitAcrossSteals) {
  AbtScope s(3);
  // self_local is per-work-unit state: it must travel with the ULT even
  // when yields let the unit migrate between xstreams.
  constexpr int kN = 60;
  std::atomic<int> bad{0};
  std::vector<ga::WorkUnit*> us;
  us.reserve(kN);
  for (int i = 0; i < kN; ++i) {
    us.push_back(ga::ult_create(
        [](void* p) {
          int token = 0;
          ga::set_self_local(&token);
          for (int k = 0; k < 4; ++k) {
            ga::yield();
            if (ga::self_local() != &token) {
              static_cast<std::atomic<int>*>(p)->fetch_add(1);
              return;
            }
          }
        },
        &bad));
  }
  for (auto* u : us) ga::join(u);
  EXPECT_EQ(bad.load(), 0) << "self_local detached from its work unit";
}

TEST(AbtSteal, StackCacheHitsCountRecycledStacks) {
  AbtScope s(1);
  // Single xstream → the stack released when the first ULT finishes lands
  // in *this* thread's cache, so the second ULT's acquire must be a
  // lock-free cache hit, visible as a strictly increasing counter.
  std::atomic<int> x{0};
  auto bump = [](void* p) { static_cast<std::atomic<int>*>(p)->fetch_add(1); };
  ga::join(ga::ult_create(bump, &x));
  const auto hits_before = ga::stats().stack_cache_hits;
  ga::join(ga::ult_create(bump, &x));
  EXPECT_GE(ga::stats().stack_cache_hits, hits_before + 1)
      << "recycled ULT stack must be served from the per-thread cache";
  EXPECT_EQ(x.load(), 2);
}

TEST(AbtRecycle, WorkUnitRecordsAreReused) {
  AbtScope s(1);
  // Sequential create/join on one xstream must hit the per-worker free
  // list: the second create returns the recycled record, not a fresh
  // allocation.
  std::atomic<int> x{0};
  auto* a = ga::ult_create(
      [](void* p) { static_cast<std::atomic<int>*>(p)->fetch_add(1); }, &x);
  ga::join(a);
  auto* b = ga::ult_create(
      [](void* p) { static_cast<std::atomic<int>*>(p)->fetch_add(1); }, &x);
  EXPECT_EQ(a, b) << "joined record should be recycled by the next create";
  ga::join(b);
  EXPECT_EQ(x.load(), 2);
}

TEST(AbtRecycle, RecycledUnitsStartClean) {
  AbtScope s(2);
  // A recycled record must not leak joiner/self_local state from its
  // previous life (stale joiners would wake the wrong ULT).
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> x{0};
    auto* u = ga::ult_create(
        [](void* p) {
          ga::set_self_local(p);  // dirty the slot on purpose
          static_cast<std::atomic<int>*>(p)->fetch_add(1);
        },
        &x);
    ga::join(u);
    ASSERT_EQ(x.load(), 1) << "round " << round;
  }
}

namespace {

/// Scope running abt with the seed's mutex-guarded FIFO dispatch.
struct LockedScope {
  explicit LockedScope(int n, bool shared = false) {
    ga::Config cfg;
    cfg.num_xstreams = n;
    cfg.shared_pool = shared;
    cfg.bind_threads = false;
    cfg.dispatch = ga::Dispatch::Locked;
    ga::init(cfg);
  }
  ~LockedScope() { ga::finalize(); }
};

}  // namespace

TEST(AbtLockedDispatch, BaselineModeStillWorks) {
  LockedScope s(3);
  ASSERT_EQ(ga::dispatch_mode(), ga::Dispatch::Locked);
  constexpr int kN = 300;
  std::atomic<int> count{0};
  std::vector<ga::WorkUnit*> us;
  us.reserve(kN);
  for (int i = 0; i < kN; ++i) {
    us.push_back(ga::ult_create(
        [](void* p) { static_cast<std::atomic<int>*>(p)->fetch_add(1); },
        &count));
  }
  for (auto* u : us) ga::join(u);
  EXPECT_EQ(count.load(), kN);
  EXPECT_EQ(ga::stats().steals, 0u) << "locked dispatch never steals";
}

TEST(AbtLockedDispatch, EnvKnobSelectsBaseline) {
  glto::common::env_set("ABT_DISPATCH", "locked");
  {
    AbtScope s(2);
    EXPECT_EQ(ga::dispatch_mode(), ga::Dispatch::Locked);
    std::atomic<int> x{0};
    auto* u = ga::ult_create(
        [](void* p) { static_cast<std::atomic<int>*>(p)->store(9); }, &x);
    ga::join(u);
    EXPECT_EQ(x.load(), 9);
  }
  glto::common::env_set("ABT_DISPATCH", nullptr);
  {
    AbtScope s(2);
    EXPECT_EQ(ga::dispatch_mode(), ga::Dispatch::WorkStealing);
  }
}

TEST(AbtTasklet, YieldingTaskletsAreSafeOnPrimary) {
  // Regression: a tasklet runs on the scheduler's stack; on the primary
  // xstream tls' "current unit" used to still point at the suspended main
  // ULT, so yield() inside a tasklet suspended *main* from the scheduler
  // context and jumped through a dead fcontext (crash first exposed by
  // examples/glt_hello). Tasklet yield must be a no-op; the mixed
  // yielding-ULT + yielding-tasklet workload below is glt_hello's shape.
  AbtScope s(1);
  std::atomic<long long> sum{0};
  auto body = [](void* p) {
    static_cast<std::atomic<long long>*>(p)->fetch_add(1);
    ga::yield();  // ULT: fairness point; tasklet: must be a no-op
    static_cast<std::atomic<long long>*>(p)->fetch_add(1);
  };
  std::vector<ga::WorkUnit*> us;
  for (int i = 0; i < 100; ++i) us.push_back(ga::ult_create(body, &sum));
  for (int i = 0; i < 100; ++i) us.push_back(ga::tasklet_create(body, &sum));
  for (auto* u : us) ga::join(u);
  EXPECT_EQ(sum.load(), 400);
}

TEST(AbtTasklet, SelfLocalIsPerTasklet) {
  AbtScope s(1);
  // self_local inside a tasklet must bind to the tasklet itself, not to
  // the xstream's foreign-thread slot (or, worse, the suspended main).
  std::atomic<int> bad{0};
  auto body = [](void* p) {
    int token = 0;
    ga::set_self_local(&token);
    if (ga::self_local() != &token) {
      static_cast<std::atomic<int>*>(p)->fetch_add(1);
    }
  };
  auto* t0 = ga::tasklet_create(body, &bad);
  auto* t1 = ga::tasklet_create(body, &bad);
  ga::join(t0);
  ga::join(t1);
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(ga::self_local(), nullptr)
      << "tasklet-local writes must not leak into the foreign slot";
}
