// Unit + integration tests for the Argobots-like runtime.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "abt/abt.hpp"

namespace ga = glto::abt;

namespace {

/// RAII runtime for a test body.
struct AbtScope {
  explicit AbtScope(int n, bool shared = false) {
    ga::Config cfg;
    cfg.num_xstreams = n;
    cfg.shared_pool = shared;
    cfg.bind_threads = false;  // container may have 1 core
    ga::init(cfg);
  }
  ~AbtScope() { ga::finalize(); }
};

}  // namespace

TEST(Abt, InitFinalize) {
  AbtScope s(2);
  EXPECT_TRUE(ga::initialized());
  EXPECT_EQ(ga::num_xstreams(), 2);
  EXPECT_EQ(ga::self_rank(), 0);
  EXPECT_TRUE(ga::in_ult()) << "caller is the primary ULT";
}

TEST(Abt, SingleUltRunsAndJoins) {
  AbtScope s(1);
  std::atomic<int> x{0};
  auto* u = ga::ult_create([](void* p) { static_cast<std::atomic<int>*>(p)->store(42); }, &x);
  ga::join(u);
  EXPECT_EQ(x.load(), 42);
}

TEST(Abt, ManyUltsAllExecute) {
  AbtScope s(4);
  constexpr int kN = 500;
  std::atomic<int> count{0};
  std::vector<ga::WorkUnit*> us;
  us.reserve(kN);
  for (int i = 0; i < kN; ++i) {
    us.push_back(ga::ult_create(
        [](void* p) { static_cast<std::atomic<int>*>(p)->fetch_add(1); },
        &count));
  }
  for (auto* u : us) ga::join(u);
  EXPECT_EQ(count.load(), kN);
}

TEST(Abt, UltCreateOnTargetsXstream) {
  AbtScope s(3);
  // Without stealing, a ULT created on rank r must execute on rank r.
  for (int r = 0; r < 3; ++r) {
    std::atomic<int> observed{-1};
    auto* u = ga::ult_create_on(
        r,
        [](void* p) {
          static_cast<std::atomic<int>*>(p)->store(ga::self_rank());
        },
        &observed);
    ga::join(u);
    EXPECT_EQ(observed.load(), r) << "abt has no work stealing";
  }
}

TEST(Abt, ExecutedOnReportsRank) {
  AbtScope s(3);
  for (int r = 0; r < 3; ++r) {
    std::atomic<int> dummy{0};
    auto* u = ga::ult_create_on(
        r, [](void* p) { static_cast<std::atomic<int>*>(p)->store(1); },
        &dummy);
    // Yield while waiting: a ULT on xstream 0 only runs when the primary
    // ULT suspends (cooperative scheduling).
    while (!ga::is_done(u)) ga::yield();
    EXPECT_EQ(ga::executed_on(u), r);
    ga::join(u);
  }
}

TEST(Abt, TaskletRunsWithoutStack) {
  AbtScope s(2);
  std::atomic<int> x{0};
  auto* t = ga::tasklet_create(
      [](void* p) { static_cast<std::atomic<int>*>(p)->store(7); }, &x);
  ga::join(t);
  EXPECT_EQ(x.load(), 7);
  EXPECT_GE(ga::stats().tasklets_created, 1u);
}

TEST(Abt, YieldInterleavesUltsOnOneXstream) {
  AbtScope s(1);
  // Two ULTs on one xstream must interleave via yield: each appends its tag
  // alternately. Proves cooperative scheduling works.
  struct Shared {
    std::vector<int> order;
  } sh;
  struct Arg {
    Shared* sh;
    int tag;
  };
  Arg a0{&sh, 0}, a1{&sh, 1};
  auto body = [](void* p) {
    auto* a = static_cast<Arg*>(p);
    for (int i = 0; i < 3; ++i) {
      a->sh->order.push_back(a->tag);
      ga::yield();
    }
  };
  auto* u0 = ga::ult_create(body, &a0);
  auto* u1 = ga::ult_create(body, &a1);
  ga::join(u0);
  ga::join(u1);
  ASSERT_EQ(sh.order.size(), 6u);
  // Perfect alternation 0,1,0,1,0,1 on a single FIFO pool.
  for (int i = 0; i < 6; ++i) EXPECT_EQ(sh.order[i], i % 2) << "i=" << i;
}

TEST(Abt, UltJoinsAnotherUlt) {
  AbtScope s(2);
  struct State {
    std::atomic<int> inner{0};
    std::atomic<int> outer{0};
  } st;
  struct Outer {
    State* st;
  } outer_arg{&st};
  auto* u = ga::ult_create(
      [](void* p) {
        auto* st = static_cast<Outer*>(p)->st;
        auto* inner = ga::ult_create(
            [](void* q) { static_cast<State*>(q)->inner.store(5); }, st);
        ga::join(inner);
        st->outer.store(st->inner.load() + 1);
      },
      &outer_arg);
  ga::join(u);
  EXPECT_EQ(st.inner.load(), 5);
  EXPECT_EQ(st.outer.load(), 6);
}

TEST(Abt, DeepNestedJoinChain) {
  AbtScope s(2);
  // Each ULT spawns and joins the next; depth 50 exercises blocking and
  // re-readying through the scheduler repeatedly.
  struct Node {
    int depth;
    std::atomic<int>* sum;
  };
  static ga::WorkFn rec = [](void* p) {
    auto* n = static_cast<Node*>(p);
    if (n->depth > 0) {
      Node child{n->depth - 1, n->sum};
      auto* u = ga::ult_create(rec, &child);
      ga::join(u);
    }
    n->sum->fetch_add(1);
  };
  std::atomic<int> sum{0};
  Node root{50, &sum};
  auto* u = ga::ult_create(rec, &root);
  ga::join(u);
  EXPECT_EQ(sum.load(), 51);
}

TEST(Abt, SharedPoolExecutesEverything) {
  AbtScope s(4, /*shared=*/true);
  constexpr int kN = 300;
  std::atomic<int> count{0};
  std::vector<ga::WorkUnit*> us;
  for (int i = 0; i < kN; ++i) {
    // Placement rank is advisory under a shared pool.
    us.push_back(ga::ult_create_on(
        i % 4, [](void* p) { static_cast<std::atomic<int>*>(p)->fetch_add(1); },
        &count));
  }
  for (auto* u : us) ga::join(u);
  EXPECT_EQ(count.load(), kN);
}

TEST(Abt, StatsCountCreations) {
  AbtScope s(1);
  const auto before = ga::stats();
  std::atomic<int> x{0};
  auto* a = ga::ult_create([](void* p) { static_cast<std::atomic<int>*>(p)->fetch_add(1); }, &x);
  auto* b = ga::tasklet_create([](void* p) { static_cast<std::atomic<int>*>(p)->fetch_add(1); }, &x);
  ga::join(a);
  ga::join(b);
  const auto after = ga::stats();
  EXPECT_EQ(after.ults_created, before.ults_created + 1);
  EXPECT_EQ(after.tasklets_created, before.tasklets_created + 1);
}

TEST(Abt, ReinitAfterFinalize) {
  {
    AbtScope s(2);
    std::atomic<int> x{0};
    auto* u = ga::ult_create([](void* p) { static_cast<std::atomic<int>*>(p)->store(1); }, &x);
    ga::join(u);
  }
  {
    AbtScope s(3);
    EXPECT_EQ(ga::num_xstreams(), 3);
    std::atomic<int> x{0};
    auto* u = ga::ult_create([](void* p) { static_cast<std::atomic<int>*>(p)->store(2); }, &x);
    ga::join(u);
    EXPECT_EQ(x.load(), 2);
  }
}

TEST(Abt, ChildCreatesGrandchildrenAcrossXstreams) {
  AbtScope s(4);
  std::atomic<int> total{0};
  struct Arg {
    std::atomic<int>* total;
  } arg{&total};
  auto* u = ga::ult_create(
      [](void* p) {
        auto* total = static_cast<Arg*>(p)->total;
        std::vector<ga::WorkUnit*> kids;
        for (int r = 0; r < ga::num_xstreams(); ++r) {
          for (int i = 0; i < 10; ++i) {
            kids.push_back(ga::ult_create_on(
                r,
                [](void* q) {
                  static_cast<std::atomic<int>*>(q)->fetch_add(1);
                },
                total));
          }
        }
        for (auto* k : kids) ga::join(k);
      },
      &arg);
  ga::join(u);
  EXPECT_EQ(total.load(), 40);
}

TEST(Abt, ManyTaskletsInterleavedWithUlts) {
  AbtScope s(2);
  constexpr int kN = 200;
  std::atomic<int> count{0};
  std::vector<ga::WorkUnit*> ws;
  for (int i = 0; i < kN; ++i) {
    auto fn = [](void* p) { static_cast<std::atomic<int>*>(p)->fetch_add(1); };
    ws.push_back(i % 2 == 0 ? ga::ult_create(fn, &count)
                            : ga::tasklet_create(fn, &count));
  }
  for (auto* w : ws) ga::join(w);
  EXPECT_EQ(count.load(), kN);
}
