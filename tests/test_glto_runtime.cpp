// GLTO-specific behaviour: the §IV design decisions, asserted directly.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>

#include "omp/omp.hpp"

namespace o = glto::omp;

namespace {

void select_glto(o::RuntimeKind k, int nth, bool shared_queues = false) {
  o::SelectOptions opts;
  opts.num_threads = nth;
  opts.bind_threads = false;
  opts.active_wait = false;
  opts.shared_queues = shared_queues;
  o::select(k, opts);
}

}  // namespace

TEST(GltoRegion, OuterRegionCreatesOneUltPerNonMasterMember) {
  select_glto(o::RuntimeKind::glto_abt, 4);
  o::runtime().reset_counters();
  o::parallel([](int, int) {});
  const auto c = o::runtime().counters();
  EXPECT_EQ(c.ults_created, 3u)
      << "master runs member 0 inline; §IV-C creates ULTs for the rest";
  EXPECT_EQ(c.os_threads_created, 4u) << "GLT_threads, created once at init";
  o::shutdown();
}

TEST(GltoRegion, NestedRegionsCreateOnlyUlts) {
  select_glto(o::RuntimeKind::glto_abt, 4);
  o::runtime().reset_counters();
  constexpr int kInner = 10;
  o::parallel(1, [&](int, int) {
    for (int i = 0; i < kInner; ++i) o::parallel(4, [](int, int) {});
  });
  const auto c = o::runtime().counters();
  EXPECT_EQ(c.ults_created, static_cast<std::uint64_t>(kInner * 3))
      << "inner teams are pure ULTs (§IV-E): 3 per region, no OS threads";
  EXPECT_EQ(c.os_threads_created, 4u) << "no oversubscription, ever";
  o::shutdown();
}

TEST(GltoRegion, Table2UltArithmetic) {
  // The Table II scenario at reduced scale: nth=6, outer=12 iterations.
  select_glto(o::RuntimeKind::glto_abt, 6);
  o::runtime().reset_counters();
  o::parallel([&](int, int) {
    o::loop(0, 12, {o::Schedule::Static, 0},
                [&](std::int64_t lo, std::int64_t hi) {
                  for (std::int64_t i = lo; i < hi; ++i) {
                    o::parallel([](int, int) {});
                  }
                });
  });
  const auto c = o::runtime().counters();
  // outer: 5 ULTs; inner: 12 regions × 5 ULTs = 60 → 65.
  EXPECT_EQ(c.ults_created, 65u) << "outer (nth-1) + outer_iters*(nth-1)";
  o::shutdown();
}

TEST(GltoTasks, ProducerTasksSpreadRoundRobin) {
  select_glto(o::RuntimeKind::glto_abt, 4);
  // Tasks created inside `single` must round-robin across GLT_threads
  // (§IV-D), so with 8 tasks and 4 threads every thread executes some.
  std::set<int> executors;
  std::atomic<int> done{0};
  static std::atomic<int> exec_mask;
  exec_mask = 0;
  o::parallel([&](int, int) {
    o::single([&] {
      for (int i = 0; i < 16; ++i) {
        o::task([&] {
          exec_mask.fetch_or(1 << o::thread_num());
          done.fetch_add(1);
        });
      }
      o::taskwait();
    });
  });
  EXPECT_EQ(done.load(), 16);
  int bits = 0;
  for (int t = 0; t < 4; ++t) {
    if (exec_mask.load() & (1 << t)) ++bits;
  }
  EXPECT_EQ(bits, 4) << "round-robin dispatch reaches every GLT_thread";
  o::shutdown();
}

TEST(GltoTasks, NonProducerTasksStayLocalOnAbt) {
  // Outside single/master, each member submits its tasks to its own
  // GLT_thread (§IV-D) rather than round-robin. Under the default
  // work-stealing dispatch an idle sibling may still *steal* one (the
  // deposit is local, the execution is best-effort — visible under a
  // TSan-slowed run), so pin dispatch to the locked per-rank queues,
  // where placement is owner-only: any off-thread execution would then
  // prove the dispatch policy itself is wrong.
  setenv("ABT_DISPATCH", "locked", 1);
  select_glto(o::RuntimeKind::glto_abt, 3);
  std::atomic<bool> ok{true};
  o::parallel([&](int tid, int) {
    if (tid == 0) return;  // master's ctx is in_master: dispatch differs
    for (int i = 0; i < 5; ++i) {
      o::task([&ok, tid] {
        if (o::thread_num() != tid) ok.store(false);
      });
    }
    o::taskwait();
  });
  EXPECT_TRUE(ok.load());
  o::shutdown();
  unsetenv("ABT_DISPATCH");
}

TEST(GltoTasks, FinalTasksRunInline) {
  select_glto(o::RuntimeKind::glto_abt, 4);
  o::runtime().reset_counters();
  std::atomic<int> ran{0};
  o::TaskFlags flags;
  flags.final = true;
  o::parallel([&](int, int) {
    o::single([&] {
      for (int i = 0; i < 10; ++i) {
        o::task([&] { ran.fetch_add(1); }, flags);
        EXPECT_EQ(ran.load(), i + 1) << "final ⇒ undeferred (§V)";
      }
    });
  });
  const auto c = o::runtime().counters();
  EXPECT_EQ(c.tasks_immediate, 10u);
  EXPECT_EQ(c.tasks_queued, 0u);
  o::shutdown();
}

TEST(GltoSharedQueues, ConfigReachesBackend) {
  select_glto(o::RuntimeKind::glto_abt, 3, /*shared_queues=*/true);
  // Under a shared pool, placement is advisory; correctness must hold.
  std::atomic<int> done{0};
  o::parallel([&](int, int) {
    o::single([&] {
      for (int i = 0; i < 60; ++i) o::task([&] { done.fetch_add(1); });
      o::taskwait();
    });
  });
  EXPECT_EQ(done.load(), 60);
  o::shutdown();
}

TEST(GltoMth, MasterStaysPinnedThroughRegions) {
  // §IV-G: GLTO pins the main context under MassiveThreads; the master
  // must always observe itself as thread 0 of the outer team.
  select_glto(o::RuntimeKind::glto_mth, 4);
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> master_tid{-1};
    o::parallel([&](int tid, int) {
      if (tid == 0) master_tid.store(o::thread_num());
    });
    EXPECT_EQ(master_tid.load(), 0);
  }
  o::shutdown();
}

TEST(GltoAllBackends, CountersReportGltThreads) {
  for (auto kind : {o::RuntimeKind::glto_abt, o::RuntimeKind::glto_qth,
                    o::RuntimeKind::glto_mth}) {
    select_glto(kind, 3);
    EXPECT_EQ(o::runtime().counters().os_threads_created, 3u)
        << o::kind_name(kind);
    o::shutdown();
  }
}
