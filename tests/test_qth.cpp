// Unit + integration tests for the Qthreads-like runtime and its FEB
// (full/empty bit) synchronization.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/env.hpp"
#include "qth/qth.hpp"

namespace gq = glto::qth;
using gq::aligned_t;

namespace {

struct QthScope {
  explicit QthScope(int n) {
    gq::Config cfg;
    cfg.num_shepherds = n;
    cfg.bind_threads = false;
    gq::init(cfg);
  }
  ~QthScope() { gq::finalize(); }
};

}  // namespace

TEST(Qth, InitFinalize) {
  QthScope s(2);
  EXPECT_TRUE(gq::initialized());
  EXPECT_EQ(gq::num_shepherds(), 2);
  EXPECT_EQ(gq::shep_rank(), 0);
  EXPECT_TRUE(gq::in_qthread());
}

TEST(Qth, ForkAndJoinViaRetFeb) {
  QthScope s(2);
  aligned_t ret = 0;
  gq::fork([](void*) -> aligned_t { return 99; }, nullptr, &ret);
  aligned_t got = 0;
  gq::readFF(&got, &ret);  // the canonical qthreads join
  EXPECT_EQ(got, 99u);
}

TEST(Qth, ForkManyAllComplete) {
  QthScope s(3);
  constexpr int kN = 400;
  std::atomic<int> count{0};
  std::vector<aligned_t> rets(kN, 0);
  for (int i = 0; i < kN; ++i) {
    gq::fork(
        [](void* p) -> aligned_t {
          static_cast<std::atomic<int>*>(p)->fetch_add(1);
          return 1;
        },
        &count, &rets[static_cast<std::size_t>(i)]);
  }
  aligned_t sink = 0;
  for (int i = 0; i < kN; ++i) gq::readFF(&sink, &rets[static_cast<std::size_t>(i)]);
  EXPECT_EQ(count.load(), kN);
}

TEST(Qth, ForkToTargetsShepherd) {
  QthScope s(3);
  // Without stealing, a qthread forked to shepherd r must execute there.
  for (int r = 0; r < 3; ++r) {
    aligned_t ret = 0;
    gq::fork_to(
        r, [](void*) -> aligned_t { return static_cast<aligned_t>(gq::shep_rank()); },
        nullptr, &ret);
    aligned_t got = 1234;
    gq::readFF(&got, &ret);
    EXPECT_EQ(got, static_cast<aligned_t>(r));
  }
}

TEST(Qth, FebDefaultStateIsFull) {
  QthScope s(1);
  aligned_t word = 5;
  EXPECT_TRUE(gq::feb_is_full(&word));
  aligned_t out = 0;
  gq::readFF(&out, &word);  // must not block
  EXPECT_EQ(out, 5u);
}

TEST(Qth, EmptyThenFillRoundTrip) {
  QthScope s(1);
  aligned_t word = 0;
  gq::feb_empty(&word);
  EXPECT_FALSE(gq::feb_is_full(&word));
  gq::feb_fill(&word);
  EXPECT_TRUE(gq::feb_is_full(&word));
}

TEST(Qth, WriteFSetsValueAndFull) {
  QthScope s(1);
  aligned_t word = 0;
  gq::feb_empty(&word);
  gq::writeF(&word, 77);
  EXPECT_TRUE(gq::feb_is_full(&word));
  EXPECT_EQ(word, 77u);
}

TEST(Qth, ReadFEEmptiesTheWord) {
  QthScope s(1);
  aligned_t word = 13;
  aligned_t out = 0;
  gq::readFE(&out, &word);
  EXPECT_EQ(out, 13u);
  EXPECT_FALSE(gq::feb_is_full(&word));
}

TEST(Qth, WriteEFBlocksUntilEmptied) {
  QthScope s(2);
  // Producer writes into a full word: must block until consumer empties it.
  static aligned_t word;
  word = 1;  // full by default
  static std::atomic<int> stage;
  stage = 0;
  aligned_t ret = 0;
  gq::fork(
      [](void*) -> aligned_t {
        stage.store(1);
        gq::writeEF(&word, 42);  // blocks: word is full
        stage.store(2);
        return 0;
      },
      nullptr, &ret);
  // Wait until the producer is (very likely) blocked.
  while (stage.load() < 1) gq::yield();
  for (int i = 0; i < 50; ++i) gq::yield();
  EXPECT_EQ(stage.load(), 1) << "writeEF must not complete on a full word";
  aligned_t out = 0;
  gq::readFE(&out, &word);  // empties; wakes the producer
  EXPECT_EQ(out, 1u);
  aligned_t sink;
  gq::readFF(&sink, &ret);
  EXPECT_EQ(stage.load(), 2);
  EXPECT_EQ(word, 42u);
  EXPECT_TRUE(gq::feb_is_full(&word)) << "writeEF refills the word";
}

TEST(Qth, ProducerConsumerPipelineThroughFeb) {
  QthScope s(2);
  // Classic FEB pipeline: producer writeEF / consumer readFE alternate on
  // one word; FIFO fairness must make the sequence exact.
  static aligned_t slot;
  static std::atomic<long long> sum;
  slot = 0;
  sum = 0;
  gq::feb_empty(&slot);
  constexpr int kItems = 200;
  aligned_t pret = 0, cret = 0;
  gq::fork_to(
      0,
      [](void*) -> aligned_t {
        for (int i = 1; i <= kItems; ++i) gq::writeEF(&slot, static_cast<aligned_t>(i));
        return 0;
      },
      nullptr, &pret);
  gq::fork_to(
      1 % gq::num_shepherds(),
      [](void*) -> aligned_t {
        for (int i = 0; i < kItems; ++i) {
          aligned_t v = 0;
          gq::readFE(&v, &slot);
          sum.fetch_add(static_cast<long long>(v));
        }
        return 0;
      },
      nullptr, &cret);
  aligned_t sink;
  gq::readFF(&sink, &pret);
  gq::readFF(&sink, &cret);
  EXPECT_EQ(sum.load(), 1LL * kItems * (kItems + 1) / 2);
}

TEST(Qth, MultipleReadersWakeOnFill) {
  QthScope s(2);
  static aligned_t word;
  static std::atomic<int> done_readers;
  word = 0;
  done_readers = 0;
  gq::feb_empty(&word);
  constexpr int kReaders = 8;
  std::vector<aligned_t> rets(kReaders, 0);
  for (int i = 0; i < kReaders; ++i) {
    gq::fork(
        [](void*) -> aligned_t {
          aligned_t v = 0;
          gq::readFF(&v, &word);  // all block until fill
          done_readers.fetch_add(1);
          return v;
        },
        nullptr, &rets[static_cast<std::size_t>(i)]);
  }
  for (int i = 0; i < 50; ++i) gq::yield();
  EXPECT_EQ(done_readers.load(), 0) << "readers must block on empty word";
  gq::writeF(&word, 31);
  aligned_t sink;
  for (auto& r : rets) {
    gq::readFF(&sink, &r);
    EXPECT_EQ(sink, 31u);
  }
  EXPECT_EQ(done_readers.load(), kReaders);
}

TEST(Qth, NestedForkJoinFromQthread) {
  QthScope s(2);
  static std::atomic<int> total;
  total = 0;
  aligned_t ret = 0;
  gq::fork(
      [](void*) -> aligned_t {
        std::vector<aligned_t> rets(10, 0);
        for (int i = 0; i < 10; ++i) {
          gq::fork(
              [](void*) -> aligned_t {
                total.fetch_add(1);
                return 0;
              },
              nullptr, &rets[static_cast<std::size_t>(i)]);
        }
        aligned_t sink;
        for (auto& r : rets) gq::readFF(&sink, &r);
        return 0;
      },
      nullptr, &ret);
  aligned_t sink;
  gq::readFF(&sink, &ret);
  EXPECT_EQ(total.load(), 10);
}

TEST(Qth, YieldInterleavesOnOneShepherd) {
  QthScope s(1);
  static std::vector<int> order;
  order.clear();
  struct Arg {
    int tag;
  };
  static Arg a0{0}, a1{1};
  aligned_t r0 = 0, r1 = 0;
  auto body = [](void* p) -> aligned_t {
    for (int i = 0; i < 3; ++i) {
      order.push_back(static_cast<Arg*>(p)->tag);
      gq::yield();
    }
    return 0;
  };
  gq::fork_to(0, body, &a0, &r0);
  gq::fork_to(0, body, &a1, &r1);
  aligned_t sink;
  gq::readFF(&sink, &r0);
  gq::readFF(&sink, &r1);
  ASSERT_EQ(order.size(), 6u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i % 2);
}

TEST(Qth, StatsCountFebTraffic) {
  QthScope s(1);
  const auto before = gq::stats();
  aligned_t ret = 0;
  gq::fork([](void*) -> aligned_t { return 0; }, nullptr, &ret);
  aligned_t sink;
  gq::readFF(&sink, &ret);
  const auto after = gq::stats();
  EXPECT_EQ(after.threads_created, before.threads_created + 1);
  EXPECT_GT(after.feb_ops, before.feb_ops)
      << "every fork/join must go through the word-lock table";
}

TEST(Qth, StealsRescueWorkFromBusyShepherd) {
  QthScope s(3);
  // Since the shared-core rebase a plain fork from a shepherd lands on the
  // caller's own deque (run-local). Main *is* shepherd 0's OS thread and
  // below it busy-waits without entering its scheduler, so the forked
  // qthread can only ever execute if an idle shepherd steals it — a
  // deterministic steal-under-contention check (the seed qth had no
  // stealing at all and this test would hang).
  static std::atomic<int> ran_on;
  ran_on.store(-1);
  aligned_t ret = 0;
  gq::fork(
      [](void*) -> aligned_t {
        ran_on.store(gq::shep_rank());
        return 0;
      },
      nullptr, &ret);
  while (ran_on.load() < 0) std::this_thread::yield();
  EXPECT_NE(ran_on.load(), 0) << "a thief shepherd must have run it";
  EXPECT_GT(gq::stats().steals, 0u);
  aligned_t sink = 0;
  gq::readFF(&sink, &ret);
}

TEST(Qth, LockedDispatchRestoresSeedBaseline) {
  namespace env = glto::common;
  env::env_set("QTH_DISPATCH", "locked");
  {
    QthScope s(2);
    EXPECT_EQ(gq::dispatch_mode(), gq::Dispatch::Locked);
    constexpr int kN = 100;
    static std::atomic<int> count;
    count = 0;
    std::vector<aligned_t> rets(kN, 0);
    for (int i = 0; i < kN; ++i) {
      gq::fork(
          [](void*) -> aligned_t {
            count.fetch_add(1);
            return 0;
          },
          nullptr, &rets[static_cast<std::size_t>(i)]);
    }
    aligned_t sink = 0;
    for (auto& r : rets) gq::readFF(&sink, &r);
    EXPECT_EQ(count.load(), kN);
    EXPECT_EQ(gq::stats().steals, 0u) << "locked mode never steals";
  }
  env::env_set("QTH_DISPATCH", nullptr);
  {
    QthScope s(2);
    EXPECT_EQ(gq::dispatch_mode(), gq::Dispatch::WorkStealing)
        << "work stealing is the default dispatch";
  }
}

TEST(Qth, SharedPoolRunsEverything) {
  gq::Config cfg;
  cfg.num_shepherds = 3;
  cfg.bind_threads = false;
  cfg.shared_pool = true;  // §IV-F: one MPMC pool for all shepherds
  gq::init(cfg);
  constexpr int kN = 200;
  static std::atomic<int> count;
  count = 0;
  std::vector<aligned_t> rets(kN, 0);
  for (int i = 0; i < kN; ++i) {
    gq::fork(
        [](void*) -> aligned_t {
          count.fetch_add(1);
          return 0;
        },
        nullptr, &rets[static_cast<std::size_t>(i)]);
  }
  aligned_t sink = 0;
  for (auto& r : rets) gq::readFF(&sink, &r);
  EXPECT_EQ(count.load(), kN);
  gq::finalize();
}

TEST(Qth, ThreadRecordsAreRecycled) {
  QthScope s(1);
  // Burn a first batch so the freelist has stock, then check that the
  // second batch allocates no fresh thread records (created counter grows,
  // reuse keeps the record set stable — observable via steady completion).
  constexpr int kBatch = 64;
  for (int round = 0; round < 3; ++round) {
    std::vector<aligned_t> rets(kBatch, 0);
    for (int i = 0; i < kBatch; ++i) {
      gq::fork([](void*) -> aligned_t { return 1; }, nullptr,
               &rets[static_cast<std::size_t>(i)]);
    }
    aligned_t sink = 0;
    for (auto& r : rets) gq::readFF(&sink, &r);
  }
  const auto st = gq::stats();
  EXPECT_EQ(st.threads_created, 3u * kBatch);
  EXPECT_GT(st.stack_cache_hits, 0u)
      << "recycled qthreads must hit the per-thread stack cache";
}

TEST(Qth, ReinitAfterFinalize) {
  {
    QthScope s(1);
    aligned_t ret = 0;
    gq::fork([](void*) -> aligned_t { return 1; }, nullptr, &ret);
    aligned_t sink;
    gq::readFF(&sink, &ret);
  }
  {
    QthScope s(2);
    EXPECT_EQ(gq::num_shepherds(), 2);
    aligned_t ret = 0;
    gq::fork([](void*) -> aligned_t { return 2; }, nullptr, &ret);
    aligned_t got = 0;
    gq::readFF(&got, &ret);
    EXPECT_EQ(got, 2u);
  }
}
