// Unit tests for the fcontext switching core and the stack pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "fctx/fcontext.hpp"
#include "fctx/stack_pool.hpp"

namespace gf = glto::fctx;

namespace {

// Simple coroutine harness: the context entry repeatedly receives a counter,
// increments it, and jumps back.
struct PingPong {
  gf::fcontext_t peer = nullptr;
  int hops = 0;
};

void pingpong_entry(gf::transfer_t t) {
  auto* st = static_cast<PingPong*>(t.data);
  gf::fcontext_t back = t.from;
  for (;;) {
    st->hops++;
    gf::transfer_t r = gf::jump_fcontext(back, st);
    back = r.from;
    st = static_cast<PingPong*>(r.data);
  }
}

}  // namespace

TEST(Fctx, MakeAndSingleJump) {
  gf::Stack s = gf::StackPool::global().acquire();
  gf::fcontext_t ctx = gf::make_fcontext(s.top, s.size, pingpong_entry);
  PingPong st;
  gf::transfer_t t = gf::jump_fcontext(ctx, &st);
  EXPECT_EQ(st.hops, 1);
  EXPECT_NE(t.from, nullptr);
  gf::StackPool::global().release(s);
}

TEST(Fctx, ManyRoundTrips) {
  gf::Stack s = gf::StackPool::global().acquire();
  gf::fcontext_t ctx = gf::make_fcontext(s.top, s.size, pingpong_entry);
  PingPong st;
  gf::transfer_t t = gf::jump_fcontext(ctx, &st);
  for (int i = 1; i < 1000; ++i) {
    t = gf::jump_fcontext(t.from, &st);
  }
  EXPECT_EQ(st.hops, 1000);
  gf::StackPool::global().release(s);
}

namespace {

void locals_entry(gf::transfer_t t) {
  // Verify stack locals survive suspension.
  volatile std::uint64_t magic[16];
  for (int i = 0; i < 16; ++i) magic[i] = 0xdeadbeef00ull + i;
  gf::transfer_t r = gf::jump_fcontext(t.from, t.data);
  for (int i = 0; i < 16; ++i) {
    if (magic[i] != 0xdeadbeef00ull + i) {
      *static_cast<bool*>(r.data) = false;
      gf::jump_fcontext(r.from, r.data);
    }
  }
  *static_cast<bool*>(r.data) = true;
  gf::jump_fcontext(r.from, r.data);
}

}  // namespace

TEST(Fctx, StackLocalsSurviveSuspension) {
  gf::Stack s = gf::StackPool::global().acquire();
  gf::fcontext_t ctx = gf::make_fcontext(s.top, s.size, locals_entry);
  bool ok = false;
  gf::transfer_t t = gf::jump_fcontext(ctx, &ok);
  gf::jump_fcontext(t.from, &ok);
  EXPECT_TRUE(ok);
  gf::StackPool::global().release(s);
}

namespace {

void chain_entry(gf::transfer_t t) {
  // Each context adds its depth and returns; exercises many live contexts.
  auto* v = static_cast<std::vector<int>*>(t.data);
  v->push_back(static_cast<int>(v->size()));
  gf::jump_fcontext(t.from, t.data);
  ADD_FAILURE() << "context resumed after completion";
}

}  // namespace

TEST(Fctx, ManyLiveContexts) {
  constexpr int kContexts = 64;
  std::vector<gf::Stack> stacks;
  std::vector<int> order;
  for (int i = 0; i < kContexts; ++i) {
    gf::Stack s = gf::StackPool::global().acquire();
    gf::fcontext_t c = gf::make_fcontext(s.top, s.size, chain_entry);
    gf::jump_fcontext(c, &order);
    stacks.push_back(s);
  }
  EXPECT_EQ(order.size(), static_cast<std::size_t>(kContexts));
  for (int i = 0; i < kContexts; ++i) EXPECT_EQ(order[i], i);
  for (auto& s : stacks) gf::StackPool::global().release(s);
}

TEST(StackPool, AcquireGivesUsableAlignedStack) {
  gf::StackPool pool(32 * 1024);
  gf::Stack s = pool.acquire();
  ASSERT_TRUE(s.valid());
  EXPECT_GE(s.size, 32u * 1024u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(s.top) % 16, 0u)
      << "stack top must be 16-byte alignable";
  // Write through the whole usable range (would fault on bad mapping).
  auto* p = static_cast<char*>(s.top) - s.size;
  for (std::size_t i = 0; i < s.size; i += 512) p[i] = char(i);
  pool.release(s);
}

TEST(StackPool, RecyclesReleasedStacks) {
  gf::StackPool pool(16 * 1024);
  gf::Stack a = pool.acquire();
  void* base = a.base;
  pool.release(a);
  gf::Stack b = pool.acquire();
  EXPECT_EQ(b.base, base) << "released stack should be recycled";
  EXPECT_EQ(pool.total_mapped(), 1u);
  pool.release(b);
}

TEST(StackPool, DistinctStacksWhenHeld) {
  gf::StackPool pool(16 * 1024);
  gf::Stack a = pool.acquire();
  gf::Stack b = pool.acquire();
  EXPECT_NE(a.base, b.base);
  EXPECT_EQ(pool.total_mapped(), 2u);
  pool.release(a);
  pool.release(b);
}

TEST(StackPool, RoundsSizeToPages) {
  gf::StackPool pool(1000);  // < 1 page
  EXPECT_GE(pool.stack_size(), 1000u);
  EXPECT_EQ(pool.stack_size() % 4096, 0u);
}

TEST(StackPool, GuardPageFaultsOnOverflow) {
  // The page below the usable range is PROT_NONE: a ULT overflowing its
  // stack must fault immediately instead of silently corrupting the
  // neighbouring mapping. Regression test for the guard-page contract.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  gf::StackPool pool(16 * 1024);
  gf::Stack s = pool.acquire();
  auto* guard = static_cast<volatile char*>(s.base);
  EXPECT_DEATH({ guard[0] = 1; }, "");
  // The page just above the guard is the stack's lowest usable byte.
  auto* lowest = static_cast<char*>(s.top) - s.size;
  lowest[0] = 1;  // must NOT fault
  pool.release(s);
}

TEST(StackPoolCache, GlobalPoolServesFromThreadCache) {
  auto& pool = gf::StackPool::global();
  // Prime the cache, then measure: acquire after release must be a cache
  // hit (lock-free path) and return the just-released stack.
  gf::Stack a = pool.acquire();
  void* base = a.base;
  pool.release(a);
  const auto hits_before = pool.cache_hits();
  gf::Stack b = pool.acquire();
  EXPECT_EQ(b.base, base) << "thread cache is LIFO: hottest stack first";
  EXPECT_EQ(pool.cache_hits(), hits_before + 1);
  pool.release(b);
}

TEST(StackPoolCache, RefillAndSpillUnderChurn) {
  auto& pool = gf::StackPool::global();
  // Hold more stacks than the spill threshold, release them all (forces a
  // spill to the shared freelist), then re-acquire across threads (forces
  // batch refills). Stacks must stay distinct and usable throughout.
  constexpr std::size_t kHeld = gf::StackPool::kCacheSpillHigh + 40;
  std::vector<gf::Stack> held;
  held.reserve(kHeld);
  for (std::size_t i = 0; i < kHeld; ++i) held.push_back(pool.acquire());
  for (std::size_t i = 0; i < kHeld; ++i) {
    for (std::size_t j = i + 1; j < kHeld; ++j) {
      ASSERT_NE(held[i].base, held[j].base);
    }
  }
  for (auto& s : held) pool.release(s);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 500; ++round) {
        gf::Stack s = pool.acquire();
        if (!s.valid()) {
          failures.fetch_add(1);
          continue;
        }
        // Touch top and bottom of the usable range.
        auto* lo = static_cast<char*>(s.top) - s.size;
        lo[0] = static_cast<char>(round);
        static_cast<char*>(s.top)[-1] = static_cast<char>(round);
        pool.release(s);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(pool.cache_hits(), 0u);
}
