// Unit + stress tests for the shared work-stealing scheduler core
// (sched::WsCore / sched::Freelist) that all three LWT backends dispatch
// through since the dispatch-parity PR.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/env.hpp"
#include "common/rng.hpp"
#include "sched/dispatch.hpp"
#include "sched/freelist.hpp"
#include "sched/ws_core.hpp"

namespace gs = glto::sched;

namespace {

gs::WsCoreConfig cfg(int n, bool shared = false, bool ws = true) {
  gs::WsCoreConfig c;
  c.num_workers = n;
  c.shared_pool = shared;
  c.work_stealing = ws;
  return c;
}

}  // namespace

// ----------------------------------------------------------------- routing

TEST(WsCore, OwnerSpawnIsLifoForOwnerAndStealableFifo) {
  gs::WsCore<int*> core(cfg(2));
  int items[3] = {0, 1, 2};
  for (int& i : items) core.submit(0, 0, /*pinned=*/false, &i);
  unsigned tick = 0;
  EXPECT_EQ(core.pop_local(0, &tick), &items[2]) << "owner pops newest";
  glto::common::FastRng rng(7);
  EXPECT_EQ(core.try_steal(1, rng), &items[0]) << "thief steals oldest";
  EXPECT_EQ(core.pop_local(0, &tick), &items[1]);
  EXPECT_EQ(core.pop_local(0, &tick), nullptr);
}

TEST(WsCore, PinnedSubmissionsAreNeverStolen) {
  gs::WsCore<int*> core(cfg(2));
  int x = 0;
  core.submit(0, 1, /*pinned=*/true, &x);
  glto::common::FastRng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(core.try_steal(0, rng), nullptr)
        << "pinned unit sits in the target's owner-only fair queue";
  }
  unsigned tick = 0;
  EXPECT_EQ(core.pop_local(0, &tick), nullptr) << "wrong owner cannot pop it";
  EXPECT_EQ(core.pop_local(1, &tick), &x) << "target owner drains it";
}

TEST(WsCore, RemoteSubmissionLandsOnTargetNotCaller) {
  gs::WsCore<int*> core(cfg(3));
  int x = 0;
  core.submit(/*caller=*/0, /*target=*/2, /*pinned=*/false, &x);
  unsigned tick = 0;
  EXPECT_EQ(core.pop_local(0, &tick), nullptr);
  EXPECT_EQ(core.pop_local(2, &tick), &x);
  int y = 0;
  core.submit(/*caller=*/-1, /*target=*/1, /*pinned=*/false, &y);
  EXPECT_EQ(core.pop_local(1, &tick), &y) << "foreign-thread submit";
}

TEST(WsCore, FairQueueCannotStarveBehindSpawnStorm) {
  gs::WsCore<int*> core(cfg(1));
  int pinned_item = 0;
  core.submit(0, 0, /*pinned=*/true, &pinned_item);
  std::vector<int> storm(200, 0);
  unsigned tick = 0;
  bool fair_served = false;
  // Keep the deque non-empty while popping: the every-64th-tick fair-first
  // check must still serve the pinned unit.
  for (int round = 0; round < 128 && !fair_served; ++round) {
    for (int& s : storm) core.submit(0, 0, false, &s);
    for (std::size_t i = 0; i < storm.size() / 2; ++i) {
      if (core.pop_local(0, &tick) == &pinned_item) {
        fair_served = true;
        break;
      }
    }
  }
  EXPECT_TRUE(fair_served);
}

TEST(WsCore, LockedModeDisablesStealing) {
  gs::WsCore<int*> core(cfg(2, /*shared=*/false, /*ws=*/false));
  EXPECT_FALSE(core.stealing_active());
  int items[4] = {0, 1, 2, 3};
  for (int& i : items) core.submit(0, 0, false, &i);
  glto::common::FastRng rng(3);
  EXPECT_EQ(core.try_steal(1, rng), nullptr);
  unsigned tick = 0;
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(core.pop_local(0, &tick), &items[i]) << "locked pool is FIFO";
  }
}

TEST(WsCore, SharedPoolServesEveryWorker) {
  gs::WsCore<int*> core(cfg(4, /*shared=*/true));
  EXPECT_FALSE(core.stealing_active()) << "one pool: nothing to steal from";
  std::vector<int> items(64, 0);
  for (int& i : items) core.submit(0, 0, false, &i);
  unsigned tick = 0;
  int got = 0;
  for (int rank = 0; rank < 4; ++rank) {
    for (int k = 0; k < 16; ++k) {
      EXPECT_NE(core.pop_local(rank, &tick), nullptr);
      ++got;
    }
  }
  EXPECT_EQ(got, 64);
  EXPECT_EQ(core.pop_local(0, &tick), nullptr);
}

TEST(WsCore, MainSlotIsInvisibleToWorkersAndThieves) {
  gs::WsCore<int*> core(cfg(2));
  int main_item = 0;
  core.push_main(&main_item);
  unsigned tick = 0;
  glto::common::FastRng rng(5);
  EXPECT_EQ(core.pop_local(0, &tick), nullptr);
  EXPECT_EQ(core.pop_local(1, &tick), nullptr);
  EXPECT_EQ(core.try_steal(1, rng), nullptr);
  EXPECT_EQ(core.pop_main(), &main_item) << "only the worker-0 loop pops it";
  EXPECT_EQ(core.pop_main(), nullptr);
}

TEST(WsCore, AcquireReturnsNullOnShutdownWhenDrained) {
  gs::WsCore<int*> core(cfg(1));
  int x = 0;
  core.submit(0, 0, false, &x);
  core.request_shutdown();
  gs::AcquireState st(42);
  EXPECT_EQ(core.acquire(0, st, /*with_main=*/true), &x)
      << "shutdown drains remaining work first";
  EXPECT_EQ(core.acquire(0, st, /*with_main=*/true), nullptr);
}

TEST(WsCore, MaybeWorkProbes) {
  gs::WsCore<int*> core(cfg(2));
  EXPECT_FALSE(core.maybe_work(0, true));
  int x = 0;
  core.submit(1, 1, false, &x);  // victim deque
  EXPECT_TRUE(core.maybe_work(0, false)) << "stealable work elsewhere";
  unsigned tick = 0;
  EXPECT_EQ(core.pop_local(1, &tick), &x);
  EXPECT_FALSE(core.maybe_work(0, false));
  int m = 0;
  core.push_main(&m);
  EXPECT_TRUE(core.maybe_work(0, true));
  EXPECT_FALSE(core.maybe_work(1, false)) << "main slot is worker-0-only";
  EXPECT_EQ(core.pop_main(), &m);
}

// ------------------------------------------------------------ steal stress

TEST(WsCore, StealUnderContentionConservesEveryItem) {
  // One owner spawns and pops on rank 0 while three thieves hammer
  // try_steal — the backends' exact hot-path shape. Every pushed item must
  // be consumed exactly once (lost CAS races must not lose or duplicate).
  gs::WsCore<std::intptr_t*> core(cfg(4));
  constexpr std::intptr_t kItems = 60000;
  std::vector<std::intptr_t> backing(static_cast<std::size_t>(kItems));
  std::atomic<std::intptr_t> sum{0};
  std::atomic<bool> done{false};
  std::vector<std::thread> thieves;
  for (int r = 1; r < 4; ++r) {
    thieves.emplace_back([&, r] {
      glto::common::FastRng rng(static_cast<std::uint64_t>(r) * 77);
      while (!done.load(std::memory_order_acquire)) {
        if (auto* v = core.try_steal(r, rng)) {
          sum.fetch_add(*v, std::memory_order_relaxed);
        }
      }
      while (auto* v = core.try_steal(r, rng)) {
        sum.fetch_add(*v, std::memory_order_relaxed);
      }
    });
  }
  unsigned tick = 0;
  for (std::intptr_t i = 0; i < kItems; ++i) {
    backing[static_cast<std::size_t>(i)] = i + 1;
    core.submit(0, 0, false, &backing[static_cast<std::size_t>(i)]);
    if (i % 7 == 0) {
      if (auto* v = core.pop_local(0, &tick)) {
        sum.fetch_add(*v, std::memory_order_relaxed);
      }
    }
  }
  while (auto* v = core.pop_local(0, &tick)) {
    sum.fetch_add(*v, std::memory_order_relaxed);
  }
  done.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();
  // Thieves may have raced the owner for the last items; drain stragglers.
  glto::common::FastRng rng(1);
  while (auto* v = core.try_steal(1, rng)) {
    sum.fetch_add(*v, std::memory_order_relaxed);
  }
  while (auto* v = core.pop_local(0, &tick)) {
    sum.fetch_add(*v, std::memory_order_relaxed);
  }
  EXPECT_EQ(sum.load(), kItems * (kItems + 1) / 2);
}

TEST(WsCore, ThievesDrainEverythingWhenOwnerStops) {
  // Deterministic steal accounting: the owner only pushes, so every item
  // must leave through a steal — steals ends up exactly kItems and the
  // per-worker counters aggregate across thieves.
  gs::WsCore<std::intptr_t*> core(cfg(3));
  constexpr std::intptr_t kItems = 5000;
  std::vector<std::intptr_t> backing(static_cast<std::size_t>(kItems));
  for (std::intptr_t i = 0; i < kItems; ++i) {
    backing[static_cast<std::size_t>(i)] = i + 1;
    core.submit(0, 0, false, &backing[static_cast<std::size_t>(i)]);
  }
  std::atomic<std::intptr_t> sum{0};
  std::atomic<int> remaining{static_cast<int>(kItems)};
  std::vector<std::thread> thieves;
  for (int r = 1; r < 3; ++r) {
    thieves.emplace_back([&, r] {
      glto::common::FastRng rng(static_cast<std::uint64_t>(r) * 13 + 1);
      while (remaining.load(std::memory_order_acquire) > 0) {
        if (auto* v = core.try_steal(r, rng)) {
          sum.fetch_add(*v, std::memory_order_relaxed);
          remaining.fetch_sub(1, std::memory_order_release);
        }
      }
    });
  }
  for (auto& t : thieves) t.join();
  EXPECT_EQ(sum.load(), kItems * (kItems + 1) / 2);
  const auto st = core.stats();
  EXPECT_EQ(st.steals, static_cast<std::uint64_t>(kItems))
      << "owner never popped: every item must have left through a steal";
}

TEST(WsCore, StolenPayloadPlainFieldsArePublished) {
  // Regression for the Chase–Lev publication protocol: push()/push_n()
  // must publish the pushed unit's *plain* (non-atomic) fields to thieves
  // via a release STORE on bottom_, not the Lê et al. release fence +
  // relaxed store. The fence form is equally correct C++ but invisible to
  // TSan (gcc's TSan does not model atomic_thread_fence), so every stolen
  // payload read below would report as a race — the TSan CI leg arms this
  // test against regressing to the fence form, and the value checks catch
  // genuine publication bugs on weakly-ordered targets.
  struct Unit {
    std::intptr_t a = 0;
    std::intptr_t b = 0;  // plain fields: only the deque orders them
  };
  gs::WsCore<Unit*> core(cfg(2));
  constexpr std::intptr_t kRounds = 20000;
  std::vector<Unit> backing(static_cast<std::size_t>(kRounds));
  std::atomic<bool> done{false};
  std::atomic<std::intptr_t> stolen_sum{0};
  std::atomic<std::intptr_t> stolen_count{0};
  std::thread thief([&] {
    glto::common::FastRng rng(7);
    for (;;) {
      if (Unit* u = core.try_steal(1, rng)) {
        // Ordered after the owner's plain writes solely by the steal's
        // acquire loads on the deque indices.
        EXPECT_EQ(u->b, u->a + 1);
        stolen_sum.fetch_add(u->a, std::memory_order_relaxed);
        stolen_count.fetch_add(1, std::memory_order_relaxed);
      } else if (done.load(std::memory_order_acquire)) {
        break;
      }
    }
  });
  unsigned tick = 0;
  std::intptr_t local_sum = 0;
  std::intptr_t local_count = 0;
  auto drain_local = [&](Unit* u) {
    EXPECT_EQ(u->b, u->a + 1);
    local_sum += u->a;
    ++local_count;
  };
  for (std::intptr_t i = 0; i < kRounds; ++i) {
    auto& u = backing[static_cast<std::size_t>(i)];
    u.a = i + 1;
    u.b = i + 2;
    if (i % 3 == 0) {
      Unit* ptr = &u;
      // Exercise the batch publication (push_n) alongside single pushes.
      core.submit_bulk(0, &ptr, 1, gs::BulkHint::local);
    } else {
      core.submit(0, 0, false, &u);
    }
    if (i % 5 == 0) {
      if (Unit* popped = core.pop_local(0, &tick)) drain_local(popped);
    }
  }
  while (Unit* popped = core.pop_local(0, &tick)) drain_local(popped);
  done.store(true, std::memory_order_release);
  thief.join();
  EXPECT_EQ(local_count + stolen_count.load(), kRounds);
  EXPECT_EQ(local_sum + stolen_sum.load(), kRounds * (kRounds + 1) / 2);
}

// ------------------------------------------------------------ wake protocol

TEST(WsCore, WakeOneTargetedWakeReachesParkedOwner) {
  // A consumer parks on its own parker; a pinned submit targeted at it
  // must claim its idle bit and unpark it — repeatedly, across many
  // park/push races. A lost wakeup would cost a full park timeout per
  // item; the bound below (well under kItems * kParkMaxUs) fails loudly
  // if wakes stop landing.
  gs::WsCore<std::intptr_t*> core(cfg(2));
  constexpr int kItems = 400;
  std::atomic<std::intptr_t> sum{0};
  std::thread consumer([&] {
    gs::AcquireState st(7);
    for (;;) {
      auto* v = core.acquire(1, st, /*with_main=*/false);
      if (v == nullptr) break;  // shutdown + drained
      sum.fetch_add(*v, std::memory_order_relaxed);
    }
  });
  std::vector<std::intptr_t> backing(kItems);
  std::intptr_t pushed_sum = 0;
  for (int i = 0; i < kItems; ++i) {
    backing[static_cast<std::size_t>(i)] = i + 1;
    pushed_sum += i + 1;
    core.submit(/*caller=*/0, /*target=*/1, /*pinned=*/true,
                &backing[static_cast<std::size_t>(i)]);
    if (i % 16 == 0) {
      // Give the consumer time to drain and park again, exercising the
      // advertise → probe → park → claim → unpark cycle.
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (sum.load(std::memory_order_acquire) != pushed_sum) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "consumer stalled: lost wakeup or broken idle-mask protocol";
    std::this_thread::yield();
  }
  // Second phase: poke single items until a targeted unpark is observed.
  // Each poke waits for the consumer to *advertise* idleness first — on a
  // loaded host a blind fixed cadence can miss the park window every
  // time (the consumer gets descheduled pre-park and drains the item
  // without ever parking), so only a deposit landing on an advertised-
  // idle worker proves the claim/unpark path. The deadline trips only
  // when wakes can no longer land at all.
  std::intptr_t extra = 1000;
  backing.push_back(0);
  while (core.stats().wakes_issued == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    while (!core.idle_advertised(1) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
    backing.back() = ++extra;
    pushed_sum += extra;
    core.submit(0, 1, /*pinned=*/true, &backing.back());
    while (sum.load(std::memory_order_acquire) != pushed_sum &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
  }
  EXPECT_GT(core.stats().wakes_issued, 0u)
      << "parked consumer was never unparked";
  core.request_shutdown();
  consumer.join();
}

TEST(WsCore, WakeStatsStayConsistentUnderConcurrentPushParkRaces) {
  // Two consumers race a producer that alternates stealable and targeted
  // deposits. Conservation must hold and every counter must stay sane —
  // in particular spurious wakes (woken, probed, found nothing because
  // the sibling won the race) must be counted, never hang the loop.
  gs::WsCore<std::intptr_t*> core(cfg(3));
  constexpr std::intptr_t kItems = 20000;
  std::atomic<std::intptr_t> sum{0};
  std::vector<std::thread> consumers;
  for (int r = 1; r < 3; ++r) {
    consumers.emplace_back([&, r] {
      gs::AcquireState st(static_cast<std::uint64_t>(r) * 31);
      for (;;) {
        auto* v = core.acquire(r, st, /*with_main=*/false);
        if (v == nullptr) break;
        sum.fetch_add(*v, std::memory_order_relaxed);
      }
    });
  }
  std::vector<std::intptr_t> backing(static_cast<std::size_t>(kItems));
  for (std::intptr_t i = 0; i < kItems; ++i) {
    backing[static_cast<std::size_t>(i)] = i + 1;
    if (i % 3 == 0) {
      core.submit(0, 1 + static_cast<int>(i % 2), /*pinned=*/true,
                  &backing[static_cast<std::size_t>(i)]);
    } else {
      core.submit(0, 0, /*pinned=*/false,
                  &backing[static_cast<std::size_t>(i)]);
    }
    if (i % 512 == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  // Unstolen items may still sit on rank 0's deque: drain them here.
  unsigned tick = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  const std::intptr_t want = kItems * (kItems + 1) / 2;
  while (sum.load(std::memory_order_acquire) != want) {
    while (auto* v = core.pop_local(0, &tick)) {
      sum.fetch_add(*v, std::memory_order_relaxed);
    }
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::yield();
  }
  core.request_shutdown();
  for (auto& t : consumers) t.join();
  const auto st = core.stats();
  EXPECT_LE(st.wakes_spurious, st.parks)
      << "a spurious wake is counted at most once per park";
}

TEST(WsCore, AllPolicyBroadcastsAndOnePolicyTargets) {
  glto::common::env_set("GLTO_WAKE_POLICY", nullptr);
  gs::WsCoreConfig c = cfg(2);
  c.wake_policy = gs::WakePolicy::All;
  gs::WsCore<int*> all_core(c);
  EXPECT_EQ(all_core.wake_policy(), gs::WakePolicy::All);
  c.wake_policy = gs::WakePolicy::Auto;  // resolves to the default
  gs::WsCore<int*> auto_core(c);
  EXPECT_EQ(auto_core.wake_policy(), gs::WakePolicy::One);
}

TEST(Dispatch, ResolveWakePolicyFromEnv) {
  namespace env = glto::common;
  env::env_set("TEST_WAKE", "all");
  EXPECT_EQ(gs::resolve_wake_policy(gs::WakePolicy::Auto, "TEST_WAKE"),
            gs::WakePolicy::All);
  env::env_set("TEST_WAKE", "Threshold");
  EXPECT_EQ(gs::resolve_wake_policy(gs::WakePolicy::Auto, "TEST_WAKE"),
            gs::WakePolicy::Threshold);
  env::env_set("TEST_WAKE", "garbage");
  EXPECT_EQ(gs::resolve_wake_policy(gs::WakePolicy::Auto, "TEST_WAKE"),
            gs::WakePolicy::One)
      << "unrecognized value falls back to wake-one (with a warning)";
  env::env_set("TEST_WAKE", nullptr);
  EXPECT_EQ(gs::resolve_wake_policy(gs::WakePolicy::Auto, "TEST_WAKE"),
            gs::WakePolicy::One);
  EXPECT_EQ(gs::resolve_wake_policy(gs::WakePolicy::All, "TEST_WAKE"),
            gs::WakePolicy::All)
      << "explicit requests bypass the environment";
}

// ------------------------------------------------------------- bulk deposit

TEST(WsCore, SubmitBulkSpreadReachesEveryVictimOnce) {
  gs::WsCore<std::intptr_t*> core(cfg(4));
  constexpr std::intptr_t kItems = 64;
  std::vector<std::intptr_t> backing(static_cast<std::size_t>(kItems));
  std::vector<std::intptr_t*> items(static_cast<std::size_t>(kItems));
  for (std::intptr_t i = 0; i < kItems; ++i) {
    backing[static_cast<std::size_t>(i)] = i + 1;
    items[static_cast<std::size_t>(i)] = &backing[static_cast<std::size_t>(i)];
  }
  core.submit_bulk(0, items.data(), items.size(), gs::BulkHint::spread);
  EXPECT_EQ(core.stats().bulk_deposits, 1u) << "one deposit for the batch";
  // Every worker owns a contiguous chunk; draining all four pools must
  // recover every item exactly once.
  std::intptr_t sum = 0;
  unsigned tick = 0;
  int victims_with_work = 0;
  for (int rank = 0; rank < 4; ++rank) {
    bool got = false;
    while (auto* v = core.pop_local(rank, &tick)) {
      sum += *v;
      got = true;
    }
    victims_with_work += got ? 1 : 0;
  }
  EXPECT_EQ(sum, kItems * (kItems + 1) / 2);
  EXPECT_EQ(victims_with_work, 4)
      << "wake-one spreads a 64-unit batch across the whole team";
}

TEST(WsCore, SubmitBulkLocalIsStealableAndConserved) {
  gs::WsCore<std::intptr_t*> core(cfg(3));
  constexpr std::intptr_t kItems = 3000;
  std::vector<std::intptr_t> backing(static_cast<std::size_t>(kItems));
  std::vector<std::intptr_t*> items(static_cast<std::size_t>(kItems));
  for (std::intptr_t i = 0; i < kItems; ++i) {
    backing[static_cast<std::size_t>(i)] = i + 1;
    items[static_cast<std::size_t>(i)] = &backing[static_cast<std::size_t>(i)];
  }
  core.submit_bulk(0, items.data(), items.size(), gs::BulkHint::local);
  std::atomic<std::intptr_t> sum{0};
  std::atomic<int> remaining{static_cast<int>(kItems)};
  std::vector<std::thread> thieves;
  for (int r = 1; r < 3; ++r) {
    thieves.emplace_back([&, r] {
      glto::common::FastRng rng(static_cast<std::uint64_t>(r) * 17 + 3);
      while (remaining.load(std::memory_order_acquire) > 0) {
        if (auto* v = core.try_steal(r, rng)) {
          sum.fetch_add(*v, std::memory_order_relaxed);
          remaining.fetch_sub(1, std::memory_order_release);
        }
      }
    });
  }
  unsigned tick = 0;
  while (remaining.load(std::memory_order_acquire) > 0) {
    if (auto* v = core.pop_local(0, &tick)) {
      sum.fetch_add(*v, std::memory_order_relaxed);
      remaining.fetch_sub(1, std::memory_order_release);
    }
  }
  for (auto& t : thieves) t.join();
  EXPECT_EQ(sum.load(), kItems * (kItems + 1) / 2)
      << "a local bulk deposit must be fully visible to owner and thieves";
}

TEST(WsCore, SubmitBulkThresholdEngagesVictimsProportionally) {
  glto::common::env_set("GLTO_WAKE_POLICY", nullptr);
  gs::WsCoreConfig c = cfg(8);
  c.wake_policy = gs::WakePolicy::Threshold;
  gs::WsCore<std::intptr_t*> core(c);
  // 8 units at grain 4 → 2 victims, not 8: small batches must not pay one
  // deposit per worker of team width.
  std::vector<std::intptr_t> backing(8);
  std::vector<std::intptr_t*> items(8);
  for (int i = 0; i < 8; ++i) {
    backing[static_cast<std::size_t>(i)] = i + 1;
    items[static_cast<std::size_t>(i)] = &backing[static_cast<std::size_t>(i)];
  }
  core.submit_bulk(0, items.data(), items.size(), gs::BulkHint::spread);
  unsigned tick = 0;
  int victims_with_work = 0;
  std::intptr_t sum = 0;
  for (int rank = 0; rank < 8; ++rank) {
    bool got = false;
    while (auto* v = core.pop_local(rank, &tick)) {
      sum += *v;
      got = true;
    }
    victims_with_work += got ? 1 : 0;
  }
  EXPECT_EQ(sum, 36);
  EXPECT_EQ(victims_with_work, 2)
      << "threshold: ⌈8/kBulkWakeGrain⌉ victims for an 8-unit batch";
}

TEST(WsCore, SubmitBulkLockedModeScattersOverSeedFifos) {
  gs::WsCore<std::intptr_t*> core(cfg(2, /*shared=*/false, /*ws=*/false));
  std::vector<std::intptr_t> backing(10);
  std::vector<std::intptr_t*> items(10);
  for (int i = 0; i < 10; ++i) {
    backing[static_cast<std::size_t>(i)] = i + 1;
    items[static_cast<std::size_t>(i)] = &backing[static_cast<std::size_t>(i)];
  }
  core.submit_bulk(0, items.data(), items.size(), gs::BulkHint::spread);
  unsigned tick = 0;
  std::intptr_t sum = 0;
  for (int rank = 0; rank < 2; ++rank) {
    while (auto* v = core.pop_local(rank, &tick)) sum += *v;
  }
  EXPECT_EQ(sum, 55);
}

TEST(WsCore, ChaseLevPushNPublishesAcrossGrowth) {
  gs::ChaseLevDeque<std::intptr_t*> deque(8);  // forces several growths
  constexpr std::intptr_t kItems = 1000;
  std::vector<std::intptr_t> backing(static_cast<std::size_t>(kItems));
  std::vector<std::intptr_t*> items(static_cast<std::size_t>(kItems));
  for (std::intptr_t i = 0; i < kItems; ++i) {
    backing[static_cast<std::size_t>(i)] = i + 1;
    items[static_cast<std::size_t>(i)] = &backing[static_cast<std::size_t>(i)];
  }
  deque.push_n(items.data(), 100);
  // Interleave owner pops with a second batch: bottom/top bookkeeping must
  // stay coherent across the grow inside push_n.
  std::intptr_t sum = 0;
  std::intptr_t* out = nullptr;
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(deque.pop(&out));
    sum += *out;
  }
  deque.push_n(items.data() + 100, static_cast<std::size_t>(kItems) - 100);
  while (deque.pop(&out)) sum += *out;
  EXPECT_EQ(sum, kItems * (kItems + 1) / 2);
}

// ---------------------------------------------------------------- freelist

namespace {
struct Rec {
  int payload = 0;
};
}  // namespace

TEST(Freelist, RecyclesThroughOwnerList) {
  gs::Freelist<Rec> fl(2);
  EXPECT_EQ(fl.try_alloc(0), nullptr) << "starts empty";
  auto* a = new Rec();
  fl.recycle(0, a);
  EXPECT_EQ(fl.try_alloc(0), a) << "owner list returns the recycled record";
  fl.recycle(0, a);  // give it back for the dtor to free
}

TEST(Freelist, ForeignRecycleGoesThroughSlabAndRefills) {
  gs::Freelist<Rec> fl(2);
  std::vector<Rec*> recs;
  for (int i = 0; i < 40; ++i) {
    auto* r = new Rec();
    recs.push_back(r);
    fl.recycle(-1, r);  // foreign thread: slab path
  }
  EXPECT_EQ(fl.slab_size_approx(), 40u);
  // Worker 0 refills a batch from the slab lock-free thereafter.
  int got = 0;
  while (fl.try_alloc(0) != nullptr) ++got;
  EXPECT_EQ(got, 40) << "all foreign-recycled records become allocatable";
  for (Rec* r : recs) fl.recycle(0, r);  // dtor frees
}

TEST(Freelist, OversizedLocalListSpillsToSlab) {
  gs::Freelist<Rec> fl(2);
  const std::size_t n = gs::Freelist<Rec>::kSpillHigh + 8;
  for (std::size_t i = 0; i < n; ++i) fl.recycle(0, new Rec());
  EXPECT_GT(fl.slab_size_approx(), 0u)
      << "past kSpillHigh half the local list moves to the shared slab";
  // Worker 1 (whose list is empty) can now allocate from the slab.
  Rec* r = fl.try_alloc(1);
  ASSERT_NE(r, nullptr);
  fl.recycle(1, r);  // dtor frees everything still in the freelist
}

TEST(Freelist, RanksOutOfRangeFallBackToSlab) {
  gs::Freelist<Rec> fl(1);
  auto* r = new Rec();
  fl.recycle(7, r);  // out-of-range rank must not index a list
  EXPECT_EQ(fl.slab_size_approx(), 1u);
  // Out-of-range ranks allocate through the slab too: without this, a
  // process churning past the pool's worker count would recycle into the
  // slab forever and never drain it (unbounded growth).
  EXPECT_EQ(fl.try_alloc(7), r);
  EXPECT_EQ(fl.slab_size_approx(), 0u);
  EXPECT_EQ(fl.try_alloc(-1), nullptr) << "slab empty: caller allocates";
  fl.recycle(-1, r);
  EXPECT_EQ(fl.try_alloc(0), r) << "in-range refill still works";
  fl.recycle(0, r);
}

TEST(Dispatch, ResolveFromEnv) {
  namespace env = glto::common;
  env::env_set("TEST_DISPATCH", "locked");
  EXPECT_EQ(gs::resolve_dispatch(gs::Dispatch::Auto, "TEST_DISPATCH"),
            gs::Dispatch::Locked);
  env::env_set("TEST_DISPATCH", "WS");
  EXPECT_EQ(gs::resolve_dispatch(gs::Dispatch::Auto, "TEST_DISPATCH"),
            gs::Dispatch::WorkStealing);
  env::env_set("TEST_DISPATCH", "garbage");
  EXPECT_EQ(gs::resolve_dispatch(gs::Dispatch::Auto, "TEST_DISPATCH"),
            gs::Dispatch::WorkStealing)
      << "unrecognized value falls back to ws (with a warning)";
  env::env_set("TEST_DISPATCH", nullptr);
  EXPECT_EQ(gs::resolve_dispatch(gs::Dispatch::Auto, "TEST_DISPATCH"),
            gs::Dispatch::WorkStealing);
  EXPECT_EQ(gs::resolve_dispatch(gs::Dispatch::Locked, "TEST_DISPATCH"),
            gs::Dispatch::Locked)
      << "explicit requests bypass the environment";
}
