// Unit + stress tests for the concurrent queue toolkit.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "sched/chase_lev.hpp"
#include "sched/locked_queue.hpp"
#include "sched/mpmc_queue.hpp"
#include "sched/overflow_queue.hpp"

namespace gs = glto::sched;

TEST(ChaseLev, LifoOwnerOrder) {
  gs::ChaseLevDeque<int> d;
  for (int i = 0; i < 10; ++i) d.push(i);
  int out = -1;
  for (int i = 9; i >= 0; --i) {
    ASSERT_TRUE(d.pop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(d.pop(&out));
}

TEST(ChaseLev, FifoStealOrder) {
  gs::ChaseLevDeque<int> d;
  for (int i = 0; i < 10; ++i) d.push(i);
  int out = -1;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(d.steal(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(d.steal(&out));
}

TEST(ChaseLev, GrowsPastInitialCapacity) {
  gs::ChaseLevDeque<int> d(8);
  for (int i = 0; i < 1000; ++i) d.push(i);
  EXPECT_EQ(d.size_approx(), 1000);
  int out;
  for (int i = 999; i >= 0; --i) {
    ASSERT_TRUE(d.pop(&out));
    EXPECT_EQ(out, i);
  }
}

TEST(ChaseLev, OwnerPopVsThievesStress) {
  gs::ChaseLevDeque<std::intptr_t> d;
  constexpr std::intptr_t kItems = 50000;
  constexpr int kThieves = 3;
  std::atomic<std::intptr_t> sum{0};
  std::atomic<bool> done{false};
  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      std::intptr_t v;
      while (!done.load(std::memory_order_acquire)) {
        if (d.steal(&v)) sum.fetch_add(v, std::memory_order_relaxed);
      }
      while (d.steal(&v)) sum.fetch_add(v, std::memory_order_relaxed);
    });
  }
  std::intptr_t v;
  for (std::intptr_t i = 1; i <= kItems; ++i) {
    d.push(i);
    if (i % 7 == 0 && d.pop(&v)) sum.fetch_add(v, std::memory_order_relaxed);
  }
  while (d.pop(&v)) sum.fetch_add(v, std::memory_order_relaxed);
  done.store(true, std::memory_order_release);
  for (auto& th : thieves) th.join();
  EXPECT_EQ(sum.load(), kItems * (kItems + 1) / 2)
      << "every pushed item must be consumed exactly once";
}

TEST(LockedQueue, FifoOrder) {
  gs::LockedQueue<int> q;
  for (int i = 0; i < 5; ++i) q.push(i);
  for (int i = 0; i < 5; ++i) {
    auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.pop().has_value());
}

TEST(LockedQueue, PushFrontJumpsQueue) {
  gs::LockedQueue<int> q;
  q.push(1);
  q.push_front(0);
  EXPECT_EQ(*q.pop(), 0);
  EXPECT_EQ(*q.pop(), 1);
}

TEST(LockedQueue, PopBack) {
  gs::LockedQueue<int> q;
  q.push(1);
  q.push(2);
  EXPECT_EQ(*q.pop_back(), 2);
  EXPECT_EQ(*q.pop_back(), 1);
  EXPECT_FALSE(q.pop_back().has_value());
}

TEST(LockedQueue, ConcurrentProducersConsumers) {
  gs::LockedQueue<int> q;
  constexpr int kPerProducer = 20000;
  constexpr int kProducers = 2, kConsumers = 2;
  std::atomic<long long> sum{0};
  std::atomic<int> consumed{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&] {
      for (int i = 1; i <= kPerProducer; ++i) q.push(i);
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (consumed.load() < kProducers * kPerProducer) {
        if (auto v = q.pop()) {
          sum.fetch_add(*v);
          consumed.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(sum.load(),
            2LL * kPerProducer * (kPerProducer + 1) / 2);
}

TEST(BoundedDeque, RejectsWhenFull) {
  gs::BoundedDeque<int> d(2);
  EXPECT_TRUE(d.try_push(1));
  EXPECT_TRUE(d.try_push(2));
  EXPECT_FALSE(d.try_push(3)) << "cut-off: full deque rejects";
  EXPECT_EQ(d.size(), 2u);
}

TEST(BoundedDeque, OwnerLifoThiefFifo) {
  gs::BoundedDeque<int> d(8);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(d.try_push(i));
  EXPECT_EQ(*d.pop_owner(), 3) << "owner pops newest (locality)";
  EXPECT_EQ(*d.steal(), 0) << "thief steals oldest";
  EXPECT_EQ(*d.pop_owner(), 2);
  EXPECT_EQ(*d.steal(), 1);
  EXPECT_FALSE(d.pop_owner().has_value());
  EXPECT_FALSE(d.steal().has_value());
}

TEST(Mpmc, FifoSingleThread) {
  gs::MpmcQueue<int> q(16);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(q.try_push(i));
  for (int i = 0; i < 10; ++i) {
    auto v = q.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(Mpmc, FullAndEmptyBoundaries) {
  gs::MpmcQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_FALSE(q.try_push(99)) << "full queue rejects";
  EXPECT_EQ(*q.try_pop(), 0);
  EXPECT_TRUE(q.try_push(4)) << "slot freed by pop is reusable";
}

TEST(Mpmc, WrapsAroundManyTimes) {
  gs::MpmcQueue<int> q(8);
  for (int round = 0; round < 1000; ++round) {
    for (int i = 0; i < 8; ++i) ASSERT_TRUE(q.try_push(round * 8 + i));
    for (int i = 0; i < 8; ++i) ASSERT_EQ(*q.try_pop(), round * 8 + i);
  }
}

TEST(Mpmc, ConcurrentStress) {
  gs::MpmcQueue<int> q(256);
  constexpr int kPerProducer = 30000;
  constexpr int kProducers = 2, kConsumers = 2;
  std::atomic<long long> sum{0};
  std::atomic<int> consumed{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&] {
      for (int i = 1; i <= kPerProducer; ++i) {
        while (!q.try_push(i)) std::this_thread::yield();
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (consumed.load() < kProducers * kPerProducer) {
        if (auto v = q.try_pop()) {
          sum.fetch_add(*v);
          consumed.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(sum.load(), 2LL * kPerProducer * (kPerProducer + 1) / 2);
}

TEST(ChaseLev, StealStormWithGrowthUnderFire) {
  // Small initial capacity forces grow() while thieves are actively
  // stealing — the hardest Chase–Lev path (retired arrays must stay
  // readable by in-flight steals).
  gs::ChaseLevDeque<std::intptr_t> d(8);
  constexpr std::intptr_t kItems = 80000;
  constexpr int kThieves = 4;
  std::atomic<std::intptr_t> sum{0};
  std::atomic<bool> done{false};
  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      std::intptr_t v;
      while (!done.load(std::memory_order_acquire)) {
        if (d.steal(&v)) sum.fetch_add(v, std::memory_order_relaxed);
      }
      while (d.steal(&v)) sum.fetch_add(v, std::memory_order_relaxed);
    });
  }
  std::intptr_t v;
  for (std::intptr_t i = 1; i <= kItems; ++i) {
    d.push(i);
    // Bursty owner pops: drain a few then push on, so bottom crosses top
    // repeatedly (the last-element CAS race with thieves).
    if (i % 13 == 0) {
      for (int k = 0; k < 3 && d.pop(&v); ++k) {
        sum.fetch_add(v, std::memory_order_relaxed);
      }
    }
  }
  while (d.pop(&v)) sum.fetch_add(v, std::memory_order_relaxed);
  done.store(true, std::memory_order_release);
  for (auto& th : thieves) th.join();
  EXPECT_EQ(sum.load(), kItems * (kItems + 1) / 2)
      << "every pushed item must be consumed exactly once";
}

TEST(OverflowQueue, FifoOnFastPath) {
  gs::OverflowQueue<int> q(16);
  for (int i = 0; i < 10; ++i) q.push(i);
  for (int i = 0; i < 10; ++i) {
    auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i) << "under ring capacity the queue is plain MPMC FIFO";
  }
  EXPECT_FALSE(q.pop().has_value());
}

TEST(OverflowQueue, NeverRejectsPastRingCapacity) {
  gs::OverflowQueue<int> q(4);
  constexpr int kN = 1000;  // 250× the ring
  for (int i = 0; i < kN; ++i) q.push(i);
  EXPECT_EQ(q.size_approx(), static_cast<std::size_t>(kN));
  long long sum = 0;
  int got = 0;
  while (auto v = q.pop()) {
    sum += *v;
    ++got;
  }
  EXPECT_EQ(got, kN);
  EXPECT_EQ(sum, 1LL * kN * (kN - 1) / 2);
}

TEST(OverflowQueue, DrainsOverflowPromptly) {
  gs::OverflowQueue<int> q(4);
  for (int i = 0; i < 8; ++i) q.push(i);  // 4 in ring, 4 overflowed
  // Consumers must see overflowed items without first emptying the ring
  // completely *and* must never lose one.
  std::vector<bool> seen(8, false);
  while (auto v = q.pop()) seen[static_cast<std::size_t>(*v)] = true;
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(seen[static_cast<std::size_t>(i)]);
}

TEST(OverflowQueue, ConcurrentStressAcrossBoundary) {
  gs::OverflowQueue<int> q(32);  // small ring: overflow engages constantly
  constexpr int kPerProducer = 30000;
  constexpr int kProducers = 2, kConsumers = 2;
  std::atomic<long long> sum{0};
  std::atomic<int> consumed{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&] {
      for (int i = 1; i <= kPerProducer; ++i) q.push(i);
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (consumed.load() < kProducers * kPerProducer) {
        if (auto v = q.pop()) {
          sum.fetch_add(*v);
          consumed.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(sum.load(), 2LL * kPerProducer * (kPerProducer + 1) / 2);
}
