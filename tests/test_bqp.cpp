// Blocked box-QP IPM (src/apps/bqp): sequential reference converges to
// KKT < 1e-8, the blocked-Cholesky micro-driver is exact, and the
// depend-task and taskwait-barrier schedules reproduce the sequential
// result across all five runtimes.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "apps/bqp.hpp"
#include "omp/omp.hpp"

namespace o = glto::omp;
namespace q = glto::apps::bqp;

namespace {

double max_abs_diff(const std::vector<double>& a,
                    const std::vector<double>& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::fabs(a[i] - b[i]));
  }
  return worst;
}

}  // namespace

TEST(Bqp, SequentialSolveConverges) {
  const q::Problem p = q::make_problem(64, 16, 8, 0xB09);
  const q::Result r = q::solve(p, q::Mode::sequential);
  EXPECT_TRUE(r.converged) << "iters=" << r.iters << " kkt=" << r.kkt;
  EXPECT_LT(r.kkt, 1e-8);
  // The box was built tight enough that some bounds are active: at an
  // active bound the multiplier is strictly positive.
  int active = 0;
  for (int i = 0; i < p.n; ++i) {
    const auto ii = static_cast<std::size_t>(i);
    if (r.zl[ii] > 1e-4 || r.zu[ii] > 1e-4) ++active;
  }
  EXPECT_GT(active, 0) << "instance degenerated to an unconstrained QP";
}

TEST(Bqp, SequentialCholeskyRoundtripIsExact) {
  std::vector<double> A, b;
  q::make_spd(64, 0x5EED, A, b);
  std::vector<double> Af = A, x(64);
  q::factor_solve_inplace(Af.data(), x.data(), b.data(), 64, 16,
                          q::Mode::sequential);
  EXPECT_LT(q::residual_inf(A, x, b, 64), 1e-8);
}

class BqpSched : public ::testing::TestWithParam<o::RuntimeKind> {
 protected:
  void SetUp() override {
    o::SelectOptions opts;
    opts.num_threads = 4;
    opts.bind_threads = false;
    opts.active_wait = false;
    o::select(GetParam(), opts);
  }
  void TearDown() override { o::shutdown(); }
};

TEST_P(BqpSched, TaskdepCholeskyMatchesSequential) {
  std::vector<double> A, b;
  q::make_spd(64, 0xC0DE, A, b);
  std::vector<double> Af = A, x(64);
  q::factor_solve_inplace(Af.data(), x.data(), b.data(), 64, 16,
                          q::Mode::taskdep);
  EXPECT_LT(q::residual_inf(A, x, b, 64), 1e-8);
  const o::TaskStats st = o::task_stats();
  EXPECT_GT(st.deps_registered, 0u);
}

TEST_P(BqpSched, DagScheduledSolveMatchesSequential) {
  const q::Problem p = q::make_problem(64, 16, 8, 0xB09);
  const q::Result ref = q::solve(p, q::Mode::sequential);
  ASSERT_TRUE(ref.converged);

  const q::Result dag = q::solve(p, q::Mode::taskdep);
  EXPECT_TRUE(dag.converged);
  EXPECT_LT(dag.kkt, 1e-8);
  EXPECT_LT(max_abs_diff(dag.x, ref.x), 1e-6);

  const q::Result bar = q::solve(p, q::Mode::taskwait);
  EXPECT_TRUE(bar.converged);
  EXPECT_LT(bar.kkt, 1e-8);
  EXPECT_LT(max_abs_diff(bar.x, ref.x), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    AllRuntimes, BqpSched,
    ::testing::Values(o::RuntimeKind::gnu, o::RuntimeKind::intel,
                      o::RuntimeKind::glto_abt, o::RuntimeKind::glto_qth,
                      o::RuntimeKind::glto_mth),
    [](const ::testing::TestParamInfo<o::RuntimeKind>& info) {
      std::string name = o::kind_name(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });
