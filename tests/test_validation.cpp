// Validation-suite tests: suite structure, per-runtime pass/fail pattern
// (the Table I reproduction), and the task-semantics differentiators.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "apps/validation.hpp"
#include "omp/omp.hpp"

namespace v = glto::apps::validation;
namespace o = glto::omp;

namespace {

int count_failures_named(const v::SuiteResult& r, const std::string& stem) {
  int n = 0;
  for (const auto& f : r.failed_names) {
    if (f.find(stem) != std::string::npos) ++n;
  }
  return n;
}

v::SuiteResult run_with(o::RuntimeKind kind) {
  o::SelectOptions opts;
  opts.num_threads = 4;
  opts.bind_threads = false;
  opts.active_wait = false;
  o::select(kind, opts);
  auto res = v::run_suite();
  o::shutdown();
  return res;
}

}  // namespace

TEST(ValidationSuite, Has123Tests) {
  EXPECT_EQ(v::suite().size(), 123u) << "OpenUH suite 3.1 runs 123 tests";
}

TEST(ValidationSuite, CoversManyConstructs) {
  EXPECT_GE(v::construct_count(), 50)
      << "the suite spans the OpenMP 3.1 construct set (paper: 62)";
}

TEST(ValidationSuite, AllThreeModesPresent) {
  std::set<v::Mode> modes;
  for (const auto& tc : v::suite()) modes.insert(tc.mode);
  EXPECT_EQ(modes.size(), 3u) << "normal, cross, orphan";
}

TEST(ValidationSuite, TaskSemanticsTestsPresent) {
  int taskyield = 0, untied = 0, final_tests = 0;
  for (const auto& tc : v::suite()) {
    if (tc.name == "omp_taskyield") ++taskyield;
    if (tc.name == "omp_task_untied") ++untied;
    if (tc.name == "omp_task_final") ++final_tests;
  }
  EXPECT_EQ(taskyield, 2);
  EXPECT_EQ(untied, 2);
  EXPECT_EQ(final_tests, 1);
}

TEST(ValidationSuite, NamesAreUniquePerMode) {
  std::set<std::pair<std::string, v::Mode>> seen;
  for (const auto& tc : v::suite()) {
    EXPECT_TRUE(seen.emplace(tc.name, tc.mode).second)
        << tc.name << "/" << v::mode_name(tc.mode);
  }
}

// --- the Table I pattern, runtime by runtime --------------------------------

TEST(ValidationTableI, GnuFailsExactlyTheTaskSemanticsTests) {
  const auto r = run_with(o::RuntimeKind::gnu);
  EXPECT_EQ(r.total, 123);
  EXPECT_EQ(r.total - r.passed, 5)
      << "paper: GNU fails 5 (taskyield x2, untied x2, final)";
  EXPECT_EQ(count_failures_named(r, "omp_taskyield"), 2);
  EXPECT_EQ(count_failures_named(r, "omp_task_untied"), 2);
  EXPECT_EQ(count_failures_named(r, "omp_task_final"), 1);
}

TEST(ValidationTableI, IntelFailsExactlyTheTaskSemanticsTests) {
  const auto r = run_with(o::RuntimeKind::intel);
  EXPECT_EQ(r.total - r.passed, 5)
      << "paper: Intel fails 5 (taskyield x2, untied x2, final)";
  EXPECT_EQ(count_failures_named(r, "omp_task_final"), 1);
}

TEST(ValidationTableI, GltoAbtPassesFinalFailsMigration) {
  const auto r = run_with(o::RuntimeKind::glto_abt);
  // GLTO executes final tasks undeferred (passes); no stealing → all four
  // migration-dependent tests fail (paper reports 2; see EXPERIMENTS.md).
  EXPECT_EQ(count_failures_named(r, "omp_task_final"), 0);
  EXPECT_EQ(count_failures_named(r, "omp_taskyield"), 2);
  EXPECT_EQ(count_failures_named(r, "omp_task_untied"), 2);
  EXPECT_EQ(r.total - r.passed, 4);
  EXPECT_GT(r.passed, 118) << "GLTO must beat the pthread baselines";
}

TEST(ValidationTableI, GltoQthMatchesAbtPattern) {
  const auto r = run_with(o::RuntimeKind::glto_qth);
  EXPECT_EQ(count_failures_named(r, "omp_task_final"), 0);
  EXPECT_EQ(r.total - r.passed, 4);
}

TEST(ValidationTableI, GltoMthStealingPassesUntied) {
  const auto r = run_with(o::RuntimeKind::glto_mth);
  // Work stealing lets suspended tasks migrate: untied and the lenient
  // taskyield pass; only strict taskyield fails (paper: MTH fails 1).
  EXPECT_EQ(count_failures_named(r, "omp_task_untied"), 0)
      << "mth steals suspended tasks";
  EXPECT_EQ(count_failures_named(r, "omp_task_final"), 0);
  EXPECT_LE(r.total - r.passed, 2);
  EXPECT_GE(count_failures_named(r, "omp_taskyield"), 1)
      << "strict taskyield (majority migration) fails everywhere";
}

TEST(ValidationTableI, GltoBeatsBaselinesEverywhere) {
  // The paper's headline: GLTO passes more validation tests than both
  // pthread runtimes on every backend.
  const int gnu_passed = run_with(o::RuntimeKind::gnu).passed;
  for (auto kind : {o::RuntimeKind::glto_abt, o::RuntimeKind::glto_qth,
                    o::RuntimeKind::glto_mth}) {
    EXPECT_GE(run_with(kind).passed, gnu_passed) << o::kind_name(kind);
  }
}
