// Baseline-runtime policy tests: the GNU/Intel mechanisms the paper's
// Tables II & III and Fig. 14 depend on, asserted via runtime counters.
#include <gtest/gtest.h>

#include <atomic>

#include "common/time.hpp"
#include "omp/omp.hpp"

namespace o = glto::omp;

namespace {

void select(o::RuntimeKind k, int nth, int cutoff = 256) {
  o::SelectOptions opts;
  opts.num_threads = nth;
  opts.bind_threads = false;
  opts.active_wait = false;
  opts.task_cutoff = cutoff;
  o::select(k, opts);
}

}  // namespace

TEST(PompGnu, TopLevelTeamsReuseThreads) {
  select(o::RuntimeKind::gnu, 4);
  o::runtime().reset_counters();
  for (int i = 0; i < 5; ++i) o::parallel([](int, int) {});
  const auto c = o::runtime().counters();
  EXPECT_EQ(c.os_threads_created, 3u)
      << "one pool fill for the first region";
  EXPECT_EQ(c.os_threads_reused, 4u * 3u) << "four later regions reuse";
  o::shutdown();
}

TEST(PompGnu, NestedRegionsAlwaysCreateFreshThreads) {
  select(o::RuntimeKind::gnu, 3);
  o::runtime().reset_counters();
  constexpr int kOuterIters = 4;
  o::parallel(1, [&](int, int) {
    for (int i = 0; i < kOuterIters; ++i) {
      o::parallel(3, [](int, int) {});  // nested: level 2
    }
  });
  const auto c = o::runtime().counters();
  // Every nested region spawns 2 fresh pthreads, destroyed at region end.
  EXPECT_EQ(c.os_threads_created, static_cast<std::uint64_t>(kOuterIters * 2))
      << "GNU-like: no reuse for nested teams (Table II mechanism)";
  o::shutdown();
}

TEST(PompIntel, NestedRegionsReuseFromPool) {
  select(o::RuntimeKind::intel, 3);
  o::runtime().reset_counters();
  constexpr int kOuterIters = 4;
  o::parallel(1, [&](int, int) {
    for (int i = 0; i < kOuterIters; ++i) {
      o::parallel(3, [](int, int) {});
    }
  });
  const auto c = o::runtime().counters();
  EXPECT_EQ(c.os_threads_created, 2u)
      << "Intel-like hot teams: first nested region creates, rest reuse";
  EXPECT_EQ(c.os_threads_reused, static_cast<std::uint64_t>((kOuterIters - 1) * 2));
  o::shutdown();
}

TEST(PompIntel, CutoffRunsTasksImmediatelyWhenDequeFull) {
  select(o::RuntimeKind::intel, 1, /*cutoff=*/8);
  o::runtime().reset_counters();
  std::atomic<int> ran{0};
  o::parallel(1, [&](int, int) {
    // Single-threaded team: nobody drains the deque while producing, so
    // tasks beyond the capacity MUST execute immediately (cut-off).
    for (int i = 0; i < 32; ++i) o::task([&] { ran.fetch_add(1); });
    o::taskwait();
  });
  EXPECT_EQ(ran.load(), 32);
  const auto c = o::runtime().counters();
  EXPECT_EQ(c.tasks_queued, 8u) << "deque capacity";
  EXPECT_EQ(c.tasks_immediate, 24u) << "overflow executed undeferred";
  o::shutdown();
}

TEST(PompIntel, LargeCutoffQueuesEverything) {
  select(o::RuntimeKind::intel, 1, /*cutoff=*/4096);
  o::runtime().reset_counters();
  std::atomic<int> ran{0};
  o::parallel(1, [&](int, int) {
    for (int i = 0; i < 100; ++i) o::task([&] { ran.fetch_add(1); });
    o::taskwait();
  });
  EXPECT_EQ(ran.load(), 100);
  const auto c = o::runtime().counters();
  EXPECT_EQ(c.tasks_queued, 100u);
  EXPECT_EQ(c.tasks_immediate, 0u);
  o::shutdown();
}

TEST(PompIntel, ConsumersStealFromProducerDeque) {
  select(o::RuntimeKind::intel, 4);
  o::runtime().reset_counters();
  std::atomic<int> ran{0};
  o::parallel([&](int, int) {
    o::single([&] {
      // Tasks must outlast an OS timeslice in aggregate, or on a 1-core
      // box the producer drains its own deque before a consumer ever
      // wakes (pop_owner, not a steal).
      for (int i = 0; i < 64; ++i) {
        o::task([&] {
          const auto t0 = glto::common::now_ns();
          while (glto::common::now_ns() - t0 < 1'000'000) {
          }
          ran.fetch_add(1);
        });
      }
      o::taskwait();
    });
  });
  EXPECT_EQ(ran.load(), 64);
  EXPECT_GT(o::runtime().counters().task_steals, 0u)
      << "the consumer side of the producer pattern is work stealing";
  o::shutdown();
}

TEST(PompGnu, SharedQueueHasNoStealCounter) {
  select(o::RuntimeKind::gnu, 4);
  o::runtime().reset_counters();
  std::atomic<int> ran{0};
  o::parallel([&](int, int) {
    o::single([&] {
      for (int i = 0; i < 100; ++i) o::task([&] { ran.fetch_add(1); });
      o::taskwait();
    });
  });
  EXPECT_EQ(ran.load(), 100);
  const auto c = o::runtime().counters();
  EXPECT_EQ(c.task_steals, 0u) << "one shared queue: nothing to steal";
  EXPECT_EQ(c.tasks_queued, 100u) << "GNU-like queue is unbounded";
  o::shutdown();
}

TEST(PompBoth, ActiveAndPassiveWaitBothCorrect) {
  for (bool active : {true, false}) {
    o::SelectOptions opts;
    opts.num_threads = 3;
    opts.bind_threads = false;
    opts.active_wait = active;
    o::select(o::RuntimeKind::intel, opts);
    std::atomic<int> sum{0};
    o::parallel([&](int, int) {
      sum.fetch_add(1);
      o::barrier();
      sum.fetch_add(1);
    });
    EXPECT_EQ(sum.load(), 6);
    o::shutdown();
  }
}

TEST(PompGnu, TaskCountsAreExact) {
  select(o::RuntimeKind::gnu, 2);
  o::runtime().reset_counters();
  std::atomic<int> ran{0};
  o::parallel([&](int, int) {
    for (int i = 0; i < 10; ++i) o::task([&] { ran.fetch_add(1); });
    o::taskwait();
  });
  EXPECT_EQ(ran.load(), 20);
  const auto c = o::runtime().counters();
  EXPECT_EQ(c.tasks_queued + c.tasks_immediate, 20u);
  o::shutdown();
}
