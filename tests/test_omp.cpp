// OpenMP facade conformance, parameterized over all five runtime
// configurations of the paper (gnu, intel, glto-abt, glto-qth, glto-mth).
//
// Every construct the workloads rely on is exercised per runtime:
// parallel, nesting, for (static/dynamic/guided), barrier, single, master,
// critical, reductions, tasks, taskwait.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include "omp/omp.hpp"

namespace o = glto::omp;

class OmpRuntime : public ::testing::TestWithParam<o::RuntimeKind> {
 protected:
  void SetUp() override {
    o::SelectOptions opts;
    opts.num_threads = 4;
    opts.nested = true;
    opts.bind_threads = false;
    o::select(GetParam(), opts);
  }
  void TearDown() override { o::shutdown(); }
};

TEST_P(OmpRuntime, SelectExposesKind) {
  EXPECT_TRUE(o::selected());
  EXPECT_EQ(o::current_kind(), GetParam());
  EXPECT_EQ(o::max_threads(), 4);
}

TEST_P(OmpRuntime, ParallelRunsEveryMemberOnce) {
  std::vector<std::atomic<int>> hits(4);
  o::parallel([&](int tid, int nth) {
    EXPECT_EQ(nth, 4);
    EXPECT_GE(tid, 0);
    EXPECT_LT(tid, nth);
    hits[static_cast<std::size_t>(tid)].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_P(OmpRuntime, ParallelExplicitThreadCount) {
  std::atomic<int> members{0};
  o::parallel(2, [&](int, int nth) {
    EXPECT_EQ(nth, 2);
    members.fetch_add(1);
  });
  EXPECT_EQ(members.load(), 2);
}

TEST_P(OmpRuntime, SequentialBetweenRegions) {
  // thread_num/num_threads outside any region: implicit team of one.
  EXPECT_EQ(o::thread_num(), 0);
  EXPECT_EQ(o::num_threads(), 1);
  EXPECT_EQ(o::level(), 0);
  o::parallel([&](int, int) { EXPECT_EQ(o::level(), 1); });
  EXPECT_EQ(o::level(), 0);
}

TEST_P(OmpRuntime, RepeatedRegionsReuseCleanly) {
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> members{0};
    o::parallel([&](int, int) { members.fetch_add(1); });
    ASSERT_EQ(members.load(), 4) << "round " << round;
  }
}

TEST_P(OmpRuntime, StaticForCoversRangeExactlyOnce) {
  constexpr std::int64_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  o::parallel([&](int, int) {
    o::loop(0, kN, {o::Schedule::Static, 0},
                [&](std::int64_t b, std::int64_t e) {
                  for (std::int64_t i = b; i < e; ++i) {
                    hits[static_cast<std::size_t>(i)].fetch_add(1);
                  }
                });
  });
  for (std::int64_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST_P(OmpRuntime, StaticChunkedRoundRobin) {
  constexpr std::int64_t kN = 103;  // deliberately not divisible
  std::vector<std::atomic<int>> hits(kN);
  o::parallel([&](int, int) {
    o::loop(0, kN, {o::Schedule::Static, 7},
                [&](std::int64_t b, std::int64_t e) {
                  for (std::int64_t i = b; i < e; ++i) {
                    hits[static_cast<std::size_t>(i)].fetch_add(1);
                  }
                });
  });
  for (std::int64_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST_P(OmpRuntime, DynamicForCoversRangeExactlyOnce) {
  constexpr std::int64_t kN = 500;
  std::vector<std::atomic<int>> hits(kN);
  o::parallel([&](int, int) {
    o::loop(0, kN, {o::Schedule::Dynamic, 3},
                [&](std::int64_t b, std::int64_t e) {
                  for (std::int64_t i = b; i < e; ++i) {
                    hits[static_cast<std::size_t>(i)].fetch_add(1);
                  }
                });
  });
  for (std::int64_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST_P(OmpRuntime, GuidedForCoversRangeExactlyOnce) {
  constexpr std::int64_t kN = 500;
  std::vector<std::atomic<int>> hits(kN);
  o::parallel([&](int, int) {
    o::loop(0, kN, {o::Schedule::Guided, 2},
                [&](std::int64_t b, std::int64_t e) {
                  for (std::int64_t i = b; i < e; ++i) {
                    hits[static_cast<std::size_t>(i)].fetch_add(1);
                  }
                });
  });
  for (std::int64_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST_P(OmpRuntime, EmptyLoopRangeIsSafe) {
  o::parallel([&](int, int) {
    o::loop(10, 10, {o::Schedule::Dynamic, 1},
                [&](std::int64_t, std::int64_t) { FAIL(); });
    o::loop(10, 5, {o::Schedule::Static, 0},
                [&](std::int64_t, std::int64_t) { FAIL(); });
  });
}

TEST_P(OmpRuntime, ConsecutiveLoopsInOneRegion) {
  constexpr std::int64_t kN = 64;
  std::atomic<long long> sum{0};
  o::parallel([&](int, int) {
    for (int round = 0; round < 10; ++round) {
      o::loop(0, kN, {o::Schedule::Static, 0},
                  [&](std::int64_t b, std::int64_t e) {
                    sum.fetch_add(e - b);
                  });
      o::barrier();
    }
  });
  EXPECT_EQ(sum.load(), 10 * kN);
}

TEST_P(OmpRuntime, BarrierSynchronizesPhases) {
  // Phase counter must never be observed torn across the barrier: all
  // members increment in phase 1, then all verify in phase 2.
  std::atomic<int> phase1{0};
  std::atomic<bool> violated{false};
  o::parallel([&](int, int nth) {
    phase1.fetch_add(1);
    o::barrier();
    if (phase1.load() != nth) violated.store(true);
  });
  EXPECT_FALSE(violated.load());
}

TEST_P(OmpRuntime, ManyBarriersInSequence) {
  std::atomic<int> counter{0};
  std::atomic<bool> violated{false};
  o::parallel([&](int, int nth) {
    for (int k = 1; k <= 25; ++k) {
      counter.fetch_add(1);
      o::barrier();
      if (counter.load() != k * nth) violated.store(true);
      o::barrier();
    }
  });
  EXPECT_FALSE(violated.load());
}

TEST_P(OmpRuntime, SingleElectsExactlyOne) {
  std::atomic<int> winners{0};
  o::parallel([&](int, int) { o::single([&] { winners.fetch_add(1); }); });
  EXPECT_EQ(winners.load(), 1);
}

TEST_P(OmpRuntime, RepeatedSinglesEachElectOne) {
  std::atomic<int> winners{0};
  o::parallel([&](int, int) {
    for (int k = 0; k < 10; ++k) {
      o::single([&] { winners.fetch_add(1); });
    }
  });
  EXPECT_EQ(winners.load(), 10);
}

TEST_P(OmpRuntime, MasterRunsOnThreadZeroOnly) {
  std::atomic<int> runs{0};
  std::atomic<int> master_tid{-1};
  o::parallel([&](int tid, int) {
    o::master([&] {
      runs.fetch_add(1);
      master_tid.store(tid);
    });
    o::barrier();
  });
  EXPECT_EQ(runs.load(), 1);
  EXPECT_EQ(master_tid.load(), 0);
}

TEST_P(OmpRuntime, CriticalIsMutuallyExclusive) {
  long long unprotected = 0;  // plain variable: torn without mutual exclusion
  constexpr int kIters = 2000;
  o::parallel([&](int, int) {
    for (int i = 0; i < kIters; ++i) {
      o::critical([&] { unprotected += 1; });
    }
  });
  EXPECT_EQ(unprotected, 4LL * kIters);
}

TEST_P(OmpRuntime, NamedCriticalsAreIndependentLocks) {
  long long a = 0, b = 0;
  static int tag_a, tag_b;
  o::parallel([&](int, int) {
    for (int i = 0; i < 500; ++i) {
      o::critical(&tag_a, [&] { a += 1; });
      o::critical(&tag_b, [&] { b += 1; });
    }
  });
  EXPECT_EQ(a, 2000);
  EXPECT_EQ(b, 2000);
}

TEST_P(OmpRuntime, ReduceSumMatchesClosedForm) {
  constexpr std::int64_t kN = 10000;
  const double got =
      o::reduce_sum(1, kN + 1, [](std::int64_t i) { return double(i); });
  EXPECT_DOUBLE_EQ(got, double(kN) * double(kN + 1) / 2.0);
}

TEST_P(OmpRuntime, TasksAllExecuteBeforeTaskwait) {
  constexpr int kTasks = 200;
  std::atomic<int> done{0};
  o::parallel([&](int, int) {
    o::single([&] {
      for (int i = 0; i < kTasks; ++i) {
        o::task([&] { done.fetch_add(1); });
      }
      o::taskwait();
      EXPECT_EQ(done.load(), kTasks);
    });
  });
  EXPECT_EQ(done.load(), kTasks);
}

TEST_P(OmpRuntime, TasksCompleteByRegionEnd) {
  constexpr int kTasks = 100;
  std::atomic<int> done{0};
  o::parallel([&](int, int) {
    o::single([&] {
      for (int i = 0; i < kTasks; ++i) o::task([&] { done.fetch_add(1); });
    });  // implicit barrier of single is the completion point
  });
  EXPECT_EQ(done.load(), kTasks);
}

TEST_P(OmpRuntime, EveryMemberCreatesTasks) {
  std::atomic<int> done{0};
  o::parallel([&](int, int) {
    for (int i = 0; i < 25; ++i) o::task([&] { done.fetch_add(1); });
    o::taskwait();
  });
  EXPECT_EQ(done.load(), 4 * 25);
}

TEST_P(OmpRuntime, NestedTaskTrees) {
  std::atomic<int> done{0};
  o::parallel([&](int, int) {
    o::single([&] {
      for (int i = 0; i < 8; ++i) {
        o::task([&] {
          for (int j = 0; j < 8; ++j) {
            o::task([&] { done.fetch_add(1); });
          }
          o::taskwait();
        });
      }
      o::taskwait();
    });
  });
  EXPECT_EQ(done.load(), 64);
}

TEST_P(OmpRuntime, FinalTasksExecute) {
  std::atomic<int> done{0};
  o::TaskFlags flags;
  flags.final = true;
  o::parallel([&](int, int) {
    o::single([&] {
      for (int i = 0; i < 10; ++i) {
        o::task([&] { done.fetch_add(1); }, flags);
      }
      o::taskwait();
    });
  });
  EXPECT_EQ(done.load(), 10);
}

TEST_P(OmpRuntime, IfClauseFalseRunsUndeferred) {
  std::atomic<int> done{0};
  o::TaskFlags flags;
  flags.if_clause = false;
  o::parallel(1, [&](int, int) {
    o::task([&] { done.fetch_add(1); }, flags);
    EXPECT_EQ(done.load(), 1) << "if(false) tasks run immediately";
  });
}

TEST_P(OmpRuntime, TaskyieldIsSafeAnywhere) {
  std::atomic<int> done{0};
  o::parallel([&](int, int) {
    o::single([&] {
      for (int i = 0; i < 20; ++i) {
        o::task([&] {
          o::taskyield();
          done.fetch_add(1);
        });
      }
      o::taskwait();
    });
  });
  EXPECT_EQ(done.load(), 20);
}

TEST_P(OmpRuntime, NestedParallelCreatesInnerTeams) {
  std::atomic<int> inner_total{0};
  o::parallel(2, [&](int, int) {
    EXPECT_EQ(o::level(), 1);
    o::parallel(3, [&](int, int inner_nth) {
      EXPECT_EQ(o::level(), 2);
      EXPECT_EQ(inner_nth, 3);
      inner_total.fetch_add(1);
    });
  });
  EXPECT_EQ(inner_total.load(), 2 * 3);
}

TEST_P(OmpRuntime, NestedDisabledSerializesInner) {
  o::set_nested(false);
  std::atomic<int> inner_total{0};
  o::parallel(2, [&](int, int) {
    o::parallel(3, [&](int, int inner_nth) {
      EXPECT_EQ(inner_nth, 1) << "inner regions serialize when not nested";
      inner_total.fetch_add(1);
    });
  });
  EXPECT_EQ(inner_total.load(), 2);
  o::set_nested(true);
}

TEST_P(OmpRuntime, TripleNesting) {
  std::atomic<int> leaf{0};
  o::parallel(2, [&](int, int) {
    o::parallel(2, [&](int, int) {
      o::parallel(2, [&](int, int) { leaf.fetch_add(1); });
    });
  });
  EXPECT_EQ(leaf.load(), 8);
}

TEST_P(OmpRuntime, NestedLoopDistribution) {
  // The paper's Listing 1 shape: parallel-for over parallel-for.
  constexpr std::int64_t kOuter = 8, kInner = 8;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  o::parallel([&](int, int) {
    o::loop(0, kOuter, {o::Schedule::Static, 0},
                [&](std::int64_t ob, std::int64_t oe) {
                  for (std::int64_t i = ob; i < oe; ++i) {
                    o::parallel(2, [&](int, int) {
                      o::loop(0, kInner, {o::Schedule::Static, 0},
                                  [&](std::int64_t ib, std::int64_t ie) {
                                    for (std::int64_t j = ib; j < ie; ++j) {
                                      hits[static_cast<std::size_t>(
                                               i * kInner + j)]
                                          .fetch_add(1);
                                    }
                                  });
                    });
                  }
                });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_P(OmpRuntime, SetNumThreadsAffectsNextRegion) {
  o::set_num_threads(2);
  std::atomic<int> members{0};
  o::parallel([&](int, int nth) {
    EXPECT_EQ(nth, 2);
    members.fetch_add(1);
  });
  EXPECT_EQ(members.load(), 2);
  o::set_num_threads(4);
}

TEST_P(OmpRuntime, CountersTrackTasking) {
  auto& rt = o::runtime();
  rt.reset_counters();
  o::parallel([&](int, int) {
    o::single([&] {
      for (int i = 0; i < 50; ++i) o::task([] {});
      o::taskwait();
    });
  });
  const auto c = rt.counters();
  EXPECT_EQ(c.tasks_queued + c.tasks_immediate, 50u);
}

INSTANTIATE_TEST_SUITE_P(
    AllRuntimes, OmpRuntime,
    ::testing::Values(o::RuntimeKind::gnu, o::RuntimeKind::intel,
                      o::RuntimeKind::glto_abt, o::RuntimeKind::glto_qth,
                      o::RuntimeKind::glto_mth),
    [](const ::testing::TestParamInfo<o::RuntimeKind>& info) {
      std::string n = o::kind_name(info.param);
      for (auto& ch : n) {
        if (ch == '-') ch = '_';
      }
      return n;
    });

TEST(OmpKinds, NameParsing) {
  for (auto k : o::all_kinds()) {
    auto parsed = o::kind_from_string(o::kind_name(k));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_EQ(*o::kind_from_string("gcc"), o::RuntimeKind::gnu);
  EXPECT_EQ(*o::kind_from_string("icc"), o::RuntimeKind::intel);
  EXPECT_FALSE(o::kind_from_string("tbb").has_value());
}

TEST(OmpKinds, AllKindsHasFive) { EXPECT_EQ(o::all_kinds().size(), 5u); }
