// Task-dependency engine (`depend` clauses) across all five runtimes:
// in→in parallelism, out→in ordering, inout chains, overlapping ranges,
// deps across taskyield, deps under GLT_SHARED_QUEUES=1, the kmpc ABI
// entry point, the group-scoped taskgroup regression, and a randomized
// 2k-task DAG checked against a sequential replay.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "omp/kmp_abi.hpp"
#include "omp/omp.hpp"
#include "sched/chaos.hpp"

namespace o = glto::omp;

namespace {

/// Bounded cross-task handshake: yields through the runtime (so
/// cooperative backends and help-first pthread runtimes progress) until
/// @p flag is set; false on timeout. Never assert-hangs a test.
bool await_flag(const std::atomic<bool>& flag, int ms = 10000) {
  const auto start = std::chrono::steady_clock::now();
  while (!flag.load(std::memory_order_acquire)) {
    o::taskyield();
    if (std::chrono::steady_clock::now() - start >
        std::chrono::milliseconds(ms)) {
      return false;
    }
  }
  return true;
}

/// Runs @p body in a single/producer region — the §IV-D pattern every
/// dependent-task workload here uses.
void producer(const std::function<void()>& body) {
  o::parallel([&](int, int) {
    o::single([&] {
      body();
      o::taskwait();
    });
  });
}

}  // namespace

class TaskDep : public ::testing::TestWithParam<o::RuntimeKind> {
 protected:
  void SetUp() override {
    o::SelectOptions opts;
    opts.num_threads = 4;
    opts.bind_threads = false;
    opts.active_wait = false;
    o::select(GetParam(), opts);
  }
  void TearDown() override { o::shutdown(); }
};

TEST_P(TaskDep, OutThenInOrdering) {
  int x = 0;
  std::atomic<bool> writer_done{false};
  std::atomic<int> readers_ok{0};
  producer([&] {
    o::TaskFlags wf;
    wf.depend.push_back(o::dep_out(&x));
    o::task(
        [&] {
          for (int i = 0; i < 20; ++i) o::taskyield();
          x = 42;
          writer_done.store(true, std::memory_order_release);
        },
        wf);
    for (int r = 0; r < 2; ++r) {
      o::TaskFlags rf;
      rf.depend.push_back(o::dep_in(&x));
      o::task(
          [&] {
            if (writer_done.load(std::memory_order_acquire) && x == 42) {
              readers_ok.fetch_add(1);
            }
          },
          rf);
    }
  });
  EXPECT_EQ(readers_ok.load(), 2) << "a reader started before the writer "
                                     "finished (out→in edge missing)";
}

TEST_P(TaskDep, InInRunConcurrently) {
  if (glto::sched::chaos_enabled()) {
    // Chaos spawn failure runs a ready task INLINE on the producer (the
    // documented degradation): the pair is then legitimately serialized,
    // and the first body's gate on the not-yet-submitted second task
    // would spin out its timeout. Overlap holds only for real spawns.
    GTEST_SKIP() << "concurrency overlap is waived under chaos";
  }
  int x = 7;
  std::atomic<bool> a_started{false}, b_started{false};
  std::atomic<bool> ok{true};
  producer([&] {
    o::TaskFlags rf;
    rf.depend.push_back(o::dep_in(&x));
    o::task(
        [&] {
          a_started.store(true, std::memory_order_release);
          if (!await_flag(b_started)) ok.store(false);
        },
        rf);
    o::task(
        [&] {
          b_started.store(true, std::memory_order_release);
          if (!await_flag(a_started)) ok.store(false);
        },
        rf);
  });
  EXPECT_TRUE(ok.load()) << "two `in` readers were serialized — they must "
                            "be able to overlap";
}

TEST_P(TaskDep, InoutChainRunsInSubmissionOrder) {
  int v = 0;
  std::vector<int> order;  // written under dep-serialization, no lock
  producer([&] {
    for (int t = 0; t < 8; ++t) {
      o::TaskFlags f;
      f.depend.push_back(o::dep_inout(&v));
      o::task([&order, t] { order.push_back(t); }, f);
    }
  });
  ASSERT_EQ(order.size(), 8u);
  for (int t = 0; t < 8; ++t) EXPECT_EQ(order[static_cast<size_t>(t)], t);
}

TEST_P(TaskDep, OverlappingRangesConflict) {
  alignas(64) double buf[16] = {};
  std::atomic<bool> writer_done{false};
  std::atomic<bool> reader_saw{false};
  producer([&] {
    o::TaskFlags wf;
    wf.depend.push_back(o::dep_out(&buf[0], 8 * sizeof(double)));
    o::task(
        [&] {
          for (int i = 0; i < 10; ++i) o::taskyield();
          writer_done.store(true, std::memory_order_release);
        },
        wf);
    // [7, 9) overlaps the writer's [0, 8) byte range — must be ordered
    // even though the base addresses differ.
    o::TaskFlags rf;
    rf.depend.push_back(o::dep_in(&buf[7], 2 * sizeof(double)));
    o::task(
        [&] {
          reader_saw.store(writer_done.load(std::memory_order_acquire));
        },
        rf);
  });
  EXPECT_TRUE(reader_saw.load());
}

TEST_P(TaskDep, DisjointRangesRunConcurrently) {
  if (glto::sched::chaos_enabled()) {
    // Same waiver as InInRunConcurrently: inline-degraded spawns
    // legitimately serialize the would-be-concurrent pair.
    GTEST_SKIP() << "concurrency overlap is waived under chaos";
  }
  alignas(64) double buf[16] = {};
  std::atomic<bool> a_started{false}, b_started{false};
  std::atomic<bool> ok{true};
  producer([&] {
    o::TaskFlags af;
    af.depend.push_back(o::dep_out(&buf[0], 8 * sizeof(double)));
    o::task(
        [&] {
          a_started.store(true, std::memory_order_release);
          if (!await_flag(b_started)) ok.store(false);
        },
        af);
    // Second 64-byte chunk: no overlap, no edge.
    o::TaskFlags bf;
    bf.depend.push_back(o::dep_out(&buf[8], 8 * sizeof(double)));
    o::task(
        [&] {
          b_started.store(true, std::memory_order_release);
          if (!await_flag(a_started)) ok.store(false);
        },
        bf);
  });
  EXPECT_TRUE(ok.load()) << "writers to disjoint ranges were serialized";
}

TEST_P(TaskDep, DepsHoldAcrossTaskyield) {
  int x = 0;
  std::atomic<bool> successor_early{false};
  producer([&] {
    o::TaskFlags wf;
    wf.depend.push_back(o::dep_out(&x));
    o::task(
        [&] {
          x = 1;
          o::taskyield();  // suspension points must not release successors
          o::taskyield();
          x = 7;
        },
        wf);
    o::TaskFlags rf;
    rf.depend.push_back(o::dep_in(&x));
    o::task([&] { successor_early.store(x != 7); }, rf);
  });
  EXPECT_FALSE(successor_early.load())
      << "successor observed the writer mid-execution (released at a "
         "yield instead of completion)";
}

TEST_P(TaskDep, UndeferredTaskWaitsForDeps) {
  int x = 0;
  producer([&] {
    o::TaskFlags wf;
    wf.depend.push_back(o::dep_out(&x));
    o::task(
        [&] {
          for (int i = 0; i < 10; ++i) o::taskyield();
          x = 11;
        },
        wf);
    // if(false): executes inline, but only after the writer completes.
    o::TaskFlags uf;
    uf.if_clause = false;
    uf.depend.push_back(o::dep_in(&x));
    int seen = -1;
    o::task([&] { seen = x; }, uf);
    EXPECT_EQ(seen, 11);
  });
}

TEST_P(TaskDep, UndeferredTaskReleasesDepsBeforeChildJoin) {
  int x = 0;
  std::atomic<bool> child_ran{false};
  producer([&] {
    // Inline (if(false)) depend task whose child reads the parent's own
    // dep object: dependences scope per creating task (dep domains), so
    // the child matches nothing and runs freely — the parent's inline
    // child-join must still terminate with the parent's node open.
    o::TaskFlags uf;
    uf.if_clause = false;
    uf.depend.push_back(o::dep_out(&x));
    o::task(
        [&] {
          o::TaskFlags cf;
          cf.depend.push_back(o::dep_in(&x));
          o::task([&] { child_ran.store(true); }, cf);
        },
        uf);
  });
  EXPECT_TRUE(child_ran.load());
}

TEST_P(TaskDep, CrossScopeChildDepPlusTaskwaitDoesNotDeadlock) {
  // The documented cross-scope hazard, verbatim: a deferred depend task
  // whose body creates a child naming the parent's OWN dep object and then
  // taskwaits. Under a process-global dependence namespace the child is
  // withheld until the parent completes while the parent's taskwait blocks
  // on the child — a hard hang (this test timed out before dep domains).
  // With per-creating-task domains the child has no predecessor and the
  // taskwait joins it normally.
  int anchor = 0;
  std::atomic<bool> child_ran{false};
  std::atomic<bool> child_done_at_taskwait{false};
  producer([&] {
    o::TaskFlags pf;
    pf.depend.push_back(o::dep_inout(&anchor));
    o::task(
        [&] {
          o::TaskFlags cf;
          cf.depend.push_back(o::dep_in(&anchor));
          o::task([&] { child_ran.store(true); }, cf);
          o::taskwait();
          child_done_at_taskwait.store(child_ran.load());
        },
        pf);
  });
  EXPECT_TRUE(child_ran.load());
  EXPECT_TRUE(child_done_at_taskwait.load())
      << "taskwait returned without the dependent child";
}

TEST_P(TaskDep, SiblingDepsStillOrderInsideOneTask) {
  // Domains must not weaken ordering *within* one creating task: an
  // out→in pair created by the same depend-task body keeps its edge.
  int anchor = 0, inner = 0;
  std::atomic<bool> ordered{false};
  producer([&] {
    o::TaskFlags pf;
    pf.depend.push_back(o::dep_inout(&anchor));
    o::task(
        [&] {
          std::atomic<bool> writer_done{false};
          o::TaskFlags wf;
          wf.depend.push_back(o::dep_out(&inner));
          o::task(
              [&] {
                for (int i = 0; i < 10; ++i) o::taskyield();
                writer_done.store(true, std::memory_order_release);
              },
              wf);
          o::TaskFlags rf;
          rf.depend.push_back(o::dep_in(&inner));
          o::task(
              [&] {
                ordered.store(writer_done.load(std::memory_order_acquire));
              },
              rf);
          o::taskwait();
        },
        pf);
  });
  EXPECT_TRUE(ordered.load())
      << "sibling out→in edge lost inside a depend-task body";
}

TEST_P(TaskDep, TaskStatsCountDeferAndWakeups) {
  if (glto::sched::chaos_enabled()) {
    // An injected spawn failure runs the chain head INLINE on the
    // producer (the documented degradation), which both breaks the
    // hold-until-submitted handshake below and legitimately skips the
    // defer accounting this test asserts.
    GTEST_SKIP() << "defer accounting is bypassed by chaos inline spawns";
  }
  int v = 0;
  std::atomic<bool> all_submitted{false};
  std::atomic<bool> submit_seen_late{false};
  producer([&] {
    o::TaskFlags f;
    f.depend.push_back(o::dep_inout(&v));
    o::task(
        [&] {
          // Hold the chain head until the tail is submitted so the
          // successors are provably deferred.
          if (!await_flag(all_submitted)) submit_seen_late.store(true);
        },
        f);
    o::task([] {}, f);
    o::task([] {}, f);
    all_submitted.store(true, std::memory_order_release);
  });
  ASSERT_FALSE(submit_seen_late.load());
  const o::TaskStats st = o::task_stats();
  EXPECT_EQ(st.deps_registered, 3u);
  EXPECT_GE(st.deps_deferred, 2u);
  EXPECT_GE(st.dag_ready_hits, 2u);
}

TEST_P(TaskDep, TaskgroupInDependTaskWaitsOnlyItsChildren) {
  // The group-scoped wait must return without waiting for a sibling
  // created before the group: the sibling here blocks on a flag that is
  // only set strictly after taskgroup_end, so a taskwait-shaped taskgroup
  // (join ALL children) deadlocks in this shape (test timeout).
  int anchor = 0;
  std::atomic<bool> release_sibling{false};
  std::atomic<bool> sibling_done{false};
  std::atomic<bool> group_child_done_at_end{false};
  producer([&] {
    o::TaskFlags df;
    df.depend.push_back(o::dep_inout(&anchor));
    o::task(
        [&] {
          o::task([&] {
            await_flag(release_sibling);
            sibling_done.store(true);
          });
          std::atomic<bool> child_done{false};
          o::taskgroup([&] { o::task([&] { child_done.store(true); }); });
          group_child_done_at_end.store(child_done.load());
          release_sibling.store(true, std::memory_order_release);
        },
        df);
  });
  EXPECT_TRUE(group_child_done_at_end.load())
      << "taskgroup returned before its own child finished";
  EXPECT_TRUE(sibling_done.load());
}

// ---- randomized DAG stress vs sequential replay -------------------------

namespace {

struct StressOp {
  int var[3];
  glto::taskdep::DepKind kind[3];
  int ndeps;
};

std::vector<StressOp> make_stress_ops(int ntasks, int nvars,
                                      std::uint64_t seed) {
  std::vector<StressOp> ops(static_cast<size_t>(ntasks));
  glto::common::FastRng rng(seed);
  for (auto& op : ops) {
    op.ndeps = 1 + static_cast<int>(rng.next() % 3);
    for (int d = 0; d < op.ndeps; ++d) {
      op.var[d] = static_cast<int>(rng.next() % static_cast<unsigned>(nvars));
      switch (rng.next() % 3) {
        case 0:
          op.kind[d] = glto::taskdep::DepKind::in;
          break;
        case 1:
          op.kind[d] = glto::taskdep::DepKind::out;
          break;
        default:
          op.kind[d] = glto::taskdep::DepKind::inout;
          break;
      }
    }
  }
  return ops;
}

/// The task body: reads sum (order-independent), writes are an
/// order-sensitive LCG step — any serialization mistake shows up in the
/// final variable values or a read sum.
void stress_body(const StressOp& op, int t, std::uint64_t* vars,
                 std::uint64_t* result) {
  std::uint64_t acc = 0;
  for (int d = 0; d < op.ndeps; ++d) {
    if (op.kind[d] == glto::taskdep::DepKind::in) acc += vars[op.var[d]];
  }
  *result = acc;
  for (int d = 0; d < op.ndeps; ++d) {
    if (op.kind[d] != glto::taskdep::DepKind::in) {
      vars[op.var[d]] = vars[op.var[d]] * 6364136223846793005ULL +
                        static_cast<std::uint64_t>(t + 1);
    }
  }
}

}  // namespace

TEST_P(TaskDep, RandomizedDagMatchesSequentialReplay) {
  constexpr int kTasks = 2000;
  constexpr int kVars = 16;
  const auto ops = make_stress_ops(kTasks, kVars, 0xDA6DA6);

  // Sequential replay: submission order is a legal serialization of the
  // DAG, and reads are order-independent among concurrent readers.
  alignas(64) std::uint64_t ref_vars[kVars] = {};
  std::vector<std::uint64_t> ref_results(kTasks, 0);
  for (int t = 0; t < kTasks; ++t) {
    stress_body(ops[static_cast<size_t>(t)], t, ref_vars,
                &ref_results[static_cast<size_t>(t)]);
  }

  alignas(64) std::uint64_t vars[kVars] = {};
  std::vector<std::uint64_t> results(kTasks, 0);
  producer([&] {
    for (int t = 0; t < kTasks; ++t) {
      const StressOp& op = ops[static_cast<size_t>(t)];
      o::TaskFlags f;
      for (int d = 0; d < op.ndeps; ++d) {
        f.depend.push_back({&vars[op.var[d]], sizeof(std::uint64_t),
                            op.kind[d]});
      }
      std::uint64_t* result = &results[static_cast<size_t>(t)];
      o::task([&op, t, &vars, result] { stress_body(op, t, vars, result); },
              f);
    }
  });

  for (int v = 0; v < kVars; ++v) EXPECT_EQ(vars[v], ref_vars[v]) << v;
  int bad_reads = 0;
  for (int t = 0; t < kTasks; ++t) {
    if (results[static_cast<size_t>(t)] !=
        ref_results[static_cast<size_t>(t)]) {
      ++bad_reads;
    }
  }
  EXPECT_EQ(bad_reads, 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllRuntimes, TaskDep,
    ::testing::Values(o::RuntimeKind::gnu, o::RuntimeKind::intel,
                      o::RuntimeKind::glto_abt, o::RuntimeKind::glto_qth,
                      o::RuntimeKind::glto_mth),
    [](const ::testing::TestParamInfo<o::RuntimeKind>& info) {
      std::string name = o::kind_name(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---- GLT_SHARED_QUEUES and the kmpc ABI (not runtime-parameterized) -----

TEST(TaskDepSharedQueues, ChainAndFanoutUnderSharedPool) {
  o::SelectOptions opts;
  opts.num_threads = 4;
  opts.bind_threads = false;
  opts.shared_queues = true;  // GLT_SHARED_QUEUES=1 analog
  o::select(o::RuntimeKind::glto_abt, opts);
  int v = 0;
  std::vector<int> order;
  std::atomic<int> readers_ok{0};
  producer([&] {
    for (int t = 0; t < 6; ++t) {
      o::TaskFlags f;
      f.depend.push_back(o::dep_inout(&v));
      o::task([&order, t] { order.push_back(t); }, f);
    }
    o::TaskFlags rf;
    rf.depend.push_back(o::dep_in(&v));
    for (int r = 0; r < 3; ++r) {
      o::task([&] { readers_ok.fetch_add(order.size() == 6 ? 1 : 0); }, rf);
    }
  });
  ASSERT_EQ(order.size(), 6u);
  for (int t = 0; t < 6; ++t) EXPECT_EQ(order[static_cast<size_t>(t)], t);
  EXPECT_EQ(readers_ok.load(), 3);
  o::shutdown();
}

namespace {

int g_abi_value = 0;
std::atomic<int> g_abi_reader_saw{-1};

void abi_writer(void*) {
  for (int i = 0; i < 10; ++i) glto_kmpc_omp_taskyield();
  g_abi_value = 99;
}

void abi_reader(void*) { g_abi_reader_saw.store(g_abi_value); }

void abi_micro(std::int32_t, std::int32_t, void*) {
  if (glto_kmpc_single() != 0) {
    glto_kmpc_depend_info wd{&g_abi_value, sizeof(g_abi_value), 0x2};
    glto_kmpc_omp_task_with_deps(abi_writer, nullptr, 1, &wd);
    glto_kmpc_depend_info rd{&g_abi_value, sizeof(g_abi_value), 0x1};
    glto_kmpc_taskgroup();
    glto_kmpc_omp_task_with_deps(abi_reader, nullptr, 1, &rd);
    glto_kmpc_end_taskgroup();
    glto_kmpc_end_single();
  }
  glto_kmpc_barrier();
}

}  // namespace

TEST(TaskDepKmpAbi, TaskWithDepsOrdersThroughTheAbi) {
  o::SelectOptions opts;
  opts.num_threads = 4;
  opts.bind_threads = false;
  o::select(o::RuntimeKind::glto_abt, opts);
  g_abi_value = 0;
  g_abi_reader_saw.store(-1);
  glto_kmpc_fork_call(abi_micro, nullptr);
  EXPECT_EQ(g_abi_reader_saw.load(), 99);
  o::shutdown();
}
