// Task ABI v2: omp::TaskDesc placement (inline vs spill), value-returning
// omp::future<T> (results, exceptions, wait ordering), grain-controlled
// par_for/loop, and the deprecated v1 compatibility wrappers — swept
// across all five runtimes (gnu/intel pthreads and glto over abt/qth/mth;
// the CI backend-parity job re-runs the glto rows under each $GLT_IMPL).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "glt/glt.hpp"
#include "omp/omp.hpp"
#include "sched/chaos.hpp"

namespace o = glto::omp;

class TaskV2 : public ::testing::TestWithParam<o::RuntimeKind> {
 protected:
  void SetUp() override {
    o::SelectOptions opts;
    opts.num_threads = 4;
    opts.bind_threads = false;
    opts.active_wait = false;
    o::select(GetParam(), opts);
  }
  void TearDown() override { o::shutdown(); }
};

// ---- descriptor placement ---------------------------------------------------

TEST_P(TaskV2, SmallCaptureStaysInlineZeroAllocs) {
  std::atomic<int> ran{0};
  const auto before = o::task_stats();
  o::parallel([&](int, int) {
    o::single([&] {
      for (int i = 0; i < 64; ++i) {
        o::task([&ran] { ran.fetch_add(1); });  // 8-byte capture
      }
      o::taskwait();
    });
  });
  const auto after = o::task_stats();
  EXPECT_EQ(ran.load(), 64);
  EXPECT_EQ(after.task_inline - before.task_inline, 64u);
  EXPECT_EQ(after.task_alloc - before.task_alloc, 0u)
      << "captures <= inline capacity must not allocate";
}

TEST_P(TaskV2, OversizedCaptureSpillsAndStillRuns) {
  struct Big {
    std::int64_t vals[16];  // 128 bytes: > TaskDesc::kInlineBytes
  };
  Big big{};
  for (int i = 0; i < 16; ++i) big.vals[i] = i + 1;
  std::atomic<std::int64_t> sum{0};
  const auto before = o::task_stats();
  o::parallel([&](int, int) {
    o::single([&] {
      o::task([&sum, big] {
        std::int64_t s = 0;
        for (std::int64_t v : big.vals) s += v;
        sum.fetch_add(s);
      });
      o::taskwait();
    });
  });
  const auto after = o::task_stats();
  EXPECT_EQ(sum.load(), 16 * 17 / 2);
  EXPECT_GE(after.task_alloc - before.task_alloc, 1u)
      << "a 128-byte capture must spill";
}

TEST_P(TaskV2, NonTriviallyCopyableCaptureSpillsCorrectly) {
  // A std::string capture cannot be memcpy-moved; the descriptor must
  // spill it and run its destructor exactly once.
  std::string payload(100, 'x');
  std::atomic<std::size_t> seen{0};
  o::parallel([&](int, int) {
    o::single([&] {
      o::task([&seen, payload] { seen.store(payload.size()); });
      o::taskwait();
    });
  });
  EXPECT_EQ(seen.load(), 100u);
}

TEST_P(TaskV2, FirstprivateArgsAreDecayCopied) {
  std::atomic<std::int64_t> sum{0};
  o::parallel([&](int, int) {
    o::single([&] {
      for (int i = 1; i <= 8; ++i) {
        // task(f, args...): i is captured by value at creation time.
        o::task([&sum](int v, int w) { sum.fetch_add(v * w); }, i, 2);
      }
      o::taskwait();
    });
  });
  EXPECT_EQ(sum.load(), 2 * 8 * 9 / 2);
}

TEST_P(TaskV2, DeprecatedStdFunctionOverloadStillWorks) {
  std::atomic<int> ran{0};
  const auto before = o::task_stats();
  o::parallel([&](int, int) {
    o::single([&] {
      std::function<void()> fn = [&ran] { ran.fetch_add(1); };
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
      o::task(fn);
      o::TaskFlags flags;
      o::task(fn, flags);
#pragma GCC diagnostic pop
      o::taskwait();
    });
  });
  const auto after = o::task_stats();
  EXPECT_EQ(ran.load(), 2);
  EXPECT_GE(after.task_alloc - before.task_alloc, 2u)
      << "boxed std::function payloads spill (the v1 cost model)";
}

// ---- omp::future<T> ---------------------------------------------------------

TEST_P(TaskV2, FutureReturnsValue) {
  o::parallel([&](int, int) {
    o::single([&] {
      auto f = o::task_ret([] { return 6 * 7; });
      EXPECT_TRUE(f.valid());
      EXPECT_EQ(f.get(), 42);
      EXPECT_FALSE(f.valid()) << "get() consumes the handle";
    });
  });
}

TEST_P(TaskV2, FutureReturnsStringBuiltFromArgs) {
  o::parallel([&](int, int) {
    o::single([&] {
      auto f = o::task_ret(
          [](const std::string& a, int n) {
            std::string out;
            for (int i = 0; i < n; ++i) out += a;
            return out;
          },
          std::string("ab"), 3);
      EXPECT_EQ(f.get(), "ababab");
    });
  });
}

TEST_P(TaskV2, FutureVoidCompletes) {
  std::atomic<int> ran{0};
  o::parallel([&](int, int) {
    o::single([&] {
      auto f = o::task_ret([&ran] { ran.fetch_add(1); });
      f.wait();
      EXPECT_TRUE(f.is_done());
      f.get();  // void get: rethrows or returns nothing
      EXPECT_EQ(ran.load(), 1);
    });
  });
}

TEST_P(TaskV2, FutureTransportsException) {
  o::parallel([&](int, int) {
    o::single([&] {
      auto f = o::task_ret([]() -> int {
        throw std::runtime_error("task failed");
      });
      EXPECT_THROW((void)f.get(), std::runtime_error);
    });
  });
}

TEST_P(TaskV2, FutureWaitAfterCompletionIsImmediate) {
  o::parallel([&](int, int) {
    o::single([&] {
      auto f = o::task_ret([] { return 1; });
      o::taskwait();  // task certainly finished
      EXPECT_TRUE(f.is_done());
      f.wait();  // must not deadlock / spin
      EXPECT_EQ(f.get(), 1);
    });
  });
}

TEST_P(TaskV2, FutureWaitBeforeCompletionBlocksUntilDone) {
  if (glto::sched::chaos_enabled()) {
    // An injected spawn failure would run the gated body INLINE on the
    // producer before the gate-opening task exists — a self-deadlock by
    // construction, not a runtime defect.
    GTEST_SKIP() << "gated-task handshake is incompatible with chaos "
                    "inline-spawn degradation";
  }
  std::atomic<bool> gate{false};
  o::parallel([&](int, int) {
    o::single([&] {
      auto f = o::task_ret([&gate] {
        while (!gate.load(std::memory_order_acquire)) {
          // Runs on another member (or interleaved by yields).
        }
        return 7;
      });
      // Open the gate from a second task so single-member teams make
      // progress through wait()'s taskyield loop.
      o::task([&gate] { gate.store(true, std::memory_order_release); });
      EXPECT_EQ(f.get(), 7);
      o::taskwait();
    });
  });
}

TEST_P(TaskV2, FutureSpilledPayloadRoundTrips) {
  struct Big {
    double d[12];  // forces the descriptor payload to spill
  };
  Big big{};
  big.d[11] = 3.5;
  o::parallel([&](int, int) {
    o::single([&] {
      auto f = o::task_ret([big] { return big.d[11] * 2; });
      EXPECT_DOUBLE_EQ(f.get(), 7.0);
    });
  });
}

TEST_P(TaskV2, FutureGetOnConsumedHandleThrows) {
  o::parallel([&](int, int) {
    o::single([&] {
      auto f = o::task_ret([] { return 5; });
      EXPECT_EQ(f.get(), 5);
      EXPECT_THROW((void)f.get(), std::logic_error) << "consumed handle";
      o::future<int> moved_from = o::task_ret([] { return 6; });
      o::future<int> moved_to = std::move(moved_from);
      EXPECT_THROW((void)moved_from.get(), std::logic_error);
      EXPECT_EQ(moved_to.get(), 6);
    });
  });
}

TEST_P(TaskV2, ManyFuturesComplete) {
  o::parallel([&](int, int) {
    o::single([&] {
      std::vector<o::future<int>> fs;
      fs.reserve(32);
      for (int i = 0; i < 32; ++i) {
        fs.push_back(o::task_ret([i] { return i * i; }));
      }
      for (int i = 0; i < 32; ++i) EXPECT_EQ(fs[i].get(), i * i);
    });
  });
}

// ---- grain-controlled loops -------------------------------------------------

TEST_P(TaskV2, ParForIndexBodyCoversRange) {
  constexpr std::int64_t kN = 200;
  std::vector<std::atomic<int>> hits(kN);
  o::par_for(0, kN, [&](std::int64_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_P(TaskV2, ParForGrainBoundsChunkSize) {
  constexpr std::int64_t kN = 100;
  std::atomic<std::int64_t> covered{0};
  std::atomic<bool> ok{true};
  o::par_for(0, kN, {o::Schedule::Dynamic, 4, 0},
             [&](std::int64_t b, std::int64_t e) {
               if (e - b > 4) ok.store(false);
               covered.fetch_add(e - b);
             });
  EXPECT_TRUE(ok.load()) << "grain caps every dynamic dispatch";
  EXPECT_EQ(covered.load(), kN);
}

TEST_P(TaskV2, ParForCutoffRunsSerial) {
  constexpr std::int64_t kN = 64;
  const auto counters_before = o::runtime().counters();
  std::atomic<std::int64_t> sum{0};
  o::par_for(0, kN, {o::Schedule::Static, 0, kN},  // cutoff == trip count
             [&](std::int64_t i) { sum.fetch_add(i); });
  const auto counters_after = o::runtime().counters();
  EXPECT_EQ(sum.load(), kN * (kN - 1) / 2);
  // Below the cutoff no team is forked: no new ULTs (glto) and no worker
  // thread engagements (pthread runtimes).
  EXPECT_EQ(counters_after.ults_created, counters_before.ults_created);
  EXPECT_EQ(
      counters_after.os_threads_created + counters_after.os_threads_reused,
      counters_before.os_threads_created + counters_before.os_threads_reused);
}

// ---- bulk spawn (task_bulk / taskloop) --------------------------------------

TEST_P(TaskV2, TaskBulkRunsEveryDescriptorOnce) {
  constexpr int kN = 100;
  std::vector<std::atomic<int>> hits(kN);
  o::parallel([&](int, int) {
    o::single([&] {
      std::vector<o::TaskDesc> descs;
      descs.reserve(kN);
      for (int i = 0; i < kN; ++i) {
        auto* h = &hits[static_cast<std::size_t>(i)];
        descs.push_back(o::TaskDesc::make([h] { h->fetch_add(1); }));
      }
      o::task_bulk(descs.data(), descs.size());
      o::taskwait();
    });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_P(TaskV2, TaskloopGrainSweepMatchesParFor) {
  // taskloop is the task-shaped twin of par_for's grain chunking: the
  // chunks arrive as ONE bulk spawn. Sweep grains (incl. non-dividing and
  // over-sized) and check coverage parity with the work-shared loop.
  constexpr std::int64_t kN = 200;
  for (std::int64_t grain : {std::int64_t{1}, std::int64_t{3},
                             std::int64_t{16}, std::int64_t{512}}) {
    std::vector<std::atomic<int>> tl_hits(kN);
    std::atomic<std::int64_t> max_chunk{0};
    o::parallel([&](int, int) {
      o::single([&] {
        o::taskloop(0, kN, grain, [&](std::int64_t b, std::int64_t e) {
          std::int64_t cur = max_chunk.load();
          while (e - b > cur && !max_chunk.compare_exchange_weak(cur, e - b)) {
          }
          for (std::int64_t i = b; i < e; ++i) {
            tl_hits[static_cast<std::size_t>(i)].fetch_add(1);
          }
        });
      });
    });
    std::vector<std::atomic<int>> pf_hits(kN);
    o::par_for(0, kN, {o::Schedule::Dynamic, grain, 0}, [&](std::int64_t i) {
      pf_hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (std::int64_t i = 0; i < kN; ++i) {
      EXPECT_EQ(tl_hits[static_cast<std::size_t>(i)].load(), 1)
          << "taskloop grain=" << grain << " missed index " << i;
      EXPECT_EQ(pf_hits[static_cast<std::size_t>(i)].load(), 1);
    }
    EXPECT_LE(max_chunk.load(), std::max<std::int64_t>(grain, 1))
        << "taskloop chunks never exceed the grain";
  }
}

TEST_P(TaskV2, TaskloopFromRootContextCompletes) {
  std::atomic<std::int64_t> sum{0};
  o::taskloop(0, 64, 8, [&](std::int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 64 * 63 / 2);
}

TEST_P(TaskV2, LoopInsideParallelGuidedCoversRange) {
  constexpr std::int64_t kN = 150;
  std::vector<std::atomic<int>> hits(kN);
  o::parallel([&](int, int) {
    o::loop(0, kN, {o::Schedule::Guided, 2, 0},
            [&](std::int64_t b, std::int64_t e) {
              for (std::int64_t i = b; i < e; ++i) {
                hits[static_cast<std::size_t>(i)].fetch_add(1);
              }
            });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_P(TaskV2, DeprecatedLoopWrappersStillCover) {
  constexpr std::int64_t kN = 60;
  std::vector<std::atomic<int>> hits(kN);
  std::atomic<std::int64_t> sum{0};
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  o::parallel_for(0, kN, [&](std::int64_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  o::parallel_for_ranges(0, kN, o::Schedule::Dynamic, 5,
                         [&](std::int64_t b, std::int64_t e) {
                           sum.fetch_add(e - b);
                         });
  o::parallel([&](int, int) {
    o::for_loop(0, kN, o::Schedule::Static, 0,
                [&](std::int64_t b, std::int64_t e) { sum.fetch_add(e - b); });
  });
#pragma GCC diagnostic pop
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(sum.load(), 2 * kN);
}

INSTANTIATE_TEST_SUITE_P(
    AllRuntimes, TaskV2,
    ::testing::Values(o::RuntimeKind::gnu, o::RuntimeKind::intel,
                      o::RuntimeKind::glto_abt, o::RuntimeKind::glto_qth,
                      o::RuntimeKind::glto_mth),
    [](const ::testing::TestParamInfo<o::RuntimeKind>& info) {
      std::string n = o::kind_name(info.param);
      for (auto& ch : n) {
        if (ch == '-') ch = '_';
      }
      return n;
    });

// ---- bulk-deposit accounting (GLTO over the shared scheduling core) ---------

class TaskBulkGlto : public ::testing::TestWithParam<o::RuntimeKind> {
 protected:
  void SetUp() override {
    if (glto::sched::chaos_enabled()) {
      // Under $GLTO_CHAOS the bulk fast path deliberately degrades to
      // per-task spawns (every unit must pass the spawn-fail hook), so
      // the one-deposit invariant these tests assert does not hold by
      // design. Completion correctness under chaos is covered elsewhere.
      GTEST_SKIP() << "bulk-deposit accounting is bypassed under chaos";
    }
    o::SelectOptions opts;
    opts.num_threads = 4;
    opts.bind_threads = false;
    o::select(GetParam(), opts);
  }
  // TearDown still runs after a SetUp skip — only shut down what exists.
  void TearDown() override {
    if (o::selected()) o::shutdown();
  }
};

TEST_P(TaskBulkGlto, TaskloopGrainChunksArriveAsOneBulkDeposit) {
  // The batch-spawn proof: a producer taskloop's grain chunks must cross
  // the scheduler as ONE submit_bulk (one queue publication per victim
  // GLT_thread + one targeted wake per victim), not as per-chunk submits.
  std::atomic<std::int64_t> sum{0};
  auto run = [&] {
    o::parallel([&](int, int) {
      o::single([&] {
        o::taskloop(0, 256, 4, [&](std::int64_t i) { sum.fetch_add(i); });
      });
    });
  };
  run();  // warm the record freelists
  sum.store(0);
  const auto before = glto::glt::stats();
  run();
  const auto after = glto::glt::stats();
  EXPECT_EQ(sum.load(), 256 * 255 / 2);
  EXPECT_EQ(after.bulk_deposits - before.bulk_deposits, 1u)
      << "64 grain chunks must cross the core as exactly one bulk deposit";
}

TEST_P(TaskBulkGlto, SectionsBlocksArriveAsOneBulkDeposit) {
  std::vector<std::atomic<int>> hits(12);
  struct Bump {
    std::atomic<int>* h;
    void operator()() const { h->fetch_add(1); }
  };
  std::vector<Bump> blocks;
  blocks.reserve(hits.size());
  for (auto& h : hits) blocks.push_back(Bump{&h});
  std::vector<o::Section> secs;
  secs.reserve(blocks.size());
  for (auto& blk : blocks) secs.push_back(o::section_of(blk));
  auto run = [&] {
    o::parallel([&](int, int) { o::sections(secs.data(), secs.size()); });
  };
  run();
  const auto before = glto::glt::stats();
  run();
  const auto after = glto::glt::stats();
  for (auto& h : hits) EXPECT_EQ(h.load(), 2);
  EXPECT_EQ(after.bulk_deposits - before.bulk_deposits, 1u)
      << "sections blocks must cross the core as one bulk deposit";
}

INSTANTIATE_TEST_SUITE_P(
    GltoRuntimes, TaskBulkGlto,
    ::testing::Values(o::RuntimeKind::glto_abt, o::RuntimeKind::glto_qth,
                      o::RuntimeKind::glto_mth),
    [](const ::testing::TestParamInfo<o::RuntimeKind>& info) {
      std::string n = o::kind_name(info.param);
      for (auto& ch : n) {
        if (ch == '-') ch = '_';
      }
      return n;
    });

// ---- glt::ult_is_done (the completion-order join probe) ---------------------

namespace {
std::atomic<int> g_glt_ran{0};
void bump(void*) { g_glt_ran.fetch_add(1, std::memory_order_relaxed); }
}  // namespace

TEST(GltIsDone, ProbeTurnsTrueAndJoinReclaims) {
  glto::glt::Config cfg;
  cfg.num_threads = 2;
  cfg.bind_threads = false;
  glto::glt::init(cfg);
  std::vector<glto::glt::Ult*> us;
  for (int i = 0; i < 64; ++i) {
    us.push_back(glto::glt::ult_create(bump, nullptr));
  }
  // Completion-order reclaim: poll, joining whatever finished first.
  std::size_t remaining = us.size();
  while (remaining > 0) {
    bool progressed = false;
    for (auto& u : us) {
      if (u != nullptr && glto::glt::ult_is_done(u)) {
        glto::glt::ult_join(u);
        u = nullptr;
        --remaining;
        progressed = true;
      }
    }
    if (!progressed) glto::glt::yield();
  }
  EXPECT_EQ(g_glt_ran.load(), 64);
  glto::glt::finalize();
}
