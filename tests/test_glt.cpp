// GLT conformance suite, parameterized over the three backends.
//
// The GLT promise (paper §III-B): a program written against the GLT API
// runs unmodified over any backend with identical *results* (performance
// may differ). Every test here therefore runs 3×: abt, qth, mth.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "glt/glt.hpp"

namespace gg = glto::glt;

class GltBackend : public ::testing::TestWithParam<gg::Impl> {
 protected:
  void SetUp() override {
    gg::Config cfg;
    cfg.impl = GetParam();
    cfg.num_threads = 3;
    cfg.bind_threads = false;
    gg::init(cfg);
  }
  void TearDown() override { gg::finalize(); }
};

TEST_P(GltBackend, InitReportsBackendAndThreads) {
  EXPECT_TRUE(gg::initialized());
  EXPECT_EQ(gg::current_impl(), GetParam());
  EXPECT_EQ(gg::num_threads(), 3);
  EXPECT_GE(gg::thread_num(), 0);
}

TEST_P(GltBackend, UltCreateJoin) {
  std::atomic<int> x{0};
  auto* u = gg::ult_create(
      [](void* p) { static_cast<std::atomic<int>*>(p)->store(11); }, &x);
  gg::ult_join(u);
  EXPECT_EQ(x.load(), 11);
}

TEST_P(GltBackend, ManyUltsAllRun) {
  constexpr int kN = 300;
  std::atomic<int> count{0};
  std::vector<gg::Ult*> us;
  us.reserve(kN);
  for (int i = 0; i < kN; ++i) {
    us.push_back(gg::ult_create(
        [](void* p) { static_cast<std::atomic<int>*>(p)->fetch_add(1); },
        &count));
  }
  for (auto* u : us) gg::ult_join(u);
  EXPECT_EQ(count.load(), kN);
}

TEST_P(GltBackend, UltCreateBulkRunsEveryUnit) {
  // Bulk spawn conformance: one deposit publishes the whole batch; every
  // unit runs exactly once; handles join normally. Both distribution
  // hints, odd batch sizes, and a size larger than the internal wave.
  for (const bool spread : {false, true}) {
    for (const int n : {1, 7, 300}) {
      std::atomic<int> count{0};
      std::vector<void*> args(static_cast<std::size_t>(n), &count);
      std::vector<gg::Ult*> us(static_cast<std::size_t>(n));
      gg::ult_create_bulk(
          [](void* p) { static_cast<std::atomic<int>*>(p)->fetch_add(1); },
          args.data(), n, us.data(), spread);
      for (auto* u : us) gg::ult_join(u);
      EXPECT_EQ(count.load(), n) << "spread=" << spread << " n=" << n;
    }
  }
  EXPECT_GT(gg::stats().bulk_deposits, 0u)
      << "bulk creates must go through the core's bulk-deposit path";
}

TEST_P(GltBackend, UltCreateBulkFromInsideUlt) {
  // A producer ULT fans a batch out mid-flight (the DAG ready-burst
  // shape); the creator joins its batch before finishing.
  struct Ctx {
    std::atomic<int> count{0};
  } ctx;
  auto* outer = gg::ult_create(
      [](void* p) {
        auto* c = static_cast<Ctx*>(p);
        constexpr int kN = 32;
        std::vector<void*> args(kN, &c->count);
        std::vector<gg::Ult*> us(kN);
        gg::ult_create_bulk(
            [](void* q) { static_cast<std::atomic<int>*>(q)->fetch_add(1); },
            args.data(), kN, us.data(), /*spread=*/false);
        for (auto* u : us) gg::ult_join(u);
      },
      &ctx);
  gg::ult_join(outer);
  EXPECT_EQ(ctx.count.load(), 32);
}

TEST_P(GltBackend, UltIsDoneTracksCompletion) {
  // The non-destructive completion probe behind the completion-order
  // burst join: false until the body ran, true after, join still works.
  std::atomic<int> count{0};
  constexpr int kN = 100;
  std::vector<gg::Ult*> us;
  us.reserve(kN);
  for (int i = 0; i < kN; ++i) {
    us.push_back(gg::ult_create(
        [](void* p) { static_cast<std::atomic<int>*>(p)->fetch_add(1); },
        &count));
  }
  // Completion-order reclaim: join whatever finished first.
  std::size_t remaining = us.size();
  while (remaining > 0) {
    bool progressed = false;
    for (auto& u : us) {
      if (u != nullptr && gg::ult_is_done(u)) {
        gg::ult_join(u);
        u = nullptr;
        --remaining;
        progressed = true;
      }
    }
    if (!progressed) gg::yield();
  }
  EXPECT_EQ(count.load(), kN);
}

TEST_P(GltBackend, UltCreateToAllThreads) {
  std::atomic<int> count{0};
  std::vector<gg::Ult*> us;
  for (int t = 0; t < gg::num_threads(); ++t) {
    for (int i = 0; i < 20; ++i) {
      us.push_back(gg::ult_create_to(
          t, [](void* p) { static_cast<std::atomic<int>*>(p)->fetch_add(1); },
          &count));
    }
  }
  for (auto* u : us) gg::ult_join(u);
  EXPECT_EQ(count.load(), gg::num_threads() * 20);
}

TEST_P(GltBackend, PlacementIsExactWithoutStealing) {
  if (gg::supports_stealing()) {
    GTEST_SKIP() << "mth: placement is advisory under work stealing";
  }
  for (int t = 0; t < gg::num_threads(); ++t) {
    std::atomic<int> ran_on{-1};
    auto* u = gg::ult_create_to(
        t,
        [](void* p) {
          static_cast<std::atomic<int>*>(p)->store(gg::thread_num());
        },
        &ran_on);
    gg::ult_join(u);
    EXPECT_EQ(ran_on.load(), t);
  }
}

TEST_P(GltBackend, TaskletCreateJoin) {
  std::atomic<int> x{0};
  auto* t = gg::tasklet_create(
      [](void* p) { static_cast<std::atomic<int>*>(p)->store(21); }, &x);
  gg::tasklet_join(t);
  EXPECT_EQ(x.load(), 21);
}

TEST_P(GltBackend, TaskletsToSpecificThreads) {
  std::atomic<int> count{0};
  std::vector<gg::Tasklet*> ts;
  for (int t = 0; t < gg::num_threads(); ++t) {
    ts.push_back(gg::tasklet_create_to(
        t, [](void* p) { static_cast<std::atomic<int>*>(p)->fetch_add(1); },
        &count));
  }
  for (auto* t : ts) gg::tasklet_join(t);
  EXPECT_EQ(count.load(), gg::num_threads());
}

TEST_P(GltBackend, YieldFromMainIsSafe) {
  for (int i = 0; i < 5; ++i) gg::yield();
  SUCCEED();
}

TEST_P(GltBackend, NestedCreateJoinInsideUlt) {
  std::atomic<int> total{0};
  auto* u = gg::ult_create(
      [](void* p) {
        std::vector<gg::Ult*> kids;
        for (int i = 0; i < 16; ++i) {
          kids.push_back(gg::ult_create(
              [](void* q) { static_cast<std::atomic<int>*>(q)->fetch_add(1); },
              p));
        }
        for (auto* k : kids) gg::ult_join(k);
        static_cast<std::atomic<int>*>(p)->fetch_add(100);
      },
      &total);
  gg::ult_join(u);
  EXPECT_EQ(total.load(), 116);
}

TEST_P(GltBackend, UltsCanYieldAndFinish) {
  std::atomic<int> count{0};
  std::vector<gg::Ult*> us;
  for (int i = 0; i < 20; ++i) {
    us.push_back(gg::ult_create(
        [](void* p) {
          for (int k = 0; k < 5; ++k) gg::yield();
          static_cast<std::atomic<int>*>(p)->fetch_add(1);
        },
        &count));
  }
  for (auto* u : us) gg::ult_join(u);
  EXPECT_EQ(count.load(), 20);
}

TEST_P(GltBackend, StatsTrackCreations) {
  const auto before = gg::stats();
  std::atomic<int> x{0};
  auto* u = gg::ult_create(
      [](void* p) { static_cast<std::atomic<int>*>(p)->fetch_add(1); }, &x);
  auto* t = gg::tasklet_create(
      [](void* p) { static_cast<std::atomic<int>*>(p)->fetch_add(1); }, &x);
  gg::ult_join(u);
  gg::tasklet_join(t);
  const auto after = gg::stats();
  EXPECT_EQ(after.ults_created, before.ults_created + 1);
  EXPECT_EQ(after.tasklets_created, before.tasklets_created + 1);
}

TEST_P(GltBackend, CapabilitiesMatchBackend) {
  switch (GetParam()) {
    case gg::Impl::abt:
      EXPECT_FALSE(gg::supports_stealing());
      EXPECT_TRUE(gg::supports_native_tasklets());
      break;
    case gg::Impl::qth:
      EXPECT_FALSE(gg::supports_stealing());
      EXPECT_FALSE(gg::supports_native_tasklets());
      break;
    case gg::Impl::mth:
      EXPECT_TRUE(gg::supports_stealing());
      EXPECT_FALSE(gg::supports_native_tasklets());
      break;
  }
}

TEST_P(GltBackend, FanOutFanInPattern) {
  // Map-reduce shape: N ULTs write disjoint slots; main reduces after join.
  constexpr int kN = 128;
  static std::vector<long long> slots;
  slots.assign(kN, 0);
  struct Arg {
    int idx;
  };
  static Arg args[kN];
  std::vector<gg::Ult*> us;
  for (int i = 0; i < kN; ++i) {
    args[i].idx = i;
    us.push_back(gg::ult_create(
        [](void* p) {
          const int i = static_cast<Arg*>(p)->idx;
          slots[static_cast<std::size_t>(i)] = 1LL * i * i;
        },
        &args[i]));
  }
  for (auto* u : us) gg::ult_join(u);
  long long sum = 0;
  for (auto v : slots) sum += v;
  long long expect = 0;
  for (int i = 0; i < kN; ++i) expect += 1LL * i * i;
  EXPECT_EQ(sum, expect);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, GltBackend,
                         ::testing::Values(gg::Impl::abt, gg::Impl::qth,
                                           gg::Impl::mth),
                         [](const ::testing::TestParamInfo<gg::Impl>& info) {
                           return gg::impl_name(info.param);
                         });

// GLT_SHARED_QUEUES=1 conformance: the §IV-F shared-pool ablation must
// produce identical results on every backend now that qth and mth honour
// it through the shared scheduling core (previously abt-only).
class GltSharedQueues : public ::testing::TestWithParam<gg::Impl> {
 protected:
  void SetUp() override {
    gg::Config cfg;
    cfg.impl = GetParam();
    cfg.num_threads = 3;
    cfg.bind_threads = false;
    cfg.shared_queues = true;
    gg::init(cfg);
  }
  void TearDown() override { gg::finalize(); }
};

TEST_P(GltSharedQueues, ManyUltsAllRun) {
  constexpr int kN = 200;
  std::atomic<int> count{0};
  std::vector<gg::Ult*> us;
  us.reserve(kN);
  for (int i = 0; i < kN; ++i) {
    us.push_back(gg::ult_create(
        [](void* p) { static_cast<std::atomic<int>*>(p)->fetch_add(1); },
        &count));
  }
  for (auto* u : us) gg::ult_join(u);
  EXPECT_EQ(count.load(), kN);
}

TEST_P(GltSharedQueues, NestedCreateJoinInsideUlt) {
  std::atomic<int> total{0};
  auto* u = gg::ult_create(
      [](void* p) {
        std::vector<gg::Ult*> kids;
        for (int i = 0; i < 16; ++i) {
          kids.push_back(gg::ult_create(
              [](void* q) { static_cast<std::atomic<int>*>(q)->fetch_add(1); },
              p));
        }
        for (auto* k : kids) gg::ult_join(k);
        static_cast<std::atomic<int>*>(p)->fetch_add(100);
      },
      &total);
  gg::ult_join(u);
  EXPECT_EQ(total.load(), 116);
}

TEST_P(GltSharedQueues, UltsCanYieldAndFinish) {
  std::atomic<int> count{0};
  std::vector<gg::Ult*> us;
  for (int i = 0; i < 20; ++i) {
    us.push_back(gg::ult_create(
        [](void* p) {
          for (int k = 0; k < 5; ++k) gg::yield();
          static_cast<std::atomic<int>*>(p)->fetch_add(1);
        },
        &count));
  }
  for (auto* u : us) gg::ult_join(u);
  EXPECT_EQ(count.load(), 20);
}

TEST_P(GltSharedQueues, TaskletsRunToo) {
  std::atomic<int> x{0};
  auto* t = gg::tasklet_create(
      [](void* p) { static_cast<std::atomic<int>*>(p)->fetch_add(1); }, &x);
  gg::tasklet_join(t);
  EXPECT_EQ(x.load(), 1);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, GltSharedQueues,
                         ::testing::Values(gg::Impl::abt, gg::Impl::qth,
                                           gg::Impl::mth),
                         [](const ::testing::TestParamInfo<gg::Impl>& info) {
                           return gg::impl_name(info.param);
                         });

TEST(GltConfig, ImplNameRoundTrip) {
  for (auto impl : {gg::Impl::abt, gg::Impl::qth, gg::Impl::mth}) {
    auto parsed = gg::impl_from_string(gg::impl_name(impl));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, impl);
  }
  EXPECT_FALSE(gg::impl_from_string("pthreads").has_value());
}

TEST(GltConfig, LongNamesAccepted) {
  EXPECT_EQ(*gg::impl_from_string("argobots"), gg::Impl::abt);
  EXPECT_EQ(*gg::impl_from_string("qthreads"), gg::Impl::qth);
  EXPECT_EQ(*gg::impl_from_string("massivethreads"), gg::Impl::mth);
}

TEST(GltConfig, EnvConfigParsing) {
  namespace env = glto::common;
  env::env_set("GLT_IMPL", "mth");
  env::env_set("GLT_NUM_THREADS", "5");
  env::env_set("GLT_SHARED_QUEUES", "1");
  auto cfg = gg::config_from_env();
  EXPECT_EQ(cfg.impl, gg::Impl::mth);
  EXPECT_EQ(cfg.num_threads, 5);
  EXPECT_TRUE(cfg.shared_queues);
  env::env_set("GLT_IMPL", nullptr);
  env::env_set("GLT_NUM_THREADS", nullptr);
  env::env_set("GLT_SHARED_QUEUES", nullptr);
  auto cfg2 = gg::config_from_env();
  EXPECT_EQ(cfg2.impl, gg::Impl::abt) << "abt is the default backend";
  EXPECT_EQ(cfg2.num_threads, 0);
  EXPECT_FALSE(cfg2.shared_queues);
}
