// Runtime hardening surface across all five runtimes: timed waits
// (future::wait_for, taskwait_for, taskgroup_with_deadline), taskgroup
// cancellation (facade + kmpc shim), the stall watchdog's abort path, and
// a deterministic-seed chaos soak that injects spawn/alloc/delay faults
// while asserting exact completion counts.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "omp/kmp_abi.hpp"
#include "omp/omp.hpp"
#include "sched/chaos.hpp"
#include "sched/watchdog.hpp"

namespace o = glto::omp;

namespace {

using std::chrono::milliseconds;

/// Bounded producer-side handshake: waits for @p flag WITHOUT helping run
/// tasks. The waiter here gates the very task it waits on (the task blocks
/// until the waiter releases it), so a help-first pthread runtime must not
/// pick that task up inline via taskyield — the waiter would end up
/// executing the blocked body itself and deadlock. yield_hint() makes
/// cooperative progress on every runtime (GLTO: ULT yield; pthread:
/// polite relax) without task pickup. False on timeout; never hangs.
bool await_flag(const std::atomic<bool>& flag, int ms = 10000) {
  const auto start = std::chrono::steady_clock::now();
  while (!flag.load(std::memory_order_acquire)) {
    o::runtime().yield_hint();
    if (std::chrono::steady_clock::now() - start > milliseconds(ms)) {
      return false;
    }
  }
  return true;
}

/// Runs @p body in a single/producer region (the usual task-producer
/// shape; the trailing taskwait joins any stragglers).
void producer(const std::function<void()>& body) {
  o::parallel([&](int, int) {
    o::single([&] {
      body();
      o::taskwait();
    });
  });
}

/// Turns chaos off again even when an assertion fails mid-test.
struct ChaosOffGuard {
  ~ChaosOffGuard() { glto::sched::chaos_set_for_testing({}); }
};

/// Gated-task tests cannot run under AMBIENT chaos ($GLTO_CHAOS): an
/// injected spawn failure executes the task INLINE on the spawning
/// thread (the documented degradation), so a body that blocks on a flag
/// its producer sets only later becomes a self-deadlock, and in-flight/
/// deferred distinctions the assertions rely on disappear. The chaos CI
/// leg still runs every non-gated test; the semantics these cover are
/// exercised by the non-chaos legs.
#define GLTO_SKIP_GATED_UNDER_CHAOS()                                     \
  do {                                                                    \
    if (glto::sched::chaos_enabled()) {                                   \
      GTEST_SKIP() << "gated-task handshake is incompatible with chaos "  \
                      "inline-spawn degradation";                         \
    }                                                                     \
  } while (0)

}  // namespace

class Hardening : public ::testing::TestWithParam<o::RuntimeKind> {
 protected:
  void SetUp() override {
    o::SelectOptions opts;
    opts.num_threads = 4;
    opts.bind_threads = false;
    opts.active_wait = false;
    o::select(GetParam(), opts);
  }
  void TearDown() override { o::shutdown(); }
};

// ---- timed waits ---------------------------------------------------------

TEST_P(Hardening, WaitForTimesOutOnRunningTaskThenJoins) {
  GLTO_SKIP_GATED_UNDER_CHAOS();
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  producer([&] {
    auto fut = o::task_ret([&]() -> int {
      started.store(true, std::memory_order_release);
      while (!release.load(std::memory_order_acquire)) o::taskyield();
      return 42;
    });
    // Handshake before the timed wait: once the body runs on a worker,
    // the deadline bounds pure waiting — the help-first pthread runtimes
    // cannot pick the blocked task up inline from an empty queue.
    ASSERT_TRUE(await_flag(started));
    EXPECT_EQ(fut.wait_for(milliseconds(30)), o::FutureStatus::timeout)
        << "a blocked task must surface as a timeout, not a hang";
    // The handle stays valid after a timeout; the join still works.
    release.store(true, std::memory_order_release);
    EXPECT_EQ(fut.wait_for(milliseconds(10000)), o::FutureStatus::ready);
    EXPECT_EQ(fut.get(), 42);
  });
}

TEST_P(Hardening, WaitForOnCompletedTaskIsReady) {
  producer([&] {
    auto fut = o::task_ret([] { return 7; });
    fut.wait();
    EXPECT_EQ(fut.wait_for(milliseconds(0)), o::FutureStatus::ready);
    EXPECT_EQ(fut.get(), 7);
  });
}

TEST_P(Hardening, TaskwaitForTimesOutAndLaterJoins) {
  GLTO_SKIP_GATED_UNDER_CHAOS();
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  std::atomic<bool> child_done{false};
  producer([&] {
    o::task([&] {
      started.store(true, std::memory_order_release);
      while (!release.load(std::memory_order_acquire)) o::taskyield();
      child_done.store(true, std::memory_order_release);
    });
    ASSERT_TRUE(await_flag(started));
    EXPECT_FALSE(o::taskwait_for(milliseconds(30)))
        << "a blocked child must expire the deadline, not hang taskwait";
    EXPECT_FALSE(child_done.load(std::memory_order_acquire));
    release.store(true, std::memory_order_release);
    EXPECT_TRUE(o::taskwait_for(milliseconds(10000)));
    EXPECT_TRUE(child_done.load(std::memory_order_acquire));
  });
}

TEST_P(Hardening, TaskwaitForWithNoChildrenReturnsImmediately) {
  producer([&] { EXPECT_TRUE(o::taskwait_for(milliseconds(0))); });
}

// ---- cancellation --------------------------------------------------------

TEST_P(Hardening, CancelSkipsUnstartedMembersButJoinsInFlight) {
  GLTO_SKIP_GATED_UNDER_CHAOS();
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  std::atomic<int> bodies_run{0};
  std::atomic<bool> in_flight_finished{false};
  producer([&] {
    o::taskgroup([&] {
      o::task([&] {
        started.store(true, std::memory_order_release);
        bodies_run.fetch_add(1);
        while (!release.load(std::memory_order_acquire)) o::taskyield();
        in_flight_finished.store(true, std::memory_order_release);
      });
      ASSERT_TRUE(await_flag(started));
      EXPECT_FALSE(o::cancellation_point());
      EXPECT_TRUE(o::cancel()) << "an enclosing taskgroup exists";
      EXPECT_TRUE(o::cancellation_point());
      // Members created after the cancellation: never started → skipped.
      for (int i = 0; i < 64; ++i) {
        o::task([&] { bodies_run.fetch_add(1); });
      }
      release.store(true, std::memory_order_release);
    });
    // taskgroup_end joined everything: the in-flight body ran to
    // completion, the post-cancel members skipped their bodies.
    EXPECT_TRUE(in_flight_finished.load(std::memory_order_acquire));
    EXPECT_EQ(bodies_run.load(), 1);
  });
}

TEST_P(Hardening, CancelWithoutTaskgroupIsRefused) {
  producer([&] {
    EXPECT_FALSE(o::cancel());
    EXPECT_FALSE(o::cancellation_point());
  });
}

TEST_P(Hardening, TaskgroupWithDeadlineExpiresCancelsAndDrains) {
  // Under chaos the member could spawn-fail and run INLINE on the
  // producer, where cancellation can never arrive (the producer only
  // cancels after the body returns) — the poll loop would never exit.
  GLTO_SKIP_GATED_UNDER_CHAOS();
  std::atomic<bool> member_unwound{false};
  producer([&] {
    const bool in_time =
        o::taskgroup_with_deadline(milliseconds(30), [&] {
          o::task([&] {
            // Long-running member polling its cancellation point — the
            // documented unwind protocol for deadline expiry.
            while (!o::cancellation_point()) o::taskyield();
            member_unwound.store(true, std::memory_order_release);
          });
        });
    EXPECT_FALSE(in_time);
    EXPECT_TRUE(member_unwound.load(std::memory_order_acquire))
        << "the expired group still drains members to completion";
  });
}

TEST_P(Hardening, TaskgroupWithDeadlineCompletesInTime) {
  std::atomic<int> ran{0};
  producer([&] {
    const bool in_time =
        o::taskgroup_with_deadline(milliseconds(10000), [&] {
          for (int i = 0; i < 16; ++i) {
            o::task([&] { ran.fetch_add(1); });
          }
        });
    EXPECT_TRUE(in_time);
    EXPECT_EQ(ran.load(), 16);
  });
}

TEST_P(Hardening, KmpcCancelTaskgroupAcrossShim) {
  std::atomic<int> bodies_run{0};
  producer([&] {
    glto_kmpc_taskgroup();
    EXPECT_EQ(glto_kmpc_cancellationpoint(4), 0);
    EXPECT_EQ(glto_kmpc_cancel(1), 0) << "parallel cancellation unsupported";
    EXPECT_NE(glto_kmpc_cancel(4), 0);
    EXPECT_NE(glto_kmpc_cancellationpoint(4), 0);
    o::task([&] { bodies_run.fetch_add(1); });
    glto_kmpc_end_taskgroup();
    EXPECT_EQ(bodies_run.load(), 0) << "post-cancel member must be skipped";
  });
}

// ---- chaos soak ----------------------------------------------------------

TEST_P(Hardening, ChaosSoakCompletesEveryTaskExactlyOnce) {
  namespace s = glto::sched;
  ChaosOffGuard off;
  s::ChaosConfig cfg;
  cfg.enabled = true;
  cfg.spawn_p = 0.05;
  cfg.alloc_p = 0.10;
  cfg.delay_p = 0.02;
  cfg.seed = 42;  // deterministic per-thread fault streams
  s::chaos_set_for_testing(cfg);
  const std::uint64_t faults_before = s::chaos_faults_injected();

  constexpr int kTasks = 512;
  std::vector<std::atomic<int>> hits(kTasks);
  for (auto& h : hits) h.store(0);
  producer([&] {
    for (int i = 0; i < kTasks; ++i) {
      o::task([&hits, i] { hits[static_cast<std::size_t>(i)].fetch_add(1); });
    }
  });
  for (int i = 0; i < kTasks; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "task " << i;
  }

  // A dependence chain under chaos: spawn-failed releases degrade to
  // inline completion on the releasing thread — order must survive.
  constexpr int kChain = 64;
  int word = 0;
  std::vector<int> order;
  order.reserve(kChain);
  producer([&] {
    for (int i = 0; i < kChain; ++i) {
      o::TaskFlags f;
      f.depend.push_back(o::dep_inout(&word));
      o::task([&order, i] { order.push_back(i); }, f);
    }
  });
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kChain));
  for (int i = 0; i < kChain; ++i) EXPECT_EQ(order[i], i);

  EXPECT_GT(s::chaos_faults_injected(), faults_before)
      << "the soak must actually inject faults at these probabilities";
}

INSTANTIATE_TEST_SUITE_P(
    AllRuntimes, Hardening,
    ::testing::Values(o::RuntimeKind::gnu, o::RuntimeKind::intel,
                      o::RuntimeKind::glto_abt, o::RuntimeKind::glto_qth,
                      o::RuntimeKind::glto_mth),
    [](const ::testing::TestParamInfo<o::RuntimeKind>& info) {
      std::string n = o::kind_name(info.param);
      for (auto& ch : n) {
        if (ch == '-') ch = '_';
      }
      return n;
    });

// ---- watchdog ------------------------------------------------------------

// Runtime-independent: a frozen progress gauge with a live waiter must
// abort with a WATCHDOG report instead of hanging forever.
TEST(Watchdog, QuiescentButUnfinishedAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        glto::sched::watchdog_set_for_testing(50);
        glto::sched::watchdog_enter_wait();
        for (;;) {
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
      },
      "WATCHDOG");
}

TEST(Watchdog, ProgressSuppressesTheAbort) {
  glto::sched::watchdog_set_for_testing(100);
  glto::sched::watchdog_enter_wait();
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(400);
  while (std::chrono::steady_clock::now() < until) {
    glto::sched::watchdog_note_progress();  // heartbeat: never quiescent
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  glto::sched::watchdog_exit_wait();
  glto::sched::watchdog_set_for_testing(0);  // disarm for later tests
}
