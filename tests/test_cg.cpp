// CG workload tests: matrix properties, solver correctness, task-variant
// equivalence across runtimes, and the paper's task-count arithmetic.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "apps/cg.hpp"
#include "omp/omp.hpp"

namespace g = glto::apps::cg;
namespace o = glto::omp;

namespace {

std::vector<double> ones(int n) {
  return std::vector<double>(static_cast<std::size_t>(n), 1.0);
}

double residual(const g::Csr& a, const std::vector<double>& b,
                const std::vector<double>& x) {
  std::vector<double> ax(static_cast<std::size_t>(a.n), 0.0);
  g::spmv_seq(a, x, ax);
  double acc = 0.0;
  for (int i = 0; i < a.n; ++i) {
    const double d = b[static_cast<std::size_t>(i)] -
                     ax[static_cast<std::size_t>(i)];
    acc += d * d;
  }
  return std::sqrt(acc);
}

}  // namespace

TEST(CgMatrix, PentadiagonalStructure) {
  const auto a = g::make_spd_pentadiagonal(10);
  EXPECT_EQ(a.n, 10);
  EXPECT_EQ(a.rowptr.size(), 11u);
  // Interior rows have 5 entries; first/last rows 3; second rows 4.
  EXPECT_EQ(a.rowptr[1] - a.rowptr[0], 3);
  EXPECT_EQ(a.rowptr[2] - a.rowptr[1], 4);
  EXPECT_EQ(a.rowptr[6] - a.rowptr[5], 5);
  EXPECT_EQ(a.nnz(), 10 * 5 - 2 * 3);
}

TEST(CgMatrix, IsSymmetric) {
  const auto a = g::make_spd_pentadiagonal(30);
  // Check A[i][j] == A[j][i] by dense reconstruction.
  std::vector<std::vector<double>> dense(
      30, std::vector<double>(30, 0.0));
  for (int i = 0; i < a.n; ++i) {
    for (int k = a.rowptr[static_cast<std::size_t>(i)];
         k < a.rowptr[static_cast<std::size_t>(i) + 1]; ++k) {
      dense[static_cast<std::size_t>(i)]
           [static_cast<std::size_t>(a.col[static_cast<std::size_t>(k)])] =
               a.val[static_cast<std::size_t>(k)];
    }
  }
  for (int i = 0; i < 30; ++i) {
    for (int j = 0; j < 30; ++j) {
      EXPECT_DOUBLE_EQ(dense[static_cast<std::size_t>(i)]
                            [static_cast<std::size_t>(j)],
                       dense[static_cast<std::size_t>(j)]
                            [static_cast<std::size_t>(i)]);
    }
  }
}

TEST(CgMatrix, IsDiagonallyDominant) {
  const auto a = g::make_spd_pentadiagonal(50);
  for (int i = 0; i < a.n; ++i) {
    double diag = 0.0, off = 0.0;
    for (int k = a.rowptr[static_cast<std::size_t>(i)];
         k < a.rowptr[static_cast<std::size_t>(i) + 1]; ++k) {
      if (a.col[static_cast<std::size_t>(k)] == i) {
        diag = a.val[static_cast<std::size_t>(k)];
      } else {
        off += std::abs(a.val[static_cast<std::size_t>(k)]);
      }
    }
    EXPECT_GT(diag, off) << "row " << i;
  }
}

TEST(CgMatrix, SpmvMatchesDenseOnKnownVector) {
  const auto a = g::make_spd_pentadiagonal(6);
  std::vector<double> x = {1, 2, 3, 4, 5, 6};
  std::vector<double> y(6, 0.0);
  g::spmv_seq(a, x, y);
  // Row 2: -1*x0 -1*x1 +4.5*x2 -1*x3 -1*x4 = -1 -2 +13.5 -4 -5 = 1.5
  EXPECT_DOUBLE_EQ(y[2], 1.5);
  // Row 0: 4.5*1 -1*2 -1*3 = -0.5
  EXPECT_DOUBLE_EQ(y[0], -0.5);
}

TEST(CgTaskCounts, MatchPaperArithmetic) {
  // Paper §VI-E: granularities 10/20/50/100 on 14,878 rows give
  // 1,488/744/298/149 tasks.
  EXPECT_EQ(g::tasks_for_granularity(g::kPaperRows, 10), 1488);
  EXPECT_EQ(g::tasks_for_granularity(g::kPaperRows, 20), 744);
  EXPECT_EQ(g::tasks_for_granularity(g::kPaperRows, 50), 298);
  EXPECT_EQ(g::tasks_for_granularity(g::kPaperRows, 100), 149);
}

class CgOmp : public ::testing::TestWithParam<o::RuntimeKind> {
 protected:
  void SetUp() override {
    o::SelectOptions opts;
    opts.num_threads = 3;
    opts.bind_threads = false;
    o::select(GetParam(), opts);
  }
  void TearDown() override { o::shutdown(); }
};

TEST_P(CgOmp, WorksharingSolvesToTolerance) {
  const auto a = g::make_spd_pentadiagonal(500);
  const auto b = ones(500);
  std::vector<double> x;
  const auto res = g::solve_worksharing(a, b, x, 500, 1e-8);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(residual(a, b, x), 1e-5);
}

TEST_P(CgOmp, TasksSolveToTolerance) {
  const auto a = g::make_spd_pentadiagonal(500);
  const auto b = ones(500);
  std::vector<double> x;
  const auto res = g::solve_tasks(a, b, x, 500, 1e-8, 25);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(residual(a, b, x), 1e-5);
}

TEST_P(CgOmp, TaskGranularityDoesNotChangeResult) {
  const auto a = g::make_spd_pentadiagonal(300);
  const auto b = ones(300);
  std::vector<double> x10, x100;
  const auto r10 = g::solve_tasks(a, b, x10, 300, 1e-10, 10);
  const auto r100 = g::solve_tasks(a, b, x100, 300, 1e-10, 100);
  EXPECT_TRUE(r10.converged);
  EXPECT_TRUE(r100.converged);
  EXPECT_EQ(r10.iterations, r100.iterations)
      << "granularity is a scheduling knob, not a numerical one";
  for (int i = 0; i < 300; ++i) {
    EXPECT_NEAR(x10[static_cast<std::size_t>(i)],
                x100[static_cast<std::size_t>(i)], 1e-9);
  }
}

TEST_P(CgOmp, TasksMatchWorksharing) {
  const auto a = g::make_spd_pentadiagonal(300);
  const auto b = ones(300);
  std::vector<double> xw, xt;
  const auto rw = g::solve_worksharing(a, b, xw, 300, 1e-10);
  const auto rt = g::solve_tasks(a, b, xt, 300, 1e-10, 16);
  EXPECT_TRUE(rw.converged);
  EXPECT_TRUE(rt.converged);
  EXPECT_EQ(rw.iterations, rt.iterations);
  for (int i = 0; i < 300; ++i) {
    EXPECT_NEAR(xw[static_cast<std::size_t>(i)],
                xt[static_cast<std::size_t>(i)], 1e-9);
  }
}

TEST_P(CgOmp, GranularityLargerThanMatrixIsOneTask) {
  const auto a = g::make_spd_pentadiagonal(64);
  const auto b = ones(64);
  std::vector<double> x;
  const auto res = g::solve_tasks(a, b, x, 200, 1e-8, 1000);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(g::tasks_for_granularity(64, 1000), 1);
}

INSTANTIATE_TEST_SUITE_P(
    AllRuntimes, CgOmp,
    ::testing::Values(o::RuntimeKind::gnu, o::RuntimeKind::intel,
                      o::RuntimeKind::glto_abt, o::RuntimeKind::glto_qth,
                      o::RuntimeKind::glto_mth),
    [](const ::testing::TestParamInfo<o::RuntimeKind>& info) {
      std::string n = o::kind_name(info.param);
      for (auto& ch : n) {
        if (ch == '-') ch = '_';
      }
      return n;
    });
