// Extended workload features: binomial UTS trees, Jacobi-preconditioned
// CG, variable-diagonal matrices, and the qth sinc primitive.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "apps/cg.hpp"
#include "apps/uts.hpp"
#include "omp/omp.hpp"
#include "qth/qth.hpp"

namespace u = glto::apps::uts;
namespace g = glto::apps::cg;
namespace o = glto::omp;
namespace q = glto::qth;

namespace {

u::Params bin_tree() {
  u::Params p;
  p.kind = u::TreeKind::binomial;
  p.root_seed = 77;
  p.bin_m = 6;
  p.bin_q = 0.12;  // subcritical: 0.72 expected children
  return p;
}

}  // namespace

TEST(UtsBinomial, Deterministic) {
  const auto a = u::search_sequential(bin_tree());
  const auto b = u::search_sequential(bin_tree());
  EXPECT_EQ(a, b);
  EXPECT_GE(a.nodes, 7u) << "root always has bin_m children";
}

TEST(UtsBinomial, RootAlwaysInterior) {
  auto p = bin_tree();
  p.bin_q = 0.0;  // all non-root nodes are leaves
  const auto r = u::search_sequential(p);
  EXPECT_EQ(r.nodes, 1u + static_cast<std::uint64_t>(p.bin_m));
  EXPECT_EQ(r.leaves, static_cast<std::uint64_t>(p.bin_m));
  EXPECT_EQ(r.max_depth, 1);
}

TEST(UtsBinomial, HigherQGrowsTree) {
  auto lo = bin_tree();
  auto hi = bin_tree();
  lo.bin_q = 0.05;
  hi.bin_q = 0.15;
  EXPECT_LE(u::search_sequential(lo).nodes, u::search_sequential(hi).nodes);
}

TEST(UtsBinomial, ParallelMatchesSequentialOnAllRuntimes) {
  const auto p = bin_tree();
  const auto seq = u::search_sequential(p);
  for (auto kind : o::all_kinds()) {
    o::SelectOptions opts;
    opts.num_threads = 3;
    opts.bind_threads = false;
    o::select(kind, opts);
    EXPECT_EQ(u::search_omp(p), seq) << o::kind_name(kind);
    o::shutdown();
  }
}

TEST(UtsBinomial, NativePortsMatch) {
  const auto p = bin_tree();
  const auto seq = u::search_sequential(p);
  EXPECT_EQ(u::search_pthreads(p, 2), seq);
  EXPECT_EQ(u::search_abt_native(p, 2), seq);
  EXPECT_EQ(u::search_qth_native(p, 2), seq);
  EXPECT_EQ(u::search_mth_native(p, 2), seq);
}

TEST(CgVariableDiag, DiagonalVaries) {
  const auto a = g::make_spd_variable_diag(10);
  std::vector<double> diag(10, 0.0);
  for (int i = 0; i < 10; ++i) {
    for (int k = a.rowptr[static_cast<std::size_t>(i)];
         k < a.rowptr[static_cast<std::size_t>(i) + 1]; ++k) {
      if (a.col[static_cast<std::size_t>(k)] == i) {
        diag[static_cast<std::size_t>(i)] =
            a.val[static_cast<std::size_t>(k)];
      }
    }
  }
  EXPECT_DOUBLE_EQ(diag[0], 4.5);
  EXPECT_DOUBLE_EQ(diag[3], 6.0);
  EXPECT_NE(diag[0], diag[1]);
}

TEST(CgJacobi, SolvesToTolerance) {
  o::SelectOptions opts;
  opts.num_threads = 3;
  opts.bind_threads = false;
  o::select(o::RuntimeKind::glto_abt, opts);
  const auto a = g::make_spd_variable_diag(400);
  const std::vector<double> b(400, 1.0);
  std::vector<double> x;
  const auto res = g::solve_tasks_jacobi(a, b, x, 400, 1e-8, 25);
  EXPECT_TRUE(res.converged);
  // Verify against a direct residual computation.
  std::vector<double> ax(400, 0.0);
  g::spmv_seq(a, x, ax);
  double rr = 0.0;
  for (int i = 0; i < 400; ++i) {
    const double d = b[static_cast<std::size_t>(i)] -
                     ax[static_cast<std::size_t>(i)];
    rr += d * d;
  }
  EXPECT_LT(std::sqrt(rr), 1e-5);
  o::shutdown();
}

TEST(CgJacobi, PreconditioningHelpsOnVariableDiag) {
  o::SelectOptions opts;
  opts.num_threads = 2;
  opts.bind_threads = false;
  o::select(o::RuntimeKind::glto_abt, opts);
  const auto a = g::make_spd_variable_diag(600);
  const std::vector<double> b(600, 1.0);
  std::vector<double> x_plain, x_pcg;
  const auto plain = g::solve_tasks(a, b, x_plain, 600, 1e-9, 50);
  const auto pcg = g::solve_tasks_jacobi(a, b, x_pcg, 600, 1e-9, 50);
  EXPECT_TRUE(plain.converged);
  EXPECT_TRUE(pcg.converged);
  EXPECT_LE(pcg.iterations, plain.iterations)
      << "Jacobi must not hurt on a variable diagonal";
  o::shutdown();
}

TEST(QthSinc, ZeroExpectIsImmediatelyComplete) {
  q::Config cfg;
  cfg.num_shepherds = 1;
  cfg.bind_threads = false;
  q::init(cfg);
  auto* s = q::sinc_create(0);
  q::sinc_wait(s);  // must not block
  q::sinc_destroy(s);
  q::finalize();
}

TEST(QthSinc, WaitBlocksUntilAllSubmissions) {
  q::Config cfg;
  cfg.num_shepherds = 2;
  cfg.bind_threads = false;
  q::init(cfg);
  constexpr int kN = 50;
  static q::Sinc* sinc;
  static std::atomic<int> submitted;
  sinc = q::sinc_create(kN);
  submitted = 0;
  std::vector<q::aligned_t> rets(kN, 0);
  for (int i = 0; i < kN; ++i) {
    q::fork(
        [](void*) -> q::aligned_t {
          submitted.fetch_add(1);
          q::sinc_submit(sinc);
          return 0;
        },
        nullptr, &rets[static_cast<std::size_t>(i)]);
  }
  q::sinc_wait(sinc);
  EXPECT_EQ(submitted.load(), kN)
      << "wait returned before all submissions";
  q::aligned_t drain = 0;
  for (auto& r : rets) q::readFF(&drain, &r);
  q::sinc_destroy(sinc);
  q::finalize();
}

TEST(QthSinc, FanInFromManyShepherds) {
  q::Config cfg;
  cfg.num_shepherds = 3;
  cfg.bind_threads = false;
  q::init(cfg);
  constexpr int kPerShep = 20;
  static q::Sinc* sinc;
  sinc = q::sinc_create(3 * kPerShep);
  std::vector<q::aligned_t> rets(3 * kPerShep, 0);
  int idx = 0;
  for (int shep = 0; shep < 3; ++shep) {
    for (int i = 0; i < kPerShep; ++i) {
      q::fork_to(
          shep,
          [](void*) -> q::aligned_t {
            q::sinc_submit(sinc);
            return 0;
          },
          nullptr, &rets[static_cast<std::size_t>(idx++)]);
    }
  }
  q::sinc_wait(sinc);
  q::aligned_t drain = 0;
  for (auto& r : rets) q::readFF(&drain, &r);
  q::sinc_destroy(sinc);
  q::finalize();
  SUCCEED();
}
