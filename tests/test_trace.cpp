// Observability-layer tests: trace rings (overwrite-oldest, re-registration,
// concurrent emit from migrating ULTs), the Chrome trace-event exporter,
// latency-histogram percentile math, and the unified metrics registry.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "glt/glt.hpp"
#include "sched/metrics.hpp"
#include "sched/trace.hpp"

namespace gs = glto::sched;
namespace gg = glto::glt;

namespace {

/// Minimal recursive-descent JSON syntax checker — enough to prove the
/// exporter writes well-formed JSON without pulling in a parser dependency
/// (CI additionally round-trips the file through python's json module).
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : p_(s.data()), end_(s.data() + s.size()) {}

  bool valid() {
    ws();
    if (!value()) return false;
    ws();
    return p_ == end_;
  }

 private:
  const char* p_;
  const char* end_;

  void ws() {
    while (p_ < end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) ++p_;
  }
  bool lit(const char* s) {
    const std::size_t n = std::strlen(s);
    if (static_cast<std::size_t>(end_ - p_) < n || std::strncmp(p_, s, n) != 0) return false;
    p_ += n;
    return true;
  }
  bool string() {
    if (p_ >= end_ || *p_ != '"') return false;
    ++p_;
    while (p_ < end_ && *p_ != '"') {
      if (*p_ == '\\') ++p_;
      ++p_;
    }
    if (p_ >= end_) return false;
    ++p_;  // closing quote
    return true;
  }
  bool number() {
    const char* start = p_;
    if (p_ < end_ && *p_ == '-') ++p_;
    while (p_ < end_ && (std::isdigit(static_cast<unsigned char>(*p_)) || *p_ == '.' ||
                         *p_ == 'e' || *p_ == 'E' || *p_ == '+' || *p_ == '-')) {
      ++p_;
    }
    return p_ > start;
  }
  bool value() {
    if (p_ >= end_) return false;
    switch (*p_) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return lit("true");
      case 'f': return lit("false");
      case 'n': return lit("null");
      default: return number();
    }
  }
  bool object() {
    ++p_;  // '{'
    ws();
    if (p_ < end_ && *p_ == '}') { ++p_; return true; }
    for (;;) {
      ws();
      if (!string()) return false;
      ws();
      if (p_ >= end_ || *p_ != ':') return false;
      ++p_;
      ws();
      if (!value()) return false;
      ws();
      if (p_ < end_ && *p_ == ',') { ++p_; continue; }
      break;
    }
    if (p_ >= end_ || *p_ != '}') return false;
    ++p_;
    return true;
  }
  bool array() {
    ++p_;  // '['
    ws();
    if (p_ < end_ && *p_ == ']') { ++p_; return true; }
    for (;;) {
      ws();
      if (!value()) return false;
      ws();
      if (p_ < end_ && *p_ == ',') { ++p_; continue; }
      break;
    }
    if (p_ >= end_ || *p_ != ']') return false;
    ++p_;
    return true;
  }
};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::size_t count_occurrences(const std::string& hay, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

/// Every trace test starts from a clean, disarmed global registry and
/// leaves it that way: the suite shares one process with backend tests.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { gs::trace_reset_for_testing(); }
  void TearDown() override {
    gs::trace_set_for_testing(false, nullptr, 0);
    gs::metrics_set_for_testing(false);
    gs::trace_reset_for_testing();
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// TraceRing unit

TEST(TraceRing, OverwriteOldestKeepsNewestWindow) {
  gs::TraceRing ring(8);
  for (std::uint64_t i = 0; i < 20; ++i) {
    ring.emit(gs::TraceKind::wake, /*ts_ns=*/i, /*arg=*/i * 10,
              /*aux=*/static_cast<std::uint32_t>(i));
  }
  EXPECT_EQ(ring.head(), 20u);
  EXPECT_EQ(ring.capacity(), 8u);
  // The retained window is exactly the last `capacity` emits, in order.
  for (std::uint64_t i = 12; i < 20; ++i) {
    const gs::TraceEvent& e = ring.at(i);
    EXPECT_EQ(e.ts_ns, i);
    EXPECT_EQ(e.arg, i * 10);
    EXPECT_EQ(e.aux, i);
    EXPECT_EQ(e.kind, static_cast<std::uint16_t>(gs::TraceKind::wake));
  }
}

TEST(TraceRing, HeadStaysMonotonicAcrossWrap) {
  gs::TraceRing ring(16);
  for (int round = 0; round < 5; ++round) {
    for (std::uint64_t i = 0; i < 16; ++i) ring.emit(gs::TraceKind::park, i, i, 0);
  }
  EXPECT_EQ(ring.head(), 80u);
}

// ---------------------------------------------------------------------------
// Global emit path

TEST_F(TraceTest, GlobalPathCountsRecordedAndDropped) {
  gs::trace_set_for_testing(true, nullptr, /*ring_events=*/16);
  for (std::uint64_t i = 0; i < 40; ++i) {
    gs::trace_emit(gs::TraceKind::steal_success, i);
  }
  const gs::TraceRing* ring = gs::trace_current_ring();
  ASSERT_NE(ring, nullptr);
  EXPECT_EQ(ring->head(), 40u);
  EXPECT_EQ(ring->capacity(), 16u);
  EXPECT_GE(gs::trace_events_recorded(), 40u);
  EXPECT_GE(gs::trace_events_dropped(), 24u);
  // Overwrite-oldest through the global path too: the window holds the
  // last 16 args.
  for (std::uint64_t i = 24; i < 40; ++i) EXPECT_EQ(ring->at(i).arg, i);
}

TEST_F(TraceTest, EmitWhileDisarmedRecordsNothing) {
  gs::trace_set_for_testing(false, nullptr, 16);
  gs::trace_emit(gs::TraceKind::wake, 1);
  EXPECT_EQ(gs::trace_current_ring(), nullptr);
  EXPECT_EQ(gs::trace_events_recorded(), 0u);
}

TEST_F(TraceTest, ThreadReregistersAfterReset) {
  gs::trace_set_for_testing(true, nullptr, 64);
  gs::trace_emit(gs::TraceKind::wake, 1);
  const gs::TraceRing* before = gs::trace_current_ring();
  ASSERT_NE(before, nullptr);

  gs::trace_reset_for_testing();
  EXPECT_EQ(gs::trace_current_ring(), nullptr);  // this thread's slot cleared
  gs::trace_set_for_testing(true, nullptr, 64);
  // A stale thread_local pointer must re-register, not dangle. (No pointer
  // comparison against `before`: the freed ring's storage may be reused.)
  gs::trace_emit(gs::TraceKind::wake, 2);
  const gs::TraceRing* after = gs::trace_current_ring();
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->head(), 1u);
  EXPECT_EQ(gs::trace_events_recorded(), 1u);  // old ring's count discarded
  (void)before;
}

// ---------------------------------------------------------------------------
// Exporter

TEST_F(TraceTest, ExporterWritesParseableChromeJson) {
  const std::string path = "trace_test_export.json";
  gs::trace_set_for_testing(true, path.c_str(), 256);
  gs::trace_thread_label("test", 7);

  gs::trace_emit(gs::TraceKind::task_submit, 42, 1);
  gs::trace_emit(gs::TraceKind::task_start, 42);
  gs::trace_emit(gs::TraceKind::task_complete, 42, /*service us=*/5);
  gs::trace_emit(gs::TraceKind::park, 0, 200);
  gs::trace_emit(gs::TraceKind::unpark, 0, 1);
  gs::trace_emit(gs::TraceKind::steal_success, 2);
  gs::trace_emit(gs::TraceKind::chaos_fault, 0, 3);

  ASSERT_TRUE(gs::trace_flush());
  const std::string json = slurp(path);
  ASSERT_FALSE(json.empty());
  EXPECT_TRUE(JsonChecker(json).valid()) << json;

  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"test-w7\""), std::string::npos);       // track label
  EXPECT_NE(json.find("\"task_submit\""), std::string::npos);   // instant
  EXPECT_NE(json.find("\"steal_success\""), std::string::npos);
  // park/unpark fuse into one "X" slice named park; task_complete renders
  // as an "X" slice named task carrying its service time as dur.
  EXPECT_NE(json.find("\"name\":\"park\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"task\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(TraceTest, FlushWithoutPathReportsFailure) {
  gs::trace_set_for_testing(true, nullptr, 64);
  gs::trace_emit(gs::TraceKind::wake, 1);
  EXPECT_FALSE(gs::trace_flush());
}

TEST_F(TraceTest, DumpTailPrintsNewestEvents) {
  gs::trace_set_for_testing(true, nullptr, 32);
  for (std::uint64_t i = 0; i < 10; ++i) gs::trace_emit(gs::TraceKind::wake, i);
  const std::string path = "trace_test_tail.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  gs::trace_dump_tail(f, 4);
  std::fclose(f);
  const std::string out = slurp(path);
  EXPECT_NE(out.find("last 4 of 10"), std::string::npos) << out;
  EXPECT_EQ(count_occurrences(out, "wake"), 4u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Latency histogram math

TEST(LatencyHistogram, SmallValuesAreExact) {
  gs::LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.record(5);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.max_ns(), 5u);
  EXPECT_EQ(h.percentile_ns(50), 5u);
  EXPECT_EQ(h.percentile_ns(99), 5u);
}

TEST(LatencyHistogram, PercentilesConservativeWithinOctaveError) {
  gs::LatencyHistogram h;
  // 1µs .. 1ms uniform: true p50 = 500µs, p99 = 990µs.
  for (std::uint64_t i = 1; i <= 1000; ++i) h.record(i * 1000);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.max_ns(), 1000000u);

  const double p50 = static_cast<double>(h.percentile_ns(50));
  const double p99 = static_cast<double>(h.percentile_ns(99));
  // Estimates report bucket upper bounds: never below the true value,
  // never more than one sub-bucket (12.5%) above it.
  EXPECT_GE(p50, 500000.0);
  EXPECT_LE(p50, 500000.0 * 1.13);
  EXPECT_GE(p99, 990000.0);
  EXPECT_LE(p99, 990000.0 * 1.13);
  // p100 is the exact max, not a bucket bound.
  EXPECT_EQ(h.percentile_ns(100), 1000000u);
}

TEST(LatencyHistogram, HugeValuesClampWithoutCrashing) {
  gs::LatencyHistogram h;
  h.record(~std::uint64_t{0});  // way past the top octave
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.percentile_ns(100), ~std::uint64_t{0});
}

TEST(LatencyHistogram, ResetClears) {
  gs::LatencyHistogram h;
  h.record(123456);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max_ns(), 0u);
}

// ---------------------------------------------------------------------------
// Profile hooks feed the global histograms

TEST_F(TraceTest, ProfileHooksRecordQueueAndServiceTime) {
  gs::metrics_set_for_testing(true);
  const std::uint64_t q0 = gs::queue_delay_hist().count();
  const std::uint64_t s0 = gs::service_time_hist().count();
  const std::uint64_t submit = gs::profile_task_submit(1);
  ASSERT_NE(submit, 0u);
  const std::uint64_t start = gs::profile_task_start(submit, 1);
  ASSERT_NE(start, 0u);
  gs::profile_task_complete(start, 1);
  EXPECT_EQ(gs::queue_delay_hist().count(), q0 + 1);
  EXPECT_EQ(gs::service_time_hist().count(), s0 + 1);
}

TEST_F(TraceTest, ProfileHooksNoOpWhenOff) {
  gs::metrics_set_for_testing(false);
  EXPECT_EQ(gs::profile_task_submit(1), 0u);
  EXPECT_EQ(gs::profile_task_start(0, 1), 0u);  // 0 propagates as no-op
  gs::profile_task_complete(0, 1);              // must not record
}

// ---------------------------------------------------------------------------
// Metrics registry

namespace {

struct FakeSubsystem {
  std::atomic<std::uint64_t> ctr{0};
  std::atomic<std::uint64_t> gauge{0};
};

void fake_provider(void* arg, gs::MetricsSnapshot& out) {
  auto* s = static_cast<FakeSubsystem*>(arg);
  out.add("test.ctr", s->ctr.load());
  out.add("test.gauge", s->gauge.load(), /*counter=*/false);
}

}  // namespace

TEST(Metrics, SnapshotDeltaAndClamp) {
  FakeSubsystem sub;
  const std::uint64_t token = gs::metrics_register_provider(fake_provider, &sub);

  sub.ctr = 10;
  sub.gauge = 42;
  gs::MetricsSnapshot base;
  gs::MetricsSnapshot d = gs::metrics_delta_since(base);
  EXPECT_EQ(d.value("test.ctr"), 10u);   // first delta = totals
  EXPECT_EQ(d.value("test.gauge"), 42u); // gauges pass through

  sub.ctr = 17;
  sub.gauge = 5;
  d = gs::metrics_delta_since(base);
  EXPECT_EQ(d.value("test.ctr"), 7u);
  EXPECT_EQ(d.value("test.gauge"), 5u);

  // A counter that goes backwards (runtime re-init) clamps to 0 instead of
  // wrapping to 2^64-ish garbage.
  sub.ctr = 2;
  d = gs::metrics_delta_since(base);
  EXPECT_EQ(d.value("test.ctr"), 0u);

  gs::metrics_unregister_provider(token);
  EXPECT_FALSE(gs::metrics_snapshot().has("test.ctr"));
}

TEST(Metrics, SameNamedCountersMergeAdd) {
  FakeSubsystem a, b;
  a.ctr = 3;
  b.ctr = 4;
  const std::uint64_t ta = gs::metrics_register_provider(fake_provider, &a);
  const std::uint64_t tb = gs::metrics_register_provider(fake_provider, &b);
  // Two providers reporting under one name (several DepEngines) accumulate.
  EXPECT_EQ(gs::metrics_snapshot().value("test.ctr"), 7u);
  gs::metrics_unregister_provider(ta);
  gs::metrics_unregister_provider(tb);
}

TEST(Metrics, BuiltinEntriesAlwaysPresent) {
  const gs::MetricsSnapshot s = gs::metrics_snapshot();
  EXPECT_TRUE(s.has("lat.queue_count"));
  EXPECT_TRUE(s.has("lat.service_p95_ns"));
  EXPECT_TRUE(s.has("trace.events_recorded"));
  EXPECT_TRUE(s.has("chaos.faults_injected"));
}

TEST(Metrics, DumpWritesOneLinePerEntry) {
  const std::string path = "metrics_test_dump.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  gs::metrics_dump(f);
  std::fclose(f);
  const std::string out = slurp(path);
  EXPECT_NE(out.find("lat.queue_count"), std::string::npos);
  EXPECT_NE(out.find("(gauge)"), std::string::npos);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Backend integration: metrics + concurrent emit from migrating ULTs,
// identical across the three GLT backends.

class TraceBackend : public ::testing::TestWithParam<gg::Impl> {
 protected:
  void TearDown() override {
    if (gg::initialized()) gg::finalize();
    gs::trace_set_for_testing(false, nullptr, 0);
    gs::metrics_set_for_testing(false);
    gs::trace_reset_for_testing();
  }

  void init_backend() {
    gg::Config cfg;
    cfg.impl = GetParam();
    cfg.num_threads = 3;
    cfg.bind_threads = false;
    gg::init(cfg);
  }
};

TEST_P(TraceBackend, MetricsSnapshotSeesBackendProvider) {
  init_backend();
  constexpr int kN = 50;
  std::atomic<int> count{0};
  std::vector<gg::Ult*> us;
  us.reserve(kN);
  for (int i = 0; i < kN; ++i) {
    us.push_back(gg::ult_create(
        [](void* p) { static_cast<std::atomic<int>*>(p)->fetch_add(1); },
        &count));
  }
  for (auto* u : us) gg::ult_join(u);
  ASSERT_EQ(count.load(), kN);

  const gs::MetricsSnapshot s = gs::metrics_snapshot();
  // The glt provider publishes the shared-scheduler block plus its own
  // counters; after all joins the creation counter is stable and must
  // agree exactly with glt::stats() (the field-by-field copy it replaced).
  EXPECT_TRUE(s.has("sched.steals"));
  EXPECT_TRUE(s.has("sched.parks"));
  EXPECT_TRUE(s.has("sched.wakes_spurious"));
  EXPECT_EQ(s.value("glt.ults_created"), gg::stats().ults_created);
  EXPECT_GE(s.value("glt.ults_created"), static_cast<std::uint64_t>(kN));
}

TEST_P(TraceBackend, ConcurrentEmitFromMigratingUlts) {
  // Arm record-only tracing with rings big enough that nothing drops, then
  // emit from ULTs that yield mid-flight: a ULT resumed on a different OS
  // thread must land its event in THAT thread's ring (the tls_now idiom —
  // the ring is re-resolved inside emit_slow, never cached across a
  // suspension point).
  gs::trace_set_for_testing(true, nullptr, 1u << 15);
  init_backend();

  constexpr int kN = 200;
  std::atomic<int> count{0};
  std::vector<gg::Ult*> us;
  us.reserve(kN);
  for (int i = 0; i < kN; ++i) {
    us.push_back(gg::ult_create(
        [](void* p) {
          gs::trace_emit(gs::TraceKind::cancel, 1);  // pre-switch
          gg::yield();
          gs::trace_emit(gs::TraceKind::cancel, 2);  // possibly migrated
          static_cast<std::atomic<int>*>(p)->fetch_add(1);
        },
        &count));
  }
  for (auto* u : us) gg::ult_join(u);
  ASSERT_EQ(count.load(), kN);
  gg::finalize();

  // Count conservation: every emit landed in some ring. No other source
  // emits `cancel` here, and the rings are far from wrapping.
  EXPECT_EQ(gs::trace_events_dropped(), 0u);
  const std::string path = "trace_test_migrate.json";
  ASSERT_TRUE(gs::trace_flush(path.c_str()));
  const std::string json = slurp(path);
  EXPECT_TRUE(JsonChecker(json).valid());
  EXPECT_EQ(count_occurrences(json, "\"name\":\"cancel\""),
            static_cast<std::size_t>(2 * kN));
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(AllBackends, TraceBackend,
                         ::testing::Values(gg::Impl::abt, gg::Impl::qth,
                                           gg::Impl::mth),
                         [](const auto& info) {
                           return std::string(gg::impl_name(info.param));
                         });
