// ULT-native synchronization conformance, parameterized over the three
// backends (abt, qth, mth — every test runs 3×).
//
// The contract under test (src/sched/sync.hpp): a waiter on any sched::
// primitive truly suspends — its continuation parks on the primitive's
// wait list and the signaller re-deposits it through the core's
// targeted-wake path — and no wakeup is ever lost regardless of how the
// set/wait (or unlock/lock, notify/wait, send/recv) race resolves. The
// foreign-thread path is covered too: the gtest main thread is not a ULT,
// so every wait issued from the test body itself exercises the parker
// fallback. The suite is chaos-compatible by design (no gated-task
// handshakes), so the chaos CI leg runs it under ambient $GLTO_CHAOS
// as-is.
//
// Host is often 1 core: no test asserts timing, parallel overlap, or
// steal counts — only results.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

#include "apps/qpserver.hpp"
#include "common/time.hpp"
#include "glt/glt.hpp"
#include "omp/omp.hpp"
#include "sched/sync.hpp"

namespace gg = glto::glt;
namespace o = glto::omp;
namespace s = glto::sched;

namespace {
// Work sizes referenced from captureless ULT bodies (local classes cannot
// carry static members).
constexpr int kCondItems = 400;
constexpr int kPerProducer = 150;
constexpr int kBarrierRounds = 50;
constexpr int kBarrierParties = 3;
}  // namespace

class SyncBackend : public ::testing::TestWithParam<gg::Impl> {
 protected:
  void SetUp() override {
    gg::Config cfg;
    cfg.impl = GetParam();
    cfg.num_threads = 3;
    cfg.bind_threads = false;
    gg::init(cfg);
  }
  void TearDown() override { gg::finalize(); }
};

TEST_P(SyncBackend, MutexMutualExclusion) {
  // A non-atomic counter stays exact only if the lock excludes: any torn
  // increment loses updates.
  struct Ctx {
    gg::mutex m;
    long counter = 0;
  } ctx;
  constexpr int kUlts = 24;
  constexpr int kIncs = 200;
  std::vector<gg::Ult*> us;
  us.reserve(kUlts);
  for (int i = 0; i < kUlts; ++i) {
    us.push_back(gg::ult_create(
        [](void* p) {
          auto* c = static_cast<Ctx*>(p);
          for (int k = 0; k < kIncs; ++k) {
            c->m.lock();
            ++c->counter;
            if ((k & 15) == 0) gg::yield();  // widen the critical section
            c->m.unlock();
          }
        },
        &ctx));
  }
  for (auto* u : us) gg::ult_join(u);
  EXPECT_EQ(ctx.counter, static_cast<long>(kUlts) * kIncs);
}

TEST_P(SyncBackend, MutexFifoHandoffNoBarging) {
  // Waiters that demonstrably parked (suspensions counter advanced) must
  // acquire in arrival order: unlock hands the lock to the head waiter
  // directly, it is never reopened for barging.
  struct Ctx {
    gg::mutex m;
    std::atomic<int> next_id{0};
    std::vector<int> order;  // guarded by m
  } ctx;
  constexpr int kWaiters = 6;
  ctx.m.lock();  // foreign main holds; all waiters must queue
  std::vector<gg::Ult*> us;
  us.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    const std::uint64_t parked_before = s::suspensions();
    us.push_back(gg::ult_create(
        [](void* p) {
          auto* c = static_cast<Ctx*>(p);
          const int id = c->next_id.fetch_add(1);  // claim before blocking
          c->m.lock();
          c->order.push_back(id);
          c->m.unlock();
        },
        &ctx));
    // Drive the scheduler until this waiter has actually parked on the
    // mutex, so enqueue order is the creation order. (mth runs the child
    // work-first, so it usually parked before ult_create returned.)
    while (s::suspensions() == parked_before) gg::yield();
  }
  ctx.m.unlock();  // head waiter receives the lock; chain drains FIFO
  for (auto* u : us) gg::ult_join(u);
  ASSERT_EQ(ctx.order.size(), static_cast<std::size_t>(kWaiters));
  for (int i = 0; i < kWaiters; ++i) EXPECT_EQ(ctx.order[i], i) << "i=" << i;
}

TEST_P(SyncBackend, EventNoLostWakeupRounds) {
  // set() and wait() race freely round after round; whichever side wins,
  // the waiter must always come back. A lost wakeup hangs the join.
  struct Ctx {
    gg::event ev;
    std::atomic<int> done{0};
  } ctx;
  constexpr int kRounds = 100;
  for (int r = 0; r < kRounds; ++r) {
    auto* u = gg::ult_create(
        [](void* p) {
          auto* c = static_cast<Ctx*>(p);
          c->ev.wait();
          c->done.fetch_add(1);
        },
        &ctx);
    if ((r & 1) != 0) gg::yield();  // alternate which side reaches the race first
    ctx.ev.set();
    gg::ult_join(u);
    EXPECT_EQ(ctx.done.load(), r + 1);
    ctx.ev.reset();
  }
}

TEST_P(SyncBackend, EventWaitFromForeignThread) {
  // The gtest main thread is not a ULT: wait() takes the parker-fallback
  // path while a ULT signals.
  gg::event ev;
  auto* u = gg::ult_create(
      [](void* p) { static_cast<gg::event*>(p)->set(); }, &ev);
  ev.wait();
  EXPECT_TRUE(ev.is_set());
  gg::ult_join(u);
}

TEST_P(SyncBackend, EventStackGateDestroyOnObserve) {
  // The ReadyGate pattern: the Event lives on the waiter's stack and dies
  // the instant the waiter observes it set. Both sanctioned observations
  // — wait() and an is_set_locked() poll — serialize past the setter's
  // last access to the Event, so the racing set() never touches a dead
  // frame (the ASan job instruments ULT stacks and trips on regression).
  struct Ctx {
    std::atomic<gg::event*> ev{nullptr};
    std::atomic<bool> use_poll{false};
  } ctx;
  constexpr int kRounds = 200;
  for (int r = 0; r < kRounds; ++r) {
    ctx.use_poll.store((r & 1) != 0);
    auto* waiter = gg::ult_create(
        [](void* p) {
          auto* c = static_cast<Ctx*>(p);
          gg::event gate;  // dies with this frame
          c->ev.store(&gate, std::memory_order_release);
          if (c->use_poll.load(std::memory_order_relaxed)) {
            while (!gate.is_set_locked()) gg::yield();
          } else {
            gate.wait();
          }
        },
        &ctx);
    gg::event* gate;
    while ((gate = ctx.ev.load(std::memory_order_acquire)) == nullptr)
      gg::yield();
    gate->set();  // foreign-thread setter racing the waiter's frame death
    gg::ult_join(waiter);
    ctx.ev.store(nullptr);
  }
}

TEST_P(SyncBackend, CondvarPredicateLoops) {
  // Classic bounded-buffer handoff through mutex+condvar. Both sides use
  // spurious-safe while-predicate loops; notify_one with one producer and
  // one consumer must never deadlock.
  struct Ctx {
    gg::mutex m;
    gg::cond cv;
    int value = -1;     // -1 = empty slot
    long sum = 0;
  } ctx;
  auto* producer = gg::ult_create(
      [](void* p) {
        auto* c = static_cast<Ctx*>(p);
        for (int i = 0; i < kCondItems; ++i) {
          c->m.lock();
          while (c->value != -1) c->cv.wait(c->m);
          c->value = i;
          c->cv.notify_one();
          c->m.unlock();
        }
      },
      &ctx);
  auto* consumer = gg::ult_create(
      [](void* p) {
        auto* c = static_cast<Ctx*>(p);
        for (int i = 0; i < kCondItems; ++i) {
          c->m.lock();
          while (c->value == -1) c->cv.wait(c->m);
          c->sum += c->value;
          c->value = -1;
          c->cv.notify_one();
          c->m.unlock();
        }
      },
      &ctx);
  gg::ult_join(producer);
  gg::ult_join(consumer);
  EXPECT_EQ(ctx.sum, static_cast<long>(kCondItems) * (kCondItems - 1) / 2);
}

TEST_P(SyncBackend, CondvarNotifyAllReleasesEveryWaiter) {
  struct Ctx {
    gg::mutex m;
    gg::cond cv;
    bool open = false;
    std::atomic<int> released{0};
  } ctx;
  constexpr int kWaiters = 8;
  std::vector<gg::Ult*> us;
  us.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    us.push_back(gg::ult_create(
        [](void* p) {
          auto* c = static_cast<Ctx*>(p);
          c->m.lock();
          while (!c->open) c->cv.wait(c->m);
          c->m.unlock();
          c->released.fetch_add(1);
        },
        &ctx));
  }
  ctx.m.lock();
  ctx.open = true;
  ctx.cv.notify_all();
  ctx.m.unlock();
  for (auto* u : us) gg::ult_join(u);
  EXPECT_EQ(ctx.released.load(), kWaiters);
}

TEST_P(SyncBackend, ChannelTransfersEveryItemMpmc) {
  // 3 producers × 3 consumers over a capacity-4 channel: every item sent
  // once, received once; backpressure suspends producers at the bound.
  struct Ctx {
    gg::channel<int> ch{4};
    std::atomic<long> sum{0};
    std::atomic<int> received{0};
  } ctx;
  constexpr int kProd = 3, kCons = 3;
  std::vector<gg::Ult*> us;
  for (int p = 0; p < kProd; ++p) {
    us.push_back(gg::ult_create(
        [](void* q) {
          auto* c = static_cast<Ctx*>(q);
          for (int i = 0; i < kPerProducer; ++i)
            ASSERT_TRUE(c->ch.send(i));
        },
        &ctx));
  }
  for (int k = 0; k < kCons; ++k) {
    us.push_back(gg::ult_create(
        [](void* q) {
          auto* c = static_cast<Ctx*>(q);
          int v = 0;
          while (c->ch.recv(v)) {
            c->sum.fetch_add(v);
            c->received.fetch_add(1);
          }
        },
        &ctx));
  }
  // Close once all sends finished: producers are the first kProd handles.
  for (int p = 0; p < kProd; ++p) gg::ult_join(us[static_cast<std::size_t>(p)]);
  ctx.ch.close();
  for (std::size_t i = kProd; i < us.size(); ++i) gg::ult_join(us[i]);
  EXPECT_EQ(ctx.received.load(), kProd * kPerProducer);
  EXPECT_EQ(ctx.sum.load(),
            static_cast<long>(kProd) * kPerProducer *
                (kPerProducer - 1) / 2);
}

TEST_P(SyncBackend, ChannelCloseSemantics) {
  // After close(): send refuses, recv drains what is buffered then
  // reports closed. try_* agree.
  gg::channel<int> ch{8};
  EXPECT_TRUE(ch.send(1));
  EXPECT_TRUE(ch.send(2));
  ch.close();
  EXPECT_TRUE(ch.closed());
  EXPECT_FALSE(ch.send(3)) << "send after close must fail";
  EXPECT_FALSE(ch.try_send(3));
  int v = 0;
  EXPECT_TRUE(ch.recv(v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(ch.try_recv(v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(ch.recv(v)) << "drained + closed: recv must not block";
  EXPECT_FALSE(ch.try_recv(v));
}

TEST_P(SyncBackend, ChannelCloseWakesBlockedReceivers) {
  // Receivers blocked on an empty channel must all come back with false
  // when the producer closes without sending.
  struct Ctx {
    gg::channel<int> ch{2};
    std::atomic<int> woke_empty{0};
  } ctx;
  constexpr int kRecv = 4;
  std::vector<gg::Ult*> us;
  for (int i = 0; i < kRecv; ++i) {
    us.push_back(gg::ult_create(
        [](void* p) {
          auto* c = static_cast<Ctx*>(p);
          int v = 0;
          if (!c->ch.recv(v)) c->woke_empty.fetch_add(1);
        },
        &ctx));
  }
  ctx.ch.close();
  for (auto* u : us) gg::ult_join(u);
  EXPECT_EQ(ctx.woke_empty.load(), kRecv);
}

TEST_P(SyncBackend, CompletionLatchCountsToZero) {
  struct Ctx {
    gg::latch l;
    std::atomic<int> ran{0};
  } ctx;
  constexpr int kN = 16;
  ctx.l.add(kN);
  EXPECT_FALSE(ctx.l.try_wait());
  std::vector<gg::Ult*> us;
  for (int i = 0; i < kN; ++i) {
    us.push_back(gg::ult_create(
        [](void* p) {
          auto* c = static_cast<Ctx*>(p);
          c->ran.fetch_add(1);
          c->l.count_down();
        },
        &ctx));
  }
  ctx.l.wait();  // foreign main blocks until all counted down
  EXPECT_EQ(ctx.ran.load(), kN);
  EXPECT_TRUE(ctx.l.try_wait());
  for (auto* u : us) gg::ult_join(u);
}

TEST_P(SyncBackend, BarrierSerialReturnOncePerRound) {
  // arrive_and_wait returns true for exactly one party per round (the
  // "serial member"), and no party can enter round r+1 before every party
  // left round r.
  struct Ctx {
    gg::barrier b;
    std::atomic<int> serial_returns{0};
    std::atomic<int> arrivals{0};
  } ctx;
  ctx.b.init(kBarrierParties);
  std::vector<gg::Ult*> us;
  for (int i = 0; i < kBarrierParties; ++i) {
    us.push_back(gg::ult_create(
        [](void* p) {
          auto* c = static_cast<Ctx*>(p);
          for (int r = 0; r < kBarrierRounds; ++r) {
            c->arrivals.fetch_add(1);
            if (c->b.arrive_and_wait()) c->serial_returns.fetch_add(1);
            // Everyone from round r must have arrived by the time anyone
            // proceeds past it.
            EXPECT_GE(c->arrivals.load(), (r + 1) * kBarrierParties);
          }
        },
        &ctx));
  }
  for (auto* u : us) gg::ult_join(u);
  EXPECT_EQ(ctx.serial_returns.load(), kBarrierRounds);
}

TEST_P(SyncBackend, WaitUntilDeadlineAndSuccess) {
  // sched::wait_until is the one timed-wait engine (future::wait_for,
  // taskwait_for, taskgroup_with_deadline all route here). A predicate
  // that never fires returns false once the deadline passes; one that
  // fires returns true early.
  const std::int64_t start = glto::common::now_ns();
  EXPECT_FALSE(s::wait_until([] { return false; }, start + 2'000'000));
  EXPECT_GE(glto::common::now_ns(), start + 2'000'000);

  struct Ctx {
    std::atomic<bool> flag{false};
  } ctx;
  auto* u = gg::ult_create(
      [](void* p) { static_cast<Ctx*>(p)->flag.store(true); }, &ctx);
  EXPECT_TRUE(s::wait_until([&] { return ctx.flag.load(); },
                            glto::common::now_ns() + 10'000'000'000LL));
  gg::ult_join(u);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, SyncBackend,
                         ::testing::Values(gg::Impl::abt, gg::Impl::qth,
                                           gg::Impl::mth),
                         [](const ::testing::TestParamInfo<gg::Impl>& info) {
                           return gg::impl_name(info.param);
                         });

// ---- timed-wait regression at the omp facade -----------------------------

TEST(SyncTimed, FutureWaitForTimeoutKeepsHandleValid) {
  // The timeout contract the redesign must preserve: wait_for returning
  // timeout does NOT invalidate the handle — a later wait()/get() on the
  // same future still works once the task completes.
  o::SelectOptions opts;
  opts.num_threads = 2;
  opts.bind_threads = false;
  o::select(o::RuntimeKind::glto_abt, opts);
  {
    std::atomic<bool> release{false};
    int witnessed = 0;
    o::parallel(2, [&](int tid, int) {
      if (tid != 0) return;
      auto fut = o::task_ret([&] {
        while (!release.load(std::memory_order_acquire)) o::taskyield();
        return 41 + 1;
      });
      EXPECT_EQ(fut.wait_for(std::chrono::microseconds(500)),
                o::FutureStatus::timeout);
      release.store(true, std::memory_order_release);
      fut.wait();  // handle survived the timeout; Event path completes it
      witnessed = fut.get();
    });
    EXPECT_EQ(witnessed, 42);
  }
  o::shutdown();
}

// ---- qpserver smoke ------------------------------------------------------

TEST(QpServer, SmokeCompletesEveryRequest) {
  gg::Config gcfg;
  gcfg.impl = gg::Impl::abt;
  gcfg.num_threads = 2;
  gcfg.bind_threads = false;
  gg::init(gcfg);
  glto::apps::qpserver::Config cfg;
  cfg.requests = 64;
  cfg.concurrency = 4;
  cfg.queue_depth = 8;
  cfg.n = 16;
  cfg.tile = 8;
  cfg.rank = 2;
  auto rep = glto::apps::qpserver::run(cfg);
  EXPECT_EQ(rep.completed, 64u);
  EXPECT_GT(rep.throughput_rps, 0.0);
  EXPECT_LE(rep.p50_us, rep.max_us);
  EXPECT_LE(rep.p95_us, rep.max_us) << "percentiles are clamped to max";
  gg::finalize();
}
