// ULT-native synchronization conformance, parameterized over the three
// backends (abt, qth, mth — every test runs 3×).
//
// The contract under test (src/sched/sync.hpp): a waiter on any sched::
// primitive truly suspends — its continuation parks on the primitive's
// wait list and the signaller re-deposits it through the core's
// targeted-wake path — and no wakeup is ever lost regardless of how the
// set/wait (or unlock/lock, notify/wait, send/recv) race resolves. The
// foreign-thread path is covered too: the gtest main thread is not a ULT,
// so every wait issued from the test body itself exercises the parker
// fallback. The suite is chaos-compatible by design (no gated-task
// handshakes), so the chaos CI leg runs it under ambient $GLTO_CHAOS
// as-is.
//
// Host is often 1 core: no test asserts timing, parallel overlap, or
// steal counts — only results.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "apps/qpserver.hpp"
#include "common/time.hpp"
#include "glt/glt.hpp"
#include "omp/omp.hpp"
#include "sched/sync.hpp"

namespace gg = glto::glt;
namespace o = glto::omp;
namespace s = glto::sched;

namespace {
// Work sizes referenced from captureless ULT bodies (local classes cannot
// carry static members).
constexpr int kCondItems = 400;
constexpr int kPerProducer = 150;
constexpr int kBarrierRounds = 50;
constexpr int kBarrierParties = 3;
constexpr int kTimedRaceRounds = 60;
}  // namespace

class SyncBackend : public ::testing::TestWithParam<gg::Impl> {
 protected:
  void SetUp() override {
    gg::Config cfg;
    cfg.impl = GetParam();
    cfg.num_threads = 3;
    cfg.bind_threads = false;
    gg::init(cfg);
  }
  void TearDown() override { gg::finalize(); }
};

TEST_P(SyncBackend, MutexMutualExclusion) {
  // A non-atomic counter stays exact only if the lock excludes: any torn
  // increment loses updates.
  struct Ctx {
    gg::mutex m;
    long counter = 0;
  } ctx;
  constexpr int kUlts = 24;
  constexpr int kIncs = 200;
  std::vector<gg::Ult*> us;
  us.reserve(kUlts);
  for (int i = 0; i < kUlts; ++i) {
    us.push_back(gg::ult_create(
        [](void* p) {
          auto* c = static_cast<Ctx*>(p);
          for (int k = 0; k < kIncs; ++k) {
            c->m.lock();
            ++c->counter;
            if ((k & 15) == 0) gg::yield();  // widen the critical section
            c->m.unlock();
          }
        },
        &ctx));
  }
  for (auto* u : us) gg::ult_join(u);
  EXPECT_EQ(ctx.counter, static_cast<long>(kUlts) * kIncs);
}

TEST_P(SyncBackend, MutexFifoHandoffNoBarging) {
  // Waiters that demonstrably parked (suspensions counter advanced) must
  // acquire in arrival order: unlock hands the lock to the head waiter
  // directly, it is never reopened for barging.
  struct Ctx {
    gg::mutex m;
    std::atomic<int> next_id{0};
    std::vector<int> order;  // guarded by m
  } ctx;
  constexpr int kWaiters = 6;
  ctx.m.lock();  // foreign main holds; all waiters must queue
  std::vector<gg::Ult*> us;
  us.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    const std::uint64_t parked_before = s::suspensions();
    us.push_back(gg::ult_create(
        [](void* p) {
          auto* c = static_cast<Ctx*>(p);
          const int id = c->next_id.fetch_add(1);  // claim before blocking
          c->m.lock();
          c->order.push_back(id);
          c->m.unlock();
        },
        &ctx));
    // Drive the scheduler until this waiter has actually parked on the
    // mutex, so enqueue order is the creation order. (mth runs the child
    // work-first, so it usually parked before ult_create returned.)
    while (s::suspensions() == parked_before) gg::yield();
  }
  ctx.m.unlock();  // head waiter receives the lock; chain drains FIFO
  for (auto* u : us) gg::ult_join(u);
  ASSERT_EQ(ctx.order.size(), static_cast<std::size_t>(kWaiters));
  for (int i = 0; i < kWaiters; ++i) EXPECT_EQ(ctx.order[i], i) << "i=" << i;
}

TEST_P(SyncBackend, EventNoLostWakeupRounds) {
  // set() and wait() race freely round after round; whichever side wins,
  // the waiter must always come back. A lost wakeup hangs the join.
  struct Ctx {
    gg::event ev;
    std::atomic<int> done{0};
  } ctx;
  constexpr int kRounds = 100;
  for (int r = 0; r < kRounds; ++r) {
    auto* u = gg::ult_create(
        [](void* p) {
          auto* c = static_cast<Ctx*>(p);
          c->ev.wait();
          c->done.fetch_add(1);
        },
        &ctx);
    if ((r & 1) != 0) gg::yield();  // alternate which side reaches the race first
    ctx.ev.set();
    gg::ult_join(u);
    EXPECT_EQ(ctx.done.load(), r + 1);
    ctx.ev.reset();
  }
}

TEST_P(SyncBackend, EventWaitFromForeignThread) {
  // The gtest main thread is not a ULT: wait() takes the parker-fallback
  // path while a ULT signals.
  gg::event ev;
  auto* u = gg::ult_create(
      [](void* p) { static_cast<gg::event*>(p)->set(); }, &ev);
  ev.wait();
  EXPECT_TRUE(ev.is_set());
  gg::ult_join(u);
}

TEST_P(SyncBackend, EventStackGateDestroyOnObserve) {
  // The ReadyGate pattern: the Event lives on the waiter's stack and dies
  // the instant the waiter observes it set. Both sanctioned observations
  // — wait() and an is_set_locked() poll — serialize past the setter's
  // last access to the Event, so the racing set() never touches a dead
  // frame (the ASan job instruments ULT stacks and trips on regression).
  struct Ctx {
    std::atomic<gg::event*> ev{nullptr};
    std::atomic<bool> use_poll{false};
  } ctx;
  constexpr int kRounds = 200;
  for (int r = 0; r < kRounds; ++r) {
    ctx.use_poll.store((r & 1) != 0);
    auto* waiter = gg::ult_create(
        [](void* p) {
          auto* c = static_cast<Ctx*>(p);
          gg::event gate;  // dies with this frame
          c->ev.store(&gate, std::memory_order_release);
          if (c->use_poll.load(std::memory_order_relaxed)) {
            while (!gate.is_set_locked()) gg::yield();
          } else {
            gate.wait();
          }
        },
        &ctx);
    gg::event* gate;
    while ((gate = ctx.ev.load(std::memory_order_acquire)) == nullptr)
      gg::yield();
    gate->set();  // foreign-thread setter racing the waiter's frame death
    gg::ult_join(waiter);
    ctx.ev.store(nullptr);
  }
}

TEST_P(SyncBackend, CondvarPredicateLoops) {
  // Classic bounded-buffer handoff through mutex+condvar. Both sides use
  // spurious-safe while-predicate loops; notify_one with one producer and
  // one consumer must never deadlock.
  struct Ctx {
    gg::mutex m;
    gg::cond cv;
    int value = -1;     // -1 = empty slot
    long sum = 0;
  } ctx;
  auto* producer = gg::ult_create(
      [](void* p) {
        auto* c = static_cast<Ctx*>(p);
        for (int i = 0; i < kCondItems; ++i) {
          c->m.lock();
          while (c->value != -1) c->cv.wait(c->m);
          c->value = i;
          c->cv.notify_one();
          c->m.unlock();
        }
      },
      &ctx);
  auto* consumer = gg::ult_create(
      [](void* p) {
        auto* c = static_cast<Ctx*>(p);
        for (int i = 0; i < kCondItems; ++i) {
          c->m.lock();
          while (c->value == -1) c->cv.wait(c->m);
          c->sum += c->value;
          c->value = -1;
          c->cv.notify_one();
          c->m.unlock();
        }
      },
      &ctx);
  gg::ult_join(producer);
  gg::ult_join(consumer);
  EXPECT_EQ(ctx.sum, static_cast<long>(kCondItems) * (kCondItems - 1) / 2);
}

TEST_P(SyncBackend, CondvarNotifyAllReleasesEveryWaiter) {
  struct Ctx {
    gg::mutex m;
    gg::cond cv;
    bool open = false;
    std::atomic<int> released{0};
  } ctx;
  constexpr int kWaiters = 8;
  std::vector<gg::Ult*> us;
  us.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    us.push_back(gg::ult_create(
        [](void* p) {
          auto* c = static_cast<Ctx*>(p);
          c->m.lock();
          while (!c->open) c->cv.wait(c->m);
          c->m.unlock();
          c->released.fetch_add(1);
        },
        &ctx));
  }
  ctx.m.lock();
  ctx.open = true;
  ctx.cv.notify_all();
  ctx.m.unlock();
  for (auto* u : us) gg::ult_join(u);
  EXPECT_EQ(ctx.released.load(), kWaiters);
}

TEST_P(SyncBackend, ChannelTransfersEveryItemMpmc) {
  // 3 producers × 3 consumers over a capacity-4 channel: every item sent
  // once, received once; backpressure suspends producers at the bound.
  struct Ctx {
    gg::channel<int> ch{4};
    std::atomic<long> sum{0};
    std::atomic<int> received{0};
  } ctx;
  constexpr int kProd = 3, kCons = 3;
  std::vector<gg::Ult*> us;
  for (int p = 0; p < kProd; ++p) {
    us.push_back(gg::ult_create(
        [](void* q) {
          auto* c = static_cast<Ctx*>(q);
          for (int i = 0; i < kPerProducer; ++i)
            ASSERT_TRUE(c->ch.send(i));
        },
        &ctx));
  }
  for (int k = 0; k < kCons; ++k) {
    us.push_back(gg::ult_create(
        [](void* q) {
          auto* c = static_cast<Ctx*>(q);
          int v = 0;
          while (c->ch.recv(v)) {
            c->sum.fetch_add(v);
            c->received.fetch_add(1);
          }
        },
        &ctx));
  }
  // Close once all sends finished: producers are the first kProd handles.
  for (int p = 0; p < kProd; ++p) gg::ult_join(us[static_cast<std::size_t>(p)]);
  ctx.ch.close();
  for (std::size_t i = kProd; i < us.size(); ++i) gg::ult_join(us[i]);
  EXPECT_EQ(ctx.received.load(), kProd * kPerProducer);
  EXPECT_EQ(ctx.sum.load(),
            static_cast<long>(kProd) * kPerProducer *
                (kPerProducer - 1) / 2);
}

TEST_P(SyncBackend, ChannelCloseSemantics) {
  // After close(): send refuses, recv drains what is buffered then
  // reports closed. try_* agree.
  gg::channel<int> ch{8};
  EXPECT_TRUE(ch.send(1));
  EXPECT_TRUE(ch.send(2));
  ch.close();
  EXPECT_TRUE(ch.closed());
  EXPECT_FALSE(ch.send(3)) << "send after close must fail";
  EXPECT_FALSE(ch.try_send(3));
  int v = 0;
  EXPECT_TRUE(ch.recv(v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(ch.try_recv(v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(ch.recv(v)) << "drained + closed: recv must not block";
  EXPECT_FALSE(ch.try_recv(v));
}

TEST_P(SyncBackend, ChannelCloseWakesBlockedReceivers) {
  // Receivers blocked on an empty channel must all come back with false
  // when the producer closes without sending.
  struct Ctx {
    gg::channel<int> ch{2};
    std::atomic<int> woke_empty{0};
  } ctx;
  constexpr int kRecv = 4;
  std::vector<gg::Ult*> us;
  for (int i = 0; i < kRecv; ++i) {
    us.push_back(gg::ult_create(
        [](void* p) {
          auto* c = static_cast<Ctx*>(p);
          int v = 0;
          if (!c->ch.recv(v)) c->woke_empty.fetch_add(1);
        },
        &ctx));
  }
  ctx.ch.close();
  for (auto* u : us) gg::ult_join(u);
  EXPECT_EQ(ctx.woke_empty.load(), kRecv);
}

TEST_P(SyncBackend, CompletionLatchCountsToZero) {
  struct Ctx {
    gg::latch l;
    std::atomic<int> ran{0};
  } ctx;
  constexpr int kN = 16;
  ctx.l.add(kN);
  EXPECT_FALSE(ctx.l.try_wait());
  std::vector<gg::Ult*> us;
  for (int i = 0; i < kN; ++i) {
    us.push_back(gg::ult_create(
        [](void* p) {
          auto* c = static_cast<Ctx*>(p);
          c->ran.fetch_add(1);
          c->l.count_down();
        },
        &ctx));
  }
  ctx.l.wait();  // foreign main blocks until all counted down
  EXPECT_EQ(ctx.ran.load(), kN);
  EXPECT_TRUE(ctx.l.try_wait());
  for (auto* u : us) gg::ult_join(u);
}

TEST_P(SyncBackend, BarrierSerialReturnOncePerRound) {
  // arrive_and_wait returns true for exactly one party per round (the
  // "serial member"), and no party can enter round r+1 before every party
  // left round r.
  struct Ctx {
    gg::barrier b;
    std::atomic<int> serial_returns{0};
    std::atomic<int> arrivals{0};
  } ctx;
  ctx.b.init(kBarrierParties);
  std::vector<gg::Ult*> us;
  for (int i = 0; i < kBarrierParties; ++i) {
    us.push_back(gg::ult_create(
        [](void* p) {
          auto* c = static_cast<Ctx*>(p);
          for (int r = 0; r < kBarrierRounds; ++r) {
            c->arrivals.fetch_add(1);
            if (c->b.arrive_and_wait()) c->serial_returns.fetch_add(1);
            // Everyone from round r must have arrived by the time anyone
            // proceeds past it.
            EXPECT_GE(c->arrivals.load(), (r + 1) * kBarrierParties);
          }
        },
        &ctx));
  }
  for (auto* u : us) gg::ult_join(u);
  EXPECT_EQ(ctx.serial_returns.load(), kBarrierRounds);
}

TEST_P(SyncBackend, WaitUntilDeadlineAndSuccess) {
  // sched::wait_until is the one timed-wait engine (future::wait_for,
  // taskwait_for, taskgroup_with_deadline all route here). A predicate
  // that never fires returns false once the deadline passes; one that
  // fires returns true early.
  const std::int64_t start = glto::common::now_ns();
  EXPECT_FALSE(s::wait_until([] { return false; }, start + 2'000'000));
  EXPECT_GE(glto::common::now_ns(), start + 2'000'000);

  struct Ctx {
    std::atomic<bool> flag{false};
  } ctx;
  auto* u = gg::ult_create(
      [](void* p) { static_cast<Ctx*>(p)->flag.store(true); }, &ctx);
  EXPECT_TRUE(s::wait_until([&] { return ctx.flag.load(); },
                            glto::common::now_ns() + 10'000'000'000LL));
  gg::ult_join(u);
}

// ---- timed primitives (PR-10 deadline layer) -----------------------------

TEST_P(SyncBackend, EventWaitUntilTimeoutNeverStrandsLaterSet) {
  // set() races a short-deadline wait_until round after round. Whichever
  // side wins, the timed-out node must be fully unlinked (a stranded node
  // would make the set() touch a dead stack frame — ASan trips), and a
  // set that lands after the timeout must still satisfy the next waiter.
  struct Ctx {
    gg::event ev;
    std::atomic<int> wakes{0};
    std::atomic<int> timeouts{0};
  } ctx;
  for (int r = 0; r < kTimedRaceRounds; ++r) {
    auto* racer = gg::ult_create(
        [](void* p) {
          auto* c = static_cast<Ctx*>(p);
          if (c->ev.wait_until(glto::common::now_ns() + 20'000)) {
            c->wakes.fetch_add(1);
          } else {
            c->timeouts.fetch_add(1);
          }
        },
        &ctx);
    if ((r & 1) != 0) gg::yield();  // vary which side reaches the race first
    ctx.ev.set();
    gg::ult_join(racer);
    // The set is never stranded: an untimed waiter must pass immediately.
    auto* late = gg::ult_create(
        [](void* p) { static_cast<Ctx*>(p)->ev.wait(); }, &ctx);
    gg::ult_join(late);
    ctx.ev.reset();
  }
  EXPECT_EQ(ctx.wakes.load() + ctx.timeouts.load(), kTimedRaceRounds);
}

TEST_P(SyncBackend, MutexTryLockUntilTimeoutAndHandoffRace) {
  struct Ctx {
    gg::mutex m;
    std::atomic<int> acquired{0};
    std::atomic<int> timed_out{0};
  } ctx;
  // Uncontended: even an already-expired deadline acquires via the fast
  // path — the deadline bounds waiting, not the attempt itself.
  ASSERT_TRUE(ctx.m.try_lock_until(glto::common::now_ns()));
  ctx.m.unlock();
  for (int r = 0; r < kTimedRaceRounds; ++r) {
    ctx.m.lock();  // force the timed waiter to park
    auto* u = gg::ult_create(
        [](void* p) {
          auto* c = static_cast<Ctx*>(p);
          if (c->m.try_lock_until(glto::common::now_ns() + 30'000)) {
            c->acquired.fetch_add(1);
            c->m.unlock();
          } else {
            c->timed_out.fetch_add(1);
          }
        },
        &ctx);
    if ((r & 1) != 0) gg::yield();
    ctx.m.unlock();  // may hand ownership to the waiter mid-timeout
    gg::ult_join(u);
    // Whatever the race outcome, ownership was never dropped on the
    // floor: the mutex must still cycle.
    ctx.m.lock();
    ctx.m.unlock();
  }
  EXPECT_EQ(ctx.acquired.load() + ctx.timed_out.load(), kTimedRaceRounds);
}

TEST_P(SyncBackend, CondvarWaitUntilTimesOutAndReacquiresMutex) {
  struct Ctx {
    gg::mutex m;
    gg::cond cv;
    bool ready = false;  // guarded by m
    std::atomic<bool> timed_out{false};
    std::atomic<bool> notified{false};
  } ctx;
  auto* t = gg::ult_create(
      [](void* p) {
        auto* c = static_cast<Ctx*>(p);
        c->m.lock();
        while (!c->ready) {
          if (!c->cv.wait_until(c->m, glto::common::now_ns() + 2'000'000)) {
            // Timed out with the mutex reacquired: mutating guarded state
            // here is legal, which is the whole point of the contract.
            c->timed_out.store(true);
            break;
          }
        }
        c->m.unlock();
      },
      &ctx);
  gg::ult_join(t);
  EXPECT_TRUE(ctx.timed_out.load());
  ctx.cv.notify_one();  // no waiters: harmless

  // Signaled case: long deadline, the notify lands first. Drive the
  // scheduler until the waiter has actually entered its timed park (the
  // counter advances) so the notify finds it waiting on every backend.
  const std::uint64_t parked_before = s::timed_waits();
  auto* u = gg::ult_create(
      [](void* p) {
        auto* c = static_cast<Ctx*>(p);
        c->m.lock();
        while (!c->ready) {
          if (c->cv.wait_until(c->m, glto::common::now_ns() +
                                         10'000'000'000LL)) {
            c->notified.store(true);
          }
        }
        c->m.unlock();
      },
      &ctx);
  while (s::timed_waits() == parked_before) gg::yield();
  ctx.m.lock();
  ctx.ready = true;
  ctx.cv.notify_one();
  ctx.m.unlock();
  gg::ult_join(u);
  EXPECT_TRUE(ctx.notified.load());
}

TEST_P(SyncBackend, LatchWaitUntilTimeoutThenCompletion) {
  gg::latch l;
  l.add(1);
  EXPECT_FALSE(l.wait_until(glto::common::now_ns() + 1'000'000));
  EXPECT_FALSE(l.try_wait()) << "a timeout leaves the latch untouched";
  auto* u = gg::ult_create(
      [](void* p) { static_cast<gg::latch*>(p)->count_down(); }, &l);
  EXPECT_TRUE(l.wait_until(glto::common::now_ns() + 10'000'000'000LL));
  EXPECT_TRUE(l.try_wait());
  gg::ult_join(u);
  EXPECT_TRUE(l.wait_until(glto::common::now_ns()))
      << "zero count satisfies even an expired deadline";
}

TEST_P(SyncBackend, ChannelSendRecvUntilBasicsAndFullTimeout) {
  gg::channel<int> ch{2};
  const std::int64_t far = glto::common::now_ns() + 10'000'000'000LL;
  EXPECT_TRUE(ch.send_until(1, far));
  EXPECT_TRUE(ch.send_until(2, far));
  EXPECT_EQ(ch.size(), 2u);
  // Full: a short-deadline send gives up without disturbing the buffer.
  EXPECT_FALSE(ch.send_until(3, glto::common::now_ns() + 500'000));
  EXPECT_EQ(ch.size(), 2u);
  int v = 0;
  EXPECT_TRUE(ch.recv_until(v, far));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(ch.recv_until(v, far));
  EXPECT_EQ(v, 2);
  // Empty: a short-deadline recv times out, consuming nothing.
  EXPECT_FALSE(ch.recv_until(v, glto::common::now_ns() + 500'000));
  EXPECT_EQ(ch.size(), 0u);
}

TEST_P(SyncBackend, ChannelCloseDrainsThenFailsTimed) {
  // Regression pin for the close contract: try_recv and recv_until drain
  // buffered items after close() before reporting failure, exactly like
  // the documented recv drain-then-fail behaviour.
  gg::channel<int> ch{4};
  EXPECT_TRUE(ch.send(10));
  EXPECT_TRUE(ch.send(11));
  EXPECT_TRUE(ch.send(12));
  ch.close();
  EXPECT_FALSE(ch.send_until(13, glto::common::now_ns() + 1'000'000))
      << "send after close must fail, deadline or not";
  int v = 0;
  EXPECT_TRUE(ch.try_recv(v));
  EXPECT_EQ(v, 10);
  EXPECT_TRUE(ch.recv_until(v, glto::common::now_ns() + 1'000'000));
  EXPECT_EQ(v, 11);
  EXPECT_TRUE(ch.recv_until(v, glto::common::now_ns()))
      << "an expired deadline still drains buffered items";
  EXPECT_EQ(v, 12);
  EXPECT_FALSE(ch.recv_until(v, glto::common::now_ns() + 1'000'000));
  EXPECT_FALSE(ch.try_recv(v));
}

TEST_P(SyncBackend, ChannelTimedRecvNeverLosesConcurrentItem) {
  // A recv_until whose deadline races a concurrent send must resolve
  // exactly-once: either the receiver got the item, or the timeout left
  // it in the channel for the next receiver. Deadlines cycle from
  // already-expired to a few multiples of the park quantum to sweep the
  // race window.
  struct Ctx {
    gg::channel<int> ch{1};
    std::atomic<std::int64_t> deadline_ns{0};
    std::atomic<bool> got{false};
  } ctx;
  for (int r = 0; r < kTimedRaceRounds; ++r) {
    ctx.deadline_ns.store(glto::common::now_ns() + (r % 4) * 30'000);
    ctx.got.store(false);
    auto* u = gg::ult_create(
        [](void* p) {
          auto* c = static_cast<Ctx*>(p);
          int v = -1;
          if (c->ch.recv_until(v, c->deadline_ns.load())) c->got.store(true);
        },
        &ctx);
    if ((r & 1) != 0) gg::yield();
    ASSERT_TRUE(ctx.ch.send(r));  // races the receiver's timeout
    gg::ult_join(u);
    int v = -1;
    if (ctx.got.load()) {
      EXPECT_FALSE(ctx.ch.try_recv(v)) << "round " << r << ": received twice";
    } else {
      ASSERT_TRUE(ctx.ch.try_recv(v))
          << "round " << r << ": timed-out recv lost the item";
      EXPECT_EQ(v, r);
    }
  }
}

TEST_P(SyncBackend, QpServerOverloadAccountingConserves) {
  // Overload demo at 2× measured capacity with deadlines armed: every
  // offered request lands in exactly one terminal bucket, and p99 of the
  // *completed* requests stays within the deadline budget (histogram
  // percentile estimates overshoot by ≤12.5%). $GLTO_QPSERVER_SOAK=1
  // scales the run up for the CI soak leg.
  namespace qp = glto::apps::qpserver;
  const bool soak = std::getenv("GLTO_QPSERVER_SOAK") != nullptr;
  qp::Config cfg;
  cfg.requests = soak ? 300 : 120;
  cfg.concurrency = 4;
  cfg.queue_depth = 8;
  cfg.n = 16;
  cfg.tile = 8;
  cfg.rank = 2;
  cfg.max_iters = 12;
  const qp::Report base = qp::run(cfg);  // closed-loop capacity probe
  ASSERT_EQ(base.completed, static_cast<std::uint64_t>(cfg.requests));
  ASSERT_EQ(base.shed + base.deadline_missed, 0u)
      << "no deadline: nothing may shed or expire";
  const double cap_rps = base.goodput_rps > 1.0 ? base.goodput_rps : 1.0;

  qp::Config over = cfg;
  over.requests = soak ? 600 : 160;
  over.arrival_rps = 2.0 * cap_rps;
  over.deadline_ms = 50;
  over.retries = 2;
  over.backoff_us = 100;
  over.degrade = true;
  const qp::Report rep = qp::run(over);
  EXPECT_EQ(rep.offered, static_cast<std::uint64_t>(over.requests));
  EXPECT_EQ(rep.completed + rep.shed + rep.deadline_missed, rep.offered)
      << "terminal accounting must conserve: completed=" << rep.completed
      << " shed=" << rep.shed << " missed=" << rep.deadline_missed;
  if (rep.completed > 0) {
    EXPECT_LE(rep.p99_us,
              static_cast<std::uint64_t>(over.deadline_ms) * 1000 * 9 / 8 + 1)
        << "completed requests must fit the deadline budget";
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, SyncBackend,
                         ::testing::Values(gg::Impl::abt, gg::Impl::qth,
                                           gg::Impl::mth),
                         [](const ::testing::TestParamInfo<gg::Impl>& info) {
                           return gg::impl_name(info.param);
                         });

// ---- timed-wait regression at the omp facade -----------------------------

TEST(SyncTimed, FutureWaitForTimeoutKeepsHandleValid) {
  // The timeout contract the redesign must preserve: wait_for returning
  // timeout does NOT invalidate the handle — a later wait()/get() on the
  // same future still works once the task completes.
  o::SelectOptions opts;
  opts.num_threads = 2;
  opts.bind_threads = false;
  o::select(o::RuntimeKind::glto_abt, opts);
  {
    std::atomic<bool> release{false};
    int witnessed = 0;
    o::parallel(2, [&](int tid, int) {
      if (tid != 0) return;
      auto fut = o::task_ret([&] {
        while (!release.load(std::memory_order_acquire)) o::taskyield();
        return 41 + 1;
      });
      EXPECT_EQ(fut.wait_for(std::chrono::microseconds(500)),
                o::FutureStatus::timeout);
      release.store(true, std::memory_order_release);
      fut.wait();  // handle survived the timeout; Event path completes it
      witnessed = fut.get();
    });
    EXPECT_EQ(witnessed, 42);
  }
  o::shutdown();
}

// ---- qpserver smoke ------------------------------------------------------

TEST(QpServer, SmokeCompletesEveryRequest) {
  gg::Config gcfg;
  gcfg.impl = gg::Impl::abt;
  gcfg.num_threads = 2;
  gcfg.bind_threads = false;
  gg::init(gcfg);
  glto::apps::qpserver::Config cfg;
  cfg.requests = 64;
  cfg.concurrency = 4;
  cfg.queue_depth = 8;
  cfg.n = 16;
  cfg.tile = 8;
  cfg.rank = 2;
  auto rep = glto::apps::qpserver::run(cfg);
  EXPECT_EQ(rep.completed, 64u);
  EXPECT_GT(rep.throughput_rps, 0.0);
  EXPECT_LE(rep.p50_us, rep.max_us);
  EXPECT_LE(rep.p95_us, rep.max_us) << "percentiles are clamped to max";
  gg::finalize();
}
