// UTS workload tests: tree determinism, cross-runtime agreement, native
// API ports.
#include <gtest/gtest.h>

#include "apps/uts.hpp"
#include "omp/omp.hpp"

namespace u = glto::apps::uts;
namespace o = glto::omp;

namespace {

u::Params small_tree() {
  u::Params p;
  p.root_seed = 19;
  p.b0 = 3.0;
  p.gen_mx = 5;
  return p;
}

}  // namespace

TEST(UtsSequential, DeterministicAcrossRuns) {
  const auto a = u::search_sequential(small_tree());
  const auto b = u::search_sequential(small_tree());
  EXPECT_EQ(a, b);
  EXPECT_GT(a.nodes, 0u);
  EXPECT_GT(a.leaves, 0u);
  EXPECT_LE(a.max_depth, small_tree().gen_mx);
}

TEST(UtsSequential, DifferentSeedsDifferentTrees) {
  auto p1 = small_tree();
  auto p2 = small_tree();
  p2.root_seed = 20;
  EXPECT_NE(u::search_sequential(p1).nodes, u::search_sequential(p2).nodes);
}

TEST(UtsSequential, LeafPlusInteriorEqualsNodes) {
  const auto r = u::search_sequential(small_tree());
  EXPECT_LE(r.leaves, r.nodes);
  EXPECT_GE(r.leaves, 1u);
}

TEST(UtsSequential, DepthZeroTreeIsRootOnly) {
  auto p = small_tree();
  p.gen_mx = 0;
  const auto r = u::search_sequential(p);
  EXPECT_EQ(r.nodes, 1u);
  EXPECT_EQ(r.leaves, 1u);
  EXPECT_EQ(r.max_depth, 0);
}

TEST(UtsSequential, BiggerBranchingGrowsTree) {
  auto p1 = small_tree();
  auto p4 = small_tree();
  p1.b0 = 1.0;
  p4.b0 = 4.0;
  EXPECT_LT(u::search_sequential(p1).nodes, u::search_sequential(p4).nodes);
}

class UtsOmp : public ::testing::TestWithParam<o::RuntimeKind> {
 protected:
  void SetUp() override {
    o::SelectOptions opts;
    opts.num_threads = 4;
    opts.bind_threads = false;
    o::select(GetParam(), opts);
  }
  void TearDown() override { o::shutdown(); }
};

TEST_P(UtsOmp, ParallelCountMatchesSequential) {
  const auto p = small_tree();
  const auto seq = u::search_sequential(p);
  const auto par = u::search_omp(p);
  EXPECT_EQ(par.nodes, seq.nodes)
      << "deterministic splittable tree: any schedule, same count";
  EXPECT_EQ(par.leaves, seq.leaves);
  EXPECT_EQ(par.max_depth, seq.max_depth);
}

TEST_P(UtsOmp, RepeatedRunsStable) {
  const auto p = small_tree();
  const auto first = u::search_omp(p);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(u::search_omp(p), first);
}

INSTANTIATE_TEST_SUITE_P(
    AllRuntimes, UtsOmp,
    ::testing::Values(o::RuntimeKind::gnu, o::RuntimeKind::intel,
                      o::RuntimeKind::glto_abt, o::RuntimeKind::glto_qth,
                      o::RuntimeKind::glto_mth),
    [](const ::testing::TestParamInfo<o::RuntimeKind>& info) {
      std::string n = o::kind_name(info.param);
      for (auto& ch : n) {
        if (ch == '-') ch = '_';
      }
      return n;
    });

TEST(UtsNative, PthreadsMatchesSequential) {
  const auto p = small_tree();
  const auto seq = u::search_sequential(p);
  EXPECT_EQ(u::search_pthreads(p, 3), seq);
}

TEST(UtsNative, AbtMatchesSequential) {
  const auto p = small_tree();
  const auto seq = u::search_sequential(p);
  EXPECT_EQ(u::search_abt_native(p, 3), seq);
}

TEST(UtsNative, QthMatchesSequential) {
  const auto p = small_tree();
  const auto seq = u::search_sequential(p);
  EXPECT_EQ(u::search_qth_native(p, 3), seq);
}

TEST(UtsNative, MthMatchesSequential) {
  const auto p = small_tree();
  const auto seq = u::search_sequential(p);
  EXPECT_EQ(u::search_mth_native(p, 3), seq);
}

TEST(UtsNative, SingleThreadVariantsWork) {
  const auto p = small_tree();
  const auto seq = u::search_sequential(p);
  EXPECT_EQ(u::search_pthreads(p, 1), seq);
  EXPECT_EQ(u::search_abt_native(p, 1), seq);
  EXPECT_EQ(u::search_qth_native(p, 1), seq);
  EXPECT_EQ(u::search_mth_native(p, 1), seq);
}
