// Extended OpenMP surface: locks, nest locks, sections, taskgroup,
// auto/runtime schedules, and the kmpc-style compiler ABI — across all
// five runtimes.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common/env.hpp"
#include "omp/kmp_abi.hpp"
#include "omp/omp.hpp"

namespace o = glto::omp;

class OmpExt : public ::testing::TestWithParam<o::RuntimeKind> {
 protected:
  void SetUp() override {
    o::SelectOptions opts;
    opts.num_threads = 4;
    opts.bind_threads = false;
    opts.active_wait = false;
    o::select(GetParam(), opts);
  }
  void TearDown() override { o::shutdown(); }
};

TEST_P(OmpExt, LockProvidesMutualExclusion) {
  o::Lock lock;
  long long counter = 0;
  o::parallel([&](int, int) {
    for (int i = 0; i < 1000; ++i) {
      lock.set();
      counter += 1;
      lock.unset();
    }
  });
  EXPECT_EQ(counter, 4000);
}

TEST_P(OmpExt, LockTestDoesNotBlock) {
  o::Lock lock;
  EXPECT_TRUE(lock.test());
  EXPECT_FALSE(lock.test()) << "already held";
  lock.unset();
  EXPECT_TRUE(lock.test());
  lock.unset();
}

TEST_P(OmpExt, NestLockReentersForOwner) {
  o::NestLock lock;
  lock.set();
  lock.set();  // same task: must not deadlock
  EXPECT_EQ(lock.depth(), 2);
  lock.unset();
  EXPECT_EQ(lock.depth(), 1);
  lock.unset();
  EXPECT_EQ(lock.depth(), 0);
}

TEST_P(OmpExt, NestLockExcludesOtherTasks) {
  o::NestLock lock;
  long long counter = 0;
  o::parallel([&](int, int) {
    for (int i = 0; i < 300; ++i) {
      lock.set();
      lock.set();  // nested acquire inside the critical section
      counter += 1;
      lock.unset();
      lock.unset();
    }
  });
  EXPECT_EQ(counter, 4 * 300);
}

TEST_P(OmpExt, NestLockTestFailsForNonOwner) {
  o::NestLock lock;
  lock.set();
  std::atomic<int> other_got_it{0};
  o::parallel(2, [&](int tid, int) {
    if (tid == 1 && lock.test()) other_got_it.fetch_add(1);
  });
  EXPECT_EQ(other_got_it.load(), 0)
      << "a different task must not test-acquire a held nest lock";
  lock.unset();
}

namespace {
/// A stable section callable for the span-style o::sections overload.
struct Bump {
  std::atomic<int>* hit = nullptr;
  void operator()() const { hit->fetch_add(1); }
};
}  // namespace

TEST_P(OmpExt, SectionsRunEachBlockOnce) {
  // Variadic form: each argument is one section block.
  std::atomic<int> a{0}, b{0}, c{0};
  o::parallel([&](int, int) {
    o::sections([&] { a.fetch_add(1); }, [&] { b.fetch_add(2); },
                [&] { c.fetch_add(3); });
  });
  EXPECT_EQ(a.load(), 1);
  EXPECT_EQ(b.load(), 2);
  EXPECT_EQ(c.load(), 3);
}

TEST_P(OmpExt, SectionsSpanFormDistributesAcrossMembers) {
  // More sections than members, via the Section-span overload (dynamic
  // block counts); all must complete regardless of balance.
  std::vector<std::atomic<int>> hits(17);
  std::vector<Bump> blocks;
  for (auto& h : hits) blocks.push_back(Bump{&h});
  std::vector<o::Section> secs;
  for (auto& blk : blocks) secs.push_back(o::section_of(blk));
  o::parallel([&](int, int) { o::sections(secs.data(), secs.size()); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_P(OmpExt, SectionsDeprecatedVectorFormStillWorks) {
  // v1 compatibility path (kept as a deprecated wrapper).
  std::atomic<int> done{0};
  std::vector<std::function<void()>> blocks;
  for (int i = 0; i < 6; ++i) blocks.push_back([&] { done.fetch_add(1); });
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  o::parallel([&](int, int) { o::sections(blocks); });
#pragma GCC diagnostic pop
  EXPECT_EQ(done.load(), 6);
}

TEST_P(OmpExt, TaskgroupWaitsForItsTasks) {
  std::atomic<int> done{0};
  o::parallel([&](int, int) {
    o::single([&] {
      o::taskgroup([&] {
        for (int i = 0; i < 32; ++i) o::task([&] { done.fetch_add(1); });
      });
      EXPECT_EQ(done.load(), 32) << "taskgroup end is a wait point";
    });
  });
}

TEST_P(OmpExt, AutoScheduleCoversRange) {
  constexpr std::int64_t kN = 300;
  std::vector<std::atomic<int>> hits(kN);
  o::parallel([&](int, int) {
    o::loop(0, kN, {o::Schedule::Auto, 0},
                [&](std::int64_t b, std::int64_t e) {
                  for (std::int64_t i = b; i < e; ++i) {
                    hits[static_cast<std::size_t>(i)].fetch_add(1);
                  }
                });
  });
  for (std::int64_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
}

INSTANTIATE_TEST_SUITE_P(
    AllRuntimes, OmpExt,
    ::testing::Values(o::RuntimeKind::gnu, o::RuntimeKind::intel,
                      o::RuntimeKind::glto_abt, o::RuntimeKind::glto_qth,
                      o::RuntimeKind::glto_mth),
    [](const ::testing::TestParamInfo<o::RuntimeKind>& info) {
      std::string n = o::kind_name(info.param);
      for (auto& ch : n) {
        if (ch == '-') ch = '_';
      }
      return n;
    });

TEST(OmpSchedule, RuntimeScheduleReadsEnv) {
  glto::common::env_set("OMP_SCHEDULE", "dynamic,4");
  o::SelectOptions opts;
  opts.num_threads = 3;
  opts.bind_threads = false;
  o::select(o::RuntimeKind::glto_abt, opts);
  constexpr std::int64_t kN = 100;
  std::vector<std::atomic<int>> hits(kN);
  o::parallel([&](int, int) {
    o::loop(0, kN, {o::Schedule::Runtime, 0},
                [&](std::int64_t b, std::int64_t e) {
                  EXPECT_LE(e - b, 4) << "OMP_SCHEDULE chunk respected";
                  for (std::int64_t i = b; i < e; ++i) {
                    hits[static_cast<std::size_t>(i)].fetch_add(1);
                  }
                });
  });
  for (std::int64_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
  o::shutdown();
  glto::common::env_set("OMP_SCHEDULE", nullptr);
}

// ---- kmpc-style compiler ABI ------------------------------------------------

class KmpAbi : public ::testing::TestWithParam<o::RuntimeKind> {
 protected:
  void SetUp() override {
    o::SelectOptions opts;
    opts.num_threads = 4;
    opts.bind_threads = false;
    opts.active_wait = false;
    o::select(GetParam(), opts);
  }
  void TearDown() override { o::shutdown(); }
};

namespace {

struct ForkFrame {
  std::atomic<int> members{0};
  std::atomic<long long> sum{0};
};

void microtask_count(std::int32_t gtid, std::int32_t tid, void* shared) {
  auto* f = static_cast<ForkFrame*>(shared);
  EXPECT_EQ(gtid, tid);
  EXPECT_EQ(glto_kmpc_global_thread_num(), gtid);
  f->members.fetch_add(1);
}

void microtask_static_for(std::int32_t, std::int32_t, void* shared) {
  auto* f = static_cast<ForkFrame*>(shared);
  std::int64_t lo = 0, hi = 0, stride = 0;
  // Sum 0..99 via the static-init protocol (inclusive bounds + stride).
  if (glto_kmpc_for_static_init(0, 99, 10, &lo, &hi, &stride)) {
    for (std::int64_t base = lo; base <= 99; base += stride) {
      const std::int64_t end = base + (hi - lo) <= 99 ? base + (hi - lo) : 99;
      for (std::int64_t i = base; i <= end; ++i) {
        f->sum.fetch_add(i);
      }
    }
  }
  glto_kmpc_barrier();
}

void microtask_dispatch(std::int32_t, std::int32_t, void* shared) {
  auto* f = static_cast<ForkFrame*>(shared);
  glto_kmpc_dispatch_init(0, 99, 7);
  std::int64_t lo = 0, hi = 0;
  while (glto_kmpc_dispatch_next(&lo, &hi)) {
    for (std::int64_t i = lo; i <= hi; ++i) f->sum.fetch_add(i);
  }
}

void microtask_single_task(std::int32_t, std::int32_t, void* shared) {
  auto* f = static_cast<ForkFrame*>(shared);
  if (glto_kmpc_single()) {
    for (int i = 0; i < 20; ++i) {
      glto_kmpc_omp_task(
          [](void* p) {
            static_cast<ForkFrame*>(p)->sum.fetch_add(1);
          },
          f);
    }
    glto_kmpc_omp_taskwait();
    glto_kmpc_end_single();
  }
  glto_kmpc_barrier();
}

void microtask_single_task_bulk(std::int32_t, std::int32_t, void* shared) {
  auto* f = static_cast<ForkFrame*>(shared);
  if (glto_kmpc_single()) {
    // 150 > the shim's internal wave: exercises multi-wave bulk spawn.
    void* args[150];
    for (auto& a : args) a = f;
    glto_kmpc_omp_task_bulk(
        [](void* p) { static_cast<ForkFrame*>(p)->sum.fetch_add(1); }, args,
        150);
    glto_kmpc_omp_taskwait();
    glto_kmpc_end_single();
  }
  glto_kmpc_barrier();
}

}  // namespace

TEST_P(KmpAbi, ForkCallRunsTeam) {
  ForkFrame f;
  glto_kmpc_fork_call(microtask_count, &f);
  EXPECT_EQ(f.members.load(), 4);
}

TEST_P(KmpAbi, ForkCallWithExplicitSize) {
  ForkFrame f;
  glto_kmpc_fork_call_nt(2, microtask_count, &f);
  EXPECT_EQ(f.members.load(), 2);
}

TEST_P(KmpAbi, StaticForInitCoversRange) {
  ForkFrame f;
  glto_kmpc_fork_call(microtask_static_for, &f);
  EXPECT_EQ(f.sum.load(), 99LL * 100 / 2);
}

TEST_P(KmpAbi, DynamicDispatchCoversRange) {
  ForkFrame f;
  glto_kmpc_fork_call(microtask_dispatch, &f);
  EXPECT_EQ(f.sum.load(), 99LL * 100 / 2);
}

TEST_P(KmpAbi, SingleAndTasks) {
  ForkFrame f;
  glto_kmpc_fork_call(microtask_single_task, &f);
  EXPECT_EQ(f.sum.load(), 20);
}

TEST_P(KmpAbi, BulkTaskSpawnRunsEveryTask) {
  ForkFrame f;
  glto_kmpc_fork_call(microtask_single_task_bulk, &f);
  EXPECT_EQ(f.sum.load(), 150);
}

TEST_P(KmpAbi, AtomicAdds) {
  double d = 0.0;
  std::int64_t i = 0;
  glto_kmpc_fork_call(
      [](std::int32_t, std::int32_t, void*) {}, nullptr);
  o::parallel([&](int, int) {
    for (int k = 0; k < 100; ++k) {
      glto_kmpc_atomic_add_f64(&d, 0.5);
      glto_kmpc_atomic_add_i64(&i, 2);
    }
  });
  EXPECT_DOUBLE_EQ(d, 4 * 100 * 0.5);
  EXPECT_EQ(i, 4 * 100 * 2);
}

INSTANTIATE_TEST_SUITE_P(
    AllRuntimes, KmpAbi,
    ::testing::Values(o::RuntimeKind::gnu, o::RuntimeKind::intel,
                      o::RuntimeKind::glto_abt, o::RuntimeKind::glto_qth,
                      o::RuntimeKind::glto_mth),
    [](const ::testing::TestParamInfo<o::RuntimeKind>& info) {
      std::string n = o::kind_name(info.param);
      for (auto& ch : n) {
        if (ch == '-') ch = '_';
      }
      return n;
    });
