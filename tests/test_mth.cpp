// Unit + integration tests for the MassiveThreads-like runtime:
// work-first spawn, continuation stealing, stealable/pinned main.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/env.hpp"
#include "mth/mth.hpp"

namespace gm = glto::mth;

namespace {

struct MthScope {
  explicit MthScope(int n, bool pin_main = false) {
    gm::Config cfg;
    cfg.num_workers = n;
    cfg.bind_threads = false;
    cfg.pin_main = pin_main;
    gm::init(cfg);
  }
  ~MthScope() { gm::finalize(); }
};

}  // namespace

TEST(Mth, InitFinalize) {
  MthScope s(2);
  EXPECT_TRUE(gm::initialized());
  EXPECT_EQ(gm::num_workers(), 2);
  EXPECT_TRUE(gm::in_strand());
}

TEST(Mth, WorkFirstRunsChildImmediately) {
  MthScope s(1);
  // With one worker, the child MUST have executed by the time create()
  // returns on the parent continuation — that is work-first semantics.
  std::atomic<int> x{0};
  auto* c = gm::create(
      [](void* p) { static_cast<std::atomic<int>*>(p)->store(1); }, &x);
  EXPECT_EQ(x.load(), 1) << "child runs before the parent continuation";
  gm::join(c);
}

TEST(Mth, JoinReturnsAfterChildDone) {
  MthScope s(2);
  std::atomic<int> x{0};
  auto* c = gm::create(
      [](void* p) { static_cast<std::atomic<int>*>(p)->store(42); }, &x);
  gm::join(c);
  EXPECT_EQ(x.load(), 42);
}

TEST(Mth, ManyStrandsAllExecute) {
  MthScope s(4);
  constexpr int kN = 500;
  std::atomic<int> count{0};
  std::vector<gm::Strand*> ss;
  ss.reserve(kN);
  for (int i = 0; i < kN; ++i) {
    ss.push_back(gm::create(
        [](void* p) { static_cast<std::atomic<int>*>(p)->fetch_add(1); },
        &count));
  }
  for (auto* c : ss) gm::join(c);
  EXPECT_EQ(count.load(), kN);
}

TEST(Mth, RecursiveSpawnTree) {
  MthScope s(3);
  // Binary spawn tree of depth 8: 2^9-1 strands, heavy continuation churn.
  struct Node {
    int depth;
    std::atomic<long long>* sum;
  };
  static gm::WorkFn rec = [](void* p) {
    auto n = *static_cast<Node*>(p);
    if (n.depth > 0) {
      Node l{n.depth - 1, n.sum};
      Node r{n.depth - 1, n.sum};
      auto* a = gm::create(rec, &l);
      auto* b = gm::create(rec, &r);
      gm::join(a);
      gm::join(b);
    }
    n.sum->fetch_add(1);
  };
  std::atomic<long long> sum{0};
  Node root{8, &sum};
  auto* c = gm::create(rec, &root);
  gm::join(c);
  EXPECT_EQ(sum.load(), (1LL << 9) - 1);
}

TEST(Mth, StealsHappenWithMultipleWorkers) {
  MthScope s(2);
  // Deterministic steal: the child occupies worker 0 until the main
  // continuation has been stolen and resumed by worker 1. create() can
  // therefore only return on the parent side after a steal happened.
  static std::atomic<bool> stop;
  stop.store(false);
  auto* c = gm::create(
      [](void*) {
        while (!stop.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
      },
      nullptr);
  // We are the stolen continuation.
  EXPECT_GT(gm::stats().steals, 0u)
      << "random work stealing is on by default in mth";
  stop.store(true, std::memory_order_release);
  gm::join(c);
}

TEST(Mth, MainContinuationIsStealableByDefault) {
  MthScope s(2, /*pin_main=*/false);
  // §IV-G trait: after a spawn, main's continuation may be resumed by a
  // different worker. Same forcing construction as above.
  static std::atomic<bool> stop;
  stop.store(false);
  auto* c = gm::create(
      [](void*) {
        while (!stop.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
      },
      nullptr);
  EXPECT_NE(gm::worker_rank(), 0)
      << "main must have been stolen off worker 0";
  EXPECT_GT(gm::stats().main_migrations, 0u);
  stop.store(true, std::memory_order_release);
  gm::join(c);
}

TEST(Mth, PinMainKeepsMainOnWorkerZero) {
  MthScope s(4, /*pin_main=*/true);
  std::atomic<int> sink{0};
  for (int i = 0; i < 100; ++i) {
    auto* c = gm::create(
        [](void* p) { static_cast<std::atomic<int>*>(p)->fetch_add(1); },
        &sink);
    gm::join(c);
    EXPECT_EQ(gm::worker_rank(), 0) << "pinned main must stay on worker 0";
  }
  EXPECT_EQ(sink.load(), 100);
  EXPECT_EQ(gm::stats().main_migrations, 0u);
}

TEST(Mth, StrandsObserveMigration) {
  MthScope s(4);
  // Record the workers each strand ran on; with stealing enabled at least
  // one strand should finish on a worker other than 0 (where all spawns
  // originate).
  constexpr int kN = 64;
  static std::atomic<int> ranks_seen[kN];
  for (auto& r : ranks_seen) r.store(-1);
  struct Arg {
    int idx;
  };
  static Arg args[kN];
  std::vector<gm::Strand*> ss;
  for (int i = 0; i < kN; ++i) {
    args[i].idx = i;
    ss.push_back(gm::create(
        [](void* p) {
          // Burn a little time so thieves get a chance.
          volatile int x = 0;
          for (int k = 0; k < 2000; ++k) x = x + k;
          ranks_seen[static_cast<Arg*>(p)->idx].store(gm::worker_rank());
        },
        &args[i]));
  }
  std::set<int> distinct;
  for (int i = 0; i < kN; ++i) {
    gm::join(ss[static_cast<std::size_t>(i)]);
    distinct.insert(ranks_seen[i].load());
  }
  EXPECT_GE(distinct.size(), 1u);
  for (int r : distinct) {
    EXPECT_GE(r, 0);
    EXPECT_LT(r, 4);
  }
}

TEST(Mth, YieldIsSafeWhenIdle) {
  MthScope s(1);
  for (int i = 0; i < 10; ++i) gm::yield();  // nothing to run: no-op
  SUCCEED();
}

TEST(Mth, YieldInterleavesStrands) {
  MthScope s(1);
  static std::vector<int> order;
  order.clear();
  struct Arg {
    int tag;
  };
  static Arg a0{0}, a1{1};
  auto body = [](void* p) {
    for (int i = 0; i < 3; ++i) {
      order.push_back(static_cast<Arg*>(p)->tag);
      gm::yield();
    }
  };
  auto* u0 = gm::create(body, &a0);
  auto* u1 = gm::create(body, &a1);
  gm::join(u0);
  gm::join(u1);
  ASSERT_EQ(order.size(), 6u);
  long long sum = 0;
  for (int t : order) sum += t;
  EXPECT_EQ(sum, 3) << "both strands must make progress";
}

TEST(Mth, IsDoneAndExecutedOn) {
  MthScope s(2);
  std::atomic<int> x{0};
  auto* c = gm::create(
      [](void* p) { static_cast<std::atomic<int>*>(p)->store(1); }, &x);
  // Work-first: by the time create returns, the child may or may not have
  // finished (could have been stolen mid-flight); join settles it.
  gm::join(c);
  EXPECT_EQ(x.load(), 1);
}

TEST(Mth, DeepJoinChain) {
  MthScope s(2);
  struct Node {
    int depth;
    std::atomic<int>* sum;
  };
  static gm::WorkFn rec = [](void* p) {
    auto n = *static_cast<Node*>(p);
    if (n.depth > 0) {
      Node next{n.depth - 1, n.sum};
      auto* c = gm::create(rec, &next);
      gm::join(c);
    }
    n.sum->fetch_add(1);
  };
  std::atomic<int> sum{0};
  Node root{100, &sum};
  auto* c = gm::create(rec, &root);
  gm::join(c);
  EXPECT_EQ(sum.load(), 101);
}

TEST(Mth, LockedDispatchBaselineIsCorrectAndStealFree) {
  namespace env = glto::common;
  env::env_set("MTH_DISPATCH", "locked");
  {
    MthScope s(2);
    EXPECT_EQ(gm::dispatch_mode(), gm::Dispatch::Locked);
    // Spawns stay work-first; only the ready queues and stealing change.
    std::atomic<int> count{0};
    std::vector<gm::Strand*> ss;
    for (int i = 0; i < 200; ++i) {
      ss.push_back(gm::create(
          [](void* p) { static_cast<std::atomic<int>*>(p)->fetch_add(1); },
          &count));
    }
    for (auto* c : ss) gm::join(c);
    EXPECT_EQ(count.load(), 200);
    EXPECT_EQ(gm::stats().steals, 0u) << "locked baseline never steals";
  }
  env::env_set("MTH_DISPATCH", nullptr);
  {
    MthScope s(2);
    EXPECT_EQ(gm::dispatch_mode(), gm::Dispatch::WorkStealing);
  }
}

TEST(Mth, SharedPoolRunsAllStrands) {
  gm::Config cfg;
  cfg.num_workers = 3;
  cfg.bind_threads = false;
  cfg.shared_pool = true;  // §IV-F: one MPMC pool for all workers
  gm::init(cfg);
  std::atomic<int> count{0};
  std::vector<gm::Strand*> ss;
  for (int i = 0; i < 200; ++i) {
    ss.push_back(gm::create(
        [](void* p) { static_cast<std::atomic<int>*>(p)->fetch_add(1); },
        &count));
  }
  for (auto* c : ss) gm::join(c);
  EXPECT_EQ(count.load(), 200);
  gm::finalize();
}

TEST(Mth, StrandRecordsAreRecycled) {
  MthScope s(1);
  // After a first batch seeds the freelist, later spawns reuse records and
  // stacks — observable through per-thread stack-cache hits.
  for (int round = 0; round < 3; ++round) {
    std::atomic<int> count{0};
    std::vector<gm::Strand*> ss;
    for (int i = 0; i < 64; ++i) {
      ss.push_back(gm::create(
          [](void* p) { static_cast<std::atomic<int>*>(p)->fetch_add(1); },
          &count));
    }
    for (auto* c : ss) gm::join(c);
    ASSERT_EQ(count.load(), 64);
  }
  const auto st = gm::stats();
  EXPECT_EQ(st.strands_created, 3u * 64u);
  EXPECT_GT(st.stack_cache_hits, 0u)
      << "recycled strands must hit the per-thread stack cache";
}

TEST(Mth, ReinitAfterFinalize) {
  {
    MthScope s(2);
    std::atomic<int> x{0};
    auto* c = gm::create(
        [](void* p) { static_cast<std::atomic<int>*>(p)->store(1); }, &x);
    gm::join(c);
  }
  {
    MthScope s(3);
    EXPECT_EQ(gm::num_workers(), 3);
    std::atomic<int> x{0};
    auto* c = gm::create(
        [](void* p) { static_cast<std::atomic<int>*>(p)->store(2); }, &x);
    gm::join(c);
    EXPECT_EQ(x.load(), 2);
  }
}
