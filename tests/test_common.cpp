// Unit tests for src/common utilities.
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "common/env.hpp"
#include "common/parker.hpp"
#include "common/rng.hpp"
#include "common/spin.hpp"
#include "common/stats.hpp"
#include "common/time.hpp"

namespace gc = glto::common;

TEST(Env, StrUnsetReturnsNullopt) {
  gc::env_set("GLTO_TEST_UNSET", nullptr);
  EXPECT_FALSE(gc::env_str("GLTO_TEST_UNSET").has_value());
}

TEST(Env, StrRoundTrip) {
  gc::env_set("GLTO_TEST_STR", "hello");
  auto v = gc::env_str("GLTO_TEST_STR");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "hello");
  gc::env_set("GLTO_TEST_STR", nullptr);
}

TEST(Env, EmptyStringIsUnset) {
  gc::env_set("GLTO_TEST_EMPTY", "");
  EXPECT_FALSE(gc::env_str("GLTO_TEST_EMPTY").has_value());
  gc::env_set("GLTO_TEST_EMPTY", nullptr);
}

TEST(Env, I64ParsesAndFallsBack) {
  gc::env_set("GLTO_TEST_I64", "42");
  EXPECT_EQ(gc::env_i64("GLTO_TEST_I64", 7), 42);
  gc::env_set("GLTO_TEST_I64", "-13");
  EXPECT_EQ(gc::env_i64("GLTO_TEST_I64", 7), -13);
  gc::env_set("GLTO_TEST_I64", "junk");
  EXPECT_EQ(gc::env_i64("GLTO_TEST_I64", 7), 7);
  gc::env_set("GLTO_TEST_I64", nullptr);
  EXPECT_EQ(gc::env_i64("GLTO_TEST_I64", 7), 7);
}

TEST(Env, BoolOpenMPConventions) {
  for (const char* t : {"1", "true", "TRUE", "yes", "on"}) {
    gc::env_set("GLTO_TEST_BOOL", t);
    EXPECT_TRUE(gc::env_bool("GLTO_TEST_BOOL", false)) << t;
  }
  for (const char* f : {"0", "false", "no", "OFF"}) {
    gc::env_set("GLTO_TEST_BOOL", f);
    EXPECT_FALSE(gc::env_bool("GLTO_TEST_BOOL", true)) << f;
  }
  gc::env_set("GLTO_TEST_BOOL", nullptr);
  EXPECT_TRUE(gc::env_bool("GLTO_TEST_BOOL", true));
}

TEST(Time, MonotonicAndPositive) {
  const auto a = gc::now_ns();
  const auto b = gc::now_ns();
  EXPECT_GT(a, 0);
  EXPECT_GE(b, a);
}

TEST(Time, TimerMeasuresSleep) {
  gc::Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(t.elapsed_sec(), 0.005);
  EXPECT_LT(t.elapsed_sec(), 5.0);
}

TEST(Spin, MutualExclusion) {
  gc::SpinLock lock;
  int counter = 0;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        gc::SpinGuard g(lock);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, 4 * kIters);
}

TEST(Spin, TryLock) {
  gc::SpinLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(Rng, DeterministicPerSeed) {
  gc::SplitRng a(123), b(123), c(124);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.state(), c.state());
}

TEST(Rng, SplitIsIndependentOfDrawOrder) {
  // The splittable property UTS relies on: a child stream depends only on
  // (parent state, index), never on how many values a sibling consumed.
  gc::SplitRng parent(999);
  gc::SplitRng c0 = parent.split(0);
  gc::SplitRng c1 = parent.split(1);
  gc::SplitRng c0_again = parent.split(0);
  (void)c1;
  EXPECT_EQ(c0.state(), c0_again.state());
  EXPECT_NE(c0.state(), c1.state());
}

TEST(Rng, SplitChildrenDiffer) {
  gc::SplitRng parent(7);
  std::set<std::uint64_t> states;
  for (int i = 0; i < 100; ++i) states.insert(parent.split(i).state());
  EXPECT_EQ(states.size(), 100u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  gc::SplitRng r(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBelowBounds) {
  gc::SplitRng r(11);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
  EXPECT_EQ(r.next_below(0), 0u);
}

TEST(Stats, BasicMoments) {
  gc::RunStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.5);
  EXPECT_NEAR(s.stddev(), 1.2909944, 1e-6);
  EXPECT_EQ(s.count(), 4u);
}

TEST(Stats, EmptyIsSafe) {
  gc::RunStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.median(), 0.0);
}

TEST(Parker, TimesOutWithoutUnpark) {
  gc::Parker p;
  const auto t0 = gc::now_ns();
  EXPECT_FALSE(p.park_for_us(2000)) << "no permit: the park must time out";
  EXPECT_GE(gc::now_ns() - t0, 1000000);
}

TEST(Parker, PermitGrantedBeforeParkIsConsumedImmediately) {
  // The no-lost-wakeup property: an unpark that lands between a worker's
  // last queue probe and its cv wait is banked as a permit and consumed
  // by the next park — which returns true without waiting.
  gc::Parker p;
  p.unpark();
  const auto t0 = gc::now_ns();
  EXPECT_TRUE(p.park_for_us(2'000'000));
  EXPECT_LT(gc::now_ns() - t0, 1'000'000'000) << "banked permit must not wait";
  EXPECT_FALSE(p.park_for_us(1000)) << "a permit is consumed exactly once";
}

TEST(Parker, UnparkWakesSleeper) {
  gc::Parker p;
  std::atomic<bool> woke{false};
  std::thread sleeper([&] {
    p.park_for_us(2'000'000);
    woke.store(true);
  });
  while (p.waiters() == 0) std::this_thread::yield();
  const auto t0 = gc::now_ns();
  p.unpark();
  sleeper.join();
  EXPECT_TRUE(woke.load());
  EXPECT_LT(gc::now_ns() - t0, 1'500'000'000) << "unpark took too long";
}
