// CloverLeaf-mini tests: physics invariants (mass conservation, finite
// fields, EOS correctness) and the per-step region count the benches rely
// on — across runtimes.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/clover.hpp"
#include "omp/omp.hpp"

namespace c = glto::apps::clover;
namespace o = glto::omp;

namespace {

c::Config small_cfg() {
  c::Config cfg;
  cfg.nx = 24;
  cfg.ny = 24;
  return cfg;
}

}  // namespace

TEST(CloverField, IndexingAndHalo) {
  c::Field f(4, 3, 0.5);
  EXPECT_EQ(f.nx(), 4);
  EXPECT_EQ(f.ny(), 3);
  f.at(0, 0) = 1.0;
  f.at(3, 2) = 2.0;
  f.at(-1, -1) = 9.0;  // halo writable
  f.at(4, 3) = 8.0;
  EXPECT_DOUBLE_EQ(f.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(f.at(3, 2), 2.0);
  EXPECT_DOUBLE_EQ(f.at(1, 1), 0.5);
}

class CloverOmp : public ::testing::TestWithParam<o::RuntimeKind> {
 protected:
  void SetUp() override {
    o::SelectOptions opts;
    opts.num_threads = 3;
    opts.bind_threads = false;
    o::select(GetParam(), opts);
  }
  void TearDown() override { o::shutdown(); }
};

TEST_P(CloverOmp, MassExactlyConserved) {
  c::Clover sim(small_cfg());
  sim.init_state();
  const double m0 = sim.total_mass();
  sim.run(5);
  EXPECT_NEAR(sim.total_mass(), m0, 1e-9 * m0)
      << "flux-form advection with wall boundaries conserves mass";
}

TEST_P(CloverOmp, FieldsStayFiniteAndPositive) {
  c::Clover sim(small_cfg());
  sim.init_state();
  sim.run(10);
  EXPECT_TRUE(sim.all_finite());
  EXPECT_GT(sim.total_energy(), 0.0);
  EXPECT_LT(sim.max_velocity(), 10.0);
}

TEST_P(CloverOmp, EnergyBlobDrivesFlow) {
  c::Clover sim(small_cfg());
  sim.init_state();
  EXPECT_DOUBLE_EQ(sim.max_velocity(), 0.0);
  sim.run(3);
  EXPECT_GT(sim.max_velocity(), 0.0)
      << "the pressure gradient must accelerate the gas";
}

TEST_P(CloverOmp, Exactly114RegionsPerStep) {
  c::Clover sim(small_cfg());
  sim.init_state();
  sim.step();
  EXPECT_EQ(sim.regions_per_step(), 114)
      << "CloverLeaf issues 114 parallel-for regions per step";
  const auto after_one = sim.regions_issued();
  sim.step();
  EXPECT_EQ(sim.regions_issued(), 2 * after_one);
}

TEST_P(CloverOmp, DeterministicAcrossThreadCounts) {
  // Same physics regardless of the team size (static schedules, disjoint
  // writes): compare against a 1-thread run.
  c::Config cfg = small_cfg();
  c::Clover sim_n(cfg);
  sim_n.init_state();
  sim_n.run(3);
  const double mass_n = sim_n.total_mass();
  const double energy_n = sim_n.total_energy();

  o::set_num_threads(1);
  c::Clover sim_1(cfg);
  sim_1.init_state();
  sim_1.run(3);
  o::set_num_threads(3);

  EXPECT_NEAR(sim_1.total_mass(), mass_n, 1e-9);
  EXPECT_NEAR(sim_1.total_energy(), energy_n, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllRuntimes, CloverOmp,
    ::testing::Values(o::RuntimeKind::gnu, o::RuntimeKind::intel,
                      o::RuntimeKind::glto_abt, o::RuntimeKind::glto_qth,
                      o::RuntimeKind::glto_mth),
    [](const ::testing::TestParamInfo<o::RuntimeKind>& info) {
      std::string n = o::kind_name(info.param);
      for (auto& ch : n) {
        if (ch == '-') ch = '_';
      }
      return n;
    });

TEST(CloverConfig, UnpaddedRegionCountIsStable) {
  o::SelectOptions opts;
  opts.num_threads = 2;
  opts.bind_threads = false;
  o::select(o::RuntimeKind::glto_abt, opts);
  c::Config cfg;
  cfg.nx = 16;
  cfg.ny = 16;
  cfg.pad_to_114_regions = false;
  c::Clover sim(cfg);
  sim.init_state();
  sim.step();
  const int unpadded = sim.regions_per_step();
  EXPECT_GT(unpadded, 5);
  EXPECT_LT(unpadded, 114);
  sim.step();
  EXPECT_EQ(sim.regions_per_step(), unpadded);
  o::shutdown();
}
