#!/usr/bin/env python3
"""Concurrency lint gate for the GLTO runtime (CI: fails the build on hit).

Four rules, all scoped to runtime code under src/ (tests and examples may
stage races with raw sleeps; the runtime itself must not):

  naked-sleep      std::this_thread::sleep_for / sleep_until / usleep /
                   nanosleep outside the WaitEngine (src/sched/sync.cpp).
                   A raw sleep parks a whole OS thread carrying many ULTs:
                   it cannot be cut short by an unpark, skips the
                   run-some-work rung of the backoff ladder, and is
                   invisible to the stall watchdog. Blocking code must go
                   through WaitEngine / Parker — for retry backoff that
                   means sched::backoff_until / sched::backoff_for_us,
                   which drain runnable work and stay watchdog-bracketed.
                   src/sched/chaos.cpp is allowlisted: its delay injection
                   exists precisely to simulate an ill-timed preemption.

  naked-park       a direct Parker .park_for_us( / .park_until( call
                   outside the wait machinery (src/sched/sync.cpp,
                   src/sched/ws_core.hpp, src/common/parker.hpp). A bare
                   park is a sleep with extra steps: it skips the
                   WaitEngine's work-conserving ladder (run a unit, yield,
                   then micro-park) and its watchdog bracketing, so an
                   app-level backoff written this way hides a stall and
                   wastes the carrier thread. Retry/backoff delays must
                   call sched::backoff_until / sched::backoff_for_us.

  raw-pthread      pthread_mutex_* outside the backend directories
                   (src/abt, src/qth, src/mth). Portable runtime layers
                   must use sched::Mutex / common::SpinLock /
                   common::CheckedMutex so lock discipline stays visible
                   to Clang Thread Safety Analysis and to the ULT
                   scheduler (a pthread mutex blocks the carrier thread).

  relaxed-handoff  a memory_order_relaxed *store* whose own line or the
                   comment block immediately above it says "handoff".
                   A handoff is by definition a publication point: the
                   receiving side reads fields the handing-off side wrote,
                   so the store needs release ordering (and under TSan a
                   relaxed handoff reports as a race on the payload).

Waiver: append `// lint: allow(<rule>) <reason>` to the offending line,
e.g. `p.park_for_us(50);  // lint: allow(naked-park) probe thread, no ULTs`.
The reason is mandatory — a bare `allow(...)` does not match. Waivers are
for sites where the flagged pattern is intentional and argued in the
reason; CI reviews them by grepping this marker.

Usage: scripts/lint_concurrency.py [repo-root]   (exit 1 on any finding)
"""

import os
import re
import sys

SLEEP_RE = re.compile(
    r"\bsleep_for\s*\(|\bsleep_until\s*\(|\busleep\s*\(|\bnanosleep\s*\(")
PARK_RE = re.compile(r"\.\s*park_(?:for_us|until)\s*\(")
PTHREAD_RE = re.compile(r"\bpthread_mutex_\w+")
RELAXED_STORE_RE = re.compile(r"\.store\s*\([^;]*memory_order_relaxed")
COMMENT_RE = re.compile(r"^\s*(//|/\*|\*)")
WAIVER_RE = re.compile(r"//\s*lint:\s*allow\((?P<rule>[\w-]+)\)\s*\S")

SLEEP_ALLOWLIST = {
    os.path.join("src", "sched", "sync.cpp"),   # the WaitEngine itself
    os.path.join("src", "sched", "chaos.cpp"),  # intentional delay injection
}
PARK_ALLOWLIST = {
    os.path.join("src", "sched", "sync.cpp"),     # WaitEngine micro-park rung
    os.path.join("src", "sched", "ws_core.hpp"),  # scheduler idle parking
    os.path.join("src", "common", "parker.hpp"),  # the Parker itself
}
PTHREAD_ALLOW_DIRS = (
    os.path.join("src", "abt") + os.sep,
    os.path.join("src", "qth") + os.sep,
    os.path.join("src", "mth") + os.sep,
)

EXTS = (".cpp", ".hpp", ".h", ".cc", ".hh")


def comment_block_above(lines, idx):
    """Contiguous comment lines immediately preceding lines[idx], as text."""
    out = []
    j = idx - 1
    while j >= 0 and COMMENT_RE.match(lines[j]):
        out.append(lines[j])
        j -= 1
    return "\n".join(out)


def waived(line, rule):
    m = WAIVER_RE.search(line)
    return m is not None and m.group("rule") == rule


def lint_file(root, rel, findings):
    path = os.path.join(root, rel)
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            lines = f.read().splitlines()
    except OSError as e:
        findings.append((rel, 0, "io", str(e)))
        return

    in_block_comment = False
    for i, line in enumerate(lines):
        # Cheap block-comment tracking: skip lines living inside /* ... */.
        if in_block_comment:
            if "*/" in line:
                in_block_comment = False
            continue
        code = line.split("//", 1)[0]
        if "/*" in code and "*/" not in code:
            in_block_comment = True
        lineno = i + 1

        if (
            rel not in SLEEP_ALLOWLIST
            and SLEEP_RE.search(code)
            and not waived(line, "naked-sleep")
        ):
            findings.append((
                rel, lineno, "naked-sleep",
                "raw sleep in runtime code: route the wait through "
                "WaitEngine/Parker (src/sched/sync.cpp) so it can be "
                "unparked, runs pending work, and stays watchdog-visible",
            ))

        if (
            rel not in PARK_ALLOWLIST
            and PARK_RE.search(code)
            and not waived(line, "naked-park")
        ):
            findings.append((
                rel, lineno, "naked-park",
                "direct Parker park outside the wait machinery: use "
                "sched::backoff_until / sched::backoff_for_us (WaitEngine) "
                "so the delay runs pending work and stays "
                "watchdog-bracketed",
            ))

        if (
            not rel.startswith(PTHREAD_ALLOW_DIRS)
            and PTHREAD_RE.search(code)
            and not waived(line, "raw-pthread")
        ):
            findings.append((
                rel, lineno, "raw-pthread",
                "pthread_mutex_* outside the backends: use sched::Mutex "
                "(ULT-blocking), common::SpinLock, or common::CheckedMutex "
                "so lock discipline stays analyzable",
            ))

        if RELAXED_STORE_RE.search(code) and not waived(line, "relaxed-handoff"):
            context = line + "\n" + comment_block_above(lines, i)
            if "handoff" in context.lower():
                findings.append((
                    rel, lineno, "relaxed-handoff",
                    "relaxed store at a site documented as a handoff: a "
                    "handoff publishes payload the receiver reads, so the "
                    "store needs memory_order_release",
                ))


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    findings = []
    scanned = 0
    for dirpath, _dirnames, filenames in os.walk(os.path.join(root, "src")):
        for name in sorted(filenames):
            if not name.endswith(EXTS):
                continue
            rel = os.path.relpath(os.path.join(dirpath, name), root)
            scanned += 1
            lint_file(root, rel, findings)

    for rel, lineno, rule, msg in sorted(findings):
        print(f"{rel}:{lineno}: [{rule}] {msg}")
    print(f"lint_concurrency: {scanned} files scanned, "
          f"{len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
