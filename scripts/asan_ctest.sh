#!/bin/sh
# ASan verification job — runs on every PR as part of the verify flow.
#
# Sanitizes the paths a plain Release ctest cannot see into: the taskdep
# dep-hash table and release-counter lifecycle (refcounted nodes, cell GC,
# wake-up enqueues), the lock-free queues, and all three ULT schedulers.
# fctx carries ASan fiber annotations (__sanitizer_start_switch_fiber /
# __sanitizer_finish_switch_fiber around every context switch), so the
# glto-{abt,qth,mth} runtimes are sanitized exactly — pooled fiber stacks
# included — alongside the pthread baselines (gnu/intel).
set -e
cd "$(dirname "$0")/.."

cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=address -g -O1" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address" >/dev/null
cmake --build build-asan -j \
  --target test_taskdep test_bqp test_abt test_qth test_mth test_sched \
  test_ws_core test_sync

./build-asan/test_taskdep
./build-asan/test_bqp
./build-asan/test_sched
./build-asan/test_ws_core
./build-asan/test_abt
./build-asan/test_qth
./build-asan/test_mth
# Blocking-primitive lifetimes (continuation parking, wait-node handoff,
# latch delete-after-wait) across all three backends + foreign threads.
./build-asan/test_sync

echo "asan_ctest: all sanitized suites passed"
