#!/bin/sh
# Back-compat shim: the ASan job now rides the generalized sanitizer driver
# (scripts/san_ctest.sh), which also covers tsan and ubsan through one
# CMake -DGLTO_SANITIZE= switch. Kept so the verify recipe and existing CI
# wiring keep working unchanged.
set -e
exec "$(dirname "$0")/san_ctest.sh" asan
