#!/bin/sh
# ASan verification job — runs on every PR as part of the verify flow.
#
# Sanitizes the paths a plain Release ctest cannot see into: the taskdep
# dep-hash table and release-counter lifecycle (refcounted nodes, cell GC,
# wake-up enqueues), the lock-free queues, and the abt scheduler core.
#
# Scope note: fcontext fiber stacks carry no ASan fiber annotations, so
# deep ULT-runtime stacks (glto-* over qth/mth especially) produce
# stack-underflow false positives. The dependency engine is runtime-
# agnostic, so its sanitized coverage comes from the pthread runtimes
# (gnu/intel), which ASan tracks exactly; test_abt/test_sched cover the
# scheduler and queue layers directly.
set -e
cd "$(dirname "$0")/.."

cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=address -g -O1" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address" >/dev/null
cmake --build build-asan -j \
  --target test_taskdep test_bqp test_abt test_sched test_ws_core

./build-asan/test_taskdep --gtest_filter='*gnu*:*intel*'
./build-asan/test_bqp --gtest_filter='*gnu*:*intel*:Bqp.*'
./build-asan/test_sched
./build-asan/test_ws_core
./build-asan/test_abt

echo "asan_ctest: all sanitized suites passed"
