#!/bin/sh
# Sanitizer verification driver: scripts/san_ctest.sh <asan|tsan|ubsan>
#
# One script, one CMake switch (-DGLTO_SANITIZE=...), three sanitizers:
#
#   asan  — the historical sanitized subset (scripts/asan_ctest.sh is now a
#           shim onto this): taskdep/scheduler/backend/sync suites under
#           AddressSanitizer with fiber-stack annotations.
#   tsan  — fiber-aware ThreadSanitizer over the FULL ctest suite, once per
#           ULT backend (GLT_IMPL=abt, qth, mth). fctx announces every
#           context switch via __tsan_switch_to_fiber, so cross-thread ULT
#           migration is tracked exactly. halt_on_error=1 and an empty
#           suppression file: any report fails the run, nothing is waived.
#   ubsan — full ctest suite with -fno-sanitize-recover=all.
set -e
cd "$(dirname "$0")/.."

san="${1:-}"
case "$san" in
  asan|tsan|ubsan) ;;
  *)
    echo "usage: $0 <asan|tsan|ubsan>" >&2
    exit 2
    ;;
esac

build="build-$san"
case "$san" in
  # Debug -O1 keeps ASan line info exact (matches the old asan_ctest.sh).
  asan)  btype=Debug ;;
  # TSan wants optimized code (5-15x slowdown otherwise compounds) but
  # needs debug info for reports; UBSan likewise.
  tsan)  btype=RelWithDebInfo ;;
  ubsan) btype=RelWithDebInfo ;;
esac

cmake -B "$build" -S . -DCMAKE_BUILD_TYPE="$btype" \
  -DGLTO_SANITIZE="$san" >/dev/null

case "$san" in
asan)
  cmake --build "$build" -j"$(nproc)" \
    --target test_taskdep test_bqp test_abt test_qth test_mth test_sched \
    test_ws_core test_sync
  ./"$build"/test_taskdep
  ./"$build"/test_bqp
  ./"$build"/test_sched
  ./"$build"/test_ws_core
  ./"$build"/test_abt
  ./"$build"/test_qth
  ./"$build"/test_mth
  # Blocking-primitive lifetimes (continuation parking, wait-node handoff,
  # latch delete-after-wait) across all three backends + foreign threads.
  ./"$build"/test_sync
  echo "san_ctest[asan]: all sanitized suites passed"
  ;;

tsan)
  cmake --build "$build" -j"$(nproc)"
  # The suppression file must stay EMPTY (comments only): the doctrine is
  # fix the race or model the happens-before edge in code, never waive a
  # report. The check below keeps a suppression from sneaking in.
  supp="$PWD/scripts/tsan.supp"
  if grep -v -E '^[[:space:]]*(#|$)' "$supp" >/dev/null 2>&1; then
    echo "san_ctest[tsan]: scripts/tsan.supp must stay empty — fix the race" \
         "or annotate the happens-before edge instead" >&2
    exit 1
  fi
  TSAN_OPTIONS="halt_on_error=1 suppressions=$supp ${TSAN_OPTIONS:-}"
  export TSAN_OPTIONS
  for impl in abt qth mth; do
    echo "san_ctest[tsan]: full ctest under GLT_IMPL=$impl"
    GLT_IMPL="$impl" ctest --test-dir "$build" --output-on-failure -j"$(nproc)"
  done
  echo "san_ctest[tsan]: full suite TSan-green under abt, qth and mth"
  ;;

ubsan)
  cmake --build "$build" -j"$(nproc)"
  ctest --test-dir "$build" --output-on-failure -j"$(nproc)"
  echo "san_ctest[ubsan]: full suite passed"
  ;;
esac
