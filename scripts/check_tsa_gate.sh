#!/usr/bin/env bash
# Proves the -Werror=thread-safety gate is load-bearing, not decorative.
#
# The GLTO_* annotation macros (src/common/thread_safety.hpp) expand to
# nothing under gcc, so a misconfigured CI leg — wrong compiler, flag
# dropped, macros defined away — would go green while checking nothing.
# This script compiles a deliberately-broken TU (unguarded access to a
# GLTO_GUARDED_BY member) and REQUIRES the compile to fail with a
# thread-safety diagnostic, then compiles the corrected twin and requires
# it to pass. Run with CXX=clang++ (the analysis is Clang-only).
set -u

CXX=${CXX:-clang++}
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

cat > "$tmp/neg.cpp" <<'EOF'
#include "common/checked_mutex.hpp"
struct Counter {
  glto::common::CheckedMutex m;
  int n GLTO_GUARDED_BY(m) = 0;
  int bump() { return ++n; }  // unguarded: the gate must reject this
};
int main() {
  Counter c;
  return c.bump();
}
EOF

if "$CXX" -std=c++17 -I"$ROOT/src" -Werror=thread-safety -fsyntax-only \
    "$tmp/neg.cpp" 2> "$tmp/neg.log"; then
  echo "FAIL: unguarded access to a GLTO_GUARDED_BY member compiled clean —" \
       "the thread-safety gate is not load-bearing" >&2
  exit 1
fi
if ! grep -q "thread-safety" "$tmp/neg.log"; then
  echo "FAIL: the negative TU failed to compile, but not with a" \
       "thread-safety diagnostic:" >&2
  cat "$tmp/neg.log" >&2
  exit 1
fi

# Positive control: identical TU with the lock held must pass, proving the
# failure above came from the analysis and not a broken include path.
cat > "$tmp/pos.cpp" <<'EOF'
#include "common/checked_mutex.hpp"
struct Counter {
  glto::common::CheckedMutex m;
  int n GLTO_GUARDED_BY(m) = 0;
  int bump() {
    glto::common::CheckedLock lk(m);
    return ++n;
  }
};
int main() {
  Counter c;
  return c.bump();
}
EOF
"$CXX" -std=c++17 -I"$ROOT/src" -Werror=thread-safety -fsyntax-only \
  "$tmp/pos.cpp"

echo "thread-safety gate OK: unguarded access rejected, guarded accepted"
