// Shared driver for Figs. 8 & 9 — the paper's Listing 1: an empty nested
// parallel-for measuring pure management overhead.
//
//   #pragma omp parallel for          // outer: N iterations
//     #pragma omp parallel for        // inner: N iterations, empty body
//
// Paper shape: pthread runtimes ≥10× slower than GLTO(ABT/QTH) — GNU
// spawns a fresh inner team per outer iteration (oversubscription), Intel
// reuses threads but still pays team management; GLTO creates only ULTs.
// GLTO(MTH) is hurt by the pinned-main design issue (§IV-G).
#pragma once

#include <cstdio>

#include "bench_common.hpp"

namespace glto::bench {

inline void run_nested_bench(const char* title, int outer_iters) {
  namespace o = glto::omp;
  const auto n = static_cast<std::int64_t>(outer_iters);
  std::printf("%s: empty nested parallel-for, outer=inner=%d iterations\n",
              title, outer_iters);
  const int reps = glto::bench::reps(outer_iters <= 100 ? 5 : 2);
  print_header("nested-parallelism management time (s)");
  for (auto kind : o::all_kinds()) {
    for (int nth : thread_sweep()) {
      select_runtime(kind, nth, /*active_wait=*/true);
      const auto stats = time_runs(reps, [&] {
        o::parallel([&](int, int) {
          o::loop(0, n, {o::Schedule::Static, 0},
                      [&](std::int64_t b, std::int64_t e) {
                        for (std::int64_t i = b; i < e; ++i) {
                          o::parallel([&](int, int) {
                            o::loop(0, n, {o::Schedule::Static, 0},
                                        [&](std::int64_t, std::int64_t) {});
                          });
                        }
                      });
        });
      });
      print_row(o::kind_name(kind), nth, stats);
      o::shutdown();
    }
  }
  std::printf("paper shape: gnu/intel >= 10x slower than glto-abt/qth; "
              "glto-mth degraded by pinned master (SIV-G)\n");
}

}  // namespace glto::bench
