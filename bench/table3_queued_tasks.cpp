// Table III — percentage of *queued* (deferred) tasks in the Intel-like
// runtime for the CG workload, per granularity × thread count.
//
// A task is queued when the producer's bounded deque accepts it; when the
// deque is full (cut-off, capacity 256) the task executes immediately.
// Paper: fine granularities at mid thread counts leave the queue partially
// drained (80–97% queued); coarse granularity and high thread counts stay
// at 100%.
// A second section runs the same CG cells over GLTO(ABT), GLTO(QTH), and
// GLTO(MTH) and reports the scheduler-behaviour counters (steals / failed
// steals / stack-cache hits) — every backend dispatches through the shared
// work-stealing core since the parity PR, so one run compares *how* each
// runtime moved the tasks, not just how many were deferred.
#include <cstdio>

#include "apps/cg.hpp"
#include "bench_common.hpp"
#include "glt/glt.hpp"

namespace g = glto::apps::cg;
namespace o = glto::omp;
namespace b = glto::bench;

int main() {
  const int n = static_cast<int>(glto::common::env_i64(
      "GLTO_CG_ROWS", static_cast<std::int64_t>(g::kPaperRows)));
  const int iters = static_cast<int>(2 * b::scale());
  const auto a = g::make_spd_pentadiagonal(n);
  const std::vector<double> rhs(static_cast<std::size_t>(n), 1.0);
  std::printf("Table III: %% queued tasks in the Intel runtime "
              "(CG, n=%d, cut-off 256)\n",
              n);
  std::printf("%8s | %8s %8s %8s %8s   (granularity: rows/task)\n",
              "threads", "10", "20", "50", "100");
  for (int nth : b::thread_sweep()) {
    std::printf("%8d |", nth);
    for (int gran : {10, 20, 50, 100}) {
      b::select_runtime(o::RuntimeKind::intel, nth, /*active_wait=*/false);
      auto& rt = o::runtime();
      rt.reset_counters();
      std::vector<double> x;
      (void)g::solve_tasks(a, rhs, x, iters, 0.0, gran);
      const auto c = rt.counters();
      const auto total = c.tasks_queued + c.tasks_immediate;
      const double pct =
          total == 0 ? 100.0
                     : 100.0 * static_cast<double>(c.tasks_queued) /
                           static_cast<double>(total);
      std::printf(" %7.1f%%", pct);
      o::shutdown();
    }
    std::printf("\n");
  }
  std::printf("\npaper shape: dips below 100%% at fine granularities / few "
              "threads (cut-off triggered); 100%% elsewhere\n");

  for (auto kind : {o::RuntimeKind::glto_abt, o::RuntimeKind::glto_qth,
                    o::RuntimeKind::glto_mth}) {
    std::printf("\n%s scheduler behaviour on the same cells "
                "(steals / failed steals / stack-cache hits)\n",
                o::kind_name(kind));
    std::printf("%8s | %-22s %-22s %-22s %-22s\n", "threads", "gran=10",
                "gran=20", "gran=50", "gran=100");
    for (int nth : b::thread_sweep()) {
      std::printf("%8d |", nth);
      for (int gran : {10, 20, 50, 100}) {
        b::select_runtime(kind, nth, /*active_wait=*/false);
        auto& rt = o::runtime();
        rt.reset_counters();
        std::vector<double> x;
        (void)g::solve_tasks(a, rhs, x, iters, 0.0, gran);
        const auto gs = glto::glt::stats();
        std::printf(" %7llu/%-7llu%6llu",
                    static_cast<unsigned long long>(gs.steals),
                    static_cast<unsigned long long>(gs.failed_steals),
                    static_cast<unsigned long long>(gs.stack_cache_hits));
        o::shutdown();
      }
      std::printf("\n");
    }
  }
  return 0;
}
